// Package repro's root benchmark file maps every table and figure of the
// paper's evaluation onto testing.B benchmarks:
//
//	§5.2 micro table   BenchmarkMicro{Empty,ReadOne,Callback}{Trusted,Gated}
//	Figure 3           BenchmarkFigure3Work*
//	Table 1            BenchmarkTable1_* (one per suite per configuration)
//	Table 2 / Figure 4 BenchmarkDromaeo*
//	Figure 5           BenchmarkKraken*
//	Figure 6           BenchmarkOctane*
//	Figure 7 / Table 3 BenchmarkJetStream2*
//	§5.3 sites         BenchmarkSitesPipeline
//	Ablations          BenchmarkAblation*
//
// `go test -bench=. -benchmem` regenerates the raw series; cmd/pkru-bench
// renders the same data in the paper's table layout.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/vm"
	"repro/internal/workload"
)

// --- §5.2 micro-benchmarks -------------------------------------------------

func microCall(b *testing.B, lib, fn string) {
	w, err := workload.NewMicroWorld()
	if err != nil {
		b.Fatal(err)
	}
	th := w.Prog.Main()
	var args []uint64
	if fn == "read_one" {
		args = []uint64{uint64(w.Shared)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call(lib, fn, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroEmptyTrusted(b *testing.B)   { microCall(b, workload.MicroTrustedLib, "empty") }
func BenchmarkMicroEmptyGated(b *testing.B)     { microCall(b, workload.MicroUntrustedLib, "empty") }
func BenchmarkMicroReadOneTrusted(b *testing.B) { microCall(b, workload.MicroTrustedLib, "read_one") }
func BenchmarkMicroReadOneGated(b *testing.B)   { microCall(b, workload.MicroUntrustedLib, "read_one") }
func BenchmarkMicroCallbackTrusted(b *testing.B) {
	microCall(b, workload.MicroTrustedLib, "callback")
}
func BenchmarkMicroCallbackGated(b *testing.B) {
	microCall(b, workload.MicroUntrustedLib, "callback")
}

// --- Figure 3: gate overhead vs work per transition ------------------------

func BenchmarkFigure3(b *testing.B) {
	for _, loops := range []int{0, 25, 100, 200} {
		for _, lib := range []string{workload.MicroTrustedLib, workload.MicroUntrustedLib} {
			name := fmt.Sprintf("loops=%d/%s", loops, lib)
			b.Run(name, func(b *testing.B) {
				w, err := workload.NewMicroWorld()
				if err != nil {
					b.Fatal(err)
				}
				th := w.Prog.Main()
				args := []uint64{uint64(loops)}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := th.Call(lib, "work", args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- browser suites (Tables 1-3, Figures 4-7) ------------------------------

// benchWorkload runs one suite workload under one configuration per
// iteration: the quantity the figures normalize.
func benchWorkload(b *testing.B, w workload.Benchmark, cfg core.BuildConfig) {
	opt := bench.Options{Scale: 1, Repeats: 1}
	prof, err := bench.CollectBenchProfile(w, opt)
	if err != nil {
		b.Fatal(err)
	}
	var consumed *profile.Profile
	if cfg == core.Alloc || cfg == core.MPK {
		consumed = prof
	}
	br, err := browser.New(cfg, consumed)
	if err != nil {
		b.Fatal(err)
	}
	page := w.HTML
	if page == "" {
		page = workload.HarnessPage
	}
	if err := br.LoadHTML(page); err != nil {
		b.Fatal(err)
	}
	if _, err := br.ExecScript(w.Setup); err != nil {
		b.Fatal(err)
	}
	id, err := br.LookupScriptFunc("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.InvokeScriptFunc(id, w.N); err != nil {
			b.Fatal(err)
		}
	}
}

func suiteConfigBench(b *testing.B, w workload.Benchmark) {
	for _, cfg := range []core.BuildConfig{core.Base, core.Alloc, core.MPK} {
		b.Run(cfg.String(), func(b *testing.B) { benchWorkload(b, w, cfg) })
	}
}

// Table 1 / Table 2 / Figure 4: Dromaeo, one representative benchmark per
// sub-suite.
func BenchmarkDromaeoDom(b *testing.B)       { suiteConfigBench(b, workload.Dromaeo()[0]) }
func BenchmarkDromaeoV8(b *testing.B)        { suiteConfigBench(b, workload.Dromaeo()[5]) }
func BenchmarkDromaeoJS(b *testing.B)        { suiteConfigBench(b, workload.Dromaeo()[9]) }
func BenchmarkDromaeoSunspider(b *testing.B) { suiteConfigBench(b, workload.Dromaeo()[12]) }
func BenchmarkDromaeoJslib(b *testing.B)     { suiteConfigBench(b, workload.Dromaeo()[15]) }

// Figure 5: Kraken representatives.
func BenchmarkKrakenFFT(b *testing.B)   { suiteConfigBench(b, workload.Kraken()[0]) }
func BenchmarkKrakenAStar(b *testing.B) { suiteConfigBench(b, workload.Kraken()[7]) }
func BenchmarkKrakenAES(b *testing.B)   { suiteConfigBench(b, workload.Kraken()[12]) }

// Figure 6: Octane representatives.
func BenchmarkOctaneDeltaBlue(b *testing.B) { suiteConfigBench(b, workload.Octane()[2]) }
func BenchmarkOctaneSplay(b *testing.B)     { suiteConfigBench(b, workload.Octane()[7]) }
func BenchmarkOctaneRayTrace(b *testing.B)  { suiteConfigBench(b, workload.Octane()[15]) }

// Figure 7 / Table 3: JetStream2 representatives.
func BenchmarkJetStream2Crypto(b *testing.B)  { suiteConfigBench(b, workload.JetStream2()[43]) }
func BenchmarkJetStream2HashMap(b *testing.B) { suiteConfigBench(b, workload.JetStream2()[29]) }
func BenchmarkJetStream2FloatMM(b *testing.B) { suiteConfigBench(b, workload.JetStream2()[32]) }

// --- §5.3 allocation sites: one full pipeline run per iteration ------------

func BenchmarkSitesPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSites(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) --------------------------------------------------

// Split-allocator ablation: the same alloc/free churn against the arena
// (MT's allocator) and the free list (MU's libc stand-in). The paper
// hypothesizes MU's slower allocator explains most of the alloc-config
// overhead; the delta here is that hypothesis in isolation.
func BenchmarkAblationAllocator(b *testing.B) {
	for _, which := range []string{"arena", "freelist"} {
		b.Run(which, func(b *testing.B) {
			space := vm.NewSpace()
			region, err := space.Reserve("pool", 0x4000_0000, 1<<30, 0)
			if err != nil {
				b.Fatal(err)
			}
			var a heap.Allocator
			if which == "arena" {
				a = heap.NewArena(heap.NewPagePool(region))
			} else {
				a = heap.NewFreeList(heap.NewPagePool(region), space)
			}
			sizes := []uint64{16, 64, 256, 40, 1024, 8, 512}
			var live [64]vm.Addr
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % len(live)
				if live[slot] != 0 {
					if err := a.Free(live[slot]); err != nil {
						b.Fatal(err)
					}
				}
				addr, err := a.Alloc(sizes[i%len(sizes)])
				if err != nil {
					b.Fatal(err)
				}
				live[slot] = addr
			}
		})
	}
}

// Gate-cost ablation: the same gated call with the WRPKRU serialization
// model on (default) and off (zero-cost gates), quantifying how much of
// the mpk overhead the WRPKRU model itself contributes.
func BenchmarkAblationGateCost(b *testing.B) {
	for _, cost := range []int{0, 100} {
		b.Run(fmt.Sprintf("wrpkru=%d", cost), func(b *testing.B) {
			w, err := workload.NewMicroWorld()
			if err != nil {
				b.Fatal(err)
			}
			w.Prog.Runtime().SetGateCost(cost)
			th := w.Prog.Main()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := th.Call(workload.MicroUntrustedLib, "empty"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Metadata-store ablation: interior-pointer lookup cost in the interval
// store vs the naive linear store at realistic live-object counts.
func BenchmarkAblationMetadata(b *testing.B) {
	for _, n := range []int{100, 10000} {
		stores := map[string]provenance.Store{
			"interval": provenance.NewIntervalStore(),
			"linear":   provenance.NewLinearStore(),
		}
		for name, store := range stores {
			b.Run(fmt.Sprintf("%s/live=%d", name, n), func(b *testing.B) {
				for i := 0; i < n; i++ {
					store.Track(provenance.Entry{
						Base: vm.Addr(0x10000 + i*256),
						Size: 128,
						ID:   profile.AllocID{Func: "f", Site: uint32(i)},
					})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					addr := vm.Addr(0x10000 + (i%n)*256 + 64) // interior
					if _, ok := store.Lookup(addr); !ok {
						b.Fatal("lookup missed")
					}
				}
			})
		}
	}
}

// Provenance-tracking ablation: the profiler's fault-record-single-step
// loop per faulting access (the §4.3.2 hot path).
func BenchmarkProfilerFaultPath(b *testing.B) {
	prof, err := browser.CollectProfile(browser.StandardCorpus)
	if err != nil {
		b.Fatal(err)
	}
	_ = prof
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := browser.CollectProfile(browser.StandardCorpus); err != nil {
			b.Fatal(err)
		}
	}
}
