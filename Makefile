.PHONY: check test build fmt conform fuzz-smoke recover-demo profile-demo domains-demo trace-demo attack-demo resilience-demo

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

fmt:
	gofmt -w .

conform:
	go run ./cmd/pkru-conform -fault all
	go run ./cmd/pkru-conform -traces 64 -ops 512
	go run ./cmd/pkru-conform -supervised
	go run ./cmd/pkru-conform -vkeys
	go run ./cmd/pkru-conform -attacks -q

# attack-demo runs the Garmr attack corpus (docs/attacks.md): every
# attack class drilled red (defense off — the breach must land) and
# green (defense armed — the attack must die with the declared fault),
# from both CLI entry points, plus the concurrent race drills hammering
# the eviction/retag and migration-revalidation windows under -race.
attack-demo:
	@echo "--- attack corpus: red/green verdict matrix ---"
	go run ./cmd/pkru-exploit -attacks
	@echo "--- same corpus through the conformance CLI (CI entry point) ---"
	go run ./cmd/pkru-conform -attacks -q
	@echo "--- concurrent drills: retag and migration races under -race ---"
	go test -race -run 'TestRace' ./internal/attack/

# resilience-demo proves tenant-scoped fault containment end to end
# (docs/recovery.md): one tenant mounts the attack payload roster through
# its gates until its circuit breaker opens and its pool quarantines; the
# servo's verdict line must read CONTAINED — only the hostile tenant's
# epoch bumps, every healthy tenant completes 100% of its requests, zero
# leaks, zero breaches — or the run exits non-zero. The breaker
# transition instants on the exported timeline and the healthy-tenant
# latency report are then validated by tracecheck.
resilience-demo:
	@echo "--- hostile tenant in, healthy tenants out: containment verdict ---"
	go run ./cmd/pkru-servo -domains=8 -domain-workers=1 -domain-cycles=96 \
		-hostile=tenant003 -churn=false -breaker-probe-after=1h -recover=quarantine \
		-trace-json /tmp/pkru-resilience-demo.json -latency-out /tmp/pkru-resilience-lat.json
	@echo "--- breaker transitions on the timeline + healthy latency report ---"
	go run ./scripts/tracecheck /tmp/pkru-resilience-demo.json /tmp/pkru-resilience-lat.json
	@echo "--- containment overhead (smoke iterations) ---"
	go run ./cmd/pkru-bench -experiment resilience -micro-iters 20000
	@rm -f /tmp/pkru-resilience-demo.json /tmp/pkru-resilience-lat.json

# domains-demo exercises the N-domain layer end to end
# (docs/domains.md): 64 logical domains multiplexed onto 13 hardware
# key slots under concurrent entry and tenant churn (isolation leaks
# exit non-zero), the drill proving multiplexing is semantically
# invisible, and the slot-miss overhead bench.
domains-demo:
	@echo "--- 64 tenants on 13 slots under churn ---"
	go run ./cmd/pkru-servo -domains=64 -domain-workers 4 -domain-cycles 1500
	@echo "--- virtual-key conformance drill ---"
	go run ./cmd/pkru-conform -vkeys -vkey-domains 64
	@echo "--- multiplexing stats ---"
	go run ./cmd/pkrusafe domains 32
	@echo "--- slot-miss overhead (smoke iterations) ---"
	go run ./cmd/pkru-bench -experiment vkeys -micro-iters 2000

# recover-demo proves the supervisor's headline property on the quickstart
# example run without a profile (so its shared site is misclassified MT):
# the default fail-stop policy dies on the PKUERR, while -recover=heal
# migrates the site and completes.
recover-demo:
	@echo "--- -recover=abort must crash ---"
	@if go run ./cmd/pkrusafe run examples/pkir/quickstart.pkir; then \
		echo "recover-demo: abort run unexpectedly succeeded" >&2; exit 1; \
	else echo "(crashed as expected)"; fi
	@echo "--- -recover=heal must complete ---"
	go run ./cmd/pkrusafe run examples/pkir/quickstart.pkir -recover=heal -heal-out=-

# profile-demo runs the continuous-profiling closed loop headlessly
# (docs/profiling.md): a fresh store bootstraps at the empty seed, the
# healed delta commits as a candidate generation, the staged rollout
# (half the replayed requests on the candidate) promotes it, and a second
# run over the saved store finds nothing left to heal.
profile-demo:
	@rm -f /tmp/pkru-profile-demo-store.json
	@echo "--- run 1: heal, commit, shadow, promote ---"
	go run ./cmd/pkru-servo -config mpk -recover heal -requests 4 \
		-profile-store /tmp/pkru-profile-demo-store.json -shadow-frac 0.5
	@echo "--- run 2: the promoted generation leaves nothing to heal ---"
	go run ./cmd/pkru-servo -config mpk -recover heal -requests 2 \
		-profile-store /tmp/pkru-profile-demo-store.json -shadow-frac 0.5
	@echo "--- the store's own diff of the promotion ---"
	-go run ./cmd/pkru-profile diff -store /tmp/pkru-profile-demo-store.json
	@rm -f /tmp/pkru-profile-demo-store.json

# trace-demo exercises the request-scoped tracing plane end to end
# (docs/tracing.md): the multi-tenant workload with a compartment fault
# injected into every 40th request under the retry policy, the adaptive
# sampling controller live, and the retained traces + per-tenant latency
# report exported and validated — tracecheck fails unless at least one
# trace correlates gate entry, fault and recovery under one trace ID.
trace-demo:
	@echo "--- multi-tenant workload: injected faults under retry, traced ---"
	go run ./cmd/pkru-servo -domains=24 -domain-workers 4 -domain-cycles 500 \
		-recover retry -inject-fault 40 -adapt-target 2us \
		-trace-json /tmp/pkru-trace-demo.json -latency-out /tmp/pkru-latency-demo.json
	@echo "--- timeline + latency report validation ---"
	go run ./scripts/tracecheck /tmp/pkru-trace-demo.json /tmp/pkru-latency-demo.json
	@echo "--- single-run timeline from the toolchain CLI (heal arc) ---"
	go run ./cmd/pkrusafe trace examples/pkir/quickstart.pkir -recover heal \
		-o /tmp/pkru-quickstart-trace.json
	go run ./scripts/tracecheck /tmp/pkru-quickstart-trace.json
	@rm -f /tmp/pkru-trace-demo.json /tmp/pkru-latency-demo.json /tmp/pkru-quickstart-trace.json

fuzz-smoke:
	go test -fuzz '^FuzzDifferential$$' -fuzztime 10s ./internal/conformance
	go test -fuzz '^FuzzSpaceOracle$$' -fuzztime 10s ./internal/conformance
	go test -fuzz '^FuzzVKeys$$' -fuzztime 10s ./internal/conformance
