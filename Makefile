.PHONY: check test build fmt

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

fmt:
	gofmt -w .
