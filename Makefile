.PHONY: check test build fmt conform fuzz-smoke

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

fmt:
	gofmt -w .

conform:
	go run ./cmd/pkru-conform -fault all
	go run ./cmd/pkru-conform -traces 64 -ops 512

fuzz-smoke:
	go test -fuzz '^FuzzDifferential$$' -fuzztime 10s ./internal/conformance
	go test -fuzz '^FuzzSpaceOracle$$' -fuzztime 10s ./internal/conformance
