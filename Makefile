.PHONY: check test build fmt conform fuzz-smoke recover-demo profile-demo

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

fmt:
	gofmt -w .

conform:
	go run ./cmd/pkru-conform -fault all
	go run ./cmd/pkru-conform -traces 64 -ops 512
	go run ./cmd/pkru-conform -supervised

# recover-demo proves the supervisor's headline property on the quickstart
# example run without a profile (so its shared site is misclassified MT):
# the default fail-stop policy dies on the PKUERR, while -recover=heal
# migrates the site and completes.
recover-demo:
	@echo "--- -recover=abort must crash ---"
	@if go run ./cmd/pkrusafe run examples/pkir/quickstart.pkir; then \
		echo "recover-demo: abort run unexpectedly succeeded" >&2; exit 1; \
	else echo "(crashed as expected)"; fi
	@echo "--- -recover=heal must complete ---"
	go run ./cmd/pkrusafe run examples/pkir/quickstart.pkir -recover=heal -heal-out=-

# profile-demo runs the continuous-profiling closed loop headlessly
# (docs/profiling.md): a fresh store bootstraps at the empty seed, the
# healed delta commits as a candidate generation, the staged rollout
# (half the replayed requests on the candidate) promotes it, and a second
# run over the saved store finds nothing left to heal.
profile-demo:
	@rm -f /tmp/pkru-profile-demo-store.json
	@echo "--- run 1: heal, commit, shadow, promote ---"
	go run ./cmd/pkru-servo -config mpk -recover heal -requests 4 \
		-profile-store /tmp/pkru-profile-demo-store.json -shadow-frac 0.5
	@echo "--- run 2: the promoted generation leaves nothing to heal ---"
	go run ./cmd/pkru-servo -config mpk -recover heal -requests 2 \
		-profile-store /tmp/pkru-profile-demo-store.json -shadow-frac 0.5
	@echo "--- the store's own diff of the promotion ---"
	-go run ./cmd/pkru-profile diff -store /tmp/pkru-profile-demo-store.json
	@rm -f /tmp/pkru-profile-demo-store.json

fuzz-smoke:
	go test -fuzz '^FuzzDifferential$$' -fuzztime 10s ./internal/conformance
	go test -fuzz '^FuzzSpaceOracle$$' -fuzztime 10s ./internal/conformance
