.PHONY: check test build fmt conform fuzz-smoke recover-demo

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

fmt:
	gofmt -w .

conform:
	go run ./cmd/pkru-conform -fault all
	go run ./cmd/pkru-conform -traces 64 -ops 512
	go run ./cmd/pkru-conform -supervised

# recover-demo proves the supervisor's headline property on the quickstart
# example run without a profile (so its shared site is misclassified MT):
# the default fail-stop policy dies on the PKUERR, while -recover=heal
# migrates the site and completes.
recover-demo:
	@echo "--- -recover=abort must crash ---"
	@if go run ./cmd/pkrusafe run examples/pkir/quickstart.pkir; then \
		echo "recover-demo: abort run unexpectedly succeeded" >&2; exit 1; \
	else echo "(crashed as expected)"; fi
	@echo "--- -recover=heal must complete ---"
	go run ./cmd/pkrusafe run examples/pkir/quickstart.pkir -recover=heal -heal-out=-

fuzz-smoke:
	go test -fuzz '^FuzzDifferential$$' -fuzztime 10s ./internal/conformance
	go test -fuzz '^FuzzSpaceOracle$$' -fuzztime 10s ./internal/conformance
