// Imagelib shows PKRU-Safe protecting an application from an untrusted
// image decoding library — the "legacy C dependency" scenario from the
// paper's introduction. The trusted app hands the decoder an input buffer
// and an output pixel buffer; the pipeline discovers both must be shared,
// while the app's session keys and cache stay in MT. A decoder bug that
// chases a wild pointer is then shown writing only noise into MU in the
// unprotected build, and dying on an MPK violation before touching the
// session key in the protected build.
//
// Run with: go run ./examples/imagelib
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/profile"
	"repro/internal/vm"
)

// registerDecoder defines the untrusted "libimage" decoder: a run-length
// image format (count,value pairs) decoded into a pixel buffer. The
// decoder contains a bug: a header field it trusts ("pixel offset") is
// used unchecked as a write target.
func registerDecoder() *ffi.Registry {
	reg := ffi.NewRegistry()
	lib := reg.MustLibrary("libimage", ffi.Untrusted)
	// decode(in, inLen, out, outCap) -> pixels written
	lib.Define("decode", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		in, inLen := vm.Addr(args[0]), args[1]
		out, outCap := vm.Addr(args[2]), args[3]
		var written uint64
		for i := uint64(0); i+1 < inLen; i += 2 {
			count, err := th.Load8(in + vm.Addr(i))
			if err != nil {
				return nil, err
			}
			val, err := th.Load8(in + vm.Addr(i+1))
			if err != nil {
				return nil, err
			}
			for c := byte(0); c < count && written < outCap; c++ {
				if err := th.Store8(out+vm.Addr(written), val); err != nil {
					return nil, err
				}
				written++
			}
		}
		return []uint64{written}, nil
	})
	// decode_buggy(in, inLen, out, outCap, evilOffset): the planted bug —
	// the "offset" is applied to the output pointer without validation,
	// sending writes anywhere the attacker-controlled header says.
	lib.Define("decode_buggy", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		out := vm.Addr(args[2]) + vm.Addr(args[4])
		return nil, th.Store8(out, 0xEE)
	})
	return reg
}

// app decodes one image through the library.
func app(prog *core.Program) (string, error) {
	th := prog.Main()
	// Session key: private trusted data the decoder must never reach.
	keySite := prog.Site("app::session_key", 0, 0)
	key, err := prog.AllocAt(keySite, 32)
	if err != nil {
		return "", err
	}
	if err := th.VM.Write(key, []byte("super-secret-session-key-bytes!")); err != nil {
		return "", err
	}
	// Input and output buffers: these flow into the decoder.
	inSite := prog.Site("app::image_input", 0, 0)
	outSite := prog.Site("app::pixel_buffer", 0, 0)
	in, err := prog.AllocAt(inSite, 8)
	if err != nil {
		return "", err
	}
	if err := th.VM.Write(in, []byte{3, 'a', 2, 'b', 1, 'c', 0, 0}); err != nil {
		return "", err
	}
	out, err := prog.AllocAt(outSite, 16)
	if err != nil {
		return "", err
	}
	res, err := th.Call("libimage", "decode", uint64(in), 8, uint64(out), 16)
	if err != nil {
		return "", err
	}
	pixels, err := th.ReadBytes(out, int(res[0]))
	if err != nil {
		return "", err
	}
	return string(pixels), nil
}

func main() {
	reg := registerDecoder()

	fmt.Println("step 1: profile the decoder's data flows")
	prof1, err := core.NewProgram(reg, core.Profiling, nil)
	exitOn(err)
	pixels, err := app(prof1)
	exitOn(err)
	prof, err := prof1.RecordedProfile()
	exitOn(err)
	fmt.Printf("  decoded %q; shared sites: %v\n", pixels, prof.IDs())
	if prof.Contains(profile.AllocID{Func: "app::session_key"}) {
		fmt.Println("  UNEXPECTED: session key crossed the boundary")
		os.Exit(1)
	}

	fmt.Println("step 2: enforced build decodes normally")
	prog, err := core.NewProgram(reg, core.MPK, prof)
	exitOn(err)
	pixels, err = app(prog)
	exitOn(err)
	fmt.Printf("  decoded %q with the session key locked away\n", pixels)

	fmt.Println("step 3: a malicious image triggers the decoder's wild write")
	// The evil offset aims the decoder's write at the session key, far
	// below the output buffer in MT. (Distance computed by the attacker
	// from a leak; here we just compute it directly.)
	th := prog.Main()
	outSite := prog.Site("app::pixel_buffer", 0, 0)
	out, err := prog.AllocAt(outSite, 16)
	exitOn(err)
	keySite := prog.Site("app::session_key", 0, 0)
	key, err := prog.AllocAt(keySite, 32)
	exitOn(err)
	exitOn(th.VM.Write(key, []byte("super-secret-session-key-bytes!")))
	delta := uint64(key) - uint64(out)
	_, err = th.Call("libimage", "decode_buggy", 0, 0, uint64(out), 16, delta)
	if err != nil {
		fmt.Printf("  MPK violation, decoder killed: %v\n", err)
	} else {
		fmt.Println("  UNEXPECTED: wild write reached trusted memory")
		os.Exit(1)
	}
	buf, err := th.ReadBytes(key, 5)
	exitOn(err)
	fmt.Printf("  session key intact: %q...\n", string(buf))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "imagelib:", err)
		os.Exit(1)
	}
}
