// Quickstart walks PKRU-Safe's minimal working example (the paper's
// experiment E1) in three steps:
//
//  1. an enforcement build with an empty profile: the untrusted library's
//     write to a trusted allocation raises an MPK violation;
//  2. a profiling build: the same program runs to completion while the
//     fault handler records which allocation site crossed the boundary;
//  3. an enforcement build consuming that profile: the site now allocates
//     from the shared pool MU, and the untrusted write lands — the final
//     output changes from a crash to 1337.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/profile"
	"repro/internal/vm"
)

// buildRegistry assembles the program: a trusted app and one untrusted C
// library. The library-level Untrusted annotation is the entirety of the
// developer effort PKRU-Safe asks for.
func buildRegistry() *ffi.Registry {
	reg := ffi.NewRegistry()
	clib := reg.MustLibrary("clib", ffi.Untrusted)
	clib.Define("write_1337", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		return nil, th.Store64(vm.Addr(args[0]), 1337)
	})
	return reg
}

// appMain is the trusted application body: allocate a buffer at one
// instrumented site and hand it to the untrusted library.
func appMain(prog *core.Program) (uint64, error) {
	site := prog.Site("main", 0, 0)
	buf, err := prog.AllocAt(site, 8)
	if err != nil {
		return 0, err
	}
	if err := prog.Main().VM.Store64(buf, 0); err != nil {
		return 0, err
	}
	if _, err := prog.Main().Call("clib", "write_1337", uint64(buf)); err != nil {
		return 0, err
	}
	return prog.Main().VM.Load64(buf)
}

func main() {
	reg := buildRegistry()

	fmt.Println("step 1: enforcement build, empty profile")
	step1, err := core.NewProgram(reg, core.MPK, profile.New())
	exitOn(err)
	if _, err := appMain(step1); err != nil {
		fmt.Printf("  program crashed as expected: %v\n", err)
	} else {
		fmt.Println("  UNEXPECTED: untrusted write to trusted memory succeeded")
		os.Exit(1)
	}

	fmt.Println("step 2: profiling build")
	step2, err := core.NewProgram(reg, core.Profiling, nil)
	exitOn(err)
	v, err := appMain(step2)
	exitOn(err)
	prof, err := step2.RecordedProfile()
	exitOn(err)
	fmt.Printf("  profiling run completed, value=%d, %d shared site(s) recorded: %v\n",
		v, prof.Len(), prof.IDs())

	fmt.Println("step 3: enforcement build with the recorded profile")
	step3, err := core.NewProgram(reg, core.MPK, prof)
	exitOn(err)
	v, err = appMain(step3)
	exitOn(err)
	fmt.Printf("  value at the shared allocation: %d\n", v)
	fmt.Println("done: the allocation moved from MT to MU and the program kept its behaviour")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
