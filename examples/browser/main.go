// Browser demonstrates the full Servo-style deployment of PKRU-Safe: a
// trusted browser whose DOM lives in the protected heap MT, scripts
// running in the untrusted JS engine behind call gates, and the profiling
// pipeline discovering exactly which browser data (script sources, text
// and attribute buffers) must be shared.
//
// Run with: go run ./examples/browser
package main

import (
	"fmt"
	"os"

	"repro/internal/browser"
	"repro/internal/core"
)

const page = `
<body>
	<div id="app" class="shell">
		<h1 id="title">PKRU-Safe browser demo</h1>
		<ul id="news">
			<li class="story">simulated MPK ships</li>
			<li class="story">heaps partitioned automatically</li>
		</ul>
		<div id="footer">generated 2022</div>
	</div>
</body>`

const script = `
	// A small "web app": read trusted DOM data, mutate the tree, reflow.
	var title = getText(byId("title"));
	print("page title: " + title);

	var news = byId("news");
	var stories = queryTag("li");
	print("stories on load: " + stories.length);

	for (var i = 0; i < 6; i++) {
		var li = createElement("li");
		appendChild(news, li);
		setAttr(li, "class", "story fresh");
		setText(li, "breaking story #" + i);
	}
	reflow();

	var total = 0;
	var all = queryTag("li");
	for (var j = 0; j < all.length; j++) {
		total += getText(all[j]).length;
	}
	print("total headline characters: " + total);
	all.length;
`

func run(b *browser.Browser) error {
	if err := b.LoadHTML(page); err != nil {
		return err
	}
	n, err := b.ExecScript(script)
	if err != nil {
		return err
	}
	fmt.Printf("script returned %g list items\n", n)
	return nil
}

func main() {
	fmt.Println("== profiling run (all heap data in MT, faults recorded) ==")
	prof, err := browser.CollectProfile(run, browser.Options{ScriptOutput: os.Stdout})
	exitOn(err)
	fmt.Printf("profile: %d shared allocation sites\n", prof.Len())
	for _, id := range prof.IDs() {
		rec, _ := prof.Get(id)
		fmt.Printf("  %-28s faults=%d bytes=%d\n", id, rec.Faults, rec.Bytes)
	}

	fmt.Println()
	fmt.Println("== enforced run (mpk build) ==")
	b, err := browser.New(core.MPK, prof, browser.Options{ScriptOutput: os.Stdout})
	exitOn(err)
	exitOn(run(b))
	st := b.Stats()
	fmt.Printf("transitions=%d dom-ops=%d sites=%d shared=%d %%MU=%.2f%%\n",
		st.Transitions, st.DOMOps, st.TotalSites, st.UntrustedSites, 100*st.UntrustedShare)
	fmt.Println("the JS engine never held rights to the browser's private heap")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "browser:", err)
		os.Exit(1)
	}
}
