// Multidomain demonstrates the §6 "more than two compartments" extension:
// two untrusted libraries — a scripting engine and a media codec — each
// get their own protection key and private pool, so a bug in one cannot
// corrupt the other's data, while both still share the key-0 pool with
// the trusted application.
//
// Run with: go run ./examples/multidomain
package main

import (
	"fmt"
	"os"

	"repro/internal/domains"
	"repro/internal/vm"
)

func main() {
	space := vm.NewSpace()
	mgr, err := domains.NewManager(space)
	exitOn(err)
	js, err := mgr.AddDomain("js-engine")
	exitOn(err)
	codec, err := mgr.AddDomain("media-codec")
	exitOn(err)
	fmt.Printf("domains: %s (key %v), %s (key %v)\n", js.Name, js.Key, codec.Name, codec.Key)

	th := vm.NewThread(space, nil)

	// The trusted app sets up one buffer per compartment.
	secret, err := mgr.AllocTrusted(8)
	exitOn(err)
	shared, err := mgr.AllocShared(8)
	exitOn(err)
	jsHeap, err := mgr.Alloc(js, 8)
	exitOn(err)
	codecHeap, err := mgr.Alloc(codec, 8)
	exitOn(err)
	for _, a := range []vm.Addr{secret, shared, jsHeap, codecHeap} {
		exitOn(th.Store64(a, 7))
	}

	probe := func(name string, addr vm.Addr) {
		if _, err := th.Load64(addr); err != nil {
			fmt.Printf("    %-18s DENIED (MPK violation)\n", name)
		} else {
			fmt.Printf("    %-18s ok\n", name)
		}
	}

	fmt.Println("inside the js-engine domain:")
	restore := mgr.Enter(th, js)
	probe("shared pool", shared)
	probe("own pool", jsHeap)
	probe("codec's pool", codecHeap)
	probe("trusted heap", secret)
	restore()

	fmt.Println("inside the media-codec domain:")
	restore = mgr.Enter(th, codec)
	probe("shared pool", shared)
	probe("own pool", codecHeap)
	probe("js-engine's pool", jsHeap)
	probe("trusted heap", secret)
	restore()

	fmt.Println("back in the trusted compartment:")
	probe("everything (e.g. js pool)", jsHeap)
	fmt.Println("mutually distrusting libraries, one address space, zero copies")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "multidomain:", err)
		os.Exit(1)
	}
}
