// Multidomain demonstrates the §6 "more than two compartments" extension
// with virtualized protection keys: two untrusted libraries — a scripting
// engine and a media codec — each get their own logical key and private
// pool, so a bug in one cannot corrupt the other's data, while both still
// share the key-0 pool with the trusted application. A third act churns
// through more tenants than the hardware has keys to show the eviction
// cache at work.
//
// Run with: go run ./examples/multidomain
package main

import (
	"fmt"
	"os"

	"repro/internal/domains"
	"repro/internal/vm"
)

func main() {
	space := vm.NewSpace()
	mgr, err := domains.NewManager(space)
	exitOn(err)
	js, err := mgr.AddDomain("js-engine")
	exitOn(err)
	codec, err := mgr.AddDomain("media-codec")
	exitOn(err)
	fmt.Printf("domains: %s (%v), %s (%v) over %d hardware slots\n",
		js.Name, js.VKey, codec.Name, codec.VKey, mgr.Table().Slots())

	th := vm.NewThread(space, nil)

	// The trusted app sets up one buffer per compartment.
	secret, err := mgr.AllocTrusted(8)
	exitOn(err)
	shared, err := mgr.AllocShared(8)
	exitOn(err)
	jsHeap, err := mgr.Alloc(js, 8)
	exitOn(err)
	codecHeap, err := mgr.Alloc(codec, 8)
	exitOn(err)
	for _, a := range []vm.Addr{secret, shared, jsHeap, codecHeap} {
		exitOn(th.Store64(a, 7))
	}

	probe := func(name string, addr vm.Addr) {
		if _, err := th.Load64(addr); err != nil {
			fmt.Printf("    %-18s DENIED (MPK violation)\n", name)
		} else {
			fmt.Printf("    %-18s ok\n", name)
		}
	}

	fmt.Println("inside the js-engine domain:")
	restore, err := mgr.Enter(th, js)
	exitOn(err)
	probe("shared pool", shared)
	probe("own pool", jsHeap)
	probe("codec's pool", codecHeap)
	probe("trusted heap", secret)
	exitOn(restore())

	fmt.Println("inside the media-codec domain:")
	restore, err = mgr.Enter(th, codec)
	exitOn(err)
	probe("shared pool", shared)
	probe("own pool", codecHeap)
	probe("js-engine's pool", jsHeap)
	probe("trusted heap", secret)
	exitOn(restore())

	fmt.Println("back in the trusted compartment:")
	probe("everything (e.g. js pool)", jsHeap)

	// More tenants than the hardware has keys: the vkey table multiplexes
	// them through its LRU eviction cache.
	churn := mgr.Table().Slots() + 4
	for i := 0; i < churn; i++ {
		d, err := mgr.AddDomain(fmt.Sprintf("tenant-%02d", i))
		exitOn(err)
		r, err := mgr.Enter(th, d)
		exitOn(err)
		exitOn(r())
	}
	st := mgr.Table().Stats()
	fmt.Printf("churned %d extra tenants: %d logical keys on %d slots, %d evictions, %d slot misses\n",
		churn, st.Logical, st.Slots, st.Evictions, st.SlotMisses)
	fmt.Println("mutually distrusting libraries, one address space, zero copies")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "multidomain:", err)
		os.Exit(1)
	}
}
