package interp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/pkir"
	"repro/internal/profile"
	"repro/internal/vm"
)

// run parses, compiles and executes src's entry function under cfg,
// returning results, printed output and error.
func run(t *testing.T, src, entry string, cfg core.BuildConfig, prof *profile.Profile, args ...uint64) ([]uint64, string, error) {
	t.Helper()
	mod, err := pkir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := compile.Pipeline(mod, prof); err != nil {
		t.Fatalf("compile: %v", err)
	}
	var consumed *profile.Profile
	if cfg == core.Alloc || cfg == core.MPK {
		consumed = prof
		if consumed == nil {
			consumed = profile.New()
		}
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), cfg, consumed)
	if err != nil {
		t.Fatalf("program: %v", err)
	}
	var out bytes.Buffer
	m, err := New(mod, prog, Options{Output: &out})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	res, err := m.Run(entry, args...)
	return res, out.String(), err
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
module fib
export func fib(n) {
entry:
  small = lt n, 2
  br small, base, rec
base:
  ret n
rec:
  n1 = sub n, 1
  n2 = sub n, 2
  a = call fib(n1)
  b = call fib(n2)
  s = add a, b
  ret s
}
`
	res, _, err := run(t, src, "fib", core.Base, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 55 {
		t.Errorf("fib(10) = %d, want 55", res[0])
	}
}

func TestLoopAndMemory(t *testing.T) {
	src := `
module sum
export func main() {
entry:
  buf = alloc 80
  i = const 0
  jmp fill
fill:
  off = mul i, 8
  p = add buf, off
  store p, i
  i = add i, 1
  done = eq i, 10
  br done, sum_init, fill
sum_init:
  acc = const 0
  j = const 0
  jmp sum
sum:
  off2 = mul j, 8
  q = add buf, off2
  v = load q
  acc = add acc, v
  j = add j, 1
  fin = eq j, 10
  br fin, out, sum
out:
  free buf
  print acc
  ret acc
}
`
	res, out, err := run(t, src, "main", core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 45 {
		t.Errorf("sum = %d, want 45", res[0])
	}
	if strings.TrimSpace(out) != "45" {
		t.Errorf("printed %q", out)
	}
}

const pipelineSrc = `
module quickstart

untrusted export func clib_write(ptr) {
entry:
  store ptr, 1337
  ret
}

export func main() {
entry:
  p = alloc 8
  store p, 0
  call clib_write(p)
  v = load p
  ret v
}
`

// TestIRPipelineE1 reproduces experiment E1 at the IR level: enforce with
// empty profile (crash), profile (complete + record), enforce with the
// real profile (1337).
func TestIRPipelineE1(t *testing.T) {
	// Step 1: empty profile, MPK gates — crash on the untrusted store.
	_, _, err := run(t, pipelineSrc, "main", core.MPK, profile.New())
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("step 1: want MPK fault, got %v", err)
	}

	// Step 2: profiling build — completes and records the site.
	mod, err := pkir.Parse(pipelineSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(mod, nil); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), core.Profiling, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("main")
	if err != nil {
		t.Fatalf("step 2: %v", err)
	}
	if res[0] != 1337 {
		t.Fatalf("step 2 result = %d", res[0])
	}
	prof, err := prog.RecordedProfile()
	if err != nil {
		t.Fatal(err)
	}
	wantSite := profile.AllocID{Func: "main", Block: 0, Site: 0}
	if !prof.Contains(wantSite) {
		t.Fatalf("profile %v missing %v", prof.IDs(), wantSite)
	}

	// Step 3: enforcement with the recorded profile — succeeds with 1337.
	res3, _, err := run(t, pipelineSrc, "main", core.MPK, prof)
	if err != nil {
		t.Fatalf("step 3: %v", err)
	}
	if res3[0] != 1337 {
		t.Errorf("step 3 result = %d", res3[0])
	}
}

func TestIndirectCallAndCFI(t *testing.T) {
	src := `
module icalls
export func double(x) {
entry:
  y = mul x, 2
  ret y
}
export func main(bad) {
entry:
  fp = funcaddr double
  use_bad = ne bad, 0
  br use_bad, evil, good
good:
  r = icall fp(21)
  ret r
evil:
  r2 = icall 99(21)
  ret r2
}
`
	res, _, err := run(t, src, "main", core.Base, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Errorf("icall result = %d", res[0])
	}
	_, _, err = run(t, src, "main", core.Base, nil, 1)
	if !errors.Is(err, ErrCFIViolation) {
		t.Errorf("bogus icall = %v, want CFI violation", err)
	}
}

// TestCallbackThroughReverseGate: untrusted IR code invokes an
// address-taken trusted function pointer; the callback reads MT
// successfully (reverse gate), and the untrusted caller still cannot.
func TestCallbackThroughReverseGate(t *testing.T) {
	src := `
module cb

export func read_secret(p) {
entry:
  v = load p
  ret v
}

untrusted export func u_invoke(fp, p) {
entry:
  r = icall fp(p)
  ret r
}

export func main() {
entry:
  secret = alloc 8
  store secret, 777
  fp = funcaddr read_secret
  r = call u_invoke(fp, secret)
  ret r
}
`
	res, _, err := run(t, src, "main", core.MPK, profile.New())
	if err != nil {
		t.Fatalf("callback run: %v", err)
	}
	if res[0] != 777 {
		t.Errorf("callback result = %d", res[0])
	}

	// Variant: untrusted code dereferences the pointer itself -> fault.
	srcDirect := strings.Replace(src, "r = icall fp(p)\n  ret r", "v = load p\n  ret v", 1)
	_, _, err = run(t, srcDirect, "main", core.MPK, profile.New())
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Errorf("direct untrusted deref = %v, want fault", err)
	}
}

// TestUninstrumentedTrustedCalleeCrashes: an untrusted function calls a
// non-exported, non-address-taken trusted function directly; without an
// entry gate it runs with U rights and dies touching MT.
func TestUninstrumentedTrustedCalleeCrashes(t *testing.T) {
	src := `
module nogate

func t_touch(p) {
entry:
  v = load p
  ret v
}

untrusted export func u_jump(p) {
entry:
  r = call t_touch(p)
  ret r
}

export func main() {
entry:
  secret = alloc 8
  store secret, 1
  r = call u_jump(secret)
  ret r
}
`
	_, _, err := run(t, src, "main", core.MPK, profile.New())
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Errorf("uninstrumented T callee should crash, got %v", err)
	}
	// Same program under profiling completes (handler repairs faults) and
	// does NOT hide the touched allocation.
	mod, _ := pkir.Parse(src)
	if _, err := compile.Pipeline(mod, nil); err != nil {
		t.Fatal(err)
	}
	prog, _ := core.NewProgram(ffi.NewRegistry(), core.Profiling, nil)
	m, _ := New(mod, prog)
	if _, err := m.Run("main"); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	prof, _ := prog.RecordedProfile()
	if prof.Len() != 1 {
		t.Errorf("profile len = %d, want the secret's site", prof.Len())
	}
}

func TestUallocAndReallocOps(t *testing.T) {
	src := `
module mem
untrusted export func u_write(p) {
entry:
  store p, 5
  ret
}
export func main() {
entry:
  u = ualloc 16
  call u_write(u)
  g = realloc u, 4096
  v = load g
  free g
  ret v
}
`
	res, _, err := run(t, src, "main", core.MPK, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 5 {
		t.Errorf("value after realloc = %d", res[0])
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src string
		wantSub   string
	}{
		{
			"div by zero",
			"module m\nexport func main() {\ne:\n  x = div 1, 0\n  ret\n}",
			"division by zero",
		},
		{
			"undefined register",
			"module m\nexport func main() {\ne:\n  x = add ghost, 1\n  ret\n}",
			"undefined register",
		},
		{
			"null icall",
			"module m\nexport func main() {\ne:\n  r = icall 0()\n  ret\n}",
			"CFI",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := run(t, c.src, "main", core.Base, nil)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("err = %v, want containing %q", err, c.wantSub)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	src := "module m\nexport func main() {\ne:\n  jmp e\n}"
	mod, _ := pkir.Parse(src)
	if _, err := compile.Pipeline(mod, nil); err != nil {
		t.Fatal(err)
	}
	prog, _ := core.NewProgram(ffi.NewRegistry(), core.Base, nil)
	m, err := New(mod, prog, Options{StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); !errors.Is(err, ErrStepLimit) {
		t.Errorf("infinite loop = %v, want step limit", err)
	}
}

func TestRunUnknownEntry(t *testing.T) {
	src := "module m\nexport func main() {\ne:\n  ret\n}"
	_, _, err := run(t, src, "ghost", core.Base, nil)
	if err == nil {
		t.Error("unknown entry accepted")
	}
}

func TestArgArityChecked(t *testing.T) {
	src := "module m\nexport func main(a, b) {\ne:\n  ret a\n}"
	_, _, err := run(t, src, "main", core.Base, nil, 1)
	if err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestMixedIRAndNativeLibraries(t *testing.T) {
	// An IR program calling a Go-hosted native untrusted function through
	// the same registry.
	mod, err := pkir.Parse(`
module mixed
export func main() {
entry:
  p = alloc 8
  store p, 41
  ret p
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(mod, nil); err != nil {
		t.Fatal(err)
	}
	reg := ffi.NewRegistry()
	reg.MustLibrary("native", ffi.Untrusted).Define("bump", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		v, err := th.Load64(vm.Addr(args[0]))
		if err != nil {
			return nil, err
		}
		return []uint64{v + 1}, th.Store64(vm.Addr(args[0]), v+1)
	})
	prog, err := core.NewProgram(reg, core.MPK, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	// The IR allocation is trusted; the native untrusted call must fault.
	if _, err := prog.Main().Call("native", "bump", res[0]); err == nil {
		t.Error("native untrusted access to IR trusted allocation should fault")
	}
	st := m.Stats()
	if st.Instructions == 0 || st.Calls == 0 {
		t.Errorf("stats = %+v", st)
	}
}
