package interp

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestByteOps covers the 8-bit load/store path: a memcpy-style loop that
// reverses a byte buffer in place.
func TestByteOps(t *testing.T) {
	src := `
module bytes
export func main() {
entry:
  buf = alloc 16
  i = const 0
  jmp fill
fill:
  p = add buf, i
  v = add 65, i
  storeb p, v
  i = add i, 1
  done = eq i, 8
  br done, rev, fill
rev:
  lo = const 0
  hi = const 7
  jmp swap
swap:
  more = lt lo, hi
  br more, doswap, check
doswap:
  pl = add buf, lo
  ph = add buf, hi
  a = loadb pl
  b = loadb ph
  storeb pl, b
  storeb ph, a
  lo = add lo, 1
  hi = sub hi, 1
  jmp swap
check:
  p0 = loadb buf
  p7b = add buf, 7
  p7 = loadb p7b
  r = mul p0, 1000
  r = add r, p7
  free buf
  ret r
}
`
	res, _, err := run(t, src, "main", core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 'A'+7 = 72 at index 0, 'A' = 65 at index 7 -> 72065.
	if res[0] != 72065 {
		t.Errorf("result = %d, want 72065", res[0])
	}
}

// TestRuntimeErrorLocation: errors carry function and line info.
func TestRuntimeErrorLocation(t *testing.T) {
	src := "module m\nexport func main() {\ne:\n  nop\n  x = div 1, 0\n  ret\n}"
	_, _, err := run(t, src, "main", core.Base, nil)
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "main") || !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error lacks location: %v", err)
	}
}
