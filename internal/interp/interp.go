// Package interp executes compiled IR modules over the simulated machine:
// loads and stores go through the PKRU-checked thread view, allocation
// instructions route through pkalloc (feeding the provenance tracer in
// profiling builds), and calls crossing the compartment boundary pass
// through the same call-gate runtime native libraries use.
//
// Indirect calls are subject to the CFI policy the paper assumes (§2):
// only address-taken functions are legal targets, and a violation aborts
// the program rather than transferring control.
package interp

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/ir"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Library names under which the module's functions are registered.
const (
	TrustedLib   = "ir/trusted"
	UntrustedLib = "ir/untrusted"
)

// ErrCFIViolation is returned when an indirect call targets anything but
// an address-taken function — the simulated CFI abort.
var ErrCFIViolation = errors.New("interp: CFI violation: indirect call to invalid target")

// ErrStepLimit is returned when execution exceeds the configured budget.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// RuntimeError wraps an error raised by an instruction with its location.
type RuntimeError struct {
	Func string
	Line int
	Err  error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("interp: %s (line %d): %v", e.Func, e.Line, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// Options tunes a Machine.
type Options struct {
	// Output receives print instruction output (default: io.Discard).
	Output io.Writer
	// StepLimit bounds total executed instructions (default 100M).
	StepLimit uint64
}

// Stats counts interpreter activity.
type Stats struct {
	Instructions  uint64
	Calls         uint64
	IndirectCalls uint64
}

// Machine executes one module against one built program.
type Machine struct {
	mod  *ir.Module
	prog *core.Program
	out  io.Writer

	// Function-pointer table: address i+1 is funcAddrs[i]. Only
	// address-taken functions appear, which is the CFI target set.
	funcAddrs []*ir.Func
	addrOf    map[string]uint64

	steps     uint64
	stepLimit uint64
	stats     Stats
}

// New builds a machine for mod over prog. The module must have passed
// compile.Pipeline (or at least AssignAllocIDs + MarkAddressTaken) first.
// Every IR function is registered with the program's FFI registry so that
// IR code and Go-hosted native libraries can call each other freely.
func New(mod *ir.Module, prog *core.Program, opts ...Options) (*Machine, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.Output == nil {
		opt.Output = io.Discard
	}
	if opt.StepLimit == 0 {
		opt.StepLimit = 100_000_000
	}
	m := &Machine{
		mod:       mod,
		prog:      prog,
		out:       opt.Output,
		addrOf:    make(map[string]uint64),
		stepLimit: opt.StepLimit,
	}
	for _, f := range mod.Funcs {
		if f.AddressTaken {
			m.funcAddrs = append(m.funcAddrs, f)
			m.addrOf[f.Name] = uint64(len(m.funcAddrs)) // 1-based; 0 is null
		}
	}
	reg := prog.Runtime().Registry
	tl, err := reg.Library(TrustedLib, ffi.Trusted)
	if err != nil {
		return nil, err
	}
	ul, err := reg.Library(UntrustedLib, ffi.Untrusted)
	if err != nil {
		return nil, err
	}
	for _, f := range mod.Funcs {
		f := f
		wrapped := func(th *ffi.Thread, args []uint64) ([]uint64, error) {
			return m.exec(th, f, args)
		}
		if f.Untrusted {
			ul.Define(f.Name, wrapped)
		} else {
			tl.Define(f.Name, wrapped)
		}
	}
	return m, nil
}

// Stats returns interpreter counters.
func (m *Machine) Stats() Stats { return m.stats }

// Run invokes the named function on the program's main thread. With a
// telemetry registry attached to the program, the whole run is timed as a
// span and the interpreter's instruction/call counts are promoted into
// registry counters when the run finishes (batched, so the per-instruction
// dispatch loop stays untouched).
func (m *Machine) Run(entry string, args ...uint64) ([]uint64, error) {
	f, ok := m.mod.Func(entry)
	if !ok {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	reg := m.prog.Telemetry()
	sp := telemetry.StartSpan(
		reg.Histogram("pkrusafe_interp_run_ns", "Wall time of one interpreter entry-point run.", "ns"),
		nil, "interp:run")
	before := m.stats
	res, err := m.call(m.prog.Main(), nil, f, args)
	sp.End()
	if reg != nil {
		reg.Counter("pkrusafe_interp_instructions_total", "Instructions executed by the IR interpreter.").
			Add(m.stats.Instructions - before.Instructions)
		reg.Counter("pkrusafe_interp_calls_total", "Function calls dispatched by the IR interpreter.").
			Add(m.stats.Calls - before.Calls)
	}
	return res, err
}

// libOf returns the FFI library a function was registered in.
func libOf(f *ir.Func) string {
	if f.Untrusted {
		return UntrustedLib
	}
	return TrustedLib
}

// call dispatches a call from caller to callee with the gate discipline
// the compartment annotations imply. A nil caller means the host is
// invoking the entry point (trusted context).
func (m *Machine) call(th *ffi.Thread, caller *ir.Func, callee *ir.Func, args []uint64) ([]uint64, error) {
	m.stats.Calls++
	callerUntrusted := caller != nil && caller.Untrusted
	switch {
	case !callerUntrusted && callee.Untrusted:
		// Forward gate: T -> U. When a fault supervisor is configured, the
		// gate carries a recovery point: a PKUERR/MAPERR fault or a panic
		// inside the untrusted callee unwinds here instead of killing the
		// run, and the supervisor's policy (retry/quarantine/heal) decides
		// what happens next. The nil supervisor degrades to a plain Call.
		if sup := m.prog.Supervisor(); sup != nil {
			return sup.Call(th, libOf(callee), callee.Name, args...)
		}
		return th.Call(libOf(callee), callee.Name, args...)
	case callerUntrusted && !callee.Untrusted:
		if callee.NeedsEntryGate() {
			// Reverse gate on an instrumented (exported/address-taken) API.
			return th.Call(libOf(callee), callee.Name, args...)
		}
		// Uninstrumented trusted function invoked from U: no gate; it runs
		// with untrusted rights and crashes if it touches MT (§3.3).
		return th.CallNoGate(libOf(callee), callee.Name, args...)
	default:
		return th.CallNoGate(libOf(callee), callee.Name, args...)
	}
}

// frame is the mutable state of one function activation.
type frame struct {
	fn   *ir.Func
	regs map[string]uint64
	// stackSlots holds salloc/usalloc allocations, released when the
	// activation ends — the §6 stack-protection prototype's automatic
	// lifetime.
	stackSlots []vm.Addr
}

func (fr *frame) get(o ir.Operand) (uint64, error) {
	if o.IsImm {
		return o.Imm, nil
	}
	v, ok := fr.regs[o.Reg]
	if !ok {
		return 0, fmt.Errorf("use of undefined register %q", o.Reg)
	}
	return v, nil
}

// exec interprets one function body on the given thread.
func (m *Machine) exec(th *ffi.Thread, f *ir.Func, args []uint64) ([]uint64, error) {
	if len(args) != len(f.Params) {
		return nil, &RuntimeError{Func: f.Name, Err: fmt.Errorf("called with %d args, want %d", len(args), len(f.Params))}
	}
	fr := &frame{fn: f, regs: make(map[string]uint64, len(f.Params)+8)}
	defer func() {
		for _, slot := range fr.stackSlots {
			_ = m.prog.Free(slot) // frame teardown; the process may be dying
		}
	}()
	for i, p := range f.Params {
		fr.regs[p] = args[i]
	}
	blk := f.Entry()
	if blk == nil {
		return nil, &RuntimeError{Func: f.Name, Err: errors.New("function has no blocks")}
	}
	for {
		for i := range blk.Instrs {
			ins := &blk.Instrs[i]
			m.steps++
			m.stats.Instructions++
			if m.steps > m.stepLimit {
				return nil, ErrStepLimit
			}
			next, ret, done, err := m.step(th, f, fr, ins)
			if err != nil {
				var re *RuntimeError
				if errors.As(err, &re) {
					return nil, err // already located
				}
				return nil, &RuntimeError{Func: f.Name, Line: ins.Line, Err: err}
			}
			if done {
				return ret, nil
			}
			if next != "" {
				nb, ok := f.Block(next)
				if !ok {
					return nil, &RuntimeError{Func: f.Name, Line: ins.Line, Err: fmt.Errorf("undefined block %q", next)}
				}
				blk = nb
				goto nextBlock
			}
		}
		return nil, &RuntimeError{Func: f.Name, Err: fmt.Errorf("block %q fell off the end", blk.Name)}
	nextBlock:
	}
}

// step executes one instruction. It returns the next block label for
// branches, the return values and done=true for ret.
func (m *Machine) step(th *ffi.Thread, f *ir.Func, fr *frame, ins *ir.Instr) (next string, ret []uint64, done bool, err error) {
	setDst := func(vals ...uint64) error {
		if len(ins.Dst) > len(vals) {
			return fmt.Errorf("%d destinations but %d values", len(ins.Dst), len(vals))
		}
		for i, d := range ins.Dst {
			fr.regs[d] = vals[i]
		}
		return nil
	}
	arg := func(i int) (uint64, error) { return fr.get(ins.Args[i]) }

	switch ins.Op {
	case ir.OpConst:
		v, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(v)

	case ir.OpBin:
		a, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		b, e := arg(1)
		if e != nil {
			return "", nil, false, e
		}
		v, e := evalBin(ins.Bin, a, b)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(v)

	case ir.OpAlloc:
		size, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		if ins.Site.Func == "" {
			return "", nil, false, errors.New("allocation site has no AllocId; run compile.AssignAllocIDs")
		}
		site := m.prog.Site(ins.Site.Func, ins.Site.Block, ins.Site.Site)
		addr, e := m.prog.AllocAt(site, size)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(uint64(addr))

	case ir.OpUAlloc:
		size, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		// With an AllocId (assigned to rewritten and explicit ualloc alike)
		// the allocation goes through the registered site, so per-site
		// accounting covers MU traffic too; the pool is forced to MU rather
		// than profile-classified because an explicit ualloc site is not in
		// the profile.
		if ins.Site.Func != "" {
			site := m.prog.UntrustedSite(ins.Site.Func, ins.Site.Block, ins.Site.Site)
			addr, e := m.prog.AllocAt(site, size)
			if e != nil {
				return "", nil, false, e
			}
			return "", nil, false, setDst(uint64(addr))
		}
		addr, e := m.prog.Allocator().UntrustedAlloc(size)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(uint64(addr))

	case ir.OpSAlloc:
		// §6 stack-protection prototype: a stack slot classified exactly
		// like heap data — site-routed, profiler-tracked — but freed when
		// the activation ends.
		size, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		if ins.Site.Func == "" {
			return "", nil, false, errors.New("stack slot has no AllocId; run compile.AssignAllocIDs")
		}
		site := m.prog.Site(ins.Site.Func, ins.Site.Block, ins.Site.Site)
		addr, e := m.prog.AllocAt(site, size)
		if e != nil {
			return "", nil, false, e
		}
		fr.stackSlots = append(fr.stackSlots, addr)
		return "", nil, false, setDst(uint64(addr))

	case ir.OpUSAlloc:
		size, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		if ins.Site.Func != "" {
			site := m.prog.UntrustedSite(ins.Site.Func, ins.Site.Block, ins.Site.Site)
			addr, e := m.prog.AllocAt(site, size)
			if e != nil {
				return "", nil, false, e
			}
			fr.stackSlots = append(fr.stackSlots, addr)
			return "", nil, false, setDst(uint64(addr))
		}
		addr, e := m.prog.Allocator().UntrustedAlloc(size)
		if e != nil {
			return "", nil, false, e
		}
		fr.stackSlots = append(fr.stackSlots, addr)
		return "", nil, false, setDst(uint64(addr))

	case ir.OpRealloc:
		ptr, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		size, e := arg(1)
		if e != nil {
			return "", nil, false, e
		}
		addr, e := m.prog.Realloc(vm.Addr(ptr), size)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(uint64(addr))

	case ir.OpFree:
		ptr, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, m.prog.Free(vm.Addr(ptr))

	case ir.OpLoad, ir.OpLoadB:
		ptr, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		var v uint64
		if ins.Op == ir.OpLoad {
			v, e = th.VM.Load64(vm.Addr(ptr))
		} else {
			var b byte
			b, e = th.VM.Load8(vm.Addr(ptr))
			v = uint64(b)
		}
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(v)

	case ir.OpStore, ir.OpStoreB:
		ptr, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		val, e := arg(1)
		if e != nil {
			return "", nil, false, e
		}
		if ins.Op == ir.OpStore {
			e = th.VM.Store64(vm.Addr(ptr), val)
		} else {
			e = th.VM.Store8(vm.Addr(ptr), byte(val))
		}
		return "", nil, false, e

	case ir.OpCall:
		callee, ok := m.mod.Func(ins.Callee)
		if !ok {
			return "", nil, false, fmt.Errorf("undefined function %q", ins.Callee)
		}
		args := make([]uint64, len(ins.Args))
		for i := range ins.Args {
			v, e := fr.get(ins.Args[i])
			if e != nil {
				return "", nil, false, e
			}
			args[i] = v
		}
		res, e := m.call(th, f, callee, args)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(res...)

	case ir.OpICall:
		m.stats.IndirectCalls++
		fp, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		// CFI: the target must be in the address-taken set.
		if fp == 0 || fp > uint64(len(m.funcAddrs)) {
			return "", nil, false, ErrCFIViolation
		}
		callee := m.funcAddrs[fp-1]
		args := make([]uint64, len(ins.Args)-1)
		for i := 1; i < len(ins.Args); i++ {
			v, e := fr.get(ins.Args[i])
			if e != nil {
				return "", nil, false, e
			}
			args[i-1] = v
		}
		res, e := m.call(th, f, callee, args)
		if e != nil {
			return "", nil, false, e
		}
		return "", nil, false, setDst(res...)

	case ir.OpFuncAddr:
		addr, ok := m.addrOf[ins.Callee]
		if !ok {
			return "", nil, false, fmt.Errorf("funcaddr of %q, which is not address-taken; run compile.MarkAddressTaken", ins.Callee)
		}
		return "", nil, false, setDst(addr)

	case ir.OpBr:
		cond, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		if cond != 0 {
			return ins.Then, nil, false, nil
		}
		return ins.Else, nil, false, nil

	case ir.OpJmp:
		return ins.Then, nil, false, nil

	case ir.OpRet:
		vals := make([]uint64, len(ins.Args))
		for i := range ins.Args {
			v, e := fr.get(ins.Args[i])
			if e != nil {
				return "", nil, false, e
			}
			vals[i] = v
		}
		return "", vals, true, nil

	case ir.OpPrint:
		v, e := arg(0)
		if e != nil {
			return "", nil, false, e
		}
		fmt.Fprintln(m.out, v)
		return "", nil, false, nil

	case ir.OpNop:
		return "", nil, false, nil

	default:
		return "", nil, false, fmt.Errorf("unimplemented op %v", ins.Op)
	}
}

func evalBin(k ir.BinKind, a, b uint64) (uint64, error) {
	boolVal := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	switch k {
	case ir.BinAdd:
		return a + b, nil
	case ir.BinSub:
		return a - b, nil
	case ir.BinMul:
		return a * b, nil
	case ir.BinDiv:
		if b == 0 {
			return 0, errors.New("division by zero")
		}
		return a / b, nil
	case ir.BinMod:
		if b == 0 {
			return 0, errors.New("division by zero")
		}
		return a % b, nil
	case ir.BinAnd:
		return a & b, nil
	case ir.BinOr:
		return a | b, nil
	case ir.BinXor:
		return a ^ b, nil
	case ir.BinShl:
		return a << (b & 63), nil
	case ir.BinShr:
		return a >> (b & 63), nil
	case ir.BinEq:
		return boolVal(a == b), nil
	case ir.BinNe:
		return boolVal(a != b), nil
	case ir.BinLt:
		return boolVal(a < b), nil
	case ir.BinLe:
		return boolVal(a <= b), nil
	case ir.BinGt:
		return boolVal(a > b), nil
	case ir.BinGe:
		return boolVal(a >= b), nil
	default:
		return 0, fmt.Errorf("unknown binop %v", k)
	}
}
