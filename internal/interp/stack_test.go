package interp

import (
	"errors"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/pkir"
	"repro/internal/profile"
	"repro/internal/static"
	"repro/internal/vm"
)

// The §6 stack-protection prototype: stack slots are classified by the
// same profiling pipeline as heap data and freed at frame exit.

const stackSrc = `
module stackprot

untrusted export func u_fill(p) {
entry:
  store p, 4242
  ret
}

export func main() {
entry:
  shared = salloc 8
  private = salloc 8
  store private, 1
  call u_fill(shared)
  v = load shared
  w = load private
  s = add v, w
  ret s
}
`

func buildStack(t *testing.T, cfg core.BuildConfig, prof *profile.Profile) (*core.Program, *Machine) {
	t.Helper()
	mod, err := pkir.Parse(stackSrc)
	if err != nil {
		t.Fatal(err)
	}
	var applied *profile.Profile
	if cfg == core.MPK || cfg == core.Alloc {
		applied = prof
	}
	if _, err := compile.Pipeline(mod, applied); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), cfg, applied)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, m
}

func TestStackSlotPipeline(t *testing.T) {
	// Empty profile: the untrusted write to the trusted stack slot faults.
	_, m1 := buildStack(t, core.MPK, profile.New())
	_, err := m1.Run("main")
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("unshared stack slot should fault: %v", err)
	}

	// Profiling run records the slot's site.
	prog2, m2 := buildStack(t, core.Profiling, nil)
	res, err := m2.Run("main")
	if err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	if res[0] != 4243 {
		t.Errorf("result = %d", res[0])
	}
	prof, _ := prog2.RecordedProfile()
	sharedID := profile.AllocID{Func: "main", Block: 0, Site: 0}
	privateID := profile.AllocID{Func: "main", Block: 0, Site: 1}
	if !prof.Contains(sharedID) {
		t.Fatalf("profile missing shared stack slot: %v", prof.IDs())
	}
	if prof.Contains(privateID) {
		t.Error("private stack slot wrongly profiled")
	}

	// Enforced with the profile: runs clean; the private slot stays in MT.
	prog3, m3 := buildStack(t, core.MPK, prof)
	res, err = m3.Run("main")
	if err != nil {
		t.Fatalf("enforced run: %v", err)
	}
	if res[0] != 4243 {
		t.Errorf("enforced result = %d", res[0])
	}
	// Frame teardown freed both slots.
	st := prog3.Allocator().Stats()
	if st.Trusted.BytesLive != 0 || st.Untrusted.BytesLive != 0 {
		t.Errorf("stack slots leaked: %+v", st)
	}
}

func TestStackSlotsFreedAcrossCalls(t *testing.T) {
	src := `
module rec
export func leaf() {
entry:
  tmp = salloc 64
  store tmp, 1
  v = load tmp
  ret v
}
export func main() {
entry:
  i = const 0
  acc = const 0
  jmp loop
loop:
  v = call leaf()
  acc = add acc, v
  i = add i, 1
  done = eq i, 50
  br done, out, loop
out:
  ret acc
}
`
	mod, err := pkir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(mod, nil); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 50 {
		t.Errorf("result = %d", res[0])
	}
	if live := prog.Allocator().Stats().Trusted.BytesLive; live != 0 {
		t.Errorf("stack slots leaked across 50 activations: %d bytes live", live)
	}
}

func TestStaticAnalysisCoversStackSlots(t *testing.T) {
	mod, err := pkir.Parse(stackSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(mod, nil); err != nil {
		t.Fatal(err)
	}
	prof, st, err := static.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalSites != 2 {
		t.Errorf("total sites = %d, want 2 stack slots", st.TotalSites)
	}
	if !prof.Contains(profile.AllocID{Func: "main", Block: 0, Site: 0}) {
		t.Errorf("static analysis missed the shared stack slot: %v", prof.IDs())
	}
	if prof.Contains(profile.AllocID{Func: "main", Block: 0, Site: 1}) {
		t.Error("static analysis over-shared the private stack slot")
	}
}

func TestUSAllocExplicit(t *testing.T) {
	src := `
module us
untrusted export func u_read(p) {
entry:
  v = load p
  ret v
}
export func main() {
entry:
  b = usalloc 8
  store b, 9
  v = call u_read(b)
  ret v
}
`
	mod, err := pkir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(mod, profile.New()); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), core.MPK, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("main")
	if err != nil {
		t.Fatalf("explicit usalloc run: %v", err)
	}
	if res[0] != 9 {
		t.Errorf("result = %d", res[0])
	}
	if live := prog.Allocator().Stats().Untrusted.BytesLive; live != 0 {
		t.Errorf("usalloc slot leaked: %d", live)
	}
}
