package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: GateEnter, A: uint64(i)})
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, e := range snap {
		if e.A != uint64(i+2) || e.Seq != uint64(i+2) {
			t.Errorf("event %d = %+v, want A=Seq=%d", i, e, i+2)
		}
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{Kind: Fault, A: 0x1000, B: 1})
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != Fault {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	r.Emit(Event{Kind: Resume})
	if r.Len() != 1 {
		t.Error("zero-capacity ring unusable")
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: GateEnter, A: 0xc})
	r.Emit(Event{Kind: Fault, A: 0x2000, B: 1})
	r.Emit(Event{Kind: Record, A: 0x2000, Note: "main@0.0"})
	r.Emit(Event{Kind: Resume, A: 0x2000})
	r.Emit(Event{Kind: GateExit, A: 0})
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	for _, want := range []string{"gate-enter", "fault", "addr=0x2000", "pkey=1", "site=main@0.0", "resume", "gate-exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind name")
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Emit(Event{Kind: GateEnter, A: uint64(i)})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Errorf("total = %d", r.Total())
	}
	// Sequence numbers in a snapshot are strictly increasing.
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("non-monotone seq at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}
