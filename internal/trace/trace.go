// Package trace provides a lightweight event ring for the PKRU-Safe
// runtime: call-gate traversals, protection-key faults and single-step
// resumes are recorded into a fixed-size buffer that can be dumped when a
// program dies on an MPK violation — the first question after a crash in
// an enforced build is always "which boundary crossing and which access
// got us here" (§6 treats such crashes as missed-profile bugs to debug).
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// GateEnter: a call gate installed new rights (A = PKRU installed).
	GateEnter Kind = iota
	// GateExit: a call gate restored saved rights (A = PKRU restored).
	GateExit
	// Fault: a protection-key violation was delivered (A = address,
	// B = pkey).
	Fault
	// Resume: the profiler single-stepped past a fault and restored
	// rights (A = address).
	Resume
	// Record: the profiler attributed a fault to an allocation site
	// (A = object base, Note = AllocId).
	Record
	// Span: a telemetry span ended (A = duration in nanoseconds,
	// Note = span name).
	Span
	// Recover: the fault supervisor unwound a failed compartment call back
	// to its recovery point (A = PKRU restored, Note = policy outcome).
	Recover
	// Heal: the supervisor migrated a misclassified allocation site MT→MU
	// (A = object base, Note = AllocId).
	Heal
	// Crossing: the crossing sampler attributed a forward-gate argument to
	// a live allocation (A = argument address, B = gate latency in
	// nanoseconds, Note = AllocId).
	Crossing
	// ProfileSwap: the profile store promoted a new active generation
	// (A = new generation, B = previous generation, Note = source).
	ProfileSwap
)

func (k Kind) String() string {
	switch k {
	case GateEnter:
		return "gate-enter"
	case GateExit:
		return "gate-exit"
	case Fault:
		return "fault"
	case Resume:
		return "resume"
	case Record:
		return "record"
	case Span:
		return "span"
	case Recover:
		return "recover"
	case Heal:
		return "heal"
	case Crossing:
		return "crossing"
	case ProfileSwap:
		return "profile-swap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one runtime occurrence. A and B are kind-specific payloads
// (addresses, PKRU values, keys); Note carries an identifier when one
// exists. When is a monotonic timestamp — the offset from the owning
// ring's creation, stamped by Ring.Emit — so dumped events order and
// space themselves on a timeline even after the ring wraps.
type Event struct {
	Seq  uint64
	When time.Duration // monotonic offset from the ring's epoch
	Kind Kind
	A, B uint64
	Note string
}

func (e Event) String() string {
	prefix := fmt.Sprintf("#%d +%-12s %-10s", e.Seq, e.When, e.Kind)
	switch e.Kind {
	case GateEnter, GateExit:
		return fmt.Sprintf("%s pkru=%#08x", prefix, e.A)
	case Fault:
		return fmt.Sprintf("%s addr=%#x pkey=%d", prefix, e.A, e.B)
	case Record, Heal:
		return fmt.Sprintf("%s base=%#x site=%s", prefix, e.A, e.Note)
	case Recover:
		return fmt.Sprintf("%s pkru=%#08x outcome=%s", prefix, e.A, e.Note)
	case Crossing:
		return fmt.Sprintf("%s addr=%#x site=%s lat=%v", prefix, e.A, e.Note, time.Duration(e.B))
	case ProfileSwap:
		return fmt.Sprintf("%s generation=%d prev=%d source=%s", prefix, e.A, e.B, e.Note)
	case Span:
		return fmt.Sprintf("%s %s took=%v", prefix, e.Note, time.Duration(e.A))
	default:
		return fmt.Sprintf("%s addr=%#x", prefix, e.A)
	}
}

// Ring is a fixed-capacity, thread-safe event buffer that overwrites its
// oldest entries. The zero value is unusable; construct with NewRing.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64    // total events ever emitted
	epoch time.Time // monotonic reference When offsets are measured from
}

// NewRing creates a ring holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n), epoch: time.Now()}
}

// Emit appends an event, stamping its sequence number and its monotonic
// When offset. A caller-provided When is overwritten: the ring is the
// single clock, so every retained event is comparable.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	// The clock is read under the lock so When and Seq order identically:
	// a dump is a timeline, and a timeline that disagrees with the
	// sequence numbers would be worse than no timestamps at all.
	e.When = time.Since(r.epoch)
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total returns the number of events ever emitted.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns the number of events that have been overwritten on
// wraparound and are no longer retained. It is monotone: once the ring
// wraps, every further Emit drops the then-oldest event.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := uint64(len(r.buf)); r.next > n {
		return r.next - n
	}
	return 0
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	events, _ := r.SnapshotDropped()
	return events
}

// SnapshotDropped returns the retained events (oldest first) together
// with the dropped count, both taken under one lock acquisition so the
// pair is mutually consistent even while other goroutines keep emitting:
// dropped always equals the first returned event's sequence number once
// the ring has wrapped.
func (r *Ring) SnapshotDropped() (events []Event, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	events = make([]Event, 0, n)
	start := uint64(0)
	if r.next > n {
		start = r.next - n
		dropped = start
	}
	for s := start; s < r.next; s++ {
		events = append(events, r.buf[s%n])
	}
	return events, dropped
}

// Dump writes the retained events to w, oldest first. If the ring has
// wrapped, a leading line reports how many earlier events were dropped so
// a truncated crash dump is never mistaken for the full history. The
// events and the dropped count come from one atomic snapshot, so a dump
// concurrent with Emit never shows a torn view. Timestamps are rebased to
// the first retained event (the first line always reads +0s): a dump is
// read as "what happened, how far apart", and an absolute offset from a
// ring epoch the reader cannot see would only obscure that.
func (r *Ring) Dump(w io.Writer) {
	events, dropped := r.SnapshotDropped()
	WriteEvents(w, events, dropped, len(r.buf))
}

// WriteEvents renders events in Dump's text format: an optional leading
// dropped-count line, then one line per event with When rebased to the
// first event's timestamp. Exported so goldens can pin the format on
// constructed events and so other dumps (the obs /trace endpoint, crash
// reports) render identically to Ring.Dump.
func WriteEvents(w io.Writer, events []Event, dropped uint64, capacity int) {
	if dropped > 0 {
		fmt.Fprintf(w, "... %d earlier event(s) dropped (ring capacity %d)\n", dropped, capacity)
	}
	var base time.Duration
	if len(events) > 0 {
		base = events[0].When
	}
	for _, e := range events {
		e.When -= base
		fmt.Fprintln(w, e.String())
	}
}
