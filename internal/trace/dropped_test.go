package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDroppedCounts(t *testing.T) {
	r := NewRing(4)
	if r.Dropped() != 0 {
		t.Fatalf("fresh ring dropped = %d", r.Dropped())
	}
	for i := 0; i < 4; i++ {
		r.Emit(Event{Kind: GateEnter})
	}
	if r.Dropped() != 0 {
		t.Fatalf("exactly-full ring dropped = %d", r.Dropped())
	}
	for i := 0; i < 3; i++ {
		r.Emit(Event{Kind: GateExit})
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if r.Total() != 7 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

func TestDumpReportsDropped(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: Fault, A: uint64(i), B: 1})
	}
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "3 earlier event(s) dropped") {
		t.Fatalf("dump missing dropped note:\n%s", out)
	}
	if !strings.Contains(out, "ring capacity 2") {
		t.Fatalf("dump missing capacity:\n%s", out)
	}
	// An unwrapped ring stays silent about drops.
	r2 := NewRing(8)
	r2.Emit(Event{Kind: Fault})
	var b2 strings.Builder
	r2.Dump(&b2)
	if strings.Contains(b2.String(), "dropped") {
		t.Fatalf("unwrapped ring reported drops:\n%s", b2.String())
	}
}

func TestSpanEventString(t *testing.T) {
	e := Event{Seq: 7, Kind: Span, A: uint64(1500 * time.Nanosecond), Note: "gate:libm"}
	s := e.String()
	for _, want := range []string{"span", "gate:libm", "took=1.5µs"} {
		if !strings.Contains(s, want) {
			t.Errorf("span string %q missing %q", s, want)
		}
	}
}

// TestConcurrentDropped exercises Emit racing against the read-side
// accessors; meaningful under -race.
func TestConcurrentDropped(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Emit(Event{Kind: Span, A: uint64(i)})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = r.Dropped()
			_ = r.Len()
			if i%256 == 0 {
				var b strings.Builder
				r.Dump(&b)
			}
		}
	}()
	wg.Wait()
	if got := r.Dropped(); got != 8000-16 {
		t.Fatalf("dropped = %d, want %d", got, 8000-16)
	}
}
