package trace

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestDumpConcurrentWithEmit hammers Dump from one goroutine while others
// keep emitting. Under -race this catches unlocked reads; the assertions
// catch torn views: the dropped-count header and the events must come from
// one snapshot, so the first printed sequence number always equals the
// dropped count, and printed sequence numbers are contiguous.
func TestDumpConcurrentWithEmit(t *testing.T) {
	r := NewRing(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Emit(Event{Kind: Fault, A: 0x1000, B: 1})
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		var sb strings.Builder
		r.Dump(&sb)
		checkDumpCoherent(t, sb.String())
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// checkDumpCoherent parses one Dump output and asserts the dropped header
// matches the first event and sequence numbers have no gaps.
func checkDumpCoherent(t *testing.T, out string) {
	t.Helper()
	var dropped uint64
	var seqs []uint64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "... ") {
			fields := strings.Fields(line)
			n, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad dropped header %q: %v", line, err)
			}
			dropped = n
			continue
		}
		if !strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected dump line %q", line)
		}
		numEnd := strings.IndexByte(line, ' ')
		n, err := strconv.ParseUint(line[1:numEnd], 10, 64)
		if err != nil {
			t.Fatalf("bad seq in %q: %v", line, err)
		}
		seqs = append(seqs, n)
	}
	if len(seqs) == 0 {
		return
	}
	if seqs[0] != dropped {
		t.Errorf("torn dump: first seq %d != dropped %d\n%s", seqs[0], dropped, out)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Errorf("torn dump: gap %d -> %d\n%s", seqs[i-1], seqs[i], out)
		}
	}
}

// TestSnapshotDroppedPairsUnderLoad asserts the (events, dropped) pair
// stays mutually consistent while writers run.
func TestSnapshotDroppedPairsUnderLoad(t *testing.T) {
	r := NewRing(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Emit(Event{Kind: Resume, A: 0x2000})
			}
		}
	}()
	for i := 0; i < 500; i++ {
		events, dropped := r.SnapshotDropped()
		if len(events) > 0 && events[0].Seq != dropped {
			t.Fatalf("first seq %d != dropped %d", events[0].Seq, dropped)
		}
		for j := 1; j < len(events); j++ {
			if events[j].Seq != events[j-1].Seq+1 {
				t.Fatalf("gap in snapshot: %d -> %d", events[j-1].Seq, events[j].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}
