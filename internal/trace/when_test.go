package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEmitStampsMonotonicWhen pins the timestamp contract: every emitted
// event carries a non-decreasing When that orders identically to Seq,
// even under concurrent emitters — the property the timeline export and
// the rebased Dump build on.
func TestEmitStampsMonotonicWhen(t *testing.T) {
	r := NewRing(16)
	r.Emit(Event{Kind: GateEnter})
	time.Sleep(time.Millisecond)
	r.Emit(Event{Kind: GateExit})
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].When < 0 || snap[1].When < snap[0].When {
		t.Fatalf("When not monotone: %v then %v", snap[0].When, snap[1].When)
	}
	if snap[1].When-snap[0].When < time.Millisecond {
		t.Errorf("second event only %v after first, slept 1ms", snap[1].When-snap[0].When)
	}
	// A caller-provided When must be overwritten by the ring's clock.
	r2 := NewRing(4)
	r2.Emit(Event{Kind: Fault, When: -time.Hour})
	if got := r2.Snapshot()[0].When; got < 0 {
		t.Errorf("Emit kept caller-provided When %v", got)
	}
}

// TestWhenOrdersWithSeqConcurrent drives concurrent emitters and checks
// that a snapshot's When column never runs backwards relative to Seq.
func TestWhenOrdersWithSeqConcurrent(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(Event{Kind: Span, A: uint64(i)})
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("seq not increasing at %d", i)
		}
		if snap[i].When < snap[i-1].When {
			t.Fatalf("When runs backwards at %d: %v after %v", i, snap[i].When, snap[i-1].When)
		}
	}
}

// TestWriteEventsGolden pins the dump text format byte-for-byte: the
// dropped header, the +offset column rebased to the first event, and the
// per-kind payload rendering. The obs /trace endpoint and crash reports
// reuse this formatter, so a change here is a change to every dump a
// user reads — make it deliberately.
func TestWriteEventsGolden(t *testing.T) {
	events := []Event{
		{Seq: 3, When: 2500 * time.Microsecond, Kind: GateEnter, A: 0x5555000c},
		{Seq: 4, When: 2600 * time.Microsecond, Kind: Fault, A: 0x2000, B: 1},
		{Seq: 5, When: 4100 * time.Microsecond, Kind: Recover, A: 0xffffffff, Note: "retry"},
		{Seq: 6, When: 4100*time.Microsecond + 500*time.Nanosecond, Kind: GateExit, A: 0xffffffff},
		{Seq: 7, When: 5 * time.Millisecond, Kind: Span, A: uint64(1500 * time.Nanosecond), Note: "gate:libu"},
	}
	var b strings.Builder
	WriteEvents(&b, events, 3, 8)
	want := "... 3 earlier event(s) dropped (ring capacity 8)\n" +
		"#3 +0s           gate-enter pkru=0x5555000c\n" +
		"#4 +100µs        fault      addr=0x2000 pkey=1\n" +
		"#5 +1.6ms        recover    pkru=0xffffffff outcome=retry\n" +
		"#6 +1.6005ms     gate-exit  pkru=0xffffffff\n" +
		"#7 +2.5ms        span       gate:libu took=1.5µs\n"
	if b.String() != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", b.String(), want)
	}

	// Without drops there is no header and the first line is still +0s.
	var b2 strings.Builder
	WriteEvents(&b2, events[:1], 0, 8)
	if got, want := b2.String(), "#3 +0s           gate-enter pkru=0x5555000c\n"; got != want {
		t.Fatalf("no-drop golden mismatch:\n got: %q\nwant: %q", got, want)
	}

	// Ring.Dump routes through the same formatter: its first event line
	// must start at +0s even though the ring stamped a nonzero When.
	r := NewRing(2)
	r.Emit(Event{Kind: GateEnter, A: 0xc})
	var b3 strings.Builder
	r.Dump(&b3)
	if !strings.Contains(b3.String(), "+0s") {
		t.Fatalf("Dump not rebased to first event:\n%s", b3.String())
	}
}
