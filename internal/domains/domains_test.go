package domains

import (
	"errors"
	"testing"

	"repro/internal/mpk"
	"repro/internal/vm"
)

func newManager(t *testing.T) (*Manager, *vm.Thread) {
	t.Helper()
	s := vm.NewSpace()
	m, err := NewManager(s)
	if err != nil {
		t.Fatal(err)
	}
	return m, vm.NewThread(s, nil)
}

func TestAddDomainAssignsDistinctKeys(t *testing.T) {
	m, _ := newManager(t)
	a, err := m.AddDomain("js")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddDomain("codec")
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == b.Key || a.Key == m.TrustedKey() || b.Key == 0 {
		t.Errorf("key assignment: js=%v codec=%v", a.Key, b.Key)
	}
	if _, err := m.AddDomain("js"); err == nil {
		t.Error("duplicate domain accepted")
	}
	if got, ok := m.Domain("codec"); !ok || got != b {
		t.Error("Domain lookup failed")
	}
	if len(m.Domains()) != 2 {
		t.Errorf("Domains() = %d", len(m.Domains()))
	}
}

func TestKeyExhaustion(t *testing.T) {
	m, _ := newManager(t)
	made := 0
	for i := 0; i < 20; i++ {
		_, err := m.AddDomain(string(rune('a' + i)))
		if err != nil {
			if !errors.Is(err, ErrKeysExhausted) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		made++
	}
	if made != 14 {
		t.Errorf("created %d domains, want 14 (16 keys - key0 - MT key)", made)
	}
}

// TestMutualIsolation is the point of the extension: domain A can touch
// the shared pool and its own pool, but neither MT nor domain B's pool.
func TestMutualIsolation(t *testing.T) {
	m, th := newManager(t)
	js, err := m.AddDomain("js")
	if err != nil {
		t.Fatal(err)
	}
	codec, err := m.AddDomain("codec")
	if err != nil {
		t.Fatal(err)
	}
	secretT, err := m.AllocTrusted(8)
	if err != nil {
		t.Fatal(err)
	}
	sharedBuf, err := m.AllocShared(8)
	if err != nil {
		t.Fatal(err)
	}
	jsBuf, err := m.Alloc(js, 8)
	if err != nil {
		t.Fatal(err)
	}
	codecBuf, err := m.Alloc(codec, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Trusted initializes everything.
	for _, a := range []vm.Addr{secretT, sharedBuf, jsBuf, codecBuf} {
		if err := th.Store64(a, 7); err != nil {
			t.Fatalf("trusted init of %v: %v", a, err)
		}
	}

	restore := m.Enter(th, js)
	if _, err := th.Load64(sharedBuf); err != nil {
		t.Errorf("js cannot read shared pool: %v", err)
	}
	if _, err := th.Load64(jsBuf); err != nil {
		t.Errorf("js cannot read its own pool: %v", err)
	}
	if _, err := th.Load64(secretT); err == nil {
		t.Error("js read MT")
	}
	if _, err := th.Load64(codecBuf); err == nil {
		t.Error("js read codec's private pool")
	}
	if err := th.Store64(codecBuf, 9); err == nil {
		t.Error("js wrote codec's private pool")
	}
	restore()
	if th.Rights() != mpk.PermitAll {
		t.Errorf("rights after restore = %v", th.Rights())
	}
}

// TestNestedEntry: domain A -> trusted callback -> domain B unwinds to
// exactly the original rights at each level.
func TestNestedEntry(t *testing.T) {
	m, th := newManager(t)
	a, _ := m.AddDomain("a")
	b, _ := m.AddDomain("b")

	restoreA := m.Enter(th, a)
	if th.Rights() != a.PKRU {
		t.Fatalf("in A: rights = %v", th.Rights())
	}
	restoreT := m.Enter(th, nil) // reverse gate into T
	if th.Rights() != mpk.PermitAll {
		t.Fatalf("in T: rights = %v", th.Rights())
	}
	restoreB := m.Enter(th, b)
	if th.Rights() != b.PKRU {
		t.Fatalf("in B: rights = %v", th.Rights())
	}
	restoreB()
	if th.Rights() != mpk.PermitAll {
		t.Errorf("after B: rights = %v, want T", th.Rights())
	}
	restoreT()
	if th.Rights() != a.PKRU {
		t.Errorf("after T: rights = %v, want A", th.Rights())
	}
	restoreA()
	if th.Rights() != mpk.PermitAll {
		t.Errorf("after A: rights = %v, want initial", th.Rights())
	}
}

func TestFreeDispatch(t *testing.T) {
	m, _ := newManager(t)
	js, _ := m.AddDomain("js")
	addrs := []vm.Addr{}
	for _, alloc := range []func() (vm.Addr, error){
		func() (vm.Addr, error) { return m.AllocTrusted(32) },
		func() (vm.Addr, error) { return m.AllocShared(32) },
		func() (vm.Addr, error) { return m.Alloc(js, 32) },
	} {
		a, err := alloc()
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := m.Free(a); err != nil {
			t.Errorf("Free(%v): %v", a, err)
		}
	}
	if err := m.Free(0x42); err == nil {
		t.Error("free of unowned address accepted")
	}
}

func TestDomainPagesCarryDomainKey(t *testing.T) {
	m, th := newManager(t)
	js, _ := m.AddDomain("js")
	buf, err := m.Alloc(js, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(buf, 1); err != nil {
		t.Fatal(err)
	}
	if k, ok := m.Space().PKeyAt(buf); !ok || k != js.Key {
		t.Errorf("domain page key = %v, want %v", k, js.Key)
	}
}
