package domains

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpk"
	"repro/internal/vkey"
	"repro/internal/vm"
)

func newManager(t testing.TB) (*Manager, *vm.Thread) {
	t.Helper()
	s := vm.NewSpace()
	m, err := NewManager(s)
	if err != nil {
		t.Fatal(err)
	}
	return m, vm.NewThread(s, nil)
}

func enter(t *testing.T, m *Manager, th *vm.Thread, d *Domain) func() {
	t.Helper()
	restore, err := m.Enter(th, d)
	if err != nil {
		t.Fatalf("Enter(%v): %v", d, err)
	}
	return func() {
		if err := restore(); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
}

func TestAddDomainAssignsDistinctSlots(t *testing.T) {
	m, th := newManager(t)
	a, err := m.AddDomain("js")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddDomain("codec")
	if err != nil {
		t.Fatal(err)
	}
	if a.VKey == b.VKey {
		t.Errorf("logical keys collide: js=%v codec=%v", a.VKey, b.VKey)
	}
	if _, err := m.AddDomain("js"); err == nil {
		t.Error("duplicate domain accepted")
	}
	if got, ok := m.Domain("codec"); !ok || got != b {
		t.Error("Domain lookup failed")
	}
	if len(m.Domains()) != 2 {
		t.Errorf("Domains() = %d", len(m.Domains()))
	}
	// Entered domains hold distinct hardware slots.
	ra := enter(t, m, th, a)
	ka, _ := m.Table().HardwareKey(a.VKey)
	ra()
	rb := enter(t, m, th, b)
	kb, _ := m.Table().HardwareKey(b.VKey)
	rb()
	if ka == kb || ka == m.TrustedKey() || kb == 0 {
		t.Errorf("slot assignment: js=%v codec=%v", ka, kb)
	}
}

// TestUnboundedDomains replaces the old key-exhaustion test: the 14-key
// hardware ceiling is gone — domain count is limited by address space,
// not protection keys.
func TestUnboundedDomains(t *testing.T) {
	m, th := newManager(t)
	const n = 40 // well past the 16 hardware keys
	doms := make([]*Domain, n)
	for i := range doms {
		d, err := m.AddDomain(fmt.Sprintf("tenant%02d", i))
		if err != nil {
			t.Fatalf("AddDomain %d: %v", i, err)
		}
		doms[i] = d
	}
	// Every domain can still be entered and can touch its own pool.
	for i, d := range doms {
		buf, err := m.Alloc(d, 16)
		if err != nil {
			t.Fatalf("Alloc in %s: %v", d.Name, err)
		}
		if err := th.Store64(buf, uint64(i)); err != nil {
			t.Fatalf("trusted init: %v", err)
		}
		restore := enter(t, m, th, d)
		if _, err := th.Load64(buf); err != nil {
			t.Errorf("%s cannot read its own pool after multiplexing: %v", d.Name, err)
		}
		restore()
	}
	st := m.Table().Stats()
	if st.Logical != n {
		t.Errorf("Logical = %d, want %d", st.Logical, n)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite more domains than slots")
	}
}

// TestChurnRecyclesKeysAndRegions is the key-leak regression: the old
// manager's nextKey only incremented, so 14 AddDomain/Remove cycles
// bricked it permanently. Churn must recycle both hardware slots and
// address-space reservations.
func TestChurnRecyclesKeysAndRegions(t *testing.T) {
	m, th := newManager(t)
	regionsBefore := -1
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("churn%d", i)
		d, err := m.AddDomain(name)
		if err != nil {
			t.Fatalf("AddDomain cycle %d: %v", i, err)
		}
		buf, err := m.Alloc(d, 64)
		if err != nil {
			t.Fatalf("Alloc cycle %d: %v", i, err)
		}
		if err := th.Store64(buf, 0xdead); err != nil {
			t.Fatal(err)
		}
		restore := enter(t, m, th, d)
		if _, err := th.Load64(buf); err != nil {
			t.Fatalf("cycle %d: own pool unreadable: %v", i, err)
		}
		restore()
		if err := m.RemoveDomain(name); err != nil {
			t.Fatalf("RemoveDomain cycle %d: %v", i, err)
		}
		// The pool was scrubbed: the value is gone even for trusted code.
		if v, err := th.Load64(buf); err == nil && v == 0xdead {
			t.Fatalf("cycle %d: removed pool not scrubbed", i)
		}
		if n := len(m.Space().Regions()); regionsBefore == -1 {
			regionsBefore = n
		} else if n != regionsBefore {
			t.Fatalf("cycle %d: region count grew %d -> %d (reservation leak)", i, regionsBefore, n)
		}
	}
	st := m.Table().Stats()
	if st.Logical != 0 {
		t.Errorf("Logical = %d after full churn, want 0", st.Logical)
	}
	if st.Recycled == 0 {
		t.Error("no hardware slots recycled across 100 remove cycles")
	}
}

// TestMutualIsolation is the point of the extension: domain A can touch
// the shared pool and its own pool, but neither MT nor domain B's pool.
func TestMutualIsolation(t *testing.T) {
	m, th := newManager(t)
	js, err := m.AddDomain("js")
	if err != nil {
		t.Fatal(err)
	}
	codec, err := m.AddDomain("codec")
	if err != nil {
		t.Fatal(err)
	}
	secretT, err := m.AllocTrusted(8)
	if err != nil {
		t.Fatal(err)
	}
	sharedBuf, err := m.AllocShared(8)
	if err != nil {
		t.Fatal(err)
	}
	jsBuf, err := m.Alloc(js, 8)
	if err != nil {
		t.Fatal(err)
	}
	codecBuf, err := m.Alloc(codec, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Trusted initializes everything: full rights reach even pages still
	// parked on the inactive key.
	for _, a := range []vm.Addr{secretT, sharedBuf, jsBuf, codecBuf} {
		if err := th.Store64(a, 7); err != nil {
			t.Fatalf("trusted init of %v: %v", a, err)
		}
	}

	restore := enter(t, m, th, js)
	if _, err := th.Load64(sharedBuf); err != nil {
		t.Errorf("js cannot read shared pool: %v", err)
	}
	if _, err := th.Load64(jsBuf); err != nil {
		t.Errorf("js cannot read its own pool: %v", err)
	}
	if _, err := th.Load64(secretT); err == nil {
		t.Error("js read MT")
	}
	if _, err := th.Load64(codecBuf); err == nil {
		t.Error("js read codec's private pool")
	}
	if err := th.Store64(codecBuf, 9); err == nil {
		t.Error("js wrote codec's private pool")
	}
	restore()
	if th.Rights() != mpk.PermitAll {
		t.Errorf("rights after restore = %v", th.Rights())
	}
}

// TestNestedEntry: domain A -> trusted callback -> domain B unwinds to
// the caller's compartment at each level — re-activated, not replayed
// from saved PKRU bits.
func TestNestedEntry(t *testing.T) {
	m, th := newManager(t)
	a, _ := m.AddDomain("a")
	b, _ := m.AddDomain("b")
	aBuf, err := m.Alloc(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(aBuf, 1); err != nil {
		t.Fatal(err)
	}

	restoreA := enter(t, m, th, a)
	inA := th.Rights()
	if inA == mpk.PermitAll {
		t.Fatal("in A: rights not restricted")
	}
	restoreT := enter(t, m, th, nil) // reverse gate into T
	if th.Rights() != mpk.PermitAll {
		t.Fatalf("in T: rights = %v", th.Rights())
	}
	restoreB := enter(t, m, th, b)
	if th.Rights() == mpk.PermitAll || th.Rights() == inA {
		t.Fatalf("in B: rights = %v", th.Rights())
	}
	restoreB()
	if th.Rights() != mpk.PermitAll {
		t.Errorf("after B: rights = %v, want T", th.Rights())
	}
	restoreT()
	// Back in A: the semantic test is access, not the raw PKRU value —
	// A may have been re-activated onto a different hardware slot.
	if _, err := th.Load64(aBuf); err != nil {
		t.Errorf("after T: cannot read A's pool: %v", err)
	}
	restoreA()
	if th.Rights() != mpk.PermitAll {
		t.Errorf("after A: rights = %v, want initial", th.Rights())
	}
}

// TestRestoreSurvivesEviction is the stale-PKRU regression the
// re-activate-on-restore design exists for: while a thread is parked in
// a trusted callback, churn through more domains than there are hardware
// slots evicts the caller's slot and rebinds it to another tenant.
// Restore must re-enter the caller's domain on a fresh slot — and must
// not be able to read the tenant now occupying the old slot.
func TestRestoreSurvivesEviction(t *testing.T) {
	m, th := newManager(t)
	victim, err := m.AddDomain("victim")
	if err != nil {
		t.Fatal(err)
	}
	vBuf, err := m.Alloc(victim, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(vBuf, 42); err != nil {
		t.Fatal(err)
	}

	restoreV := enter(t, m, th, victim)
	restoreT := enter(t, m, th, nil)

	// Churn: enough other domains to cycle every hardware slot.
	slots := m.Table().Slots()
	var others []*Domain
	for i := 0; i <= slots; i++ {
		d, err := m.AddDomain(fmt.Sprintf("other%d", i))
		if err != nil {
			t.Fatal(err)
		}
		others = append(others, d)
		r := enter(t, m, th, d)
		r()
	}
	if st := m.Table().Stats(); st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	otherBuf, err := m.Alloc(others[len(others)-1], 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(otherBuf, 99); err != nil {
		t.Fatal(err)
	}

	restoreT()
	// Back in the victim domain: own pool readable (fresh slot) …
	if v, err := th.Load64(vBuf); err != nil || v != 42 {
		t.Errorf("victim pool after eviction: %v, %v", v, err)
	}
	// … and the domain that inherited the old slot stays off-limits.
	if _, err := th.Load64(otherBuf); err == nil {
		t.Error("victim read another tenant's pool after slot rebinding")
	}
	restoreV()
}

// tamperedRegister models a WRPKRU that silently fails to take effect —
// the attack the write-then-readback audit exists to catch.
type tamperedRegister struct {
	r       mpk.PKRU
	ignores bool
}

func (f *tamperedRegister) Rights() mpk.PKRU { return f.r }
func (f *tamperedRegister) SetRights(p mpk.PKRU) {
	if !f.ignores {
		f.r = p
	}
}

func TestEnterAuditCatchesTamperedRegister(t *testing.T) {
	m, _ := newManager(t)
	d, err := m.AddDomain("js")
	if err != nil {
		t.Fatal(err)
	}
	reg := &tamperedRegister{ignores: true}
	if _, err := m.Enter(reg, d); !errors.Is(err, mpk.ErrRightsAudit) {
		t.Fatalf("Enter on tampered register = %v, want ErrRightsAudit", err)
	}
	// Restore is audited too: tamper after a clean enter.
	reg = &tamperedRegister{}
	restore, err := m.Enter(reg, d)
	if err != nil {
		t.Fatalf("clean Enter: %v", err)
	}
	reg.ignores = true
	if err := restore(); !errors.Is(err, mpk.ErrRightsAudit) {
		t.Fatalf("restore on tampered register = %v, want ErrRightsAudit", err)
	}
}

// TestRemoveDomainRefusedWhileEntered: destroying a domain a thread is
// currently inside (or due to return into) would strand that thread —
// its pages vanish mid-execution and its restore could not re-derive the
// compartment. Removal must be refused until every frame has left.
func TestRemoveDomainRefusedWhileEntered(t *testing.T) {
	m, th := newManager(t)
	d, err := m.AddDomain("busy")
	if err != nil {
		t.Fatal(err)
	}
	restore := enter(t, m, th, d)
	if err := m.RemoveDomain("busy"); !errors.Is(err, vkey.ErrKeyBusy) {
		t.Fatalf("RemoveDomain while entered = %v, want ErrKeyBusy", err)
	}
	// The domain survived the refused removal intact.
	if _, ok := m.Domain("busy"); !ok {
		t.Fatal("refused removal still deleted the domain")
	}
	// Nested deeper: the domain is below the top frame, still busy.
	restoreT := enter(t, m, th, nil)
	if err := m.RemoveDomain("busy"); !errors.Is(err, vkey.ErrKeyBusy) {
		t.Fatalf("RemoveDomain while on a lower frame = %v, want ErrKeyBusy", err)
	}
	restoreT()
	restore()
	if err := m.RemoveDomain("busy"); err != nil {
		t.Fatalf("RemoveDomain after full exit: %v", err)
	}
}

// TestRestoreRetriableAfterAuditFailure: a restore whose rights
// installation fails the write-then-readback audit must leave the entry
// stack intact, so a retry converges on the caller's compartment instead
// of unwinding past the caller's own frame.
func TestRestoreRetriableAfterAuditFailure(t *testing.T) {
	m, _ := newManager(t)
	a, err := m.AddDomain("a")
	if err != nil {
		t.Fatal(err)
	}
	reg := &tamperedRegister{}
	restoreA, err := m.Enter(reg, a)
	if err != nil {
		t.Fatal(err)
	}
	inA := reg.Rights()
	restoreT, err := m.Enter(reg, nil) // reverse gate into T
	if err != nil {
		t.Fatal(err)
	}
	reg.ignores = true
	if err := restoreT(); !errors.Is(err, mpk.ErrRightsAudit) {
		t.Fatalf("tampered restore = %v, want ErrRightsAudit", err)
	}
	reg.ignores = false
	// The failed restore did not pop the frame: the retry lands back in
	// domain a, not past it in the initial compartment.
	if err := restoreT(); err != nil {
		t.Fatalf("retried restore: %v", err)
	}
	if got := reg.Rights(); got != inA {
		t.Fatalf("rights after retried restore = %v, want %v (domain a)", got, inA)
	}
	if err := restoreA(); err != nil {
		t.Fatalf("final restore: %v", err)
	}
	if reg.Rights() != mpk.PermitAll {
		t.Fatalf("rights after full unwind = %v, want PermitAll", reg.Rights())
	}
}

func TestFreeDispatch(t *testing.T) {
	m, _ := newManager(t)
	js, _ := m.AddDomain("js")
	addrs := []vm.Addr{}
	for _, alloc := range []func() (vm.Addr, error){
		func() (vm.Addr, error) { return m.AllocTrusted(32) },
		func() (vm.Addr, error) { return m.AllocShared(32) },
		func() (vm.Addr, error) { return m.Alloc(js, 32) },
	} {
		a, err := alloc()
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := m.Free(a); err != nil {
			t.Errorf("Free(%v): %v", a, err)
		}
	}
	if err := m.Free(0x42); err == nil {
		t.Error("free of unowned address accepted")
	}
}

func TestDomainPagesCarrySlotKeyWhileActive(t *testing.T) {
	m, th := newManager(t)
	js, _ := m.AddDomain("js")
	buf, err := m.Alloc(js, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(buf, 1); err != nil {
		t.Fatal(err)
	}
	restore := enter(t, m, th, js)
	hw, ok := m.Table().HardwareKey(js.VKey)
	if !ok {
		t.Fatal("entered domain holds no slot")
	}
	if k, ok := m.Space().PKeyAt(buf); !ok || k != hw {
		t.Errorf("active domain page key = %v, want slot %v", k, hw)
	}
	restore()
}

// TestConcurrentChurn drives AddDomain/Enter/Remove from many goroutines
// (the -race coverage the eviction and revocation paths need). Each
// worker churns its own tenants on its own thread; evictions still
// interleave globally through the shared table.
func TestConcurrentChurn(t *testing.T) {
	m, _ := newManager(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := vm.NewThread(m.Space(), nil)
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("w%d-t%d", w, i)
				d, err := m.AddDomain(name)
				if err != nil {
					t.Errorf("AddDomain: %v", err)
					return
				}
				buf, err := m.Alloc(d, 32)
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				if err := th.Store64(buf, uint64(i)); err != nil {
					t.Errorf("init: %v", err)
					return
				}
				restore, err := m.Enter(th, d)
				if err != nil {
					t.Errorf("Enter: %v", err)
					return
				}
				// Best-effort read: a concurrent eviction of our slot
				// between Enter and Load revokes rights mid-flight
				// (correct behavior — retry via re-entry would succeed).
				_, _ = th.Load64(buf)
				if err := restore(); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
				if i%2 == 0 {
					if err := m.RemoveDomain(name); err != nil {
						t.Errorf("RemoveDomain: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Table().Stats()
	if st.Active > m.Table().Slots() {
		t.Fatalf("Active = %d exceeds %d slots", st.Active, m.Table().Slots())
	}
}

// BenchmarkFreeManyDomains guards the O(1) Free path: releasing an
// allocation must not linear-scan the domain pools, so ns/op should be
// flat as the pool count grows.
func BenchmarkFreeManyDomains(b *testing.B) {
	for _, nDomains := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("domains=%d", nDomains), func(b *testing.B) {
			m, _ := newManager(b)
			var last *Domain
			for i := 0; i < nDomains; i++ {
				d, err := m.AddDomain(fmt.Sprintf("d%d", i))
				if err != nil {
					b.Fatal(err)
				}
				last = d
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := m.Alloc(last, 64)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Free(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
