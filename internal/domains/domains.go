// Package domains generalizes PKRU-Safe's two-compartment policy to N
// mutually distrusting untrusted domains, the extension §6 sketches under
// "Number of Compartments" — now without the 14-key hardware ceiling.
//
// Each domain owns a *logical* protection key from an internal/vkey table
// and a private heap pool from pkalloc. Logical keys are multiplexed onto
// the hardware slots on demand: entering a domain activates its key
// (possibly evicting the least-recently-entered domain's slot), so any
// number of domains can coexist while at most thirteen are
// hardware-resident at once. A domain's PKRU grants the shared pool (key
// 0) and its own slot only; the trusted compartment retains full rights.
//
// Every rights switch goes through mpk.InstallAudited — the same
// write-then-readback discipline the ffi call gates use — and restore
// re-activates the caller's domain rather than reinstating a saved PKRU
// value, because an eviction between enter and exit can rebind the saved
// value's hardware slot to a different tenant (the Garmr stale-PKRU
// hazard).
package domains

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ffi"
	"repro/internal/heap"
	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/telemetry"
	"repro/internal/vkey"
	"repro/internal/vm"
)

// ErrUnknownDomain is returned for operations on a removed domain.
var ErrUnknownDomain = errors.New("domains: unknown or removed domain")

// Domain is one untrusted compartment: a logical key and a private pool.
// Its hardware key and PKRU are not fixed properties — they exist only
// while the domain holds a slot, and change across evictions.
type Domain struct {
	Name string
	VKey vkey.ID

	region *vm.Region
}

// Region returns the domain's private pool reservation.
func (d *Domain) Region() *vm.Region { return d.region }

// Manager owns the trusted pool, the shared pool, the per-domain pools
// and the virtual-key table. It is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	alloc   *pkalloc.Allocator
	table   *vkey.Table
	domains map[string]*Domain
	// stacks tracks, per rights register, the nesting of entered domains
	// (nil = the trusted compartment). Restore re-activates the frame
	// below instead of reinstating a saved PKRU, so an eviction between
	// enter and exit cannot resurrect rights for a rebound slot.
	stacks map[mpk.RightsRegister][]*Domain
}

// NewManager reserves the trusted and shared pools in space and builds
// the virtual-key table over the remaining hardware keys.
func NewManager(space *vm.Space) (*Manager, error) {
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		return nil, err
	}
	table, err := vkey.NewTable(space, vkey.Config{Reserved: []mpk.Key{alloc.TrustedKey()}})
	if err != nil {
		return nil, err
	}
	return &Manager{
		alloc:   alloc,
		table:   table,
		domains: make(map[string]*Domain),
		stacks:  make(map[mpk.RightsRegister][]*Domain),
	}, nil
}

// Space returns the backing address space.
func (m *Manager) Space() *vm.Space { return m.alloc.Space() }

// Allocator returns the compartment-aware allocator behind the pools.
func (m *Manager) Allocator() *pkalloc.Allocator { return m.alloc }

// Table returns the virtual-key table multiplexing the domains.
func (m *Manager) Table() *vkey.Table { return m.table }

// TrustedKey returns the key tagging MT pages.
func (m *Manager) TrustedKey() mpk.Key { return m.alloc.TrustedKey() }

// SetTelemetry publishes the virtual-key gauges and counters into reg.
func (m *Manager) SetTelemetry(reg *telemetry.Registry) { m.table.SetTelemetry(reg) }

// AddDomain creates a new untrusted domain with its own logical key and
// pool. There is no domain-count ceiling: the pool region is recycled
// from removed domains when possible, and the logical key waits parked
// until the first Enter binds it a hardware slot.
func (m *Manager) AddDomain(name string) (*Domain, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.domains[name]; dup {
		return nil, fmt.Errorf("domains: %q already exists", name)
	}
	region, err := m.alloc.AddDomainPool(name, m.table.InactiveKey())
	if err != nil {
		return nil, err
	}
	id := m.table.Alloc(name)
	if err := m.table.Attach(id, region.Base, region.Size); err != nil {
		m.table.Free(id)
		m.alloc.RemoveDomainPool(name)
		return nil, err
	}
	d := &Domain{Name: name, VKey: id, region: region}
	m.domains[name] = d
	return d, nil
}

// RemoveDomain destroys a domain: its logical key is freed (hardware slot
// recycled, pages parked on the inactive key, bound threads' PKRU rights
// revoked) and its pool is scrubbed — every resident page zeroed, the
// same hygiene pkalloc.QuarantineUntrusted applies to MU — then parked
// for reuse by the next AddDomain. Tenant churn therefore consumes
// neither protection keys nor address space.
func (m *Manager) RemoveDomain(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDomain, name)
	}
	if err := m.table.Free(d.VKey); err != nil {
		return err
	}
	if err := m.alloc.RemoveDomainPool(name); err != nil {
		return err
	}
	delete(m.domains, name)
	return nil
}

// Domain returns the named domain.
func (m *Manager) Domain(name string) (*Domain, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.domains[name]
	return d, ok
}

// Domains returns all domains sorted by name.
func (m *Manager) Domains() []*Domain {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Domain, 0, len(m.domains))
	for _, d := range m.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllocTrusted allocates from MT.
func (m *Manager) AllocTrusted(size uint64) (vm.Addr, error) {
	return m.alloc.Alloc(size)
}

// AllocShared allocates from the key-0 pool every compartment can access.
func (m *Manager) AllocShared(size uint64) (vm.Addr, error) {
	return m.alloc.UntrustedAlloc(size)
}

// Alloc allocates from the domain's private pool.
func (m *Manager) Alloc(d *Domain, size uint64) (vm.Addr, error) {
	return m.alloc.DomainAlloc(d.Name, size)
}

// Free releases an allocation from whichever pool owns it. Ownership
// resolves through the address space's region index — one binary search
// plus a map probe — never a scan over every domain pool.
func (m *Manager) Free(addr vm.Addr) error {
	return m.alloc.Free(addr)
}

// Stats returns the domain's pool counters.
func (m *Manager) Stats(d *Domain) (heap.Stats, bool) {
	return m.alloc.DomainStats(d.Name)
}

// rightsFor activates the domain's logical key and returns the PKRU to
// install: shared key 0 plus the domain's (possibly freshly bound)
// hardware slot. A nil domain is the trusted compartment.
func (m *Manager) rightsFor(d *Domain) (mpk.PKRU, error) {
	if d == nil {
		return mpk.PermitAll, nil
	}
	hw, _, err := m.table.Activate(d.VKey)
	if err != nil {
		return 0, err
	}
	return mpk.DenyAllExcept(0, hw), nil
}

// Enter switches the register into a domain through an audited gate:
// the domain's logical key is activated (evicting the LRU domain if no
// hardware slot is free), the rights are installed with the same
// write-then-readback verification the ffi call gates perform, and the
// register is bound to the table for eviction-time revocation. A nil
// domain enters the trusted compartment, the reverse-gate case.
//
// The returned restore re-enters the *caller's* compartment — activating
// its logical key again rather than reinstating the saved PKRU bits — so
// the rights installed on exit are always current, even if an eviction
// rebound the caller's old slot while the callee ran.
func (m *Manager) Enter(reg mpk.RightsRegister, d *Domain) (restore func() error, err error) {
	target, err := m.rightsFor(d)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if _, bound := m.stacks[reg]; !bound {
		m.table.Bind(reg)
	}
	m.stacks[reg] = append(m.stacks[reg], d)
	m.mu.Unlock()
	if err := mpk.InstallAudited(reg, target); err != nil {
		m.pop(reg)
		return nil, err
	}
	return func() error {
		prev, ok := m.pop(reg)
		if !ok {
			return errors.New("domains: restore past the bottom of the entry stack")
		}
		target, err := m.rightsFor(prev)
		if err != nil {
			return err
		}
		return mpk.InstallAudited(reg, target)
	}, nil
}

// pop pops the register's entry stack and returns the new top
// (the compartment restore must re-enter).
func (m *Manager) pop(reg mpk.RightsRegister) (*Domain, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stacks[reg]
	if len(st) == 0 {
		return nil, false
	}
	st = st[:len(st)-1]
	if len(st) == 0 {
		delete(m.stacks, reg)
		m.table.Unbind(reg)
		return nil, true
	}
	m.stacks[reg] = st
	return st[len(st)-1], true
}

// BindLibrary wires a registered untrusted library to the domain through
// the ffi runtime: calls into the library gate with the domain's
// activated rights (cross-domain calls gate even U→U) and the library's
// allocations land in the domain's private pool.
func (m *Manager) BindLibrary(rt *ffi.Runtime, lib string, d *Domain) {
	rt.BindLibraryDomain(lib, ffi.DomainBinding{
		Pool:   d.Name,
		Rights: func() (mpk.PKRU, error) { return m.rightsFor(d) },
	})
}
