// Package domains generalizes PKRU-Safe's two-compartment policy to N
// mutually distrusting untrusted domains, the extension §6 sketches under
// "Number of Compartments" — now without the 14-key hardware ceiling.
//
// Each domain owns a *logical* protection key from an internal/vkey table
// and a private heap pool from pkalloc. Logical keys are multiplexed onto
// the hardware slots on demand: entering a domain activates its key
// (possibly evicting the least-recently-entered domain's slot), so any
// number of domains can coexist while at most thirteen are
// hardware-resident at once. A domain's PKRU grants the shared pool (key
// 0) and its own slot only; the trusted compartment retains full rights.
//
// Every rights switch goes through mpk.InstallAudited — the same
// write-then-readback discipline the ffi call gates use — and restore
// re-activates the caller's domain rather than reinstating a saved PKRU
// value, because an eviction between enter and exit can rebind the saved
// value's hardware slot to a different tenant (the Garmr stale-PKRU
// hazard).
package domains

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/heap"
	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/telemetry"
	"repro/internal/vkey"
	"repro/internal/vm"
)

// ErrUnknownDomain is returned for operations on a removed domain.
var ErrUnknownDomain = errors.New("domains: unknown or removed domain")

// Domain is one untrusted compartment: a logical key and a private pool.
// Its hardware key and PKRU are not fixed properties — they exist only
// while the domain holds a slot, and change across evictions.
type Domain struct {
	Name string
	VKey vkey.ID

	region *vm.Region
}

// Region returns the domain's private pool reservation.
func (d *Domain) Region() *vm.Region { return d.region }

// Manager owns the trusted pool, the shared pool, the per-domain pools
// and the virtual-key table. It is safe for concurrent use.
//
// The per-register nesting of entered compartments lives in the vkey
// table's compartment stacks, not here: domain entry/exit and the ffi
// domain gates push frames onto the same stack, so exits always re-derive
// the caller's rights from the table's current bindings no matter which
// layer performed the entry.
type Manager struct {
	mu      sync.Mutex
	alloc   *pkalloc.Allocator
	table   *vkey.Table
	domains map[string]*Domain
	tracer  *gatetrace.Tracer
}

// NewManager reserves the trusted and shared pools in space and builds
// the virtual-key table over the remaining hardware keys.
func NewManager(space *vm.Space) (*Manager, error) {
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		return nil, err
	}
	table, err := vkey.NewTable(space, vkey.Config{Reserved: []mpk.Key{alloc.TrustedKey()}})
	if err != nil {
		return nil, err
	}
	return &Manager{
		alloc:   alloc,
		table:   table,
		domains: make(map[string]*Domain),
	}, nil
}

// Space returns the backing address space.
func (m *Manager) Space() *vm.Space { return m.alloc.Space() }

// Allocator returns the compartment-aware allocator behind the pools.
func (m *Manager) Allocator() *pkalloc.Allocator { return m.alloc }

// Table returns the virtual-key table multiplexing the domains.
func (m *Manager) Table() *vkey.Table { return m.table }

// TrustedKey returns the key tagging MT pages.
func (m *Manager) TrustedKey() mpk.Key { return m.alloc.TrustedKey() }

// SetTelemetry publishes the virtual-key gauges and counters into reg.
func (m *Manager) SetTelemetry(reg *telemetry.Registry) { m.table.SetTelemetry(reg) }

// SetTracing attaches the request-scoped tracer: domain Enter/Leave pairs
// become timed spans on the entering register's bound context, and every
// LRU eviction the table performs is attributed to the request whose
// activation triggered it. A nil tracer detaches both.
func (m *Manager) SetTracing(tr *gatetrace.Tracer) {
	m.mu.Lock()
	m.tracer = tr
	m.mu.Unlock()
	if tr == nil {
		m.table.SetEvictionSink(nil)
	} else {
		m.table.SetEvictionSink(tr.ObserveEviction)
	}
}

// Tracing returns the attached tracer, if any.
func (m *Manager) Tracing() *gatetrace.Tracer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tracer
}

// DomainState is one domain's row in an Occupancy snapshot: the vkey
// state of its logical key joined with its private pool's heap counters
// and quarantine epoch.
type DomainState struct {
	Name  string        `json:"name"`
	Key   vkey.KeyState `json:"key"`
	Pool  heap.Stats    `json:"pool"`
	Epoch uint64        `json:"epoch,omitempty"` // per-domain quarantine epoch
}

// Occupancy joins the vkey table's structured snapshot with the
// per-domain pool stats — the payload the obs plane serves as
// /domains.json.
type Occupancy struct {
	Table   vkey.Occupancy `json:"table"`
	Domains []DomainState  `json:"domains"`
}

// Occupancy returns a structured snapshot of every domain's slot state,
// eviction history and pool usage, plus the table-wide stack depths.
func (m *Manager) Occupancy() Occupancy {
	occ := Occupancy{Table: m.table.Occupancy()}
	byID := make(map[vkey.ID]vkey.KeyState, len(occ.Table.Keys))
	for _, ks := range occ.Table.Keys {
		byID[ks.ID] = ks
	}
	for _, d := range m.Domains() {
		ds := DomainState{Name: d.Name, Key: byID[d.VKey]}
		if st, ok := m.alloc.DomainStats(d.Name); ok {
			ds.Pool = st
		}
		if ep, ok := m.alloc.DomainEpoch(d.Name); ok {
			ds.Epoch = ep
		}
		occ.Domains = append(occ.Domains, ds)
	}
	return occ
}

// AddDomain creates a new untrusted domain with its own logical key and
// pool. There is no domain-count ceiling: the pool region is recycled
// from removed domains when possible, and the logical key waits parked
// until the first Enter binds it a hardware slot.
func (m *Manager) AddDomain(name string) (*Domain, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.domains[name]; dup {
		return nil, fmt.Errorf("domains: %q already exists", name)
	}
	region, err := m.alloc.AddDomainPool(name, m.table.InactiveKey())
	if err != nil {
		return nil, err
	}
	id := m.table.Alloc(name)
	if err := m.table.Attach(id, region.Base, region.Size); err != nil {
		m.table.Free(id)
		m.alloc.RemoveDomainPool(name)
		return nil, err
	}
	d := &Domain{Name: name, VKey: id, region: region}
	m.domains[name] = d
	return d, nil
}

// RemoveDomain destroys a domain: its logical key is freed (hardware slot
// recycled, pages parked on the inactive key, bound threads' PKRU rights
// revoked) and its pool is scrubbed — every resident page zeroed, the
// same hygiene pkalloc.QuarantineUntrusted applies to MU — then parked
// for reuse by the next AddDomain. Tenant churn therefore consumes
// neither protection keys nor address space.
//
// Removal is refused with vkey.ErrKeyBusy while any register's
// compartment stack holds the domain: a thread executing inside it (or
// due to return into it) would otherwise lose its pages mid-flight and
// its later exit could not re-derive the compartment's rights. Callers
// churning tenants under live traffic should treat the error as "try the
// next victim", the way pkru-servo's churn loop does.
func (m *Manager) RemoveDomain(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDomain, name)
	}
	if err := m.table.Free(d.VKey); err != nil {
		return fmt.Errorf("domains: remove %q: %w", name, err)
	}
	if err := m.alloc.RemoveDomainPool(name); err != nil {
		return err
	}
	delete(m.domains, name)
	return nil
}

// Domain returns the named domain.
func (m *Manager) Domain(name string) (*Domain, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.domains[name]
	return d, ok
}

// Domains returns all domains sorted by name.
func (m *Manager) Domains() []*Domain {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Domain, 0, len(m.domains))
	for _, d := range m.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllocTrusted allocates from MT.
func (m *Manager) AllocTrusted(size uint64) (vm.Addr, error) {
	return m.alloc.Alloc(size)
}

// AllocShared allocates from the key-0 pool every compartment can access.
func (m *Manager) AllocShared(size uint64) (vm.Addr, error) {
	return m.alloc.UntrustedAlloc(size)
}

// Alloc allocates from the domain's private pool.
func (m *Manager) Alloc(d *Domain, size uint64) (vm.Addr, error) {
	return m.alloc.DomainAlloc(d.Name, size)
}

// Free releases an allocation from whichever pool owns it. Ownership
// resolves through the address space's region index — one binary search
// plus a map probe — never a scan over every domain pool.
func (m *Manager) Free(addr vm.Addr) error {
	return m.alloc.Free(addr)
}

// Stats returns the domain's pool counters.
func (m *Manager) Stats(d *Domain) (heap.Stats, bool) {
	return m.alloc.DomainStats(d.Name)
}

// Pin exempts the domain's logical key from LRU eviction — the
// resilience layer's shield for healthy latency-critical tenants while
// a flapping neighbour half-open-probes (vkey.Table.Pin semantics).
func (m *Manager) Pin(name string) error {
	m.mu.Lock()
	d, ok := m.domains[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDomain, name)
	}
	return m.table.Pin(d.VKey)
}

// Unpin makes the domain's logical key evictable again.
func (m *Manager) Unpin(name string) error {
	m.mu.Lock()
	d, ok := m.domains[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDomain, name)
	}
	return m.table.Unpin(d.VKey)
}

// Enter switches the register into a domain through an audited gate: the
// domain's logical key is activated (evicting the LRU domain if no
// hardware slot is free) and the rights are installed with the same
// write-then-readback verification the ffi call gates perform — both
// under the vkey table's lock, so a concurrent eviction cannot rebind the
// chosen slot between activation and installation. The register is bound
// to the table for eviction-time revocation for as long as it holds any
// compartment frame. A nil domain enters the trusted compartment, the
// reverse-gate case.
//
// The returned restore re-enters the *caller's* compartment — activating
// its logical key again rather than reinstating the saved PKRU bits — so
// the rights installed on exit are always current, even if an eviction
// rebound the caller's old slot while the callee ran. A restore whose
// installation fails the audit leaves the entry stack intact, so it can
// be retried without unwinding past the caller's own frame.
func (m *Manager) Enter(reg mpk.RightsRegister, d *Domain) (restore func() error, err error) {
	id := vkey.Trusted
	name := "trusted"
	if d != nil {
		id = d.VKey
		name = d.Name
	}
	if _, err := m.table.Enter(reg, id); err != nil {
		return nil, err
	}
	// The enter→restore pair is a residency span on the entering request's
	// trace: the window this register held the domain's compartment open.
	endSpan := m.Tracing().ContextFor(reg).Span("domain:"+name, name)
	return func() error {
		_, err := m.table.Leave(reg, mpk.PermitAll)
		if errors.Is(err, vkey.ErrNotEntered) {
			return errors.New("domains: restore past the bottom of the entry stack")
		}
		if err == nil {
			endSpan()
		}
		return err
	}, nil
}

// BindLibrary wires a registered untrusted library to the domain through
// the ffi runtime: calls into the library gate with the domain's
// activated rights (cross-domain calls gate even U→U), gate exits
// re-derive the caller's compartment through the shared vkey table, and
// the library's allocations land in the domain's private pool.
func (m *Manager) BindLibrary(rt *ffi.Runtime, lib string, d *Domain) {
	rt.BindLibraryDomain(lib, ffi.DomainBinding{
		Pool:  d.Name,
		Table: m.table,
		Key:   d.VKey,
	})
}
