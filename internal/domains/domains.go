// Package domains generalizes PKRU-Safe's two-compartment policy to N
// mutually distrusting untrusted domains, the extension §6 sketches under
// "Number of Compartments": the paper keeps T/U for simplicity but sees
// "no fundamental issue using a more complicated partitioning scheme that
// uses more than two domains".
//
// Each domain owns a protection key and a disjoint heap pool. A domain's
// PKRU grants access to the shared pool (key 0) and its own pool only, so
// two untrusted libraries — say, a JS engine and a codec — cannot corrupt
// each other's private data even though both are untrusted. The trusted
// compartment retains full access, as in the base design.
//
// MPK provides 16 keys; with key 0 shared and one key for MT, up to 14
// concurrent domains are supported, matching the hardware limit the paper
// notes.
package domains

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/heap"
	"repro/internal/mpk"
	"repro/internal/vm"
)

// Pool placement in the simulated address space.
const (
	trustedBase vm.Addr = 0x2000_0000_0000
	trustedSize uint64  = 1 << 44
	sharedBase  vm.Addr = 0x7000_0000_0000
	sharedSize  uint64  = 1 << 38
	domainBase  vm.Addr = 0x7800_0000_0000
	domainSize  uint64  = 1 << 36
	trustedKey  mpk.Key = 1
	firstDomKey mpk.Key = 2
)

// ErrKeysExhausted is returned when all 14 domain keys are in use.
var ErrKeysExhausted = errors.New("domains: all protection keys in use")

// Domain is one untrusted compartment: a key, a private pool, and the
// PKRU value gates install when entering it.
type Domain struct {
	Name string
	Key  mpk.Key
	PKRU mpk.PKRU // shared pool + own pool only

	pool heap.Allocator
}

// Manager owns the trusted pool, the shared pool and every domain.
// It is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	space   *vm.Space
	trusted heap.Allocator
	shared  heap.Allocator
	domains map[string]*Domain
	nextKey mpk.Key
}

// NewManager reserves the trusted and shared pools in space.
func NewManager(space *vm.Space) (*Manager, error) {
	rT, err := space.Reserve("domains/MT", trustedBase, trustedSize, trustedKey)
	if err != nil {
		return nil, err
	}
	rS, err := space.Reserve("domains/shared", sharedBase, sharedSize, 0)
	if err != nil {
		return nil, err
	}
	return &Manager{
		space:   space,
		trusted: heap.NewArena(heap.NewPagePool(rT)),
		shared:  heap.NewFreeList(heap.NewPagePool(rS), space),
		domains: make(map[string]*Domain),
		nextKey: firstDomKey,
	}, nil
}

// Space returns the backing address space.
func (m *Manager) Space() *vm.Space { return m.space }

// TrustedKey returns the key tagging MT pages.
func (m *Manager) TrustedKey() mpk.Key { return trustedKey }

// AddDomain creates a new untrusted domain with its own key and pool.
func (m *Manager) AddDomain(name string) (*Domain, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.domains[name]; dup {
		return nil, fmt.Errorf("domains: %q already exists", name)
	}
	if !m.nextKey.Valid() {
		return nil, ErrKeysExhausted
	}
	key := m.nextKey
	idx := uint64(key - firstDomKey)
	base := domainBase + vm.Addr(idx*2*domainSize)
	region, err := m.space.Reserve("domains/"+name, base, domainSize, key)
	if err != nil {
		return nil, err
	}
	d := &Domain{
		Name: name,
		Key:  key,
		PKRU: mpk.DenyAllExcept(0, key),
		pool: heap.NewFreeList(heap.NewPagePool(region), m.space),
	}
	m.domains[name] = d
	m.nextKey++
	return d, nil
}

// Domain returns the named domain.
func (m *Manager) Domain(name string) (*Domain, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.domains[name]
	return d, ok
}

// Domains returns all domains sorted by name.
func (m *Manager) Domains() []*Domain {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Domain, 0, len(m.domains))
	for _, d := range m.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllocTrusted allocates from MT.
func (m *Manager) AllocTrusted(size uint64) (vm.Addr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trusted.Alloc(size)
}

// AllocShared allocates from the key-0 pool every compartment can access.
func (m *Manager) AllocShared(size uint64) (vm.Addr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shared.Alloc(size)
}

// Alloc allocates from the domain's private pool.
func (m *Manager) Alloc(d *Domain, size uint64) (vm.Addr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return d.pool.Alloc(size)
}

// Free releases an allocation from whichever pool owns it.
func (m *Manager) Free(addr vm.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.trusted.Owns(addr) {
		return m.trusted.Free(addr)
	}
	if m.shared.Owns(addr) {
		return m.shared.Free(addr)
	}
	for _, d := range m.domains {
		if d.pool.Owns(addr) {
			return d.pool.Free(addr)
		}
	}
	return fmt.Errorf("domains: %v not owned by any pool", addr)
}

// Enter switches the thread into a domain, returning a restore function
// that reinstates the previous rights — the call-gate discipline with a
// per-entry saved value, generalized to N target domains. A nil domain
// enters the trusted compartment (full rights), the reverse-gate case.
func (m *Manager) Enter(th *vm.Thread, d *Domain) (restore func()) {
	prev := th.Rights()
	if d == nil {
		th.SetRights(mpk.PermitAll)
	} else {
		th.SetRights(d.PKRU)
	}
	return func() { th.SetRights(prev) }
}
