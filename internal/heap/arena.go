package heap

import (
	"fmt"
	"math/bits"

	"repro/internal/vm"
)

// smallClasses are the slot sizes the arena serves from slabs, spaced like
// jemalloc's size classes: 16-byte steps up to 128, then four classes per
// size doubling.
var smallClasses = buildSmallClasses()

// maxSmall is the largest slab-served size; bigger requests become
// dedicated page runs ("large" allocations).
var maxSmall = smallClasses[len(smallClasses)-1]

func buildSmallClasses() []uint64 {
	var cs []uint64
	for s := uint64(16); s <= 128; s += 16 {
		cs = append(cs, s)
	}
	for group := uint64(128); group < 8192; group *= 2 {
		step := group / 4
		for s := group + step; s <= group*2; s += step {
			cs = append(cs, s)
		}
	}
	return cs
}

// classIndex maps a request size to the index of the smallest class that
// fits it. Requires size <= maxSmall.
func classIndex(size uint64) int {
	// Binary search is overkill for 41 classes, but sizes are hot; use a
	// fast path for the linear 16-byte region and search the rest.
	if size <= 128 {
		if size == 0 {
			size = 1
		}
		return int((size+15)/16) - 1
	}
	lo, hi := 8, len(smallClasses)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if smallClasses[mid] < size {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// slab is one run of pages carved into equal slots of a single size class.
type slab struct {
	base     vm.Addr
	class    int
	pages    uint64
	slots    uint64
	liveBits []uint64 // bitmap of allocated slots
	live     uint64
}

func (s *slab) slotSize() uint64 { return smallClasses[s.class] }

// Arena is a jemalloc-style size-class allocator. Small requests share
// slabs; large requests get dedicated page runs. All memory comes from one
// PagePool, so the arena can never place an object outside its compartment.
//
// Arena is not internally synchronized; pkalloc serializes access.
type Arena struct {
	pool       *PagePool
	partial    [][]*slab          // per class: slabs with at least one free slot
	slabByPage map[vm.Addr]*slab  // every page of every slab -> its slab
	large      map[vm.Addr]uint64 // large allocation base -> page count
	stats      Stats
}

// NewArena creates an arena drawing pages from pool.
func NewArena(pool *PagePool) *Arena {
	return &Arena{
		pool:       pool,
		partial:    make([][]*slab, len(smallClasses)),
		slabByPage: make(map[vm.Addr]*slab),
		large:      make(map[vm.Addr]uint64),
	}
}

// Alloc implements Allocator.
func (a *Arena) Alloc(size uint64) (vm.Addr, error) {
	req := size
	if size == 0 {
		size = 1
	}
	if size > maxSmall {
		return a.allocLarge(req, size)
	}
	ci := classIndex(size)
	sl, created, err := a.partialSlab(ci)
	if err != nil {
		return 0, err
	}
	if created {
		a.stats.FreshAllocs++
	} else {
		a.stats.ReuseHits++
	}
	slot := sl.takeSlot()
	if sl.live == sl.slots {
		// Slab is full: drop it from the partial list (it stays findable
		// through slabByPage for Free).
		list := a.partial[ci]
		a.partial[ci] = list[:len(list)-1]
	}
	a.stats.Allocs++
	a.stats.BytesLive += sl.slotSize()
	a.stats.BytesTotal += sl.slotSize()
	return sl.base + vm.Addr(slot*sl.slotSize()), nil
}

func (a *Arena) allocLarge(req, size uint64) (vm.Addr, error) {
	pages := alignUp(size, vm.PageSize) / vm.PageSize
	addr, err := a.pool.AllocPages(pages)
	if err != nil {
		return 0, err
	}
	a.large[addr] = pages
	a.stats.FreshAllocs++
	a.stats.Allocs++
	a.stats.BytesLive += pages * vm.PageSize
	a.stats.BytesTotal += pages * vm.PageSize
	a.stats.PagesMapped += pages
	_ = req
	return addr, nil
}

// partialSlab returns a slab for class ci with at least one free slot,
// creating one if necessary; created reports whether a new slab was made.
func (a *Arena) partialSlab(ci int) (*slab, bool, error) {
	if list := a.partial[ci]; len(list) > 0 {
		return list[len(list)-1], false, nil
	}
	slotSize := smallClasses[ci]
	// Size slabs to hold at least 8 slots and waste at most one partial slot.
	pages := alignUp(slotSize*8, vm.PageSize) / vm.PageSize
	base, err := a.pool.AllocPages(pages)
	if err != nil {
		return nil, false, err
	}
	slots := pages * vm.PageSize / slotSize
	sl := &slab{
		base:     base,
		class:    ci,
		pages:    pages,
		slots:    slots,
		liveBits: make([]uint64, (slots+63)/64),
	}
	for pg := uint64(0); pg < pages; pg++ {
		a.slabByPage[base+vm.Addr(pg*vm.PageSize)] = sl
	}
	a.partial[ci] = append(a.partial[ci], sl)
	a.stats.PagesMapped += pages
	return sl, true, nil
}

// takeSlot claims the lowest free slot. The caller guarantees one exists.
func (s *slab) takeSlot() uint64 {
	for wi, w := range s.liveBits {
		if w == ^uint64(0) {
			continue
		}
		bit := uint64(bits.TrailingZeros64(^w))
		idx := uint64(wi)*64 + bit
		if idx >= s.slots {
			break
		}
		s.liveBits[wi] |= 1 << bit
		s.live++
		return idx
	}
	panic("heap: takeSlot on full slab")
}

// Free implements Allocator.
func (a *Arena) Free(addr vm.Addr) error {
	if sl, ok := a.slabByPage[addr.PageBase()]; ok {
		return a.freeSmall(sl, addr)
	}
	if pages, ok := a.large[addr]; ok {
		delete(a.large, addr)
		if err := a.pool.FreePages(addr, pages); err != nil {
			return err
		}
		a.stats.Frees++
		a.stats.BytesLive -= pages * vm.PageSize
		a.stats.PagesMapped -= pages
		return nil
	}
	return fmt.Errorf("%w: %v not owned by arena", ErrBadFree, addr)
}

func (a *Arena) freeSmall(sl *slab, addr vm.Addr) error {
	off := uint64(addr - sl.base)
	slotSize := sl.slotSize()
	if off%slotSize != 0 {
		return fmt.Errorf("%w: %v is interior to a slot", ErrBadFree, addr)
	}
	idx := off / slotSize
	wi, bit := idx/64, idx%64
	if sl.liveBits[wi]&(1<<bit) == 0 {
		return fmt.Errorf("%w: slot at %v already free", ErrBadFree, addr)
	}
	sl.liveBits[wi] &^= 1 << bit
	wasFull := sl.live == sl.slots
	sl.live--
	a.stats.Frees++
	a.stats.BytesLive -= slotSize
	if sl.live == 0 {
		// Whole slab empty: return its pages to the pool (the pool is the
		// per-compartment page cache).
		for pg := uint64(0); pg < sl.pages; pg++ {
			delete(a.slabByPage, sl.base+vm.Addr(pg*vm.PageSize))
		}
		a.removePartial(sl)
		a.stats.PagesMapped -= sl.pages
		return a.pool.FreePages(sl.base, sl.pages)
	}
	if wasFull {
		a.partial[sl.class] = append(a.partial[sl.class], sl)
	}
	return nil
}

func (a *Arena) removePartial(sl *slab) {
	list := a.partial[sl.class]
	for i, s := range list {
		if s == sl {
			a.partial[sl.class] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// UsableSize implements Allocator.
func (a *Arena) UsableSize(addr vm.Addr) (uint64, bool) {
	if sl, ok := a.slabByPage[addr.PageBase()]; ok {
		off := uint64(addr - sl.base)
		if off%sl.slotSize() != 0 {
			return 0, false
		}
		idx := off / sl.slotSize()
		if idx >= sl.slots || sl.liveBits[idx/64]&(1<<(idx%64)) == 0 {
			return 0, false
		}
		return sl.slotSize(), true
	}
	if pages, ok := a.large[addr]; ok {
		return pages * vm.PageSize, true
	}
	return 0, false
}

// Owns implements Allocator.
func (a *Arena) Owns(addr vm.Addr) bool { return a.pool.Region().Contains(addr) }

// Stats implements Allocator.
func (a *Arena) Stats() Stats {
	s := a.stats
	s.PageReuse = a.pool.ReuseCount()
	s.PageFresh = a.pool.FreshCount()
	return s
}
