package heap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

const (
	poolBase vm.Addr = 0x2000_0000
	poolSize uint64  = 4096 * vm.PageSize // 16 MiB
)

func newPool(t *testing.T) (*vm.Space, *PagePool) {
	t.Helper()
	s := vm.NewSpace()
	r, err := s.Reserve("pool", poolBase, poolSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s, NewPagePool(r)
}

func TestClassIndex(t *testing.T) {
	for i, c := range smallClasses {
		if got := classIndex(c); got != i {
			t.Errorf("classIndex(%d) = %d, want %d", c, got, i)
		}
		if c > 1 {
			if got := classIndex(c - 1); got != i {
				t.Errorf("classIndex(%d) = %d, want %d", c-1, got, i)
			}
		}
	}
	if got := classIndex(1); smallClasses[got] != 16 {
		t.Errorf("classIndex(1) -> class %d", smallClasses[got])
	}
	if got := classIndex(0); smallClasses[got] != 16 {
		t.Errorf("classIndex(0) -> class %d", smallClasses[got])
	}
}

func TestSmallClassesMonotone(t *testing.T) {
	for i := 1; i < len(smallClasses); i++ {
		if smallClasses[i] <= smallClasses[i-1] {
			t.Fatalf("classes not strictly increasing at %d: %v", i, smallClasses)
		}
		if smallClasses[i]%Align != 0 {
			t.Fatalf("class %d not %d-aligned", smallClasses[i], Align)
		}
	}
	if maxSmall != 8192 {
		t.Errorf("maxSmall = %d, want 8192", maxSmall)
	}
}

func TestPagePoolAllocFree(t *testing.T) {
	_, p := newPool(t)
	a, err := p.AllocPages(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || b != a+4*vm.PageSize {
		t.Errorf("unexpected layout a=%v b=%v", a, b)
	}
	if p.MappedPages() != 6 {
		t.Errorf("mapped = %d", p.MappedPages())
	}
	if err := p.FreePages(a, 4); err != nil {
		t.Fatal(err)
	}
	// Reuse must come from the freed run.
	c, err := p.AllocPages(3)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("expected reuse at %v, got %v", a, c)
	}
}

func TestPagePoolCoalescing(t *testing.T) {
	_, p := newPool(t)
	a, _ := p.AllocPages(1)
	b, _ := p.AllocPages(1)
	c, _ := p.AllocPages(1)
	if err := p.FreePages(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.FreePages(c, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.FreePages(b, 1); err != nil {
		t.Fatal(err)
	}
	if p.FreeRuns() != 1 {
		t.Errorf("free runs = %d, want 1 coalesced run", p.FreeRuns())
	}
	d, err := p.AllocPages(3)
	if err != nil || d != a {
		t.Errorf("coalesced run not reused: %v, %v", d, err)
	}
}

func TestPagePoolDoubleFree(t *testing.T) {
	_, p := newPool(t)
	a, _ := p.AllocPages(2)
	if err := p.FreePages(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.FreePages(a, 2); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free = %v, want ErrBadFree", err)
	}
	if err := p.FreePages(a+vm.PageSize, 1); !errors.Is(err, ErrBadFree) {
		t.Errorf("free inside free run = %v, want ErrBadFree", err)
	}
}

func TestPagePoolBounds(t *testing.T) {
	_, p := newPool(t)
	if _, err := p.AllocPages(0); err == nil {
		t.Error("AllocPages(0) accepted")
	}
	if err := p.FreePages(0x1000, 1); err == nil {
		t.Error("free outside region accepted")
	}
	if err := p.FreePages(poolBase+3, 1); err == nil {
		t.Error("unaligned free accepted")
	}
	if _, err := p.AllocPages(poolSize/vm.PageSize + 1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized alloc = %v, want ErrOutOfMemory", err)
	}
}

// allocators returns both implementations for shared behavioural tests.
func allocators(t *testing.T) map[string]Allocator {
	t.Helper()
	s1, p1 := newPool(t)
	_ = s1
	s2, p2 := newPool(t)
	return map[string]Allocator{
		"arena":    NewArena(p1),
		"freelist": NewFreeList(p2, s2),
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	for name, a := range allocators(t) {
		t.Run(name, func(t *testing.T) {
			sizes := []uint64{0, 1, 8, 16, 17, 100, 128, 4096, 8192, 8193, 100000}
			var addrs []vm.Addr
			for _, sz := range sizes {
				addr, err := a.Alloc(sz)
				if err != nil {
					t.Fatalf("Alloc(%d): %v", sz, err)
				}
				if uint64(addr)%Align != 0 {
					t.Errorf("Alloc(%d) = %v not %d-aligned", sz, addr, Align)
				}
				us, ok := a.UsableSize(addr)
				if !ok || us < sz {
					t.Errorf("UsableSize(%v) = %d,%v; want >= %d", addr, us, ok, sz)
				}
				addrs = append(addrs, addr)
			}
			for _, addr := range addrs {
				if err := a.Free(addr); err != nil {
					t.Errorf("Free(%v): %v", addr, err)
				}
			}
			st := a.Stats()
			if st.Allocs != uint64(len(sizes)) || st.Frees != uint64(len(sizes)) {
				t.Errorf("stats = %+v", st)
			}
			if st.BytesLive != 0 {
				t.Errorf("BytesLive = %d after freeing everything", st.BytesLive)
			}
		})
	}
}

func TestNoOverlapAmongLiveAllocations(t *testing.T) {
	for name, a := range allocators(t) {
		t.Run(name, func(t *testing.T) {
			type block struct {
				addr vm.Addr
				size uint64
			}
			rng := rand.New(rand.NewSource(1))
			var live []block
			for i := 0; i < 2000; i++ {
				if len(live) > 0 && rng.Intn(3) == 0 {
					j := rng.Intn(len(live))
					if err := a.Free(live[j].addr); err != nil {
						t.Fatalf("free: %v", err)
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				sz := uint64(rng.Intn(5000) + 1)
				addr, err := a.Alloc(sz)
				if err != nil {
					t.Fatalf("alloc %d: %v", sz, err)
				}
				us, _ := a.UsableSize(addr)
				for _, b := range live {
					bu, _ := a.UsableSize(b.addr)
					if addr < b.addr+vm.Addr(bu) && b.addr < addr+vm.Addr(us) {
						t.Fatalf("overlap: new [%v,+%d) with live [%v,+%d)", addr, us, b.addr, bu)
					}
				}
				live = append(live, block{addr, sz})
			}
		})
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	for name, a := range allocators(t) {
		t.Run(name, func(t *testing.T) {
			addr, err := a.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Free(addr); err != nil {
				t.Fatal(err)
			}
			if err := a.Free(addr); !errors.Is(err, ErrBadFree) {
				t.Errorf("double free = %v, want ErrBadFree", err)
			}
			if err := a.Free(0xdead0000); !errors.Is(err, ErrBadFree) {
				t.Errorf("wild free = %v, want ErrBadFree", err)
			}
		})
	}
}

// TestPayloadIntegrity writes distinct patterns into many live blocks and
// verifies no allocation (or allocator metadata update) disturbs another
// block's payload.
func TestPayloadIntegrity(t *testing.T) {
	s := vm.NewSpace()
	r, err := s.Reserve("pool", poolBase, poolSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]Allocator{
		"arena":    NewArena(NewPagePool(r)),
		"freelist": nil, // filled below with its own region
	} {
		if name == "freelist" {
			r2, err := s.Reserve("pool2", poolBase+vm.Addr(poolSize), poolSize, 0)
			if err != nil {
				t.Fatal(err)
			}
			a = NewFreeList(NewPagePool(r2), s)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			type block struct {
				addr vm.Addr
				data []byte
			}
			var live []block
			check := func(b block) {
				got := make([]byte, len(b.data))
				if err := s.Peek(b.addr, got); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != b.data[i] {
						t.Fatalf("payload at %v corrupted at byte %d", b.addr, i)
					}
				}
			}
			for i := 0; i < 600; i++ {
				if len(live) > 4 && rng.Intn(3) == 0 {
					j := rng.Intn(len(live))
					check(live[j])
					if err := a.Free(live[j].addr); err != nil {
						t.Fatal(err)
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				sz := rng.Intn(2000) + 1
				addr, err := a.Alloc(uint64(sz))
				if err != nil {
					t.Fatal(err)
				}
				data := make([]byte, sz)
				rng.Read(data)
				if err := s.Poke(addr, data); err != nil {
					t.Fatal(err)
				}
				live = append(live, block{addr, data})
			}
			for _, b := range live {
				check(b)
			}
		})
	}
}

func TestArenaSlabPageRecycling(t *testing.T) {
	_, p := newPool(t)
	a := NewArena(p)
	var addrs []vm.Addr
	for i := 0; i < 300; i++ { // several slabs of the 64-byte class
		addr, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	mappedBefore := p.MappedPages()
	for _, addr := range addrs {
		if err := a.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	if p.MappedPages() != 0 {
		t.Errorf("pages still mapped after freeing every slot: %d (was %d)", p.MappedPages(), mappedBefore)
	}
}

func TestArenaLargeAllocations(t *testing.T) {
	_, p := newPool(t)
	a := NewArena(p)
	addr, err := a.Alloc(maxSmall + 1)
	if err != nil {
		t.Fatal(err)
	}
	us, ok := a.UsableSize(addr)
	if !ok || us < maxSmall+1 || us%vm.PageSize != 0 {
		t.Errorf("large UsableSize = %d, %v", us, ok)
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if p.MappedPages() != 0 {
		t.Errorf("large pages not returned: %d", p.MappedPages())
	}
}

func TestArenaInteriorPointerRejected(t *testing.T) {
	_, p := newPool(t)
	a := NewArena(p)
	addr, _ := a.Alloc(64)
	if err := a.Free(addr + 8); !errors.Is(err, ErrBadFree) {
		t.Errorf("interior free = %v, want ErrBadFree", err)
	}
	if _, ok := a.UsableSize(addr + 8); ok {
		t.Error("UsableSize of interior pointer should fail")
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListCoalescing(t *testing.T) {
	s, p := newPool(t)
	f := NewFreeList(p, s)
	a, _ := f.Alloc(100)
	b, _ := f.Alloc(100)
	c, _ := f.Alloc(100)
	d, _ := f.Alloc(100) // keeps the first three off the top chunk
	if err := f.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(c); err != nil {
		t.Fatal(err)
	}
	if f.FreeChunks() != 2 {
		t.Fatalf("free chunks = %d, want 2 (non-adjacent)", f.FreeChunks())
	}
	if err := f.Free(b); err != nil { // b bridges a and c
		t.Fatal(err)
	}
	if f.FreeChunks() != 1 {
		t.Errorf("free chunks = %d, want 1 after bridge coalesce", f.FreeChunks())
	}
	// The coalesced chunk must satisfy a request no single piece could.
	big, err := f.Alloc(300)
	if err != nil {
		t.Fatal(err)
	}
	if big != a {
		t.Errorf("coalesced reuse = %v, want %v", big, a)
	}
	_ = d
}

func TestFreeListMergeIntoTop(t *testing.T) {
	s, p := newPool(t)
	f := NewFreeList(p, s)
	a, _ := f.Alloc(100)
	if err := f.Free(a); err != nil {
		t.Fatal(err)
	}
	if f.FreeChunks() != 0 {
		t.Errorf("chunk adjacent to top should merge into top, free list len %d", f.FreeChunks())
	}
	b, _ := f.Alloc(50)
	if b != a {
		t.Errorf("top reuse = %v, want %v", b, a)
	}
}

func TestAllocatorsOwnDisjointPages(t *testing.T) {
	s := vm.NewSpace()
	rT, err := s.Reserve("mt", poolBase, poolSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	rU, err := s.Reserve("mu", poolBase+vm.Addr(poolSize), poolSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	at := NewArena(NewPagePool(rT))
	au := NewFreeList(NewPagePool(rU), s)
	for i := 0; i < 500; i++ {
		x, err := at.Alloc(uint64(i%300) + 1)
		if err != nil {
			t.Fatal(err)
		}
		y, err := au.Alloc(uint64(i%300) + 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rT.Contains(x) || rU.Contains(x) {
			t.Fatalf("trusted alloc %v escaped its region", x)
		}
		if !rU.Contains(y) || rT.Contains(y) {
			t.Fatalf("untrusted alloc %v escaped its region", y)
		}
	}
}

// Property: for any sequence of sizes, allocating then freeing in random
// order leaves both allocators with zero live bytes and the arena with zero
// mapped pages.
func TestDrainProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		s := vm.NewSpace()
		r, err := s.Reserve("p", poolBase, poolSize, 0)
		if err != nil {
			return false
		}
		for _, a := range []Allocator{NewArena(NewPagePool(r))} {
			var addrs []vm.Addr
			for i := 0; i < n; i++ {
				addr, err := a.Alloc(uint64(rng.Intn(20000)))
				if err != nil {
					return false
				}
				addrs = append(addrs, addr)
			}
			rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
			for _, addr := range addrs {
				if a.Free(addr) != nil {
					return false
				}
			}
			if a.Stats().BytesLive != 0 || a.Stats().PagesMapped != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOwns(t *testing.T) {
	s, p := newPool(t)
	a := NewArena(p)
	f := NewFreeList(p, s) // sharing a pool only for the Owns range check
	if !a.Owns(poolBase+10) || !f.Owns(poolBase+10) {
		t.Error("Owns inside region = false")
	}
	if a.Owns(poolBase-1) || f.Owns(poolBase+vm.Addr(poolSize)) {
		t.Error("Owns outside region = true")
	}
}
