package heap

import (
	"math/rand"
	"testing"

	"repro/internal/vm"
)

// TestFreeListSplitLeavesUsableRemainder: allocating from a large free
// chunk splits it, and the remainder serves later requests.
func TestFreeListSplitLeavesUsableRemainder(t *testing.T) {
	s, p := newPool(t)
	f := NewFreeList(p, s)
	big, err := f.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := f.Alloc(64) // keep big off the top chunk
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Free(big); err != nil {
		t.Fatal(err)
	}
	a, err := f.Alloc(100) // split of the 1000-byte chunk
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Alloc(100) // remainder
	if err != nil {
		t.Fatal(err)
	}
	if a != big {
		t.Errorf("first split alloc = %v, want reuse of %v", a, big)
	}
	if b <= a || b >= guard {
		t.Errorf("remainder alloc %v not inside the split chunk (%v..%v)", b, a, guard)
	}
}

// TestFreeListExactFitDoesNotSplit: a request equal to a free chunk's
// capacity consumes it whole.
func TestFreeListExactFitDoesNotSplit(t *testing.T) {
	s, p := newPool(t)
	f := NewFreeList(p, s)
	a, _ := f.Alloc(96)
	if _, err := f.Alloc(64); err != nil { // guard
		t.Fatal(err)
	}
	us, _ := f.UsableSize(a)
	if err := f.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := f.Alloc(us) // exactly the freed chunk's capacity
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("exact fit = %v, want %v", b, a)
	}
	if f.FreeChunks() != 0 {
		t.Errorf("free chunks after exact fit = %d", f.FreeChunks())
	}
}

// TestFreeListLongRandomChurn stresses split/coalesce/top interactions
// and verifies the free list stays structurally sound (allocations keep
// succeeding and never overlap).
func TestFreeListLongRandomChurn(t *testing.T) {
	s, p := newPool(t)
	f := NewFreeList(p, s)
	rng := rand.New(rand.NewSource(42))
	type blk struct {
		addr vm.Addr
		size uint64
	}
	var live []blk
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live))
			if err := f.Free(live[j].addr); err != nil {
				t.Fatalf("iter %d: free: %v", i, err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		sz := uint64(rng.Intn(3000) + 1)
		addr, err := f.Alloc(sz)
		if err != nil {
			t.Fatalf("iter %d: alloc(%d): %v", i, sz, err)
		}
		us, ok := f.UsableSize(addr)
		if !ok || us < sz {
			t.Fatalf("iter %d: usable %d < requested %d", i, us, sz)
		}
		live = append(live, blk{addr, sz})
	}
	// Everything drains.
	for _, b := range live {
		if err := f.Free(b.addr); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().BytesLive != 0 {
		t.Errorf("bytes live after drain = %d", f.Stats().BytesLive)
	}
}

// TestArenaManySizeClassesChurn drives every size class through slab
// creation, filling, partial frees and full recycling.
func TestArenaManySizeClassesChurn(t *testing.T) {
	_, p := newPool(t)
	a := NewArena(p)
	var addrs []vm.Addr
	for _, class := range smallClasses {
		for i := 0; i < 20; i++ {
			addr, err := a.Alloc(class)
			if err != nil {
				t.Fatalf("alloc class %d: %v", class, err)
			}
			addrs = append(addrs, addr)
		}
	}
	// Free every other one, then reallocate; slabs must be reused.
	for i := 0; i < len(addrs); i += 2 {
		if err := a.Free(addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	mapped := p.MappedPages()
	for _, class := range smallClasses {
		for i := 0; i < 10; i++ {
			if _, err := a.Alloc(class); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p.MappedPages() != mapped {
		t.Errorf("refill allocated fresh pages (%d -> %d); partial slabs not reused",
			mapped, p.MappedPages())
	}
}
