// Package heap provides the two general-purpose allocators pkalloc composes:
//
//   - Arena: a size-class slab allocator in the style of jemalloc, used for
//     the trusted pool MT. Its bookkeeping lives in out-of-band structures,
//     mirroring jemalloc's separation of metadata from application data.
//   - FreeList: a boundary-tag first-fit allocator in the style of libc's
//     dlmalloc, used for the shared/untrusted pool MU. Its chunk headers
//     live inside the managed memory itself — which both matches the real
//     allocator and means an untrusted compartment with a corruption bug
//     can clobber them, exactly the failure mode the paper's threat model
//     contemplates.
//
// Both allocators draw pages exclusively from a PagePool bound to one
// vm.Region, which is what guarantees the compartment pools stay disjoint:
// pages are recycled within a pool but never migrate between pools (§3.4).
package heap

import (
	"errors"

	"repro/internal/vm"
)

// Align is the alignment every allocator in this package guarantees.
const Align = 16

// ErrOutOfMemory is returned when a pool's region is exhausted.
var ErrOutOfMemory = errors.New("heap: out of memory")

// ErrBadFree is returned when Free is handed an address the allocator does
// not own or has already freed.
var ErrBadFree = errors.New("heap: invalid or double free")

// Stats summarizes an allocator's activity.
type Stats struct {
	Allocs      uint64 // successful Alloc calls
	Frees       uint64 // successful Free calls
	BytesLive   uint64 // bytes currently allocated (requested sizes)
	BytesTotal  uint64 // cumulative bytes handed out (requested sizes)
	PagesMapped uint64 // pages drawn from the page pool and still held
	ReuseHits   uint64 // allocations served from recycled memory (free list / partial slab)
	FreshAllocs uint64 // allocations served from never-used memory (wilderness / new slab / large run)
	PageReuse   uint64 // page-run requests the pool served from its free runs
	PageFresh   uint64 // page-run requests the pool served from the bump pointer
}

// Allocator is the interface shared by Arena and FreeList.
type Allocator interface {
	// Alloc returns a 16-byte-aligned block of at least size bytes.
	// A size of zero allocates a minimal valid block.
	Alloc(size uint64) (vm.Addr, error)
	// Free releases a block previously returned by Alloc.
	Free(addr vm.Addr) error
	// UsableSize returns the capacity of the block containing addr and
	// whether addr is a live allocation owned by this allocator.
	UsableSize(addr vm.Addr) (uint64, bool)
	// Owns reports whether addr lies in this allocator's region, live or not.
	Owns(addr vm.Addr) bool
	// Stats returns a snapshot of activity counters.
	Stats() Stats
}

func alignUp(n, a uint64) uint64 { return (n + a - 1) &^ (a - 1) }
