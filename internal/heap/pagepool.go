package heap

import (
	"fmt"
	"sort"

	"repro/internal/vm"
)

// run is a contiguous free extent of whole pages.
type run struct {
	addr  vm.Addr
	pages uint64
}

// PagePool hands out page runs from a single vm.Region. Freed runs are
// coalesced and recycled, but only within this pool: a page that entered
// the pool can never be handed to another compartment's allocator. This is
// the disjointness property PKRU-Safe's heap partitioning rests on.
type PagePool struct {
	region *vm.Region
	next   vm.Addr // bump pointer into never-used tail of the region
	free   []run   // address-ordered, coalesced free runs
	mapped uint64  // pages currently held by callers
	reuse  uint64  // AllocPages calls satisfied from a recycled free run
	fresh  uint64  // AllocPages calls satisfied from the bump pointer
}

// NewPagePool creates a pool over the whole of region.
func NewPagePool(region *vm.Region) *PagePool {
	return &PagePool{region: region, next: region.Base}
}

// Region returns the backing region.
func (p *PagePool) Region() *vm.Region { return p.region }

// AllocPages returns the base address of n contiguous pages.
func (p *PagePool) AllocPages(n uint64) (vm.Addr, error) {
	if n == 0 {
		return 0, fmt.Errorf("heap: AllocPages(0)")
	}
	// Best effort reuse: first free run large enough (first fit keeps the
	// list scan short because runs are coalesced).
	for i, r := range p.free {
		if r.pages < n {
			continue
		}
		addr := r.addr
		if r.pages == n {
			p.free = append(p.free[:i], p.free[i+1:]...)
		} else {
			p.free[i] = run{addr: r.addr + vm.Addr(n*vm.PageSize), pages: r.pages - n}
		}
		p.mapped += n
		p.reuse++
		return addr, nil
	}
	need := n * vm.PageSize
	if uint64(p.next)+need > uint64(p.region.End()) {
		return 0, fmt.Errorf("%w: region %q exhausted (want %d pages)", ErrOutOfMemory, p.region.Name, n)
	}
	addr := p.next
	p.next += vm.Addr(need)
	p.mapped += n
	p.fresh++
	return addr, nil
}

// FreePages returns n pages starting at addr to the pool, coalescing with
// adjacent free runs. addr must be page-aligned and inside the pool's region.
func (p *PagePool) FreePages(addr vm.Addr, n uint64) error {
	if addr&vm.PageMask != 0 || n == 0 {
		return fmt.Errorf("heap: FreePages(%v, %d): bad arguments", addr, n)
	}
	end := addr + vm.Addr(n*vm.PageSize)
	if !p.region.Contains(addr) || end > p.region.End() {
		return fmt.Errorf("heap: FreePages(%v, %d): outside region %q", addr, n, p.region.Name)
	}
	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].addr >= addr })
	// Overlap checks against neighbours catch double frees of page runs.
	if i > 0 {
		prev := p.free[i-1]
		if prev.addr+vm.Addr(prev.pages*vm.PageSize) > addr {
			return fmt.Errorf("%w: pages at %v already free", ErrBadFree, addr)
		}
	}
	if i < len(p.free) && end > p.free[i].addr {
		return fmt.Errorf("%w: pages at %v already free", ErrBadFree, addr)
	}
	nr := run{addr: addr, pages: n}
	// Coalesce with successor, then predecessor.
	if i < len(p.free) && end == p.free[i].addr {
		nr.pages += p.free[i].pages
		p.free = append(p.free[:i], p.free[i+1:]...)
	}
	if i > 0 {
		prev := &p.free[i-1]
		if prev.addr+vm.Addr(prev.pages*vm.PageSize) == addr {
			prev.pages += nr.pages
			p.mapped -= n
			return nil
		}
	}
	p.free = append(p.free, run{})
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = nr
	p.mapped -= n
	return nil
}

// MappedPages returns the number of pages currently held by callers.
func (p *PagePool) MappedPages() uint64 { return p.mapped }

// ReuseCount returns how many AllocPages calls were served from recycled
// free runs.
func (p *PagePool) ReuseCount() uint64 { return p.reuse }

// FreshCount returns how many AllocPages calls were served from the
// never-used tail of the region.
func (p *PagePool) FreshCount() uint64 { return p.fresh }

// FreeRuns returns the number of coalesced free runs (for tests).
func (p *PagePool) FreeRuns() int { return len(p.free) }
