package heap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/vm"
)

// FreeList is a dlmalloc-style boundary-tag allocator: every chunk carries
// an in-band header, free chunks additionally carry forward/backward links
// and a size footer, and adjacent free chunks coalesce eagerly. It is the
// stand-in for libc's malloc serving the shared pool MU, and — like the
// real thing — keeps this metadata inside the managed memory, where
// untrusted code can reach it.
//
// Chunk layout (offsets from chunk base, little-endian uint64 fields):
//
//	+0  prevSize  valid only when the preceding chunk is free
//	+8  size|flags  chunk size incl. header; bit0 = in use, bit1 = prev in use
//	+16 payload    (free chunks: +16 fd, +24 bk, end-8 size footer)
//
// FreeList is not internally synchronized; pkalloc serializes access.
type FreeList struct {
	pool  *PagePool
	space *vm.Space

	head     vm.Addr // first free chunk (0 = empty list)
	top      vm.Addr // wilderness chunk base (0 = none yet)
	topSize  uint64
	frontier vm.Addr // end of the highest extent drawn from the pool

	live  map[vm.Addr]uint64 // payload addr -> requested size (defensive bookkeeping)
	stats Stats
}

const (
	flagInUse     = 1 << 0
	flagPrevInUse = 1 << 1
	flagMask      = flagInUse | flagPrevInUse

	headerSize   = 16
	minChunk     = 32 // header + fd/bk links
	growPagesMin = 16 // minimum wilderness extension
)

// NewFreeList creates a free-list allocator drawing pages from pool.
func NewFreeList(pool *PagePool, space *vm.Space) *FreeList {
	return &FreeList{pool: pool, space: space, live: make(map[vm.Addr]uint64)}
}

func (f *FreeList) ld(a vm.Addr) uint64 {
	var b [8]byte
	if err := f.space.Peek(a, b[:]); err != nil {
		panic(fmt.Sprintf("heap: freelist metadata read at %v: %v", a, err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (f *FreeList) st(a vm.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := f.space.Poke(a, b[:]); err != nil {
		panic(fmt.Sprintf("heap: freelist metadata write at %v: %v", a, err))
	}
}

func (f *FreeList) chunkSize(c vm.Addr) uint64  { return f.ld(c+8) &^ flagMask }
func (f *FreeList) chunkFlags(c vm.Addr) uint64 { return f.ld(c+8) & flagMask }
func (f *FreeList) setHeader(c vm.Addr, size, flags uint64) {
	f.st(c+8, size|flags)
}

// Alloc implements Allocator.
func (f *FreeList) Alloc(size uint64) (vm.Addr, error) {
	need := alignUp(size+headerSize, Align)
	if need < minChunk {
		need = minChunk
	}
	// First fit over the free list.
	for c := f.head; c != 0; c = vm.Addr(f.ld(c + 16)) {
		if f.chunkSize(c) < need {
			continue
		}
		f.unlink(c)
		f.carve(c, need)
		f.stats.ReuseHits++
		return f.finishAlloc(c, size)
	}
	// Fall back to the wilderness chunk, growing it as needed.
	if err := f.ensureTop(need); err != nil {
		return 0, err
	}
	f.stats.FreshAllocs++
	c := f.top
	f.top += vm.Addr(need)
	f.topSize -= need
	f.setHeader(c, need, flagInUse|flagPrevInUse)
	if f.topSize > 0 {
		// The top remainder always behaves as "prev in use".
		f.setHeader(f.top, f.topSize, flagPrevInUse)
	}
	return f.finishAlloc(c, size)
}

func (f *FreeList) finishAlloc(c vm.Addr, req uint64) (vm.Addr, error) {
	payload := c + headerSize
	f.live[payload] = req
	f.stats.Allocs++
	f.stats.BytesLive += req
	f.stats.BytesTotal += req
	return payload, nil
}

// carve splits chunk c (already unlinked, total size >= need) into an
// in-use chunk of exactly need bytes plus a free remainder, if the
// remainder is big enough to stand alone.
func (f *FreeList) carve(c vm.Addr, need uint64) {
	total := f.chunkSize(c)
	prevBit := f.chunkFlags(c) & flagPrevInUse
	if total-need >= minChunk {
		rem := c + vm.Addr(need)
		f.setHeader(c, need, flagInUse|prevBit)
		f.setHeader(rem, total-need, flagPrevInUse)
		f.markFree(rem)
		f.insert(rem)
	} else {
		f.setHeader(c, total, flagInUse|prevBit)
		f.setNextPrevInUse(c, total, true)
	}
}

// ensureTop guarantees the wilderness chunk holds at least need bytes.
func (f *FreeList) ensureTop(need uint64) error {
	if f.topSize >= need {
		return nil
	}
	pages := alignUp(need-f.topSize, vm.PageSize) / vm.PageSize
	if pages < growPagesMin {
		pages = growPagesMin
	}
	base, err := f.pool.AllocPages(pages)
	if err != nil {
		return err
	}
	f.stats.PagesMapped += pages
	grown := pages * vm.PageSize
	if base+vm.Addr(grown) > f.frontier {
		f.frontier = base + vm.Addr(grown)
	}
	if f.top != 0 && f.top+vm.Addr(f.topSize) == base {
		f.topSize += grown // contiguous extension
		return f.ensureTop(need)
	}
	// Discontiguous: retire the old top as a free chunk and start fresh.
	if f.topSize >= minChunk {
		old := f.top
		f.setHeader(old, f.topSize, f.chunkFlags(old)&flagPrevInUse)
		f.markFree(old)
		f.insert(old)
	} else if f.topSize > 0 {
		// A fragment too small to stand alone is abandoned; mark it in use
		// so neighbours never coalesce into it (bounded internal waste).
		f.setHeader(f.top, f.topSize, flagInUse|f.chunkFlags(f.top)&flagPrevInUse)
	}
	f.top = base
	f.topSize = grown
	f.setHeader(base, grown, flagPrevInUse)
	return f.ensureTop(need)
}

// markFree clears the in-use bit bookkeeping around a free chunk: writes the
// footer and clears the next chunk's prev-in-use flag.
func (f *FreeList) markFree(c vm.Addr) {
	size := f.chunkSize(c)
	f.st(c+vm.Addr(size)-8, size) // footer
	f.setNextPrevInUse(c, size, false)
}

// setNextPrevInUse updates the prev-in-use flag of the chunk after c, and
// its prevSize field when marking free.
func (f *FreeList) setNextPrevInUse(c vm.Addr, size uint64, inUse bool) {
	next := c + vm.Addr(size)
	if next == f.top {
		return // the top chunk's flags are managed separately
	}
	if !f.isManaged(next) {
		return // c abuts unmanaged space (end of a discontiguous extent)
	}
	hdr := f.ld(next + 8)
	if inUse {
		hdr |= flagPrevInUse
	} else {
		hdr &^= flagPrevInUse
		f.st(next, size) // prevSize
	}
	f.st(next+8, hdr)
}

// isManaged reports whether a chunk header at addr lies within memory this
// allocator has drawn from its pool.
func (f *FreeList) isManaged(addr vm.Addr) bool {
	return f.pool.Region().Contains(addr) && addr < f.frontier
}

// insert links chunk c at the head of the free list.
func (f *FreeList) insert(c vm.Addr) {
	f.st(c+16, uint64(f.head)) // fd
	f.st(c+24, 0)              // bk
	if f.head != 0 {
		f.st(f.head+24, uint64(c))
	}
	f.head = c
}

// unlink removes chunk c from the free list.
func (f *FreeList) unlink(c vm.Addr) {
	fd := vm.Addr(f.ld(c + 16))
	bk := vm.Addr(f.ld(c + 24))
	if bk != 0 {
		f.st(bk+16, uint64(fd))
	} else {
		f.head = fd
	}
	if fd != 0 {
		f.st(fd+24, uint64(bk))
	}
}

// Free implements Allocator.
func (f *FreeList) Free(payload vm.Addr) error {
	req, ok := f.live[payload]
	if !ok {
		return fmt.Errorf("%w: %v not a live freelist allocation", ErrBadFree, payload)
	}
	delete(f.live, payload)
	c := payload - headerSize
	size := f.chunkSize(c)
	flags := f.chunkFlags(c)
	f.stats.Frees++
	f.stats.BytesLive -= req

	// Coalesce backward.
	if flags&flagPrevInUse == 0 {
		prevSize := f.ld(c)
		prev := c - vm.Addr(prevSize)
		f.unlink(prev)
		c = prev
		size += prevSize
	}
	// Coalesce forward (or merge into the wilderness).
	next := c + vm.Addr(size)
	if next == f.top {
		f.top = c
		f.topSize += size
		f.setHeader(c, f.topSize, flagPrevInUse)
		return nil
	}
	if f.isManaged(next) && f.chunkFlags(next)&flagInUse == 0 && f.chunkSize(next) > 0 {
		f.unlink(next)
		size += f.chunkSize(next)
	}
	f.setHeader(c, size, flagPrevInUse)
	f.markFree(c)
	f.insert(c)
	return nil
}

// UsableSize implements Allocator.
func (f *FreeList) UsableSize(payload vm.Addr) (uint64, bool) {
	if _, ok := f.live[payload]; !ok {
		return 0, false
	}
	return f.chunkSize(payload-headerSize) - headerSize, true
}

// Owns implements Allocator.
func (f *FreeList) Owns(addr vm.Addr) bool { return f.pool.Region().Contains(addr) }

// Stats implements Allocator.
func (f *FreeList) Stats() Stats {
	s := f.stats
	s.PageReuse = f.pool.ReuseCount()
	s.PageFresh = f.pool.FreshCount()
	return s
}

// FreeChunks returns the length of the free list (for tests).
func (f *FreeList) FreeChunks() int {
	n := 0
	for c := f.head; c != 0; c = vm.Addr(f.ld(c + 16)) {
		n++
	}
	return n
}
