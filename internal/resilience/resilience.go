// Package resilience is the per-tenant circuit breaker between admission
// and the compartment gates: it turns "this tenant's compartment keeps
// faulting" into "stop letting this tenant's requests reach a gate at
// all", so a hostile or broken tenant degrades gracefully instead of
// burning the recovery budget and the quarantine machinery on every
// request.
//
// Each tenant has a three-state breaker:
//
//	closed ──(fault rate / consecutive faults / budget burn)──▶ open
//	open ──(probe backoff elapsed)──▶ half-open
//	half-open ──(probe succeeds ×N)──▶ closed
//	half-open ──(probe faults)──▶ open (backoff doubled)
//
// While open, Allow refuses the tenant's requests with the typed
// ErrTenantQuarantined — the request is counted as shed and never enters
// a gate. The open→half-open backoff grows exponentially with every trip
// and carries deterministic per-tenant jitter so a fleet of flapping
// tenants does not probe in lockstep. State transitions are returned to
// the caller (for gatetrace instants) and mirrored into the
// pkrusafe_resilience_* metric families.
package resilience

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// State is one breaker position.
type State uint8

const (
	// Closed admits every request (the healthy steady state).
	Closed State = iota
	// Open sheds every request at admission until the probe backoff
	// elapses.
	Open
	// HalfOpen admits a bounded number of probe requests; their outcomes
	// decide between re-opening and closing.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrTenantQuarantined is the typed admission refusal for a tenant whose
// breaker is open. Callers shed the request — count it, answer it with a
// degraded response — without entering any gate.
var ErrTenantQuarantined = errors.New("resilience: tenant circuit open, request shed at admission")

// Defaults for Config fields left zero.
const (
	// DefaultTripFaults is how many consecutive compartment faults open a
	// closed breaker.
	DefaultTripFaults = 3
	// DefaultWindow is the sliding outcome window per tenant.
	DefaultWindow = 16
	// DefaultTripRate is the fault fraction of a full window that opens
	// the breaker even without a consecutive run.
	DefaultTripRate = 0.5
	// DefaultBurnLimit is the per-tenant recovery-budget burn (recovery
	// actions spent on the tenant) that opens the breaker.
	DefaultBurnLimit = 16
	// DefaultProbeAfter is the base open→half-open backoff.
	DefaultProbeAfter = 100 * time.Millisecond
	// DefaultProbeMax caps the exponential backoff.
	DefaultProbeMax = 10 * time.Second
	// DefaultProbeSuccesses is how many half-open probes must succeed in
	// a row to close the breaker.
	DefaultProbeSuccesses = 2
	// DefaultJitterFrac is the fraction of the backoff added as
	// deterministic per-(tenant, trip) jitter.
	DefaultJitterFrac = 0.25
)

// Config parameterizes a Group. Zero-valued fields take the defaults.
type Config struct {
	TripFaults     int           // consecutive faults that open a closed breaker
	Window         int           // sliding outcome window size
	TripRate       float64       // fault rate over a full window that opens; negative disables
	BurnLimit      int           // per-tenant recovery-budget burn that opens; negative disables
	ProbeAfter     time.Duration // base open→half-open backoff
	ProbeMax       time.Duration // backoff cap
	ProbeSuccesses int           // consecutive probe successes that close
	JitterFrac     float64       // jitter as a fraction of the backoff; negative disables
	// Now is the clock (time.Now when nil); tests inject a fake.
	Now func() time.Time
}

func (c Config) tripFaults() int {
	if c.TripFaults <= 0 {
		return DefaultTripFaults
	}
	return c.TripFaults
}

func (c Config) window() int {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

func (c Config) tripRate() float64 {
	if c.TripRate == 0 {
		return DefaultTripRate
	}
	return c.TripRate
}

func (c Config) burnLimit() int {
	if c.BurnLimit == 0 {
		return DefaultBurnLimit
	}
	return c.BurnLimit
}

func (c Config) probeAfter() time.Duration {
	if c.ProbeAfter <= 0 {
		return DefaultProbeAfter
	}
	return c.ProbeAfter
}

func (c Config) probeMax() time.Duration {
	if c.ProbeMax <= 0 {
		return DefaultProbeMax
	}
	return c.ProbeMax
}

func (c Config) probeSuccesses() int {
	if c.ProbeSuccesses <= 0 {
		return DefaultProbeSuccesses
	}
	return c.ProbeSuccesses
}

func (c Config) jitterFrac() float64 {
	if c.JitterFrac == 0 {
		return DefaultJitterFrac
	}
	if c.JitterFrac < 0 {
		return 0
	}
	return c.JitterFrac
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Transition is one breaker state change, returned by the recording
// methods so the caller can emit a gatetrace instant for it.
type Transition struct {
	Tenant string
	From   State
	To     State
	Reason string
	Trips  uint64 // total opens of this tenant's breaker so far
}

// Instant renders the transition as a gatetrace instant name, e.g.
// "breaker:open". scripts/tracecheck recognizes this prefix.
func (tr Transition) Instant() string { return "breaker:" + tr.To.String() }

// breaker is one tenant's state machine. All fields are guarded by the
// Group lock.
type breaker struct {
	tenant      string
	state       State
	consecutive int    // consecutive faults while closed
	window      []bool // ring of recent outcomes, true = fault
	windowNext  int
	windowFull  bool
	burn        int // recovery-budget burn while closed

	openUntil  time.Time
	trips      uint64
	shed       uint64
	probes     uint64
	closes     uint64
	inFlight   int // admitted half-open probes awaiting an outcome
	probeGoods int // consecutive half-open successes
}

// TenantState is one breaker in a Snapshot, JSON-ready for
// /tenants.json.
type TenantState struct {
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Trips  uint64 `json:"trips"`
	Shed   uint64 `json:"shed"`
	Probes uint64 `json:"probes"`
	Burn   int    `json:"burn,omitempty"`
}

// Group manages one breaker per tenant. It is safe for concurrent use. A
// nil *Group admits everything and records nothing, so callers can wire
// it unconditionally.
type Group struct {
	mu       sync.Mutex
	cfg      Config
	breakers map[string]*breaker
	tel      *groupTelemetry
}

type groupTelemetry struct {
	state  *telemetry.GaugeVec
	trips  *telemetry.CounterVec
	shed   *telemetry.CounterVec
	probes *telemetry.CounterVec
	closes *telemetry.CounterVec
}

// NewGroup builds a breaker group.
func NewGroup(cfg Config) *Group {
	return &Group{cfg: cfg, breakers: make(map[string]*breaker)}
}

// SetTelemetry attaches the group to a metrics registry (nil detaches):
// per-tenant state gauge plus trip/shed/probe/close counters.
func (g *Group) SetTelemetry(reg *telemetry.Registry) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if reg == nil {
		g.tel = nil
		return
	}
	g.tel = &groupTelemetry{
		state: reg.GaugeVec("pkrusafe_resilience_state",
			"Breaker state per tenant (0 closed, 1 open, 2 half-open).", "tenant"),
		trips: reg.CounterVec("pkrusafe_resilience_trips_total",
			"Breaker opens per tenant.", "tenant"),
		shed: reg.CounterVec("pkrusafe_resilience_shed_total",
			"Requests shed at admission per tenant while the breaker was open.", "tenant"),
		probes: reg.CounterVec("pkrusafe_resilience_probes_total",
			"Half-open probe requests admitted per tenant.", "tenant"),
		closes: reg.CounterVec("pkrusafe_resilience_closes_total",
			"Breaker closes (recoveries) per tenant.", "tenant"),
	}
}

// breakerLocked returns (lazily creating) the tenant's breaker.
func (g *Group) breakerLocked(tenant string) *breaker {
	b, ok := g.breakers[tenant]
	if !ok {
		b = &breaker{tenant: tenant, window: make([]bool, g.cfg.window())}
		g.breakers[tenant] = b
	}
	return b
}

// Allow decides admission for one request of the tenant. A closed
// breaker admits; an open breaker sheds with ErrTenantQuarantined until
// the probe backoff elapses, at which point the breaker goes half-open
// and the request is admitted as a probe; a half-open breaker admits
// only as many concurrent probes as it still needs successes. The
// returned transition is non-nil when this call moved the breaker
// (open→half-open).
func (g *Group) Allow(tenant string) (*Transition, error) {
	if g == nil {
		return nil, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.breakerLocked(tenant)
	switch b.state {
	case Closed:
		return nil, nil
	case Open:
		if g.cfg.now().Before(b.openUntil) {
			b.shed++
			if g.tel != nil {
				g.tel.shed.With(tenant).Inc()
			}
			return nil, fmt.Errorf("%w: %s", ErrTenantQuarantined, tenant)
		}
		tr := g.moveLocked(b, HalfOpen, "probe-backoff-elapsed")
		b.inFlight = 1
		b.probeGoods = 0
		b.probes++
		if g.tel != nil {
			g.tel.probes.With(tenant).Inc()
		}
		return tr, nil
	default: // HalfOpen
		if b.inFlight >= g.cfg.probeSuccesses()-b.probeGoods {
			b.shed++
			if g.tel != nil {
				g.tel.shed.With(tenant).Inc()
			}
			return nil, fmt.Errorf("%w: %s", ErrTenantQuarantined, tenant)
		}
		b.inFlight++
		b.probes++
		if g.tel != nil {
			g.tel.probes.With(tenant).Inc()
		}
		return nil, nil
	}
}

// RecordSuccess records one successful request outcome for the tenant.
// In half-open it counts toward closing; the returned transition is
// non-nil when the breaker closed.
func (g *Group) RecordSuccess(tenant string) *Transition {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.breakerLocked(tenant)
	b.pushOutcome(false)
	switch b.state {
	case Closed:
		b.consecutive = 0
		return nil
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		b.probeGoods++
		if b.probeGoods >= g.cfg.probeSuccesses() {
			b.consecutive = 0
			b.burn = 0
			b.windowFull = false
			b.windowNext = 0
			for i := range b.window {
				b.window[i] = false
			}
			b.closes++
			if g.tel != nil {
				g.tel.closes.With(tenant).Inc()
			}
			return g.moveLocked(b, Closed, "probes-succeeded")
		}
		return nil
	default: // Open: a late success from a request admitted before the
		// trip changes nothing.
		return nil
	}
}

// RecordFault records one compartment-fault outcome for the tenant. The
// returned transition is non-nil when the breaker opened (or re-opened
// from half-open, with the backoff doubled).
func (g *Group) RecordFault(tenant string) *Transition {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.breakerLocked(tenant)
	b.pushOutcome(true)
	switch b.state {
	case Closed:
		b.consecutive++
		if b.consecutive >= g.cfg.tripFaults() {
			return g.tripLocked(b, "consecutive-faults")
		}
		if rate := g.cfg.tripRate(); rate > 0 && b.windowFull {
			faults := 0
			for _, f := range b.window {
				if f {
					faults++
				}
			}
			if float64(faults) >= rate*float64(len(b.window)) {
				return g.tripLocked(b, "fault-rate")
			}
		}
		return nil
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		return g.tripLocked(b, "probe-faulted")
	default: // Open: a late fault from a request admitted before the trip.
		return nil
	}
}

// RecordBurn charges n recovery actions (quarantines, retries, heals
// spent on the tenant) against the tenant's burn budget; crossing the
// limit opens the breaker even when the fault pattern alone would not.
func (g *Group) RecordBurn(tenant string, n int) *Transition {
	if g == nil || n <= 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.breakerLocked(tenant)
	if b.state != Closed {
		return nil
	}
	b.burn += n
	if limit := g.cfg.burnLimit(); limit > 0 && b.burn >= limit {
		return g.tripLocked(b, "budget-burn")
	}
	return nil
}

// pushOutcome records one outcome in the sliding window.
func (b *breaker) pushOutcome(fault bool) {
	if len(b.window) == 0 {
		return
	}
	b.window[b.windowNext] = fault
	b.windowNext++
	if b.windowNext == len(b.window) {
		b.windowNext = 0
		b.windowFull = true
	}
}

// tripLocked opens the breaker: the backoff is exponential in the trip
// count with deterministic per-(tenant, trip) jitter, so repeated trips
// back off further and a fleet of flapping tenants never probes in
// lockstep.
func (g *Group) tripLocked(b *breaker, reason string) *Transition {
	b.trips++
	b.consecutive = 0
	b.inFlight = 0
	b.probeGoods = 0
	backoff := g.cfg.probeAfter()
	for i := uint64(1); i < b.trips && backoff < g.cfg.probeMax(); i++ {
		backoff *= 2
	}
	if backoff > g.cfg.probeMax() {
		backoff = g.cfg.probeMax()
	}
	if jf := g.cfg.jitterFrac(); jf > 0 {
		backoff += time.Duration(float64(backoff) * jf * jitter(b.tenant, b.trips))
	}
	b.openUntil = g.cfg.now().Add(backoff)
	if g.tel != nil {
		g.tel.trips.With(b.tenant).Inc()
	}
	return g.moveLocked(b, Open, reason)
}

// jitter derives a deterministic fraction in [0, 1) from the tenant name
// and trip count — stable across runs (no global PRNG), distinct across
// tenants.
func jitter(tenant string, trip uint64) float64 {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(trip >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum32()%1000) / 1000
}

// moveLocked commits a state change and returns the transition.
func (g *Group) moveLocked(b *breaker, to State, reason string) *Transition {
	tr := &Transition{Tenant: b.tenant, From: b.state, To: to, Reason: reason, Trips: b.trips}
	b.state = to
	if g.tel != nil {
		g.tel.state.With(b.tenant).Set(float64(to))
	}
	return tr
}

// State returns the tenant's current breaker state (Closed for a tenant
// never seen, and always Closed on a nil group).
func (g *Group) State(tenant string) State {
	if g == nil {
		return Closed
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.breakers[tenant]
	if !ok {
		return Closed
	}
	return b.state
}

// Shed returns how many of the tenant's requests were refused at
// admission.
func (g *Group) Shed(tenant string) uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.breakers[tenant]
	if !ok {
		return 0
	}
	return b.shed
}

// Forget drops the tenant's breaker (tenant churned out).
func (g *Group) Forget(tenant string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.breakers, tenant)
}

// Snapshot returns every tenant's breaker state, sorted by tenant name —
// the view /tenants.json serves.
func (g *Group) Snapshot() []TenantState {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]TenantState, 0, len(g.breakers))
	for _, b := range g.breakers {
		out = append(out, TenantState{
			Tenant: b.tenant,
			State:  b.state.String(),
			Trips:  b.trips,
			Shed:   b.shed,
			Probes: b.probes,
			Burn:   b.burn,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
