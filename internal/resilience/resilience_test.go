package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is a manually-advanced clock for deterministic backoff tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestGroup(clk *fakeClock) *Group {
	return NewGroup(Config{
		TripFaults:     3,
		ProbeAfter:     100 * time.Millisecond,
		ProbeSuccesses: 2,
		JitterFrac:     -1, // exact backoff arithmetic in tests
		Now:            clk.Now,
	})
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	g := newTestGroup(clk)

	// Closed: everything admitted, faults below the threshold stay closed.
	for i := 0; i < 2; i++ {
		if _, err := g.Allow("a"); err != nil {
			t.Fatalf("closed Allow #%d: %v", i, err)
		}
		if tr := g.RecordFault("a"); tr != nil {
			t.Fatalf("tripped after %d faults: %+v", i+1, tr)
		}
	}
	// Third consecutive fault trips it.
	tr := g.RecordFault("a")
	if tr == nil || tr.To != Open || tr.Reason != "consecutive-faults" {
		t.Fatalf("transition = %+v, want open on consecutive-faults", tr)
	}
	if got := tr.Instant(); got != "breaker:open" {
		t.Errorf("Instant() = %q", got)
	}
	if g.State("a") != Open {
		t.Fatalf("state = %v, want open", g.State("a"))
	}

	// Open: shed until the backoff elapses.
	if _, err := g.Allow("a"); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("open Allow = %v, want ErrTenantQuarantined", err)
	}
	if g.Shed("a") != 1 {
		t.Errorf("shed = %d, want 1", g.Shed("a"))
	}

	// Backoff elapses: the next Allow is a half-open probe.
	clk.Advance(150 * time.Millisecond)
	tr2, err := g.Allow("a")
	if err != nil || tr2 == nil || tr2.To != HalfOpen {
		t.Fatalf("probe Allow = %+v, %v; want half-open transition", tr2, err)
	}

	// Two probe successes close it.
	if tr := g.RecordSuccess("a"); tr != nil {
		t.Fatalf("closed after one probe success: %+v", tr)
	}
	if _, err := g.Allow("a"); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	tr3 := g.RecordSuccess("a")
	if tr3 == nil || tr3.To != Closed {
		t.Fatalf("transition = %+v, want closed", tr3)
	}
	if g.State("a") != Closed {
		t.Fatalf("state = %v, want closed", g.State("a"))
	}
}

func TestHalfOpenFaultReopensWithDoubledBackoff(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	g := newTestGroup(clk)
	for i := 0; i < 3; i++ {
		g.RecordFault("b")
	}
	clk.Advance(150 * time.Millisecond)
	if _, err := g.Allow("b"); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	tr := g.RecordFault("b")
	if tr == nil || tr.To != Open || tr.Reason != "probe-faulted" || tr.Trips != 2 {
		t.Fatalf("transition = %+v, want re-open trip 2", tr)
	}
	// Second trip backs off 2× the base: still shedding at base+ε.
	clk.Advance(150 * time.Millisecond)
	if _, err := g.Allow("b"); !errors.Is(err, ErrTenantQuarantined) {
		t.Fatalf("Allow inside doubled backoff = %v, want shed", err)
	}
	clk.Advance(100 * time.Millisecond) // 250ms total > 200ms
	if _, err := g.Allow("b"); err != nil {
		t.Fatalf("Allow after doubled backoff = %v, want probe", err)
	}
}

func TestBudgetBurnTrips(t *testing.T) {
	g := NewGroup(Config{BurnLimit: 4, Now: func() time.Time { return time.Unix(0, 0) }})
	if tr := g.RecordBurn("c", 3); tr != nil {
		t.Fatalf("tripped below burn limit: %+v", tr)
	}
	tr := g.RecordBurn("c", 1)
	if tr == nil || tr.To != Open || tr.Reason != "budget-burn" {
		t.Fatalf("transition = %+v, want budget-burn open", tr)
	}
}

func TestFaultRateTripsWithoutConsecutiveRun(t *testing.T) {
	g := NewGroup(Config{TripFaults: 100, Window: 4, TripRate: 0.5,
		Now: func() time.Time { return time.Unix(0, 0) }})
	// Alternate success/fault: never 100 consecutive, but the window hits
	// the 50% rate once full.
	var tripped *Transition
	for i := 0; i < 8 && tripped == nil; i++ {
		if i%2 == 0 {
			g.RecordSuccess("d")
		} else {
			tripped = g.RecordFault("d")
		}
	}
	if tripped == nil || tripped.Reason != "fault-rate" {
		t.Fatalf("transition = %+v, want fault-rate open", tripped)
	}
}

func TestJitterIsDeterministicAndPerTenant(t *testing.T) {
	if jitter("x", 1) != jitter("x", 1) {
		t.Error("jitter not deterministic")
	}
	if jitter("x", 1) == jitter("y", 1) && jitter("x", 2) == jitter("y", 2) {
		t.Error("jitter identical across tenants for two trips")
	}
	if j := jitter("x", 1); j < 0 || j >= 1 {
		t.Errorf("jitter out of range: %v", j)
	}
}

func TestNilGroupIsInert(t *testing.T) {
	var g *Group
	if _, err := g.Allow("z"); err != nil {
		t.Error("nil group refused admission")
	}
	if g.RecordFault("z") != nil || g.RecordSuccess("z") != nil || g.RecordBurn("z", 9) != nil {
		t.Error("nil group produced transitions")
	}
	if g.State("z") != Closed || g.Shed("z") != 0 || g.Snapshot() != nil {
		t.Error("nil group accessors not inert")
	}
}

func TestTelemetryAndSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := &fakeClock{now: time.Unix(0, 0)}
	g := newTestGroup(clk)
	g.SetTelemetry(reg)
	for i := 0; i < 3; i++ {
		g.RecordFault("t1")
	}
	g.Allow("t1") // shed
	g.RecordSuccess("t2")

	snap := g.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != "t1" || snap[1].Tenant != "t2" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].State != "open" || snap[0].Trips != 1 || snap[0].Shed != 1 {
		t.Errorf("t1 state = %+v", snap[0])
	}
	if snap[1].State != "closed" {
		t.Errorf("t2 state = %+v", snap[1])
	}

	if v, ok := reg.CounterValue("pkrusafe_resilience_trips_total"); !ok || v != 1 {
		t.Errorf("trips counter = %v, %v", v, ok)
	}
	if v, ok := reg.CounterValue("pkrusafe_resilience_shed_total"); !ok || v != 1 {
		t.Errorf("shed counter = %v, %v", v, ok)
	}
}
