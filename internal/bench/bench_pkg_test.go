package bench

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// quickOpts keeps harness self-tests fast.
var quickOpts = Options{Scale: 0.25, Repeats: 1}

func TestRunBenchmarkAllConfigs(t *testing.T) {
	b := workload.Kraken()[8] // audio-dft, a small kernel
	r, err := RunBenchmark(b, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.Seconds <= 0 || r.Alloc.Seconds <= 0 || r.MPK.Seconds <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if r.MPK.Transitions == 0 {
		t.Error("mpk run recorded no transitions")
	}
	if r.Base.Transitions != 0 {
		t.Errorf("base run counted %d transitions", r.Base.Transitions)
	}
	if r.MPK.UntrustedShare <= 0 {
		t.Error("mpk run has zero %MU (profile not applied?)")
	}
}

func TestRunBenchmarkDOM(t *testing.T) {
	b := workload.Dromaeo()[0] // dom-attr
	r, err := RunBenchmark(b, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.MPK.Transitions < 100 {
		t.Errorf("dom benchmark transitions = %d, want many", r.MPK.Transitions)
	}
}

func TestRunBenchmarkParseKind(t *testing.T) {
	var codeload workload.Benchmark
	for _, b := range workload.Octane() {
		if b.Kind == workload.Parse {
			codeload = b
			break
		}
	}
	if codeload.Name == "" {
		t.Fatal("no Parse-kind benchmark in octane")
	}
	r, err := RunBenchmark(codeload, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.Seconds <= 0 {
		t.Error("parse benchmark did not run")
	}
}

func TestRunSuiteAndAggregates(t *testing.T) {
	benches := []workload.Benchmark{
		workload.Kraken()[8],  // audio-dft
		workload.Dromaeo()[0], // dom-attr
	}
	rep, err := RunSuite("mini", benches, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.TotalTransitions() == 0 {
		t.Error("no transitions aggregated")
	}
	if s := rep.MeanUntrustedShare(); s <= 0 || s >= 1 {
		t.Errorf("mean %%MU = %v", s)
	}
	score := rep.GeomeanScore(func(r BenchResult) float64 { return r.Base.Seconds })
	if score <= 0 {
		t.Errorf("geomean score = %v", score)
	}
	// Aggregation helpers on an empty report are defined.
	var empty SuiteReport
	if empty.MeanAllocOverhead() != 0 || empty.MeanUntrustedShare() != 0 || empty.GeomeanScore(nil) != 0 {
		t.Error("empty report aggregates non-zero")
	}
}

func TestMicroBench(t *testing.T) {
	rs, err := RunMicro(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("micro results = %d", len(rs))
	}
	names := []string{"empty", "read_one", "callback"}
	for i, r := range rs {
		if r.Name != names[i] {
			t.Errorf("result %d = %q", i, r.Name)
		}
		if r.Factor <= 1.0 {
			t.Errorf("%s gated/ungated factor = %.2f, want > 1 (gates must cost something)", r.Name, r.Factor)
		}
	}
	out := FormatMicro(rs)
	if !strings.Contains(out, "empty") || !strings.Contains(out, "8.55x") {
		t.Errorf("micro format:\n%s", out)
	}
}

func TestGateSweepShape(t *testing.T) {
	pts, err := RunGateSweep([]int{0, 50, 200, 2000}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Figure 3's shape: overhead falls as per-transition work grows. The
	// first point must exceed the last by a clear margin.
	first, last := pts[0].Normalized, pts[len(pts)-1].Normalized
	if first <= last {
		t.Errorf("sweep not decreasing: first %.2f, last %.2f", first, last)
	}
	if last > 1.5 {
		t.Errorf("with 2000 loops of work, overhead should approach 1.0, got %.2f", last)
	}
	out := FormatSweep(pts)
	if !strings.Contains(out, "Figure 3") {
		t.Errorf("sweep format:\n%s", out)
	}
}

func TestTableFormatting(t *testing.T) {
	benches := []workload.Benchmark{workload.Dromaeo()[5], workload.Dromaeo()[0]}
	rep, err := RunSuite("dromaeo", benches, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	t1 := FormatTable1([]SuiteReport{rep})
	for _, want := range []string{"Table 1", "dromaeo", "transitions", "%MU"} {
		if !strings.Contains(t1, want) {
			t.Errorf("table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := FormatTable2(rep)
	for _, want := range []string{"Table 2", "dom", "v8", "mean"} {
		if !strings.Contains(t2, want) {
			t.Errorf("table 2 missing %q:\n%s", want, t2)
		}
	}
	t3 := FormatTable3(rep)
	for _, want := range []string{"Table 3", "score", "base", "mpk"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table 3 missing %q:\n%s", want, t3)
		}
	}
	fig := FormatFigure("Figure 5: Kraken", rep)
	if !strings.Contains(fig, "alloc") || !strings.Contains(fig, "mpk") {
		t.Errorf("figure missing series:\n%s", fig)
	}
}

func TestRunSites(t *testing.T) {
	r, err := RunSites()
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSites == 0 || r.SharedSites == 0 {
		t.Fatalf("sites = %+v", r)
	}
	if r.SharedSites >= r.TotalSites {
		t.Errorf("every site shared (%d/%d): partitioning is vacuous", r.SharedSites, r.TotalSites)
	}
	if r.SharedPercent <= 0 || r.SharedPercent >= 100 {
		t.Errorf("shared%% = %v", r.SharedPercent)
	}
	out := FormatSites(r)
	if !strings.Contains(out, "2.26%") || !strings.Contains(out, "shared sites") {
		t.Errorf("sites format:\n%s", out)
	}
}
