// Package bench is the evaluation harness: it drives the workload suites
// through the three build configurations of §5.3 (base, alloc, mpk),
// measures normalized runtimes, transition counts and %MU, and renders
// the paper's tables and figures.
package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workload"
)

// Measurement is one timed run of one benchmark under one configuration.
type Measurement struct {
	Seconds        float64
	Transitions    uint64
	UntrustedShare float64
}

// BenchResult is one benchmark measured under all three configurations.
type BenchResult struct {
	Bench workload.Benchmark
	Base  Measurement
	Alloc Measurement
	MPK   Measurement
	// Telemetry summarizes a separate instrumented mpk run (the timed
	// runs above stay uninstrumented). Nil when collection was skipped.
	Telemetry *TelemetrySummary
}

// AllocOverhead returns the alloc configuration's overhead vs base
// (0.05 = +5%).
func (r BenchResult) AllocOverhead() float64 {
	if r.Base.Seconds == 0 {
		return 0
	}
	return r.Alloc.Seconds/r.Base.Seconds - 1
}

// MPKOverhead returns the mpk configuration's overhead vs base.
func (r BenchResult) MPKOverhead() float64 {
	if r.Base.Seconds == 0 {
		return 0
	}
	return r.MPK.Seconds/r.Base.Seconds - 1
}

// Options tunes the harness.
type Options struct {
	// Scale multiplies each benchmark's bench(n) argument (default 1).
	Scale float64
	// Repeats per configuration; the minimum is kept (default 3).
	Repeats int
	// StepLimit for engine scripts (default: engine default).
	StepLimit uint64
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
}

// CollectBenchProfile runs the benchmark once, lightly, under a Profiling
// build and returns the profile its enforced runs need — stage 3 of the
// pipeline, standing in for the paper's profiling corpus.
func CollectBenchProfile(b workload.Benchmark, opt Options) (*profile.Profile, error) {
	opt.fill()
	return browser.CollectProfile(func(br *browser.Browser) error {
		return runOnce(br, b, math.Max(1, b.N*opt.Scale/4))
	}, browser.Options{StepLimit: opt.StepLimit})
}

// runOnce loads the benchmark page, installs the setup script and invokes
// bench(n) a single time (Parse-kind: evaluates the blob once).
func runOnce(br *browser.Browser, b workload.Benchmark, n float64) error {
	if err := br.LoadHTML(pageFor(b)); err != nil {
		return err
	}
	if b.Kind == workload.Parse {
		if _, err := br.ExecScript(b.Blob); err != nil {
			return err
		}
		return br.Housekeeping()
	}
	if _, err := br.ExecScript(b.Setup); err != nil {
		return err
	}
	id, err := br.LookupScriptFunc("bench")
	if err != nil {
		return err
	}
	if _, err = br.InvokeScriptFunc(id, n); err != nil {
		return err
	}
	return br.Housekeeping()
}

// pageFor returns the page a benchmark runs against: its own, or the
// standing harness page for compute kernels.
func pageFor(b workload.Benchmark) string {
	if b.HTML != "" {
		return b.HTML
	}
	return workload.HarnessPage
}

// measure builds the browser in cfg and times Iters invocations of the
// benchmark, Repeats times, keeping the fastest.
func measure(b workload.Benchmark, cfg core.BuildConfig, prof *profile.Profile, opt Options) (Measurement, error) {
	var best Measurement
	best.Seconds = math.Inf(1)
	for rep := 0; rep < opt.Repeats; rep++ {
		var consumed *profile.Profile
		if cfg == core.Alloc || cfg == core.MPK {
			consumed = prof
		}
		br, err := browser.New(cfg, consumed, browser.Options{StepLimit: opt.StepLimit})
		if err != nil {
			return Measurement{}, err
		}
		if err := br.LoadHTML(pageFor(b)); err != nil {
			return Measurement{}, err
		}
		n := b.N * opt.Scale
		var elapsed time.Duration
		if b.Kind == workload.Parse {
			start := time.Now()
			for i := 0; i < b.Iters; i++ {
				if _, err := br.ExecScript(b.Blob); err != nil {
					return Measurement{}, fmt.Errorf("bench %s (%v): %w", b.Name, cfg, err)
				}
				if err := br.Housekeeping(); err != nil {
					return Measurement{}, err
				}
			}
			elapsed = time.Since(start)
		} else {
			if _, err := br.ExecScript(b.Setup); err != nil {
				return Measurement{}, fmt.Errorf("bench %s setup (%v): %w", b.Name, cfg, err)
			}
			id, err := br.LookupScriptFunc("bench")
			if err != nil {
				return Measurement{}, err
			}
			// One warm-up invocation outside the timed region.
			if _, err := br.InvokeScriptFunc(id, math.Max(1, n/4)); err != nil {
				return Measurement{}, fmt.Errorf("bench %s warmup (%v): %w", b.Name, cfg, err)
			}
			start := time.Now()
			for i := 0; i < b.Iters; i++ {
				if _, err := br.InvokeScriptFunc(id, n); err != nil {
					return Measurement{}, fmt.Errorf("bench %s (%v): %w", b.Name, cfg, err)
				}
				if err := br.Housekeeping(); err != nil {
					return Measurement{}, err
				}
			}
			elapsed = time.Since(start)
		}
		st := br.Stats()
		m := Measurement{
			Seconds:        elapsed.Seconds(),
			Transitions:    st.Transitions,
			UntrustedShare: st.UntrustedShare,
		}
		if m.Seconds < best.Seconds {
			best = m
		}
	}
	return best, nil
}

// RunBenchmark measures one benchmark under base, alloc and mpk.
func RunBenchmark(b workload.Benchmark, opt Options) (BenchResult, error) {
	opt.fill()
	prof, err := CollectBenchProfile(b, opt)
	if err != nil {
		return BenchResult{}, fmt.Errorf("profiling %s: %w", b.Name, err)
	}
	res := BenchResult{Bench: b}
	if res.Base, err = measure(b, core.Base, nil, opt); err != nil {
		return res, err
	}
	if res.Alloc, err = measure(b, core.Alloc, prof, opt); err != nil {
		return res, err
	}
	if res.MPK, err = measure(b, core.MPK, prof, opt); err != nil {
		return res, err
	}
	tel, err := CollectTelemetry(b, prof, opt)
	if err != nil {
		return res, fmt.Errorf("telemetry for %s: %w", b.Name, err)
	}
	res.Telemetry = &tel
	return res, nil
}

// SuiteReport aggregates a suite's results.
type SuiteReport struct {
	Suite   string
	Results []BenchResult
}

// RunSuite measures every benchmark in the suite.
func RunSuite(name string, benches []workload.Benchmark, opt Options) (SuiteReport, error) {
	opt.fill()
	rep := SuiteReport{Suite: name}
	for _, b := range benches {
		r, err := RunBenchmark(b, opt)
		if err != nil {
			return rep, err
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// MeanAllocOverhead returns the arithmetic-mean alloc overhead.
func (r SuiteReport) MeanAllocOverhead() float64 {
	return mean(r.Results, BenchResult.AllocOverhead)
}

// MeanMPKOverhead returns the arithmetic-mean mpk overhead.
func (r SuiteReport) MeanMPKOverhead() float64 {
	return mean(r.Results, BenchResult.MPKOverhead)
}

// TotalTransitions sums mpk-configuration transitions across the suite.
func (r SuiteReport) TotalTransitions() uint64 {
	var t uint64
	for _, res := range r.Results {
		t += res.MPK.Transitions
	}
	return t
}

// MeanUntrustedShare averages the %MU column across the suite.
func (r SuiteReport) MeanUntrustedShare() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	var s float64
	for _, res := range r.Results {
		s += res.MPK.UntrustedShare
	}
	return s / float64(len(r.Results))
}

// BySub groups results by Dromaeo sub-suite.
func (r SuiteReport) BySub() map[string][]BenchResult {
	out := make(map[string][]BenchResult)
	for _, res := range r.Results {
		out[res.Bench.Sub] = append(out[res.Bench.Sub], res)
	}
	return out
}

// GeomeanScore computes a JetStream2-style overall score for one
// configuration: per-benchmark score work/seconds, combined by geometric
// mean (the suite's documented scoring rule).
func (r SuiteReport) GeomeanScore(pick func(BenchResult) float64) float64 {
	if len(r.Results) == 0 {
		return 0
	}
	logSum := 0.0
	for _, res := range r.Results {
		secs := pick(res)
		if secs <= 0 {
			secs = 1e-9
		}
		score := float64(res.Bench.Iters) / secs
		logSum += math.Log(score)
	}
	return math.Exp(logSum / float64(len(r.Results)))
}

func mean(rs []BenchResult, f func(BenchResult) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	var s float64
	for _, r := range rs {
		s += f(r)
	}
	return s / float64(len(rs))
}
