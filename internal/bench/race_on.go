//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-count assertions are skipped
// under -race.
const raceEnabled = true
