package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// RecoveryResult is one fault-free recovery-overhead sample: the cost of
// crossing the gate through the supervisor (checkpoint + shield + budget
// accounting) versus the bare gated call, for one §5.2 workload. Factor
// is Supervised / Unsupervised — the price of being recoverable when
// nothing goes wrong.
type RecoveryResult struct {
	Name         string
	Unsupervised time.Duration // total for Iters bare gated calls
	Supervised   time.Duration // total for Iters supervised gated calls
	Factor       float64       // Supervised / Unsupervised
}

// RunRecovery measures the supervision overhead on the fault-free path:
// the same gated micro-workloads as §5.2, called bare and through a
// Retry-policy supervisor that never has to act. Two separate worlds are
// built so neither path warms the other's allocator.
func RunRecovery(iters int) ([]RecoveryResult, error) {
	plain, err := workload.NewMicroWorld()
	if err != nil {
		return nil, err
	}
	supw, err := workload.NewMicroWorld(core.Options{
		Supervision: supervise.Config{Policy: supervise.Retry},
	})
	if err != nil {
		return nil, err
	}
	sup := supw.Prog.Supervisor()
	if sup == nil {
		return nil, fmt.Errorf("bench: supervised world has no supervisor")
	}
	pth, sth := plain.Prog.Main(), supw.Prog.Main()

	var out []RecoveryResult
	for _, name := range []string{"empty", "read_one", "callback"} {
		name := name
		pargs, sargs := microArgs(plain, name), microArgs(supw, name)
		bare, err := timedLoop(iters, func() error {
			_, e := pth.Call(workload.MicroUntrustedLib, name, pargs...)
			return e
		})
		if err != nil {
			return nil, err
		}
		shielded, err := timedLoop(iters, func() error {
			_, e := sup.Call(sth, workload.MicroUntrustedLib, name, sargs...)
			return e
		})
		if err != nil {
			return nil, err
		}
		factor := 0.0
		if bare > 0 {
			factor = float64(shielded) / float64(bare)
		}
		out = append(out, RecoveryResult{Name: name, Unsupervised: bare, Supervised: shielded, Factor: factor})
	}
	return out, nil
}

// timedLoop times iters executions of call, repeating the measurement and
// keeping the minimum like timedPair does.
func timedLoop(iters int, call func() error) (time.Duration, error) {
	const repeats = 7
	if err := call(); err != nil { // warm-up
		return 0, err
	}
	best := time.Duration(1 << 62)
	for rep := 0; rep < repeats; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := call(); err != nil {
				return 0, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// FormatRecovery renders the recovery-overhead results.
func FormatRecovery(rs []RecoveryResult) string {
	s := "Recovery overhead: supervised vs bare gate crossing, fault-free path\n"
	s += fmt.Sprintf("%-12s %14s %14s %10s\n", "workload", "bare", "supervised", "factor")
	for _, r := range rs {
		s += fmt.Sprintf("%-12s %14v %14v %9.2fx\n", r.Name, r.Unsupervised, r.Supervised, r.Factor)
	}
	return s
}

// RecoveryReportSchema versions the recovery-overhead JSON report.
const RecoveryReportSchema = 1

// jsonRecovery is the serialized shape of the recovery experiment.
type jsonRecovery struct {
	Schema     int                  `json:"schema"`
	Experiment string               `json:"experiment"`
	Iters      int                  `json:"iters"`
	Results    []jsonRecoveryResult `json:"results"`
}

type jsonRecoveryResult struct {
	Name          string  `json:"name"`
	UnsupervisedS float64 `json:"unsupervised_s"`
	SupervisedS   float64 `json:"supervised_s"`
	Factor        float64 `json:"factor"`
}

// WriteRecoveryJSON emits the recovery-overhead results as
// schema-versioned JSON.
func WriteRecoveryJSON(w io.Writer, iters int, rs []RecoveryResult) error {
	out := jsonRecovery{Schema: RecoveryReportSchema, Experiment: "recovery", Iters: iters}
	for _, r := range rs {
		out.Results = append(out.Results, jsonRecoveryResult{
			Name:          r.Name,
			UnsupervisedS: r.Unsupervised.Seconds(),
			SupervisedS:   r.Supervised.Seconds(),
			Factor:        r.Factor,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
