package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/heap"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/vm"
	"repro/internal/workload"
)

// AblationResult is one design-choice comparison: the same operation
// under the design used by PKRU-Safe and under the alternative.
type AblationResult struct {
	Name        string
	Design      string // the shipped choice
	Alternative string
	DesignNs    float64 // per-op
	AltNs       float64
	Note        string
}

// RunAblations measures the design-choice comparisons DESIGN.md calls
// out: the split allocator (arena vs free list), the WRPKRU cost model
// (on vs off), and the provenance metadata store (interval vs linear).
func RunAblations() ([]AblationResult, error) {
	var out []AblationResult

	alloc, err := ablateAllocators()
	if err != nil {
		return nil, err
	}
	out = append(out, alloc)

	gate, err := ablateGateCost()
	if err != nil {
		return nil, err
	}
	out = append(out, gate)

	out = append(out, ablateMetadata(10000))
	return out, nil
}

// ablateAllocators: identical churn against the MT arena and the MU free
// list — the paper's hypothesis that MU's slower allocator explains most
// of the alloc-configuration overhead, in isolation.
func ablateAllocators() (AblationResult, error) {
	run := func(mk func(*vm.Space, *vm.Region) heap.Allocator) (float64, error) {
		space := vm.NewSpace()
		region, err := space.Reserve("pool", 0x4000_0000, 1<<30, 0)
		if err != nil {
			return 0, err
		}
		a := mk(space, region)
		sizes := []uint64{16, 64, 256, 40, 1024, 8, 512}
		var live [64]vm.Addr
		const ops = 200_000
		start := time.Now()
		for i := 0; i < ops; i++ {
			slot := i % len(live)
			if live[slot] != 0 {
				if err := a.Free(live[slot]); err != nil {
					return 0, err
				}
			}
			addr, err := a.Alloc(sizes[i%len(sizes)])
			if err != nil {
				return 0, err
			}
			live[slot] = addr
		}
		return float64(time.Since(start).Nanoseconds()) / ops, nil
	}
	arenaNs, err := run(func(_ *vm.Space, r *vm.Region) heap.Allocator {
		return heap.NewArena(heap.NewPagePool(r))
	})
	if err != nil {
		return AblationResult{}, err
	}
	flNs, err := run(func(s *vm.Space, r *vm.Region) heap.Allocator {
		return heap.NewFreeList(heap.NewPagePool(r), s)
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:        "split allocator",
		Design:      "arena (MT)",
		Alternative: "free list (MU)",
		DesignNs:    arenaNs,
		AltNs:       flNs,
		Note:        "per alloc/free pair; the gap is the alloc-config overhead source (§5.3)",
	}, nil
}

// ablateGateCost: the same gated empty call with and without the WRPKRU
// serialization model.
func ablateGateCost() (AblationResult, error) {
	run := func(cost int) (float64, error) {
		w, err := workload.NewMicroWorld()
		if err != nil {
			return 0, err
		}
		w.Prog.Runtime().SetGateCost(cost)
		th := w.Prog.Main()
		const ops = 200_000
		if _, err := th.Call(workload.MicroUntrustedLib, "empty"); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := th.Call(workload.MicroUntrustedLib, "empty"); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / ops, nil
	}
	withCost, err := run(0)
	if err != nil {
		return AblationResult{}, err
	}
	withModel, err := run(100)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:        "WRPKRU cost model",
		Design:      "modeled (100 spins/WRPKRU)",
		Alternative: "free gates",
		DesignNs:    withModel,
		AltNs:       withCost,
		Note:        "per gated call; the delta is what the serialization model adds",
	}, nil
}

// ablateMetadata: interior-pointer lookups in the two store designs at a
// realistic live-object count.
func ablateMetadata(live int) AblationResult {
	fill := func(s provenance.Store) {
		for i := 0; i < live; i++ {
			s.Track(provenance.Entry{
				Base: vm.Addr(0x10000 + i*256),
				Size: 128,
				ID:   profile.AllocID{Func: "f", Site: uint32(i)},
			})
		}
	}
	run := func(s provenance.Store) float64 {
		fill(s)
		const ops = 200_000
		start := time.Now()
		for i := 0; i < ops; i++ {
			addr := vm.Addr(0x10000 + (i%live)*256 + 64)
			s.Lookup(addr)
		}
		return float64(time.Since(start).Nanoseconds()) / ops
	}
	iv := run(provenance.NewIntervalStore())
	ln := run(provenance.NewLinearStore())
	return AblationResult{
		Name:        "metadata store",
		Design:      "interval (binary search)",
		Alternative: "linear scan",
		DesignNs:    iv,
		AltNs:       ln,
		Note:        fmt.Sprintf("per interior lookup at %d live objects (the §4.3.2 fault path)", live),
	}
}

// FormatAblations renders the comparisons.
func FormatAblations(rs []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablations: design choices vs alternatives (per-op times)\n")
	for _, r := range rs {
		ratio := 0.0
		if r.DesignNs > 0 {
			ratio = r.AltNs / r.DesignNs
		}
		fmt.Fprintf(&b, "%-18s %-28s %8.1fns   %-28s %8.1fns   (%.1fx)\n",
			r.Name, r.Design, r.DesignNs, r.Alternative, r.AltNs, ratio)
		fmt.Fprintf(&b, "%-18s %s\n", "", r.Note)
	}
	return b.String()
}
