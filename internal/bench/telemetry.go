package bench

import (
	"fmt"
	"math"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TelemetrySummarySchema versions the telemetry section embedded in
// exported suite reports; bump it when the field set changes.
const TelemetrySummarySchema = 1

// TelemetrySummary condenses one instrumented mpk run of a benchmark into
// the counters the evaluation cares about: how often the compartment
// boundary was crossed, what a crossing cost, and how the heap traffic
// split between the trusted (MT) and untrusted (MU) pools.
type TelemetrySummary struct {
	Schema        int     `json:"schema"`
	Transitions   uint64  `json:"transitions"`
	GateCrossings uint64  `json:"gate_crossings"`
	PKUFaults     uint64  `json:"pku_faults"`
	WRPKRU        uint64  `json:"wrpkru"`
	GateP50Ns     float64 `json:"gate_p50_ns"`
	GateP95Ns     float64 `json:"gate_p95_ns"`
	GateP99Ns     float64 `json:"gate_p99_ns"`
	MTBytesTotal  uint64  `json:"mt_bytes_total"`
	MUBytesTotal  uint64  `json:"mu_bytes_total"`
}

// CollectTelemetry performs one instrumented mpk run of the benchmark and
// condenses the registry into a summary. The run is separate from the
// timed repeats — those stay uninstrumented, so attaching telemetry can
// never perturb the timings the tables report.
func CollectTelemetry(b workload.Benchmark, prof *profile.Profile, opt Options) (TelemetrySummary, error) {
	opt.fill()
	reg := telemetry.NewRegistry()
	br, err := browser.New(core.MPK, prof, browser.Options{StepLimit: opt.StepLimit, Telemetry: reg})
	if err != nil {
		return TelemetrySummary{}, err
	}
	if err := runOnce(br, b, math.Max(1, b.N*opt.Scale/4)); err != nil {
		return TelemetrySummary{}, fmt.Errorf("telemetry run %s: %w", b.Name, err)
	}
	s := summarize(reg)
	s.Transitions = br.Stats().Transitions
	return s, nil
}

// summarize reads the registry into a schema-stamped summary.
func summarize(reg *telemetry.Registry) TelemetrySummary {
	s := TelemetrySummary{Schema: TelemetrySummarySchema}
	if v, ok := reg.CounterValue("pkrusafe_gate_crossings_total"); ok {
		s.GateCrossings = uint64(v)
	}
	if v, ok := reg.CounterValue("pkrusafe_vm_pku_faults_total"); ok {
		s.PKUFaults = uint64(v)
	}
	if v, ok := reg.CounterValue("pkrusafe_vm_wrpkru_total"); ok {
		s.WRPKRU = uint64(v)
	}
	if qs, _, ok := reg.HistogramQuantiles("pkrusafe_gate_latency_ns", 0.5, 0.95, 0.99); ok {
		s.GateP50Ns, s.GateP95Ns, s.GateP99Ns = qs[0], qs[1], qs[2]
	}
	snap := reg.Snapshot()
	s.MTBytesTotal = uint64(sumSeries(snap, "pkrusafe_site_bytes_total", "pool", "MT"))
	s.MUBytesTotal = uint64(sumSeries(snap, "pkrusafe_site_bytes_total", "pool", "MU"))
	return s
}

// sumSeries totals a metric's series whose label equals value.
func sumSeries(snap *telemetry.Snapshot, metric, label, value string) float64 {
	for _, m := range snap.Metrics {
		if m.Name != metric {
			continue
		}
		idx := -1
		for i, l := range m.Labels {
			if l == label {
				idx = i
			}
		}
		if idx < 0 {
			return 0
		}
		var total float64
		for _, s := range m.Series {
			if idx < len(s.LabelValues) && s.LabelValues[idx] == value {
				total += s.Value
			}
		}
		return total
	}
	return 0
}
