package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/domains"
	"repro/internal/vm"
)

// VKeyResult is one virtual-key overhead sample: the cost of a full
// domain round-trip (enter + one load from the domain's pool + exit) for
// a given tenant count. With the tenant count at or below the hardware
// slot count every entry is a slot hit; above it, round-robin entry is
// the LRU cache's worst case — every entry misses, evicts a victim and
// retags two pools. The Hit/Miss split quantifies exactly what key
// virtualization costs when it actually has to multiplex.
type VKeyResult struct {
	Name      string
	Domains   int
	PerCycle  time.Duration // one enter+load+exit round-trip
	Total     time.Duration // total for Iters cycles (best of repeats)
	Misses    uint64        // slot misses across the whole scenario
	Evictions uint64        // evictions across the whole scenario
}

// RunVKeys measures slot-hit and slot-miss domain entry for the given
// iteration count. The scenarios share one manager shape but use fresh
// worlds so neither warms the other's allocator or LRU state.
func RunVKeys(iters int) ([]VKeyResult, error) {
	var out []VKeyResult
	type scenario struct {
		name  string
		extra int // domains beyond the slot count
	}
	for _, sc := range []scenario{
		{"resident", 0}, // tenants == slots: steady state is all hits
		{"thrash", 4},   // tenants > slots, round-robin: every entry misses
	} {
		space := vm.NewSpace()
		m, err := domains.NewManager(space)
		if err != nil {
			return nil, err
		}
		n := m.Table().Slots() + sc.extra
		th := vm.NewThread(space, nil)
		doms := make([]*domains.Domain, n)
		bufs := make([]vm.Addr, n)
		for i := 0; i < n; i++ {
			d, err := m.AddDomain(fmt.Sprintf("bench%02d", i))
			if err != nil {
				return nil, err
			}
			buf, err := m.Alloc(d, 64)
			if err != nil {
				return nil, err
			}
			if err := th.Store64(buf, uint64(i)); err != nil {
				return nil, err
			}
			doms[i], bufs[i] = d, buf
		}
		cur := 0
		cycle := func() error {
			i := cur % n
			cur++
			restore, err := m.Enter(th, doms[i])
			if err != nil {
				return err
			}
			if _, err := th.Load64(bufs[i]); err != nil {
				restore()
				return err
			}
			return restore()
		}
		total, err := timedLoop(iters, cycle)
		if err != nil {
			return nil, err
		}
		st := m.Table().Stats()
		out = append(out, VKeyResult{
			Name:      sc.name,
			Domains:   n,
			PerCycle:  total / time.Duration(iters),
			Total:     total,
			Misses:    st.SlotMisses,
			Evictions: st.Evictions,
		})
	}
	return out, nil
}

// VKeyMissFactor returns thrash / resident — the multiplier a slot miss
// (LRU eviction + two pool retags + revalidation) puts on domain entry.
func VKeyMissFactor(rs []VKeyResult) float64 {
	var hit, miss time.Duration
	for _, r := range rs {
		switch r.Name {
		case "resident":
			hit = r.PerCycle
		case "thrash":
			miss = r.PerCycle
		}
	}
	if hit <= 0 {
		return 0
	}
	return float64(miss) / float64(hit)
}

// FormatVKeys renders the virtual-key overhead results.
func FormatVKeys(rs []VKeyResult) string {
	s := "Virtual-key overhead: domain enter+load+exit, slot hit vs miss\n"
	s += fmt.Sprintf("%-10s %8s %12s %12s %10s\n", "scenario", "domains", "per-cycle", "misses", "evictions")
	for _, r := range rs {
		s += fmt.Sprintf("%-10s %8d %12v %12d %10d\n", r.Name, r.Domains, r.PerCycle, r.Misses, r.Evictions)
	}
	s += fmt.Sprintf("slot-miss factor: %.2fx\n", VKeyMissFactor(rs))
	return s
}

// VKeysReportSchema versions the virtual-key JSON report.
const VKeysReportSchema = 1

type jsonVKeys struct {
	Schema     int              `json:"schema"`
	Experiment string           `json:"experiment"`
	Iters      int              `json:"iters"`
	MissFactor float64          `json:"slot_miss_factor"`
	Results    []jsonVKeyResult `json:"results"`
}

type jsonVKeyResult struct {
	Name       string  `json:"name"`
	Domains    int     `json:"domains"`
	PerCycleNs float64 `json:"per_cycle_ns"`
	TotalS     float64 `json:"total_s"`
	Misses     uint64  `json:"misses"`
	Evictions  uint64  `json:"evictions"`
}

// WriteVKeysJSON emits the virtual-key results as schema-versioned JSON.
func WriteVKeysJSON(w io.Writer, iters int, rs []VKeyResult) error {
	out := jsonVKeys{
		Schema:     VKeysReportSchema,
		Experiment: "vkeys",
		Iters:      iters,
		MissFactor: VKeyMissFactor(rs),
	}
	for _, r := range rs {
		out.Results = append(out.Results, jsonVKeyResult{
			Name:       r.Name,
			Domains:    r.Domains,
			PerCycleNs: float64(r.PerCycle.Nanoseconds()),
			TotalS:     r.Total.Seconds(),
			Misses:     r.Misses,
			Evictions:  r.Evictions,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
