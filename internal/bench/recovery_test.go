package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRecovery smoke-runs the fault-free supervision benchmark and
// checks the report plumbing: all three workloads measured, sane
// factors, and the schema-versioned JSON round-trip.
func TestRunRecovery(t *testing.T) {
	rs, err := RunRecovery(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	for _, r := range rs {
		if r.Unsupervised <= 0 || r.Supervised <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Name, r)
		}
		if r.Factor <= 0 {
			t.Errorf("%s: factor = %v", r.Name, r.Factor)
		}
	}
	text := FormatRecovery(rs)
	for _, want := range []string{"empty", "read_one", "callback", "fault-free"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted report missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := WriteRecoveryJSON(&buf, 200, rs); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema     int    `json:"schema"`
		Experiment string `json:"experiment"`
		Results    []struct {
			Name   string  `json:"name"`
			Factor float64 `json:"factor"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON report: %v\n%s", err, buf.String())
	}
	if rep.Schema != RecoveryReportSchema || rep.Experiment != "recovery" || len(rep.Results) != 3 {
		t.Errorf("report header = %+v", rep)
	}
}
