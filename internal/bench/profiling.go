package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// ProfilingResult is one crossing-sampler overhead sample: the cost of a
// gated call with the sampler attributing every forward crossing versus
// the bare gated call, for one §5.2 micro-workload. Factor is
// Sampled / Unsampled — the price of continuous profiling
// (docs/profiling.md) on the hot path.
type ProfilingResult struct {
	Name      string
	Unsampled time.Duration // total for Iters bare gated calls
	Sampled   time.Duration // total for Iters sampler-observed gated calls
	Factor    float64       // Sampled / Unsampled
}

// ProfilingStats summarizes what the sampler attributed during the run —
// evidence the overhead being measured is the real attribution path, not
// a sampler that never resolved anything.
type ProfilingStats struct {
	Crossings uint64   // forward crossings sampled
	Sites     []string // distinct allocation sites attributed
}

// RunProfiling measures the crossing sampler's overhead on the fault-free
// path: the same gated micro-workloads as §5.2, called bare and through a
// world whose forward gates feed the sampler. Read-One reads the
// site-tracked SiteShared buffer so each sampled call exercises the full
// resolve-and-attribute path.
func RunProfiling(iters int) ([]ProfilingResult, ProfilingStats, error) {
	plain, err := workload.NewMicroWorld()
	if err != nil {
		return nil, ProfilingStats{}, err
	}
	sampw, err := workload.NewMicroWorld(core.Options{Crossings: true})
	if err != nil {
		return nil, ProfilingStats{}, err
	}
	cs := sampw.Prog.Crossings()
	if cs == nil {
		return nil, ProfilingStats{}, fmt.Errorf("bench: sampled world has no crossing sampler")
	}
	pth, sth := plain.Prog.Main(), sampw.Prog.Main()

	var out []ProfilingResult
	for _, name := range []string{"empty", "read_one"} {
		name := name
		pargs, sargs := profilingArgs(plain, name), profilingArgs(sampw, name)
		bare, err := timedLoop(iters, func() error {
			_, e := pth.Call(workload.MicroUntrustedLib, name, pargs...)
			return e
		})
		if err != nil {
			return nil, ProfilingStats{}, err
		}
		sampled, err := timedLoop(iters, func() error {
			_, e := sth.Call(workload.MicroUntrustedLib, name, sargs...)
			return e
		})
		if err != nil {
			return nil, ProfilingStats{}, err
		}
		factor := 0.0
		if bare > 0 {
			factor = float64(sampled) / float64(bare)
		}
		out = append(out, ProfilingResult{Name: name, Unsampled: bare, Sampled: sampled, Factor: factor})
	}
	stats := ProfilingStats{Crossings: cs.Sampled()}
	for _, id := range cs.Sites() {
		stats.Sites = append(stats.Sites, id.String())
	}
	return out, stats, nil
}

// profilingArgs builds the argument vector for a profiling micro-workload:
// Read-One gets the site-tracked buffer so attribution resolves.
func profilingArgs(w *workload.MicroWorld, name string) []uint64 {
	if name == "read_one" {
		return []uint64{uint64(w.SiteShared)}
	}
	return nil
}

// FormatProfiling renders the sampler-overhead results.
func FormatProfiling(rs []ProfilingResult, stats ProfilingStats) string {
	s := "Profiling overhead: crossing-sampled vs bare gate crossing\n"
	s += fmt.Sprintf("%-12s %14s %14s %10s\n", "workload", "bare", "sampled", "factor")
	for _, r := range rs {
		s += fmt.Sprintf("%-12s %14v %14v %9.2fx\n", r.Name, r.Unsampled, r.Sampled, r.Factor)
	}
	s += fmt.Sprintf("sampler: %d crossing(s) attributed to %d site(s)", stats.Crossings, len(stats.Sites))
	for _, site := range stats.Sites {
		s += " " + site
	}
	return s + "\n"
}

// ProfilingReportSchema versions the profiling-overhead JSON report.
const ProfilingReportSchema = 1

// jsonProfiling is the serialized shape of the profiling experiment.
type jsonProfiling struct {
	Schema     int                   `json:"schema"`
	Experiment string                `json:"experiment"`
	Iters      int                   `json:"iters"`
	Results    []jsonProfilingResult `json:"results"`
	Crossings  uint64                `json:"crossings"`
	Sites      []string              `json:"sites"`
}

type jsonProfilingResult struct {
	Name       string  `json:"name"`
	UnsampledS float64 `json:"unsampled_s"`
	SampledS   float64 `json:"sampled_s"`
	Factor     float64 `json:"factor"`
}

// WriteProfilingJSON emits the profiling-overhead results as
// schema-versioned JSON.
func WriteProfilingJSON(w io.Writer, iters int, rs []ProfilingResult, stats ProfilingStats) error {
	out := jsonProfiling{Schema: ProfilingReportSchema, Experiment: "profiling", Iters: iters,
		Crossings: stats.Crossings, Sites: append([]string{}, stats.Sites...)}
	for _, r := range rs {
		out.Results = append(out.Results, jsonProfilingResult{
			Name:       r.Name,
			UnsampledS: r.Unsampled.Seconds(),
			SampledS:   r.Sampled.Seconds(),
			Factor:     r.Factor,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
