package bench

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload"
)

func miniReport(t *testing.T) SuiteReport {
	t.Helper()
	rep, err := RunSuite("mini", []workload.Benchmark{workload.Kraken()[8]}, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWriteCSV(t *testing.T) {
	rep := miniReport(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want header + 1", len(rows))
	}
	if rows[0][0] != "suite" || rows[0][8] != "transitions" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][2] != "audio-dft" {
		t.Errorf("benchmark name = %q", rows[1][2])
	}
	for _, col := range []int{3, 4, 5} {
		if rows[1][col] == "" || rows[1][col] == "0" {
			t.Errorf("column %d (timing) = %q", col, rows[1][col])
		}
	}
}

func TestWriteJSON(t *testing.T) {
	rep := miniReport(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["suite"] != "mini" {
		t.Errorf("suite = %v", decoded["suite"])
	}
	results, ok := decoded["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("results = %v", decoded["results"])
	}
	if !strings.Contains(buf.String(), "mean_mpk_overhead") {
		t.Error("aggregates missing")
	}
	tel, ok := results[0].(map[string]any)["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("telemetry section missing: %v", results[0])
	}
	if tel["schema"] != float64(TelemetrySummarySchema) {
		t.Errorf("telemetry schema = %v, want %d", tel["schema"], TelemetrySummarySchema)
	}
	for _, key := range []string{"gate_crossings", "wrpkru", "gate_p50_ns", "mt_bytes_total"} {
		if v, ok := tel[key].(float64); !ok || v <= 0 {
			t.Errorf("telemetry[%q] = %v, want > 0", key, tel[key])
		}
	}
}

func TestRunAblations(t *testing.T) {
	rs, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("ablations = %d", len(rs))
	}
	// The shipped designs must actually beat (or deliberately cost more
	// than) their alternatives in the expected direction.
	byName := map[string]AblationResult{}
	for _, r := range rs {
		byName[r.Name] = r
		if r.DesignNs <= 0 || r.AltNs <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Name, r)
		}
	}
	if a := byName["split allocator"]; a.AltNs < a.DesignNs {
		t.Errorf("free list measured faster than arena: %+v", a)
	}
	if a := byName["metadata store"]; a.AltNs < a.DesignNs {
		t.Errorf("linear store measured faster than interval store: %+v", a)
	}
	if a := byName["WRPKRU cost model"]; a.DesignNs < a.AltNs {
		t.Errorf("modeled gates measured cheaper than free gates: %+v", a)
	}
	out := FormatAblations(rs)
	for _, want := range []string{"split allocator", "WRPKRU", "metadata store"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
