package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits a suite report as CSV — one row per benchmark with raw
// seconds, normalized runtimes, transitions and %MU — so the figures can
// be re-plotted outside the text renderer.
func WriteCSV(w io.Writer, r SuiteReport) error {
	cw := csv.NewWriter(w)
	header := []string{
		"suite", "sub", "benchmark",
		"base_s", "alloc_s", "mpk_s",
		"alloc_norm", "mpk_norm",
		"transitions", "mu_share",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, res := range r.Results {
		row := []string{
			res.Bench.Suite, res.Bench.Sub, res.Bench.Name,
			fmtF(res.Base.Seconds), fmtF(res.Alloc.Seconds), fmtF(res.MPK.Seconds),
			fmtF(1 + res.AllocOverhead()), fmtF(1 + res.MPKOverhead()),
			strconv.FormatUint(res.MPK.Transitions, 10),
			fmtF(res.MPK.UntrustedShare),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// jsonResult is the serialized shape of one benchmark's results. The
// telemetry section carries its own schema number (see TelemetrySummary)
// so consumers can detect field-set changes independently of the report
// layout.
type jsonResult struct {
	Name        string            `json:"name"`
	Sub         string            `json:"sub,omitempty"`
	BaseS       float64           `json:"base_s"`
	AllocS      float64           `json:"alloc_s"`
	MPKS        float64           `json:"mpk_s"`
	Transitions uint64            `json:"transitions"`
	MUShare     float64           `json:"mu_share"`
	Telemetry   *TelemetrySummary `json:"telemetry,omitempty"`
}

// jsonReport is the serialized shape of a suite report.
type jsonReport struct {
	Suite             string       `json:"suite"`
	Results           []jsonResult `json:"results"`
	MeanAllocOverhead float64      `json:"mean_alloc_overhead"`
	MeanMPKOverhead   float64      `json:"mean_mpk_overhead"`
}

// WriteJSON emits a suite report as JSON with suite-level aggregates.
func WriteJSON(w io.Writer, r SuiteReport) error {
	var out jsonReport
	out.Suite = r.Suite
	out.MeanAllocOverhead = r.MeanAllocOverhead()
	out.MeanMPKOverhead = r.MeanMPKOverhead()
	for _, res := range r.Results {
		out.Results = append(out.Results, jsonResult{
			Name:        res.Bench.Name,
			Sub:         res.Bench.Sub,
			BaseS:       res.Base.Seconds,
			AllocS:      res.Alloc.Seconds,
			MPKS:        res.MPK.Seconds,
			Transitions: res.MPK.Transitions,
			MUShare:     res.MPK.UntrustedShare,
			Telemetry:   res.Telemetry,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("bench: encoding report: %w", err)
	}
	return nil
}
