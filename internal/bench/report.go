package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/browser"
	"repro/internal/core"
)

// FormatTable1 renders the paper's Table 1: per-suite mean overheads,
// transition counts and %MU.
func FormatTable1(reports []SuiteReport) string {
	var b strings.Builder
	b.WriteString("Table 1: Servo-sim mean benchmark overhead and statistics\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %14s %8s\n", "suite", "alloc", "mpk", "transitions", "%MU")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-12s %7.2f%% %7.2f%% %14d %7.2f%%\n",
			r.Suite,
			100*r.MeanAllocOverhead(),
			100*r.MeanMPKOverhead(),
			r.TotalTransitions(),
			100*r.MeanUntrustedShare())
	}
	return b.String()
}

// FormatTable2 renders Table 2: the Dromaeo sub-suite breakdown.
func FormatTable2(dromaeo SuiteReport) string {
	var b strings.Builder
	b.WriteString("Table 2: Dromaeo benchmark overhead and statistics\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %14s %8s\n", "sub-suite", "alloc", "mpk", "transitions", "%MU")
	subs := dromaeo.BySub()
	names := make([]string, 0, len(subs))
	for s := range subs {
		names = append(names, s)
	}
	// Present in the paper's row order where possible.
	order := map[string]int{"dom": 0, "v8": 1, "dromaeo": 2, "sunspider": 3, "jslib": 4}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		sub := SuiteReport{Suite: name, Results: subs[name]}
		fmt.Fprintf(&b, "%-10s %7.2f%% %7.2f%% %14d %7.2f%%\n",
			name,
			100*sub.MeanAllocOverhead(),
			100*sub.MeanMPKOverhead(),
			sub.TotalTransitions(),
			100*sub.MeanUntrustedShare())
	}
	fmt.Fprintf(&b, "%-10s %7.2f%% %7.2f%%\n", "mean",
		100*dromaeo.MeanAllocOverhead(), 100*dromaeo.MeanMPKOverhead())
	return b.String()
}

// FormatTable3 renders Table 3: JetStream2 overall geometric-mean scores.
func FormatTable3(js SuiteReport) string {
	base := js.GeomeanScore(func(r BenchResult) float64 { return r.Base.Seconds })
	alloc := js.GeomeanScore(func(r BenchResult) float64 { return r.Alloc.Seconds })
	mpk := js.GeomeanScore(func(r BenchResult) float64 { return r.MPK.Seconds })
	var b strings.Builder
	b.WriteString("Table 3: JetStream2 overall scores (geometric mean; higher is better)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "", "base", "alloc", "mpk")
	fmt.Fprintf(&b, "%-10s %10.2f %10.2f %10.2f\n", "score", base, alloc, mpk)
	if base > 0 {
		fmt.Fprintf(&b, "%-10s %10s %9.2f%% %9.2f%%\n", "overhead", "-",
			100*(base/alloc-1), 100*(base/mpk-1))
	}
	return b.String()
}

// FormatFigure renders a per-benchmark normalized-runtime figure
// (Figures 4-7): one row per benchmark with alloc and mpk bars.
func FormatFigure(title string, r SuiteReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (normalized runtime; 1.00 = base)\n", title)
	nameW := 4
	for _, res := range r.Results {
		if len(res.Bench.Name) > nameW {
			nameW = len(res.Bench.Name)
		}
	}
	for _, res := range r.Results {
		an := 1 + res.AllocOverhead()
		mn := 1 + res.MPKOverhead()
		fmt.Fprintf(&b, "%-*s  alloc %5.2f %s\n", nameW, res.Bench.Name, an, bar(an))
		fmt.Fprintf(&b, "%-*s  mpk   %5.2f %s\n", nameW, "", mn, bar(mn))
	}
	return b.String()
}

// bar renders a normalized value as a text bar anchored at 1.0 = 25 chars.
func bar(v float64) string {
	n := int(v * 25)
	if n < 0 {
		n = 0
	}
	if n > 75 {
		n = 75
	}
	return strings.Repeat("=", n)
}

// SitesResult is the allocation-site statistic of §5.3 ("274 of Servo's
// 12088 allocation sites", 2.26%).
type SitesResult struct {
	TotalSites     int
	SharedSites    int
	SharedPercent  float64
	ProfiledFaults int
}

// RunSites runs the standard corpus through the pipeline and reports how
// many of the browser's allocation sites the profile moved to MU.
func RunSites() (SitesResult, error) {
	prof, err := browser.CollectProfile(browser.StandardCorpus)
	if err != nil {
		return SitesResult{}, err
	}
	b, err := browser.New(core.MPK, prof)
	if err != nil {
		return SitesResult{}, err
	}
	if err := browser.StandardCorpus(b); err != nil {
		return SitesResult{}, err
	}
	rep := b.Prog.Report()
	res := SitesResult{
		TotalSites:  rep.TotalSites,
		SharedSites: rep.UntrustedSites,
	}
	if rep.TotalSites > 0 {
		res.SharedPercent = 100 * float64(rep.UntrustedSites) / float64(rep.TotalSites)
	}
	res.ProfiledFaults = prof.Len()
	return res, nil
}

// FormatSites renders the allocation-site statistics.
func FormatSites(r SitesResult) string {
	return fmt.Sprintf(
		"Allocation-site statistics (cf. §5.3: 274 of 12088 sites, 2.26%%)\n"+
			"total sites: %d\nshared sites (moved to MU): %d (%.2f%%)\nprofiled shared sites: %d\n",
		r.TotalSites, r.SharedSites, r.SharedPercent, r.ProfiledFaults)
}
