package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workload"
)

// loadStoreWorld builds a micro world and returns the main VM thread plus
// an MU address it may touch, optionally with telemetry attached.
func loadStoreWorld(tb testing.TB, reg *telemetry.Registry) (*vm.Thread, vm.Addr) {
	tb.Helper()
	var opts []core.Options
	if reg != nil {
		opts = append(opts, core.Options{Telemetry: reg})
	}
	w, err := workload.NewMicroWorld(opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return w.Prog.Main().VM, w.Shared
}

// TestHotPathZeroAlloc pins the acceptance criterion that a nil registry
// adds no allocations to the vm load/store hot path: the telemetry guard
// is a single pointer test, never an interface conversion or closure.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; skipping allocation-count assertion")
	}
	th, addr := loadStoreWorld(t, nil)
	allocs := testing.AllocsPerRun(200, func() {
		if err := th.Store64(addr, 42); err != nil {
			t.Fatal(err)
		}
		if _, err := th.Load64(addr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("load/store pair allocates %v times without telemetry, want 0", allocs)
	}
}

// The pair below measures the cost the telemetry counters add to the vm
// access path; compare with
//
//	go test ./internal/bench -bench VMLoadStore -benchmem
func BenchmarkVMLoadStore(b *testing.B) {
	th, addr := loadStoreWorld(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Store64(addr, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := th.Load64(addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMLoadStoreTelemetry(b *testing.B) {
	th, addr := loadStoreWorld(b, telemetry.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Store64(addr, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := th.Load64(addr); err != nil {
			b.Fatal(err)
		}
	}
}
