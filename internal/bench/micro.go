package bench

import (
	"fmt"
	"time"

	"repro/internal/workload"
)

// MicroResult is one call-gate micro-benchmark outcome: the ratio of the
// gated (untrusted) to ungated (trusted) call time, the paper's "x"
// overhead factors of §5.2.
type MicroResult struct {
	Name      string
	Trusted   time.Duration // total for Iters ungated calls
	Untrusted time.Duration // total for Iters gated calls
	Factor    float64       // Untrusted / Trusted
}

// microArgs returns per-workload call arguments.
func microArgs(w *workload.MicroWorld, name string) []uint64 {
	if name == "read_one" {
		return []uint64{uint64(w.Shared)}
	}
	return nil
}

// RunMicro measures the Empty, Read-One and Callback workloads with iters
// calls each, reproducing the §5.2 table (8.55x / 7.61x / 6.17x on the
// paper's hardware; the factors here reflect the simulator's own ratio of
// gate cost to call cost — the ordering and the shrink-with-work trend
// are the reproduced result).
func RunMicro(iters int) ([]MicroResult, error) {
	w, err := workload.NewMicroWorld()
	if err != nil {
		return nil, err
	}
	th := w.Prog.Main()
	var out []MicroResult
	for _, name := range []string{"empty", "read_one", "callback"} {
		args := microArgs(w, name)
		trusted, untrusted, err := timedPair(th, name, args, iters)
		if err != nil {
			return nil, err
		}
		factor := 0.0
		if trusted > 0 {
			factor = float64(untrusted) / float64(trusted)
		}
		out = append(out, MicroResult{Name: name, Trusted: trusted, Untrusted: untrusted, Factor: factor})
	}
	return out, nil
}

// timedPair times iters gated and ungated calls of one workload. Both
// paths are measured several times in alternating order and the minima
// kept, which suppresses scheduler and cache noise at the sub-microsecond
// call scale.
func timedPair(th callThread, name string, args []uint64, iters int) (trusted, untrusted time.Duration, err error) {
	const repeats = 7
	trusted, untrusted = time.Duration(1<<62), time.Duration(1<<62)
	// Warm up both paths.
	if _, err = th.Call(workload.MicroTrustedLib, name, args...); err != nil {
		return 0, 0, err
	}
	if _, err = th.Call(workload.MicroUntrustedLib, name, args...); err != nil {
		return 0, 0, err
	}
	for rep := 0; rep < repeats; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err = th.Call(workload.MicroTrustedLib, name, args...); err != nil {
				return 0, 0, err
			}
		}
		if d := time.Since(start); d < trusted {
			trusted = d
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err = th.Call(workload.MicroUntrustedLib, name, args...); err != nil {
				return 0, 0, err
			}
		}
		if d := time.Since(start); d < untrusted {
			untrusted = d
		}
	}
	return trusted, untrusted, nil
}

// callThread is the slice of ffi.Thread timedPair needs (it eases tests).
type callThread interface {
	Call(lib, fn string, args ...uint64) ([]uint64, error)
}

// SweepPoint is one Figure 3 sample: the normalized runtime of a gated
// call doing loopCount units of work between transitions.
type SweepPoint struct {
	LoopCount  int
	Normalized float64 // gated time / ungated time
}

// RunGateSweep reproduces Figure 3: call-gate overhead as a function of
// the work done between compartment transitions. Overhead must fall
// toward 1.0 as loop count grows.
func RunGateSweep(loopCounts []int, iters int) ([]SweepPoint, error) {
	w, err := workload.NewMicroWorld()
	if err != nil {
		return nil, err
	}
	th := w.Prog.Main()
	var out []SweepPoint
	for _, lc := range loopCounts {
		trusted, gated, err := timedPair(th, "work", []uint64{uint64(lc)}, iters)
		if err != nil {
			return nil, err
		}
		norm := 0.0
		if trusted > 0 {
			norm = float64(gated) / float64(trusted)
		}
		out = append(out, SweepPoint{LoopCount: lc, Normalized: norm})
	}
	return out, nil
}

// DefaultSweepCounts are the Figure 3 x-axis points (0..200).
func DefaultSweepCounts() []int {
	return []int{0, 5, 10, 25, 50, 75, 100, 125, 150, 175, 200}
}

// FormatMicro renders the §5.2 micro-benchmark results.
func FormatMicro(rs []MicroResult) string {
	s := "Call-gate micro-benchmarks (cf. §5.2: Empty 8.55x, Read-One 7.61x, Callback 6.17x on paper hardware)\n"
	s += fmt.Sprintf("%-12s %14s %14s %10s\n", "workload", "trusted", "untrusted", "factor")
	for _, r := range rs {
		s += fmt.Sprintf("%-12s %14v %14v %9.2fx\n", r.Name, r.Trusted, r.Untrusted, r.Factor)
	}
	return s
}

// FormatSweep renders Figure 3 as a text series with bars.
func FormatSweep(pts []SweepPoint) string {
	s := "Figure 3: call-gate overhead vs work per transition (normalized runtime)\n"
	max := 1.0
	for _, p := range pts {
		if p.Normalized > max {
			max = p.Normalized
		}
	}
	for _, p := range pts {
		bar := int(p.Normalized / max * 50)
		s += fmt.Sprintf("loops=%4d  %6.2fx  %s\n", p.LoopCount, p.Normalized, repeatRune('#', bar))
	}
	return s
}

func repeatRune(r byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = r
	}
	return string(b)
}
