package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunProfiling smoke-runs the crossing-sampler benchmark and checks
// the report plumbing: both workloads measured, the sampler really
// attributed the site-tracked buffer, and the schema-versioned JSON
// round-trip.
func TestRunProfiling(t *testing.T) {
	rs, stats, err := RunProfiling(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	for _, r := range rs {
		if r.Unsampled <= 0 || r.Sampled <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Name, r)
		}
		if r.Factor <= 0 {
			t.Errorf("%s: factor = %v", r.Name, r.Factor)
		}
	}
	if stats.Crossings == 0 {
		t.Error("sampler observed no crossings")
	}
	if len(stats.Sites) != 1 || stats.Sites[0] != "micro::shared@0.0" {
		t.Errorf("attributed sites = %v, want [micro::shared@0.0]", stats.Sites)
	}
	text := FormatProfiling(rs, stats)
	for _, want := range []string{"empty", "read_one", "sampled", "micro::shared@0.0"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted report missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := WriteProfilingJSON(&buf, 200, rs, stats); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema     int      `json:"schema"`
		Experiment string   `json:"experiment"`
		Sites      []string `json:"sites"`
		Results    []struct {
			Name   string  `json:"name"`
			Factor float64 `json:"factor"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON report: %v\n%s", err, buf.String())
	}
	if rep.Schema != ProfilingReportSchema || rep.Experiment != "profiling" || len(rep.Results) != 2 || len(rep.Sites) != 1 {
		t.Errorf("report header = %+v", rep)
	}
}
