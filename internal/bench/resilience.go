package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/domains"
	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/resilience"
	"repro/internal/supervise"
	"repro/internal/vm"
)

// resilienceTenants is the world shape of the containment experiment:
// eight tenants, one of which turns hostile in the measured scenario —
// the same shape `pkru-servo -domains=8 -hostile=...` drives end to end.
const resilienceTenants = 8

// ResilienceResult is one scenario of the containment experiment: the
// latency healthy tenants see for a full supervised gate round-trip,
// with and without a hostile tenant tripping its breaker next to them.
// The number the experiment pins down is the tax containment charges the
// innocent: HealthyP99 under "hostile" versus under "baseline".
type ResilienceResult struct {
	Name            string        // "baseline" | "hostile"
	Domains         int           // tenants in the world
	HealthyRequests int           // measured healthy round-trips
	HealthyP50      time.Duration // healthy per-request median
	HealthyP99      time.Duration // healthy per-request tail
	Shed            uint64        // hostile requests refused at admission
	HostileFaults   uint64        // hostile requests that faulted in a gate
	HostileEpochs   uint64        // quarantine epochs of the hostile pool
}

// resilienceWorld is the multi-tenant fixture both scenarios run in.
type resilienceWorld struct {
	m        *domains.Manager
	th       *ffi.Thread
	tracer   *gatetrace.Tracer
	sup      *supervise.Supervisor
	breakers *resilience.Group
	bufs     []vm.Addr
	secret   vm.Addr
	names    []string
}

func newResilienceWorld() (*resilienceWorld, error) {
	space := vm.NewSpace()
	m, err := domains.NewManager(space)
	if err != nil {
		return nil, err
	}
	ffiReg := ffi.NewRegistry()
	rt := ffi.NewRuntime(ffiReg, m.Allocator(), nil, ffi.GatesOn)
	tracer := gatetrace.New(gatetrace.Config{Capacity: 8})
	m.SetTracing(tracer)
	sup := supervise.New(supervise.Config{Policy: supervise.Quarantine},
		supervise.Deps{Alloc: m.Allocator()})
	// A long probe backoff keeps the tripped breaker open for the whole
	// scenario: the measurement wants the steady shed state, not probes.
	breakers := resilience.NewGroup(resilience.Config{ProbeAfter: time.Hour})

	setup := vm.NewThread(space, nil)
	secret, err := m.AllocTrusted(64)
	if err != nil {
		return nil, err
	}
	if err := setup.Store64(secret, 0xfeed); err != nil {
		return nil, err
	}

	w := &resilienceWorld{
		m: m, tracer: tracer, sup: sup, breakers: breakers,
		bufs: make([]vm.Addr, resilienceTenants), secret: secret,
		names: make([]string, resilienceTenants),
	}
	payloads := attack.TenantPayloads()
	for i := 0; i < resilienceTenants; i++ {
		w.names[i] = fmt.Sprintf("tenant%03d", i)
		d, err := m.AddDomain(w.names[i])
		if err != nil {
			return nil, err
		}
		buf, err := m.Alloc(d, 64)
		if err != nil {
			return nil, err
		}
		if err := setup.Store64(buf, uint64(i)); err != nil {
			return nil, err
		}
		w.bufs[i] = buf
		lib, err := ffiReg.Library(w.names[i], ffi.Untrusted)
		if err != nil {
			return nil, err
		}
		lib.Define("work", func(t *ffi.Thread, args []uint64) ([]uint64, error) {
			v, err := t.Load64(vm.Addr(args[0]))
			if err != nil {
				return nil, err
			}
			return []uint64{v}, nil
		})
		lib.Define("hostile", func(t *ffi.Thread, args []uint64) ([]uint64, error) {
			p := payloads[args[0]%uint64(len(payloads))]
			breached, err := p.Run(t, attack.PayloadTargets{
				Secret: vm.Addr(args[1]), Victim: vm.Addr(args[2])})
			if err != nil {
				return nil, err
			}
			if breached {
				return nil, fmt.Errorf("bench: payload %s breached containment", p.Name)
			}
			return []uint64{0}, nil
		})
		m.BindLibrary(rt, w.names[i], d)
	}
	th := rt.NewThread()
	th.VM.SetPKRUGuard(true) // the payload roster includes rogue WRPKRUs
	w.th = th
	return w, nil
}

// runResilienceScenario drives iters round-robin requests through the
// world; tenant index hostileIdx (negative for none) runs the attack
// payload roster behind its breaker instead of honest work.
func runResilienceScenario(name string, iters, hostileIdx int) (ResilienceResult, error) {
	w, err := newResilienceWorld()
	if err != nil {
		return ResilienceResult{}, err
	}
	res := ResilienceResult{Name: name, Domains: resilienceTenants}
	var healthy []time.Duration
	seq := make([]int, resilienceTenants)
	for c := 0; c < iters; c++ {
		i := c % resilienceTenants
		tenant := w.names[i]
		seq[i]++
		if _, aerr := w.breakers.Allow(tenant); aerr != nil {
			res.Shed++
			continue
		}
		tc := w.tracer.Start(tenant)
		w.th.SetTraceContext(tc)
		start := time.Now()
		var cerr error
		if i == hostileIdx {
			cerr = w.sup.Shield(w.th, tenant+".hostile", func() error {
				_, herr := w.th.Call(tenant, "hostile",
					uint64(seq[i]-1), uint64(w.secret), uint64(w.bufs[(i+1)%resilienceTenants]))
				return herr
			})
		} else {
			cerr = w.sup.Shield(w.th, tenant+".work", func() error {
				_, werr := w.th.Call(tenant, "work", uint64(w.bufs[i]))
				return werr
			})
		}
		lat := time.Since(start)
		w.th.SetTraceContext(nil)
		tc.Finish()
		if cerr == nil {
			w.breakers.RecordSuccess(tenant)
			if i != hostileIdx {
				healthy = append(healthy, lat)
			}
		} else {
			w.breakers.RecordFault(tenant)
			if i == hostileIdx {
				res.HostileFaults++
			} else {
				return res, fmt.Errorf("bench: healthy tenant %s faulted: %w", tenant, cerr)
			}
		}
	}
	sort.Slice(healthy, func(a, b int) bool { return healthy[a] < healthy[b] })
	res.HealthyRequests = len(healthy)
	res.HealthyP50 = durQuantile(healthy, 0.50)
	res.HealthyP99 = durQuantile(healthy, 0.99)
	if hostileIdx >= 0 {
		if e, ok := w.m.Allocator().DomainEpoch(w.names[hostileIdx]); ok {
			res.HostileEpochs = e
		}
	}
	return res, nil
}

// durQuantile reads the q-quantile from ascending-sorted samples by
// nearest-rank.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunResilience measures the containment overhead: healthy-tenant gate
// latency in a clean eight-tenant world (baseline) versus the same world
// with one tenant mounting the attack roster until its breaker opens and
// its pool quarantines (hostile). iters is the total request count per
// scenario, spread round-robin across the tenants.
func RunResilience(iters int) ([]ResilienceResult, error) {
	base, err := runResilienceScenario("baseline", iters, -1)
	if err != nil {
		return nil, err
	}
	host, err := runResilienceScenario("hostile", iters, 3)
	if err != nil {
		return nil, err
	}
	return []ResilienceResult{base, host}, nil
}

// ResilienceOverhead returns hostile healthy-p99 / baseline healthy-p99 —
// the tail-latency tax containment charges the innocent tenants. The
// acceptance bar is 1.25x.
func ResilienceOverhead(rs []ResilienceResult) float64 {
	var base, host time.Duration
	for _, r := range rs {
		switch r.Name {
		case "baseline":
			base = r.HealthyP99
		case "hostile":
			host = r.HealthyP99
		}
	}
	if base <= 0 {
		return 0
	}
	return float64(host) / float64(base)
}

// FormatResilience renders the containment-overhead results.
func FormatResilience(rs []ResilienceResult) string {
	s := "Tenant containment: healthy-tenant gate latency beside a hostile neighbour\n"
	s += fmt.Sprintf("%-10s %8s %10s %10s %10s %8s %8s %8s\n",
		"scenario", "domains", "healthy", "p50", "p99", "shed", "faults", "epochs")
	for _, r := range rs {
		s += fmt.Sprintf("%-10s %8d %10d %10v %10v %8d %8d %8d\n",
			r.Name, r.Domains, r.HealthyRequests, r.HealthyP50, r.HealthyP99,
			r.Shed, r.HostileFaults, r.HostileEpochs)
	}
	s += fmt.Sprintf("healthy p99 overhead: %.2fx (bar: 1.25x)\n", ResilienceOverhead(rs))
	return s
}

// ResilienceReportSchema versions the resilience JSON report.
const ResilienceReportSchema = 1

type jsonResilience struct {
	Schema     int                    `json:"schema"`
	Experiment string                 `json:"experiment"`
	Iters      int                    `json:"iters"`
	P99Factor  float64                `json:"healthy_p99_overhead"`
	Results    []jsonResilienceResult `json:"results"`
}

type jsonResilienceResult struct {
	Name            string  `json:"name"`
	Domains         int     `json:"domains"`
	HealthyRequests int     `json:"healthy_requests"`
	HealthyP50Ns    float64 `json:"healthy_p50_ns"`
	HealthyP99Ns    float64 `json:"healthy_p99_ns"`
	Shed            uint64  `json:"shed"`
	HostileFaults   uint64  `json:"hostile_faults"`
	HostileEpochs   uint64  `json:"hostile_epochs"`
}

// WriteResilienceJSON emits the containment results as schema-versioned
// JSON (the BENCH_resilience.json seed).
func WriteResilienceJSON(w io.Writer, iters int, rs []ResilienceResult) error {
	out := jsonResilience{
		Schema:     ResilienceReportSchema,
		Experiment: "resilience",
		Iters:      iters,
		P99Factor:  ResilienceOverhead(rs),
	}
	for _, r := range rs {
		out.Results = append(out.Results, jsonResilienceResult{
			Name:            r.Name,
			Domains:         r.Domains,
			HealthyRequests: r.HealthyRequests,
			HealthyP50Ns:    float64(r.HealthyP50.Nanoseconds()),
			HealthyP99Ns:    float64(r.HealthyP99.Nanoseconds()),
			Shed:            r.Shed,
			HostileFaults:   r.HostileFaults,
			HostileEpochs:   r.HostileEpochs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
