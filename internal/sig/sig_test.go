package sig

import "testing"

// fakeCtx is a minimal Context for handler tests.
type fakeCtx struct {
	pkru uint32
	trap bool
}

func (c *fakeCtx) PKRU() uint32       { return c.pkru }
func (c *fakeCtx) SetPKRU(v uint32)   { c.pkru = v }
func (c *fakeCtx) TrapFlag() bool     { return c.trap }
func (c *fakeCtx) SetTrapFlag(v bool) { c.trap = v }

func TestDispatchNoHandlerIsUnhandled(t *testing.T) {
	var tbl Table
	info := &Info{Sig: SIGSEGV, Code: CodeMapErr, Addr: 0x1000}
	if got := tbl.Dispatch(info, &fakeCtx{}); got != Unhandled {
		t.Errorf("Dispatch with empty table = %v, want Unhandled", got)
	}
}

func TestRegisterReturnsPrevious(t *testing.T) {
	var tbl Table
	h1 := HandlerFunc(func(*Info, Context) Action { return Handled })
	h2 := HandlerFunc(func(*Info, Context) Action { return Fatal })

	if prev := tbl.Register(SIGSEGV, h1); prev != nil {
		t.Errorf("first Register returned non-nil previous handler")
	}
	prev := tbl.Register(SIGSEGV, h2)
	if prev == nil {
		t.Fatal("second Register must return the first handler")
	}
	if got := prev.Handle(&Info{}, &fakeCtx{}); got != Handled {
		t.Errorf("previous handler verdict = %v, want Handled", got)
	}
	if got := tbl.Dispatch(&Info{Sig: SIGSEGV}, &fakeCtx{}); got != Fatal {
		t.Errorf("current handler verdict = %v, want Fatal", got)
	}
}

// TestHandlerChaining reproduces the PKRU-Safe runtime pattern: the
// profiling handler keeps a reference to a previously registered handler
// and falls back to it for non-MPK faults (§4.3.1).
func TestHandlerChaining(t *testing.T) {
	var tbl Table
	var appHandled, profHandled int

	app := HandlerFunc(func(info *Info, _ Context) Action {
		appHandled++
		return Handled
	})
	tbl.Register(SIGSEGV, app)

	var fallback Handler
	prof := HandlerFunc(func(info *Info, ctx Context) Action {
		if info.Code != CodePKUErr {
			if fallback != nil {
				return fallback.Handle(info, ctx)
			}
			return Unhandled
		}
		profHandled++
		return Handled
	})
	fallback = tbl.Register(SIGSEGV, prof)

	if got := tbl.Dispatch(&Info{Sig: SIGSEGV, Code: CodePKUErr}, &fakeCtx{}); got != Handled {
		t.Errorf("PKU fault verdict = %v, want Handled", got)
	}
	if got := tbl.Dispatch(&Info{Sig: SIGSEGV, Code: CodeMapErr}, &fakeCtx{}); got != Handled {
		t.Errorf("map fault verdict = %v, want Handled (chained)", got)
	}
	if profHandled != 1 || appHandled != 1 {
		t.Errorf("profiler handled %d, app handled %d; want 1 and 1", profHandled, appHandled)
	}
}

// TestChainingThreeDeep registers three handlers in sequence, each keeping
// the Register return value as its fallback, and asserts dispatch order is
// newest-first with each deferral reaching the next-older handler — the
// exact discipline the runtime relies on when both the crash recorder and
// the profiling handler hook SIGSEGV on top of an application handler.
func TestChainingThreeDeep(t *testing.T) {
	var tbl Table
	var order []string

	chained := func(name string, serve bool, fallback *Handler) HandlerFunc {
		return func(info *Info, ctx Context) Action {
			order = append(order, name)
			if serve {
				return Handled
			}
			if *fallback != nil {
				return (*fallback).Handle(info, ctx)
			}
			return Unhandled
		}
	}

	var appPrev, recPrev, profPrev Handler
	appPrev = tbl.Register(SIGSEGV, chained("app", true, &appPrev))
	recPrev = tbl.Register(SIGSEGV, chained("recorder", false, &recPrev))
	profPrev = tbl.Register(SIGSEGV, chained("profiler", false, &profPrev))

	if appPrev != nil {
		t.Error("first registration must see nil previous handler")
	}
	if recPrev == nil || profPrev == nil {
		t.Fatal("later registrations must return the displaced handler")
	}

	if got := tbl.Dispatch(&Info{Sig: SIGSEGV, Code: CodeMapErr}, &fakeCtx{}); got != Handled {
		t.Errorf("chained dispatch = %v, want Handled by the app handler", got)
	}
	want := []string{"profiler", "recorder", "app"}
	if len(order) != len(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestReRegisterRestoresPrevious asserts the sigaction-style contract end
// to end: a temporary handler can re-install the handler Register handed
// back, restoring the original disposition exactly.
func TestReRegisterRestoresPrevious(t *testing.T) {
	var tbl Table
	orig := HandlerFunc(func(*Info, Context) Action { return Handled })
	tbl.Register(SIGSEGV, orig)

	prev := tbl.Register(SIGSEGV, HandlerFunc(func(*Info, Context) Action { return Fatal }))
	if got := tbl.Dispatch(&Info{Sig: SIGSEGV}, &fakeCtx{}); got != Fatal {
		t.Fatalf("temporary handler verdict = %v, want Fatal", got)
	}

	tbl.Register(SIGSEGV, prev)
	if got := tbl.Dispatch(&Info{Sig: SIGSEGV}, &fakeCtx{}); got != Handled {
		t.Errorf("restored handler verdict = %v, want Handled", got)
	}
	if tbl.Handler(SIGSEGV) == nil {
		t.Error("Handler(SIGSEGV) = nil after restore")
	}
}

func TestSignalsAreIndependent(t *testing.T) {
	var tbl Table
	segv := HandlerFunc(func(*Info, Context) Action { return Handled })
	tbl.Register(SIGSEGV, segv)
	if got := tbl.Dispatch(&Info{Sig: SIGTRAP}, &fakeCtx{}); got != Unhandled {
		t.Errorf("SIGTRAP dispatch = %v, want Unhandled (only SIGSEGV registered)", got)
	}
}

func TestHandlerCanMutateContext(t *testing.T) {
	var tbl Table
	tbl.Register(SIGSEGV, HandlerFunc(func(_ *Info, ctx Context) Action {
		ctx.SetPKRU(0)
		ctx.SetTrapFlag(true)
		return Handled
	}))
	ctx := &fakeCtx{pkru: 0xffffffff}
	tbl.Dispatch(&Info{Sig: SIGSEGV, Code: CodePKUErr}, ctx)
	if ctx.pkru != 0 || !ctx.trap {
		t.Errorf("handler mutations lost: pkru=%#x trap=%v", ctx.pkru, ctx.trap)
	}
}

func TestStrings(t *testing.T) {
	if SIGSEGV.String() != "SIGSEGV" || SIGTRAP.String() != "SIGTRAP" {
		t.Error("signal names wrong")
	}
	if Signal(9).String() != "signal(9)" {
		t.Errorf("unknown signal formatting = %q", Signal(9).String())
	}
	info := &Info{Sig: SIGSEGV, Code: CodePKUErr, Addr: 0x2000, Access: AccessWrite, PKey: 1}
	want := "SIGSEGV code=100 addr=0x2000 access=write pkey=1"
	if info.String() != want {
		t.Errorf("Info.String() = %q, want %q", info.String(), want)
	}
	if AccessRead.String() != "read" || AccessWrite.String() != "write" {
		t.Error("access kind names wrong")
	}
}
