package sig

import (
	"strings"
	"testing"

	"repro/internal/mpk"
)

func TestSanitizePKRU(t *testing.T) {
	entry := uint32(mpk.DenyAllExcept(0)) // key 0 only
	wide := uint32(mpk.PermitAll)
	narrow := uint32(mpk.DenyAllExcept()) // strictly narrower than entry: every key denied

	if v, clamped := SanitizePKRU(entry, wide, false); !clamped || v != uint32(mpk.PKRU(wide).ClampTo(mpk.PKRU(entry))) {
		t.Errorf("escalation not clamped: v=%#x clamped=%v", v, clamped)
	}
	if v, clamped := SanitizePKRU(entry, wide, true); clamped || v != wide {
		t.Errorf("allowed escalation clamped: v=%#x clamped=%v", v, clamped)
	}
	if v, clamped := SanitizePKRU(entry, entry, false); clamped || v != entry {
		t.Errorf("identity restore clamped: v=%#x clamped=%v", v, clamped)
	}
	if v, clamped := SanitizePKRU(entry, narrow, false); clamped || v != narrow {
		t.Errorf("narrowing restore clamped: v=%#x clamped=%v", v, clamped)
	}
	// A clamp must never end up more permissive than the entry rights.
	if v, _ := SanitizePKRU(entry, wide, false); mpk.PKRU(v).Escalates(mpk.PKRU(entry)) {
		t.Errorf("clamped value %#x still escalates entry %#x", v, entry)
	}
}

// TestRegisterRejectsOutOfRangeSignal is the aliasing regression test: the
// table used to index handlers[s%32], so Register(35) silently replaced
// the handler for signal 3 — a hostile library could hijack the SIGSEGV
// disposition without ever naming SIGSEGV. Out-of-range signals must now
// be rejected outright, the simulator's sigaction EINVAL.
func TestRegisterRejectsOutOfRangeSignal(t *testing.T) {
	var tbl Table
	marker := HandlerFunc(func(*Info, Context) Action { return Handled })
	tbl.Register(3, marker)

	for _, s := range []Signal{0, 32, 35, MaxSignal + 1, 64 + 3} {
		s := s
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Register(%d) did not panic", s)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "invalid signal") {
					t.Errorf("Register(%d) panic = %v, want invalid-signal message", s, r)
				}
			}()
			tbl.Register(s, HandlerFunc(func(*Info, Context) Action { return Fatal }))
		}()
	}
	// Signal 3's disposition must have survived every aliasing attempt.
	if h := tbl.Handler(3); h == nil || h.Handle(nil, nil) != Handled {
		t.Error("signal 3's handler was clobbered by an out-of-range Register")
	}
	if h := tbl.Handler(35); h != nil {
		t.Error("Handler(35) returned a handler for an invalid signal")
	}
	if got := tbl.Dispatch(&Info{Sig: 35}, nil); got != Unhandled {
		t.Errorf("Dispatch of invalid signal = %v, want Unhandled", got)
	}
}

func TestSignalValid(t *testing.T) {
	for s, want := range map[Signal]bool{0: false, 1: true, SIGSEGV: true, MaxSignal: true, 32: false, 255: false} {
		if got := s.Valid(); got != want {
			t.Errorf("Signal(%d).Valid() = %v, want %v", s, got, want)
		}
	}
}
