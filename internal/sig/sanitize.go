package sig

import "repro/internal/mpk"

// SanitizePKRU audits the PKRU a signal handler proposes to restore at
// sigreturn against the rights the interrupted thread held at delivery.
// Escalations (bits the proposal clears that entry had set) are clamped
// away unless allowEscalation is true — the profiling grant case, where a
// widened window is tolerated under the single-step covenant. The second
// return reports whether clamping happened.
//
// This is the signal-frame defense Garmr catalogues: the kernel restores
// uc_mcontext bytes the handler (or anything that corrupted the signal
// stack) fully controls, so an unchecked sigreturn is a WRPKRU oracle.
// Package vm runs this audit on every Handled dispatch under its
// SigProfiling/SigStrict policies.
func SanitizePKRU(entry, proposed uint32, allowEscalation bool) (value uint32, clamped bool) {
	p, e := mpk.PKRU(proposed), mpk.PKRU(entry)
	if allowEscalation || !p.Escalates(e) {
		return proposed, false
	}
	return uint32(p.ClampTo(e)), true
}
