// Package sig simulates the POSIX signal machinery PKRU-Safe's profiler
// depends on: SIGSEGV delivery with a protection-key error code, SIGTRAP
// delivery after single-stepping, and sigaction-style handler registration
// that returns the previously installed handler so handlers can chain.
//
// The paper (§4.3.1) notes that applications such as Servo register their
// own SIGSEGV handlers and discard earlier registrations; PKRU-Safe's
// runtime therefore keeps a reference to any previously registered handler
// and falls back to it for faults unrelated to MPK violations. The Table
// type reproduces exactly that contract.
package sig

import "fmt"

// Signal is a simulated signal number.
type Signal uint8

const (
	// SIGSEGV is raised on an invalid or insufficiently privileged access.
	SIGSEGV Signal = 11
	// SIGTRAP is raised after an instruction completes with the trap flag set.
	SIGTRAP Signal = 5
)

// MaxSignal is the highest signal number the table accepts. Real kernels
// reserve 1..31 for standard signals; anything above would silently alias
// a table slot, so registration rejects it instead (see Table.Register).
const MaxSignal Signal = 31

// Valid reports whether s is a deliverable signal number (1..MaxSignal).
// Signal 0 is the null signal — probeable with kill(2) but never
// deliverable — and values above MaxSignal have no table slot.
func (s Signal) Valid() bool { return s >= 1 && s <= MaxSignal }

func (s Signal) String() string {
	switch s {
	case SIGSEGV:
		return "SIGSEGV"
	case SIGTRAP:
		return "SIGTRAP"
	default:
		return fmt.Sprintf("signal(%d)", uint8(s))
	}
}

// Fault codes mirroring the si_code values the kernel reports in siginfo.
const (
	// CodeMapErr: the address is not mapped (SEGV_MAPERR).
	CodeMapErr = 1
	// CodeAccErr: the mapping forbids the access (SEGV_ACCERR).
	CodeAccErr = 2
	// CodePKUErr: a protection-key violation (SEGV_PKUERR).
	CodePKUErr = 100
)

// AccessKind describes the data access that raised a fault.
type AccessKind uint8

const (
	AccessRead AccessKind = iota
	AccessWrite
)

func (k AccessKind) String() string {
	if k == AccessWrite {
		return "write"
	}
	return "read"
}

// Info carries the siginfo-equivalent details delivered to a handler.
type Info struct {
	Sig    Signal
	Code   int32      // CodeMapErr, CodeAccErr or CodePKUErr for SIGSEGV
	Addr   uint64     // faulting address
	Access AccessKind // kind of access that faulted
	PKey   uint8      // protection key of the faulting page (CodePKUErr only)
}

func (i *Info) String() string {
	return fmt.Sprintf("%v code=%d addr=%#x access=%v pkey=%d",
		i.Sig, i.Code, i.Addr, i.Access, i.PKey)
}

// Context is the mutable thread state a handler may inspect and modify,
// standing in for the ucontext_t passed to a real signal handler. The
// profiling fault handler uses it to grant temporary access (SetPKRU) and
// arm single-stepping (SetTrapFlag).
type Context interface {
	PKRU() uint32
	SetPKRU(uint32)
	TrapFlag() bool
	SetTrapFlag(bool)
}

// Action is a handler's verdict on a delivered signal.
type Action uint8

const (
	// Unhandled: this handler does not service the fault; fall through to
	// the previously registered handler, or crash if there is none.
	Unhandled Action = iota
	// Handled: the handler repaired the condition; re-execute the access.
	Handled
	// Fatal: abort the program immediately.
	Fatal
)

// Handler services a delivered signal.
type Handler interface {
	Handle(info *Info, ctx Context) Action
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(info *Info, ctx Context) Action

// Handle calls f.
func (f HandlerFunc) Handle(info *Info, ctx Context) Action { return f(info, ctx) }

// Table is a per-process signal disposition table. The zero value is ready
// to use and has no handlers registered. Table is not safe for concurrent
// mutation; registration is expected at startup, as with real sigaction.
type Table struct {
	handlers [32]Handler
}

// Register installs h for signal s and returns the previously installed
// handler (which may be nil), mirroring sigaction's oldact out-parameter.
// An invalid signal number panics, the simulator's EINVAL: the table used
// to reduce s modulo its size, so Register(35) silently replaced the
// handler for signal 3 — an aliasing a hostile library could use to hijack
// the SIGSEGV disposition without ever naming SIGSEGV.
func (t *Table) Register(s Signal, h Handler) (prev Handler) {
	if !s.Valid() {
		panic(fmt.Sprintf("sig: Register(%d): invalid signal (want 1..%d)", uint8(s), uint8(MaxSignal)))
	}
	prev = t.handlers[s]
	t.handlers[s] = h
	return prev
}

// Handler returns the currently installed handler for s, or nil. An
// invalid signal number has no slot and yields nil.
func (t *Table) Handler(s Signal) Handler {
	if !s.Valid() {
		return nil
	}
	return t.handlers[s]
}

// Dispatch delivers a signal to the installed handler. A nil handler, an
// invalid signal number or an Unhandled verdict yields Unhandled, which
// the "hardware" in package vm treats as process death.
func (t *Table) Dispatch(info *Info, ctx Context) Action {
	if !info.Sig.Valid() {
		return Unhandled
	}
	h := t.handlers[info.Sig]
	if h == nil {
		return Unhandled
	}
	return h.Handle(info, ctx)
}
