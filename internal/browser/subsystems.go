package browser

import (
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// subsystemSpec describes one browser subsystem's allocation sites: all
// private trusted-heap traffic. Real Servo has thousands of such sites
// (12088, of which the pipeline moved 274 — 2.26% — to MU, §5.3); this
// roster gives the simulator the same shape: many registered sites, few
// shared, so the §5.3 sites experiment measures a meaningful ratio.
type subsystemSpec struct {
	name  string
	sites int    // distinct allocation call sites in the subsystem
	size  uint64 // typical object size
}

var subsystemSpecs = []subsystemSpec{
	{"servo::net::response_buffer", 4, 512},
	{"servo::net::header_map", 3, 128},
	{"servo::net::cookie_jar", 2, 96},
	{"servo::css::stylesheet", 5, 256},
	{"servo::css::rule", 8, 64},
	{"servo::css::media_query", 2, 48},
	{"servo::style::computed_values", 6, 160},
	{"servo::font::glyph_cache", 4, 256},
	{"servo::font::metrics", 2, 64},
	{"servo::image::decode_buffer", 3, 1024},
	{"servo::image::cache_entry", 2, 80},
	{"servo::layout::fragment", 6, 96},
	{"servo::layout::inline_box", 4, 64},
	{"servo::text::shaper_run", 4, 128},
	{"servo::history::entry", 2, 96},
	{"servo::timer::entry", 2, 48},
	{"servo::events::queue_node", 3, 64},
	{"servo::script::microtask", 3, 48},
	{"servo::dom::mutation_record", 3, 112},
	{"servo::compositor::tile", 4, 512},
	{"servo::profiler::sample", 2, 32},
	{"servo::url::parsed", 3, 144},
}

// registerSubsystems registers every subsystem allocation site with the
// program, so site counts reflect the whole binary, not just the code a
// given page happens to execute — matching how AllocIds are assigned at
// compile time over all of Servo. With telemetry attached, each subsystem
// also gets rollup counters aggregating its sites.
func (b *Browser) registerSubsystems() {
	allocs := b.Prog.Telemetry().CounterVec("pkrusafe_browser_subsystem_allocs_total",
		"Allocations performed per browser subsystem (rollup over its sites).", "subsystem")
	bytes := b.Prog.Telemetry().CounterVec("pkrusafe_browser_subsystem_bytes_total",
		"Bytes allocated per browser subsystem (rollup over its sites).", "subsystem")
	for _, spec := range subsystemSpecs {
		sites := make([]*core.Site, spec.sites)
		for i := range sites {
			sites[i] = b.Prog.Site(spec.name, 0, uint32(i))
		}
		b.subsystems = append(b.subsystems, subsystem{
			spec:    spec,
			sites:   sites,
			mAllocs: allocs.With(spec.name),
			mBytes:  bytes.With(spec.name),
		})
	}
}

type subsystem struct {
	spec    subsystemSpec
	sites   []*core.Site
	mAllocs *telemetry.Counter // nil-safe rollup counters
	mBytes  *telemetry.Counter
}

// exerciseSubsystems performs one round of private browser work across
// every subsystem: allocate at each site, touch the object, free it.
// Called from LoadHTML — pages exercise the whole engine once — while
// Housekeeping keeps the per-frame subset (layout/style) hot.
func (b *Browser) exerciseSubsystems() error {
	th := b.th()
	for _, sub := range b.subsystems {
		for _, site := range sub.sites {
			addr, err := b.Prog.AllocAt(site, sub.spec.size)
			if err != nil {
				return err
			}
			sub.mAllocs.Inc()
			sub.mBytes.Add(sub.spec.size)
			if err := th.Store64(addr, uint64(site.ID.Site)+1); err != nil {
				return err
			}
			if err := th.Store64(addr+vm.Addr(sub.spec.size)-8, sub.spec.size); err != nil {
				return err
			}
			if err := b.Prog.Free(addr); err != nil {
				return err
			}
		}
	}
	return nil
}
