package browser

import (
	"fmt"

	"repro/internal/ffi"
	"repro/internal/jsengine"
	"repro/internal/vm"
)

// registerServoLib defines the browser's trusted binding layer: the
// word-ABI functions the JS engine's host bindings call back into. These
// are the exported, instrumented T APIs of §3.3 — invoked from U they
// pass a reverse gate and run with full rights.
func (b *Browser) registerServoLib(reg *ffi.Registry) error {
	lib, err := reg.Library(ServoLib, ffi.Trusted)
	if err != nil {
		return err
	}

	nodeArg := func(id uint64) (*Node, error) {
		n, ok := b.Doc.node(id)
		if !ok {
			return nil, fmt.Errorf("browser: no node %d", id)
		}
		return n, nil
	}
	readStr := func(th *ffi.Thread, ptr, n uint64) (string, error) {
		buf, err := th.ReadBytes(vm.Addr(ptr), int(n))
		return string(buf), err
	}

	lib.Define("by_id", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		id, err := readStr(th, args[0], args[1])
		if err != nil {
			return nil, err
		}
		n, ok := b.Doc.byID[id]
		if !ok {
			return []uint64{0}, nil
		}
		return []uint64{n.ID}, nil
	})

	lib.Define("create_element", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		tag, err := readStr(th, args[0], args[1])
		if err != nil {
			return nil, err
		}
		n, err := b.createElement(th, tag)
		if err != nil {
			return nil, err
		}
		return []uint64{n.ID}, nil
	})

	lib.Define("append_child", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		p, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		c, err := nodeArg(args[1])
		if err != nil {
			return nil, err
		}
		return nil, b.appendChild(th, p, c)
	})

	lib.Define("set_text", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		text, err := readStr(th, args[1], args[2])
		if err != nil {
			return nil, err
		}
		return nil, b.setText(th, n, text)
	})

	// get_text_ref returns a zero-copy (ptr, len) reference to the node's
	// text buffer — the cross-compartment data flow PKRU-Safe's profiler
	// must discover: the caller reads the buffer with its own rights.
	lib.Define("get_text_ref", func(_ *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		return []uint64{uint64(n.textAddr), n.textLen}, nil
	})

	lib.Define("set_attr", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		key, err := readStr(th, args[1], args[2])
		if err != nil {
			return nil, err
		}
		val, err := readStr(th, args[3], args[4])
		if err != nil {
			return nil, err
		}
		return nil, b.setAttr(th, n, key, val)
	})

	lib.Define("get_attr_ref", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		key, err := readStr(th, args[1], args[2])
		if err != nil {
			return nil, err
		}
		ab, ok := n.attrAddrs[key]
		if !ok {
			return []uint64{0, 0}, nil
		}
		return []uint64{uint64(ab.addr), ab.len}, nil
	})

	lib.Define("inner_html", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		html, err := readStr(th, args[1], args[2])
		if err != nil {
			return nil, err
		}
		if err := b.removeSubtree(th, n); err != nil {
			return nil, err
		}
		parsed, err := parseHTML(html)
		if err != nil {
			return nil, err
		}
		for _, hn := range parsed {
			if err := b.materialize(th, hn, n); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	lib.Define("child_count", func(_ *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		return []uint64{uint64(len(n.Children))}, nil
	})

	lib.Define("remove_children", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		n, err := nodeArg(args[0])
		if err != nil {
			return nil, err
		}
		return nil, b.removeSubtree(th, n)
	})

	lib.Define("node_count", func(_ *ffi.Thread, _ []uint64) ([]uint64, error) {
		return []uint64{uint64(b.Doc.CountNodes())}, nil
	})

	lib.Define("layout", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		return nil, b.layout(th)
	})

	// query_tag writes up to cap matching node ids into the caller's out
	// buffer (in the caller's compartment) and returns the match count.
	lib.Define("query_tag", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		tag, err := readStr(th, args[0], args[1])
		if err != nil {
			return nil, err
		}
		out, capacity := vm.Addr(args[2]), args[3]
		var count uint64
		var walk func(n *Node) error
		walk = func(n *Node) error {
			if n.Tag == tag {
				if count < capacity {
					if err := th.Store64(out+vm.Addr(count*8), n.ID); err != nil {
						return err
					}
				}
				count++
			}
			for _, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(b.Doc.Root); err != nil {
			return nil, err
		}
		return []uint64{count}, nil
	})

	return nil
}

// registerHostBindings installs the script-visible DOM API: each binding
// runs inside the engine's compartment (untrusted rights under MPK) and
// reaches the browser through the trusted servo library.
func (b *Browser) registerHostBindings() {
	eng := b.Engine

	// scratch stages a Go string into the calling compartment's heap so
	// its bytes can cross the word-based ABI.
	scratch := func(th *ffi.Thread, s string) (vm.Addr, func(), error) {
		if len(s) == 0 {
			return 0, func() {}, nil
		}
		addr, err := th.Malloc(uint64(len(s)))
		if err != nil {
			return 0, nil, err
		}
		if err := th.WriteBytes(addr, []byte(s)); err != nil {
			return 0, nil, err
		}
		return addr, func() { _ = th.Free(addr) }, nil
	}

	callServo := func(th *ffi.Thread, fn string, words ...uint64) ([]uint64, error) {
		return th.Call(ServoLib, fn, words...)
	}

	str1 := func(fn string) jsengine.HostFunc {
		return func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
			if len(args) != 1 || args[0].Kind != jsengine.KStr {
				return jsengine.Null(), fmt.Errorf("browser: %s needs one string argument", fn)
			}
			p, free, err := scratch(th, args[0].Str)
			if err != nil {
				return jsengine.Null(), err
			}
			defer free()
			res, err := callServo(th, fn, uint64(p), uint64(len(args[0].Str)))
			if err != nil {
				return jsengine.Null(), err
			}
			return jsengine.Num(float64(res[0])), nil
		}
	}

	eng.RegisterHost("byId", str1("by_id"))
	eng.RegisterHost("createElement", str1("create_element"))

	eng.RegisterHost("appendChild", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 2 {
			return jsengine.Null(), fmt.Errorf("browser: appendChild(parent, child)")
		}
		_, err := callServo(th, "append_child", uint64(args[0].Num), uint64(args[1].Num))
		return jsengine.Null(), err
	})

	eng.RegisterHost("setText", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 2 || args[1].Kind != jsengine.KStr {
			return jsengine.Null(), fmt.Errorf("browser: setText(id, string)")
		}
		p, free, err := scratch(th, args[1].Str)
		if err != nil {
			return jsengine.Null(), err
		}
		defer free()
		_, err = callServo(th, "set_text", uint64(args[0].Num), uint64(p), uint64(len(args[1].Str)))
		return jsengine.Null(), err
	})

	// getText fetches the trusted buffer reference and reads it with the
	// engine's own rights — the read that faults (and is profiled) when
	// the text site is not shared.
	eng.RegisterHost("getText", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 1 {
			return jsengine.Null(), fmt.Errorf("browser: getText(id)")
		}
		res, err := callServo(th, "get_text_ref", uint64(args[0].Num))
		if err != nil {
			return jsengine.Null(), err
		}
		if res[0] == 0 {
			return jsengine.Str(""), nil
		}
		buf, err := th.ReadBytes(vm.Addr(res[0]), int(res[1]))
		if err != nil {
			return jsengine.Null(), err
		}
		return jsengine.Str(string(buf)), nil
	})

	eng.RegisterHost("setAttr", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 3 || args[1].Kind != jsengine.KStr || args[2].Kind != jsengine.KStr {
			return jsengine.Null(), fmt.Errorf("browser: setAttr(id, key, val)")
		}
		kp, freeK, err := scratch(th, args[1].Str)
		if err != nil {
			return jsengine.Null(), err
		}
		defer freeK()
		vp, freeV, err := scratch(th, args[2].Str)
		if err != nil {
			return jsengine.Null(), err
		}
		defer freeV()
		_, err = callServo(th, "set_attr", uint64(args[0].Num),
			uint64(kp), uint64(len(args[1].Str)), uint64(vp), uint64(len(args[2].Str)))
		return jsengine.Null(), err
	})

	eng.RegisterHost("getAttr", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 2 || args[1].Kind != jsengine.KStr {
			return jsengine.Null(), fmt.Errorf("browser: getAttr(id, key)")
		}
		kp, freeK, err := scratch(th, args[1].Str)
		if err != nil {
			return jsengine.Null(), err
		}
		defer freeK()
		res, err := callServo(th, "get_attr_ref", uint64(args[0].Num), uint64(kp), uint64(len(args[1].Str)))
		if err != nil {
			return jsengine.Null(), err
		}
		if res[0] == 0 {
			return jsengine.Str(""), nil
		}
		buf, err := th.ReadBytes(vm.Addr(res[0]), int(res[1]))
		if err != nil {
			return jsengine.Null(), err
		}
		return jsengine.Str(string(buf)), nil
	})

	eng.RegisterHost("setInnerHTML", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 2 || args[1].Kind != jsengine.KStr {
			return jsengine.Null(), fmt.Errorf("browser: setInnerHTML(id, html)")
		}
		p, free, err := scratch(th, args[1].Str)
		if err != nil {
			return jsengine.Null(), err
		}
		defer free()
		_, err = callServo(th, "inner_html", uint64(args[0].Num), uint64(p), uint64(len(args[1].Str)))
		return jsengine.Null(), err
	})

	num1 := func(fn string) jsengine.HostFunc {
		return func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
			if len(args) != 1 {
				return jsengine.Null(), fmt.Errorf("browser: %s(id)", fn)
			}
			res, err := callServo(th, fn, uint64(args[0].Num))
			if err != nil {
				return jsengine.Null(), err
			}
			if len(res) == 0 {
				return jsengine.Null(), nil
			}
			return jsengine.Num(float64(res[0])), nil
		}
	}
	eng.RegisterHost("childCount", num1("child_count"))
	eng.RegisterHost("removeChildren", num1("remove_children"))

	eng.RegisterHost("nodeCount", func(th *ffi.Thread, _ []jsengine.Value) (jsengine.Value, error) {
		res, err := callServo(th, "node_count")
		if err != nil {
			return jsengine.Null(), err
		}
		return jsengine.Num(float64(res[0])), nil
	})

	eng.RegisterHost("reflow", func(th *ffi.Thread, _ []jsengine.Value) (jsengine.Value, error) {
		_, err := callServo(th, "layout")
		return jsengine.Null(), err
	})

	eng.RegisterHost("queryTag", func(th *ffi.Thread, args []jsengine.Value) (jsengine.Value, error) {
		if len(args) != 1 || args[0].Kind != jsengine.KStr {
			return jsengine.Null(), fmt.Errorf("browser: queryTag(tag)")
		}
		tp, freeT, err := scratch(th, args[0].Str)
		if err != nil {
			return jsengine.Null(), err
		}
		defer freeT()
		const capIDs = 4096
		out, err := th.Malloc(capIDs * 8)
		if err != nil {
			return jsengine.Null(), err
		}
		defer func() { _ = th.Free(out) }()
		res, err := callServo(th, "query_tag", uint64(tp), uint64(len(args[0].Str)), uint64(out), capIDs)
		if err != nil {
			return jsengine.Null(), err
		}
		n := res[0]
		if n > capIDs {
			n = capIDs
		}
		ids := make([]float64, n)
		for i := uint64(0); i < n; i++ {
			raw, err := th.Load64(out + vm.Addr(i*8))
			if err != nil {
				return jsengine.Null(), err
			}
			ids[i] = float64(raw)
		}
		return jsengine.MakeFloatArray(th, ids)
	})
}
