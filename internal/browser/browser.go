package browser

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/jsengine"
	"repro/internal/mpk"
	"repro/internal/profile"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// SecretAddr is the fixed address at which the E3 experiment plants a
// trusted secret — the same address the paper's artifact uses.
const SecretAddr vm.Addr = 0x1680_0000_0000

// ServoLib is the library name the browser's trusted bindings register
// under (the rust-mozjs binding layer of the paper, seen from the other
// side of the boundary).
const ServoLib = "servo"

// Browser is one built browser instance: a program in some configuration,
// an untrusted JS engine behind the gate, a DOM in trusted memory, and
// the instrumented allocation sites its heap objects come from.
type Browser struct {
	Prog   *core.Program
	Engine *jsengine.Engine
	Doc    *Document

	// Allocation sites, the instrumented calls into liballoc. Only a small
	// subset is ever shared across the boundary; the rest stay in MT.
	siteNode    *core.Site // DOM node records          (private)
	siteText    *core.Site // text content buffers      (shared by get_text_ref)
	siteAttr    *core.Site // attribute value buffers   (shared by get_attr_ref)
	siteScript  *core.Site // script source buffers     (shared via eval)
	siteLayout  *core.Site // layout boxes              (private)
	siteStyle   *core.Site // computed style data       (private)
	siteDisplay *core.Site // display lists             (private)
	siteCache   *core.Site // selector match cache      (private)

	subsystems []subsystem
	secret     vm.Addr
	domOps     atomic.Uint64
}

// Options tunes New.
type Options struct {
	// ScriptOutput receives print() output from scripts.
	ScriptOutput io.Writer
	// StepLimit bounds script execution (passed to the engine).
	StepLimit uint64
	// Telemetry, when non-nil, attaches the whole stack — program, gates,
	// allocator, DOM and per-subsystem rollups — to the metrics registry.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, records gate traversals and fault handling
	// into the ring for live /trace serving and post-mortem dumps.
	Trace *trace.Ring
	// Forensics attaches a fault forensics recorder to the program so a
	// fatal MPK violation can be rendered as a crash report (see
	// Browser.Prog.Forensics).
	Forensics bool
	// Supervision configures compartment fault recovery for the script
	// engine's gated calls (eval/lookup/invoke). The zero value keeps the
	// fail-stop behaviour; any other policy shields each script execution
	// so one poisoned request cannot take the whole browser down.
	Supervision supervise.Config
	// Crossings attaches the boundary-crossing sampler to the program so
	// gated engine calls are attributed to the allocation sites whose
	// objects they carry across (see core.Options.Crossings).
	Crossings bool
	// CrossingInterval samples every Nth forward crossing; <= 1 keeps all.
	CrossingInterval int
	// Tracing, when non-nil, attaches the request-scoped gate tracer to
	// the program: the embedder opens a gatetrace.Context per request and
	// pins it to the main thread, and every gated engine call becomes a
	// timed span on that request's trace (see core.Options.Tracing).
	Tracing *gatetrace.Tracer
}

// New builds a browser under the given configuration. Alloc and MPK
// builds consume the profile from a prior Profiling run.
func New(cfg core.BuildConfig, prof *profile.Profile, opts ...Options) (*Browser, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	reg := ffi.NewRegistry()
	eng := jsengine.NewEngine(jsengine.Options{Output: opt.ScriptOutput, StepLimit: opt.StepLimit})
	if err := eng.Install(reg, jsengine.DefaultLib); err != nil {
		return nil, err
	}
	prog, err := core.NewProgram(reg, cfg, prof, core.Options{
		Telemetry:        opt.Telemetry,
		Trace:            opt.Trace,
		Forensics:        opt.Forensics,
		Supervision:      opt.Supervision,
		Crossings:        opt.Crossings,
		CrossingInterval: opt.CrossingInterval,
		Tracing:          opt.Tracing,
	})
	if err != nil {
		return nil, err
	}
	b := &Browser{Prog: prog, Engine: eng, Doc: newDocument()}
	if opt.Telemetry != nil {
		opt.Telemetry.GaugeFunc("pkrusafe_browser_dom_ops",
			"Trusted DOM operations performed.", func() float64 { return float64(b.domOps.Load()) })
	}
	b.siteNode = prog.Site("servo::dom::node_record", 0, 0)
	b.siteText = prog.Site("servo::dom::text", 0, 0)
	b.siteAttr = prog.Site("servo::dom::attr", 0, 0)
	b.siteScript = prog.Site("servo::script::source", 0, 0)
	b.siteLayout = prog.Site("servo::layout::box", 0, 0)
	b.siteStyle = prog.Site("servo::style::data", 0, 0)
	b.siteDisplay = prog.Site("servo::layout::display_list", 0, 0)
	b.siteCache = prog.Site("servo::style::selector_cache", 0, 0)
	b.registerSubsystems()
	if err := b.registerServoLib(reg); err != nil {
		return nil, err
	}
	b.registerHostBindings()
	root, err := b.createElement(prog.Main(), "html")
	if err != nil {
		return nil, err
	}
	b.Doc.Root = root
	return b, nil
}

// th returns the browser's main thread.
func (b *Browser) th() *ffi.Thread { return b.Prog.Main() }

// engineCall crosses into the script engine, through the supervisor when
// one is configured so engine-side faults become recoverable events.
func (b *Browser) engineCall(th *ffi.Thread, fn string, words ...uint64) ([]uint64, error) {
	if sup := b.Prog.Supervisor(); sup != nil {
		return sup.Call(th, jsengine.DefaultLib, fn, words...)
	}
	return th.Call(jsengine.DefaultLib, fn, words...)
}

// DOMOps returns the count of trusted DOM operations performed.
func (b *Browser) DOMOps() uint64 { return b.domOps.Load() }

// --- trusted DOM operations (run with the caller's rights; behind a
// reverse gate these are full rights, as §3.3 requires) ---

func (b *Browser) createElement(th *ffi.Thread, tag string) (*Node, error) {
	rec, err := b.Prog.AllocAt(b.siteNode, nodeRecordSize)
	if err != nil {
		return nil, err
	}
	n := &Node{
		ID:        b.Doc.nextID,
		Tag:       tag,
		Attrs:     map[string]string{},
		attrAddrs: map[string]attrBuf{},
		record:    rec,
	}
	b.Doc.nextID++
	b.Doc.byNode[n.ID] = n
	if err := th.Store64(rec, n.ID); err != nil {
		return nil, err
	}
	if err := th.Store64(rec+8, tagHash(tag)); err != nil {
		return nil, err
	}
	b.domOps.Add(1)
	return n, nil
}

func (b *Browser) appendChild(th *ffi.Thread, parent, child *Node) error {
	if child.Parent != nil {
		return fmt.Errorf("browser: node %d already has a parent", child.ID)
	}
	parent.Children = append(parent.Children, child)
	child.Parent = parent
	b.domOps.Add(1)
	return th.Store64(parent.record+32, uint64(len(parent.Children)))
}

func (b *Browser) setText(th *ffi.Thread, n *Node, text string) error {
	if n.textAddr != 0 {
		if err := b.Prog.Free(n.textAddr); err != nil {
			return err
		}
		n.textAddr, n.textLen = 0, 0
	}
	if len(text) > 0 {
		addr, err := b.Prog.AllocAt(b.siteText, uint64(len(text)))
		if err != nil {
			return err
		}
		if err := th.WriteBytes(addr, []byte(text)); err != nil {
			return err
		}
		n.textAddr, n.textLen = addr, uint64(len(text))
	}
	b.domOps.Add(1)
	if err := th.Store64(n.record+16, uint64(n.textAddr)); err != nil {
		return err
	}
	return th.Store64(n.record+24, n.textLen)
}

// textOf reads a node's text back from trusted memory.
func (b *Browser) textOf(th *ffi.Thread, n *Node) (string, error) {
	if n.textAddr == 0 {
		return "", nil
	}
	buf, err := th.ReadBytes(n.textAddr, int(n.textLen))
	return string(buf), err
}

func (b *Browser) setAttr(th *ffi.Thread, n *Node, key, val string) error {
	if old, ok := n.attrAddrs[key]; ok {
		if err := b.Prog.Free(old.addr); err != nil {
			return err
		}
		delete(n.attrAddrs, key)
	}
	if prev, ok := n.Attrs["id"]; ok && key == "id" {
		delete(b.Doc.byID, prev)
	}
	n.Attrs[key] = val
	if key == "id" {
		b.Doc.byID[val] = n
	}
	if len(val) > 0 {
		addr, err := b.Prog.AllocAt(b.siteAttr, uint64(len(val)))
		if err != nil {
			return err
		}
		if err := th.WriteBytes(addr, []byte(val)); err != nil {
			return err
		}
		n.attrAddrs[key] = attrBuf{addr: addr, len: uint64(len(val))}
	}
	b.domOps.Add(1)
	return th.Store64(n.record+40, uint64(len(n.Attrs)))
}

// removeSubtree frees a node's descendants (not the node itself).
func (b *Browser) removeSubtree(th *ffi.Thread, n *Node) error {
	for _, c := range n.Children {
		if err := b.removeSubtree(th, c); err != nil {
			return err
		}
		if err := b.freeNode(c); err != nil {
			return err
		}
	}
	n.Children = nil
	b.domOps.Add(1)
	return th.Store64(n.record+32, 0)
}

func (b *Browser) freeNode(n *Node) error {
	if n.textAddr != 0 {
		if err := b.Prog.Free(n.textAddr); err != nil {
			return err
		}
	}
	for _, ab := range n.attrAddrs {
		if err := b.Prog.Free(ab.addr); err != nil {
			return err
		}
	}
	if id, ok := n.Attrs["id"]; ok {
		delete(b.Doc.byID, id)
	}
	delete(b.Doc.byNode, n.ID)
	return b.Prog.Free(n.record)
}

// materialize builds DOM nodes from parsed HTML under parent.
func (b *Browser) materialize(th *ffi.Thread, hn *htmlNode, parent *Node) error {
	if hn.tag == "#text" {
		// Text runs attach to the parent node's text content.
		return b.setText(th, parent, hn.text)
	}
	n, err := b.createElement(th, hn.tag)
	if err != nil {
		return err
	}
	for k, v := range hn.attrs {
		if err := b.setAttr(th, n, k, v); err != nil {
			return err
		}
	}
	if err := b.appendChild(th, parent, n); err != nil {
		return err
	}
	for _, kid := range hn.kids {
		if err := b.materialize(th, kid, n); err != nil {
			return err
		}
	}
	return nil
}

// layout runs a toy layout pass: a style allocation per node, a box per
// node, a display list for the tree — all private MT churn, the browser
// work the paper's dom benchmarks interleave with script execution.
func (b *Browser) layout(th *ffi.Thread) error {
	var boxes []vm.Addr
	var walk func(n *Node, depth uint64) error
	walk = func(n *Node, depth uint64) error {
		box, err := b.Prog.AllocAt(b.siteLayout, 48)
		if err != nil {
			return err
		}
		boxes = append(boxes, box)
		if err := th.Store64(box, n.ID); err != nil {
			return err
		}
		if err := th.Store64(box+8, depth); err != nil {
			return err
		}
		style, err := b.Prog.AllocAt(b.siteStyle, 32)
		if err != nil {
			return err
		}
		if err := th.Store64(style, tagHash(n.Tag)); err != nil {
			return err
		}
		boxes = append(boxes, style)
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(b.Doc.Root, 0); err != nil {
		return err
	}
	display, err := b.Prog.AllocAt(b.siteDisplay, uint64(16*len(boxes)+16))
	if err != nil {
		return err
	}
	for i, box := range boxes {
		if err := th.Store64(display+vm.Addr(16*i), uint64(box)); err != nil {
			return err
		}
	}
	boxes = append(boxes, display)
	for _, a := range boxes {
		if err := b.Prog.Free(a); err != nil {
			return err
		}
	}
	b.domOps.Add(1)
	return nil
}

// --- public browser API ---

// Housekeeping performs one round of the browser's own frame work — a
// layout pass plus style-cache churn — all private trusted-heap traffic.
// The benchmark harness invokes it between script iterations to model the
// background allocation a real browser performs regardless of workload,
// which is what keeps %MU well below 100% even for pure-compute suites.
func (b *Browser) Housekeeping() error {
	th := b.th()
	if err := b.layout(th); err != nil {
		return err
	}
	// Selector-cache churn: transient private allocations.
	for i := 0; i < 4; i++ {
		addr, err := b.Prog.AllocAt(b.siteCache, 256)
		if err != nil {
			return err
		}
		if err := th.Store64(addr, uint64(i)); err != nil {
			return err
		}
		if err := b.Prog.Free(addr); err != nil {
			return err
		}
	}
	return nil
}

// LoadHTML parses html and appends its nodes under the document root.
func (b *Browser) LoadHTML(html string) error {
	nodes, err := parseHTML(html)
	if err != nil {
		return err
	}
	th := b.th()
	for _, hn := range nodes {
		if err := b.materialize(th, hn, b.Doc.Root); err != nil {
			return err
		}
	}
	if err := b.exerciseSubsystems(); err != nil {
		return err
	}
	return b.layout(th)
}

// ExecScript stages src in a script-source buffer (an instrumented
// trusted allocation site — the canonical cross-boundary data flow) and
// evaluates it in the engine through the call gate. It returns the
// numeric value of the script's final expression.
func (b *Browser) ExecScript(src string) (float64, error) {
	th := b.th()
	buf, err := b.Prog.AllocAt(b.siteScript, uint64(len(src)))
	if err != nil {
		return 0, err
	}
	if err := th.VM.Write(buf, []byte(src)); err != nil {
		return 0, err
	}
	res, err := b.engineCall(th, "eval", uint64(buf), uint64(len(src)))
	if ferr := b.Prog.Free(buf); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(res[0]), nil
}

// LookupScriptFunc resolves a script-defined function for InvokeScriptFunc.
func (b *Browser) LookupScriptFunc(name string) (uint64, error) {
	th := b.th()
	buf, err := b.Prog.AllocAt(b.siteScript, uint64(len(name)))
	if err != nil {
		return 0, err
	}
	if err := th.VM.Write(buf, []byte(name)); err != nil {
		return 0, err
	}
	res, err := b.engineCall(th, "lookup", uint64(buf), uint64(len(name)))
	if ferr := b.Prog.Free(buf); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return 0, err
	}
	if res[0] == 0 {
		return 0, fmt.Errorf("browser: script function %q not defined", name)
	}
	return res[0], nil
}

// InvokeScriptFunc calls a script function by its LookupScriptFunc handle
// with numeric arguments — the cheap repeated-call path benchmarks use.
func (b *Browser) InvokeScriptFunc(id uint64, args ...float64) (float64, error) {
	words := make([]uint64, 1, len(args)+1)
	words[0] = id
	for _, a := range args {
		words = append(words, math.Float64bits(a))
	}
	res, err := b.engineCall(b.th(), "invoke", words...)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(res[0]), nil
}

// PlantSecret reserves a page of trusted memory at the paper's fixed
// address and stores value there — the E3 experiment's target.
func (b *Browser) PlantSecret(value uint64) error {
	if b.secret != 0 {
		return errors.New("browser: secret already planted")
	}
	key := b.Prog.Allocator().TrustedKey()
	if _, err := b.Prog.Space().Reserve("servo/secret", SecretAddr, vm.PageSize, key); err != nil {
		return err
	}
	b.secret = SecretAddr
	return b.th().VM.Store64(SecretAddr, value)
}

// SecretValue reads the planted secret back through the runtime's
// privileged view (the program printing its own secret at exit).
func (b *Browser) SecretValue() (uint64, error) {
	if b.secret == 0 {
		return 0, errors.New("browser: no secret planted")
	}
	var buf [8]byte
	if err := b.Prog.Space().Peek(b.secret, buf[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, nil
}

// Stats bundles the run statistics the evaluation tables report.
type Stats struct {
	Transitions    uint64  // compartment transitions through gates
	DOMOps         uint64  // trusted DOM operations
	UntrustedShare float64 // fraction of allocated bytes served from MU
	TotalSites     int
	UntrustedSites int
	PKUFaults      uint64
}

// Stats returns the run statistics.
func (b *Browser) Stats() Stats {
	rep := b.Prog.Report()
	return Stats{
		Transitions:    b.Prog.Transitions(),
		DOMOps:         b.domOps.Load(),
		UntrustedShare: rep.UntrustedShare,
		TotalSites:     rep.TotalSites,
		UntrustedSites: rep.UntrustedSites,
		PKUFaults:      b.th().VM.Stats().PKUFaults,
	}
}

// TrustedRights reports whether the main thread currently holds full
// rights (sanity check for tests).
func (b *Browser) TrustedRights() bool {
	return b.th().VM.Rights() == mpk.PermitAll
}
