package browser

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/vm"
)

func TestParseHTML(t *testing.T) {
	nodes, err := parseHTML(`
		<!-- comment -->
		<div id="a" class="x">
			text here
			<p>para</p>
			<br/>
		</div>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("top nodes = %d", len(nodes))
	}
	div := nodes[0]
	if div.tag != "div" || div.attrs["id"] != "a" || div.attrs["class"] != "x" {
		t.Errorf("div = %+v", div)
	}
	if len(div.kids) != 3 {
		t.Fatalf("kids = %d (%+v)", len(div.kids), div.kids)
	}
	if div.kids[0].tag != "#text" || div.kids[0].text != "text here" {
		t.Errorf("text kid = %+v", div.kids[0])
	}
	if div.kids[1].tag != "p" || div.kids[2].tag != "br" {
		t.Errorf("kids = %v %v", div.kids[1].tag, div.kids[2].tag)
	}
}

func TestParseHTMLErrors(t *testing.T) {
	for name, src := range map[string]string{
		"mismatched":    "<div><p></div></p>",
		"unterminated":  "<div>",
		"bad comment":   "<!-- never closed",
		"bad attrvalue": `<div id=unquoted>`,
		"empty tag":     "<>",
		"stray close":   "</div>",
	} {
		if _, err := parseHTML(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestLoadHTMLBuildsDOM(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(`<body><div id="d"><p>one</p><p>two</p></div></body>`); err != nil {
		t.Fatal(err)
	}
	d, ok := b.Doc.byID["d"]
	if !ok {
		t.Fatal("getElementById index missing d")
	}
	if len(d.Children) != 2 {
		t.Errorf("children = %d", len(d.Children))
	}
	// Node records live in MT and carry the node id.
	v, err := b.th().VM.Load64(d.record)
	if err != nil || v != d.ID {
		t.Errorf("record id = %d, %v", v, err)
	}
	txt, err := b.textOf(b.th(), d.Children[0])
	if err != nil || txt != "one" {
		t.Errorf("text = %q, %v", txt, err)
	}
}

func TestScriptDOMRoundTrip(t *testing.T) {
	var out bytes.Buffer
	b, err := New(core.Base, nil, Options{ScriptOutput: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(`<div id="root"><p id="x">hi</p></div>`); err != nil {
		t.Fatal(err)
	}
	got, err := b.ExecScript(`
		var x = byId("x");
		print(getText(x));
		setText(x, "updated");
		var n = createElement("em");
		appendChild(byId("root"), n);
		setText(n, "fresh");
		setAttr(n, "id", "em1");
		childCount(byId("root"));
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("childCount = %v", got)
	}
	if strings.TrimSpace(out.String()) != "hi" {
		t.Errorf("printed %q", out.String())
	}
	x := b.Doc.byID["x"]
	txt, _ := b.textOf(b.th(), x)
	if txt != "updated" {
		t.Errorf("text after script = %q", txt)
	}
	if _, ok := b.Doc.byID["em1"]; !ok {
		t.Error("script-created node not indexed by id")
	}
}

func TestInnerHTMLAndQuery(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(`<div id="c"></div>`); err != nil {
		t.Fatal(err)
	}
	got, err := b.ExecScript(`
		var c = byId("c");
		setInnerHTML(c, "<span>a</span><span>b</span><p>c</p>");
		var spans = queryTag("span");
		setInnerHTML(c, "<i>z</i>");     // children replaced
		spans.length * 10 + childCount(c);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Errorf("= %v, want 21 (2 spans, 1 child)", got)
	}
}

func TestGetAttrAndReflow(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(`<div id="d" class="wide tall"></div>`); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	b2, _ := New(core.Base, nil, Options{ScriptOutput: &out})
	_ = b2
	got, err := b.ExecScript(`
		var d = byId("d");
		var c = getAttr(d, "class");
		reflow();
		c.length;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("class length = %v", got)
	}
	if got, err := b.ExecScript(`getAttr(byId("d"), "missing").length;`); err != nil || got != 0 {
		t.Errorf("missing attr = %v, %v", got, err)
	}
}

func TestInvokeScriptFuncPath(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecScript(`function work(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }`); err != nil {
		t.Fatal(err)
	}
	id, err := b.LookupScriptFunc("work")
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.InvokeScriptFunc(id, 100)
	if err != nil || got != 4950 {
		t.Errorf("invoke = %v, %v", got, err)
	}
	if _, err := b.LookupScriptFunc("ghost"); err == nil {
		t.Error("lookup of undefined function succeeded")
	}
}

// TestBrowserPipeline is the browser-level four-stage run: empty-profile
// enforcement faults on the script source; profiling collects the shared
// sites; enforcement with the profile runs the same workload cleanly.
func TestBrowserPipeline(t *testing.T) {
	// Stage 1: enforce with empty profile -> the eval source read faults.
	b1, err := New(core.MPK, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.LoadHTML(`<p id="p">x</p>`); err != nil {
		t.Fatal(err)
	}
	_, err = b1.ExecScript("1+1;")
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("stage 1: want fault, got %v", err)
	}

	// Stage 2: profiling run over the standard corpus.
	prof, err := CollectProfile(StandardCorpus)
	if err != nil {
		t.Fatalf("stage 2: %v", err)
	}
	wantShared := []string{"servo::script::source", "servo::dom::text", "servo::dom::attr"}
	for _, fn := range wantShared {
		if !prof.Contains(profile.AllocID{Func: fn}) {
			t.Errorf("profile missing %s: %v", fn, prof.IDs())
		}
	}
	for _, fn := range []string{"servo::dom::node_record", "servo::layout::box", "servo::style::data"} {
		if prof.Contains(profile.AllocID{Func: fn}) {
			t.Errorf("internal site %s wrongly profiled as shared", fn)
		}
	}

	// Stage 3: enforce with the profile; the corpus workload runs clean.
	b3, err := New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := StandardCorpus(b3); err != nil {
		t.Fatalf("stage 3: %v", err)
	}
	st := b3.Stats()
	if st.Transitions == 0 {
		t.Error("no transitions counted in mpk build")
	}
	if st.UntrustedSites == 0 || st.UntrustedSites >= st.TotalSites {
		t.Errorf("site split = %d/%d", st.UntrustedSites, st.TotalSites)
	}
	if !b3.TrustedRights() {
		t.Error("main thread rights not restored after workload")
	}
}

// TestE3SecretExploit reproduces the paper's security experiment end to
// end: the CVE-analogue exploit corrupts the fixed-address secret in the
// unprotected build and dies with an MPK violation in the protected one.
func TestE3SecretExploit(t *testing.T) {
	exploit := `
		var a = new IntArray(8);
		var b = new IntArray(8);
		a.setLength(4096);
		var found = -1;
		for (var i = 8; i < 2000; i++) {
			if (a[i] == 0x4a53ce11) { found = i; break; }
		}
		a[found + 3] = 0x168000000000;
		b[0] = 1337;
		b[0];
	`
	// Vulnerable configuration (base build, no protection).
	bv, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bv.PlantSecret(42); err != nil {
		t.Fatal(err)
	}
	if _, err := bv.ExecScript(exploit); err != nil {
		t.Fatalf("exploit on vulnerable build: %v", err)
	}
	v, err := bv.SecretValue()
	if err != nil {
		t.Fatal(err)
	}
	if v != 1337 {
		t.Errorf("vulnerable secret = %d, want 1337", v)
	}

	// Protected configuration.
	prof, err := CollectProfile(StandardCorpus)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.PlantSecret(42); err != nil {
		t.Fatal(err)
	}
	_, err = bp.ExecScript(exploit)
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("exploit on protected build = %v, want MPK fault", err)
	}
	v, err = bp.SecretValue()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("protected secret = %d, want intact 42", v)
	}
}

func TestSecretGuards(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SecretValue(); err == nil {
		t.Error("SecretValue before planting succeeded")
	}
	if err := b.PlantSecret(1); err != nil {
		t.Fatal(err)
	}
	if err := b.PlantSecret(2); err == nil {
		t.Error("double plant accepted")
	}
}

func TestAllocOnlyBuildRunsWorkload(t *testing.T) {
	prof, err := CollectProfile(StandardCorpus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(core.Alloc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := StandardCorpus(b); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Transitions != 0 {
		t.Errorf("alloc build counted %d transitions", st.Transitions)
	}
	if st.UntrustedShare <= 0 {
		t.Error("alloc build should serve shared sites from MU")
	}
}

func TestDOMOpErrorPaths(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecScript(`setText(9999, "x");`); err == nil {
		t.Error("setText on bogus node succeeded")
	}
	if _, err := b.ExecScript(`appendChild(1, 12345);`); err == nil {
		t.Error("appendChild of bogus node succeeded")
	}
	if _, err := b.ExecScript(`byId(42);`); err == nil {
		t.Error("byId with non-string succeeded")
	}
	if got, err := b.ExecScript(`byId("nope");`); err != nil || got != 0 {
		t.Errorf("byId miss = %v, %v", got, err)
	}
	// Re-appending a parented node is a DOM error.
	if err := b.LoadHTML(`<div id="a"><p id="b"></p></div>`); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecScript(`appendChild(byId("a"), byId("b"));`); err == nil {
		t.Error("re-append accepted")
	}
}

func TestRemoveChildrenFreesMemory(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(`<div id="c"></div>`); err != nil {
		t.Fatal(err)
	}
	before := b.Doc.CountNodes()
	if _, err := b.ExecScript(`
		var c = byId("c");
		for (var i = 0; i < 20; i++) {
			var n = createElement("p");
			appendChild(c, n);
			setText(n, "node " + i);
		}
		removeChildren(c);
		childCount(c);
	`); err != nil {
		t.Fatal(err)
	}
	if after := b.Doc.CountNodes(); after != before {
		t.Errorf("nodes leaked: %d -> %d", before, after)
	}
}
