package browser

import (
	"testing"

	"repro/internal/core"
)

func TestSubsystemsRegisteredUpFront(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Site count reflects the whole "binary" before any page loads.
	rep := b.Prog.Report()
	wantMin := 8 // the browser's own sites
	for _, spec := range subsystemSpecs {
		wantMin += spec.sites
	}
	if rep.TotalSites < wantMin {
		t.Errorf("sites at startup = %d, want >= %d", rep.TotalSites, wantMin)
	}
}

func TestSubsystemChurnDoesNotLeak(t *testing.T) {
	b, err := New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(`<p>x</p>`); err != nil {
		t.Fatal(err)
	}
	before := b.Prog.Allocator().Stats().Trusted.BytesLive
	for i := 0; i < 10; i++ {
		if err := b.Housekeeping(); err != nil {
			t.Fatal(err)
		}
	}
	after := b.Prog.Allocator().Stats().Trusted.BytesLive
	if after != before {
		t.Errorf("housekeeping leaked: %d -> %d live bytes", before, after)
	}
}

func TestSubsystemSitesStayPrivate(t *testing.T) {
	prof, err := CollectProfile(StandardCorpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range prof.IDs() {
		for _, spec := range subsystemSpecs {
			if id.Func == spec.name {
				t.Errorf("subsystem site %v wrongly profiled as shared", id)
			}
		}
	}
}
