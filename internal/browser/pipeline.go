package browser

import (
	"repro/internal/core"
	"repro/internal/profile"
)

// CollectProfile runs the corpus against a fresh Profiling build of the
// browser and returns the recorded profile — stage 3 of the paper's
// pipeline (§3.1). The corpus plays the role of the Web Platform Tests /
// Selenium browsing sessions of §5.3: it should exercise every
// cross-compartment data flow the deployed browser will perform, since
// flows it misses will crash the enforced build.
func CollectProfile(corpus func(*Browser) error, opts ...Options) (*profile.Profile, error) {
	b, err := New(core.Profiling, nil, opts...)
	if err != nil {
		return nil, err
	}
	if err := corpus(b); err != nil {
		return nil, err
	}
	return b.Prog.RecordedProfile()
}

// StandardCorpus is a profiling corpus that exercises the browser's
// cross-compartment data flows: script sources, text references and
// attribute references crossing into the engine, plus ordinary DOM
// scripting. It stands in for the paper's WPT+jQuery+Web-IDL+Selenium
// corpus.
func StandardCorpus(b *Browser) error {
	if err := b.LoadHTML(`
		<div id="main" class="content">
			<p id="p1">hello profiling</p>
			<ul id="list"><li>one</li><li>two</li></ul>
		</div>`); err != nil {
		return err
	}
	_, err := b.ExecScript(`
		var main = byId("main");
		var p = byId("p1");
		var t = getText(p);                 // text buffer crosses T->U
		var cls = getAttr(main, "class");   // attr buffer crosses T->U
		var d = createElement("div");
		appendChild(main, d);
		setText(d, t + "/" + cls);
		setInnerHTML(d, "<span>x</span><span>y</span>");
		var spans = queryTag("span");
		reflow();
		childCount(main) + spans.length;
	`)
	return err
}
