// Package browser is the evaluation's Servo stand-in: a trusted-code
// "browser" whose DOM lives in PKRU-Safe's trusted heap MT and whose
// scripts run in the untrusted JavaScript engine behind call gates. Node
// records and text content are real simulated-memory objects allocated at
// instrumented sites, so the dynamic analysis discovers exactly which
// browser data flows into the engine (script sources, zero-copy text and
// attribute references) and leaves everything else protected.
package browser

import (
	"fmt"
	"strings"

	"repro/internal/vm"
)

// Node is one DOM node. The Go struct holds the tree shape; the node's
// record and text live in simulated trusted memory.
type Node struct {
	ID       uint64
	Tag      string
	Parent   *Node
	Children []*Node
	Attrs    map[string]string

	// record is the node's 64-byte MT record:
	//   +0 id, +8 tagHash, +16 textPtr, +24 textLen,
	//   +32 childCount, +40 attrCount, +48 styleBits, +56 generation
	record vm.Addr
	// textAddr/textLen locate the node's text content buffer (0 if none).
	textAddr vm.Addr
	textLen  uint64
	// attrAddrs locates each attribute's value buffer.
	attrAddrs map[string]attrBuf
}

type attrBuf struct {
	addr vm.Addr
	len  uint64
}

const nodeRecordSize = 64

// Document is the DOM tree plus its id index.
type Document struct {
	Root   *Node
	byID   map[string]*Node
	byNode map[uint64]*Node
	nextID uint64
}

func newDocument() *Document {
	return &Document{
		byID:   make(map[string]*Node),
		byNode: make(map[uint64]*Node),
		nextID: 1,
	}
}

func (d *Document) node(id uint64) (*Node, bool) {
	n, ok := d.byNode[id]
	return n, ok
}

// CountNodes returns the number of live nodes in the tree under root.
func (d *Document) CountNodes() int { return len(d.byNode) }

// tagHash is a stable FNV-1a hash of the tag name, stored in node records.
func tagHash(tag string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return h
}

// htmlNode is the parser's output shape before DOM materialization.
type htmlNode struct {
	tag   string
	attrs map[string]string
	text  string
	kids  []*htmlNode
}

// parseHTML parses the supported HTML subset: nested elements, double-
// quoted attributes, text, self-closing tags and comments. It returns the
// top-level nodes of the fragment.
func parseHTML(src string) ([]*htmlNode, error) {
	p := &htmlParser{src: src}
	nodes, err := p.nodes("")
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("browser: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return nodes, nil
}

type htmlParser struct {
	src string
	pos int
}

func (p *htmlParser) nodes(closeTag string) ([]*htmlNode, error) {
	var out []*htmlNode
	for p.pos < len(p.src) {
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				return nil, fmt.Errorf("browser: unterminated comment at %d", p.pos)
			}
			p.pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "</") {
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return nil, fmt.Errorf("browser: unterminated close tag at %d", p.pos)
			}
			name := strings.TrimSpace(p.src[p.pos+2 : p.pos+end])
			if name != closeTag {
				return nil, fmt.Errorf("browser: mismatched </%s>, open tag is <%s>", name, closeTag)
			}
			p.pos += end + 1
			return out, nil
		}
		if p.src[p.pos] == '<' {
			n, err := p.element()
			if err != nil {
				return nil, err
			}
			out = append(out, n)
			continue
		}
		// Text run.
		end := strings.IndexByte(p.src[p.pos:], '<')
		if end < 0 {
			end = len(p.src) - p.pos
		}
		text := strings.TrimSpace(p.src[p.pos : p.pos+end])
		p.pos += end
		if text != "" {
			out = append(out, &htmlNode{tag: "#text", text: text})
		}
	}
	if closeTag != "" {
		return nil, fmt.Errorf("browser: missing </%s>", closeTag)
	}
	return out, nil
}

func (p *htmlParser) element() (*htmlNode, error) {
	start := p.pos
	p.pos++ // '<'
	nameEnd := p.pos
	for nameEnd < len(p.src) && isTagChar(p.src[nameEnd]) {
		nameEnd++
	}
	if nameEnd == p.pos {
		return nil, fmt.Errorf("browser: bad tag at %d", start)
	}
	n := &htmlNode{tag: strings.ToLower(p.src[p.pos:nameEnd]), attrs: map[string]string{}}
	p.pos = nameEnd
	// Attributes.
	for {
		for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t' || p.src[p.pos] == '\r') {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("browser: unterminated tag <%s>", n.tag)
		}
		if strings.HasPrefix(p.src[p.pos:], "/>") {
			p.pos += 2
			return n, nil
		}
		if p.src[p.pos] == '>' {
			p.pos++
			kids, err := p.nodes(n.tag)
			if err != nil {
				return nil, err
			}
			n.kids = kids
			return n, nil
		}
		keyEnd := p.pos
		for keyEnd < len(p.src) && isTagChar(p.src[keyEnd]) {
			keyEnd++
		}
		if keyEnd == p.pos {
			return nil, fmt.Errorf("browser: bad attribute in <%s> at %d", n.tag, p.pos)
		}
		key := strings.ToLower(p.src[p.pos:keyEnd])
		p.pos = keyEnd
		if p.pos < len(p.src) && p.src[p.pos] == '=' {
			p.pos++
			if p.pos >= len(p.src) || p.src[p.pos] != '"' {
				return nil, fmt.Errorf("browser: attribute %q needs a double-quoted value", key)
			}
			p.pos++
			vEnd := strings.IndexByte(p.src[p.pos:], '"')
			if vEnd < 0 {
				return nil, fmt.Errorf("browser: unterminated attribute value for %q", key)
			}
			n.attrs[key] = p.src[p.pos : p.pos+vEnd]
			p.pos += vEnd + 1
		} else {
			n.attrs[key] = ""
		}
	}
}

func isTagChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
}
