package jsengine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pkalloc"
)

func TestObjectBasics(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	cases := []struct {
		name, src string
		want      float64
	}{
		{"literal and get", `var o = {a: 1, b: 2}; o.a + o.b;`, 3},
		{"string keys", `var o = {"x y": 7}; keyCount(o);`, 1},
		{"set new prop", `var o = {}; o.n = 5; o.n;`, 5},
		{"overwrite", `var o = {n: 1}; o.n = 9; o.n;`, 9},
		{"compound assign", `var o = {n: 10}; o.n += 5; o.n *= 2; o.n;`, 30},
		{"missing prop is null", `var o = {}; o.ghost == null ? 1 : 0;`, 1},
		{"new Object", `var o = new Object(); o.k = 3; o.k;`, 3},
		{"nested objects", `var o = {inner: {deep: 42}}; o.inner.deep;`, 42},
		{"object holding array", `var o = {arr: [1, 2, 3]}; o.arr[1];`, 2},
		{"object holding string", `var o = {s: "hello"}; o.s.length;`, 5},
		{"object holding bool", `var o = {f: true}; o.f ? 8 : 9;`, 8},
		{"aliasing", `var a = {v: 1}; var b = a; b.v = 7; a.v;`, 7},
		{"keyCount grows", `var o = {}; for (var i = 0; i < 20; i++) { if (i == 5) o.five = 1; if (i == 9) o.nine = 1; } keyCount(o);`, 2},
		{"hasKey", `var o = {a: 1}; (hasKey(o, "a") ? 10 : 0) + (hasKey(o, "b") ? 1 : 0);`, 10},
		{"many props force growth", `var o = {}; o.p0=0; o.p1=1; o.p2=2; o.p3=3; o.p4=4; o.p5=5; o.p6=6; o.p7=7; o.p2 + o.p7;`, 9},
		{"object in function", `function mk(x) { return {val: x * 2}; } mk(21).val;`, 42},
		{"truthy", `var o = {}; o ? 1 : 0;`, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := evalIn(t, prog, c.src)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if got != c.want {
				t.Errorf("= %v, want %v", got, c.want)
			}
		})
	}
}

func TestObjectsLiveInMU(t *testing.T) {
	prog, eng, _ := world(t, core.MPK)
	if _, err := evalIn(t, prog, `var o = {a: 1};`); err != nil {
		t.Fatal(err)
	}
	v, ok := eng.Global("o")
	if !ok || v.Kind != KObj {
		t.Fatalf("global o = %+v", v)
	}
	if c, ok := prog.Allocator().CompartmentOf(v.Obj); !ok || c != pkalloc.Untrusted {
		t.Errorf("object header in %v, want MU", c)
	}
}

func TestObjectErrors(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	for name, src := range map[string]string{
		"prop on number":   `var x = 5; x.field = 1;`,
		"keyCount non-obj": `keyCount(5);`,
		"hasKey non-obj":   `hasKey(5, "a");`,
		"bad literal":      `var o = {a 1};`,
		"bad key":          `var o = {[x]: 1};`,
	} {
		if _, err := evalIn(t, prog, src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestObjectCorruptionContained: the OOB primitive can reach an object's
// slot pointer too (objects and arrays share the MU heap); the escalated
// write is still confined by PKRU-Safe.
func TestObjectCorruptionContained(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	secret, err := prog.Allocator().Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Main().VM.Store64(secret, 42); err != nil {
		t.Fatal(err)
	}
	// Corrupt an object's slot-table pointer via the array OOB, then
	// write a property: the property store lands at the attacker address.
	src := `
		var a = new IntArray(8);
		var o = {victim: 1};
		a.setLength(4096);
		var found = -1;
		for (var i = 8; i < 2000; i++) {
			if (a[i] == 0x4a530b1e) { found = i; break; }
		}
		a[found + 3] = ` + formatU64(uint64(secret)) + `;
		o.victim = 1337;
	`
	_, err = evalIn(t, prog, src)
	if err == nil {
		t.Fatal("object-based arbitrary write should fault under mpk")
	}
	v, _ := prog.Main().VM.Load64(secret)
	if v != 42 {
		t.Errorf("secret = %d, want intact", v)
	}
}

func TestObjectPrintFormat(t *testing.T) {
	prog, _, out := world(t, core.Base)
	if _, err := evalIn(t, prog, `print({a: 1});`); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); len(got) == 0 || got[0] != '[' {
		t.Errorf("object print = %q", got)
	}
}
