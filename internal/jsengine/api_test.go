package jsengine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ffi"
)

// TestEngineGoAPI covers the embedder-facing surface: CallFunction,
// Steps, MakeFloatArray and direct Eval.
func TestEngineGoAPI(t *testing.T) {
	reg := ffi.NewRegistry()
	eng := NewEngine()
	if err := eng.Install(reg, DefaultLib); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(reg, core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	th := prog.Main()

	if _, err := eng.Eval(th, "function mul(a, b) { return a * b; }"); err != nil {
		t.Fatal(err)
	}
	v, err := eng.CallFunction(th, "mul", Num(6), Num(7))
	if err != nil || v.Num != 42 {
		t.Errorf("CallFunction = %v, %v", v, err)
	}
	if _, err := eng.CallFunction(th, "ghost"); err == nil {
		t.Error("CallFunction of undefined succeeded")
	}
	// Missing arguments become null.
	if _, err := eng.Eval(th, "function f(a, b) { return b == null ? 1 : 0; }"); err != nil {
		t.Fatal(err)
	}
	v, err = eng.CallFunction(th, "f", Num(1))
	if err != nil || v.Num != 1 {
		t.Errorf("missing arg = %v, %v", v, err)
	}
	if eng.Steps() == 0 {
		t.Error("Steps not counted")
	}

	arr, err := MakeFloatArray(th, []float64{1.5, 2.5, 3})
	if err != nil || arr.Kind != KArr {
		t.Fatalf("MakeFloatArray = %v, %v", arr, err)
	}
	got, err := arrGet(th, arr.Arr, 1)
	if err != nil || got.Num != 2.5 {
		t.Errorf("element = %v, %v", got, err)
	}
}

func TestValueStringsAndTruthy(t *testing.T) {
	if Num(1e16).String() == "" || Num(0.5).String() != "0.5" {
		t.Error("number formatting")
	}
	if Bool(false).String() != "false" || Null().String() != "null" {
		t.Error("literal formatting")
	}
	if !strings.HasPrefix(Arr(0x100).String(), "[array") {
		t.Error("array formatting")
	}
	if !strings.HasPrefix(Obj(0x100).String(), "[object") {
		t.Error("object formatting")
	}
	if (Value{Kind: Kind(99)}).String() != "?" || Kind(99).String() != "?" {
		t.Error("unknown kind formatting")
	}
	for v, want := range map[*Value]bool{
		{Kind: KNull}:             false,
		{Kind: KNum, Num: 0}:      false,
		{Kind: KNum, Num: 2}:      true,
		{Kind: KStr, Str: ""}:     false,
		{Kind: KStr, Str: "x"}:    true,
		{Kind: KBool, Bool: true}: true,
		{Kind: KArr, Arr: 1}:      true,
		{Kind: KObj, Obj: 1}:      true,
		{Kind: Kind(99)}:          false,
	} {
		if v.Truthy() != want {
			t.Errorf("%v.Truthy() != %v", v, want)
		}
	}
}

func TestStringEdgeCases(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	cases := []struct {
		src  string
		want float64
	}{
		{`'single' == "single" ? 1 : 0;`, 1},
		{`"esc\n\t\r\\\"\0".length;`, 9},
		{`"abc" < "abd" ? 1 : 0;`, 1},
		{`"b" >= "a" ? 1 : 0;`, 1},
		{`("x" != "y") ? 1 : 0;`, 1},
		{`"sub".substr(3).length;`, 0},
		{`"long".substr(1, 99).length;`, 3},
	}
	for _, c := range cases {
		got, err := evalIn(t, prog, c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
	// Invalid string comparisons error rather than coerce.
	if _, err := evalIn(t, prog, `"a" < 5;`); err == nil {
		t.Error("string<number accepted")
	}
	if _, err := evalIn(t, prog, `"a" - "b";`); err == nil {
		t.Error("string subtraction accepted")
	}
	if _, err := evalIn(t, prog, `"sub".substr(5);`); err == nil {
		t.Error("substr past end accepted")
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	_, err := evalIn(t, prog, "\n\nvar = 5;")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("syntax error lacks line: %v", err)
	}
}
