package jsengine

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/vm"
)

// world builds a program in the given config with an installed engine.
func world(t *testing.T, cfg core.BuildConfig) (*core.Program, *Engine, *bytes.Buffer) {
	t.Helper()
	reg := ffi.NewRegistry()
	var out bytes.Buffer
	eng := NewEngine(Options{Output: &out})
	if err := eng.Install(reg, DefaultLib); err != nil {
		t.Fatal(err)
	}
	var prof *profile.Profile
	if cfg == core.Alloc || cfg == core.MPK {
		prof = profile.New()
	}
	prog, err := core.NewProgram(reg, cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	return prog, eng, &out
}

// evalIn runs src through the engine's gated eval by staging the source in
// a buffer the engine can read (MU).
func evalIn(t *testing.T, prog *core.Program, src string) (float64, error) {
	t.Helper()
	th := prog.Main()
	buf, err := prog.Allocator().UntrustedAlloc(uint64(len(src)))
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteBytes(buf, []byte(src)); err != nil {
		t.Fatal(err)
	}
	res, err := th.Call(DefaultLib, "eval", uint64(buf), uint64(len(src)))
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(res[0]), nil
}

func TestLanguageBasics(t *testing.T) {
	cases := []struct {
		name, src string
		want      float64
	}{
		{"arith", "3 + 4 * 2 - 1;", 10},
		{"precedence", "(3 + 4) * 2;", 14},
		{"mod", "17 % 5;", 2},
		{"div float", "7 / 2;", 3.5},
		{"bitops", "(0xff & 0x0f) | (1 << 4);", 31},
		{"xor shift", "(12 ^ 5) >> 1;", 4},
		{"compare chain", "(1 < 2) + (3 >= 3) + (4 == 4) + (5 != 5);", 3},
		{"strict eq", "(1 === 1) + (2 !== 3);", 2},
		{"logical", "(true && 5) + (false || 2);", 7},
		{"ternary", "1 ? 10 : 20;", 10},
		{"unary", "-(-5) + !0 + ~(-1);", 6},
		{"hex", "0x10 + 0X20;", 48},
		{"float literals", "1.5 + 2.5e1 + .5;", 27},
		{"var and assign", "var x = 2; x = x + 3; x;", 5},
		{"compound assign", "var x = 10; x += 5; x -= 3; x *= 2; x /= 4; x;", 6},
		{"prefix inc", "var i = 1; ++i; i;", 2},
		{"postfix dec", "var i = 3; i--; i;", 2},
		{"while", "var s = 0; var i = 0; while (i < 5) { s += i; i++; } s;", 10},
		{"for", "var s = 0; for (var i = 0; i < 10; i++) s += i; s;", 45},
		{"break", "var i = 0; while (true) { i++; if (i == 7) break; } i;", 7},
		{"continue", "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; s += i; } s;", 20},
		{"function", "function sq(x) { return x * x; } sq(9);", 81},
		{"recursion", "function fib(n) { if (n < 2) return n; return fib(n-1)+fib(n-2); } fib(12);", 144},
		{"builtin math", "floor(sqrt(17)) + abs(-2) + pow(2, 5);", 38},
		{"min max", "min(3, 5) + max(3, 5);", 8},
		{"nested call", "function a(x){return x+1;} function b(x){return a(x)*2;} b(4);", 10},
		{"locals shadow globals", "var x = 1; function f() { var x = 99; return x; } f() + x;", 100},
		{"globals from function", "var g = 0; function f() { g = 42; } f(); g;", 42},
		{"parseInt", "parseInt(\"123abc\") + parseInt(\"-40\");", 83},
		{"string length", "\"hello\".length;", 5},
		{"charCodeAt", "\"A\".charCodeAt(0);", 65},
		{"indexOf", "\"hello world\".indexOf(\"world\");", 6},
		{"comments", "// line\n/* block\nstill */ 7;", 7},
	}
	prog, eng, _ := world(t, core.Base)
	_ = eng
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := evalIn(t, prog, c.src)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if got != c.want {
				t.Errorf("= %v, want %v", got, c.want)
			}
		})
	}
}

func TestStringsAndPrint(t *testing.T) {
	prog, _, out := world(t, core.Base)
	_, err := evalIn(t, prog, `
		var s = "foo" + "bar";
		print(s, s.length, s.substr(1, 3));
		print(fromCharCode(104, 105));
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := "foobar 6 oob\nhi\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestArraysLiveInMU(t *testing.T) {
	prog, eng, _ := world(t, core.MPK)
	if _, err := evalIn(t, prog, "var a = new Array(10); a[3] = 1.5; a[3];"); err != nil {
		t.Fatal(err)
	}
	v, ok := eng.Global("a")
	if !ok || v.Kind != KArr {
		t.Fatalf("global a = %+v", v)
	}
	if c, ok := prog.Allocator().CompartmentOf(v.Arr); !ok || c != pkalloc.Untrusted {
		t.Errorf("array header in %v, want MU", c)
	}
}

func TestArrayOps(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	cases := []struct {
		name, src string
		want      float64
	}{
		{"fill and sum", "var a = new Array(100); for (var i = 0; i < 100; i++) a[i] = i; var s = 0; for (var j = 0; j < 100; j++) s += a[j]; s;", 4950},
		{"float elements", "var a = new Array(2); a[0] = 1.25; a[1] = 2.5; a[0] + a[1];", 3.75},
		{"int array truncates", "var a = new IntArray(1); a[0] = 3.7; a[0];", 3},
		{"array literal", "var a = [1, 2, 3]; a[0] + a[1] + a[2];", 6},
		{"length", "var a = new Array(7); a.length;", 7},
		{"push grows", "var a = new Array(0); for (var i = 0; i < 50; i++) a.push(i * 2); a[49] + a.length;", 148},
		{"compound element assign", "var a = [5]; a[0] += 3; a[0] *= 2; a[0];", 16},
		{"aliasing", "var a = [1]; var b = a; b[0] = 9; a[0];", 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := evalIn(t, prog, c.src)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if got != c.want {
				t.Errorf("= %v, want %v", got, c.want)
			}
		})
	}
}

func TestArrayBoundsEnforcedNormally(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	if _, err := evalIn(t, prog, "var a = new Array(4); a[4];"); err == nil {
		t.Error("in-spec bounds check missing")
	}
	if _, err := evalIn(t, prog, "var a = new Array(4); a[4] = 1;"); err == nil {
		t.Error("in-spec store bounds check missing")
	}
}

// TestPlantedBugGivesOOB: setLength inflates length without growing the
// buffer; subsequent accesses step past the allocation — the engine's
// memory-safety bug, contained (so far) within MU.
func TestPlantedBugGivesOOB(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	got, err := evalIn(t, prog, `
		var a = new IntArray(4);
		a.setLength(100);
		a[50] = 777;      // out of bounds, silently corrupting MU
		a[50];
	`)
	if err != nil {
		t.Fatalf("OOB through planted bug should not trap inside MU: %v", err)
	}
	if got != 777 {
		t.Errorf("OOB readback = %v", got)
	}
}

// exploitScript escalates the OOB into an arbitrary write, exactly like
// the CVE-2019-11707-based exploit in §5.4: spray two adjacent arrays,
// inflate the first's length, scan forward for the second's header tag,
// overwrite its backing pointer with the target address, then write
// through the second array.
func exploitScript(target uint64, value uint64) string {
	return `
		var a = new IntArray(8);
		var b = new IntArray(8);
		a.setLength(4096);
		var found = -1;
		for (var i = 8; i < 2000; i++) {
			if (a[i] == 0x4a53ce11) { found = i; break; }
		}
		if (found < 0) { print("header scan failed"); }
		a[found + 3] = ` + formatU64(target) + `;   // corrupt b.dataPtr
		b[0] = ` + formatU64(value) + `;            // arbitrary write
		b[0];
	`
}

func formatU64(v uint64) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, 18)
	out = append(out, '0', 'x')
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xf
		if d != 0 || started || shift == 0 {
			out = append(out, hexdigits[d])
			started = true
		}
	}
	return string(out)
}

// TestExploitArbitraryWriteWithoutProtection: in the base build (no
// gates), the escalated write lands in trusted memory — the paper's
// vulnerable-Servo result.
func TestExploitArbitraryWriteWithoutProtection(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	secret, err := prog.Allocator().Alloc(8) // trusted heap secret
	if err != nil {
		t.Fatal(err)
	}
	th := prog.Main()
	if err := th.VM.Store64(secret, 42); err != nil {
		t.Fatal(err)
	}
	got, err := evalIn(t, prog, exploitScript(uint64(secret), 1337))
	if err != nil {
		t.Fatalf("exploit run: %v", err)
	}
	if got != 1337 {
		t.Fatalf("exploit readback = %v (scan failed?)", got)
	}
	v, err := th.VM.Load64(secret)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1337 {
		t.Errorf("secret = %d, want corrupted to 1337", v)
	}
}

// TestExploitBlockedByPKRUSafe: same exploit, mpk build — the write to MT
// raises an MPK violation and the program dies, the paper's headline
// security result.
func TestExploitBlockedByPKRUSafe(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	secret, err := prog.Allocator().Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	th := prog.Main()
	if err := th.VM.Store64(secret, 42); err != nil {
		t.Fatal(err)
	}
	_, err = evalIn(t, prog, exploitScript(uint64(secret), 1337))
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("exploit should die on MPK violation, got %v", err)
	}
	if fault.Info.PKey != uint8(prog.Allocator().TrustedKey()) {
		t.Errorf("fault pkey = %d", fault.Info.PKey)
	}
	v, err := th.VM.Load64(secret)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("secret = %d, want intact 42", v)
	}
	// The exploit's intra-MU corruption still happened — compartmentaliza-
	// tion contains, it does not fix, the engine's bug.
	if prog.Main().VM.Stats().PKUFaults == 0 {
		t.Error("no PKU fault recorded")
	}
}

// TestExploitArbitraryReadBlocked: the read primitive (leaking MT data)
// is likewise blocked.
func TestExploitArbitraryReadBlocked(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	secret, _ := prog.Allocator().Alloc(8)
	th := prog.Main()
	if err := th.VM.Store64(secret, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	src := strings.Replace(exploitScript(uint64(secret), 0), "b[0] = 0x0;", "", 1) + "b[0];"
	_, err := evalIn(t, prog, src)
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("leak should fault, got %v", err)
	}
}

func TestHostFunctionReverseGate(t *testing.T) {
	reg := ffi.NewRegistry()
	eng := NewEngine()
	if err := eng.Install(reg, DefaultLib); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(reg, core.MPK, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := prog.Allocator().Alloc(8)
	if err := prog.Main().VM.Store64(secret, 55); err != nil {
		t.Fatal(err)
	}
	// Trusted binding that reads MT, registered as an exported T function.
	reg.MustLibrary("servo", ffi.Trusted).Define("get_secret", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		v, err := th.Load64(secret)
		return []uint64{v}, err
	})
	eng.RegisterHost("getSecret", func(th *ffi.Thread, _ []Value) (Value, error) {
		res, err := th.Call("servo", "get_secret")
		if err != nil {
			return Null(), err
		}
		return Num(float64(res[0])), nil
	})
	got, err := evalIn(t, prog, "getSecret();")
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("host call = %v", got)
	}
	if prog.Transitions() < 2 {
		t.Errorf("transitions = %d, want >= 2 (eval gate + reverse gate)", prog.Transitions())
	}
}

// TestEvalSourceInTrustedBufferPipeline: the script text itself is heap
// data flowing T->U. With an empty profile the engine cannot read it; a
// profiling run records the site; the enforced build serves it from MU.
func TestEvalSourceInTrustedBufferPipeline(t *testing.T) {
	reg := ffi.NewRegistry()
	eng := NewEngine()
	if err := eng.Install(reg, DefaultLib); err != nil {
		t.Fatal(err)
	}
	src := "6 * 7;"

	runWith := func(cfg core.BuildConfig, prof *profile.Profile) (*core.Program, float64, error) {
		prog, err := core.NewProgram(reg, cfg, prof)
		if err != nil {
			t.Fatal(err)
		}
		site := prog.Site("browser::load_script", 0, 0)
		buf, err := prog.AllocAt(site, uint64(len(src)))
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Main().VM.Write(buf, []byte(src)); err != nil {
			t.Fatal(err)
		}
		res, err := prog.Main().Call(DefaultLib, "eval", uint64(buf), uint64(len(src)))
		if err != nil {
			return prog, 0, err
		}
		return prog, math.Float64frombits(res[0]), nil
	}

	// Empty profile: the engine faults reading the source.
	_, _, err := runWith(core.MPK, profile.New())
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("unshared source buffer should fault, got %v", err)
	}

	// Profiling run records the site.
	prog2, v2, err := runWith(core.Profiling, nil)
	if err != nil || v2 != 42 {
		t.Fatalf("profiling run = %v, %v", v2, err)
	}
	prof, _ := prog2.RecordedProfile()
	if !prof.Contains(profile.AllocID{Func: "browser::load_script", Block: 0, Site: 0}) {
		t.Fatalf("profile %v missing script-source site", prof.IDs())
	}

	// Enforced with the profile: works.
	_, v3, err := runWith(core.MPK, prof)
	if err != nil || v3 != 42 {
		t.Errorf("enforced run = %v, %v", v3, err)
	}
}

func TestInvokeByID(t *testing.T) {
	prog, _, _ := world(t, core.MPK)
	if _, err := evalIn(t, prog, "function mul(a, b) { return a * b; }"); err != nil {
		t.Fatal(err)
	}
	th := prog.Main()
	name := "mul"
	nbuf, _ := prog.Allocator().UntrustedAlloc(uint64(len(name)))
	if err := th.WriteBytes(nbuf, []byte(name)); err != nil {
		t.Fatal(err)
	}
	res, err := th.Call(DefaultLib, "lookup", uint64(nbuf), uint64(len(name)))
	if err != nil || res[0] == 0 {
		t.Fatalf("lookup = %v, %v", res, err)
	}
	out, err := th.Call(DefaultLib, "invoke", res[0], math.Float64bits(6), math.Float64bits(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(out[0]); got != 42 {
		t.Errorf("invoke = %v", got)
	}
	if _, err := th.Call(DefaultLib, "invoke", 999); err == nil {
		t.Error("invoke of bogus id accepted")
	}
}

func TestSyntaxErrors(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	for _, src := range []string{
		"var ;", "function () {}", "if (x {}", "1 +;", "var a = [1,;",
		"\"unterminated", "/* unterminated", "@", "x ===;", "break", "5 = 3;",
	} {
		if _, err := evalIn(t, prog, src); err == nil {
			t.Errorf("accepted invalid script %q", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	for name, src := range map[string]string{
		"undefined var":   "zzz + 1;",
		"undefined func":  "nope();",
		"index non-array": "var x = 5; x[0];",
		"bad member":      "var x = 5; x.length;",
		"break in func":   "function f() { break; } f();",
		"string oob":      "\"ab\"[5];",
		"bad ctor":        "new Widget(1);",
	} {
		if _, err := evalIn(t, prog, src); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestStepLimit(t *testing.T) {
	reg := ffi.NewRegistry()
	eng := NewEngine(Options{StepLimit: 10_000})
	if err := eng.Install(reg, DefaultLib); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(reg, core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = evalIn(t, prog, "while (true) {}")
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("runaway script = %v, want step limit", err)
	}
}

func TestSeededRandomDeterministic(t *testing.T) {
	prog, _, _ := world(t, core.Base)
	a, err := evalIn(t, prog, "seededRandom(12345);")
	if err != nil {
		t.Fatal(err)
	}
	b, err := evalIn(t, prog, "seededRandom(12345);")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("seededRandom not deterministic: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Errorf("seededRandom out of range: %v", a)
	}
}

func TestValueStrings(t *testing.T) {
	for v, want := range map[*Value]string{
		{Kind: KNull}:             "null",
		{Kind: KNum, Num: 3}:      "3",
		{Kind: KNum, Num: 3.5}:    "3.5",
		{Kind: KBool, Bool: true}: "true",
		{Kind: KStr, Str: "hi"}:   "hi",
	} {
		if v.String() != want {
			t.Errorf("%+v.String() = %q, want %q", v, v.String(), want)
		}
	}
	if KArr.String() != "array" || KNum.String() != "number" {
		t.Error("kind names")
	}
}
