package jsengine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ffi"
)

// FuzzScript: arbitrary script text must never panic the engine — it
// either runs (within a tiny step budget) or fails with a syntax or
// runtime error. The engine executes over a real MPK-enforced program,
// so heap-touching scripts also exercise the checked-access path.
func FuzzScript(f *testing.F) {
	f.Add("1 + 2;")
	f.Add("var a = new Array(4); a[0] = 1.5; a[0];")
	f.Add("var o = {k: 1}; o.k += 2; o.k;")
	f.Add("function g(n) { if (n < 1) return 0; return g(n - 1); } g(3);")
	f.Add("for (var i = 0; i < 3; i++) print(i);")
	f.Add(`"str".charCodeAt(0) + "ab".substr(1).length;`)
	f.Add("var a = new IntArray(2); a.setLength(10); a[5];")
	f.Add("while (true) {}")
	f.Add("/* comment")
	f.Add("{};")
	f.Add("break;")

	reg := ffi.NewRegistry()
	eng := NewEngine(Options{StepLimit: 20_000})
	if err := eng.Install(reg, DefaultLib); err != nil {
		f.Fatal(err)
	}
	prog, err := core.NewProgram(reg, core.Base, nil)
	if err != nil {
		f.Fatal(err)
	}
	th := prog.Main()

	f.Fuzz(func(t *testing.T, src string) {
		eng.steps = 0 // fresh budget per input
		_, _ = eng.Eval(th, src)
	})
}
