package jsengine

// The mjs AST. Nodes carry their source line for runtime error reports.

type expr interface{ exprLine() int }

type numLit struct {
	val  float64
	line int
}

type strLit struct {
	val  string
	line int
}

type boolLit struct {
	val  bool
	line int
}

type nullLit struct{ line int }

type ident struct {
	name string
	line int
}

type arrayLit struct {
	elems []expr
	line  int
}

// objectLit is {k1: e1, k2: e2, ...}.
type objectLit struct {
	keys []string
	vals []expr
	line int
}

type unary struct {
	op   string // "-", "!", "~"
	x    expr
	line int
}

type binary struct {
	op   string
	x, y expr
	line int
}

// cond is the ternary ?: operator.
type cond struct {
	test, then, els expr
	line            int
}

type indexExpr struct {
	base, idx expr
	line      int
}

// memberCall is base.method(args) — used for array/string methods.
type memberCall struct {
	base   expr
	method string
	args   []expr
	line   int
}

// memberGet is base.prop — only .length is supported.
type memberGet struct {
	base expr
	prop string
	line int
}

type callExpr struct {
	callee string
	args   []expr
	line   int
}

// newExpr is `new Array(n)` / `new IntArray(n)` sugar.
type newExpr struct {
	class string
	args  []expr
	line  int
}

type assign struct {
	// exactly one of name / (target,idx) / (target,prop) is set
	name   string
	target expr   // indexed or member assignment base
	idx    expr   // index expression (indexed assignment)
	prop   string // property name (member assignment)
	op     string // "=", "+=", ...
	val    expr
	line   int
}

func (e *numLit) exprLine() int     { return e.line }
func (e *strLit) exprLine() int     { return e.line }
func (e *boolLit) exprLine() int    { return e.line }
func (e *nullLit) exprLine() int    { return e.line }
func (e *ident) exprLine() int      { return e.line }
func (e *arrayLit) exprLine() int   { return e.line }
func (e *objectLit) exprLine() int  { return e.line }
func (e *unary) exprLine() int      { return e.line }
func (e *binary) exprLine() int     { return e.line }
func (e *cond) exprLine() int       { return e.line }
func (e *indexExpr) exprLine() int  { return e.line }
func (e *memberCall) exprLine() int { return e.line }
func (e *memberGet) exprLine() int  { return e.line }
func (e *callExpr) exprLine() int   { return e.line }
func (e *newExpr) exprLine() int    { return e.line }
func (e *assign) exprLine() int     { return e.line }

type stmt interface{ stmtLine() int }

type exprStmt struct {
	e    expr
	line int
}

type varDecl struct {
	name string
	init expr // may be nil
	line int
}

type funcDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

type returnStmt struct {
	val  expr // may be nil
	line int
}

type ifStmt struct {
	test      expr
	then, els []stmt
	line      int
}

type whileStmt struct {
	test expr
	body []stmt
	line int
}

type forStmt struct {
	init stmt // may be nil
	test expr // may be nil
	post stmt // may be nil
	body []stmt
	line int
}

type breakStmt struct{ line int }

type continueStmt struct{ line int }

type blockStmt struct {
	body []stmt
	line int
}

func (s *exprStmt) stmtLine() int     { return s.line }
func (s *varDecl) stmtLine() int      { return s.line }
func (s *funcDecl) stmtLine() int     { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *blockStmt) stmtLine() int    { return s.line }
