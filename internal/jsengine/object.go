package jsengine

import (
	"fmt"

	"repro/internal/ffi"
	"repro/internal/vm"
)

// Objects live in the engine's MU heap like arrays do: a header plus a
// slot table of (key, type, payload) triples. Property names are interned
// Go-side (they are part of the engine's code/metadata, as SpiderMonkey's
// atoms table is) while all property *values* — including references to
// other objects and arrays — sit in simulated memory, where a corruption
// bug can reach them.
//
// Object header layout (offsets, little-endian uint64):
//
//	+0  tag      (tagObject)
//	+8  count    (live properties)
//	+16 capacity (slot table entries)
//	+24 slotsPtr (address of the slot table; 24 bytes per slot)
//
// Slot layout: +0 keyID, +8 typeTag (Kind), +16 payload.
const (
	tagObject uint64 = 0x4a530b1e

	objSlotSize = 24
	objMinCap   = 4
)

// internKey maps a property name to a stable id.
func (e *Engine) internKey(name string) uint64 {
	if id, ok := e.keyIDs[name]; ok {
		return id
	}
	id := uint64(len(e.keyNames))
	e.keyIDs[name] = id
	e.keyNames = append(e.keyNames, name)
	return id
}

// internString maps string contents to a stable id for in-memory storage.
func (e *Engine) internString(s string) uint64 {
	if id, ok := e.strIDs[s]; ok {
		return id
	}
	id := uint64(len(e.strVals))
	e.strIDs[s] = id
	e.strVals = append(e.strVals, s)
	return id
}

// encodeValue lowers a Value to a (type, payload) pair for slot storage.
func (e *Engine) encodeValue(v Value) (uint64, uint64) {
	switch v.Kind {
	case KNum:
		return uint64(KNum), f64bits(v.Num)
	case KBool:
		if v.Bool {
			return uint64(KBool), 1
		}
		return uint64(KBool), 0
	case KStr:
		return uint64(KStr), e.internString(v.Str)
	case KArr:
		return uint64(KArr), uint64(v.Arr)
	case KObj:
		return uint64(KObj), uint64(v.Obj)
	default:
		return uint64(KNull), 0
	}
}

// decodeValue raises a stored (type, payload) pair back to a Value.
func (e *Engine) decodeValue(typ, payload uint64) (Value, error) {
	switch Kind(typ) {
	case KNull:
		return Null(), nil
	case KNum:
		return Num(f64frombits(payload)), nil
	case KBool:
		return Bool(payload != 0), nil
	case KStr:
		if payload >= uint64(len(e.strVals)) {
			return Null(), fmt.Errorf("corrupt string id %d", payload)
		}
		return Str(e.strVals[payload]), nil
	case KArr:
		return Arr(vm.Addr(payload)), nil
	case KObj:
		return Obj(vm.Addr(payload)), nil
	default:
		return Null(), fmt.Errorf("corrupt value type %d", typ)
	}
}

// newObject allocates an empty object in the calling compartment's heap.
func newObject(th *ffi.Thread) (vm.Addr, error) {
	hdr, err := th.Malloc(arrHdrSize)
	if err != nil {
		return 0, err
	}
	slots, err := th.Malloc(objMinCap * objSlotSize)
	if err != nil {
		return 0, err
	}
	for off, v := range map[vm.Addr]uint64{
		offTag: tagObject, offLen: 0, offCap: objMinCap, offData: uint64(slots),
	} {
		if err := th.Store64(hdr+off, v); err != nil {
			return 0, err
		}
	}
	return hdr, nil
}

// objInfo reads and checks an object header.
func objInfo(th *ffi.Thread, hdr vm.Addr) (count, capacity uint64, slots vm.Addr, err error) {
	tag, err := th.Load64(hdr + offTag)
	if err != nil {
		return 0, 0, 0, err
	}
	if tag != tagObject {
		return 0, 0, 0, fmt.Errorf("not an object at %v (tag %#x)", hdr, tag)
	}
	if count, err = th.Load64(hdr + offLen); err != nil {
		return 0, 0, 0, err
	}
	if capacity, err = th.Load64(hdr + offCap); err != nil {
		return 0, 0, 0, err
	}
	d, err := th.Load64(hdr + offData)
	return count, capacity, vm.Addr(d), err
}

// objGet looks a property up by key id; missing properties yield null,
// matching JavaScript's undefined-as-absence semantics.
func (e *Engine) objGet(th *ffi.Thread, hdr vm.Addr, keyID uint64) (Value, error) {
	count, _, slots, err := objInfo(th, hdr)
	if err != nil {
		return Null(), err
	}
	for i := uint64(0); i < count; i++ {
		base := slots + vm.Addr(i*objSlotSize)
		k, err := th.Load64(base)
		if err != nil {
			return Null(), err
		}
		if k != keyID {
			continue
		}
		typ, err := th.Load64(base + 8)
		if err != nil {
			return Null(), err
		}
		payload, err := th.Load64(base + 16)
		if err != nil {
			return Null(), err
		}
		return e.decodeValue(typ, payload)
	}
	return Null(), nil
}

// objSet writes a property, growing the slot table as needed.
func (e *Engine) objSet(th *ffi.Thread, hdr vm.Addr, keyID uint64, v Value) error {
	count, capacity, slots, err := objInfo(th, hdr)
	if err != nil {
		return err
	}
	typ, payload := e.encodeValue(v)
	for i := uint64(0); i < count; i++ {
		base := slots + vm.Addr(i*objSlotSize)
		k, err := th.Load64(base)
		if err != nil {
			return err
		}
		if k == keyID {
			if err := th.Store64(base+8, typ); err != nil {
				return err
			}
			return th.Store64(base+16, payload)
		}
	}
	if count == capacity {
		newCap := capacity * 2
		newSlots, err := th.Malloc(newCap * objSlotSize)
		if err != nil {
			return err
		}
		old, err := th.ReadBytes(slots, int(count*objSlotSize))
		if err != nil {
			return err
		}
		if err := th.WriteBytes(newSlots, old); err != nil {
			return err
		}
		if err := th.Free(slots); err != nil {
			return err
		}
		if err := th.Store64(hdr+offData, uint64(newSlots)); err != nil {
			return err
		}
		if err := th.Store64(hdr+offCap, newCap); err != nil {
			return err
		}
		slots = newSlots
	}
	base := slots + vm.Addr(count*objSlotSize)
	if err := th.Store64(base, keyID); err != nil {
		return err
	}
	if err := th.Store64(base+8, typ); err != nil {
		return err
	}
	if err := th.Store64(base+16, payload); err != nil {
		return err
	}
	return th.Store64(hdr+offLen, count+1)
}

// objKeys returns the object's property names in insertion order.
func (e *Engine) objKeys(th *ffi.Thread, hdr vm.Addr) ([]string, error) {
	count, _, slots, err := objInfo(th, hdr)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		k, err := th.Load64(slots + vm.Addr(i*objSlotSize))
		if err != nil {
			return nil, err
		}
		if k < uint64(len(e.keyNames)) {
			out = append(out, e.keyNames[k])
		} else {
			out = append(out, fmt.Sprintf("<corrupt key %d>", k))
		}
	}
	return out, nil
}
