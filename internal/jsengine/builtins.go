package jsengine

import (
	"errors"
	"fmt"
	"math"
)

// builtin is a script-visible primitive implemented by the engine itself.
type builtin func(c *execCtx, args []Value) (Value, error)

func wantArgs(args []Value, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

func num1(name string, f func(float64) float64) builtin {
	return func(_ *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 1, name); err != nil {
			return Null(), err
		}
		return Num(f(args[0].Num)), nil
	}
}

func num2(name string, f func(a, b float64) float64) builtin {
	return func(_ *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 2, name); err != nil {
			return Null(), err
		}
		return Num(f(args[0].Num, args[1].Num)), nil
	}
}

// builtins is the engine's global primitive table: math (the Math.*
// surface the benchmark kernels use), string helpers, array constructors
// and print.
var builtins = map[string]builtin{
	"sqrt":  num1("sqrt", math.Sqrt),
	"floor": num1("floor", math.Floor),
	"ceil":  num1("ceil", math.Ceil),
	"round": num1("round", math.Round),
	"abs":   num1("abs", math.Abs),
	"sin":   num1("sin", math.Sin),
	"cos":   num1("cos", math.Cos),
	"tan":   num1("tan", math.Tan),
	"atan":  num1("atan", math.Atan),
	"exp":   num1("exp", math.Exp),
	"log":   num1("log", math.Log),
	"pow":   num2("pow", math.Pow),
	"min":   num2("min", math.Min),
	"max":   num2("max", math.Max),
	"atan2": num2("atan2", math.Atan2),

	"isNaN": func(_ *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 1, "isNaN"); err != nil {
			return Null(), err
		}
		return Bool(args[0].Kind == KNum && math.IsNaN(args[0].Num)), nil
	},

	"print": func(c *execCtx, args []Value) (Value, error) {
		for i, a := range args {
			if i > 0 {
				fmt.Fprint(c.eng.out, " ")
			}
			fmt.Fprint(c.eng.out, a.String())
		}
		fmt.Fprintln(c.eng.out)
		return Null(), nil
	},

	// Array(n) and IntArray(n) — constructor-call forms of `new`.
	"Array": func(c *execCtx, args []Value) (Value, error) {
		n := uint64(0)
		if len(args) > 0 {
			n = uint64(int64(args[0].Num))
		}
		hdr, err := newArray(c.th, tagFloatArr, n)
		if err != nil {
			return Null(), err
		}
		return Arr(hdr), nil
	},
	"IntArray": func(c *execCtx, args []Value) (Value, error) {
		n := uint64(0)
		if len(args) > 0 {
			n = uint64(int64(args[0].Num))
		}
		hdr, err := newArray(c.th, tagIntArr, n)
		if err != nil {
			return Null(), err
		}
		return Arr(hdr), nil
	},

	"fromCharCode": func(_ *execCtx, args []Value) (Value, error) {
		buf := make([]byte, len(args))
		for i, a := range args {
			buf[i] = byte(int64(a.Num))
		}
		return Str(string(buf)), nil
	},

	"parseInt": func(_ *execCtx, args []Value) (Value, error) {
		if len(args) == 0 {
			return Num(math.NaN()), nil
		}
		if args[0].Kind == KNum {
			return Num(math.Trunc(args[0].Num)), nil
		}
		var v float64
		var neg bool
		s := args[0].Str
		for i := 0; i < len(s); i++ {
			if i == 0 && (s[i] == '-' || s[i] == '+') {
				neg = s[i] == '-'
				continue
			}
			if s[i] < '0' || s[i] > '9' {
				break
			}
			v = v*10 + float64(s[i]-'0')
		}
		if neg {
			v = -v
		}
		return Num(v), nil
	},

	// seededRandom(state) returns a deterministic pseudo-random value in
	// [0,1) from an integer state the script threads through; scripts that
	// need randomness use it to stay reproducible across configurations.
	"seededRandom": func(_ *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 1, "seededRandom"); err != nil {
			return Null(), err
		}
		s := uint64(int64(args[0].Num))
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return Num(float64(s%1_000_000) / 1_000_000), nil
	},
	"nextSeed": func(_ *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 1, "nextSeed"); err != nil {
			return Null(), err
		}
		s := uint64(int64(args[0].Num))
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return Num(float64(s % (1 << 52))), nil
	},

	"keyCount": func(c *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 1, "keyCount"); err != nil {
			return Null(), err
		}
		if args[0].Kind != KObj {
			return Null(), errors.New("keyCount expects an object")
		}
		count, _, _, err := objInfo(c.th, args[0].Obj)
		if err != nil {
			return Null(), err
		}
		return Num(float64(count)), nil
	},

	"hasKey": func(c *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 2, "hasKey"); err != nil {
			return Null(), err
		}
		if args[0].Kind != KObj || args[1].Kind != KStr {
			return Null(), errors.New("hasKey expects (object, string)")
		}
		keys, err := c.eng.objKeys(c.th, args[0].Obj)
		if err != nil {
			return Null(), err
		}
		for _, k := range keys {
			if k == args[1].Str {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	},

	"strlen": func(_ *execCtx, args []Value) (Value, error) {
		if err := wantArgs(args, 1, "strlen"); err != nil {
			return Null(), err
		}
		if args[0].Kind != KStr {
			return Null(), errors.New("strlen expects a string")
		}
		return Num(float64(len(args[0].Str))), nil
	},
}
