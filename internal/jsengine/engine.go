package jsengine

import (
	"fmt"
	"math"

	"repro/internal/ffi"
	"repro/internal/vm"
)

// DefaultLib is the library name the engine installs under — the analogue
// of the mozjs crate the paper annotates as untrusted.
const DefaultLib = "mozjs"

// Install registers the engine's FFI surface as an *untrusted* library —
// the four-lines-of-annotation step of the paper — so that every call into
// the engine passes a forward gate and the engine runs without access to
// MT. The exposed word-based ABI:
//
//	eval(ptr, len) -> f64bits   parse+run script text read from [ptr,len)
//	lookup(ptr, len) -> id+1    resolve a defined function (0 = missing)
//	invoke(id, args...) -> f64bits   call function with numeric args
//
// Script source is read through the engine's checked view of memory: a
// source buffer allocated in MT is unreadable from inside the gate, which
// is exactly the data flow PKRU-Safe's profiler must discover.
func (e *Engine) Install(reg *ffi.Registry, lib string) error {
	if lib == "" {
		lib = DefaultLib
	}
	l, err := reg.Library(lib, ffi.Untrusted)
	if err != nil {
		return err
	}
	l.Define("eval", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("jsengine: eval(ptr, len) needs 2 args")
		}
		src, err := th.ReadBytes(vm.Addr(args[0]), int(args[1]))
		if err != nil {
			return nil, err
		}
		v, err := e.Eval(th, string(src))
		if err != nil {
			return nil, err
		}
		return []uint64{math.Float64bits(v.Num)}, nil
	})
	l.Define("lookup", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("jsengine: lookup(ptr, len) needs 2 args")
		}
		name, err := th.ReadBytes(vm.Addr(args[0]), int(args[1]))
		if err != nil {
			return nil, err
		}
		id, ok := e.FunctionID(string(name))
		if !ok {
			return []uint64{0}, nil
		}
		return []uint64{uint64(id) + 1}, nil
	})
	l.Define("invoke", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("jsengine: invoke(id, ...) needs at least 1 arg")
		}
		id := args[0]
		if id == 0 || id > uint64(len(e.fnIDs)) {
			return nil, fmt.Errorf("jsengine: invoke of invalid function id %d", id)
		}
		vals := make([]Value, len(args)-1)
		for i, raw := range args[1:] {
			vals[i] = Num(math.Float64frombits(raw))
		}
		ctx := &execCtx{eng: e, th: th}
		v, err := ctx.invoke(e.fnIDs[id-1], vals)
		if err != nil {
			return nil, err
		}
		return []uint64{math.Float64bits(v.Num)}, nil
	})
	return nil
}
