package jsengine

import (
	"fmt"
	"math"

	"repro/internal/ffi"
	"repro/internal/vm"
)

// Kind tags a script value.
type Kind uint8

const (
	KNull Kind = iota
	KNum
	KBool
	KStr
	KArr
	KObj
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KNum:
		return "number"
	case KBool:
		return "boolean"
	case KStr:
		return "string"
	case KArr:
		return "array"
	case KObj:
		return "object"
	default:
		return "?"
	}
}

// Value is one script value. Numbers, booleans and strings live Go-side
// (they are immutable); arrays are handles to headers in the engine's MU
// heap, reached only through the PKRU-checked thread view.
type Value struct {
	Kind Kind
	Num  float64
	Bool bool
	Str  string
	Arr  vm.Addr // array header address (KArr)
	Obj  vm.Addr // object header address (KObj)
}

// Convenience constructors.
func Null() Value           { return Value{Kind: KNull} }
func Num(v float64) Value   { return Value{Kind: KNum, Num: v} }
func Bool(v bool) Value     { return Value{Kind: KBool, Bool: v} }
func Str(s string) Value    { return Value{Kind: KStr, Str: s} }
func Arr(hdr vm.Addr) Value { return Value{Kind: KArr, Arr: hdr} }
func Obj(hdr vm.Addr) Value { return Value{Kind: KObj, Obj: hdr} }

// f64bits / f64frombits are local aliases used by object slot encoding.
func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Truthy follows JavaScript coercion for the kinds we support.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KNum:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KBool:
		return v.Bool
	case KStr:
		return v.Str != ""
	case KArr, KObj:
		return true
	default:
		return false
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "null"
	case KNum:
		if v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			return fmt.Sprintf("%d", int64(v.Num))
		}
		return fmt.Sprintf("%g", v.Num)
	case KBool:
		return fmt.Sprintf("%t", v.Bool)
	case KStr:
		return v.Str
	case KArr:
		return fmt.Sprintf("[array @%v]", v.Arr)
	case KObj:
		return fmt.Sprintf("[object @%v]", v.Obj)
	default:
		return "?"
	}
}

// Array header layout in MU memory. The header is itself heap data the
// engine manipulates through checked loads and stores — so a corrupted
// length or backing pointer behaves exactly as it would in a real engine.
//
//	+0  tag      (tagFloatArr for number arrays, tagIntArr for int arrays)
//	+8  length   (elements)
//	+16 capacity (elements)
//	+24 dataPtr  (address of the element buffer; 8 bytes per element)
const (
	arrHdrSize = 32

	offTag  = 0
	offLen  = 8
	offCap  = 16
	offData = 24

	// tagFloatArr marks arrays whose elements are float64 bit patterns.
	tagFloatArr uint64 = 0x4a530f64 // "JS\x0ff64"
	// tagIntArr marks arrays whose elements are raw uint64 values.
	tagIntArr uint64 = 0x4a53ce11
)

// RuntimeError is a script-level runtime failure.
type RuntimeError struct {
	Line int
	Err  error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("jsengine: line %d: %v", e.Line, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// MakeFloatArray allocates a script-visible number array populated with
// elems, for host bindings that return sequences (e.g. query results).
// It allocates in the calling compartment's heap, MU when invoked from a
// host function running inside the engine's gate.
func MakeFloatArray(th *ffi.Thread, elems []float64) (Value, error) {
	hdr, err := newArray(th, tagFloatArr, uint64(len(elems)))
	if err != nil {
		return Null(), err
	}
	for i, v := range elems {
		if err := arrSet(th, hdr, uint64(i), Num(v)); err != nil {
			return Null(), err
		}
	}
	return Arr(hdr), nil
}

// newArray allocates an array of n zeroed elements in the calling
// compartment's heap (MU when the engine runs behind its gate).
func newArray(th *ffi.Thread, tag uint64, n uint64) (vm.Addr, error) {
	hdr, err := th.Malloc(arrHdrSize)
	if err != nil {
		return 0, err
	}
	capElems := n
	if capElems < 4 {
		capElems = 4
	}
	data, err := th.Malloc(capElems * 8)
	if err != nil {
		return 0, err
	}
	// Zero the element buffer (freshly mapped pages are zero, but recycled
	// chunks are not).
	zero := make([]byte, capElems*8)
	if err := th.WriteBytes(data, zero); err != nil {
		return 0, err
	}
	for off, v := range map[vm.Addr]uint64{
		offTag: tag, offLen: n, offCap: capElems, offData: uint64(data),
	} {
		if err := th.Store64(hdr+off, v); err != nil {
			return 0, err
		}
	}
	return hdr, nil
}

// arrInfo reads an array header.
func arrInfo(th *ffi.Thread, hdr vm.Addr) (tag, length, capacity uint64, data vm.Addr, err error) {
	if tag, err = th.Load64(hdr + offTag); err != nil {
		return
	}
	if length, err = th.Load64(hdr + offLen); err != nil {
		return
	}
	if capacity, err = th.Load64(hdr + offCap); err != nil {
		return
	}
	var d uint64
	if d, err = th.Load64(hdr + offData); err != nil {
		return
	}
	data = vm.Addr(d)
	if tag != tagFloatArr && tag != tagIntArr {
		err = fmt.Errorf("not an array object at %v (tag %#x)", hdr, tag)
	}
	return
}

// arrGet loads element i, bounds-checked against the header's length —
// and only its length. After the planted setLength bug inflates the
// length this check passes for out-of-bounds indices, which is the CVE
// analogue's read/write primitive.
func arrGet(th *ffi.Thread, hdr vm.Addr, i uint64) (Value, error) {
	tag, length, _, data, err := arrInfo(th, hdr)
	if err != nil {
		return Null(), err
	}
	if i >= length {
		return Null(), fmt.Errorf("index %d out of range (len %d)", i, length)
	}
	raw, err := th.Load64(data + vm.Addr(i*8))
	if err != nil {
		return Null(), err
	}
	if tag == tagFloatArr {
		return Num(math.Float64frombits(raw)), nil
	}
	return Num(float64(raw)), nil
}

// arrSet stores element i with the same length-only bounds check.
func arrSet(th *ffi.Thread, hdr vm.Addr, i uint64, v Value) error {
	tag, length, _, data, err := arrInfo(th, hdr)
	if err != nil {
		return err
	}
	if i >= length {
		return fmt.Errorf("index %d out of range (len %d)", i, length)
	}
	var raw uint64
	if tag == tagFloatArr {
		raw = math.Float64bits(v.Num)
	} else {
		raw = uint64(int64(v.Num))
	}
	return th.Store64(data+vm.Addr(i*8), raw)
}

// arrPush appends, growing the buffer when capacity is exhausted. This is
// the *correct* length-update path, for contrast with setLength.
func arrPush(th *ffi.Thread, hdr vm.Addr, v Value) error {
	tag, length, capacity, data, err := arrInfo(th, hdr)
	if err != nil {
		return err
	}
	if length == capacity {
		newCap := capacity * 2
		newData, err := th.Malloc(newCap * 8)
		if err != nil {
			return err
		}
		old, err := th.ReadBytes(data, int(length*8))
		if err != nil {
			return err
		}
		if err := th.WriteBytes(newData, old); err != nil {
			return err
		}
		zero := make([]byte, (newCap-length)*8)
		if err := th.WriteBytes(newData+vm.Addr(length*8), zero); err != nil {
			return err
		}
		if err := th.Free(data); err != nil {
			return err
		}
		if err := th.Store64(hdr+offData, uint64(newData)); err != nil {
			return err
		}
		if err := th.Store64(hdr+offCap, newCap); err != nil {
			return err
		}
		data = newData
	}
	var raw uint64
	if tag == tagFloatArr {
		raw = math.Float64bits(v.Num)
	} else {
		raw = uint64(int64(v.Num))
	}
	if err := th.Store64(data+vm.Addr(length*8), raw); err != nil {
		return err
	}
	return th.Store64(hdr+offLen, length+1)
}

// arrSetLength is the engine's PLANTED VULNERABILITY, the analogue of the
// type-confusion CVE-2019-11707 the paper exploits: it writes the new
// length without revalidating the backing capacity, so subsequent element
// accesses that bounds-check against the (now inflated) length read and
// write past the buffer — an out-of-bounds primitive in MU that exploit
// scripts escalate to arbitrary reads/writes.
func arrSetLength(th *ffi.Thread, hdr vm.Addr, n uint64) error {
	if _, _, _, _, err := arrInfo(th, hdr); err != nil {
		return err
	}
	return th.Store64(hdr+offLen, n) // BUG: no capacity re-check
}
