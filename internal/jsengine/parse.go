package jsengine

import "fmt"

type parser struct {
	toks []token
	pos  int
}

func parseScript(src string) ([]stmt, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	var prog []stmt
	for !p.atEOF() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog = append(prog, s)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

// accept consumes the punctuator or keyword if present.
func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %q", text, p.cur().String())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.String())
	}
	p.advance()
	return t.text, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && t.text == "var":
		s, err := p.varStatement()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	case t.kind == tokKeyword && t.text == "function":
		return p.funcStatement()
	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		s := &returnStmt{line: t.line}
		if !p.accept(";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.val = e
			return s, p.expect(";")
		}
		return s, nil
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStatement()
	case t.kind == tokKeyword && t.text == "while":
		return p.whileStatement()
	case t.kind == tokKeyword && t.text == "for":
		return p.forStatement()
	case t.kind == tokKeyword && t.text == "break":
		p.advance()
		return &breakStmt{line: t.line}, p.expect(";")
	case t.kind == tokKeyword && t.text == "continue":
		p.advance()
		return &continueStmt{line: t.line}, p.expect(";")
	case t.kind == tokPunct && t.text == "{":
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &blockStmt{body: body, line: t.line}, nil
	case t.kind == tokPunct && t.text == ";":
		p.advance()
		return &blockStmt{line: t.line}, nil
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &exprStmt{e: e, line: t.line}, p.expect(";")
	}
}

// varStatement parses "var name [= expr]" without the trailing semicolon
// (the for-loop initializer reuses it).
func (p *parser) varStatement() (stmt, error) {
	line := p.cur().line
	p.advance() // var
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &varDecl{name: name, line: line}
	if p.accept("=") {
		if d.init, err = p.expression(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) funcStatement() (stmt, error) {
	line := p.cur().line
	p.advance() // function
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.accept(")") {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, pn)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcDecl{name: name, params: params, body: body, line: line}, nil
}

func (p *parser) ifStatement() (stmt, error) {
	line := p.cur().line
	p.advance() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{test: test, then: then, line: line}
	if p.accept("else") {
		if s.els, err = p.blockOrSingle(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) whileStatement() (stmt, error) {
	line := p.cur().line
	p.advance() // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &whileStmt{test: test, body: body, line: line}, nil
}

func (p *parser) forStatement() (stmt, error) {
	line := p.cur().line
	p.advance() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	s := &forStmt{line: line}
	if !p.accept(";") {
		var err error
		if p.cur().kind == tokKeyword && p.cur().text == "var" {
			s.init, err = p.varStatement()
		} else {
			var e expr
			e, err = p.expression()
			s.init = &exprStmt{e: e, line: line}
		}
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		var err error
		if s.test, err = p.expression(); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.cur().text != ")" {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.post = &exprStmt{e: e, line: line}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	s.body = body
	return s, nil
}

func (p *parser) block() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var body []stmt
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}

func (p *parser) blockOrSingle() ([]stmt, error) {
	if p.cur().text == "{" && p.cur().kind == tokPunct {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []stmt{s}, nil
}

// Expression parsing: assignment > ternary > binary (precedence climbing)
// > unary > postfix (index / member) > primary.

func (p *parser) expression() (expr, error) { return p.assignment() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"|=": true, "&=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignment() (expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct && assignOps[t.text] {
		p.advance()
		rhs, err := p.assignment()
		if err != nil {
			return nil, err
		}
		switch target := lhs.(type) {
		case *ident:
			return &assign{name: target.name, op: t.text, val: rhs, line: t.line}, nil
		case *indexExpr:
			return &assign{target: target.base, idx: target.idx, op: t.text, val: rhs, line: t.line}, nil
		case *memberGet:
			return &assign{target: target.base, prop: target.prop, op: t.text, val: rhs, line: t.line}, nil
		default:
			return nil, &SyntaxError{Line: t.line, Msg: "invalid assignment target"}
		}
	}
	return lhs, nil
}

func (p *parser) ternary() (expr, error) {
	test, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct && p.cur().text == "?" {
		line := p.advance().line
		then, err := p.assignment()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		els, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return &cond{test: test, then: then, els: els, line: line}, nil
	}
	return test, nil
}

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) (expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, isBin := binPrec[t.text]
		if t.kind != tokPunct || !isBin || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "===" {
			op = "=="
		}
		if op == "!==" {
			op = "!="
		}
		lhs = &binary{op: op, x: lhs, y: rhs, line: t.line}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~" || t.text == "+") {
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &unary{op: t.text, x: x, line: t.line}, nil
	}
	if t.kind == tokPunct && (t.text == "++" || t.text == "--") {
		// Prefix increment: ++x desugars to (x += 1).
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		op := "+="
		if t.text == "--" {
			op = "-="
		}
		switch target := x.(type) {
		case *ident:
			return &assign{name: target.name, op: op, val: &numLit{val: 1, line: t.line}, line: t.line}, nil
		case *indexExpr:
			return &assign{target: target.base, idx: target.idx, op: op, val: &numLit{val: 1, line: t.line}, line: t.line}, nil
		default:
			return nil, &SyntaxError{Line: t.line, Msg: "invalid increment target"}
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokPunct && t.text == "[":
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &indexExpr{base: e, idx: idx, line: t.line}
		case t.kind == tokPunct && t.text == ".":
			p.advance()
			prop, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.cur().text == "(" && p.cur().kind == tokPunct {
				args, err := p.argList()
				if err != nil {
					return nil, err
				}
				e = &memberCall{base: e, method: prop, args: args, line: t.line}
			} else {
				e = &memberGet{base: e, prop: prop, line: t.line}
			}
		case t.kind == tokPunct && (t.text == "++" || t.text == "--"):
			// Postfix increment as statement-level sugar: value semantics
			// of the pre-increment form (sufficient for our scripts' use
			// in for-loop post clauses).
			p.advance()
			op := "+="
			if t.text == "--" {
				op = "-="
			}
			switch target := e.(type) {
			case *ident:
				e = &assign{name: target.name, op: op, val: &numLit{val: 1, line: t.line}, line: t.line}
			case *indexExpr:
				e = &assign{target: target.base, idx: target.idx, op: op, val: &numLit{val: 1, line: t.line}, line: t.line}
			default:
				return nil, &SyntaxError{Line: t.line, Msg: "invalid increment target"}
			}
		default:
			return e, nil
		}
	}
}

func (p *parser) argList() ([]expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []expr
	for !p.accept(")") {
		if len(args) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		a, err := p.expression()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

// objectLiteral parses {k: v, "k2": v2, ...}.
func (p *parser) objectLiteral() (expr, error) {
	line := p.cur().line
	p.advance() // '{'
	lit := &objectLit{line: line}
	for !p.accept("}") {
		if len(lit.keys) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		t := p.cur()
		var key string
		switch {
		case t.kind == tokIdent || t.kind == tokKeyword:
			key = t.text
			p.advance()
		case t.kind == tokStr:
			key = t.text
			p.advance()
		default:
			return nil, p.errf("expected property name, got %q", t.String())
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		lit.keys = append(lit.keys, key)
		lit.vals = append(lit.vals, v)
	}
	return lit, nil
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNum:
		p.advance()
		return &numLit{val: t.num, line: t.line}, nil
	case t.kind == tokStr:
		p.advance()
		return &strLit{val: t.text, line: t.line}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.advance()
		return &boolLit{val: t.text == "true", line: t.line}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.advance()
		return &nullLit{line: t.line}, nil
	case t.kind == tokKeyword && t.text == "new":
		p.advance()
		class, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		return &newExpr{class: class, args: args, line: t.line}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &callExpr{callee: t.text, args: args, line: t.line}, nil
		}
		return &ident{name: t.text, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.kind == tokPunct && t.text == "{":
		return p.objectLiteral()
	case t.kind == tokPunct && t.text == "[":
		p.advance()
		lit := &arrayLit{line: t.line}
		for !p.accept("]") {
			if len(lit.elems) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			lit.elems = append(lit.elems, e)
		}
		return lit, nil
	default:
		return nil, p.errf("unexpected token %q", t.String())
	}
}
