// Package jsengine is the untrusted JavaScript engine of the evaluation:
// a from-scratch interpreter for a JavaScript subset ("mjs") standing in
// for SpiderMonkey. Script-visible arrays are backed by buffers in the
// shared pool MU and accessed exclusively through the PKRU-checked thread
// view, so the engine is subject to exactly the memory discipline the
// paper enforces on unsafe library code.
//
// The engine deliberately contains one memory-safety bug — the analogue
// of CVE-2019-11707 used in the paper's security evaluation (§5.4): the
// Array setLength builtin updates an array's length without revalidating
// its capacity, yielding an out-of-bounds primitive inside MU that an
// exploit script can escalate (by corrupting a neighbouring array's
// backing pointer) into arbitrary reads and writes. With PKRU-Safe's
// enforcement on, the escalated write into trusted memory MT faults.
package jsengine

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNum
	tokStr
	tokIdent
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokNum:
		return t.text
	case tokStr:
		return strconv.Quote(t.text)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"while": true, "for": true, "true": true, "false": true, "null": true,
	"break": true, "continue": true, "new": true,
}

// SyntaxError reports a script syntax error.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsengine: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// punctuators, longest first so the lexer is greedy.
var puncts = []string{
	"===", "!==", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", "?", ":",
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, &SyntaxError{Line: l.line, Msg: "unterminated block comment"}
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			goto tokenStart
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

tokenStart:
	c := l.src[l.pos]
	start, line := l.pos, l.line
	switch {
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber(start, line)
	case c == '"' || c == '\'':
		return l.lexString(c, line)
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line}, nil
	default:
		for _, p := range puncts {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += len(p)
				return token{kind: tokPunct, text: p, line: line}, nil
			}
		}
		return token{}, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

func (l *lexer) lexNumber(start, line int) (token, error) {
	isHex := strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X")
	if isHex {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		v, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return token{}, &SyntaxError{Line: line, Msg: "bad hex literal " + l.src[start:l.pos]}
		}
		return token{kind: tokNum, text: l.src[start:l.pos], num: float64(v), line: line}, nil
	}
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
		((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
		l.pos++
	}
	v, err := strconv.ParseFloat(l.src[start:l.pos], 64)
	if err != nil {
		return token{}, &SyntaxError{Line: line, Msg: "bad number literal " + l.src[start:l.pos]}
	}
	return token{kind: tokNum, text: l.src[start:l.pos], num: v, line: line}, nil
}

func (l *lexer) lexString(quote byte, line int) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokStr, text: b.String(), line: line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				break
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"', '\'':
				b.WriteByte(e)
			case '0':
				b.WriteByte(0)
			default:
				return token{}, &SyntaxError{Line: l.line, Msg: fmt.Sprintf("unknown escape \\%c", e)}
			}
			l.pos++
		case '\n':
			return token{}, &SyntaxError{Line: line, Msg: "unterminated string"}
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, &SyntaxError{Line: line, Msg: "unterminated string"}
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' }

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool { return isIdentStart(r) || unicode.IsDigit(r) }
