package jsengine

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/ffi"
)

// HostFunc is a binding the embedder (the browser) registers with the
// engine. It executes in the engine's compartment — with untrusted rights
// when the engine runs behind its gate — and reaches back into trusted
// code via th.Call, which applies the reverse gate.
type HostFunc func(th *ffi.Thread, args []Value) (Value, error)

// ErrStepLimit is returned when a script exceeds its execution budget.
var ErrStepLimit = errors.New("jsengine: script step limit exceeded")

// Engine is one JavaScript context: global bindings, top-level functions
// and host bindings. The engine object itself lives Go-side (it is the
// engine's *code*); all script-visible heap data lives in simulated MU
// memory.
type Engine struct {
	globals map[string]Value
	funcs   map[string]*funcDecl
	fnIDs   []*funcDecl // invoke-by-id table for the FFI surface
	hosts   map[string]HostFunc
	out     io.Writer

	// Property-name and string intern tables (the atoms table); ids are
	// what object slot tables in simulated memory refer to.
	keyIDs   map[string]uint64
	keyNames []string
	strIDs   map[string]uint64
	strVals  []string

	steps     uint64
	stepLimit uint64
}

// Options tunes a new engine.
type Options struct {
	// Output receives print() output (default io.Discard).
	Output io.Writer
	// StepLimit bounds evaluated AST nodes per engine (default 200M).
	StepLimit uint64
}

// NewEngine creates an empty context.
func NewEngine(opts ...Options) *Engine {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.Output == nil {
		opt.Output = io.Discard
	}
	if opt.StepLimit == 0 {
		opt.StepLimit = 200_000_000
	}
	return &Engine{
		globals:   make(map[string]Value),
		funcs:     make(map[string]*funcDecl),
		hosts:     make(map[string]HostFunc),
		keyIDs:    make(map[string]uint64),
		strIDs:    make(map[string]uint64),
		out:       opt.Output,
		stepLimit: opt.StepLimit,
	}
}

// RegisterHost binds a host function visible to scripts as name(...).
func (e *Engine) RegisterHost(name string, fn HostFunc) { e.hosts[name] = fn }

// Steps returns the number of AST nodes evaluated so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Global returns a global binding (for tests and embedders).
func (e *Engine) Global(name string) (Value, bool) {
	v, ok := e.globals[name]
	return v, ok
}

// Eval parses and executes src on the given thread, returning the value of
// the last expression statement.
func (e *Engine) Eval(th *ffi.Thread, src string) (Value, error) {
	prog, err := parseScript(src)
	if err != nil {
		return Null(), err
	}
	// Hoist function declarations.
	for _, s := range prog {
		if fd, ok := s.(*funcDecl); ok {
			if _, exists := e.funcs[fd.name]; !exists {
				e.fnIDs = append(e.fnIDs, fd)
			}
			e.funcs[fd.name] = fd
		}
	}
	ctx := &execCtx{eng: e, th: th}
	var last Value
	for _, s := range prog {
		if _, ok := s.(*funcDecl); ok {
			continue
		}
		v, ctl, err := ctx.stmt(s, nil)
		if err != nil {
			return Null(), err
		}
		if ctl != ctlNone {
			return Null(), &RuntimeError{Line: s.stmtLine(), Err: fmt.Errorf("%v outside function/loop", ctl)}
		}
		last = v
	}
	return last, nil
}

// CallFunction invokes a previously defined top-level function.
func (e *Engine) CallFunction(th *ffi.Thread, name string, args ...Value) (Value, error) {
	fd, ok := e.funcs[name]
	if !ok {
		return Null(), fmt.Errorf("jsengine: no function %q", name)
	}
	ctx := &execCtx{eng: e, th: th}
	return ctx.invoke(fd, args)
}

// FunctionID returns the invoke-by-id handle for a defined function.
func (e *Engine) FunctionID(name string) (int, bool) {
	for i, fd := range e.fnIDs {
		if fd.name == name {
			return i, true
		}
	}
	return 0, false
}

// control-flow signals threaded through statement execution.
type ctl uint8

const (
	ctlNone ctl = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

func (c ctl) String() string {
	switch c {
	case ctlReturn:
		return "return"
	case ctlBreak:
		return "break"
	case ctlContinue:
		return "continue"
	default:
		return "none"
	}
}

type execCtx struct {
	eng *Engine
	th  *ffi.Thread
}

func (c *execCtx) tick(line int) error {
	c.eng.steps++
	if c.eng.steps > c.eng.stepLimit {
		return &RuntimeError{Line: line, Err: ErrStepLimit}
	}
	return nil
}

// locals is a function's local frame; nil means top level (globals only).
type locals map[string]Value

func (c *execCtx) lookup(name string, env locals) (Value, bool) {
	if env != nil {
		if v, ok := env[name]; ok {
			return v, true
		}
	}
	v, ok := c.eng.globals[name]
	return v, ok
}

func (c *execCtx) bind(name string, v Value, env locals) {
	if env != nil {
		if _, ok := env[name]; ok {
			env[name] = v
			return
		}
	}
	c.eng.globals[name] = v
}

func (c *execCtx) declare(name string, v Value, env locals) {
	if env != nil {
		env[name] = v
		return
	}
	c.eng.globals[name] = v
}

func (c *execCtx) invoke(fd *funcDecl, args []Value) (Value, error) {
	env := make(locals, len(fd.params)+4)
	for i, p := range fd.params {
		if i < len(args) {
			env[p] = args[i]
		} else {
			env[p] = Null()
		}
	}
	for _, s := range fd.body {
		v, ctl, err := c.stmt(s, env)
		if err != nil {
			return Null(), err
		}
		switch ctl {
		case ctlReturn:
			return v, nil
		case ctlBreak, ctlContinue:
			return Null(), &RuntimeError{Line: s.stmtLine(), Err: fmt.Errorf("%v outside loop", ctl)}
		}
	}
	return Null(), nil
}

func (c *execCtx) stmtList(body []stmt, env locals) (Value, ctl, error) {
	for _, s := range body {
		v, cc, err := c.stmt(s, env)
		if err != nil || cc != ctlNone {
			return v, cc, err
		}
	}
	return Null(), ctlNone, nil
}

func (c *execCtx) stmt(s stmt, env locals) (Value, ctl, error) {
	if err := c.tick(s.stmtLine()); err != nil {
		return Null(), ctlNone, err
	}
	switch st := s.(type) {
	case *exprStmt:
		v, err := c.eval(st.e, env)
		return v, ctlNone, err
	case *varDecl:
		v := Null()
		if st.init != nil {
			var err error
			if v, err = c.eval(st.init, env); err != nil {
				return Null(), ctlNone, err
			}
		}
		c.declare(st.name, v, env)
		return Null(), ctlNone, nil
	case *funcDecl:
		if _, exists := c.eng.funcs[st.name]; !exists {
			c.eng.fnIDs = append(c.eng.fnIDs, st)
		}
		c.eng.funcs[st.name] = st
		return Null(), ctlNone, nil
	case *returnStmt:
		v := Null()
		if st.val != nil {
			var err error
			if v, err = c.eval(st.val, env); err != nil {
				return Null(), ctlNone, err
			}
		}
		return v, ctlReturn, nil
	case *ifStmt:
		t, err := c.eval(st.test, env)
		if err != nil {
			return Null(), ctlNone, err
		}
		if t.Truthy() {
			return c.stmtList(st.then, env)
		}
		return c.stmtList(st.els, env)
	case *whileStmt:
		for {
			t, err := c.eval(st.test, env)
			if err != nil {
				return Null(), ctlNone, err
			}
			if !t.Truthy() {
				return Null(), ctlNone, nil
			}
			v, cc, err := c.stmtList(st.body, env)
			if err != nil {
				return Null(), ctlNone, err
			}
			switch cc {
			case ctlReturn:
				return v, cc, nil
			case ctlBreak:
				return Null(), ctlNone, nil
			}
		}
	case *forStmt:
		if st.init != nil {
			if _, cc, err := c.stmt(st.init, env); err != nil || cc != ctlNone {
				return Null(), cc, err
			}
		}
		for {
			if st.test != nil {
				t, err := c.eval(st.test, env)
				if err != nil {
					return Null(), ctlNone, err
				}
				if !t.Truthy() {
					return Null(), ctlNone, nil
				}
			}
			v, cc, err := c.stmtList(st.body, env)
			if err != nil {
				return Null(), ctlNone, err
			}
			if cc == ctlReturn {
				return v, cc, nil
			}
			if cc == ctlBreak {
				return Null(), ctlNone, nil
			}
			if st.post != nil {
				if _, _, err := c.stmt(st.post, env); err != nil {
					return Null(), ctlNone, err
				}
			}
		}
	case *breakStmt:
		return Null(), ctlBreak, nil
	case *continueStmt:
		return Null(), ctlContinue, nil
	case *blockStmt:
		return c.stmtList(st.body, env)
	default:
		return Null(), ctlNone, &RuntimeError{Line: s.stmtLine(), Err: fmt.Errorf("unhandled statement %T", s)}
	}
}

func (c *execCtx) evalArgs(args []expr, env locals) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := c.eval(a, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (c *execCtx) eval(e expr, env locals) (Value, error) {
	if err := c.tick(e.exprLine()); err != nil {
		return Null(), err
	}
	switch ex := e.(type) {
	case *numLit:
		return Num(ex.val), nil
	case *strLit:
		return Str(ex.val), nil
	case *boolLit:
		return Bool(ex.val), nil
	case *nullLit:
		return Null(), nil
	case *ident:
		v, ok := c.lookup(ex.name, env)
		if !ok {
			return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("undefined variable %q", ex.name)}
		}
		return v, nil
	case *objectLit:
		hdr, err := newObject(c.th)
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		for i, k := range ex.keys {
			v, err := c.eval(ex.vals[i], env)
			if err != nil {
				return Null(), err
			}
			if err := c.eng.objSet(c.th, hdr, c.eng.internKey(k), v); err != nil {
				return Null(), &RuntimeError{Line: ex.line, Err: err}
			}
		}
		return Obj(hdr), nil
	case *arrayLit:
		vals, err := c.evalArgs(ex.elems, env)
		if err != nil {
			return Null(), err
		}
		hdr, err := newArray(c.th, tagFloatArr, uint64(len(vals)))
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		for i, v := range vals {
			if err := arrSet(c.th, hdr, uint64(i), v); err != nil {
				return Null(), &RuntimeError{Line: ex.line, Err: err}
			}
		}
		return Arr(hdr), nil
	case *unary:
		x, err := c.eval(ex.x, env)
		if err != nil {
			return Null(), err
		}
		switch ex.op {
		case "-":
			return Num(-numOf(x)), nil
		case "!":
			return Bool(!x.Truthy()), nil
		case "~":
			return Num(float64(^int64(numOf(x)))), nil
		}
		return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("bad unary %q", ex.op)}
	case *binary:
		return c.evalBinary(ex, env)
	case *cond:
		t, err := c.eval(ex.test, env)
		if err != nil {
			return Null(), err
		}
		if t.Truthy() {
			return c.eval(ex.then, env)
		}
		return c.eval(ex.els, env)
	case *indexExpr:
		base, err := c.eval(ex.base, env)
		if err != nil {
			return Null(), err
		}
		idx, err := c.eval(ex.idx, env)
		if err != nil {
			return Null(), err
		}
		switch base.Kind {
		case KArr:
			v, err := arrGet(c.th, base.Arr, uint64(int64(idx.Num)))
			if err != nil {
				return Null(), &RuntimeError{Line: ex.line, Err: err}
			}
			return v, nil
		case KStr:
			i := int(idx.Num)
			if i < 0 || i >= len(base.Str) {
				return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("string index %d out of range", i)}
			}
			return Str(base.Str[i : i+1]), nil
		default:
			return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("cannot index %v", base.Kind)}
		}
	case *memberGet:
		return c.evalMemberGet(ex, env)
	case *memberCall:
		return c.evalMemberCall(ex, env)
	case *callExpr:
		return c.evalCall(ex, env)
	case *newExpr:
		return c.evalNew(ex, env)
	case *assign:
		return c.evalAssign(ex, env)
	default:
		return Null(), &RuntimeError{Line: e.exprLine(), Err: fmt.Errorf("unhandled expression %T", e)}
	}
}

func (c *execCtx) evalBinary(ex *binary, env locals) (Value, error) {
	// Short-circuit logical operators.
	if ex.op == "&&" || ex.op == "||" {
		x, err := c.eval(ex.x, env)
		if err != nil {
			return Null(), err
		}
		if ex.op == "&&" && !x.Truthy() {
			return x, nil
		}
		if ex.op == "||" && x.Truthy() {
			return x, nil
		}
		return c.eval(ex.y, env)
	}
	x, err := c.eval(ex.x, env)
	if err != nil {
		return Null(), err
	}
	y, err := c.eval(ex.y, env)
	if err != nil {
		return Null(), err
	}
	return applyBinary(ex.op, x, y, ex.line)
}

// numOf coerces a value to a number, JavaScript-style, for arithmetic.
func numOf(v Value) float64 {
	switch v.Kind {
	case KNum:
		return v.Num
	case KBool:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return 0
	}
}

func applyBinary(op string, x, y Value, line int) (Value, error) {
	// String concatenation and comparison.
	if x.Kind == KStr || y.Kind == KStr {
		switch op {
		case "+":
			return Str(x.String() + y.String()), nil
		case "==":
			return Bool(x.Kind == y.Kind && x.Str == y.Str), nil
		case "!=":
			return Bool(!(x.Kind == y.Kind && x.Str == y.Str)), nil
		case "<", "<=", ">", ">=":
			if x.Kind == KStr && y.Kind == KStr {
				cmp := strings.Compare(x.Str, y.Str)
				switch op {
				case "<":
					return Bool(cmp < 0), nil
				case "<=":
					return Bool(cmp <= 0), nil
				case ">":
					return Bool(cmp > 0), nil
				default:
					return Bool(cmp >= 0), nil
				}
			}
		}
		return Null(), &RuntimeError{Line: line, Err: fmt.Errorf("bad string operands for %q", op)}
	}
	a, b := numOf(x), numOf(y)
	switch op {
	case "+":
		return Num(a + b), nil
	case "-":
		return Num(a - b), nil
	case "*":
		return Num(a * b), nil
	case "/":
		return Num(a / b), nil // JS semantics: x/0 is ±Inf or NaN
	case "%":
		return Num(math.Mod(a, b)), nil
	case "==":
		return Bool(x.Kind == y.Kind && (x.Kind != KNum || a == b) && (x.Kind != KBool || x.Bool == y.Bool) && (x.Kind != KArr || x.Arr == y.Arr)), nil
	case "!=":
		v, _ := applyBinary("==", x, y, line)
		return Bool(!v.Bool), nil
	case "<":
		return Bool(a < b), nil
	case "<=":
		return Bool(a <= b), nil
	case ">":
		return Bool(a > b), nil
	case ">=":
		return Bool(a >= b), nil
	case "&":
		return Num(float64(int64(a) & int64(b))), nil
	case "|":
		return Num(float64(int64(a) | int64(b))), nil
	case "^":
		return Num(float64(int64(a) ^ int64(b))), nil
	case "<<":
		return Num(float64(int64(a) << (uint64(b) & 63))), nil
	case ">>":
		return Num(float64(int64(a) >> (uint64(b) & 63))), nil
	default:
		return Null(), &RuntimeError{Line: line, Err: fmt.Errorf("bad operator %q", op)}
	}
}

func (c *execCtx) evalAssign(ex *assign, env locals) (Value, error) {
	rhs, err := c.eval(ex.val, env)
	if err != nil {
		return Null(), err
	}
	apply := func(old Value) (Value, error) {
		if ex.op == "=" {
			return rhs, nil
		}
		return applyBinary(strings.TrimSuffix(ex.op, "="), old, rhs, ex.line)
	}
	if ex.name != "" {
		var old Value
		if ex.op != "=" {
			var ok bool
			if old, ok = c.lookup(ex.name, env); !ok {
				return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("undefined variable %q", ex.name)}
			}
		}
		v, err := apply(old)
		if err != nil {
			return Null(), err
		}
		c.bind(ex.name, v, env)
		return v, nil
	}
	base, err := c.eval(ex.target, env)
	if err != nil {
		return Null(), err
	}
	if ex.prop != "" {
		if base.Kind != KObj {
			return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("cannot set property on %v", base.Kind)}
		}
		keyID := c.eng.internKey(ex.prop)
		var old Value
		if ex.op != "=" {
			if old, err = c.eng.objGet(c.th, base.Obj, keyID); err != nil {
				return Null(), &RuntimeError{Line: ex.line, Err: err}
			}
		}
		v, err := apply(old)
		if err != nil {
			return Null(), err
		}
		if err := c.eng.objSet(c.th, base.Obj, keyID, v); err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return v, nil
	}
	if base.Kind != KArr {
		return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("cannot index-assign %v", base.Kind)}
	}
	idx, err := c.eval(ex.idx, env)
	if err != nil {
		return Null(), err
	}
	i := uint64(int64(idx.Num))
	var old Value
	if ex.op != "=" {
		if old, err = arrGet(c.th, base.Arr, i); err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
	}
	v, err := apply(old)
	if err != nil {
		return Null(), err
	}
	if err := arrSet(c.th, base.Arr, i, v); err != nil {
		return Null(), &RuntimeError{Line: ex.line, Err: err}
	}
	return v, nil
}

func (c *execCtx) evalNew(ex *newExpr, env locals) (Value, error) {
	args, err := c.evalArgs(ex.args, env)
	if err != nil {
		return Null(), err
	}
	n := uint64(0)
	if len(args) > 0 {
		n = uint64(int64(args[0].Num))
	}
	switch ex.class {
	case "Array":
		hdr, err := newArray(c.th, tagFloatArr, n)
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return Arr(hdr), nil
	case "IntArray":
		hdr, err := newArray(c.th, tagIntArr, n)
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return Arr(hdr), nil
	case "Object":
		hdr, err := newObject(c.th)
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return Obj(hdr), nil
	default:
		return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("unknown constructor %q", ex.class)}
	}
}

func (c *execCtx) evalMemberGet(ex *memberGet, env locals) (Value, error) {
	base, err := c.eval(ex.base, env)
	if err != nil {
		return Null(), err
	}
	switch {
	case base.Kind == KObj:
		v, err := c.eng.objGet(c.th, base.Obj, c.eng.internKey(ex.prop))
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return v, nil
	case ex.prop == "length" && base.Kind == KArr:
		_, length, _, _, err := arrInfo(c.th, base.Arr)
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return Num(float64(length)), nil
	case ex.prop == "length" && base.Kind == KStr:
		return Num(float64(len(base.Str))), nil
	default:
		return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("no property %q on %v", ex.prop, base.Kind)}
	}
}

func (c *execCtx) evalMemberCall(ex *memberCall, env locals) (Value, error) {
	base, err := c.eval(ex.base, env)
	if err != nil {
		return Null(), err
	}
	args, err := c.evalArgs(ex.args, env)
	if err != nil {
		return Null(), err
	}
	fail := func(err error) (Value, error) {
		return Null(), &RuntimeError{Line: ex.line, Err: err}
	}
	switch {
	case base.Kind == KArr && ex.method == "push":
		for _, v := range args {
			if err := arrPush(c.th, base.Arr, v); err != nil {
				return fail(err)
			}
		}
		_, length, _, _, err := arrInfo(c.th, base.Arr)
		if err != nil {
			return fail(err)
		}
		return Num(float64(length)), nil
	case base.Kind == KArr && ex.method == "setLength":
		if len(args) != 1 {
			return fail(errors.New("setLength needs one argument"))
		}
		if err := arrSetLength(c.th, base.Arr, uint64(int64(args[0].Num))); err != nil {
			return fail(err)
		}
		return Null(), nil
	case base.Kind == KStr && ex.method == "charCodeAt":
		i := 0
		if len(args) > 0 {
			i = int(args[0].Num)
		}
		if i < 0 || i >= len(base.Str) {
			return fail(fmt.Errorf("charCodeAt(%d) out of range", i))
		}
		return Num(float64(base.Str[i])), nil
	case base.Kind == KStr && ex.method == "substr":
		i, n := 0, len(base.Str)
		if len(args) > 0 {
			i = int(args[0].Num)
		}
		if len(args) > 1 {
			n = int(args[1].Num)
		}
		if i < 0 || i > len(base.Str) {
			return fail(fmt.Errorf("substr(%d) out of range", i))
		}
		if i+n > len(base.Str) {
			n = len(base.Str) - i
		}
		return Str(base.Str[i : i+n]), nil
	case base.Kind == KStr && ex.method == "indexOf":
		if len(args) != 1 || args[0].Kind != KStr {
			return fail(errors.New("indexOf needs a string argument"))
		}
		return Num(float64(strings.Index(base.Str, args[0].Str))), nil
	default:
		return fail(fmt.Errorf("no method %q on %v", ex.method, base.Kind))
	}
}

func (c *execCtx) evalCall(ex *callExpr, env locals) (Value, error) {
	args, err := c.evalArgs(ex.args, env)
	if err != nil {
		return Null(), err
	}
	if fd, ok := c.eng.funcs[ex.callee]; ok {
		return c.invoke(fd, args)
	}
	if b, ok := builtins[ex.callee]; ok {
		v, err := b(c, args)
		if err != nil {
			return Null(), &RuntimeError{Line: ex.line, Err: err}
		}
		return v, nil
	}
	if h, ok := c.eng.hosts[ex.callee]; ok {
		v, err := h(c.th, args)
		if err != nil {
			return Null(), err // host errors (incl. faults) propagate as-is
		}
		return v, nil
	}
	return Null(), &RuntimeError{Line: ex.line, Err: fmt.Errorf("undefined function %q", ex.callee)}
}
