package attack

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/mpk"
	"repro/internal/sig"
	"repro/internal/vm"
)

// TestDrillMatrix is the corpus's core contract: every scenario breaches
// with its defense down and dies with exactly the expected fault with the
// defense up.
func TestDrillMatrix(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name+"/red", func(t *testing.T) {
			r := RunDrill(s, false)
			if r.Err != "" {
				t.Fatalf("harness error: %s", r.Err)
			}
			if !r.Breached {
				t.Fatalf("red drill did not breach — the scenario no longer exercises the attack: %s (%s)", r.Verdict(), r.Detail)
			}
			if !r.Pass {
				t.Fatalf("red drill failed: %s (%s)", r.Verdict(), r.Detail)
			}
		})
		t.Run(s.Name+"/green", func(t *testing.T) {
			r := RunDrill(s, true)
			if r.Err != "" {
				t.Fatalf("harness error: %s", r.Err)
			}
			if r.Breached {
				t.Fatalf("attack breached with the defense on: %s (%s)", r.Verdict(), r.Detail)
			}
			if r.Fault != s.ExpectFault {
				t.Fatalf("attack died with %q, want %q — something other than the defense under test stopped it: %s",
					r.Fault, s.ExpectFault, r.Detail)
			}
			if !r.Pass {
				t.Fatalf("green drill failed: %s (%s)", r.Verdict(), r.Detail)
			}
		})
	}
}

// TestRosterCoversRequiredClasses pins the attack classes the corpus must
// keep exercising; removing one is a silent coverage regression.
func TestRosterCoversRequiredClasses(t *testing.T) {
	required := []string{
		"rogue-wrpkru", "sigframe-tamper", "stale-pkru",
		"retag-race", "gate-bypass", "confused-deputy",
	}
	have := make(map[string]bool)
	for _, s := range Scenarios() {
		have[s.Class] = true
	}
	for _, c := range required {
		if !have[c] {
			t.Errorf("attack class %q missing from the roster", c)
		}
	}
}

// TestRunAllShape: RunAll emits exactly red-then-green per scenario, in
// roster order — the contract the CLI golden test builds on.
func TestRunAllShape(t *testing.T) {
	rs := RunAll()
	ss := Scenarios()
	if len(rs) != 2*len(ss) {
		t.Fatalf("RunAll returned %d results, want %d", len(rs), 2*len(ss))
	}
	for i, s := range ss {
		red, green := rs[2*i], rs[2*i+1]
		if red.Scenario != s.Name || red.Drill != "red" || red.DefenseOn {
			t.Errorf("result %d: want red drill of %s, got %+v", 2*i, s.Name, red)
		}
		if green.Scenario != s.Name || green.Drill != "green" || !green.DefenseOn {
			t.Errorf("result %d: want green drill of %s, got %+v", 2*i+1, s.Name, green)
		}
	}
	if n := Failures(rs); n != 0 {
		t.Errorf("Failures = %d, want 0", n)
	}
}

func TestVerdictLine(t *testing.T) {
	r := DrillResult{
		Scenario: "rogue-wrpkru", Class: "rogue-wrpkru", Defense: "wrpkru-guard",
		Drill: "green", DefenseOn: true, Breached: false, Fault: FaultPKU, Pass: true,
	}
	want := "ATTACK class=rogue-wrpkru scenario=rogue-wrpkru defense=wrpkru-guard drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS"
	if got := r.Verdict(); got != want {
		t.Fatalf("Verdict() = %q, want %q", got, want)
	}
	r.Pass, r.DefenseOn, r.Drill, r.Breached, r.Fault = false, false, "red", true, FaultNone
	line := r.Verdict()
	for _, frag := range []string{"drill=red", "defense-mode=off", "breached=yes", "fault=none", "verdict=FAIL"} {
		if !strings.Contains(line, frag) {
			t.Errorf("Verdict() = %q, missing %q", line, frag)
		}
	}
}

// TestHarnessDetectsBrokenDrills is the self-check: a drill harness that
// cannot flag a dud red drill or a leaking green drill proves nothing.
func TestHarnessDetectsBrokenDrills(t *testing.T) {
	mk := func(out Outcome, err error) Scenario {
		return Scenario{Name: "stub", Class: "stub", Defense: "stub", ExpectFault: FaultPKU,
			Run: func(bool) (Outcome, error) { return out, err }}
	}
	// A red drill whose attack fizzled (no breach) must FAIL.
	if r := RunDrill(mk(Outcome{Fault: FaultPKU}, nil), false); r.Pass {
		t.Error("red drill passed without observing a breach")
	}
	// A green drill that still breached must FAIL, whatever the fault says.
	if r := RunDrill(mk(Outcome{Breached: true, Fault: FaultPKU}, nil), true); r.Pass {
		t.Error("green drill passed despite a breach")
	}
	// A green drill stopped by the wrong mechanism must FAIL.
	if r := RunDrill(mk(Outcome{Fault: FaultMap}, nil), true); r.Pass {
		t.Error("green drill passed with the wrong fault")
	}
	// A harness malfunction must FAIL both drills.
	boom := errors.New("setup exploded")
	if r := RunDrill(mk(Outcome{Breached: true}, boom), false); r.Pass || r.Err == "" {
		t.Error("red drill swallowed a harness error")
	}
	if r := RunDrill(mk(Outcome{Fault: FaultPKU}, boom), true); r.Pass || r.Err == "" {
		t.Error("green drill swallowed a harness error")
	}
	if n := Failures([]DrillResult{{Pass: true}, {Pass: false}, {Pass: false}}); n != 2 {
		t.Errorf("Failures = %d, want 2", n)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, FaultNone},
		{&vm.Fault{Info: sig.Info{Sig: sig.SIGSEGV, Code: sig.CodePKUErr}}, FaultPKU},
		{fmt.Errorf("wrapped: %w", &vm.Fault{Info: sig.Info{Sig: sig.SIGSEGV, Code: sig.CodeMapErr}}), FaultMap},
		{errors.New("mystery"), FaultError},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// sigWorld builds the bare-VM fixture the sigframe variants share: one
// trusted page holding a secret, a thread confined to key 0, and hostile
// SIGSEGV/SIGTRAP handlers that widen rights and (optionally) arm the
// single-step trap to mimic the profiler's grant.
func sigWorld(t *testing.T, armTrap bool) (*vm.Thread, vm.Addr, mpk.PKRU) {
	t.Helper()
	space := vm.NewSpace()
	const secretAddr vm.Addr = 0x4000_0000
	if _, err := space.Reserve("mt", secretAddr, vm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	sigs := new(sig.Table)
	th := vm.NewThread(space, sigs)
	if err := th.Store64(secretAddr, 77); err != nil {
		t.Fatal(err)
	}
	untrusted := mpk.DenyAllExcept(0)
	th.SetRights(untrusted)
	sigs.Register(sig.SIGSEGV, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		ctx.SetPKRU(uint32(mpk.PermitAll))
		if armTrap {
			ctx.SetTrapFlag(true)
		}
		return sig.Handled
	}))
	sigs.Register(sig.SIGTRAP, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		// A covenant-honoring profiler would restore the pre-grant rights
		// here; the attacker keeps the widened PKRU and hopes it sticks.
		ctx.SetTrapFlag(false)
		return sig.Handled
	}))
	return th, secretAddr, untrusted
}

// TestSigProfilingGrantClampsAtRetirement: the trap-evasion variant.
// Under SigProfiling an attacker may mimic the profiler — widen AND arm
// the trap — and the covenant grants exactly one stepped access; what it
// must never yield is a persistent escalation: at trap retirement the
// rights are audited against the pre-grant baseline and clamped.
func TestSigProfilingGrantClampsAtRetirement(t *testing.T) {
	th, secretAddr, untrusted := sigWorld(t, true)
	th.SetSigPolicy(vm.SigProfiling)
	v, err := th.Load64(secretAddr)
	if err != nil || v != 77 {
		t.Fatalf("covenant grant should permit the single stepped access: v=%d err=%v", v, err)
	}
	if got := th.Rights(); got != untrusted {
		t.Fatalf("escalation survived trap retirement: rights=%v, want %v", got, untrusted)
	}
	st := th.Stats()
	if st.SigClamped != 1 {
		t.Errorf("SigClamped = %d, want 1 (the retirement clamp)", st.SigClamped)
	}
	if st.Traps != 1 {
		t.Errorf("Traps = %d, want 1", st.Traps)
	}
}

// TestSigStrictClampsTrapArmedGrant: under SigStrict even the profiler
// pattern is refused — every handler escalation is clamped, the retried
// access keeps faulting, and the access dies a terminal PKUERR.
func TestSigStrictClampsTrapArmedGrant(t *testing.T) {
	th, secretAddr, untrusted := sigWorld(t, true)
	th.SetSigPolicy(vm.SigStrict)
	_, err := th.Load64(secretAddr)
	var f *vm.Fault
	if !errors.As(err, &f) || f.Info.Code != sig.CodePKUErr {
		t.Fatalf("want terminal PKUERR, got %v", err)
	}
	if got := th.Rights(); got != untrusted {
		t.Fatalf("rights drifted under SigStrict: %v", got)
	}
	if st := th.Stats(); st.SigClamped != vm.MaxFaultRetries {
		t.Errorf("SigClamped = %d, want %d (one per retried repair)", st.SigClamped, vm.MaxFaultRetries)
	}
}

// TestSigOpenPreservesHistoricalBehavior pins the default: with no policy
// set, a handler-widened PKRU stands and the retried access succeeds —
// exactly the semantics every pre-existing repair-handler test relies on.
func TestSigOpenPreservesHistoricalBehavior(t *testing.T) {
	th, secretAddr, _ := sigWorld(t, false)
	if p := th.SigPolicyValue(); p != vm.SigOpen {
		t.Fatalf("default policy = %v, want %v", p, vm.SigOpen)
	}
	v, err := th.Load64(secretAddr)
	if err != nil || v != 77 {
		t.Fatalf("SigOpen should honor the handler's PKRU: v=%d err=%v", v, err)
	}
	if st := th.Stats(); st.SigClamped != 0 {
		t.Errorf("SigClamped = %d, want 0 under SigOpen", st.SigClamped)
	}
}
