package attack

import (
	"fmt"

	"repro/internal/ffi"
	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/sig"
	"repro/internal/vkey"
	"repro/internal/vm"
)

// Scenarios returns the attack roster in canonical order. Every entry is
// built fresh on each Run, so drills are independent and deterministic.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "rogue-wrpkru",
			Class:       "rogue-wrpkru",
			Defense:     "wrpkru-guard",
			ExpectFault: FaultPKU,
			Run:         rogueWRPKRU,
		},
		{
			Name:        "exit-exfil",
			Class:       "rogue-wrpkru",
			Defense:     "gate-exit-audit",
			ExpectFault: FaultGateTampered,
			Run:         exitExfil,
		},
		{
			Name:        "sigframe-tamper",
			Class:       "sigframe-tamper",
			Defense:     "sigframe-sanitizer",
			ExpectFault: FaultPKU,
			Run:         sigframeTamper,
		},
		{
			Name:        "migration-stale-pkru",
			Class:       "stale-pkru",
			Defense:     "migration-revalidation",
			ExpectFault: FaultPKU,
			Run:         migrationStalePKRU,
		},
		{
			Name:        "evict-retag-race",
			Class:       "retag-race",
			Defense:     "atomic-evict-retag",
			ExpectFault: FaultPKU,
			Run:         evictRetagRace,
		},
		{
			Name:        "slot-reuse",
			Class:       "retag-race",
			Defense:     "free-park-revoke",
			ExpectFault: FaultPKU,
			Run:         slotReuse,
		},
		{
			Name:        "gate-exit-skip",
			Class:       "gate-bypass",
			Defense:     "gate-instrumentation",
			ExpectFault: FaultPKU,
			Run:         gateExitSkip,
		},
		{
			Name:        "confused-deputy",
			Class:       "confused-deputy",
			Defense:     "call-filter",
			ExpectFault: FaultFiltered,
			Run:         confusedDeputy,
		},
	}
}

// secretValue is the word every scenario plants in trusted memory; an
// attack that reads or clobbers it has breached the compartment model.
const secretValue uint64 = 0x5ec2e7

// ffiWorld is the standard two-compartment program the FFI scenarios
// attack: a trusted heap holding one secret word, a registry, a runtime,
// and one thread, freshly assembled per drill.
type ffiWorld struct {
	space  *vm.Space
	alloc  *pkalloc.Allocator
	sigs   *sig.Table
	reg    *ffi.Registry
	rt     *ffi.Runtime
	th     *ffi.Thread
	secret vm.Addr
}

func newFFIWorld(mode ffi.GateMode) (*ffiWorld, error) {
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		return nil, err
	}
	sigs := new(sig.Table)
	reg := ffi.NewRegistry()
	rt := ffi.NewRuntime(reg, alloc, sigs, mode)
	rt.SetGateCost(0)
	th := rt.NewThread()
	secret, err := alloc.Alloc(8)
	if err != nil {
		return nil, err
	}
	if err := th.VM.Store64(secret, secretValue); err != nil {
		return nil, err
	}
	return &ffiWorld{space: space, alloc: alloc, sigs: sigs, reg: reg, rt: rt, th: th, secret: secret}, nil
}

// rogueWRPKRU: untrusted native code executes its own WRPKRU with a
// permissive operand — no gate, no vulnerability needed, just the fact
// that WRPKRU is an unprivileged instruction — then reads the trusted
// secret. Defense: the thread's WRPKRU guard, which suppresses rights-
// widening writes outside a gate's privileged bracket.
func rogueWRPKRU(defenseOn bool) (Outcome, error) {
	w, err := newFFIWorld(ffi.GatesOn)
	if err != nil {
		return Outcome{}, err
	}
	evil := w.reg.MustLibrary("evil", ffi.Untrusted)
	evil.Define("smash", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		t.VM.SetPKRU(uint32(mpk.PermitAll))
		v, err := t.Load64(w.secret)
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	})
	if defenseOn {
		w.th.VM.SetPKRUGuard(true)
	}
	res, err := w.th.Call("evil", "smash")
	if err == nil && len(res) == 1 && res[0] == secretValue {
		return Outcome{Breached: true, Fault: FaultNone,
			Detail: "untrusted code widened its own PKRU and read the MT secret"}, nil
	}
	return Outcome{Fault: classify(err),
		Detail: fmt.Sprintf("rogue WRPKRUs suppressed=%d", w.th.VM.Stats().RoguePKRU)}, nil
}

// exitExfil: the callee widens its PKRU, copies the secret into an MU
// mailbox both compartments can read, and returns — counting on the gate
// exit to silently restore the caller's rights and erase the evidence. A
// second call collects the loot from the mailbox. Defense: the gate-exit
// audit, which checks the rights the callee left behind against the
// rights the gate installed and aborts on escalation, before the loot can
// be consumed.
func exitExfil(defenseOn bool) (Outcome, error) {
	w, err := newFFIWorld(ffi.GatesOn)
	if err != nil {
		return Outcome{}, err
	}
	mailbox, err := w.alloc.UntrustedAlloc(8)
	if err != nil {
		return Outcome{}, err
	}
	evil := w.reg.MustLibrary("evil", ffi.Untrusted)
	evil.Define("exfil", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		t.VM.SetPKRU(uint32(mpk.PermitAll))
		v, err := t.Load64(w.secret)
		if err != nil {
			return nil, err
		}
		return nil, t.Store64(mailbox, v)
	})
	evil.Define("consume", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		v, err := t.Load64(mailbox)
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	})
	if defenseOn {
		w.rt.SetExitAudit(true)
	}
	_, xerr := w.th.Call("evil", "exfil")
	res, cerr := w.th.Call("evil", "consume")
	if cerr == nil && len(res) == 1 && res[0] == secretValue {
		return Outcome{Breached: true, Fault: classify(xerr),
			Detail: "secret exfiltrated through the MU mailbox and consumed"}, nil
	}
	fault := classify(xerr)
	if fault == FaultNone {
		fault = classify(cerr)
	}
	return Outcome{Fault: fault,
		Detail: fmt.Sprintf("exfil: %v; consume: %v", xerr, cerr)}, nil
}

// sigframeTamper: a hostile SIGSEGV handler rewrites the saved PKRU in
// the signal frame to all-permissive and returns — the kernel's sigreturn
// installs attacker-controlled uc_mcontext bytes, so the faulting access
// retries with full rights. Defense: the signal-frame sanitizer under the
// profiling policy, which clamps any escalation a handler "restores"
// unless it follows the profiler's grant-step-restore covenant.
func sigframeTamper(defenseOn bool) (Outcome, error) {
	w, err := newFFIWorld(ffi.GatesOn)
	if err != nil {
		return Outcome{}, err
	}
	w.sigs.Register(sig.SIGSEGV, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		if info.Code != sig.CodePKUErr {
			return sig.Unhandled
		}
		ctx.SetPKRU(uint32(mpk.PermitAll))
		return sig.Handled
	}))
	evil := w.reg.MustLibrary("evil", ffi.Untrusted)
	evil.Define("reader", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		v, err := t.Load64(w.secret)
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	})
	if defenseOn {
		w.th.VM.SetSigPolicy(vm.SigProfiling)
	}
	res, err := w.th.Call("evil", "reader")
	if err == nil && len(res) == 1 && res[0] == secretValue {
		return Outcome{Breached: true, Fault: FaultNone,
			Detail: "handler-widened PKRU survived sigreturn; retried access read the secret"}, nil
	}
	return Outcome{Fault: classify(err),
		Detail: fmt.Sprintf("sigframe escalations clamped=%d", w.th.VM.Stats().SigClamped)}, nil
}

// gateExitSkip: untrusted code jumps directly to a trusted function that
// was never instrumented with a gate, so the callee runs on the caller's
// PKRU. The red drill models the uninstrumented build (gates off — every
// compartment already runs with full rights); the defense is the gate
// instrumentation itself: with gates on, the uninstrumented callee
// inherits untrusted rights and faults the moment it touches MT.
func gateExitSkip(defenseOn bool) (Outcome, error) {
	mode := ffi.GatesOff
	if defenseOn {
		mode = ffi.GatesOn
	}
	w, err := newFFIWorld(mode)
	if err != nil {
		return Outcome{}, err
	}
	sys := w.reg.MustLibrary("sys", ffi.Trusted)
	sys.Define("peek", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		v, err := t.Load64(w.secret)
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	})
	evil := w.reg.MustLibrary("evil", ffi.Untrusted)
	evil.Define("jump", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		return t.CallNoGate("sys", "peek")
	})
	res, err := w.th.Call("evil", "jump")
	if err == nil && len(res) == 1 && res[0] == secretValue {
		return Outcome{Breached: true, Fault: FaultNone,
			Detail: "uninstrumented trusted callee read the secret on the caller's rights"}, nil
	}
	return Outcome{Fault: classify(err), Detail: fmt.Sprintf("jump: %v", err)}, nil
}

// confusedDeputy: untrusted code never touches MT itself — it asks a
// legitimate trusted entry point to clobber the secret on its behalf,
// through the fully instrumented reverse gate. Rights enforcement cannot
// stop this; the defense is the registry's call filter, the seccomp
// analogue: an allow-list over untrusted→trusted reverse-gate calls.
func confusedDeputy(defenseOn bool) (Outcome, error) {
	w, err := newFFIWorld(ffi.GatesOn)
	if err != nil {
		return Outcome{}, err
	}
	sys := w.reg.MustLibrary("sys", ffi.Trusted)
	sys.Define("write_secret", func(t *ffi.Thread, args []uint64) ([]uint64, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("write_secret: want 1 arg, got %d", len(args))
		}
		return nil, t.Store64(w.secret, args[0])
	})
	sys.Define("getpid", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		return []uint64{42}, nil
	})
	evil := w.reg.MustLibrary("evil", ffi.Untrusted)
	evil.Define("deputy", func(t *ffi.Thread, _ []uint64) ([]uint64, error) {
		// The benign call first: an allow-listed entry point must keep
		// working with the filter armed, or the filter is just an off switch.
		if _, err := t.Call("sys", "getpid"); err != nil {
			return nil, fmt.Errorf("allow-listed call refused: %w", err)
		}
		_, err := t.Call("sys", "write_secret", 0xbad)
		return nil, err
	})
	if defenseOn {
		w.reg.SetCallFilter(true)
		w.reg.Allow("evil", "sys", "getpid")
	}
	_, derr := w.th.Call("evil", "deputy")
	v, rerr := w.th.VM.Load64(w.secret)
	if rerr != nil {
		return Outcome{}, fmt.Errorf("reading secret back: %w", rerr)
	}
	if v != secretValue {
		return Outcome{Breached: true, Fault: classify(derr),
			Detail: fmt.Sprintf("trusted deputy clobbered the secret (now %#x)", v)}, nil
	}
	return Outcome{Fault: classify(derr), Detail: fmt.Sprintf("deputy: %v", derr)}, nil
}

// --- virtual-key scenarios -------------------------------------------------

// tenantBase is where the vkey scenarios reserve per-tenant pages; the
// range is far from both pkalloc pools.
const tenantBase vm.Addr = 0x1900_0000_0000

func tenantSecret(i int) uint64 { return 0xa0_0000 + uint64(i) }

// vkeyWorld is the multi-tenant world the virtualization scenarios
// attack: a vkey table with key 1 reserved (13 multiplexable slots,
// 2..14), n one-page tenants each holding a distinct word, one thread.
type vkeyWorld struct {
	space *vm.Space
	table *vkey.Table
	th    *vm.Thread
	ids   []vkey.ID
	pages []vm.Addr
}

// vkeyMuxSlots is the slot count the scenarios are built around: 16 keys
// minus key 0 (shared), key 1 (reserved) and key 15 (inactive parking).
const vkeyMuxSlots = 13

func newVKeyWorld(tenants int) (*vkeyWorld, error) {
	space := vm.NewSpace()
	table, err := vkey.NewTable(space, vkey.Config{Reserved: []mpk.Key{1}})
	if err != nil {
		return nil, err
	}
	w := &vkeyWorld{space: space, table: table, th: vm.NewThread(space, nil)}
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant%d", i)
		base := tenantBase + vm.Addr(i)*vm.PageSize
		if _, err := space.Reserve(name, base, vm.PageSize, 0); err != nil {
			return nil, err
		}
		id := table.Alloc(name)
		if err := table.Attach(id, base, vm.PageSize); err != nil {
			return nil, err
		}
		if err := w.th.Store64(base, tenantSecret(i)); err != nil {
			return nil, err
		}
		w.ids = append(w.ids, id)
		w.pages = append(w.pages, base)
	}
	return w, nil
}

// migrationStalePKRU: the scheduler saves a thread's context while it is
// inside tenant A's compartment, the thread leaves, slot pressure evicts
// A and rebinds its hardware slot to another tenant — and then the saved
// context is restored on a "new CPU". The stale PKRU still grants the
// slot, which now tags the victim's pages. Defense: migration
// revalidation — the restore hook re-derives rights from the table's
// current bindings and strips every multiplexed slot grant the saved
// value can no longer justify.
func migrationStalePKRU(defenseOn bool) (Outcome, error) {
	w, err := newVKeyWorld(vkeyMuxSlots + 1)
	if err != nil {
		return Outcome{}, err
	}
	if _, err := w.table.Enter(w.th, w.ids[0]); err != nil {
		return Outcome{}, err
	}
	saved := w.th.SaveContext()
	if _, err := w.table.Leave(w.th, mpk.PermitAll); err != nil {
		return Outcome{}, err
	}
	// Churn through the other tenants: the first 12 fill the remaining
	// slots, the last has no free slot and evicts tenant 0 (the LRU),
	// rebinding its slot immediately.
	for _, id := range w.ids[1:] {
		if _, err := w.table.Enter(w.th, id); err != nil {
			return Outcome{}, err
		}
		if _, err := w.table.Leave(w.th, mpk.PermitAll); err != nil {
			return Outcome{}, err
		}
	}
	victim := len(w.ids) - 1
	if hw0, ok := w.table.HardwareKey(w.ids[0]); ok && hw0 != w.table.InactiveKey() {
		return Outcome{}, fmt.Errorf("setup: tenant 0 still bound to slot %v, eviction did not happen", hw0)
	}
	if defenseOn {
		w.table.BindMigration(w.th)
	}
	if err := w.th.RestoreContext(saved); err != nil {
		return Outcome{}, err
	}
	v, rerr := w.th.Load64(w.pages[victim])
	if rerr == nil && v == tenantSecret(victim) {
		return Outcome{Breached: true, Fault: FaultNone,
			Detail: "restored stale PKRU read the slot's new tenant"}, nil
	}
	return Outcome{Fault: classify(rerr),
		Detail: fmt.Sprintf("post-migration read: %v", rerr)}, nil
}

// evictRetagRace: an eviction must park the victim's pages on the
// inactive key *before* its slot is rebound; if the new tenant's
// activation wins the race, the old tenant's pages are still tagged with
// a slot the new tenant's PKRU grants. The red drill injects the lost
// race (InjectStaleEviction); the defense is the table's actual ordering —
// retag-then-rebind under one lock — represented by the clean path.
func evictRetagRace(defenseOn bool) (Outcome, error) {
	w, err := newVKeyWorld(vkeyMuxSlots + 1)
	if err != nil {
		return Outcome{}, err
	}
	if !defenseOn {
		w.table.InjectStaleEviction(true)
	}
	// Bind tenant 0 first, fill the remaining slots, then enter the last
	// tenant: its activation evicts tenant 0 and takes over its slot.
	for _, id := range w.ids[:vkeyMuxSlots] {
		if _, _, err := w.table.Activate(id); err != nil {
			return Outcome{}, err
		}
	}
	if _, err := w.table.Enter(w.th, w.ids[vkeyMuxSlots]); err != nil {
		return Outcome{}, err
	}
	v, rerr := w.th.Load64(w.pages[0])
	if _, lerr := w.table.Leave(w.th, mpk.PermitAll); lerr != nil {
		return Outcome{}, lerr
	}
	if rerr == nil && v == tenantSecret(0) {
		return Outcome{Breached: true, Fault: FaultNone,
			Detail: "evicted tenant's pages still tagged with the rebound slot"}, nil
	}
	return Outcome{Fault: classify(rerr),
		Detail: fmt.Sprintf("cross-tenant read: %v", rerr)}, nil
}

// slotReuse: Free recycles a tenant's hardware slot into the free pool;
// its pages must be parked on the inactive key first, or the next tenant
// handed the slot can read the dead tenant's memory through its own
// legitimate rights. The red drill injects the skipped retag; the defense
// is Free's park-then-recycle ordering.
func slotReuse(defenseOn bool) (Outcome, error) {
	w, err := newVKeyWorld(2)
	if err != nil {
		return Outcome{}, err
	}
	dying, successor := w.ids[0], w.ids[1]
	if !defenseOn {
		w.table.InjectStaleEviction(true)
	}
	if _, _, err := w.table.Activate(dying); err != nil {
		return Outcome{}, err
	}
	if err := w.table.Free(dying); err != nil {
		return Outcome{}, err
	}
	// The successor pops the recycled slot off the free list.
	if _, err := w.table.Enter(w.th, successor); err != nil {
		return Outcome{}, err
	}
	v, rerr := w.th.Load64(w.pages[0])
	if _, lerr := w.table.Leave(w.th, mpk.PermitAll); lerr != nil {
		return Outcome{}, lerr
	}
	if rerr == nil && v == tenantSecret(0) {
		return Outcome{Breached: true, Fault: FaultNone,
			Detail: "freed tenant's pages readable by the slot's next owner"}, nil
	}
	return Outcome{Fault: classify(rerr),
		Detail: fmt.Sprintf("reused-slot read: %v", rerr)}, nil
}
