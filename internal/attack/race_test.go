package attack

import (
	"sync"
	"testing"

	"repro/internal/mpk"
)

// The concurrency drills: the single-goroutine scenarios prove the retag
// and migration defenses on a deterministic schedule; these two run the
// same invariants against genuine concurrency so `go test -race` can
// catch lock-ordering or torn-state regressions in the table itself.

// TestRaceRetagVsAccess churns slot evictions on one goroutine while
// another continuously enters compartments and reads. Invariant: a thread
// inside tenant X's compartment never successfully reads tenant Y's page
// — evictions must park, retag, and revoke atomically enough that no
// interleaving leaves a foreign page readable. Faults are fine; foreign
// data is not.
func TestRaceRetagVsAccess(t *testing.T) {
	const tenants = 20
	w, err := newVKeyWorld(tenants)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := w.table.Activate(w.ids[i%tenants]); err != nil {
				t.Errorf("churn Activate: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 400; i++ {
		self := i % tenants
		other := (i + 1) % tenants
		if _, err := w.table.Enter(w.th, w.ids[self]); err != nil {
			t.Fatalf("Enter: %v", err)
		}
		if v, err := w.th.Load64(w.pages[other]); err == nil && v == tenantSecret(other) {
			t.Fatalf("iteration %d: read tenant %d's page from tenant %d's compartment", i, other, self)
		}
		// The own-page read may fault (the compartment can be evicted
		// mid-access and its rights revoked) but must never read anything
		// other than the tenant's own value.
		if v, err := w.th.Load64(w.pages[self]); err == nil && v != tenantSecret(self) {
			t.Fatalf("iteration %d: own-page read returned %#x, want %#x", i, v, tenantSecret(self))
		}
		if _, err := w.table.Leave(w.th, mpk.PermitAll); err != nil {
			t.Fatalf("Leave: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRaceMigrationRevalidate saves a context inside a compartment,
// leaves, and restores it while another goroutine churns slot bindings.
// With the revalidator bound, a restore onto an empty compartment stack
// must strip every multiplexed slot grant — no interleaving of the churn
// may leave the restored thread able to read any tenant page.
func TestRaceMigrationRevalidate(t *testing.T) {
	const tenants = 20
	w, err := newVKeyWorld(tenants)
	if err != nil {
		t.Fatal(err)
	}
	w.table.BindMigration(w.th)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := w.table.Activate(w.ids[i%tenants]); err != nil {
				t.Errorf("churn Activate: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		id := w.ids[i%tenants]
		if _, err := w.table.Enter(w.th, id); err != nil {
			t.Fatalf("Enter: %v", err)
		}
		saved := w.th.SaveContext()
		if _, err := w.table.Leave(w.th, mpk.PermitAll); err != nil {
			t.Fatalf("Leave: %v", err)
		}
		if err := w.th.RestoreContext(saved); err != nil {
			t.Fatalf("RestoreContext: %v", err)
		}
		for j := 0; j < tenants; j += 5 {
			if v, err := w.th.Load64(w.pages[j]); err == nil {
				t.Fatalf("iteration %d: post-migration read of tenant %d succeeded (%#x) despite revalidation", i, j, v)
			}
		}
		// Re-derive full rights for the next iteration's trusted writes.
		w.th.SetRights(mpk.PermitAll)
	}
	close(stop)
	wg.Wait()
}
