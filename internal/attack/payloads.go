package attack

import (
	"repro/internal/ffi"
	"repro/internal/mpk"
	"repro/internal/vm"
)

// PayloadTargets are the addresses a hostile in-gate payload aims at.
// Unlike the self-contained Scenarios, payloads run inside an existing
// multi-tenant world — pkru-servo's -hostile mode executes them from
// within one tenant's untrusted library, through that tenant's own
// gates — so the world hands the targets in rather than building them.
type PayloadTargets struct {
	// Secret is a trusted (MT) word the compartment model says the
	// tenant must never read or write.
	Secret vm.Addr
	// Victim is a word inside another tenant's private pool — reachable
	// only if cross-domain isolation is broken.
	Victim vm.Addr
}

// Payload is one hostile operation a compromised tenant mounts from
// inside its own compartment. Run executes on the tenant's thread while
// the tenant's domain gate is open (restricted PKRU in force); it
// reports breached=true when the attack reached its goal and returns
// the error it died with otherwise — with defenses armed that error
// classifies as FaultPKU.
type Payload struct {
	Name  string // payload identifier, e.g. "trusted-read"
	Class string // Garmr attack class it instantiates
	Run   func(t *ffi.Thread, tgt PayloadTargets) (breached bool, err error)
}

// TenantPayloads returns the hostile-tenant roster in canonical order.
// pkru-servo's -hostile mode rotates through it deterministically; every
// payload must die with a PKUERR under armed defenses, driving the
// fault/quarantine/breaker pipeline end to end.
func TenantPayloads() []Payload {
	return []Payload{
		{
			// The plain compartment breach: load the trusted secret with
			// the tenant's own (restricted) rights.
			Name:  "trusted-read",
			Class: "compartment-breach",
			Run: func(t *ffi.Thread, tgt PayloadTargets) (bool, error) {
				v, err := t.Load64(tgt.Secret)
				if err != nil {
					return false, err
				}
				return v == secretValue, nil
			},
		},
		{
			// The Garmr headline: execute a rights-widening WRPKRU from
			// untrusted code, then collect the secret. The thread's WRPKRU
			// guard suppresses the widening, so the load still faults.
			Name:  "rogue-wrpkru",
			Class: "rogue-wrpkru",
			Run: func(t *ffi.Thread, tgt PayloadTargets) (bool, error) {
				t.VM.SetPKRU(uint32(mpk.PermitAll))
				v, err := t.Load64(tgt.Secret)
				if err != nil {
					return false, err
				}
				return v == secretValue, nil
			},
		},
		{
			// Cross-tenant probe: reach into a neighbour's private pool.
			// The victim's pages carry a different (or parked) key the
			// hostile tenant's PKRU never grants.
			Name:  "cross-tenant-probe",
			Class: "compartment-breach",
			Run: func(t *ffi.Thread, tgt PayloadTargets) (bool, error) {
				if _, err := t.Load64(tgt.Victim); err != nil {
					return false, err
				}
				return true, nil
			},
		},
		{
			// Trusted clobber: the write variant — corrupt MT state
			// instead of stealing it.
			Name:  "trusted-clobber",
			Class: "compartment-breach",
			Run: func(t *ffi.Thread, tgt PayloadTargets) (bool, error) {
				if err := t.Store64(tgt.Secret, 0xdead); err != nil {
					return false, err
				}
				return true, nil
			},
		},
	}
}
