// Package attack is the executable attack corpus: every attack class the
// Garmr analysis of PKU sandboxes enumerates, built as a deterministic
// scenario against the simulator and run twice — once with the matching
// defense disabled (the red drill: the attack must succeed, proving the
// scenario is a live threat and the harness can detect the breach) and
// once with it enabled (the green drill: the attack must die with the
// expected fault, proving the defense closes the hole).
//
// The roster covers rogue WRPKRU execution outside a gate, PKRU
// exfiltration across a gate exit, signal-frame PKRU tampering, stale
// PKRU restored after a scheduler migration, eviction/retag races and
// slot reuse on the virtual-key table, uninstrumented gate bypass, and
// the confused-deputy call a syscall filter exists to stop. Each scenario
// names its class, the defense under test, and the fault the green drill
// must produce; RunDrill turns one (scenario, defense-mode) pair into a
// machine-checkable verdict.
package attack

import (
	"errors"
	"fmt"

	"repro/internal/ffi"
	"repro/internal/sig"
	"repro/internal/vm"
)

// Outcome is what one execution of a scenario observed.
type Outcome struct {
	// Breached reports that the attack reached its goal: it read or wrote
	// memory the compartment model says it must never touch.
	Breached bool
	// Fault is how the attack died, one of the fault strings below
	// ("none" when it ran to completion).
	Fault string
	// Detail is a free-form note for the human reading the verdict.
	Detail string
}

// Fault strings classify how an attack was stopped.
const (
	FaultNone         = "none"          // the attack completed
	FaultPKU          = "pkuerr"        // SIGSEGV with SEGV_PKUERR
	FaultMap          = "maperr"        // SIGSEGV with SEGV_MAPERR
	FaultGateTampered = "gate-tampered" // a gate's PKRU audit aborted the program
	FaultFiltered     = "call-filtered" // the reverse-gate call filter refused the call
	FaultAborted      = "aborted"       // the runtime was already aborted
	FaultError        = "error"         // stopped by an error outside the taxonomy
)

// Scenario is one attack class as an executable experiment. Run must be
// deterministic: it builds a fresh world, arms the defense iff defenseOn,
// mounts the attack, and reports what happened. The returned error means
// the harness itself malfunctioned (setup failed), not that the attack
// was stopped — stopped attacks are an Outcome with a Fault.
type Scenario struct {
	Name        string // scenario identifier, e.g. "rogue-wrpkru"
	Class       string // Garmr attack class the scenario instantiates
	Defense     string // defense under test
	ExpectFault string // fault the green drill must produce
	Run         func(defenseOn bool) (Outcome, error)
}

// DrillResult is the machine-readable verdict of one drill.
type DrillResult struct {
	Scenario  string
	Class     string
	Defense   string
	Drill     string // "red" or "green"
	DefenseOn bool
	Breached  bool
	Fault     string
	Expect    string // expected fault (green drills only)
	Pass      bool
	Detail    string
	Err       string // harness malfunction, if any
}

// Verdict renders the result as one stable, machine-parseable line.
func (r DrillResult) Verdict() string {
	return fmt.Sprintf(
		"ATTACK class=%s scenario=%s defense=%s drill=%s defense-mode=%s breached=%s fault=%s verdict=%s",
		r.Class, r.Scenario, r.Defense, r.Drill,
		onOff(r.DefenseOn), yesNo(r.Breached), r.Fault, passFail(r.Pass))
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func passFail(b bool) string {
	if b {
		return "PASS"
	}
	return "FAIL"
}

// RunDrill executes one drill of the scenario and judges it. A red drill
// (defense off) passes only when the breach is observed — an attack that
// fizzles with the defense down means the scenario no longer tests
// anything. A green drill passes only when no breach occurred AND the
// attack died with exactly the expected fault — dying some other way
// would mean the defense under test was not what stopped it.
func RunDrill(s Scenario, defenseOn bool) DrillResult {
	out, err := s.Run(defenseOn)
	r := DrillResult{
		Scenario:  s.Name,
		Class:     s.Class,
		Defense:   s.Defense,
		DefenseOn: defenseOn,
		Breached:  out.Breached,
		Fault:     out.Fault,
		Detail:    out.Detail,
	}
	if defenseOn {
		r.Drill = "green"
		r.Expect = s.ExpectFault
		r.Pass = !out.Breached && out.Fault == s.ExpectFault
	} else {
		r.Drill = "red"
		r.Pass = out.Breached
	}
	if err != nil {
		r.Err = err.Error()
		r.Pass = false
	}
	return r
}

// RunAll runs the red and green drill of every scenario in roster order
// and returns the verdicts, red before green per scenario.
func RunAll() []DrillResult {
	var out []DrillResult
	for _, s := range Scenarios() {
		out = append(out, RunDrill(s, false), RunDrill(s, true))
	}
	return out
}

// Failures counts the drills in rs that did not pass.
func Failures(rs []DrillResult) int {
	n := 0
	for _, r := range rs {
		if !r.Pass {
			n++
		}
	}
	return n
}

// classify maps the error an attack died with onto the fault taxonomy.
func classify(err error) string {
	if err == nil {
		return FaultNone
	}
	var f *vm.Fault
	if errors.As(err, &f) {
		switch f.Info.Code {
		case sig.CodePKUErr:
			return FaultPKU
		case sig.CodeMapErr:
			return FaultMap
		}
		return FaultError
	}
	switch {
	case errors.Is(err, ffi.ErrGateTampered):
		return FaultGateTampered
	case errors.Is(err, ffi.ErrCallFiltered):
		return FaultFiltered
	case errors.Is(err, ffi.ErrAborted):
		return FaultAborted
	}
	return FaultError
}
