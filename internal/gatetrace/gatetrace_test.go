package gatetrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpk"
	"repro/internal/telemetry"
)

// fakeReg is a minimal mpk.RightsRegister for bind-map tests.
type fakeReg struct{ r mpk.PKRU }

func (f *fakeReg) Rights() mpk.PKRU     { return f.r }
func (f *fakeReg) SetRights(v mpk.PKRU) { f.r = v }

func TestRetentionPolicy(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{Capacity: 8, TailThreshold: 50 * time.Millisecond, Registry: reg})

	clean := tr.Start("alpha")
	clean.GateSpan("libu")()
	clean.Finish()

	faulted := tr.Start("beta")
	faulted.MarkFault("addr=0x2000 pkey=1")
	faulted.Finish()

	recovered := tr.Start("alpha")
	recovered.MarkRecovery("retry", "pku fault")
	recovered.Finish()

	evicted := tr.Start("gamma")
	evicted.MarkEviction("vkey3", 5)
	evicted.Finish()

	got := tr.Retained()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3 (clean trace must be dropped)", len(got))
	}
	if got[0].Tenant != "beta" || !got[0].Faulted {
		t.Errorf("first retained = %+v, want beta/faulted", got[0])
	}
	if !got[1].Recovered || !got[2].Evicted {
		t.Errorf("flags lost: %+v %+v", got[1], got[2])
	}
	st := tr.Stats()
	if st.Started != 4 || st.Finished != 4 || st.Retained != 3 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}

	// The dropped trace still fed the histograms: all four requests and
	// the one gate observation are in the registry.
	if _, count, ok := reg.HistogramQuantiles(RequestLatencyMetric, 0.5); !ok || count != 4 {
		t.Errorf("request histogram count = %d ok=%v, want 4", count, ok)
	}
	if _, count, ok := reg.HistogramQuantiles(GateLatencyMetric, 0.5); !ok || count != 1 {
		t.Errorf("gate histogram count = %d ok=%v, want 1", count, ok)
	}
}

func TestTailThresholdRetainsSlow(t *testing.T) {
	tr := New(Config{Capacity: 4, TailThreshold: time.Nanosecond})
	c := tr.Start("slow")
	time.Sleep(10 * time.Microsecond)
	c.Finish()
	if len(tr.Retained()) != 1 {
		t.Fatal("slow trace not retained by tail threshold")
	}
	// Threshold zero: clean traces drop no matter how slow.
	tr2 := New(Config{Capacity: 4})
	c2 := tr2.Start("slow")
	time.Sleep(10 * time.Microsecond)
	c2.Finish()
	if len(tr2.Retained()) != 0 {
		t.Fatal("clean trace retained with no tail threshold")
	}
}

func TestRetainAllAndRingWrap(t *testing.T) {
	tr := New(Config{Capacity: 3, RetainAll: true})
	for i := 0; i < 5; i++ {
		c := tr.Start(fmt.Sprintf("tenant%d", i))
		c.Finish()
	}
	got := tr.Retained()
	if len(got) != 3 {
		t.Fatalf("retained %d, want capacity 3", len(got))
	}
	if got[0].Tenant != "tenant2" || got[2].Tenant != "tenant4" {
		t.Errorf("ring order wrong: %s .. %s", got[0].Tenant, got[2].Tenant)
	}
}

// TestCorrelation is the acceptance-criterion shape in miniature: one
// request's gate enter, fault, recovery action and gate exit all under
// one trace ID with a tenant label.
func TestCorrelation(t *testing.T) {
	tr := New(Config{Capacity: 4})
	c := tr.Start("tenant-a")
	end := c.GateSpan("libu")
	c.MarkFault("addr=0x2000 pkey=1")
	end()
	c.MarkRecovery("retry", "pku fault in libu")
	end2 := c.GateSpan("libu")
	end2()
	c.Finish()

	got := tr.Retained()
	if len(got) != 1 {
		t.Fatalf("retained %d", len(got))
	}
	trc := got[0]
	if trc.Tenant != "tenant-a" || trc.ID == "" {
		t.Fatalf("identity lost: %+v", trc)
	}
	var names []string
	for _, sp := range trc.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"fault", "gate:libu", "recover:retry"} {
		if !strings.Contains(joined, want) {
			t.Errorf("span %q missing from %v", want, names)
		}
	}
	if !trc.Faulted || !trc.Recovered {
		t.Errorf("flags = %+v", trc)
	}
	// Span offsets are non-negative and inside the request.
	for _, sp := range trc.Spans {
		if sp.Start < 0 || sp.Start > trc.Total {
			t.Errorf("span %q offset %v outside request total %v", sp.Name, sp.Start, trc.Total)
		}
	}
}

func TestEvictionAttributionViaBinds(t *testing.T) {
	tr := New(Config{Capacity: 4})
	regA, regB := &fakeReg{}, &fakeReg{}
	ctxA := tr.Start("alpha")
	tr.Bind(regA, ctxA)
	defer tr.Unbind(regA)

	// Eviction triggered by regA lands on alpha's trace; one triggered by
	// an unbound register is silently dropped (no context to blame).
	tr.ObserveEviction(regA, "vkey7", 4)
	tr.ObserveEviction(regB, "vkey8", 5)
	ctxA.Finish()

	got := tr.Retained()
	if len(got) != 1 {
		t.Fatalf("retained %d", len(got))
	}
	if !got[0].Evicted || got[0].Spans[0].Name != "evict:vkey7" {
		t.Errorf("eviction not attributed: %+v", got[0].Spans)
	}
	// Unbinding stops attribution.
	tr.Unbind(regA)
	tr.ObserveEviction(regA, "vkey9", 6) // must not panic, no live context
}

func TestNilTracerAndContext(t *testing.T) {
	var tr *Tracer
	c := tr.Start("x")
	if c != nil {
		t.Fatal("nil tracer minted a context")
	}
	c.GateSpan("d")()
	c.Span("s", "")()
	c.Instant("i", "", "")
	c.MarkFault("f")
	c.MarkRecovery("retry", "c")
	c.MarkEviction("v", 1)
	c.Finish()
	if c.ID() != "" || c.Tenant() != "" || c.Flagged() {
		t.Error("nil context leaked state")
	}
	tr.Bind(&fakeReg{}, nil)
	tr.ObserveEviction(&fakeReg{}, "v", 1)
	if tr.Retained() != nil || tr.Stats() != (Stats{}) {
		t.Error("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil tracer export not JSON: %v", err)
	}
}

func TestConcurrentRequests(t *testing.T) {
	tr := New(Config{Capacity: 64, Registry: telemetry.NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := tr.Start(fmt.Sprintf("tenant%d", g))
				end := c.GateSpan("libu")
				if i%10 == 0 {
					c.MarkFault("injected")
				}
				end()
				c.Finish()
			}
		}(g)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Finished != 400 {
		t.Fatalf("finished = %d", st.Finished)
	}
	if st.Retained != 40 || st.Dropped != 360 {
		t.Errorf("retention split = %+v, want 40/360", st)
	}
	for _, trc := range tr.Retained() {
		if !trc.Faulted {
			t.Errorf("clean trace retained: %+v", trc)
		}
	}
}

// TestLateSpanAfterFinish pins that a gate exit racing past Finish cannot
// mutate the filed trace.
func TestLateSpanAfterFinish(t *testing.T) {
	tr := New(Config{Capacity: 4, RetainAll: true})
	c := tr.Start("x")
	end := c.GateSpan("libu")
	c.Finish()
	end() // late exit: histogram may still observe, but the trace is sealed
	got := tr.Retained()
	if len(got) != 1 {
		t.Fatalf("retained %d", len(got))
	}
	if len(got[0].Spans) != 0 {
		t.Errorf("late span mutated a filed trace: %+v", got[0].Spans)
	}
}

func TestChromeExportShape(t *testing.T) {
	tr := New(Config{Capacity: 4})
	c := tr.Start("tenant-a")
	end := c.GateSpan("libu")
	c.MarkFault("addr=0x2000")
	end()
	c.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string            `json:"name"`
			Ph    string            `json:"ph"`
			Ts    float64           `json:"ts"`
			Dur   float64           `json:"dur"`
			Pid   int               `json:"pid"`
			Tid   int               `json:"tid"`
			Scope string            `json:"s"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var haveMeta, haveRequest, haveGate, haveFault bool
	for _, ev := range out.TraceEvents {
		if ev.Ts < 0 {
			t.Errorf("negative ts in %+v", ev)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			haveMeta = true
			if !strings.Contains(ev.Args["name"], "tenant=tenant-a") || !strings.Contains(ev.Args["name"], "faulted") {
				t.Errorf("thread name %q lacks tenant/flags", ev.Args["name"])
			}
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "request "):
			haveRequest = true
			if ev.Args["tenant"] != "tenant-a" || ev.Args["trace_id"] == "" {
				t.Errorf("request args = %v", ev.Args)
			}
		case ev.Ph == "X" && ev.Name == "gate:libu":
			haveGate = true
		case ev.Ph == "i" && ev.Name == "fault":
			haveFault = true
			if ev.Scope != "t" {
				t.Errorf("instant scope = %q", ev.Scope)
			}
		}
	}
	if !haveMeta || !haveRequest || !haveGate || !haveFault {
		t.Errorf("export missing rows: meta=%v request=%v gate=%v fault=%v\n%s",
			haveMeta, haveRequest, haveGate, haveFault, buf.String())
	}
}

// fakeSampler implements SamplerControl for controller tests.
type fakeSampler struct{ n int }

func (f *fakeSampler) Interval() int { return f.n }
func (f *fakeSampler) SetInterval(n int) {
	if n < 1 {
		n = 1
	}
	f.n = n
}

// TestControllerRetunesOnLatencyShift is the acceptance criterion: the
// controller measurably changes the sampling interval when injected gate
// latency shifts across the target.
func TestControllerRetunesOnLatencyShift(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{Capacity: 4, Registry: reg})
	s := &fakeSampler{n: 8}
	ctl := &Controller{Sampler: s, Registry: reg, Target: 10 * time.Microsecond, Min: 1, Max: 64, MinSamples: 8}

	// Phase 1: hot gates — injected latencies far above target. The
	// controller must back off (double the interval).
	hot := tr.Start("hot")
	for i := 0; i < 32; i++ {
		tr.observeGate("libu", 100*time.Microsecond, hot.ID())
	}
	hot.Finish()
	r := ctl.Retune()
	if !r.Changed || r.New != 16 {
		t.Fatalf("hot retune = %+v, want interval 8→16", r)
	}
	// Same window again: no new observations, must hold.
	if r := ctl.Retune(); r.Changed {
		t.Fatalf("retuned on stale window: %+v", r)
	}

	// Phase 2: flood with fast observations until the merged p99 sits
	// under half the target, then the controller leans back in.
	cold := tr.Start("cold")
	for i := 0; i < 20000; i++ {
		tr.observeGate("libu", 100*time.Nanosecond, cold.ID())
	}
	cold.Finish()
	r = ctl.Retune()
	if !r.Changed || r.New != 8 {
		t.Fatalf("cold retune = %+v (p99=%v), want interval 16→8", r, r.P99)
	}
}

func TestControllerClampsAndMinSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{Capacity: 4, Registry: reg})
	s := &fakeSampler{n: 1}
	ctl := &Controller{Sampler: s, Registry: reg, Target: time.Microsecond, Min: 1, Max: 4, MinSamples: 8}

	// Too few samples: hold even though p99 is over target.
	c := tr.Start("x")
	tr.observeGate("libu", time.Millisecond, c.ID())
	c.Finish()
	if r := ctl.Retune(); r.Changed {
		t.Fatalf("retuned under MinSamples: %+v", r)
	}
	// Enough samples: double, but never past Max.
	for i := 0; i < 32; i++ {
		tr.observeGate("libu", time.Millisecond, "t")
	}
	ctl.Retune() // 1 → 2
	for i := 0; i < 8; i++ {
		tr.observeGate("libu", time.Millisecond, "t")
	}
	ctl.Retune() // 2 → 4
	for i := 0; i < 8; i++ {
		tr.observeGate("libu", time.Millisecond, "t")
	}
	if r := ctl.Retune(); r.New != 4 {
		t.Fatalf("interval escaped Max: %+v", r)
	}
}
