// Package gatetrace is the request-scoped tracing layer of the PKRU-Safe
// runtime: one Context per request (or per top-level CLI run) collects
// every gate traversal, compartment fault, supervisor recovery action and
// vkey slot eviction that request caused, as timed spans under one trace
// ID and one tenant label.
//
// The aggregate planes — the telemetry registry, the global trace ring,
// the crossing sampler — answer "how expensive are the gates on average".
// They cannot answer the question an operator actually asks: *why was
// this request slow, and what exactly happened to the one that faulted?*
// Garmr's lesson (PAPERS.md) is that the dangerous behaviour lives at the
// gates; libmpk's is that slot pressure is a dynamic property of the
// workload. Both are per-request, per-domain phenomena, so the evidence
// trail must be too.
//
// The layer is tail-based: every finished Context updates the per-domain
// gate-latency and per-tenant request-latency histograms (with exemplar
// trace IDs, so a tail bucket in /metrics names a trace to go look at),
// but only the traces worth reading — those that faulted, recovered,
// suffered an eviction, or ran slower than the configured threshold — are
// retained in full. Retained traces export as Chrome trace_event JSON
// (see export.go) viewable in chrome://tracing or Perfetto.
//
// Every method on a nil *Tracer or nil *Context is a no-op, so the gate
// machinery instruments unconditionally and pays one pointer test when
// tracing is off — the same discipline as package telemetry.
package gatetrace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpk"
	"repro/internal/telemetry"
)

// Metric family names registered by New. Exported so the obs plane and
// the adaptive controller agree on them without string duplication.
const (
	// GateLatencyMetric is the per-domain gate enter→restore latency
	// histogram (label: domain). Distinct from ffi's per-library family:
	// this one is attributed to the *compartment domain* a traced request
	// crossed into, which is the axis slot pressure and tenant blame live
	// on.
	GateLatencyMetric = "pkrusafe_domain_gate_latency_ns"
	// RequestLatencyMetric is the per-tenant whole-request latency
	// histogram (label: tenant).
	RequestLatencyMetric = "pkrusafe_request_latency_ns"
)

// Config parameterizes New.
type Config struct {
	// Capacity bounds the retained-trace ring (default 64).
	Capacity int
	// TailThreshold, when > 0, additionally retains any trace whose total
	// latency meets it — the "slow but clean" tail. Zero keeps only
	// flagged traces (fault / recovery / eviction).
	TailThreshold time.Duration
	// RetainAll keeps every finished trace (CLI `pkrusafe trace` mode).
	RetainAll bool
	// Registry receives the gate- and request-latency histogram families.
	// Nil disables metrics but not retention.
	Registry *telemetry.Registry
}

// Tracer mints contexts, owns the latency histograms and the retained
// ring, and maps rights registers back to the context currently driving
// them (for eviction attribution). Safe for concurrent use.
type Tracer struct {
	cfg     Config
	epoch   time.Time
	gateLat *telemetry.HistogramVec
	reqLat  *telemetry.HistogramVec
	nextID  atomic.Uint64

	mu       sync.Mutex
	retained []*Trace // ring, oldest overwritten
	next     uint64   // total retained ever
	started  uint64
	finished uint64
	dropped  uint64 // finished but not retained
	binds    map[mpk.RightsRegister]*Context
}

// Span is one timed (or instant) region inside a trace: a gate traversal,
// a recovery action, an eviction, a fault.
type Span struct {
	Name    string        `json:"name"`
	Domain  string        `json:"domain,omitempty"`
	Start   time.Duration `json:"start"` // offset from the context's start
	Dur     time.Duration `json:"dur"`
	Instant bool          `json:"instant,omitempty"`
	Detail  string        `json:"detail,omitempty"`
}

// Trace is one finished, retained request trace.
type Trace struct {
	ID        string        `json:"id"`
	Tenant    string        `json:"tenant"`
	Offset    time.Duration `json:"offset"` // start, relative to tracer epoch
	Total     time.Duration `json:"total"`
	Faulted   bool          `json:"faulted,omitempty"`
	Recovered bool          `json:"recovered,omitempty"`
	Evicted   bool          `json:"evicted,omitempty"`
	Breaker   bool          `json:"breaker,omitempty"` // moved a tenant circuit breaker
	Spans     []Span        `json:"spans"`
}

// Stats is a snapshot of the tracer's retention accounting.
type Stats struct {
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	Retained uint64 `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// New builds a tracer. Nil-tolerant callers may pass the result around
// unconditionally; a nil *Tracer disables everything.
func New(cfg Config) *Tracer {
	if cfg.Capacity < 1 {
		cfg.Capacity = 64
	}
	t := &Tracer{
		cfg:   cfg,
		epoch: time.Now(),
		binds: make(map[mpk.RightsRegister]*Context),
	}
	if reg := cfg.Registry; reg != nil {
		t.gateLat = reg.HistogramVec(GateLatencyMetric,
			"Gate enter-to-restore latency of traced crossings, by compartment domain.", "ns", "domain")
		t.reqLat = reg.HistogramVec(RequestLatencyMetric,
			"Whole-request latency of traced requests, by tenant.", "ns", "tenant")
	}
	return t
}

// Start opens a request-scoped context under the given tenant label.
// Returns nil on a nil tracer — and every Context method is nil-safe, so
// the caller threads the result through unconditionally.
func (t *Tracer) Start(tenant string) *Context {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.started++
	t.mu.Unlock()
	return &Context{
		tr:     t,
		id:     fmt.Sprintf("t%d", t.nextID.Add(1)),
		tenant: tenant,
		start:  time.Now(),
	}
}

// Bind associates a rights register with the context currently driving
// it, so an eviction triggered *by* some other tenant's activation can be
// attributed to the request that *suffered* it. Unbind when the request
// ends (Context.Finish does not know its registers).
func (t *Tracer) Bind(reg mpk.RightsRegister, c *Context) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	if c == nil {
		delete(t.binds, reg)
	} else {
		t.binds[reg] = c
	}
	t.mu.Unlock()
}

// Unbind removes a register's context association.
func (t *Tracer) Unbind(reg mpk.RightsRegister) { t.Bind(reg, nil) }

// ContextFor returns the context bound to reg, if any. Nil-safe on both
// sides; used by layers (domains, vkey eviction sink) that see a register
// but not the request that is driving it.
func (t *Tracer) ContextFor(reg mpk.RightsRegister) *Context {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.binds[reg]
}

// ObserveEviction matches vkey.EvictionSink: wire it with
// table.SetEvictionSink(tracer.ObserveEviction). The eviction is recorded
// on the context whose register triggered the activation that evicted the
// victim — that request paid the retag latency and will pay the re-fault,
// so that is the trace the eviction belongs to.
func (t *Tracer) ObserveEviction(trigger mpk.RightsRegister, victim string, slot mpk.Key) {
	t.ContextFor(trigger).MarkEviction(victim, slot)
}

// Retained returns the retained traces, oldest first.
func (t *Tracer) Retained() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.retained))
	start := uint64(0)
	if t.next > n {
		start = t.next - n
	}
	out := make([]*Trace, 0, t.next-start)
	for s := start; s < t.next; s++ {
		out = append(out, t.retained[s%n])
	}
	return out
}

// Stats returns the retention accounting.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Started: t.started, Finished: t.finished, Retained: t.next, Dropped: t.dropped}
}

// observeGate records one gate traversal's latency into the per-domain
// histogram. The trace ID rides along as the bucket exemplar, so the tail
// buckets of /metrics name retained traces to go read.
func (t *Tracer) observeGate(domain string, dur time.Duration, id string) {
	if t == nil {
		return
	}
	t.gateLat.With(domain).ObserveEx(uint64(dur), id)
}

// finish files a completed context: histograms always, full retention
// only for traces worth reading.
func (t *Tracer) finish(c *Context, total time.Duration) {
	if t == nil {
		return
	}
	t.reqLat.With(c.tenant).ObserveEx(uint64(total), c.id)
	keep := t.cfg.RetainAll || c.faulted || c.recovered || c.evicted || c.breaker ||
		(t.cfg.TailThreshold > 0 && total >= t.cfg.TailThreshold)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	if !keep {
		t.dropped++
		return
	}
	tr := &Trace{
		ID:        c.id,
		Tenant:    c.tenant,
		Offset:    c.start.Sub(t.epoch),
		Total:     total,
		Faulted:   c.faulted,
		Recovered: c.recovered,
		Evicted:   c.evicted,
		Breaker:   c.breaker,
		Spans:     c.spans, // ownership transfers; the context is finished
	}
	if len(t.retained) < t.cfg.Capacity {
		t.retained = append(t.retained, tr)
	} else {
		t.retained[t.next%uint64(len(t.retained))] = tr
	}
	t.next++
}

// Context is one in-flight request trace. All methods are safe on nil and
// safe for concurrent use (a request's gates may run on a worker while
// the supervisor marks recovery from the shield frame).
type Context struct {
	tr     *Tracer
	id     string
	tenant string
	start  time.Time

	mu        sync.Mutex
	spans     []Span
	faulted   bool
	recovered bool
	evicted   bool
	breaker   bool
	done      bool
}

// ID returns the trace ID ("" on nil).
func (c *Context) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// Tenant returns the tenant label ("" on nil).
func (c *Context) Tenant() string {
	if c == nil {
		return ""
	}
	return c.tenant
}

// since returns the offset of now from the context's start.
func (c *Context) since() time.Duration { return time.Since(c.start) }

// add appends a span (skipped after Finish: a late gate exit racing the
// request's own completion must not mutate a filed trace).
func (c *Context) add(s Span) {
	c.mu.Lock()
	if !c.done {
		c.spans = append(c.spans, s)
	}
	c.mu.Unlock()
}

// GateSpan opens a timed gate-traversal span into the named domain and
// returns its closer, shaped for the gate's defer-based exit half:
//
//	end := ctx.GateSpan("libu")
//	defer end()
//
// The closer also observes the per-domain gate-latency histogram.
func (c *Context) GateSpan(domain string) func() {
	if c == nil {
		return func() {}
	}
	start := c.since()
	return func() {
		dur := c.since() - start
		c.add(Span{Name: "gate:" + domain, Domain: domain, Start: start, Dur: dur})
		c.tr.observeGate(domain, dur, c.id)
	}
}

// Span opens a generic timed span (request bodies, domain enter/leave
// pairs) and returns its closer.
func (c *Context) Span(name, domain string) func() {
	if c == nil {
		return func() {}
	}
	start := c.since()
	return func() {
		c.add(Span{Name: name, Domain: domain, Start: start, Dur: c.since() - start})
	}
}

// Instant records a zero-duration event.
func (c *Context) Instant(name, domain, detail string) {
	if c == nil {
		return
	}
	c.add(Span{Name: name, Domain: domain, Start: c.since(), Instant: true, Detail: detail})
}

// MarkFault flags the trace as faulted and records the fault instant.
// A faulted trace is always retained.
func (c *Context) MarkFault(detail string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.faulted = true
	c.mu.Unlock()
	c.Instant("fault", "", detail)
}

// MarkRecovery flags the trace as recovered and records the supervisor's
// action ("retry", "quarantine", "heal") with its cause.
func (c *Context) MarkRecovery(action, cause string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.recovered = true
	c.mu.Unlock()
	c.Instant("recover:"+action, "", cause)
}

// MarkBreaker flags the trace as having moved a tenant's circuit
// breaker and records the transition instant, named "breaker:<state>"
// ("breaker:open", "breaker:half-open", "breaker:closed") — the naming
// scripts/tracecheck validates. A breaker-moving trace is always
// retained: the request that tripped (or recovered) a tenant is exactly
// the one an operator wants to read.
func (c *Context) MarkBreaker(toState, tenant, reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.breaker = true
	c.mu.Unlock()
	c.Instant("breaker:"+toState, tenant, reason)
}

// MarkEviction flags the trace as having triggered a vkey slot eviction.
func (c *Context) MarkEviction(victim string, slot mpk.Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.evicted = true
	c.mu.Unlock()
	c.Instant("evict:"+victim, victim, fmt.Sprintf("slot=%d", slot))
}

// Flagged reports whether the trace has hit a retention-forcing event.
func (c *Context) Flagged() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faulted || c.recovered || c.evicted || c.breaker
}

// Finish closes the context: the per-tenant request-latency histogram is
// updated and the trace is retained or dropped per the tracer's policy.
// Finish is idempotent; spans arriving after it are discarded.
func (c *Context) Finish() {
	if c == nil {
		return
	}
	total := c.since()
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.mu.Unlock()
	c.tr.finish(c, total)
}
