package gatetrace

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SamplerControl is the knob the adaptive controller turns — implemented
// by profstore.Sampler. The interface lives here so the controller need
// not import profstore (gatetrace sits below it in the import graph).
type SamplerControl interface {
	// Interval returns the current sampling interval (sample every Nth
	// crossing; <= 1 samples all).
	Interval() int
	// SetInterval replaces the interval; implementations clamp to >= 1.
	SetInterval(n int)
}

// Controller retunes a crossing sampler's interval from the live
// per-domain gate-latency p99 — the ROADMAP's "adaptive sampling
// interval" item. The control law is deliberately coarse (multiplicative
// increase / decrease with hysteresis): when the gates run hot the
// profiler backs off to stop compounding the tail, and when they run well
// under target it leans back in for attribution coverage. Coarse is
// correct here — the histogram is log2-bucketed, so finer steps would be
// tuning inside the measurement error.
type Controller struct {
	// Sampler is the knob (required).
	Sampler SamplerControl
	// Registry is read for the gate-latency family (required).
	Registry *telemetry.Registry
	// Metric is the histogram family to watch; GateLatencyMetric when "".
	Metric string
	// Target is the gate-latency p99 the controller steers around
	// (required, > 0).
	Target time.Duration
	// Min and Max clamp the interval (defaults 1 and 1<<16).
	Min, Max int
	// MinSamples gates retuning until the histogram has enough mass to
	// mean anything (default 16).
	MinSamples uint64

	mu        sync.Mutex
	lastCount uint64
}

// Retuning describes one Retune decision, for logs and tests.
type Retuning struct {
	P99     time.Duration
	Count   uint64
	Old     int
	New     int
	Changed bool
}

func (c *Controller) metric() string {
	if c.Metric == "" {
		return GateLatencyMetric
	}
	return c.Metric
}

func (c *Controller) clamp(n int) int {
	min, max := c.Min, c.Max
	if min < 1 {
		min = 1
	}
	if max <= 0 {
		max = 1 << 16
	}
	if n < min {
		return min
	}
	if n > max {
		return max
	}
	return n
}

// Retune reads the current merged p99 of the watched family and adjusts
// the sampler: p99 above target doubles the interval (sample less, shed
// profiling overhead from an already-hot gate path); p99 below half the
// target halves it (the gates have headroom — buy attribution). In the
// hysteresis band between, it holds. A window with no new observations
// since the previous call never acts: a stale p99 is yesterday's weather.
func (c *Controller) Retune() Retuning {
	r := Retuning{Old: c.Sampler.Interval(), New: c.Sampler.Interval()}
	vals, count, ok := c.Registry.HistogramQuantiles(c.metric(), 0.99)
	if !ok || len(vals) == 0 {
		return r
	}
	r.P99, r.Count = time.Duration(vals[0]), count
	minSamples := c.MinSamples
	if minSamples == 0 {
		minSamples = 16
	}
	c.mu.Lock()
	fresh := count > c.lastCount
	c.lastCount = count
	c.mu.Unlock()
	if !fresh || count < minSamples || c.Target <= 0 {
		return r
	}
	switch {
	case r.P99 > c.Target:
		r.New = c.clamp(r.Old * 2)
	case r.P99 < c.Target/2:
		r.New = c.clamp(r.Old / 2)
	default:
		return r
	}
	if r.New != r.Old {
		c.Sampler.SetInterval(r.New)
		r.Changed = true
	}
	return r
}

// Run retunes every period until stop closes, reporting each change to
// onChange (which may be nil). It is the long-running form pkru-servo
// launches next to its request loops.
func (c *Controller) Run(stop <-chan struct{}, period time.Duration, onChange func(Retuning)) {
	if period <= 0 {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if r := c.Retune(); r.Changed && onChange != nil {
				onChange(r)
			}
		}
	}
}
