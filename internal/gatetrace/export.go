package gatetrace

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format, the JSON
// dialect chrome://tracing and Perfetto load directly. Only the fields
// this exporter emits are modeled: "X" complete events carry ts+dur, "i"
// instant events carry ts and a scope, "M" metadata events name threads.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level object form of the format (the variant
// that allows metadata alongside the event array).
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
	Stats           Stats         `json:"pkrusafeStats"`
}

// usec converts a duration to trace_event microseconds.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the retained traces as Chrome trace_event
// JSON. Each retained trace becomes one named "thread" (tid) under a
// single process: a metadata row carries the trace ID and tenant, a
// top-level "X" event spans the whole request, and every span inside it
// renders as a nested "X" (or an "i" instant for faults, recoveries and
// evictions). Timestamps are rebased to the earliest retained trace so
// the timeline opens at zero.
//
// A tracer with nothing retained (or a nil tracer) writes a valid empty
// trace — chrome://tracing accepts it, showing no rows.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	traces := t.Retained()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}, Stats: t.Stats()}
	var base time.Duration
	for i, tr := range traces {
		if i == 0 || tr.Offset < base {
			base = tr.Offset
		}
	}
	for i, tr := range traces {
		tid := i + 1
		start := tr.Offset - base
		flags := ""
		if tr.Faulted {
			flags += " faulted"
		}
		if tr.Recovered {
			flags += " recovered"
		}
		if tr.Evicted {
			flags += " evicted"
		}
		if tr.Breaker {
			flags += " breaker"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": tr.ID + " tenant=" + tr.Tenant + flags},
		})
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "request " + tr.ID, Cat: "request", Ph: "X",
			Ts: usec(start), Dur: usec(tr.Total), Pid: 1, Tid: tid,
			Args: map[string]string{"trace_id": tr.ID, "tenant": tr.Tenant},
		})
		for _, sp := range tr.Spans {
			ev := chromeEvent{
				Name: sp.Name, Cat: "gate", Ph: "X",
				Ts: usec(start + sp.Start), Dur: usec(sp.Dur), Pid: 1, Tid: tid,
			}
			if sp.Domain != "" || sp.Detail != "" {
				ev.Args = map[string]string{}
				if sp.Domain != "" {
					ev.Args["domain"] = sp.Domain
				}
				if sp.Detail != "" {
					ev.Args["detail"] = sp.Detail
				}
			}
			if sp.Instant {
				ev.Ph, ev.Dur, ev.Scope, ev.Cat = "i", 0, "t", "event"
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
