package vkey

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpk"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// testTable builds a table over a fresh space with keys 0, 1 (trusted) and
// the inactive key reserved, plus one reserved page-rangeable region per
// potential logical key the test may attach.
func testTable(t *testing.T) (*Table, *vm.Space) {
	t.Helper()
	space := vm.NewSpace()
	tab, err := NewTable(space, Config{Reserved: []mpk.Key{1}})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab, space
}

// reserveRange reserves one page-sized region for a test key.
func reserveRange(t *testing.T, space *vm.Space, i int) (vm.Addr, uint64) {
	t.Helper()
	base := vm.Addr(0x5000_0000_0000 + uint64(i)<<20)
	size := uint64(vm.PageSize)
	if _, err := space.Reserve(fmt.Sprintf("vkey-test/%d", i), base, size, 0); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	return base, size
}

func TestSlotCount(t *testing.T) {
	tab, _ := testTable(t)
	// 16 keys minus reserved {0, 1, inactive} = 13 multiplexable slots.
	if got, want := tab.Slots(), 13; got != want {
		t.Fatalf("Slots() = %d, want %d", got, want)
	}
}

func TestActivateHitAndMiss(t *testing.T) {
	tab, space := testTable(t)
	id := tab.Alloc("a")
	base, size := reserveRange(t, space, 0)
	if err := tab.Attach(id, base, size); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// Parked: pages carry the inactive key.
	if k, _ := space.PKeyAt(base); k != tab.InactiveKey() {
		t.Fatalf("parked page key = %v, want inactive %v", k, tab.InactiveKey())
	}
	hw, miss, err := tab.Activate(id)
	if err != nil || !miss {
		t.Fatalf("first Activate = (%v, %v, %v), want miss", hw, miss, err)
	}
	if k, _ := space.PKeyAt(base); k != hw {
		t.Fatalf("active page key = %v, want slot %v", k, hw)
	}
	hw2, miss2, err := tab.Activate(id)
	if err != nil || miss2 || hw2 != hw {
		t.Fatalf("second Activate = (%v, %v, %v), want hit on %v", hw2, miss2, err, hw)
	}
	st := tab.Stats()
	if st.SlotMisses != 1 || st.SlotHits != 1 || st.Activations != 2 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 2 activations", st)
	}
}

func TestLRUEvictionRetagsAndRevokes(t *testing.T) {
	tab, space := testTable(t)
	n := tab.Slots()
	ids := make([]ID, n+1)
	bases := make([]vm.Addr, n+1)
	for i := range ids {
		ids[i] = tab.Alloc(fmt.Sprintf("d%d", i))
		base, size := reserveRange(t, space, i)
		bases[i] = base
		if err := tab.Attach(ids[i], base, size); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	var firstHW mpk.Key
	for i := 0; i < n; i++ {
		hw, _, err := tab.Activate(ids[i])
		if err != nil {
			t.Fatalf("Activate %d: %v", i, err)
		}
		if i == 0 {
			firstHW = hw
		}
	}
	// A bound thread inside domain 0 holds rights for its slot.
	th := vm.NewThread(space, nil)
	tab.Bind(th)
	th.SetRights(mpk.DenyAllExcept(0, firstHW))

	// One more activation: every slot is taken, ids[0] is LRU.
	hw, miss, err := tab.Activate(ids[n])
	if err != nil || !miss {
		t.Fatalf("evicting Activate = (%v, %v, %v)", hw, miss, err)
	}
	if hw != firstHW {
		t.Fatalf("recycled slot = %v, want LRU victim's %v", hw, firstHW)
	}
	// pkey_sync: the victim's pages are parked on the inactive key …
	if k, _ := space.PKeyAt(bases[0]); k != tab.InactiveKey() {
		t.Fatalf("evicted page key = %v, want inactive %v", k, tab.InactiveKey())
	}
	// … and the bound thread lost its rights for the rebound slot.
	if r := th.Rights().Rights(firstHW); r != mpk.DenyAll {
		t.Fatalf("bound thread still holds %v for rebound slot %v", r, firstHW)
	}
	st := tab.Stats()
	if st.Evictions != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 eviction / 1 invalidation", st)
	}
	if st.Active != n || st.Parked != 1 {
		t.Fatalf("stats = %+v, want %d active / 1 parked", st, n)
	}
}

func TestPermitAllThreadNotRevoked(t *testing.T) {
	tab, space := testTable(t)
	th := vm.NewThread(space, nil)
	tab.Bind(th)
	th.SetRights(mpk.PermitAll) // the trusted compartment's register
	n := tab.Slots()
	ids := make([]ID, n+1)
	for i := range ids {
		ids[i] = tab.Alloc("d")
	}
	for _, id := range ids {
		if _, _, err := tab.Activate(id); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	if th.Rights() != mpk.PermitAll {
		t.Fatalf("trusted thread's PKRU changed to %v", th.Rights())
	}
	if st := tab.Stats(); st.Invalidations != 0 {
		t.Fatalf("invalidations = %d, want 0 for PermitAll", st.Invalidations)
	}
}

func TestFreeRecyclesSlotAndParksPages(t *testing.T) {
	tab, space := testTable(t)
	id := tab.Alloc("a")
	base, size := reserveRange(t, space, 0)
	if err := tab.Attach(id, base, size); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	hw, _, err := tab.Activate(id)
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if err := tab.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if k, _ := space.PKeyAt(base); k != tab.InactiveKey() {
		t.Fatalf("freed page key = %v, want inactive", k)
	}
	if _, _, err := tab.Activate(id); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Activate after Free = %v, want ErrUnknownKey", err)
	}
	// The slot is immediately reusable.
	id2 := tab.Alloc("b")
	hw2, _, err := tab.Activate(id2)
	if err != nil {
		t.Fatalf("Activate recycled: %v", err)
	}
	if hw2 != hw {
		t.Fatalf("recycled slot = %v, want %v", hw2, hw)
	}
	if st := tab.Stats(); st.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", st.Recycled)
	}
}

func TestUnboundedLogicalKeys(t *testing.T) {
	tab, _ := testTable(t)
	const logical = 100
	for i := 0; i < logical; i++ {
		id := tab.Alloc("d")
		if _, _, err := tab.Activate(id); err != nil {
			t.Fatalf("Activate %d: %v", i, err)
		}
	}
	st := tab.Stats()
	if st.Logical != logical {
		t.Fatalf("Logical = %d, want %d", st.Logical, logical)
	}
	if st.Active != tab.Slots() {
		t.Fatalf("Active = %d, want %d", st.Active, tab.Slots())
	}
	if st.Evictions != uint64(logical-tab.Slots()) {
		t.Fatalf("Evictions = %d, want %d", st.Evictions, logical-tab.Slots())
	}
}

func TestStaleEvictionInjection(t *testing.T) {
	tab, space := testTable(t)
	tab.InjectStaleEviction(true)
	n := tab.Slots()
	var firstBase vm.Addr
	var firstHW mpk.Key
	for i := 0; i <= n; i++ {
		id := tab.Alloc("d")
		base, size := reserveRange(t, space, i)
		if err := tab.Attach(id, base, size); err != nil {
			t.Fatalf("Attach: %v", err)
		}
		hw, _, err := tab.Activate(id)
		if err != nil {
			t.Fatalf("Activate: %v", err)
		}
		if i == 0 {
			firstBase, firstHW = base, hw
		}
	}
	// The planted bug: the evicted key's pages kept the old hardware tag,
	// now owned by the newest logical key.
	if k, _ := space.PKeyAt(firstBase); k != firstHW {
		t.Fatalf("stale-evict page key = %v, want leaked %v", k, firstHW)
	}
}

func TestMarkFaulted(t *testing.T) {
	tab, _ := testTable(t)
	id := tab.Alloc("a")
	if err := tab.MarkFaulted(id); err != nil {
		t.Fatalf("MarkFaulted: %v", err)
	}
	if err := tab.MarkFaulted(id); err != nil {
		t.Fatalf("MarkFaulted twice: %v", err)
	}
	if st := tab.Stats(); st.Faulted != 1 {
		t.Fatalf("Faulted = %d, want 1", st.Faulted)
	}
	if err := tab.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if st := tab.Stats(); st.Faulted != 0 {
		t.Fatalf("Faulted after Free = %d, want 0", st.Faulted)
	}
	if err := tab.MarkFaulted(id); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("MarkFaulted freed = %v, want ErrUnknownKey", err)
	}
}

func TestTelemetryPublishes(t *testing.T) {
	tab, _ := testTable(t)
	reg := telemetry.NewRegistry()
	tab.SetTelemetry(reg)
	for i := 0; i < tab.Slots()+2; i++ {
		id := tab.Alloc("d")
		if _, _, err := tab.Activate(id); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	if v, ok := reg.CounterValue("pkrusafe_vkey_evictions_total"); !ok || v < 2 {
		t.Fatalf("evictions counter = (%v, %v), want >= 2", v, ok)
	}
	if v, ok := reg.CounterValue("pkrusafe_vkey_slot_misses_total"); !ok || v == 0 {
		t.Fatalf("miss counter = (%v, %v), want > 0", v, ok)
	}
}

func TestConcurrentAllocActivateFree(t *testing.T) {
	tab, _ := testTable(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tab.Alloc("d")
				if _, _, err := tab.Activate(id); err != nil {
					t.Errorf("Activate: %v", err)
					return
				}
				if i%3 == 0 {
					if err := tab.Free(id); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := tab.Stats()
	if st.Active > tab.Slots() {
		t.Fatalf("Active = %d exceeds %d slots", st.Active, tab.Slots())
	}
}
