package vkey

import (
	"errors"
	"fmt"
	"testing"
)

// TestPinSurvivesChurn pins one key and rotates many more keys than
// slots through the table: the pinned key's slot must never be stolen,
// while unpinned keys evict as usual.
func TestPinSurvivesChurn(t *testing.T) {
	tab, space := testTable(t)
	pinnedID := tab.Alloc("pinned")
	base, size := reserveRange(t, space, 0)
	if err := tab.Attach(pinnedID, base, size); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	hw, _, err := tab.Activate(pinnedID)
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if err := tab.Pin(pinnedID); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if !tab.Pinned(pinnedID) {
		t.Fatal("Pinned() = false after Pin")
	}

	// Rotate twice the slot count of other keys through: every rotation
	// past the free slots must evict, and the victim must never be the
	// pinned key.
	for i := 0; i < 2*tab.Slots(); i++ {
		id := tab.Alloc(fmt.Sprintf("churn%d", i))
		b, s := reserveRange(t, space, i+1)
		if err := tab.Attach(id, b, s); err != nil {
			t.Fatalf("Attach churn%d: %v", i, err)
		}
		if _, _, err := tab.Activate(id); err != nil {
			t.Fatalf("Activate churn%d: %v", i, err)
		}
		if k, _ := space.PKeyAt(base); k != hw {
			t.Fatalf("after churn %d: pinned key's pages on %v, want slot %v", i, k, hw)
		}
	}
	if st := tab.Stats(); st.Evictions == 0 {
		t.Error("churn past the slot count evicted nothing; the pin was never tested")
	}

	// Unpinned, the key becomes the LRU victim again.
	if err := tab.Unpin(pinnedID); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	id := tab.Alloc("final")
	b, s := reserveRange(t, space, 100)
	if err := tab.Attach(id, b, s); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Activate(id); err != nil {
		t.Fatalf("Activate after Unpin: %v", err)
	}
	if k, _ := space.PKeyAt(base); k != tab.InactiveKey() {
		t.Errorf("unpinned LRU key not evicted: pages on %v, want inactive %v", k, tab.InactiveKey())
	}
}

// TestPinLimit pins keys up to the eviction-aware cap: nslots-1 pins
// succeed, one more is refused with ErrPinLimit, re-pinning is
// idempotent, and with every pinned key slot-resident an unpinned
// key's activation still finds the one guaranteed evictable slot.
func TestPinLimit(t *testing.T) {
	tab, space := testTable(t)
	limit := tab.Slots() - 1
	ids := make([]ID, 0, limit)
	for i := 0; i < limit; i++ {
		id := tab.Alloc(fmt.Sprintf("t%d", i))
		b, s := reserveRange(t, space, i)
		if err := tab.Attach(id, b, s); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.Activate(id); err != nil {
			t.Fatal(err)
		}
		if err := tab.Pin(id); err != nil {
			t.Fatalf("pin %d of %d: %v", i+1, limit, err)
		}
		ids = append(ids, id)
	}
	if err := tab.Pin(ids[0]); err != nil {
		t.Errorf("re-pinning an already-pinned key: %v, want nil", err)
	}

	over := tab.Alloc("over")
	b, s := reserveRange(t, space, limit)
	if err := tab.Attach(over, b, s); err != nil {
		t.Fatal(err)
	}
	if err := tab.Pin(over); !errors.Is(err, ErrPinLimit) {
		t.Fatalf("pin past the cap = %v, want ErrPinLimit", err)
	}
	if tab.Pinned(over) {
		t.Error("refused pin left the key marked pinned")
	}

	// Liveness: the cap guarantees one evictable slot, so activations
	// keep succeeding even with every pin held and all slots full.
	for i := 0; i < 3; i++ {
		id := tab.Alloc(fmt.Sprintf("live%d", i))
		lb, ls := reserveRange(t, space, limit+1+i)
		if err := tab.Attach(id, lb, ls); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.Activate(id); err != nil {
			t.Fatalf("activation starved at max pins: %v", err)
		}
	}

	// Releasing a pin reopens the cap.
	if err := tab.Unpin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := tab.Pin(over); err != nil {
		t.Errorf("pin after Unpin freed the cap: %v", err)
	}

	if err := tab.Pin(ID(9999)); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("Pin(unknown) = %v, want ErrUnknownKey", err)
	}
	if err := tab.Unpin(ID(9999)); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("Unpin(unknown) = %v, want ErrUnknownKey", err)
	}
}
