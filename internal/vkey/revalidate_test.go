package vkey

import (
	"testing"

	"repro/internal/mpk"
	"repro/internal/vm"
)

// reg is a bare rights register for driving the table without a full thread.
type reg struct{ p mpk.PKRU }

func (r *reg) Rights() mpk.PKRU     { return r.p }
func (r *reg) SetRights(p mpk.PKRU) { r.p = p }

func revalidateWorld(t *testing.T) (*Table, *vm.Space, []ID) {
	t.Helper()
	space := vm.NewSpace()
	tbl, err := NewTable(space, Config{Reserved: []mpk.Key{1}})
	if err != nil {
		t.Fatal(err)
	}
	var ids []ID
	for i := 0; i < 3; i++ {
		ids = append(ids, tbl.Alloc("tenant"))
	}
	return tbl, space, ids
}

func TestRevalidateReDerivesFromLiveStack(t *testing.T) {
	tbl, _, ids := revalidateWorld(t)
	r := &reg{}
	rights, err := tbl.Enter(r, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Whatever PKRU the scheduler saved, a live compartment stack wins:
	// the restore re-derives the top frame's rights.
	got, err := tbl.Revalidate(r, mpk.PermitAll)
	if err != nil {
		t.Fatal(err)
	}
	if got != rights {
		t.Fatalf("Revalidate = %v, want top-of-stack rights %v", got, rights)
	}
	if _, err := tbl.Leave(r, mpk.PermitAll); err != nil {
		t.Fatal(err)
	}
}

func TestRevalidateStripsStaleMuxGrants(t *testing.T) {
	tbl, _, ids := revalidateWorld(t)
	r := &reg{}
	rights, err := tbl.Enter(r, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	hw, ok := tbl.HardwareKey(ids[0])
	if !ok {
		t.Fatal("tenant not bound")
	}
	if _, err := tbl.Leave(r, mpk.PermitAll); err != nil {
		t.Fatal(err)
	}
	before := tbl.Stats().Invalidations
	// Stack now empty: the saved compartment PKRU is stale and every
	// multiplexed slot grant must be stripped.
	got, err := tbl.Revalidate(r, rights)
	if err != nil {
		t.Fatal(err)
	}
	if got.CanRead(hw) {
		t.Fatalf("stale grant for slot %v survived revalidation: %v", hw, got)
	}
	if got.Rights(0) != rights.Rights(0) {
		t.Errorf("non-mux key 0 rights changed: %v", got)
	}
	if after := tbl.Stats().Invalidations; after <= before {
		t.Errorf("Invalidations did not advance: %d -> %d", before, after)
	}
}

func TestRevalidatePassesTrustedContextThrough(t *testing.T) {
	tbl, _, _ := revalidateWorld(t)
	r := &reg{}
	// A trusted (PermitAll) saved context carries no slot grants to go
	// stale; it is restored verbatim, mirroring revocation's trusted
	// exemption.
	got, err := tbl.Revalidate(r, mpk.PermitAll)
	if err != nil {
		t.Fatal(err)
	}
	if got != mpk.PermitAll {
		t.Fatalf("Revalidate(PermitAll) = %v", got)
	}
}

func TestBindMigrationRevalidatesThreadRestore(t *testing.T) {
	space := vm.NewSpace()
	tbl, err := NewTable(space, Config{Reserved: []mpk.Key{1}})
	if err != nil {
		t.Fatal(err)
	}
	const base vm.Addr = 0x1700_0000_0000
	if _, err := space.Reserve("tenant", base, vm.PageSize, 0); err != nil {
		t.Fatal(err)
	}
	id := tbl.Alloc("tenant")
	if err := tbl.Attach(id, base, vm.PageSize); err != nil {
		t.Fatal(err)
	}
	th := vm.NewThread(space, nil)
	if err := th.Store64(base, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Enter(th, id); err != nil {
		t.Fatal(err)
	}
	saved := th.SaveContext()
	if _, err := tbl.Leave(th, mpk.PermitAll); err != nil {
		t.Fatal(err)
	}
	tbl.BindMigration(th)
	if err := th.RestoreContext(saved); err != nil {
		t.Fatal(err)
	}
	// The stale compartment grant is gone: the tenant page (still bound
	// to its slot) is unreadable from the restored context.
	if v, err := th.Load64(base); err == nil {
		t.Fatalf("stale restored context read tenant page: %d", v)
	}
}
