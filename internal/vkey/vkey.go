// Package vkey virtualizes protection keys in the style of libmpk: an
// unbounded space of logical keys (vkey.ID) is multiplexed onto the 16
// hardware mpk.Key slots through an LRU eviction cache.
//
// Hardware MPK gives a process 16 keys; production systems want one
// compartment per tenant or per library, which exhausts the hardware in
// minutes of tenant churn. The Table lifts the cap: a logical key is
// created with Alloc, tied to page ranges with Attach, and bound to a
// hardware slot lazily on Activate. When every slot is taken, the
// least-recently-activated logical key is evicted — its pages are retagged
// to a reserved *inactive* hardware key that no restricted PKRU ever
// grants (pkey_sync semantics: an evicted key's memory becomes
// inaccessible, not unprotected), and the freed slot's rights are revoked
// in every bound vm.Thread's PKRU register. That revocation is the defense
// against the Garmr stale-PKRU hazard: a thread still holding rights for a
// hardware slot after the slot was rebound to a different logical key
// would otherwise reach the new tenant's memory.
//
// Freeing a logical key parks its pages on the inactive key and recycles
// the slot, so tenant churn never exhausts the hardware — the key-leak the
// old fixed-key domain manager had.
package vkey

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpk"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// ID is a logical protection key. IDs are never reused; the zero ID is
// invalid, so a forgotten Alloc shows up as ErrUnknownKey, not as key 0.
type ID uint32

func (id ID) String() string { return fmt.Sprintf("vkey%d", uint32(id)) }

// DefaultInactiveKey is the hardware key evicted and freed logical keys'
// pages are parked on. Restricted PKRU values built with
// mpk.DenyAllExcept never grant it, so parked memory faults on any
// untrusted access; only the trusted compartment's full-rights register
// (mpk.PermitAll) can still reach it.
const DefaultInactiveKey mpk.Key = 15

// ErrUnknownKey is returned for operations on an ID the table never
// allocated or has already freed.
var ErrUnknownKey = errors.New("vkey: unknown or freed logical key")

// ErrNoSlots is returned when Activate needs a hardware slot and every
// slot is held by a key that cannot be evicted — all active keys are
// pinned. The activation fails closed rather than evicting a pinned
// latency-critical tenant.
var ErrNoSlots = errors.New("vkey: no hardware slot available")

// ErrPinLimit is returned by Pin when granting the pin could leave the
// table without a single evictable slot: at most nslots-1 keys may be
// pinned at once, so an activation can always find an LRU victim and the
// workload keeps its liveness no matter how many tenants ask for pins.
var ErrPinLimit = errors.New("vkey: pin limit reached, would leave no evictable slot")

// ErrKeyBusy is returned by Free for a logical key that is live on some
// register's compartment stack: a thread is currently executing inside
// the key's compartment (or will return into it), and freeing the key
// under it would strand that thread — its Leave could no longer re-derive
// the compartment's rights.
var ErrKeyBusy = errors.New("vkey: logical key is entered on a live compartment stack")

// ErrNotEntered is returned by Leave on a register with an empty
// compartment stack.
var ErrNotEntered = errors.New("vkey: leave with no entered compartment")

// Config parameterizes NewTable.
type Config struct {
	// Reserved lists hardware keys the table must never hand out: key 0
	// (the shared/default key) and the trusted pool's key at minimum.
	// Key 0 and Inactive are always treated as reserved.
	Reserved []mpk.Key
	// Inactive is the parking key (DefaultInactiveKey when zero).
	Inactive mpk.Key
}

// span is one page range attached to a logical key.
type span struct {
	base vm.Addr
	size uint64
}

// entry is one live logical key.
type entry struct {
	id        ID
	name      string
	hw        mpk.Key // valid only when active
	active    bool    // bound to a hardware slot
	faulted   bool
	pinned    bool // exempt from LRU eviction (libmpk pkey_pin)
	ranges    []span
	lastUse   uint64 // LRU clock tick of the most recent Activate
	evictions uint64 // times this key was pushed off a slot by LRU
}

// EvictionSink receives one call per LRU eviction: the rights register
// whose activation triggered it (nil when the eviction came from a
// register-less Activate), the victim's name, and the hardware slot that
// was rebound. A plain func type rather than an interface so the tracing
// layer can satisfy it without importing vkey. Called with the table lock
// held — implementations must not call back into the table.
type EvictionSink func(trigger mpk.RightsRegister, victim string, slot mpk.Key)

// Stats is a snapshot of the table's state and activity. The counters are
// monotone; the gauges describe the instant of the snapshot.
type Stats struct {
	Slots   int // multiplexable hardware slots
	Logical int // live logical keys (active + parked)
	Active  int // logical keys currently bound to a hardware slot
	Parked  int // logical keys evicted to the inactive key
	Faulted int // live logical keys marked faulted
	Pinned  int // live logical keys exempt from LRU eviction

	Activations   uint64 // Activate calls
	SlotHits      uint64 // Activate found the key already bound
	SlotMisses    uint64 // Activate had to bind (and possibly evict)
	Evictions     uint64 // logical keys pushed off a slot
	Recycled      uint64 // hardware slots returned by Free
	Invalidations uint64 // bound-thread PKRU revocations on eviction
}

// Table multiplexes logical keys onto hardware slots. It is safe for
// concurrent use.
type Table struct {
	mu       sync.Mutex
	space    *vm.Space
	inactive mpk.Key
	free     []mpk.Key // unbound hardware slots
	slots    map[mpk.Key]*entry
	entries  map[ID]*entry
	threads  map[mpk.RightsRegister]struct{}
	// stacks is the per-register compartment stack: the nesting of logical
	// keys entered through Enter (0 = the trusted compartment). Leave
	// re-derives the frame below instead of replaying saved PKRU bits, so
	// an eviction while a callee ran can never resurrect rights for a
	// rebound slot — the discipline domain entry and the ffi domain gates
	// share.
	stacks  map[mpk.RightsRegister][]ID
	clock   uint64
	nextID  ID
	nslots  int
	muxKeys []mpk.Key // every multiplexable slot, fixed at NewTable

	activations   uint64
	slotHits      uint64
	slotMisses    uint64
	evictions     uint64
	recycled      uint64
	invalidations uint64
	faulted       int
	pinned        int

	// staleEvict, when set, sabotages eviction by skipping the retag of
	// the victim's pages — the planted stale-slot-after-eviction bug the
	// conformance oracle must catch. Never set outside fault injection.
	staleEvict bool

	tel  *tableTelemetry
	sink EvictionSink
}

// NewTable builds a table over space. Every architecturally valid key that
// is neither reserved nor the inactive key becomes a multiplexable slot.
func NewTable(space *vm.Space, cfg Config) (*Table, error) {
	if space == nil {
		return nil, errors.New("vkey: space is required")
	}
	inactive := cfg.Inactive
	if inactive == 0 {
		inactive = DefaultInactiveKey
	}
	if !inactive.Valid() {
		return nil, fmt.Errorf("vkey: invalid inactive key %d", inactive)
	}
	reserved := map[mpk.Key]bool{0: true, inactive: true}
	for _, k := range cfg.Reserved {
		if !k.Valid() {
			return nil, fmt.Errorf("vkey: invalid reserved key %d", k)
		}
		reserved[k] = true
	}
	t := &Table{
		space:    space,
		inactive: inactive,
		slots:    make(map[mpk.Key]*entry),
		entries:  make(map[ID]*entry),
		threads:  make(map[mpk.RightsRegister]struct{}),
		stacks:   make(map[mpk.RightsRegister][]ID),
		nextID:   1,
	}
	for k := mpk.Key(0); k < mpk.NumKeys; k++ {
		if !reserved[k] {
			t.free = append(t.free, k)
		}
	}
	t.muxKeys = append([]mpk.Key(nil), t.free...)
	t.nslots = len(t.free)
	if t.nslots == 0 {
		return nil, errors.New("vkey: every hardware key is reserved")
	}
	return t, nil
}

// InactiveKey returns the parking key evicted pages are retagged to.
func (t *Table) InactiveKey() mpk.Key { return t.inactive }

// Slots returns the number of multiplexable hardware slots.
func (t *Table) Slots() int { return t.nslots }

// Alloc creates a new logical key. The key starts parked (no hardware
// slot, no pages); Attach ties pages to it and Activate binds a slot.
func (t *Table) Alloc(name string) ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.entries[id] = &entry{id: id, name: name}
	t.publish()
	return id
}

// Free releases a logical key: its pages are parked on the inactive key,
// its hardware slot (if any) returns to the free pool, and the ID becomes
// invalid. The caller is responsible for scrubbing the pages first if they
// held tenant data (pkalloc's quarantine semantics). A key that is live on
// any register's compartment stack is refused with ErrKeyBusy — freeing it
// would leave a thread inside (or returning into) a compartment whose
// rights can no longer be re-derived.
func (t *Table) Free(id ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	for reg, st := range t.stacks {
		for _, fid := range st {
			if fid == id {
				return fmt.Errorf("%w: %v entered on %d-deep stack of register %p",
					ErrKeyBusy, id, len(st), reg)
			}
		}
	}
	if e.active {
		if err := t.unbindLocked(e); err != nil {
			return err
		}
		t.recycled++
	} else if err := t.retagLocked(e, t.inactive); err != nil {
		// Parked entries are already on the inactive key; the retag is a
		// no-op repeated here only so a failure cannot leak tagged pages.
		return err
	}
	if e.faulted {
		t.faulted--
	}
	if e.pinned {
		t.pinned--
	}
	delete(t.entries, id)
	t.publish()
	return nil
}

// Attach ties the page range [base, base+size) to the logical key: the
// range is retagged to the key's current binding — its hardware slot when
// active, the inactive key when parked — and is retagged again on every
// later eviction and activation. The range must be page-aligned and fully
// reserved in the table's space.
func (t *Table) Attach(id ID, base vm.Addr, size uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	key := t.inactive
	if e.active {
		key = e.hw
	}
	if err := t.space.SetPKey(base, size, key); err != nil {
		return fmt.Errorf("vkey: attach %v: %w", id, err)
	}
	e.ranges = append(e.ranges, span{base: base, size: size})
	return nil
}

// Detach forgets every page range tied to the key without retagging, for
// callers that recycle the underlying region under a different key.
func (t *Table) Detach(id ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	e.ranges = nil
	return nil
}

// Activate ensures the logical key is bound to a hardware slot, evicting
// the least-recently-activated key if every slot is taken, and returns the
// slot. The boolean reports a miss: the key was not bound on entry and a
// slot had to be found for it.
func (t *Table) Activate(id ID) (mpk.Key, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.activateLocked(id, nil)
}

// activateLocked binds id to a slot, evicting the LRU key when none is
// free. trigger is the rights register whose transition demanded the
// activation (nil for bare Activate calls); it is handed to the eviction
// sink so an eviction can be attributed to the request that caused it.
func (t *Table) activateLocked(id ID, trigger mpk.RightsRegister) (mpk.Key, bool, error) {
	e, ok := t.entries[id]
	if !ok {
		return 0, false, fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	t.activations++
	t.clock++
	e.lastUse = t.clock
	if e.active {
		t.slotHits++
		return e.hw, false, nil
	}
	t.slotMisses++
	if len(t.free) == 0 {
		victim := t.lruLocked()
		if victim == nil {
			return 0, false, ErrNoSlots
		}
		t.evictions++
		victim.evictions++
		vhw := victim.hw
		if err := t.unbindLocked(victim); err != nil {
			return 0, false, err
		}
		if t.sink != nil {
			t.sink(trigger, victim.name, vhw)
		}
	}
	hw := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	e.hw, e.active = hw, true
	t.slots[hw] = e
	if err := t.retagLocked(e, hw); err != nil {
		return 0, false, err
	}
	t.publish()
	return hw, true, nil
}

// HardwareKey returns the slot the key is currently bound to, if any.
func (t *Table) HardwareKey(id ID) (mpk.Key, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || !e.active {
		return 0, false
	}
	return e.hw, true
}

// Trusted is the frame value for the trusted compartment on a register's
// compartment stack: Enter(reg, Trusted) installs full rights (the reverse
// gate into T), and Leave out of a frame whose caller is Trusted restores
// mpk.PermitAll.
const Trusted ID = 0

// rightsLocked derives the PKRU for a compartment-stack frame: full rights
// for the trusted frame, otherwise the shared key 0 plus the logical key's
// (freshly activated, possibly just rebound) hardware slot.
func (t *Table) rightsLocked(id ID, trigger mpk.RightsRegister) (mpk.PKRU, error) {
	if id == Trusted {
		return mpk.PermitAll, nil
	}
	hw, _, err := t.activateLocked(id, trigger)
	if err != nil {
		return 0, err
	}
	return mpk.DenyAllExcept(0, hw), nil
}

// Enter switches reg into the logical key's compartment (Trusted for the
// trusted compartment) and pushes the frame onto reg's compartment stack.
// The whole transition is atomic with respect to eviction: the table lock
// is held from slot activation through the audited rights installation, so
// a concurrent Activate cannot evict the key and rebind its slot between
// the two — the window a bare Activate-then-install leaves open. Entering
// also binds reg for eviction-time revocation, so a later eviction of any
// key the register still grants strips those rights immediately.
//
// The frame is pushed (and reg left bound, if this was its first frame)
// only after the installation verifies; a failed audit leaves the stack
// untouched.
func (t *Table) Enter(reg mpk.RightsRegister, id ID) (mpk.PKRU, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rights, err := t.rightsLocked(id, reg)
	if err != nil {
		return 0, err
	}
	_, wasBound := t.threads[reg]
	t.threads[reg] = struct{}{}
	if err := mpk.InstallAudited(reg, rights); err != nil {
		if !wasBound {
			delete(t.threads, reg)
		}
		return 0, err
	}
	t.stacks[reg] = append(t.stacks[reg], id)
	return rights, nil
}

// Leave exits the top frame of reg's compartment stack: the rights of the
// frame below are re-derived — re-activating its logical key, never
// replaying a saved PKRU whose slot grants may have been rebound to a
// different tenant while the callee ran (the Garmr stale-PKRU hazard).
// When the top frame is the bottom of the stack, outside is installed
// instead: the rights the register held before its first Enter, which the
// caller saved (mpk.PermitAll, or the legacy two-compartment untrusted
// value — static values no eviction can invalidate).
//
// The pop commits only after the installation verifies, so a failed audit
// leaves the stack intact and Leave can be retried without unwinding past
// the caller's own frame. When the stack empties the register is unbound
// from eviction-time revocation, atomically with the installation.
func (t *Table) Leave(reg mpk.RightsRegister, outside mpk.PKRU) (mpk.PKRU, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stacks[reg]
	if len(st) == 0 {
		return 0, ErrNotEntered
	}
	rights := outside
	if len(st) >= 2 {
		// The frame below cannot have been freed out from under us:
		// Free refuses keys live on any compartment stack (ErrKeyBusy).
		var err error
		if rights, err = t.rightsLocked(st[len(st)-2], reg); err != nil {
			return 0, err
		}
	}
	if err := mpk.InstallAudited(reg, rights); err != nil {
		return 0, err
	}
	if len(st) == 1 {
		delete(t.stacks, reg)
		delete(t.threads, reg)
	} else {
		t.stacks[reg] = st[:len(st)-1]
	}
	return rights, nil
}

// Refresh re-installs the rights of reg's current top frame, re-activating
// its logical key, or installs fallback when reg has no frames. It is the
// exit half of a gate that did not change the compartment stack (a plain
// T/U gate taken while a domain frame is live): replaying the PKRU saved
// at gate entry would resurrect slot grants an eviction may have rebound,
// so the current compartment is derived fresh instead.
func (t *Table) Refresh(reg mpk.RightsRegister, fallback mpk.PKRU) (mpk.PKRU, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rights := fallback
	if st := t.stacks[reg]; len(st) > 0 {
		var err error
		if rights, err = t.rightsLocked(st[len(st)-1], reg); err != nil {
			return 0, err
		}
	}
	if err := mpk.InstallAudited(reg, rights); err != nil {
		return 0, err
	}
	return rights, nil
}

// Current returns the logical key of reg's top compartment-stack frame,
// or Trusted when the register has no frames (it never entered, or every
// frame left).
func (t *Table) Current(reg mpk.RightsRegister) ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stacks[reg]
	if len(st) == 0 {
		return Trusted
	}
	return st[len(st)-1]
}

// Depth returns reg's compartment-stack depth.
func (t *Table) Depth(reg mpk.RightsRegister) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stacks[reg])
}

// TruncateTo force-pops reg's compartment stack to depth without
// installing any rights — the supervisor's unwind backstop, run before it
// reinstalls a checkpointed PKRU. Deeper-than-current depths are a no-op.
// Emptying the stack unbinds the register.
func (t *Table) TruncateTo(reg mpk.RightsRegister, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stacks[reg]
	if depth < 0 || depth >= len(st) {
		return
	}
	if depth == 0 {
		delete(t.stacks, reg)
		delete(t.threads, reg)
		return
	}
	t.stacks[reg] = st[:depth]
}

// lruLocked picks the evictable active entry with the oldest lastUse.
// Pinned entries are never candidates — the libmpk pkey_pin semantics:
// a latency-critical tenant's slot survives a noisy neighbour's churn.
// Returns nil when every active entry is pinned (Activate fails closed
// with ErrNoSlots).
func (t *Table) lruLocked() *entry {
	var victim *entry
	for _, e := range t.slots {
		if e.pinned {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

// Pin exempts the logical key from LRU eviction: while pinned, its
// hardware slot (once bound) cannot be stolen by another key's
// activation — the libmpk pkey_pin precedent, used by the resilience
// layer to protect healthy latency-critical tenants while a flapping
// tenant half-open-probes its way back. Pinning a parked key is legal;
// the exemption takes effect at its next activation. Pins are
// eviction-aware: at most nslots-1 keys may be pinned, so the table
// always keeps one evictable slot and activations never starve; a pin
// past that limit is refused with ErrPinLimit rather than traded
// against liveness.
func (t *Table) Pin(id ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	if !e.pinned {
		if t.pinned >= t.nslots-1 {
			return fmt.Errorf("%w: %d of %d slots", ErrPinLimit, t.pinned, t.nslots)
		}
		e.pinned = true
		t.pinned++
		t.publish()
	}
	return nil
}

// Unpin makes the logical key evictable again.
func (t *Table) Unpin(id ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	if e.pinned {
		e.pinned = false
		t.pinned--
		t.publish()
	}
	return nil
}

// Pinned reports whether the logical key is currently pinned.
func (t *Table) Pinned(id ID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	return ok && e.pinned
}

// unbindLocked pushes an active entry off its slot: pages are parked on
// the inactive key (unless the stale-eviction fault is planted), the
// slot's rights are revoked in every bound thread, and the slot returns to
// the free pool. Free also lands here — rights are revoked even then, so a
// recycled slot never inherits a stale grant.
func (t *Table) unbindLocked(e *entry) error {
	hw := e.hw
	if !t.staleEvict {
		if err := t.retagLocked(e, t.inactive); err != nil {
			return err
		}
	}
	e.active = false
	delete(t.slots, hw)
	t.free = append(t.free, hw)
	t.revokeLocked(hw)
	t.publish()
	return nil
}

// retagLocked moves every attached range of e onto key.
func (t *Table) retagLocked(e *entry, key mpk.Key) error {
	for _, s := range e.ranges {
		if err := t.space.SetPKey(s.base, s.size, key); err != nil {
			return fmt.Errorf("vkey: retag %v to %v: %w", e.id, key, err)
		}
	}
	return nil
}

// revokeLocked strips rights for a rebound hardware slot from every bound
// thread whose PKRU still grants them — the pkey_sync/Garmr revalidation.
// The trusted full-rights register (mpk.PermitAll) is left alone: the
// trusted compartment legitimately reaches every key, so PermitAll is not
// a stale per-slot grant; every *restricted* register granting the slot
// must have gotten it from the evicted logical key and loses it.
func (t *Table) revokeLocked(hw mpk.Key) {
	for th := range t.threads {
		r := th.Rights()
		if r == mpk.PermitAll {
			continue
		}
		if r.Rights(hw) != mpk.DenyAll {
			th.SetRights(r.With(hw, mpk.DenyAll))
			t.invalidations++
		}
	}
}

// Revalidate audits a PKRU value saved before a scheduler migration and
// returns the value safe to reinstall on the destination CPU — the
// migration half of the Garmr stale-PKRU defense. A saved value cannot be
// replayed verbatim: any multiplexable slot it grants may have been
// rebound to a different tenant while the thread was off-CPU, so the
// rights are re-derived from the register's current compartment frame
// (re-activating its logical key, exactly as Leave and Refresh do). A
// register with no live frame gets its saved value back with every
// multiplexable slot grant stripped; the trusted full-rights value passes
// through untouched, mirroring revokeLocked's exemption.
func (t *Table) Revalidate(reg mpk.RightsRegister, saved mpk.PKRU) (mpk.PKRU, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.stacks[reg]; len(st) > 0 {
		return t.rightsLocked(st[len(st)-1], reg)
	}
	if saved == mpk.PermitAll {
		return saved, nil
	}
	out := saved
	for _, hw := range t.muxKeys {
		if out.Rights(hw) != mpk.DenyAll {
			out = out.With(hw, mpk.DenyAll)
			t.invalidations++
		}
	}
	return out, nil
}

// BindMigration installs the table as th's scheduler-migration PKRU
// revalidator: every vm.Thread.RestoreContext routes its saved PKRU
// through Revalidate before reinstalling it.
func (t *Table) BindMigration(th *vm.Thread) {
	th.SetMigrationRevalidator(func(saved mpk.PKRU) (mpk.PKRU, error) {
		return t.Revalidate(th, saved)
	})
}

// Bind registers a thread's rights register for eviction-time PKRU
// revocation. Every thread that enters virtualized compartments must be
// bound, or it can keep stale rights for a rebound slot.
func (t *Table) Bind(th mpk.RightsRegister) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threads[th] = struct{}{}
}

// Unbind removes a thread from eviction-time revocation.
func (t *Table) Unbind(th mpk.RightsRegister) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.threads, th)
}

// MarkFaulted flags a live logical key as having faulted (a compartment
// fault attributed to its domain); the count surfaces as a gauge.
func (t *Table) MarkFaulted(id ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownKey, id)
	}
	if !e.faulted {
		e.faulted = true
		t.faulted++
		t.publish()
	}
	return nil
}

// SetEvictionSink attaches an eviction observer (nil detaches). The sink
// fires once per LRU eviction with the triggering register, the victim's
// name and the rebound slot.
func (t *Table) SetEvictionSink(s EvictionSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = s
}

// KeyState is one live logical key in an Occupancy snapshot.
type KeyState struct {
	ID        ID      `json:"id"`
	Name      string  `json:"name"`
	Active    bool    `json:"active"`
	Slot      mpk.Key `json:"slot"` // valid when Active
	Faulted   bool    `json:"faulted,omitempty"`
	Pinned    bool    `json:"pinned,omitempty"`
	Evictions uint64  `json:"evictions"`
	StackRefs int     `json:"stack_refs"` // live compartment-stack frames holding this key
}

// Occupancy is a structured snapshot of the table: which logical keys
// exist, where they are bound, how often each has been evicted, and how
// deep the live compartment stacks run. This is what /domains.json serves
// — the flat pkrusafe_vkey_* counters say *that* slots churn; this says
// *which tenants* are churning and who is standing on the stacks.
type Occupancy struct {
	Slots       int        `json:"slots"`
	FreeSlots   int        `json:"free_slots"`
	InactiveKey mpk.Key    `json:"inactive_key"`
	Keys        []KeyState `json:"keys"`
	// StackDepths lists the compartment-stack depth of every register
	// currently entered, deepest first (registers are not identified:
	// a depth profile is what slot-pressure debugging needs).
	StackDepths []int `json:"stack_depths,omitempty"`
	Stats       Stats `json:"stats"`
}

// Occupancy returns a structured snapshot of the table's state.
func (t *Table) Occupancy() Occupancy {
	t.mu.Lock()
	defer t.mu.Unlock()
	refs := make(map[ID]int)
	occ := Occupancy{
		Slots:       t.nslots,
		FreeSlots:   len(t.free),
		InactiveKey: t.inactive,
		Stats:       t.statsLocked(),
	}
	for _, st := range t.stacks {
		occ.StackDepths = append(occ.StackDepths, len(st))
		for _, id := range st {
			refs[id]++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(occ.StackDepths)))
	for _, e := range t.entries {
		occ.Keys = append(occ.Keys, KeyState{
			ID:        e.id,
			Name:      e.name,
			Active:    e.active,
			Slot:      e.hw,
			Faulted:   e.faulted,
			Pinned:    e.pinned,
			Evictions: e.evictions,
			StackRefs: refs[e.id],
		})
	}
	sort.Slice(occ.Keys, func(i, j int) bool { return occ.Keys[i].ID < occ.Keys[j].ID })
	return occ
}

// InjectStaleEviction plants (or clears) the stale-slot-after-eviction
// bug: evicted keys' pages keep their old hardware tag, so the next tenant
// bound to the recycled slot can reach them. Exists solely so the
// conformance oracle can prove it catches this class; never set in
// production paths.
func (t *Table) InjectStaleEviction(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.staleEvict = on
}

// Stats returns a snapshot of gauges and counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statsLocked()
}

func (t *Table) statsLocked() Stats {
	return Stats{
		Slots:         t.nslots,
		Logical:       len(t.entries),
		Active:        len(t.slots),
		Parked:        len(t.entries) - len(t.slots),
		Faulted:       t.faulted,
		Pinned:        t.pinned,
		Activations:   t.activations,
		SlotHits:      t.slotHits,
		SlotMisses:    t.slotMisses,
		Evictions:     t.evictions,
		Recycled:      t.recycled,
		Invalidations: t.invalidations,
	}
}

// tableTelemetry holds the registry handles the table publishes into.
type tableTelemetry struct {
	active  *telemetry.Gauge
	parked  *telemetry.Gauge
	faulted *telemetry.Gauge
	logical *telemetry.Gauge
	pinned  *telemetry.Gauge

	activations   *telemetry.Counter
	misses        *telemetry.Counter
	evictions     *telemetry.Counter
	recycled      *telemetry.Counter
	invalidations *telemetry.Counter
}

// SetTelemetry attaches the table to a metrics registry: the vkey gauges
// (active / parked / faulted / logical) track the live population and the
// counters mirror activations, slot misses, evictions, slot recycling and
// eviction-time PKRU invalidations. A nil registry detaches.
func (t *Table) SetTelemetry(reg *telemetry.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if reg == nil {
		t.tel = nil
		return
	}
	t.tel = &tableTelemetry{
		active:  reg.Gauge("pkrusafe_vkey_active", "Logical protection keys currently bound to a hardware slot."),
		parked:  reg.Gauge("pkrusafe_vkey_parked", "Logical protection keys evicted to the inactive key."),
		faulted: reg.Gauge("pkrusafe_vkey_faulted", "Live logical protection keys marked faulted."),
		logical: reg.Gauge("pkrusafe_vkey_logical", "Live logical protection keys (active + parked)."),
		pinned:  reg.Gauge("pkrusafe_vkey_pinned", "Live logical protection keys exempt from LRU eviction."),
		activations: reg.Counter("pkrusafe_vkey_activations_total",
			"Activate calls resolving a logical key to a hardware slot."),
		misses: reg.Counter("pkrusafe_vkey_slot_misses_total",
			"Activations that had to bind a slot (and possibly evict)."),
		evictions: reg.Counter("pkrusafe_vkey_evictions_total",
			"Logical keys pushed off their hardware slot by LRU eviction."),
		recycled: reg.Counter("pkrusafe_vkey_recycled_total",
			"Hardware slots returned to the free pool by Free."),
		invalidations: reg.Counter("pkrusafe_vkey_invalidations_total",
			"Bound-thread PKRU revocations performed on eviction."),
	}
	t.publish()
}

// publish mirrors the current stats into the attached registry. Counters
// are set by delta so the registry stays monotone.
func (t *Table) publish() {
	tel := t.tel
	if tel == nil {
		return
	}
	st := t.statsLocked()
	tel.active.Set(float64(st.Active))
	tel.parked.Set(float64(st.Parked))
	tel.faulted.Set(float64(st.Faulted))
	tel.logical.Set(float64(st.Logical))
	tel.pinned.Set(float64(st.Pinned))
	setCounter(tel.activations, st.Activations)
	setCounter(tel.misses, st.SlotMisses)
	setCounter(tel.evictions, st.Evictions)
	setCounter(tel.recycled, st.Recycled)
	setCounter(tel.invalidations, st.Invalidations)
}

// setCounter advances a registry counter to an absolute monotone value.
func setCounter(c *telemetry.Counter, v uint64) {
	if cur := c.Value(); v > cur {
		c.Add(v - cur)
	}
}
