package conformance

import (
	"math/rand"

	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vm"
)

// scratchBase is the window generated reserves land in, well clear of the
// pkalloc pool reservations.
const scratchBase vm.Addr = 0x1000_0000_0000

// Generate produces a deterministic pseudo-random trace of n ops from the
// seed. The distribution is tuned for semantic coverage, not uniformity:
// most accesses target live allocations or recently reserved spans
// (including deliberate overruns and page-boundary-crossing widths), PKRU
// values cluster around the patterns gates and profilers actually install,
// and a few percent of ops are deliberately invalid (misaligned bases,
// out-of-range keys) to pin down the rejection paths.
func Generate(seed int64, n int) Trace {
	rng := rand.New(rand.NewSource(seed))
	g := &genState{rng: rng}
	tr := Trace{Ops: make([]Op, 0, n)}
	for i := 0; i < n; i++ {
		tr.Ops = append(tr.Ops, g.next())
	}
	return tr
}

// genState is the generator's own light bookkeeping: it biases targeting
// without replaying semantics (a reserve that ends up rejected just makes
// later ops target unreserved memory, which is coverage too).
type genState struct {
	rng    *rand.Rand
	thread uint8
	spans  []struct {
		base vm.Addr
		size uint64
	}
	slotLive  [NumSlots]bool
	gateDepth [NumThreads]int
	vslotLive [NumVKeySlots]bool
	vkeyDepth [NumThreads]int
}

func (g *genState) next() Op {
	// Threads are sticky so gate pairs and allocation reuse mostly happen
	// on one thread, with occasional switches to interleave.
	if g.rng.Intn(100) < 15 {
		g.thread = uint8(g.rng.Intn(NumThreads))
	}
	op := Op{Thread: g.thread}
	switch p := g.rng.Intn(100); {
	case p < 24:
		op.Kind = OpLoad
		g.fillAccess(&op)
	case p < 42:
		op.Kind = OpStore
		g.fillAccess(&op)
	case p < 51:
		op.Kind = OpWRPKRU
		op.Value = g.pkruValue()
	case p < 56:
		op.Kind = OpGateEnter
		g.gateDepth[g.thread%NumThreads]++
	case p < 62:
		op.Kind = OpGateExit
		if d := &g.gateDepth[g.thread%NumThreads]; *d > 0 {
			*d--
		}
	case p < 68:
		op.Kind = OpGateCall
		g.fillAccess(&op)
		if g.rng.Intn(2) == 0 {
			op.Flags |= FlagWrite
		}
		if g.rng.Intn(8) == 0 {
			op.Flags |= FlagTrustedLib
		}
	case p < 74:
		op.Kind = OpAlloc
		op.Slot = uint8(g.rng.Intn(NumSlots))
		op.Size = uint64(g.rng.Intn(MaxAllocBytes))
		if g.rng.Intn(2) == 0 {
			op.Flags |= FlagUntrusted
		}
		g.slotLive[op.Slot] = true
	case p < 77:
		op.Kind = OpFree
		op.Slot = g.pickSlot()
		g.slotLive[op.Slot%NumSlots] = false
	case p < 79:
		op.Kind = OpRealloc
		op.Slot = g.pickSlot()
		op.Size = uint64(g.rng.Intn(MaxAllocBytes))
	case p < 82:
		op.Kind = OpReserve
		op.Addr, op.Size = g.reserveSpan()
		op.Key = g.key()
		g.spans = append(g.spans, struct {
			base vm.Addr
			size uint64
		}{op.Addr, op.Size})
	case p < 85:
		op.Kind = OpSetPKey
		op.Addr, op.Size = g.retagSpan()
		op.Key = g.key()
	case p < 90:
		op.Kind = OpVKeyEnter
		op.Slot = g.pickVKeySlot()
		if !g.vslotLive[op.Slot] {
			// A dead tenant would just be skipped; allocate it instead so
			// enters usually have a live compartment to switch into.
			op.Kind = OpVKeyAlloc
			g.vslotLive[op.Slot] = true
		} else {
			g.vkeyDepth[g.thread%NumThreads]++
		}
	case p < 94:
		op.Kind = OpVKeyLeave
		if d := &g.vkeyDepth[g.thread%NumThreads]; *d > 0 {
			*d--
		}
	case p < 97:
		op.Kind = OpVKeyAlloc
		op.Slot = uint8(g.rng.Intn(NumVKeySlots))
		g.vslotLive[op.Slot] = true
	default:
		op.Kind = OpVKeyFree
		op.Slot = g.pickVKeySlot()
		g.vslotLive[op.Slot%NumVKeySlots] = false
	}
	return op
}

// pkruValue picks a rights-register value from the patterns enforcement
// code actually installs, plus occasional arbitrary bit soup.
func (g *genState) pkruValue() mpk.PKRU {
	switch g.rng.Intn(10) {
	case 0:
		return mpk.PKRU(g.rng.Uint32()) // arbitrary
	case 1:
		return mpk.PermitAll
	case 2, 3:
		// The gate value: deny only the trusted key.
		return mpk.PermitAll.With(pkalloc.DefaultTrustedKey, mpk.DenyAll)
	case 4:
		// The paper's strict gate shape: deny everything but listed keys.
		keys := []mpk.Key{0}
		if g.rng.Intn(2) == 0 {
			keys = append(keys, mpk.Key(g.rng.Intn(4)))
		}
		return mpk.DenyAllExcept(keys...)
	default:
		// One or two keys moved to a random rights level.
		p := mpk.PermitAll
		for n := 1 + g.rng.Intn(2); n > 0; n-- {
			p = p.With(mpk.Key(g.rng.Intn(int(mpk.NumKeys))), mpk.Rights(g.rng.Intn(4)))
		}
		return p
	}
}

// key picks a protection key: usually a low valid key (matching how real
// deployments use one or two keys), sometimes any valid key, rarely an
// invalid one.
func (g *genState) key() mpk.Key {
	switch g.rng.Intn(20) {
	case 0:
		return mpk.Key(16 + g.rng.Intn(240)) // invalid
	case 1, 2, 3:
		return mpk.Key(g.rng.Intn(int(mpk.NumKeys)))
	default:
		return mpk.Key(g.rng.Intn(4))
	}
}

// reserveSpan picks a base/size for a new reservation in the scratch
// window; a few percent are misaligned or oversized to exercise rejection.
func (g *genState) reserveSpan() (vm.Addr, uint64) {
	base := scratchBase + vm.Addr(g.rng.Intn(1<<12))*vm.PageSize
	size := uint64(1+g.rng.Intn(16)) * vm.PageSize
	switch g.rng.Intn(33) {
	case 0:
		base += vm.Addr(1 + g.rng.Intn(int(vm.PageMask)))
	case 1:
		size += uint64(1 + g.rng.Intn(int(vm.PageMask)))
	case 2:
		size = 0
	case 3:
		// Wildly oversized, occasionally large enough to wrap base+size
		// past 2^64 — the class of bounds bug the oracle exists to catch.
		size = (uint64(vm.MaxAddr) << uint(g.rng.Intn(17))) - uint64(g.rng.Intn(2))*vm.PageSize
	}
	return base, size
}

// retagSpan picks a pkey_mprotect range, biased to overlap prior reserves
// (including partially, to force region splits).
func (g *genState) retagSpan() (vm.Addr, uint64) {
	if len(g.spans) > 0 && g.rng.Intn(10) != 0 {
		s := g.spans[g.rng.Intn(len(g.spans))]
		pages := int(s.size / vm.PageSize)
		if pages == 0 {
			pages = 1
		}
		off := vm.Addr(g.rng.Intn(pages)) * vm.PageSize
		size := uint64(1+g.rng.Intn(pages+2)) * vm.PageSize
		return s.base + off, size
	}
	return g.reserveSpan()
}

// pickSlot prefers live slots so free/realloc mostly hit something.
func (g *genState) pickSlot() uint8 {
	for try := 0; try < 4; try++ {
		s := uint8(g.rng.Intn(NumSlots))
		if g.slotLive[s] {
			return s
		}
	}
	return uint8(g.rng.Intn(NumSlots))
}

// pickVKeySlot prefers live vkey tenants so enter/free mostly hit one.
func (g *genState) pickVKeySlot() uint8 {
	for try := 0; try < 4; try++ {
		s := uint8(g.rng.Intn(NumVKeySlots))
		if g.vslotLive[s] {
			return s
		}
	}
	return uint8(g.rng.Intn(NumVKeySlots))
}

// fillAccess picks a target and width for load/store/gate-call ops.
func (g *genState) fillAccess(op *Op) {
	// Width: mostly machine sizes, sometimes page-crossing spans.
	switch g.rng.Intn(10) {
	case 0:
		op.Size = uint64(g.rng.Intn(MaxAccessBytes))
	case 1:
		op.Size = 0
	default:
		op.Size = []uint64{1, 2, 4, 8, 16}[g.rng.Intn(5)]
	}
	if g.rng.Intn(10) < 6 {
		// Slot-relative: offset within (or a little past) the allocation.
		op.Slot = g.pickSlot()
		op.Addr = vm.Addr(g.rng.Intn(3 * vm.PageSize))
		return
	}
	op.Flags |= FlagRawAddr
	switch g.rng.Intn(7) {
	case 0: // inside/near a generated reserve
		if len(g.spans) > 0 {
			s := g.spans[g.rng.Intn(len(g.spans))]
			// Deliberately invalid reserves can record sizes near 2^64;
			// the +2-page overrun would wrap negative and panic Int63n.
			span := int64(s.size + 2*vm.PageSize)
			if span <= 0 {
				span = 2 * vm.PageSize
			}
			op.Addr = s.base + vm.Addr(g.rng.Int63n(span))
			return
		}
		fallthrough
	case 1: // trusted pool
		op.Addr = pkalloc.DefaultTrustedBase + vm.Addr(g.rng.Intn(1<<16))
	case 2: // untrusted pool
		op.Addr = pkalloc.DefaultUntrustedBase + vm.Addr(g.rng.Intn(1<<16))
	case 3: // scratch window, probably unreserved
		op.Addr = scratchBase + vm.Addr(g.rng.Intn(1<<24))
	case 4: // far outside everything
		op.Addr = vm.Addr(g.rng.Uint64())
	case 5: // address-space edge
		op.Addr = vm.MaxAddr - vm.Addr(g.rng.Intn(2*vm.PageSize))
	case 6: // a vkey tenant page (+ a little past the window)
		op.Addr = vkeyBase + vm.Addr(g.rng.Intn((NumVKeySlots+1)*vm.PageSize))
	}
}
