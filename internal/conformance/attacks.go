package conformance

import (
	"fmt"

	"repro/internal/attack"
)

// DrillAttacks runs the Garmr attack corpus as a conformance drill: every
// attack scenario executes twice — the red drill (defense disabled; the
// attack must succeed and the harness must detect the breach, proving the
// scenario has teeth) and the green drill (defense armed; the attack must
// die with the expected fault). Any failed drill is an error carrying its
// verdict line, so CI output names the exact class/defense pair that
// regressed.
func DrillAttacks() error {
	results := attack.RunAll()
	if failed := attack.Failures(results); failed > 0 {
		for _, r := range results {
			if !r.Pass {
				return fmt.Errorf("attack corpus: %d of %d drills failed; first: %s",
					failed, len(results), r.Verdict())
			}
		}
	}
	return nil
}
