package conformance

import (
	"fmt"
	"testing"

	"repro/internal/domains"
	"repro/internal/vm"
)

// TestDrillVKeys is the oracle's own test: the clean multiplexed run must
// match the ideal unbounded-keys model, and the planted
// stale-slot-after-eviction bug must be caught.
func TestDrillVKeys(t *testing.T) {
	if err := DrillVKeys(); err != nil {
		t.Fatal(err)
	}
}

func TestVKeyDrillScalesPastSlots(t *testing.T) {
	rep, err := RunVKeyDrill(VKeyOptions{Domains: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("divergences at 40 domains: %v", rep.Divergences[0])
	}
	if rep.Evictions == 0 || rep.SlotMisses == 0 {
		t.Fatalf("no multiplexing activity: %+v", rep)
	}
}

// FuzzVKeys drives random N-domain traces — add, remove, enter, exit,
// probe — against the ideal unbounded-keys expectation: a probe of domain
// j's buffer succeeds iff the thread is in the trusted compartment or
// currently inside domain j. The multiplexer underneath (evictions, slot
// recycling, region reuse) must never change that answer.
func FuzzVKeys(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x10, 0x42, 0x13, 0x03})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02})
	f.Add([]byte{0x10, 0x20, 0x44, 0x03, 0x03, 0x03, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		space := vm.NewSpace()
		m, err := domains.NewManager(space)
		if err != nil {
			t.Fatal(err)
		}
		th := vm.NewThread(space, nil)
		live := make(map[int]*domains.Domain)
		bufs := make(map[int]vm.Addr)
		var stack []int // entered domain indices (model side)
		var restores []func() error
		entered := func(k int) bool {
			for _, e := range stack {
				if e == k {
					return true
				}
			}
			return false
		}
		if len(data) > 256 {
			data = data[:256]
		}
		for _, b := range data {
			op, k := int(b)>>4&0x7, int(b)&0x7
			switch op % 5 {
			case 0: // add
				if _, ok := live[k]; ok {
					continue
				}
				d, err := m.AddDomain(fmt.Sprintf("f%d", k))
				if err != nil {
					t.Fatalf("AddDomain: %v", err)
				}
				buf, err := m.Alloc(d, 16)
				if err != nil {
					t.Fatalf("Alloc: %v", err)
				}
				// Raw poke: initialize without depending on thread rights.
				if err := space.Poke(buf, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
					t.Fatalf("Poke: %v", err)
				}
				live[k], bufs[k] = d, buf
			case 1: // remove (not while entered — dangling frames excluded)
				if _, ok := live[k]; !ok || entered(k) {
					continue
				}
				if err := m.RemoveDomain(live[k].Name); err != nil {
					t.Fatalf("RemoveDomain: %v", err)
				}
				delete(live, k)
				delete(bufs, k)
			case 2: // enter
				d, ok := live[k]
				if !ok {
					continue
				}
				restore, err := m.Enter(th, d)
				if err != nil {
					t.Fatalf("Enter: %v", err)
				}
				stack = append(stack, k)
				restores = append(restores, restore)
			case 3: // exit
				if len(restores) == 0 {
					continue
				}
				if err := restores[len(restores)-1](); err != nil {
					t.Fatalf("restore: %v", err)
				}
				restores = restores[:len(restores)-1]
				stack = stack[:len(stack)-1]
			case 4: // probe domain k's buffer
				buf, ok := bufs[k]
				if !ok {
					continue
				}
				want := len(stack) == 0 || stack[len(stack)-1] == k
				_, err := th.Load64(buf)
				if got := err == nil; got != want {
					t.Fatalf("probe dom %d from stack %v: real readable=%v, model readable=%v (table: %+v)",
						k, stack, got, want, m.Table().Stats())
				}
			}
		}
		for i := len(restores) - 1; i >= 0; i-- {
			if err := restores[i](); err != nil {
				t.Fatalf("final restore: %v", err)
			}
		}
	})
}
