package conformance

import (
	"encoding/binary"
	"testing"

	"repro/internal/mpk"
	"repro/internal/vm"
)

// maxFuzzOps bounds one fuzz input's trace length so a single input stays
// fast; longer inputs are truncated, not rejected.
const maxFuzzOps = 512

// FuzzDifferential is the main conformance fuzzer: arbitrary bytes decode
// into a trace, the trace replays against the real stack and the model,
// and any divergence is shrunk and printed as a ready-to-paste regression
// test before failing.
func FuzzDifferential(f *testing.F) {
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(Generate(seed, 96).Encode())
	}
	for _, fault := range Faults() {
		f.Add(DirectedTrace(fault).Encode())
	}
	f.Add(DirectedVKeyTrace().Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := Decode(data)
		if len(tr.Ops) > maxFuzzOps {
			tr.Ops = tr.Ops[:maxFuzzOps]
		}
		res := Run(tr, Options{})
		if len(res.Divergences) == 0 {
			return
		}
		sh := Shrink(tr, Options{})
		t.Fatalf("real stack diverges from the reference model: %v\nshrunk repro (add to regress_test.go):\n%s",
			res.Divergences[0], FormatGoTest("Fuzz", sh))
	})
}

// FuzzSpaceOracle drives vm.Space.Reserve/SetPKey directly against the
// model and then compares the protection key of EVERY page in the scratch
// window — denser than the differential executor's edge probes, so
// region-split bookkeeping bugs can't hide between probe points.
func FuzzSpaceOracle(f *testing.F) {
	// One reserve + an overlapping retag, and a wrap-sized reserve.
	f.Add([]byte{0, 1, 0, 0, 0x10, 0, 0, 0, 0, 0, 0, 0, 1, 5, 2, 0, 0x08, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 0xf0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		const window = 256 // pages checked exhaustively
		space := vm.NewSpace()
		model := NewModel(1, 1)
		const recLen = 12
		for n := 0; len(data) >= recLen && n < 64; n++ {
			rec := data[:recLen]
			data = data[recLen:]
			base := scratchBase + vm.Addr(binary.LittleEndian.Uint16(rec[2:])%window)*vm.PageSize
			size := binary.LittleEndian.Uint64(rec[4:])
			if rec[0]&2 != 0 {
				size = (size % 32) * vm.PageSize // mostly sane spans
			}
			key := mpk.Key(rec[1])
			if rec[0]&1 == 0 {
				_, err := space.Reserve("fuzz", base, size, key)
				if got := model.Reserve(base, size, key); got != (err == nil) {
					t.Fatalf("Reserve(%v, %#x, %d): real err=%v, model ok=%v", base, size, key, err, got)
				}
			} else {
				err := space.SetPKey(base, size, key)
				if got := model.SetPKey(base, size, key); got != (err == nil) {
					t.Fatalf("SetPKey(%v, %#x, %d): real err=%v, model ok=%v", base, size, key, err, got)
				}
			}
		}
		for p := 0; p < window+32; p++ {
			a := scratchBase + vm.Addr(p)*vm.PageSize
			realKey, realOK := space.PKeyAt(a)
			modelKey, modelOK := model.KeyAt(a)
			if realOK != modelOK || (realOK && realKey != modelKey) {
				t.Fatalf("page %v: real key=%d,%v model key=%d,%v", a, realKey, realOK, modelKey, modelOK)
			}
		}
	})
}
