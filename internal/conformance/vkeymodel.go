package conformance

import (
	"repro/internal/mpk"
	"repro/internal/vm"
)

// Virtual-key executor sizing. The executor reserves most hardware keys
// away from the vkey table so only three multiplexable slots remain:
// generated traces then reach eviction and slot recycling within a few
// enters instead of needing fourteen distinct tenants.
const (
	// NumVKeySlots is the size of the vkey tenant table OpVKey* ops index
	// into. More tenants than hardware slots, so activation must evict.
	NumVKeySlots = 8
	// vkeyBase is the window holding one page per tenant, clear of the
	// scratch window and both pkalloc pools.
	vkeyBase vm.Addr = 0x1200_0000_0000
)

// vkeyReservedKeys are the hardware keys the executor's vkey table must
// not multiplex (beyond the implicit shared key 0 and the parking key):
// the trusted pool key, plus filler keys that shrink the slot pool to
// {12, 13, 14}.
var vkeyReservedKeys = []mpk.Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

// vkeyPage returns the page owned by vkey tenant vs.
func vkeyPage(vs int) vm.Addr { return vkeyBase + vm.Addr(vs)*vm.PageSize }

// vkeyMirror is the model-side reimplementation of vkey.Table's slot
// multiplexing: the same free-stack discipline (built ascending, popped
// from the end), the same LRU victim selection (the activation clock is
// strictly increasing, so last-use times never tie), and the same
// park/rebind/revoke order on eviction. It predicts — deterministically
// and without consulting the real table — which hardware slot every
// activation lands on; any drift between the two machines surfaces as a
// PKRU or keymap divergence in the differential executor.
type vkeyMirror struct {
	m        *Model
	inactive mpk.Key
	free     []mpk.Key
	clock    uint64
	ents     [NumVKeySlots]vkeyEnt
	stacks   [NumThreads][]int // entered tenant indices, innermost last
	outside  [NumThreads]mpk.PKRU
}

// vkeyEnt mirrors one logical key: live from alloc to free, active while
// bound to the hardware slot hw.
type vkeyEnt struct {
	live    bool
	active  bool
	hw      mpk.Key
	lastUse uint64
}

func newVKeyMirror(m *Model, inactive mpk.Key) *vkeyMirror {
	mir := &vkeyMirror{m: m, inactive: inactive}
	reserved := map[mpk.Key]bool{0: true, inactive: true}
	for _, k := range vkeyReservedKeys {
		reserved[k] = true
	}
	for k := mpk.Key(0); k < mpk.NumKeys; k++ {
		if !reserved[k] {
			mir.free = append(mir.free, k)
		}
	}
	return mir
}

// retag moves the tenant's page to key in the model's key map. The page is
// reserved at executor setup, so a refusal is a harness bug.
func (v *vkeyMirror) retag(vs int, key mpk.Key) {
	if !v.m.SetPKey(vkeyPage(vs), vm.PageSize, key) {
		panic("conformance: vkey mirror retag refused")
	}
}

// alloc mirrors Table.Alloc followed by Attach: the fresh logical key
// starts parked, so the tenant page moves to the inactive key.
func (v *vkeyMirror) alloc(vs int) {
	v.ents[vs] = vkeyEnt{live: true}
	v.retag(vs, v.inactive)
}

// busy reports whether the tenant is entered on any thread's stack —
// the condition under which Table.Free refuses with ErrKeyBusy.
func (v *vkeyMirror) busy(vs int) bool {
	for tid := range v.stacks {
		for _, f := range v.stacks[tid] {
			if f == vs {
				return true
			}
		}
	}
	return false
}

// release mirrors Table.Free; false means the key was refused as busy.
func (v *vkeyMirror) release(vs int) bool {
	if v.busy(vs) {
		return false
	}
	if v.ents[vs].active {
		v.unbind(vs)
	} else {
		v.retag(vs, v.inactive)
	}
	v.ents[vs].live = false
	return true
}

// unbind mirrors unbindLocked: the tenant's page is parked on the
// inactive key, the slot returns to the free stack, and the slot's rights
// are revoked from every bound restricted thread.
func (v *vkeyMirror) unbind(vs int) {
	e := &v.ents[vs]
	v.retag(vs, v.inactive)
	hw := e.hw
	e.active = false
	v.free = append(v.free, hw)
	v.revoke(hw)
}

// revoke mirrors revokeLocked: every thread bound to the table (stack
// non-empty) loses its grant for the rebound slot, except a trusted
// full-rights register, which is exempt.
func (v *vkeyMirror) revoke(hw mpk.Key) {
	for tid := range v.stacks {
		if len(v.stacks[tid]) == 0 {
			continue
		}
		r := v.m.PKRU(tid)
		if r == mpk.PermitAll {
			continue
		}
		if r.Rights(hw) != mpk.DenyAll {
			v.m.SetPKRU(tid, r.With(hw, mpk.DenyAll))
		}
	}
}

// activate mirrors activateLocked: tick the clock, return the bound slot
// on a hit, otherwise bind the tenant — evicting the least-recently-used
// entry when the free stack is empty.
func (v *vkeyMirror) activate(vs int) mpk.Key {
	e := &v.ents[vs]
	v.clock++
	e.lastUse = v.clock
	if e.active {
		return e.hw
	}
	if len(v.free) == 0 {
		victim := -1
		for i := range v.ents {
			if v.ents[i].active && (victim < 0 || v.ents[i].lastUse < v.ents[victim].lastUse) {
				victim = i
			}
		}
		if victim < 0 {
			panic("conformance: vkey mirror has no slot and no victim")
		}
		v.unbind(victim)
	}
	hw := v.free[len(v.free)-1]
	v.free = v.free[:len(v.free)-1]
	e.hw, e.active = hw, true
	v.retag(vs, hw)
	return hw
}

// enter mirrors Table.Enter on thread tid: the rights held before the
// first frame are captured (the value the bottom leave restores), the
// tenant is activated, and the compartment rights installed.
func (v *vkeyMirror) enter(tid, vs int) {
	if len(v.stacks[tid]) == 0 {
		v.outside[tid] = v.m.PKRU(tid)
	}
	hw := v.activate(vs)
	v.m.SetPKRU(tid, mpk.DenyAllExcept(0, hw))
	v.stacks[tid] = append(v.stacks[tid], vs)
}

// leave mirrors Table.Leave: the frame below is re-derived (re-activating
// its tenant, never replaying a saved PKRU), or the captured outside
// rights are restored at the bottom of the stack.
func (v *vkeyMirror) leave(tid int) {
	st := v.stacks[tid]
	rights := v.outside[tid]
	if len(st) >= 2 {
		rights = mpk.DenyAllExcept(0, v.activate(st[len(st)-2]))
	}
	v.m.SetPKRU(tid, rights)
	v.stacks[tid] = st[:len(st)-1]
}

// DirectedVKeyTrace returns a hand-written trace that exercises the
// virtual-key machinery end to end: five tenants multiplexed over three
// hardware slots, so enters evict mid-trace; compartment isolation probed
// from inside and outside; a busy free; nested enters whose below-frame
// re-derivation rebinds an evicted tenant; slot recycling through
// free+alloc; and a cross-thread eviction that revokes a bound thread's
// grant. With no injection it must replay divergence-free.
func DirectedVKeyTrace() Trace {
	var ops []Op
	// Five tenants on three slots.
	for vs := 0; vs < 5; vs++ {
		ops = append(ops, Op{Kind: OpVKeyAlloc, Slot: uint8(vs)})
	}
	ops = append(ops,
		// Inside tenant 0: the own page is reachable, a parked neighbor is
		// not (its page sits on the inactive key the compartment denies).
		Op{Kind: OpVKeyEnter, Slot: 0},
		Op{Kind: OpLoad, Flags: FlagRawAddr, Addr: vkeyPage(0), Size: 8},
		Op{Kind: OpStore, Flags: FlagRawAddr, Addr: vkeyPage(1), Size: 8},
		Op{Kind: OpVKeyLeave},
		// Fill the remaining slots, then force evictions of the LRU keys.
		Op{Kind: OpVKeyEnter, Slot: 1},
		Op{Kind: OpVKeyLeave},
		Op{Kind: OpVKeyEnter, Slot: 2},
		Op{Kind: OpVKeyLeave},
		Op{Kind: OpVKeyEnter, Slot: 3}, // evicts tenant 0
		// The evicted tenant's page is parked: unreachable from tenant 3.
		Op{Kind: OpLoad, Flags: FlagRawAddr, Addr: vkeyPage(0), Size: 8},
		// Nested enter rebinds the evicted tenant from inside tenant 3.
		Op{Kind: OpVKeyEnter, Slot: 0},
		Op{Kind: OpLoad, Flags: FlagRawAddr, Addr: vkeyPage(0), Size: 8},
		// An entered key cannot be freed.
		Op{Kind: OpVKeyFree, Slot: 0},
		Op{Kind: OpVKeyLeave}, // re-derives tenant 3's frame below
		Op{Kind: OpVKeyLeave},
		// Recycle: free a parked tenant, reuse its table slot.
		Op{Kind: OpVKeyFree, Slot: 1},
		Op{Kind: OpVKeyAlloc, Slot: 1},
		Op{Kind: OpVKeyEnter, Slot: 4}, // more slot pressure
		Op{Kind: OpVKeyLeave},
		// Cross-thread revocation: thread 0 holds tenant 2's grant while
		// thread 1 churns enough tenants to evict it; thread 0's PKRU loses
		// the slot and its own page goes dark until it leaves.
		Op{Kind: OpVKeyEnter, Slot: 2, Thread: 0},
		Op{Kind: OpVKeyEnter, Slot: 1, Thread: 1},
		Op{Kind: OpVKeyLeave, Thread: 1},
		Op{Kind: OpVKeyEnter, Slot: 3, Thread: 1},
		Op{Kind: OpVKeyLeave, Thread: 1},
		Op{Kind: OpVKeyEnter, Slot: 4, Thread: 1},
		Op{Kind: OpVKeyLeave, Thread: 1},
		Op{Kind: OpVKeyEnter, Slot: 0, Thread: 1},
		Op{Kind: OpLoad, Flags: FlagRawAddr, Addr: vkeyPage(2), Size: 8, Thread: 0},
		Op{Kind: OpVKeyLeave, Thread: 1},
		Op{Kind: OpVKeyLeave, Thread: 0},
		// Back outside: full rights again, every tenant page readable.
		Op{Kind: OpLoad, Flags: FlagRawAddr, Addr: vkeyPage(2), Size: 8, Thread: 0},
		// Recycle a slot the hard way: free a tenant while it is still
		// bound, returning its hardware slot to the pool.
		Op{Kind: OpVKeyEnter, Slot: 3},
		Op{Kind: OpVKeyLeave},
		Op{Kind: OpVKeyFree, Slot: 3},
	)
	return Trace{Ops: ops}
}
