package conformance

import (
	"testing"

	"repro/internal/supervise"
)

// TestSupervisedGateDrill is the fault-injection drill: the reference
// model and the recovering stack must agree on PKRU state and the page
// key map after an unwind under every recovery policy, and the drill's
// own planted bug (recovery that skips the PKRU restore) must be caught.
func TestSupervisedGateDrill(t *testing.T) {
	if err := DrillSupervised(); err != nil {
		t.Fatal(err)
	}
}

func TestSupervisedGatePerPolicy(t *testing.T) {
	for _, p := range []supervise.Policy{supervise.Retry, supervise.Quarantine, supervise.Heal} {
		rep, err := RunSupervisedGate(SupervisedOptions{Policy: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(rep.Divergences) != 0 {
			t.Errorf("%v: divergences: %v", p, rep.DivergenceStrings)
		}
		switch p {
		case supervise.Retry, supervise.Heal:
			if rep.CallErr != "" {
				t.Errorf("%v: supervised call failed: %s", p, rep.CallErr)
			}
		case supervise.Quarantine:
			if rep.CallErr == "" {
				t.Errorf("quarantine: dropped call reported success")
			}
		}
		if (p == supervise.Heal) != rep.Healed {
			t.Errorf("%v: healed = %v", p, rep.Healed)
		}
	}
}

func TestSupervisedGatePlantedBugCaught(t *testing.T) {
	rep, err := RunSupervisedGate(SupervisedOptions{Policy: supervise.Heal, PlantSkipRestore: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) == 0 {
		t.Fatal("planted skip-restore recovery bug not detected")
	}
}
