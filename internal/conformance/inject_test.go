package conformance

import "testing"

// TestPlantedFaultsAreDetected is the mutation test of the harness: every
// bug class the injector can plant must produce at least one divergence on
// its directed probe trace, and the probe trace must be clean without the
// injection (so the detection is the injection's doing, not noise).
func TestPlantedFaultsAreDetected(t *testing.T) {
	for _, f := range Faults() {
		tr := DirectedTrace(f)
		clean := Run(tr, Options{})
		if n := len(clean.Divergences); n != 0 {
			t.Errorf("%v: probe trace diverges without injection (%d): %v", f, n, clean.Divergences[0])
			continue
		}
		injected := Run(tr, Options{Inject: f})
		if len(injected.Divergences) == 0 {
			t.Errorf("%v: planted fault NOT detected by the differential oracle", f)
		} else {
			t.Logf("%v detected: %v", f, injected.Divergences[0])
		}
	}
}

// TestInjectionDetectedOnGeneratedTraces: the oracle also catches the
// planted bugs on ordinary generated workloads, not just the tailored
// probe — at least one seed per fault mode must trip.
func TestInjectionDetectedOnGeneratedTraces(t *testing.T) {
	for _, f := range Faults() {
		detected := false
		for seed := int64(1); seed <= 8 && !detected; seed++ {
			res := Run(Generate(seed, 384), Options{Inject: f})
			detected = len(res.Divergences) > 0
		}
		if !detected {
			t.Errorf("%v: no generated seed in 1..8 exposes the planted fault", f)
		}
	}
}

// TestDetectionAttribution: each injection's first divergence points at
// the mechanism it corrupts, so a report names the right layer.
func TestDetectionAttribution(t *testing.T) {
	cases := []struct {
		fault    Fault
		wantWhat map[string]bool // acceptable What values for any divergence
	}{
		{InjectSkipGateRestore, map[string]bool{"pkru": true, "outcome": true}},
		{InjectSwallowSegv, map[string]bool{"outcome": true, "pkru": true}},
		{InjectLeakTrustedAlloc, map[string]bool{"outcome": true, "keymap": true}},
		{InjectStaleSetPKey, map[string]bool{"outcome": true, "keymap": true}},
	}
	for _, c := range cases {
		res := Run(DirectedTrace(c.fault), Options{Inject: c.fault})
		if len(res.Divergences) == 0 {
			t.Errorf("%v: not detected", c.fault)
			continue
		}
		for _, d := range res.Divergences {
			if !c.wantWhat[d.What] {
				t.Errorf("%v: unexpected divergence class %q: %v", c.fault, d.What, d)
			}
		}
	}
}

func TestParseFault(t *testing.T) {
	for _, f := range Faults() {
		got, ok := ParseFault(f.String())
		if !ok || got != f {
			t.Errorf("ParseFault(%q) = %v, %v", f.String(), got, ok)
		}
	}
	if _, ok := ParseFault("bogus"); ok {
		t.Error("ParseFault accepted bogus name")
	}
}
