package conformance

import (
	"repro/internal/mpk"
	"repro/internal/sig"
)

// Fault selects a known bug to plant in the real-side execution. Fault
// injection is mutation testing for the harness itself: each mode
// reproduces a class of MPK integration bug that real systems have
// shipped, and the differential oracle must flag every one.
type Fault uint8

const (
	// InjectNone replays faithfully.
	InjectNone Fault = iota
	// InjectSkipGateRestore models a compartment gate whose exit path
	// forgets to restore the saved PKRU: after the gated section returns,
	// the thread keeps running with untrusted rights. (The inverse bug —
	// entering U without dropping rights — is caught the same way.)
	InjectSkipGateRestore
	// InjectSwallowSegv models a mis-chained SIGSEGV handler: instead of
	// forwarding faults it does not own to the previously registered
	// handler, it claims every delivery, grants full rights and resumes —
	// silently erasing MPK violations.
	InjectSwallowSegv
	// InjectLeakTrustedAlloc models a trusted-heap allocation leaking into
	// the untrusted compartment: the page backing an MT allocation ends up
	// tagged with the default key, so untrusted code can reach it.
	InjectLeakTrustedAlloc
	// InjectStaleSetPKey models a stale protection key after region
	// reuse: pkey_mprotect reports success but the pages keep their old
	// tag, as with a missed retag on a recycled span.
	InjectStaleSetPKey

	numFaults
)

func (f Fault) String() string {
	switch f {
	case InjectNone:
		return "none"
	case InjectSkipGateRestore:
		return "skip-gate-restore"
	case InjectSwallowSegv:
		return "swallow-segv"
	case InjectLeakTrustedAlloc:
		return "leak-trusted-alloc"
	case InjectStaleSetPKey:
		return "stale-setpkey"
	default:
		return "fault(?)"
	}
}

// Faults returns every plantable fault mode (excluding InjectNone).
func Faults() []Fault {
	return []Fault{InjectSkipGateRestore, InjectSwallowSegv, InjectLeakTrustedAlloc, InjectStaleSetPKey}
}

// ParseFault resolves a fault mode name as used by pkru-conform's -fault
// flag.
func ParseFault(name string) (Fault, bool) {
	for f := InjectNone; f < numFaults; f++ {
		if f.String() == name {
			return f, true
		}
	}
	return InjectNone, false
}

// installSwallowingHandler registers the InjectSwallowSegv handler: it
// discards whatever was registered before it (the mis-chaining) and
// services every SIGSEGV by granting full rights and resuming.
func installSwallowingHandler(t *sig.Table) {
	t.Register(sig.SIGSEGV, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		ctx.SetPKRU(uint32(mpk.PermitAll))
		return sig.Handled
	}))
}

// DirectedTrace returns a small hand-written trace guaranteed to expose
// the given fault mode when replayed with that injection: it allocates in
// both pools, retags a scratch reservation, crosses gates and touches MT
// from inside and outside the untrusted compartment. With InjectNone it
// replays divergence-free.
func DirectedTrace(f Fault) Trace {
	const scratch = 0x1000_0000_0000
	ops := []Op{
		// A scratch window that later gets retagged.
		{Kind: OpReserve, Addr: scratch, Size: 4 * 4096, Key: 3},
		// One allocation in each pool.
		{Kind: OpAlloc, Slot: 0, Size: 256},                       // MT
		{Kind: OpAlloc, Slot: 1, Size: 256, Flags: FlagUntrusted}, // MU
		// Baseline: trusted code reaches everything.
		{Kind: OpLoad, Slot: 0, Size: 8},
		{Kind: OpStore, Slot: 1, Size: 8},
		{Kind: OpLoad, Flags: FlagRawAddr, Addr: scratch, Size: 8},
		// Retag the scratch window to the default key; a later access
		// under rights that deny key 3 must now succeed (stale-setpkey
		// turns this into a phantom fault).
		{Kind: OpSetPKey, Addr: scratch, Size: 4 * 4096, Key: 0},
		{Kind: OpWRPKRU, Value: mpk.PermitAll.With(3, mpk.DenyAll)},
		{Kind: OpStore, Flags: FlagRawAddr, Addr: scratch + 4096, Size: 8},
		{Kind: OpWRPKRU, Value: mpk.PermitAll},
		// Gated call into U touching MT: must PKU-fault with AD|WD on the
		// trusted key (swallow-segv erases the fault; leak-trusted-alloc
		// makes the access legal for real).
		{Kind: OpGateCall, Slot: 0, Size: 8, Flags: FlagWrite},
		// Hand-rolled gate pair with an MT access after the exit: the
		// restore must bring trusted rights back (skip-gate-restore
		// leaves the thread locked out).
		{Kind: OpGateEnter},
		{Kind: OpLoad, Slot: 1, Size: 8}, // MU stays reachable inside U
		{Kind: OpGateExit},
		{Kind: OpLoad, Slot: 0, Size: 8},
		// A second MT allocation after the pool was exercised.
		{Kind: OpAlloc, Slot: 2, Size: 512},
		{Kind: OpGateCall, Slot: 2, Size: 4},
	}
	return Trace{Ops: ops}
}
