package conformance

import (
	"strings"
	"testing"
)

// TestShrinkProducesMinimalDivergingTrace: shrinking a diverging replay
// keeps the divergence while discarding the irrelevant ops.
func TestShrinkProducesMinimalDivergingTrace(t *testing.T) {
	opts := Options{Inject: InjectStaleSetPKey}
	// Pad the directed probe with generated noise so there is something
	// substantial to strip away.
	tr := Generate(3, 128)
	tr.Ops = append(tr.Ops, DirectedTrace(InjectStaleSetPKey).Ops...)
	if !diverges(tr, opts) {
		t.Fatal("padded trace does not diverge under injection")
	}
	sh := Shrink(tr, opts)
	if !diverges(sh, opts) {
		t.Fatal("shrunk trace no longer diverges")
	}
	if len(sh.Ops) >= len(tr.Ops) {
		t.Errorf("shrink removed nothing: %d -> %d ops", len(tr.Ops), len(sh.Ops))
	}
	// The stale-retag bug needs only: a reserve, the skipped retag, and a
	// witness (an access or the key sweep). Shrinking should get close.
	if len(sh.Ops) > 8 {
		t.Errorf("shrunk trace still has %d ops (want <= 8):\n%s", len(sh.Ops), FormatGoTest("Shrink", sh))
	}
	t.Logf("shrunk %d -> %d ops:\n%s", len(tr.Ops), len(sh.Ops), FormatGoTest("Shrink", sh))
}

// TestShrinkOnCleanTraceIsIdentity: a non-diverging trace comes back
// unchanged rather than being mangled.
func TestShrinkOnCleanTraceIsIdentity(t *testing.T) {
	tr := Generate(5, 64)
	sh := Shrink(tr, Options{})
	if len(sh.Ops) != len(tr.Ops) {
		t.Errorf("clean trace shrunk from %d to %d ops", len(tr.Ops), len(sh.Ops))
	}
}

// TestShrunkTraceRendersStandalone: the printed repro carries every op of
// the shrunk trace so it can be pasted into a regression test verbatim.
func TestShrunkTraceRendersStandalone(t *testing.T) {
	opts := Options{Inject: InjectSkipGateRestore}
	sh := Shrink(DirectedTrace(InjectSkipGateRestore), opts)
	src := FormatGoTest("GateRestore", sh)
	if got := strings.Count(src, "{Kind: conformance.Op"); got != len(sh.Ops) {
		t.Errorf("rendered test has %d op literals, want %d:\n%s", got, len(sh.Ops), src)
	}
}
