package conformance

import "testing"

// TestDirectedVKeyTrace replays the hand-written virtualization trace:
// it must be divergence-free, must actually multiplex (five tenants over
// three slots force evictions and a recycled slot), and must exercise the
// observable consequences — compartment isolation faults and the busy-free
// rejection.
func TestDirectedVKeyTrace(t *testing.T) {
	tr := DirectedVKeyTrace()
	res := Run(tr, Options{})
	for _, d := range res.Divergences {
		t.Errorf("divergence: %v", d)
	}
	if res.Skipped != 0 {
		t.Errorf("Skipped = %d, want 0 (the directed trace is fully live)", res.Skipped)
	}
	if res.VKeyStats.Evictions == 0 {
		t.Error("no evictions: the trace did not multiplex")
	}
	if res.VKeyStats.Recycled == 0 {
		t.Error("no recycled slots: the free+realloc leg did not run")
	}
	if res.Counts[FaultPKU] < 3 {
		t.Errorf("FaultPKU count = %d, want >= 3 (parked-page, evicted-page and revoked-grant probes)", res.Counts[FaultPKU])
	}
	if res.Counts[Rejected] != 1 {
		t.Errorf("Rejected count = %d, want exactly 1 (the busy free)", res.Counts[Rejected])
	}
}

// TestGenerateCoversVKeyOps pins the generator's coverage of the
// virtualization ops: a seeded trace of moderate length must include
// every OpVKey* kind, and replaying it must both stay divergence-free and
// reach slot eviction — otherwise fuzzing never stresses the multiplexer.
func TestGenerateCoversVKeyOps(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tr := Generate(seed, 512)
		kinds := make(map[OpKind]int)
		for _, op := range tr.Ops {
			kinds[op.Kind]++
		}
		for _, k := range []OpKind{OpVKeyAlloc, OpVKeyFree, OpVKeyEnter, OpVKeyLeave} {
			if kinds[k] == 0 {
				t.Errorf("seed %d: generator emitted no %v ops", seed, k)
			}
		}
		res := Run(tr, Options{})
		for _, d := range res.Divergences {
			t.Errorf("seed %d: divergence: %v", seed, d)
		}
		if res.VKeyStats.Evictions == 0 {
			t.Errorf("seed %d: generated trace never evicted a virtual key", seed)
		}
	}
}
