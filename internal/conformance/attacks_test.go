package conformance

import (
	"testing"

	"repro/internal/attack"
)

// TestDrillAttacks is the CI anchor for the attack corpus: every Garmr
// scenario must pass both its red and green drill.
func TestDrillAttacks(t *testing.T) {
	if err := DrillAttacks(); err != nil {
		t.Fatal(err)
	}
}

// TestDrillAttacksCoversRoster pins the drill to the full roster: a drill
// that silently ran fewer scenarios would pass while covering nothing.
func TestDrillAttacksCoversRoster(t *testing.T) {
	want := 2 * len(attack.Scenarios())
	if got := len(attack.RunAll()); got != want {
		t.Fatalf("RunAll produced %d drills, want %d (red+green per scenario)", got, want)
	}
}
