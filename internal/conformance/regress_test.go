package conformance_test

import (
	"testing"

	"repro/internal/conformance"
)

// Shrunk counterexamples found by the fuzz targets, committed as pinned
// regressions. Each trace once diverged between the real stack and the
// reference model; replaying it must now report zero divergences.

// Found by FuzzSpaceOracle (corpus entry
// testdata/fuzz/FuzzSpaceOracle/8ccd98505f952e48) and shrunk to one op:
// vm.Space.Reserve computed its upper bound as base+size, which wraps for
// sizes near 2^64, so this reservation was accepted and produced a region
// whose End() preceded its Base. The model rejects it.
func TestConformanceRegressionReserveWrap(t *testing.T) {
	tr := conformance.Trace{Ops: []conformance.Op{
		{Kind: conformance.OpReserve, Thread: 0, Slot: 0, Flags: 0, Key: 1, Addr: 0x100000030000, Size: 0xffffff3030303000, Value: 0},
	}}
	res := conformance.Run(tr, conformance.Options{})
	for _, d := range res.Divergences {
		t.Errorf("divergence: %v", d)
	}
}

// The sibling bug in vm.Space.SetPKey: the same wrapping bound made the
// reservation-coverage walk see an empty range, so the retag "succeeded"
// as a silent no-op where the model rejects it.
func TestConformanceRegressionSetPKeyWrap(t *testing.T) {
	tr := conformance.Trace{Ops: []conformance.Op{
		{Kind: conformance.OpReserve, Thread: 0, Slot: 0, Flags: 0, Key: 1, Addr: 0x100000030000, Size: 0x4000, Value: 0},
		{Kind: conformance.OpSetPKey, Thread: 0, Slot: 0, Flags: 0, Key: 2, Addr: 0x100000030000, Size: 0xfffffffffffff000, Value: 0},
		{Kind: conformance.OpLoad, Thread: 0, Slot: 0, Flags: 0x4, Key: 0, Addr: 0x100000030000, Size: 0x8, Value: 0},
	}}
	res := conformance.Run(tr, conformance.Options{})
	for _, d := range res.Divergences {
		t.Errorf("divergence: %v", d)
	}
}
