package conformance

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ffi"
	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/sig"
	"repro/internal/vkey"
	"repro/internal/vm"
)

// Executor sizing. Thread and slot indices in ops are taken modulo these,
// so every decoded byte string is replayable.
const (
	// NumThreads is the number of simulated CPU contexts a trace drives.
	NumThreads = 4
	// NumSlots is the size of the allocation slot table ops index into.
	NumSlots = 16
	// MaxAccessBytes caps one access's width (canonicalized modulo this),
	// wide enough to cross two page boundaries.
	MaxAccessBytes = 3 * vm.PageSize
	// MaxAllocBytes caps one allocation's size.
	MaxAllocBytes = 2 * vm.PageSize
)

// Options configures a differential run.
type Options struct {
	// Inject plants a known bug into the real-side execution; the run is
	// then expected to diverge. InjectNone replays faithfully.
	Inject Fault
}

// Divergence is one disagreement between the real stack and the model.
type Divergence struct {
	// Index is the position of the diverging op, or -1 for the
	// end-of-trace protection-key map sweep.
	Index int
	Op    Op
	// What names the diffed property: "outcome", "pkru", or "keymap".
	What string
	// Addr is the probed address for keymap divergences.
	Addr        vm.Addr
	Real, Model Outcome
}

func (d Divergence) String() string {
	if d.What == "keymap" {
		return fmt.Sprintf("keymap at %v: real %s, model %s", d.Addr, keymapString(d.Real), keymapString(d.Model))
	}
	return fmt.Sprintf("op %d (%v) %s: real %v, model %v", d.Index, d.Op, d.What, d.Real, d.Model)
}

func keymapString(o Outcome) string {
	if o.Kind != OK {
		return "unreserved"
	}
	return fmt.Sprintf("key %d", o.PKey)
}

// Result summarizes one differential replay.
type Result struct {
	Trace       Trace
	Ops         int                 // ops executed (excluding skipped)
	Skipped     int                 // ops skipped (dead slot, empty gate stack)
	Counts      map[OutcomeKind]int // real-side outcome histogram
	Divergences []Divergence

	// VKeyStats is the real vkey table's view after the replay: evidence
	// that a trace actually multiplexed (evictions, recycled slots) rather
	// than staying under the slot count.
	VKeyStats vkey.Stats
}

// slot is one entry in the allocation slot table shared by both sides.
type slot struct {
	addr vm.Addr
	size uint64
	live bool
}

// runner holds the real stack under test plus the model mirror.
type runner struct {
	opts  Options
	space *vm.Space
	sigs  *sig.Table
	alloc *pkalloc.Allocator
	rt    *ffi.Runtime
	ths   []*ffi.Thread
	model *Model

	// Hand-rolled gate stacks for OpGateEnter/OpGateExit (per thread).
	// The executor, not the trace, tracks depth so both sides always
	// agree on whether an exit matches an enter.
	gateStacks [NumThreads][]mpk.PKRU

	slots [NumSlots]slot

	// Virtual-key multiplexing under differential test: the real table,
	// the per-tenant logical-key IDs (0 = dead), the model-side mirror
	// predicting slot assignment, and the rights each thread held before
	// its first Enter (what the bottom Leave restores).
	vkeys       *vkey.Table
	vkeyID      [NumVKeySlots]vkey.ID
	vmir        *vkeyMirror
	vkeyOutside [NumThreads]mpk.PKRU

	// pending carries the access an OpGateCall performs inside the ffi
	// library function. Traces run single-goroutine, so one cell suffices.
	pending struct {
		addr  vm.Addr
		width uint64
		write bool
	}

	// probe accumulates interesting addresses for the final key-map sweep.
	probe map[vm.Addr]struct{}

	res *Result
}

// Run replays the trace against the real vm/mpk/sig/heap/ffi stack and the
// reference model in lockstep and reports every divergence.
func Run(tr Trace, opts Options) *Result {
	r := &runner{
		opts:  opts,
		space: vm.NewSpace(),
		sigs:  new(sig.Table),
		probe: make(map[vm.Addr]struct{}),
		res:   &Result{Trace: tr, Counts: make(map[OutcomeKind]int)},
	}
	alloc, err := pkalloc.New(pkalloc.Config{Space: r.space})
	if err != nil {
		panic("conformance: pkalloc setup: " + err.Error())
	}
	r.alloc = alloc
	reg := ffi.NewRegistry()
	reg.MustLibrary("unsafe", ffi.Untrusted).Define("touch", r.touch)
	reg.MustLibrary("safe", ffi.Trusted).Define("touch", r.touch)
	r.rt = ffi.NewRuntime(reg, alloc, r.sigs, ffi.GatesOn)
	r.rt.SetGateCost(0) // conformance measures semantics, not latency
	for i := 0; i < NumThreads; i++ {
		r.ths = append(r.ths, r.rt.NewThread())
	}

	// The model mirrors the two pool reservations pkalloc made, the same
	// way it will mirror every Reserve op in the trace.
	r.model = NewModel(NumThreads, alloc.TrustedKey())
	mirror := func(reg *vm.Region) {
		if !r.model.Reserve(reg.Base, reg.Size, reg.PKey) {
			panic("conformance: model rejects pkalloc reservation")
		}
	}
	mirror(alloc.TrustedRegion())
	mirror(alloc.UntrustedRegion())
	r.probeAddr(alloc.TrustedRegion().Base)
	r.probeAddr(alloc.UntrustedRegion().Base)

	// Virtual-key tenants: one page per tenant, reserved up front on the
	// shared key and handed to a logical key by OpVKeyAlloc. The table gets
	// only three multiplexable slots (see vkeyReservedKeys), so traces
	// evict and recycle without needing fourteen tenants.
	vt, err := vkey.NewTable(r.space, vkey.Config{Reserved: vkeyReservedKeys})
	if err != nil {
		panic("conformance: vkey setup: " + err.Error())
	}
	r.vkeys = vt
	r.vmir = newVKeyMirror(r.model, vt.InactiveKey())
	for vs := 0; vs < NumVKeySlots; vs++ {
		name := fmt.Sprintf("vkey/t%d", vs)
		if _, err := r.space.Reserve(name, vkeyPage(vs), vm.PageSize, 0); err != nil {
			panic("conformance: vkey tenant reserve: " + err.Error())
		}
		if !r.model.Reserve(vkeyPage(vs), vm.PageSize, 0) {
			panic("conformance: model rejects vkey tenant reservation")
		}
		r.probeAddr(vkeyPage(vs))
	}

	if opts.Inject == InjectSwallowSegv {
		installSwallowingHandler(r.sigs)
	}

	for i, op := range tr.Ops {
		r.step(i, op)
	}
	r.sweepKeyMap()
	r.res.VKeyStats = r.vkeys.Stats()
	return r.res
}

// probeAddr marks an address for the end-of-trace key-map sweep.
func (r *runner) probeAddr(a vm.Addr) { r.probe[a] = struct{}{} }

// touch is the library function OpGateCall routes through: it performs the
// pending access on the calling thread's checked view of memory.
func (r *runner) touch(t *ffi.Thread, _ []uint64) ([]uint64, error) {
	buf := make([]byte, r.pending.width)
	if r.pending.write {
		return nil, t.VM.Write(r.pending.addr, buf)
	}
	return nil, t.VM.Read(r.pending.addr, buf)
}

// target resolves an access op's address, or reports the op dead (slot
// targeting with an empty slot).
func (r *runner) target(op Op) (vm.Addr, bool) {
	if op.Flags&FlagRawAddr != 0 {
		return op.Addr, true
	}
	s := &r.slots[int(op.Slot)%NumSlots]
	if !s.live {
		return 0, false
	}
	// The offset may overshoot the allocation by up to two pages so
	// overruns into neighboring memory are exercised.
	off := uint64(op.Addr) % (s.size + 2*vm.PageSize)
	return s.addr + vm.Addr(off), true
}

// accessWidth canonicalizes an access op's width.
func accessWidth(op Op) uint64 { return op.Size % (MaxAccessBytes + 1) }

// allocSize canonicalizes an alloc/realloc op's size.
func allocSize(op Op) uint64 { return op.Size % (MaxAllocBytes + 1) }

// step executes one op on both sides and diffs the outcomes.
func (r *runner) step(i int, op Op) {
	tid := int(op.Thread) % NumThreads
	th := r.ths[tid]
	var real, model Outcome

	switch op.Kind {
	case OpReserve:
		name := fmt.Sprintf("trace/r%d", i)
		_, err := r.space.Reserve(name, op.Addr, op.Size, op.Key)
		real = okOrRejected(err == nil)
		model = okOrRejected(r.model.Reserve(op.Addr, op.Size, op.Key))
		if err == nil {
			r.probeAddr(op.Addr)
			r.probeAddr(op.Addr + vm.Addr(op.Size) - vm.PageSize)
		}

	case OpSetPKey:
		modelOK := r.model.SetPKey(op.Addr, op.Size, op.Key)
		model = okOrRejected(modelOK)
		if r.opts.Inject == InjectStaleSetPKey {
			// Planted bug: the retag "succeeds" without touching the real
			// page table — a stale protection key after region reuse.
			real = model
		} else {
			real = okOrRejected(r.space.SetPKey(op.Addr, op.Size, op.Key) == nil)
		}
		if modelOK && op.Size > 0 {
			r.probeAddr(op.Addr)
			r.probeAddr(op.Addr + vm.Addr(op.Size) - vm.PageSize)
		}

	case OpWRPKRU:
		th.VM.SetRights(op.Value)
		r.model.SetPKRU(tid, op.Value)
		real, model = Outcome{Kind: OK}, Outcome{Kind: OK}

	case OpLoad, OpStore:
		addr, ok := r.target(op)
		if !ok {
			r.skip()
			return
		}
		write := op.Kind == OpStore
		width := accessWidth(op)
		buf := make([]byte, width)
		var err error
		if write {
			err = th.VM.Write(addr, buf)
		} else {
			err = th.VM.Read(addr, buf)
		}
		real = realAccessOutcome(err)
		model = r.model.Access(tid, addr, width, write)

	case OpGateEnter:
		r.gateStacks[tid] = append(r.gateStacks[tid], th.VM.Rights())
		th.VM.SetRights(r.rt.UntrustedPKRU())
		r.model.GateEnter(tid)
		real, model = Outcome{Kind: OK}, Outcome{Kind: OK}

	case OpGateExit:
		st := r.gateStacks[tid]
		if len(st) == 0 {
			r.skip()
			return
		}
		saved := st[len(st)-1]
		r.gateStacks[tid] = st[:len(st)-1]
		if r.opts.Inject != InjectSkipGateRestore {
			th.VM.SetRights(saved)
		}
		r.model.GateExit(tid)
		real, model = Outcome{Kind: OK}, Outcome{Kind: OK}

	case OpGateCall:
		addr, ok := r.target(op)
		if !ok {
			r.skip()
			return
		}
		write := op.Flags&FlagWrite != 0
		width := accessWidth(op)
		r.pending.addr, r.pending.width, r.pending.write = addr, width, write
		lib := "unsafe"
		if op.Flags&FlagTrustedLib != 0 {
			lib = "safe"
		}
		_, err := th.Call(lib, "touch")
		real = realAccessOutcome(err)
		if lib == "unsafe" {
			r.model.GateEnter(tid)
			model = r.model.Access(tid, addr, width, write)
			r.model.GateExit(tid)
		} else {
			model = r.model.Access(tid, addr, width, write)
		}

	case OpAlloc:
		s := &r.slots[int(op.Slot)%NumSlots]
		if s.live {
			r.skip()
			return
		}
		comp := pkalloc.Trusted
		if op.Flags&FlagUntrusted != 0 {
			comp = pkalloc.Untrusted
		}
		size := allocSize(op)
		addr, err := r.alloc.AllocIn(comp, size)
		if err == nil {
			s.addr, s.size, s.live = addr, size, true
			if comp == pkalloc.Trusted && r.opts.Inject == InjectLeakTrustedAlloc {
				// Planted bug: the trusted allocation's page ends up
				// reachable from U — as if the allocator handed out a
				// page it never moved back under the trusted key.
				if err := r.space.SetPKey(addr.PageBase(), vm.PageSize, 0); err != nil {
					panic("conformance: leak injection: " + err.Error())
				}
			}
		}
		// Allocator outcomes are not diffed: the model has no allocator.
		// The allocation only matters as an address source, and the key
		// sweep + later accesses judge where it landed.
		real, model = okOrRejected(err == nil), Outcome{Kind: Skipped}

	case OpRealloc:
		s := &r.slots[int(op.Slot)%NumSlots]
		if !s.live {
			r.skip()
			return
		}
		size := allocSize(op)
		addr, err := r.alloc.Realloc(s.addr, size)
		if err == nil {
			s.addr, s.size = addr, size
		}
		real, model = okOrRejected(err == nil), Outcome{Kind: Skipped}

	case OpFree:
		s := &r.slots[int(op.Slot)%NumSlots]
		if !s.live {
			r.skip()
			return
		}
		err := r.alloc.Free(s.addr)
		s.live = false
		real, model = okOrRejected(err == nil), Outcome{Kind: Skipped}

	case OpVKeyAlloc:
		vs := int(op.Slot) % NumVKeySlots
		if r.vkeyID[vs] != 0 {
			r.skip()
			return
		}
		id := r.vkeys.Alloc(fmt.Sprintf("vtenant%d", vs))
		err := r.vkeys.Attach(id, vkeyPage(vs), vm.PageSize)
		if err == nil {
			r.vkeyID[vs] = id
		}
		real = okOrRejected(err == nil)
		r.vmir.alloc(vs)
		model = Outcome{Kind: OK}

	case OpVKeyFree:
		vs := int(op.Slot) % NumVKeySlots
		if r.vkeyID[vs] == 0 {
			r.skip()
			return
		}
		err := r.vkeys.Free(r.vkeyID[vs])
		if err == nil {
			r.vkeyID[vs] = 0
		}
		real = okOrRejected(err == nil)
		model = okOrRejected(r.vmir.release(vs))

	case OpVKeyEnter:
		vs := int(op.Slot) % NumVKeySlots
		if r.vkeyID[vs] == 0 {
			r.skip()
			return
		}
		if len(r.vmir.stacks[tid]) == 0 {
			r.vkeyOutside[tid] = th.VM.Rights()
		}
		_, err := r.vkeys.Enter(th.VM, r.vkeyID[vs])
		real = okOrRejected(err == nil)
		r.vmir.enter(tid, vs)
		model = Outcome{Kind: OK}

	case OpVKeyLeave:
		if len(r.vmir.stacks[tid]) == 0 {
			r.skip()
			return
		}
		_, err := r.vkeys.Leave(th.VM, r.vkeyOutside[tid])
		real = okOrRejected(err == nil)
		r.vmir.leave(tid)
		model = Outcome{Kind: OK}

	default:
		r.skip()
		return
	}

	r.res.Ops++
	r.res.Counts[real.Kind]++

	// Register diff: after every op both sides must agree on the thread's
	// PKRU value — this is what catches a gate that forgets its restore
	// or a handler that smuggles rights in.
	realPKRU, modelPKRU := th.VM.Rights(), r.model.PKRU(tid)
	if realPKRU != modelPKRU {
		r.diverge(Divergence{Index: i, Op: op, What: "pkru",
			Real: Outcome{Kind: real.Kind, PKRU: realPKRU}, Model: Outcome{Kind: model.Kind, PKRU: modelPKRU}})
	}

	if real.Kind == Skipped || model.Kind == Skipped {
		return
	}
	real.PKRU, model.PKRU = realPKRU, modelPKRU
	if real != model {
		r.diverge(Divergence{Index: i, Op: op, What: "outcome", Real: real, Model: model})
	}
}

func (r *runner) skip() { r.res.Skipped++ }

func (r *runner) diverge(d Divergence) {
	r.res.Divergences = append(r.res.Divergences, d)
}

// sweepKeyMap compares the real page-key view against the model at every
// interesting address the trace touched: reservation edges, retag edges,
// live allocations and the pool bases.
func (r *runner) sweepKeyMap() {
	for _, s := range r.slots {
		if s.live {
			r.probeAddr(s.addr)
		}
	}
	addrs := make([]vm.Addr, 0, len(r.probe))
	for a := range r.probe {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		realKey, realOK := r.space.PKeyAt(a)
		modelKey, modelOK := r.model.KeyAt(a)
		if realOK != modelOK || (realOK && realKey != modelKey) {
			r.diverge(Divergence{
				Index: -1, What: "keymap", Addr: a,
				Real:  keymapOutcome(realKey, realOK),
				Model: keymapOutcome(modelKey, modelOK),
			})
		}
	}
}

func keymapOutcome(key mpk.Key, ok bool) Outcome {
	if !ok {
		return Outcome{Kind: Rejected}
	}
	return Outcome{Kind: OK, PKey: key}
}

func okOrRejected(ok bool) Outcome {
	if ok {
		return Outcome{Kind: OK}
	}
	return Outcome{Kind: Rejected}
}

// realAccessOutcome maps a checked access's error into an Outcome,
// decoding the fault info and PKRU bits exactly as obs crash reports do.
func realAccessOutcome(err error) Outcome {
	if err == nil {
		return Outcome{Kind: OK}
	}
	var f *vm.Fault
	if !errors.As(err, &f) {
		return Outcome{Kind: Rejected}
	}
	kind := FaultMap
	if f.Info.Code == sig.CodePKUErr {
		kind = FaultPKU
	}
	rights := f.PKRU.Rights(mpk.Key(f.Info.PKey))
	return Outcome{
		Kind:  kind,
		Addr:  vm.Addr(f.Info.Addr),
		PKey:  mpk.Key(f.Info.PKey),
		Write: f.Info.Access == sig.AccessWrite,
		AD:    rights&mpk.AccessDisable != 0,
		WD:    rights&mpk.WriteDisable != 0,
		PKRU:  f.PKRU,
	}
}
