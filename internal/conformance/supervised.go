package conformance

import (
	"errors"
	"fmt"

	"repro/internal/ffi"
	"repro/internal/mpk"
	"repro/internal/obs"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/supervise"
	"repro/internal/vm"
)

// SupervisedOptions configures a supervised-gate conformance drill.
type SupervisedOptions struct {
	// Policy is the recovery policy to drill (Retry, Quarantine or Heal;
	// Abort degrades to an unsupervised run and the faulting call fails).
	Policy supervise.Policy
	// PlantSkipRestore simulates a buggy recovery layer that resumes
	// trusted code without restoring the PKRU register. The oracle must
	// report a divergence — this is the drill's own fault-injection mode.
	PlantSkipRestore bool
}

// SupervisedReport is the outcome of one supervised-gate drill.
type SupervisedReport struct {
	Policy      string       `json:"policy"`
	CallErr     string       `json:"call_err,omitempty"`
	Healed      bool         `json:"healed"`
	Divergences []Divergence `json:"-"`
	// DivergenceStrings mirrors Divergences for the JSON summary.
	DivergenceStrings []string `json:"divergences"`
}

// RunSupervisedGate drives the real recovering stack and the pure
// reference model through the same compartment-failure scenario and
// verifies that recovery did not change the enforcement semantics:
// after the supervisor unwinds a faulted T→U call, the thread's PKRU and
// gate depth must match the model's, and the end-of-drill page-key sweep
// must agree everywhere — for the Heal policy, exactly the healed
// object's pages moved to the shared key and every other trusted page
// kept the trusted key.
//
// The scenario: trusted code allocates two page-sized MT objects, A and
// B, plus one MU object; only A's provenance reaches the shadow store
// under an ID the (deliberately truncated) profile missed. A supervised
// gated call asks the untrusted library to write A — a PKUERR today.
// Under Retry the callee is flaky (it writes the MU object from the
// second attempt on); under Quarantine the failed call is dropped; under
// Heal the site is migrated and the same write retried. The model
// mirrors each step with GateEnter/Access/GateExit and, for a heal, the
// equivalent SetPKey.
func RunSupervisedGate(opts SupervisedOptions) (*SupervisedReport, error) {
	// Small pools so the key sweep over both regions stays cheap.
	const (
		mtBase = vm.Addr(0x2000_0000_0000)
		muBase = vm.Addr(0x7000_0000_0000)
		mtSize = uint64(64 * vm.PageSize)
		muSize = uint64(64 * vm.PageSize)
	)
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{
		Space:       space,
		TrustedBase: mtBase, TrustedSize: mtSize,
		UntrustedBase: muBase, UntrustedSize: muSize,
	})
	if err != nil {
		return nil, err
	}
	reg := ffi.NewRegistry()
	rt := ffi.NewRuntime(reg, alloc, nil, ffi.GatesOn)
	rec := obs.NewRecorder(obs.Config{Space: space, TrustedKey: alloc.TrustedKey(), BuildConfig: "mpk"})
	rec.Install(rt.Sigs)
	sup := supervise.New(supervise.Config{Policy: opts.Policy}, supervise.Deps{Alloc: alloc, Recorder: rec})

	model := NewModel(1, alloc.TrustedKey())
	if !model.Reserve(mtBase, mtSize, alloc.TrustedKey()) || !model.Reserve(muBase, muSize, 0) {
		return nil, errors.New("conformance: model rejected the pool reservations")
	}

	// Page-sized objects so healed and control objects sit on distinct
	// pages: page-granular healing must not move B's key.
	objA, err := alloc.Alloc(vm.PageSize)
	if err != nil {
		return nil, err
	}
	objB, err := alloc.Alloc(vm.PageSize)
	if err != nil {
		return nil, err
	}
	objU, err := alloc.UntrustedAlloc(vm.PageSize)
	if err != nil {
		return nil, err
	}
	siteA := profile.AllocID{Func: "drill", Block: 0, Site: 1}
	rec.LogAlloc(uint64(objA), vm.PageSize, siteA)

	attempts := 0
	reg.MustLibrary("u", ffi.Untrusted).Define("scribble", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		attempts++
		target := objA
		if opts.Policy == supervise.Retry && attempts > 1 {
			target = objU // flaky: the transient failure clears
		}
		if e := th.Store64(target, 1337); e != nil {
			return nil, e
		}
		return nil, nil
	})

	th := rt.NewThread()
	callErr := func() error {
		_, e := sup.Call(th, "u", "scribble")
		return e
	}()

	// Mirror the run in the model. Every real attempt crossed one forward
	// gate that the recovery (or a normal return) fully unwound, so the
	// model performs the same enter/access/exit sequence.
	for i := 1; i <= attempts; i++ {
		model.GateEnter(0)
		target := objA
		if opts.Policy == supervise.Retry && i > 1 {
			target = objU
		}
		out := model.Access(0, target, 8, true)
		if out.Kind == FaultPKU && opts.Policy == supervise.Heal {
			// The heal the supervisor performs between attempts: the
			// object's page moves to the shared key, in the model's terms
			// a SetPKey over exactly that page range.
			if !model.SetPKey(target.PageBase(), vm.PageSize, 0) {
				return nil, errors.New("conformance: model rejected the heal retag")
			}
		}
		model.GateExit(0)
	}

	if opts.PlantSkipRestore {
		// The planted recovery bug: trusted code resumes with the
		// untrusted rights still installed.
		th.VM.SetRights(rt.UntrustedPKRU())
	}

	rep := &SupervisedReport{Policy: opts.Policy.String(), Healed: sup.Healed(siteA)}
	if callErr != nil {
		rep.CallErr = callErr.Error()
	}

	// Diff 1: post-recovery thread state vs the model.
	if got, want := th.VM.Rights(), model.PKRU(0); got != want {
		rep.Divergences = append(rep.Divergences, Divergence{
			Index: -1, What: "pkru",
			Real:  Outcome{Kind: OK, PKRU: got},
			Model: Outcome{Kind: OK, PKRU: want},
		})
	}
	if got, want := th.Depth(), model.GateDepth(0); got != want {
		rep.Divergences = append(rep.Divergences, Divergence{
			Index: -1, What: "outcome",
			Real:  Outcome{Kind: OK, Addr: vm.Addr(got)},
			Model: Outcome{Kind: OK, Addr: vm.Addr(want)},
		})
	}

	// Diff 2: full page-key sweep over both pools — healing must have
	// changed exactly what the model predicts (A's page under Heal,
	// nothing anywhere else).
	sweep := func(base vm.Addr, size uint64) {
		for a := base; a < base+vm.Addr(size); a += vm.PageSize {
			rk, rok := space.PKeyAt(a)
			mk, mok := model.KeyAt(a)
			if rok != mok || (rok && rk != mk) {
				rep.Divergences = append(rep.Divergences, Divergence{
					Index: -1, What: "keymap", Addr: a,
					Real:  keyOutcome(rk, rok),
					Model: keyOutcome(mk, mok),
				})
			}
		}
	}
	sweep(mtBase, mtSize)
	sweep(muBase, muSize)

	// Belt and braces inside the drill itself: the control object B must
	// still carry the trusted key on the real side.
	if k, _ := space.PKeyAt(objB); k != alloc.TrustedKey() {
		rep.Divergences = append(rep.Divergences, Divergence{
			Index: -1, What: "keymap", Addr: objB,
			Real:  keyOutcome(k, true),
			Model: keyOutcome(alloc.TrustedKey(), true),
		})
	}

	for _, d := range rep.Divergences {
		rep.DivergenceStrings = append(rep.DivergenceStrings, d.String())
	}
	return rep, nil
}

// keyOutcome packs a key-map probe into the Outcome shape Divergence
// renders.
func keyOutcome(k mpk.Key, ok bool) Outcome {
	if !ok {
		return Outcome{Kind: FaultMap}
	}
	return Outcome{Kind: OK, PKey: k}
}

// DrillSupervised runs the clean drill for every recovery policy and the
// planted-bug variant, returning an error describing the first failure:
// a clean drill must not diverge (and under Heal must actually heal),
// and the planted skip-restore must be caught. cmd/pkru-conform -supervised
// and the conformance tests share this entry point.
func DrillSupervised() error {
	for _, p := range []supervise.Policy{supervise.Retry, supervise.Quarantine, supervise.Heal} {
		rep, err := RunSupervisedGate(SupervisedOptions{Policy: p})
		if err != nil {
			return fmt.Errorf("supervised drill (%v): %w", p, err)
		}
		if len(rep.Divergences) != 0 {
			return fmt.Errorf("supervised drill (%v): recovery changed enforcement semantics: %s",
				p, rep.DivergenceStrings[0])
		}
		if p == supervise.Heal && !rep.Healed {
			return errors.New("supervised drill (heal): site was not healed")
		}
		if p == supervise.Heal && rep.CallErr != "" {
			return fmt.Errorf("supervised drill (heal): call failed: %s", rep.CallErr)
		}
	}
	rep, err := RunSupervisedGate(SupervisedOptions{Policy: supervise.Heal, PlantSkipRestore: true})
	if err != nil {
		return fmt.Errorf("supervised drill (planted): %w", err)
	}
	if len(rep.Divergences) == 0 {
		return errors.New("supervised drill: planted skip-restore not detected by the oracle")
	}
	return nil
}
