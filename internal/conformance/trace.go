package conformance

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/mpk"
	"repro/internal/vm"
)

// OpKind enumerates the trace operations the harness understands.
type OpKind uint8

const (
	// OpReserve registers Addr/Size/Key as a reservation (vm.Space.Reserve).
	OpReserve OpKind = iota
	// OpSetPKey retags Addr/Size with Key (vm.Space.SetPKey).
	OpSetPKey
	// OpWRPKRU writes Value into the thread's PKRU register.
	OpWRPKRU
	// OpLoad performs a checked read of Size bytes at the op's target.
	OpLoad
	// OpStore performs a checked write of Size bytes at the op's target.
	OpStore
	// OpGateEnter opens a compartment gate on the thread: rights are saved
	// and the untrusted PKRU (trusted key denied) installed.
	OpGateEnter
	// OpGateExit closes the innermost gate, restoring the saved rights.
	// With no gate open it is a no-op.
	OpGateExit
	// OpGateCall performs a load (Flags bit 1 clear) or store (set) of Size
	// bytes at the op's target from inside a real ffi gated call into an
	// untrusted library — or a plain trusted call when Flags bit 2 is set.
	OpGateCall
	// OpAlloc allocates Size bytes from MT (Flags bit 1 clear) or MU (set)
	// through the pkalloc/heap stack and stores the address in slot Slot.
	OpAlloc
	// OpRealloc grows/shrinks slot Slot to Size bytes.
	OpRealloc
	// OpFree releases slot Slot.
	OpFree
	// OpVKeyAlloc creates a logical (virtualized) protection key for vkey
	// tenant Slot and attaches the tenant's page to it. A tenant that is
	// already live is skipped.
	OpVKeyAlloc
	// OpVKeyFree releases vkey tenant Slot's logical key. A key entered on
	// any thread's compartment stack is refused (vkey.ErrKeyBusy).
	OpVKeyFree
	// OpVKeyEnter switches the thread into vkey tenant Slot's compartment,
	// pushing a frame on its compartment stack. The slot activation may
	// evict the least-recently-used logical key.
	OpVKeyEnter
	// OpVKeyLeave pops the thread's innermost compartment frame, restoring
	// the frame below (re-derived) or the rights held before the first
	// enter. With no frame open it is a no-op.
	OpVKeyLeave

	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpReserve:
		return "reserve"
	case OpSetPKey:
		return "setpkey"
	case OpWRPKRU:
		return "wrpkru"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpGateEnter:
		return "gate-enter"
	case OpGateExit:
		return "gate-exit"
	case OpGateCall:
		return "gate-call"
	case OpAlloc:
		return "alloc"
	case OpRealloc:
		return "realloc"
	case OpFree:
		return "free"
	case OpVKeyAlloc:
		return "vkey-alloc"
	case OpVKeyFree:
		return "vkey-free"
	case OpVKeyEnter:
		return "vkey-enter"
	case OpVKeyLeave:
		return "vkey-leave"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Flag bits interpreted per op kind (see OpKind docs).
const (
	// FlagWrite selects store over load for OpGateCall.
	FlagWrite = 1 << 0
	// FlagUntrusted selects the MU pool for OpAlloc; for OpGateCall it
	// selects the *trusted* (ungated) library when clear on bit 2 — see
	// FlagTrustedLib.
	FlagUntrusted = 1 << 0
	// FlagTrustedLib routes OpGateCall through the trusted library (a
	// plain call with the caller's rights) instead of the untrusted one.
	FlagTrustedLib = 1 << 1
	// FlagRawAddr targets Addr directly for Load/Store/GateCall instead of
	// resolving Slot+Addr(as offset) against the allocation slot table.
	FlagRawAddr = 1 << 2
)

// Op is one trace operation. The zero Op is a 0-byte load by thread 0.
//
// Field roles by kind:
//
//	Reserve/SetPKey: Addr = base, Size = length, Key = protection key
//	WRPKRU:          Value = new PKRU
//	Load/Store/GateCall:
//	    FlagRawAddr set:   target = Addr
//	    FlagRawAddr clear: target = slots[Slot] + Addr (Addr acts as offset)
//	    Size = access width in bytes
//	Alloc/Realloc:   Slot = slot index, Size = requested bytes
//	Free:            Slot = slot index
type Op struct {
	Kind   OpKind
	Thread uint8
	Slot   uint8
	Flags  uint8
	Key    mpk.Key
	Addr   vm.Addr
	Size   uint64
	Value  mpk.PKRU
}

// Trace is a replayable operation sequence.
type Trace struct {
	Ops []Op
}

// opRecordLen is the fixed encoded size of one Op.
const opRecordLen = 1 + 1 + 1 + 1 + 1 + 8 + 8 + 4

// Encode serializes the trace into the byte form the fuzz targets mutate.
func (tr Trace) Encode() []byte {
	out := make([]byte, 0, len(tr.Ops)*opRecordLen)
	var rec [opRecordLen]byte
	for _, op := range tr.Ops {
		rec[0] = uint8(op.Kind)
		rec[1] = op.Thread
		rec[2] = op.Slot
		rec[3] = op.Flags
		rec[4] = uint8(op.Key)
		binary.LittleEndian.PutUint64(rec[5:], uint64(op.Addr))
		binary.LittleEndian.PutUint64(rec[13:], op.Size)
		binary.LittleEndian.PutUint32(rec[21:], uint32(op.Value))
		out = append(out, rec[:]...)
	}
	return out
}

// Decode parses a byte string into a trace. Every byte string is a valid
// trace: kinds are taken modulo the kind count and a trailing partial
// record is dropped, so the fuzzer can mutate structure freely.
func Decode(data []byte) Trace {
	var tr Trace
	for len(data) >= opRecordLen {
		rec := data[:opRecordLen]
		data = data[opRecordLen:]
		tr.Ops = append(tr.Ops, Op{
			Kind:   OpKind(rec[0]) % numOpKinds,
			Thread: rec[1],
			Slot:   rec[2],
			Flags:  rec[3],
			Key:    mpk.Key(rec[4]),
			Addr:   vm.Addr(binary.LittleEndian.Uint64(rec[5:])),
			Size:   binary.LittleEndian.Uint64(rec[13:]),
			Value:  mpk.PKRU(binary.LittleEndian.Uint32(rec[21:])),
		})
	}
	return tr
}

func (op Op) String() string {
	switch op.Kind {
	case OpReserve, OpSetPKey:
		return fmt.Sprintf("t%d %v base=%v size=%#x key=%d", op.Thread, op.Kind, op.Addr, op.Size, op.Key)
	case OpWRPKRU:
		return fmt.Sprintf("t%d wrpkru %#08x", op.Thread, uint32(op.Value))
	case OpLoad, OpStore, OpGateCall:
		target := fmt.Sprintf("slot%d+%#x", op.Slot, uint64(op.Addr))
		if op.Flags&FlagRawAddr != 0 {
			target = op.Addr.String()
		}
		return fmt.Sprintf("t%d %v %s width=%d flags=%#x", op.Thread, op.Kind, target, op.Size, op.Flags)
	case OpAlloc:
		pool := "MT"
		if op.Flags&FlagUntrusted != 0 {
			pool = "MU"
		}
		return fmt.Sprintf("t%d alloc slot%d size=%d pool=%s", op.Thread, op.Slot, op.Size, pool)
	case OpRealloc:
		return fmt.Sprintf("t%d realloc slot%d size=%d", op.Thread, op.Slot, op.Size)
	case OpFree:
		return fmt.Sprintf("t%d free slot%d", op.Thread, op.Slot)
	case OpVKeyAlloc, OpVKeyFree, OpVKeyEnter:
		return fmt.Sprintf("t%d %v tenant%d", op.Thread, op.Kind, op.Slot)
	default:
		return fmt.Sprintf("t%d %v", op.Thread, op.Kind)
	}
}

// OutcomeKind classifies what an operation did.
type OutcomeKind uint8

const (
	// OK: the operation completed.
	OK OutcomeKind = iota
	// Rejected: the operation's arguments were refused (reserve overlap,
	// misalignment, invalid key, ...).
	Rejected
	// FaultMap: the access raised SIGSEGV with SEGV_MAPERR (unreserved).
	FaultMap
	// FaultPKU: the access raised SIGSEGV with SEGV_PKUERR.
	FaultPKU
	// Skipped: the executor did not run the op (dead slot, empty gate
	// stack); never diffed.
	Skipped
)

func (k OutcomeKind) String() string {
	switch k {
	case OK:
		return "ok"
	case Rejected:
		return "rejected"
	case FaultMap:
		return "fault-map"
	case FaultPKU:
		return "fault-pku"
	case Skipped:
		return "skipped"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(k))
	}
}

// Outcome is one side's verdict on one operation: what happened, the
// fault coordinates when it faulted, the decoded PKUERR-style AD/WD bits
// for the faulting key, and the thread's PKRU register after the op.
type Outcome struct {
	Kind  OutcomeKind
	Addr  vm.Addr // faulting address (faults only)
	PKey  mpk.Key // faulting protection key (FaultPKU only)
	Write bool    // faulting access kind (faults only)
	AD    bool    // rights for PKey had access-disable set
	WD    bool    // rights for PKey had write-disable set
	PKRU  mpk.PKRU
}

func (o Outcome) String() string {
	switch o.Kind {
	case FaultMap:
		return fmt.Sprintf("%v addr=%v write=%v pkru=%#08x", o.Kind, o.Addr, o.Write, uint32(o.PKRU))
	case FaultPKU:
		return fmt.Sprintf("%v addr=%v key=%d write=%v ad=%v wd=%v pkru=%#08x",
			o.Kind, o.Addr, o.PKey, o.Write, o.AD, o.WD, uint32(o.PKRU))
	default:
		return fmt.Sprintf("%v pkru=%#08x", o.Kind, uint32(o.PKRU))
	}
}

// FormatGoTest renders the trace as a self-contained Go regression test:
// replaying it through the differential executor must report zero
// divergences. This is what the fuzzer and pkru-conform print for a
// shrunk counterexample.
func FormatGoTest(name string, tr Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func TestConformanceRegression%s(t *testing.T) {\n", name)
	b.WriteString("\ttr := conformance.Trace{Ops: []conformance.Op{\n")
	for _, op := range tr.Ops {
		fmt.Fprintf(&b, "\t\t{Kind: conformance.%s, Thread: %d, Slot: %d, Flags: %#x, Key: %d, Addr: %#x, Size: %#x, Value: %#x},\n",
			exportedKindName(op.Kind), op.Thread, op.Slot, op.Flags, op.Key, uint64(op.Addr), op.Size, uint32(op.Value))
	}
	b.WriteString("\t}}\n")
	b.WriteString("\tres := conformance.Run(tr, conformance.Options{})\n")
	b.WriteString("\tfor _, d := range res.Divergences {\n")
	b.WriteString("\t\tt.Errorf(\"divergence: %v\", d)\n")
	b.WriteString("\t}\n")
	b.WriteString("}\n")
	return b.String()
}

func exportedKindName(k OpKind) string {
	switch k {
	case OpReserve:
		return "OpReserve"
	case OpSetPKey:
		return "OpSetPKey"
	case OpWRPKRU:
		return "OpWRPKRU"
	case OpLoad:
		return "OpLoad"
	case OpStore:
		return "OpStore"
	case OpGateEnter:
		return "OpGateEnter"
	case OpGateExit:
		return "OpGateExit"
	case OpGateCall:
		return "OpGateCall"
	case OpAlloc:
		return "OpAlloc"
	case OpRealloc:
		return "OpRealloc"
	case OpFree:
		return "OpFree"
	case OpVKeyAlloc:
		return "OpVKeyAlloc"
	case OpVKeyFree:
		return "OpVKeyFree"
	case OpVKeyEnter:
		return "OpVKeyEnter"
	case OpVKeyLeave:
		return "OpVKeyLeave"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}
