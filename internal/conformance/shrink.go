package conformance

import "repro/internal/vm"

// diverges reports whether replaying tr under opts still disagrees.
func diverges(tr Trace, opts Options) bool {
	return len(Run(tr, opts).Divergences) > 0
}

// Shrink reduces a diverging trace to a locally minimal one that still
// diverges under the same options: first whole chunks of ops are removed
// (delta-debugging style, halving granularity), then single ops, then the
// surviving ops' numeric payloads are simplified. The result replays
// deterministically, so it can be pasted into a regression test via
// FormatGoTest.
func Shrink(tr Trace, opts Options) Trace {
	if !diverges(tr, opts) {
		return tr
	}
	ops := append([]Op(nil), tr.Ops...)

	// Pass 1: remove chunks, halving the chunk size until single ops.
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(ops); {
			candidate := make([]Op, 0, len(ops)-chunk)
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[start+chunk:]...)
			if diverges(Trace{Ops: candidate}, opts) {
				ops = candidate // keep the removal, retry same position
			} else {
				start += chunk
			}
		}
	}

	// Pass 2: simplify payloads op by op — smaller sizes, zero offsets,
	// thread 0 — accepting any change that preserves the divergence.
	simplify := func(i int, f func(*Op)) {
		candidate := append([]Op(nil), ops...)
		f(&candidate[i])
		if diverges(Trace{Ops: candidate}, opts) {
			ops = candidate
		}
	}
	for i := range ops {
		simplify(i, func(o *Op) { o.Thread = 0 })
		simplify(i, func(o *Op) { o.Slot = 0 })
		switch ops[i].Kind {
		case OpLoad, OpStore, OpGateCall:
			simplify(i, func(o *Op) { o.Size = 1 })
			if ops[i].Flags&FlagRawAddr == 0 {
				simplify(i, func(o *Op) { o.Addr = 0 })
			}
		case OpReserve, OpSetPKey:
			simplify(i, func(o *Op) { o.Size = vm.PageSize })
		case OpAlloc, OpRealloc:
			simplify(i, func(o *Op) { o.Size = 16 })
		}
	}
	return Trace{Ops: ops}
}
