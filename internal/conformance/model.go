// Package conformance checks the real enforcement stack — vm.Space paging,
// vm.Thread PKRU checking, sig fault delivery, the pkalloc pools and the
// ffi call gates — against an independent reference model of the intended
// MPK semantics.
//
// The model is deliberately primitive: a sorted list of reserved address
// intervals tagged with protection keys, and per-thread PKRU values with a
// gate stack. It has no page table, no residency, no region splitting, no
// allocator and no signal machinery, so a bug in any of those layers shows
// up as a divergence between the model's predicted outcome and what the
// real stack actually did. A seeded trace generator (gen.go) and a
// differential executor (diff.go) drive both sides through the same
// operation sequence; a shrinker (shrink.go) reduces any divergence to a
// minimal replayable trace, and a fault injector (inject.go) plants known
// bugs in the real side to prove the oracle catches them.
package conformance

import (
	"sort"

	"repro/internal/mpk"
	"repro/internal/vm"
)

// interval is one reserved span [base, end) whose pages carry key.
// Intervals are disjoint; adjacent intervals may carry different keys.
type interval struct {
	base, end vm.Addr
	key       mpk.Key
}

// modelThread is the model's view of one CPU context: the PKRU register
// and the stack of rights saved by open call gates.
type modelThread struct {
	pkru  mpk.PKRU
	gates []mpk.PKRU
}

// Model is the pure reference model of the enforcement semantics.
type Model struct {
	ivals      []interval // sorted by base, disjoint
	threads    []*modelThread
	trustedKey mpk.Key
}

// NewModel returns a model with nthreads fresh threads (PKRU zero, the
// permit-everything hardware reset state) and no reservations.
func NewModel(nthreads int, trustedKey mpk.Key) *Model {
	m := &Model{trustedKey: trustedKey}
	for i := 0; i < nthreads; i++ {
		m.threads = append(m.threads, &modelThread{})
	}
	return m
}

// UntrustedPKRU is the rights value the model expects a forward gate to
// install: everything stays accessible except the trusted pool's key.
func (m *Model) UntrustedPKRU() mpk.PKRU {
	return mpk.PermitAll.With(m.trustedKey, mpk.DenyAll)
}

// PKRU returns thread t's rights register.
func (m *Model) PKRU(t int) mpk.PKRU {
	return m.threads[t].pkru
}

// SetPKRU models WRPKRU on thread t.
func (m *Model) SetPKRU(t int, v mpk.PKRU) { m.threads[t].pkru = v }

// GateDepth returns the number of open gates on thread t.
func (m *Model) GateDepth(t int) int { return len(m.threads[t].gates) }

// GateEnter models a forward call gate on thread t: the current rights are
// saved and the untrusted rights installed.
func (m *Model) GateEnter(t int) {
	th := m.threads[t]
	th.gates = append(th.gates, th.pkru)
	th.pkru = m.UntrustedPKRU()
}

// GateExit models the matching gate return: the saved rights are restored.
// Exiting with no open gate is a harness error and panics.
func (m *Model) GateExit(t int) {
	th := m.threads[t]
	th.pkru = th.gates[len(th.gates)-1]
	th.gates = th.gates[:len(th.gates)-1]
}

// pageAligned reports whether v is a multiple of the page size.
func pageAligned(v uint64) bool { return v&vm.PageMask == 0 }

// Reserve models registering [base, base+size) with the given key. It
// returns false for the inputs the real Space must reject: misaligned base
// or size, an empty or out-of-range span (including sizes so large that
// base+size wraps around the 64-bit address space), an invalid key, or
// overlap with an existing reservation.
func (m *Model) Reserve(base vm.Addr, size uint64, key mpk.Key) bool {
	if !pageAligned(uint64(base)) || !pageAligned(size) || size == 0 {
		return false
	}
	if uint64(base) >= uint64(vm.MaxAddr) || size > uint64(vm.MaxAddr) ||
		uint64(base) > uint64(vm.MaxAddr)-size {
		return false
	}
	if !key.Valid() {
		return false
	}
	end := base + vm.Addr(size)
	for _, iv := range m.ivals {
		if base < iv.end && iv.base < end {
			return false
		}
	}
	m.ivals = append(m.ivals, interval{base: base, end: end, key: key})
	sort.Slice(m.ivals, func(i, j int) bool { return m.ivals[i].base < m.ivals[j].base })
	return true
}

// SetPKey models pkey_mprotect over [base, base+size): every page in the
// range must already be reserved, and the whole range is retagged. A zero
// size is a no-op that succeeds, matching pkey_mprotect(len=0). Returns
// false on misalignment, an invalid key, a wrapping range, or a range not
// fully covered by reservations.
func (m *Model) SetPKey(base vm.Addr, size uint64, key mpk.Key) bool {
	if !pageAligned(uint64(base)) || !pageAligned(size) || !key.Valid() {
		return false
	}
	if size == 0 {
		return true
	}
	if size > uint64(vm.MaxAddr) || uint64(base) > uint64(vm.MaxAddr)-size {
		return false
	}
	end := base + vm.Addr(size)
	// Coverage: walk the sorted intervals across [base, end) with no gaps.
	at := base
	for _, iv := range m.ivals {
		if iv.end <= at {
			continue
		}
		if iv.base > at {
			return false // gap at 'at'
		}
		at = iv.end
		if at >= end {
			break
		}
	}
	if at < end {
		return false
	}
	// Retag: split overlapping intervals so [base, end) carries key.
	var out []interval
	for _, iv := range m.ivals {
		if iv.end <= base || end <= iv.base {
			out = append(out, iv)
			continue
		}
		if iv.base < base {
			out = append(out, interval{base: iv.base, end: base, key: iv.key})
		}
		if end < iv.end {
			out = append(out, interval{base: end, end: iv.end, key: iv.key})
		}
	}
	out = append(out, interval{base: base, end: end, key: key})
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	m.ivals = out
	return true
}

// KeyAt returns the protection key governing addr and whether addr is
// reserved at all.
func (m *Model) KeyAt(addr vm.Addr) (mpk.Key, bool) {
	i := sort.Search(len(m.ivals), func(i int) bool { return m.ivals[i].end > addr })
	if i < len(m.ivals) && m.ivals[i].base <= addr && addr < m.ivals[i].end {
		return m.ivals[i].key, true
	}
	return 0, false
}

// Access predicts the outcome of an n-byte data access by thread t at
// addr. The check walks the range page chunk by page chunk, exactly as an
// MMU (and vm.Thread.access) does: the first chunk whose page is
// unreserved raises a map fault, the first chunk whose key the thread's
// PKRU forbids raises a protection-key fault, and the reported fault
// address is the first byte of the failing chunk.
func (m *Model) Access(t int, addr vm.Addr, n uint64, write bool) Outcome {
	pkru := m.threads[t].pkru
	a := addr
	for remaining := n; remaining > 0; {
		key, ok := m.KeyAt(a)
		if !ok {
			return faultOutcome(FaultMap, a, 0, write, pkru)
		}
		allowed := pkru.CanRead(key)
		if write {
			allowed = pkru.CanWrite(key)
		}
		if !allowed {
			return faultOutcome(FaultPKU, a, key, write, pkru)
		}
		chunk := vm.PageSize - (uint64(a) & vm.PageMask)
		if chunk > remaining {
			chunk = remaining
		}
		a += vm.Addr(chunk)
		remaining -= chunk
	}
	return Outcome{Kind: OK, PKRU: pkru}
}

// faultOutcome assembles a fault prediction including the decoded PKRU
// bits for the faulting key — the same decode obs renders in crash
// reports, which is why the differential executor diffs it bit for bit.
func faultOutcome(kind OutcomeKind, addr vm.Addr, key mpk.Key, write bool, pkru mpk.PKRU) Outcome {
	r := pkru.Rights(key)
	return Outcome{
		Kind:  kind,
		Addr:  addr,
		PKey:  key,
		Write: write,
		AD:    r&mpk.AccessDisable != 0,
		WD:    r&mpk.WriteDisable != 0,
		PKRU:  pkru,
	}
}
