package conformance

import (
	"errors"
	"fmt"

	"repro/internal/domains"
	"repro/internal/vm"
)

// VKeyOptions configures a virtual-key conformance drill.
type VKeyOptions struct {
	// Domains is the number of logical domains to drive. Values above the
	// hardware slot count force LRU evictions; the default (0) picks
	// slots+3 so the multiplexer is always exercised.
	Domains int
	// PlantStaleSlot plants the stale-slot-after-eviction bug in the vkey
	// table: evicted domains' pages keep their old hardware tag, so the
	// next tenant bound to the recycled slot can read them. The oracle
	// must report a divergence.
	PlantStaleSlot bool
}

// VKeyReport is the outcome of one virtual-key drill.
type VKeyReport struct {
	Domains    int    `json:"domains"`
	Slots      int    `json:"slots"`
	Probes     int    `json:"probes"`
	Evictions  uint64 `json:"evictions"`
	SlotMisses uint64 `json:"slot_misses"`
	Recycled   uint64 `json:"recycled"`
	// Divergences lists every disagreement between the multiplexed real
	// stack and the ideal unbounded-keys model.
	Divergences []string `json:"divergences"`
}

// RunVKeyDrill differentially tests key virtualization against an ideal
// model with unbounded keys and no slots: inside domain i, exactly the
// shared pool and domain i's own pool are accessible — regardless of
// which hardware slot the domain happens to occupy, whether it was just
// evicted and re-activated, or how many tenants exist. Any disagreement
// between that ideal and the multiplexed real stack is a virtualization
// artifact: a stale page tag after eviction, a slot rebound without
// revocation, a recycled pool leaking across tenants.
//
// The drill walks every domain in order (forcing evictions once the
// domain count exceeds the slot count), probing from inside each domain:
// its own buffer (must be readable), every other domain's buffer (must
// fault), the shared pool (readable) and the trusted secret (fault).
// A churn phase then removes and re-adds a domain to cover slot and
// region recycling.
func RunVKeyDrill(opts VKeyOptions) (*VKeyReport, error) {
	space := vm.NewSpace()
	m, err := domains.NewManager(space)
	if err != nil {
		return nil, err
	}
	if opts.Domains <= 0 {
		opts.Domains = m.Table().Slots() + 3
	}
	if opts.PlantStaleSlot {
		m.Table().InjectStaleEviction(true)
	}
	rep := &VKeyReport{Domains: opts.Domains, Slots: m.Table().Slots()}

	th := vm.NewThread(space, nil)
	secret, err := m.AllocTrusted(8)
	if err != nil {
		return nil, err
	}
	shared, err := m.AllocShared(8)
	if err != nil {
		return nil, err
	}
	doms := make([]*domains.Domain, opts.Domains)
	bufs := make([]vm.Addr, opts.Domains)
	for i := range doms {
		d, err := m.AddDomain(fmt.Sprintf("dom%03d", i))
		if err != nil {
			return nil, err
		}
		buf, err := m.Alloc(d, 16)
		if err != nil {
			return nil, err
		}
		if err := th.Store64(buf, uint64(i)); err != nil {
			return nil, fmt.Errorf("trusted init: %w", err)
		}
		doms[i], bufs[i] = d, buf
	}
	if err := th.Store64(secret, 0x5ec); err != nil {
		return nil, err
	}
	if err := th.Store64(shared, 0x5); err != nil {
		return nil, err
	}

	// probe records a divergence when the real outcome disagrees with the
	// ideal model's expectation.
	probe := func(inDomain int, what string, addr vm.Addr, wantReadable bool) {
		rep.Probes++
		_, err := th.Load64(addr)
		readable := err == nil
		if readable != wantReadable {
			rep.Divergences = append(rep.Divergences, fmt.Sprintf(
				"in dom%03d: %s at %v: real readable=%v, model readable=%v",
				inDomain, what, addr, readable, wantReadable))
		}
	}

	sweep := func() error {
		for i, d := range doms {
			restore, err := m.Enter(th, d)
			if err != nil {
				return fmt.Errorf("enter dom%03d: %w", i, err)
			}
			probe(i, "own pool", bufs[i], true)
			probe(i, "shared pool", shared, true)
			probe(i, "trusted secret", secret, false)
			for j := range doms {
				if j != i {
					probe(i, fmt.Sprintf("dom%03d's pool", j), bufs[j], false)
				}
			}
			if err := restore(); err != nil {
				return fmt.Errorf("exit dom%03d: %w", i, err)
			}
		}
		return nil
	}
	if err := sweep(); err != nil {
		return nil, err
	}

	// Churn: remove a middle domain and re-add it. The recycled slot and
	// region must behave exactly like fresh ones — and the old tenant's
	// data must be gone.
	victim := opts.Domains / 2
	if err := m.RemoveDomain(doms[victim].Name); err != nil {
		return nil, err
	}
	d, err := m.AddDomain(doms[victim].Name)
	if err != nil {
		return nil, err
	}
	buf, err := m.Alloc(d, 16)
	if err != nil {
		return nil, err
	}
	if err := th.Store64(buf, 0x7e); err != nil {
		return nil, err
	}
	doms[victim], bufs[victim] = d, buf
	if err := sweep(); err != nil {
		return nil, err
	}

	st := m.Table().Stats()
	rep.Evictions = st.Evictions
	rep.SlotMisses = st.SlotMisses
	rep.Recycled = st.Recycled
	return rep, nil
}

// DrillVKeys runs the clean virtual-key drill and the planted
// stale-slot-after-eviction variant: the clean run must be
// divergence-free while actually multiplexing (more logical keys than
// slots, at least one eviction, at least one recycled slot), and the
// planted bug must be caught. cmd/pkru-conform -vkeys and the
// conformance tests share this entry point.
func DrillVKeys() error {
	rep, err := RunVKeyDrill(VKeyOptions{})
	if err != nil {
		return fmt.Errorf("vkey drill: %w", err)
	}
	if len(rep.Divergences) != 0 {
		return fmt.Errorf("vkey drill: virtualization changed enforcement semantics: %s",
			rep.Divergences[0])
	}
	if rep.Domains <= rep.Slots {
		return errors.New("vkey drill: did not exceed the hardware slot count")
	}
	if rep.Evictions == 0 {
		return errors.New("vkey drill: no evictions despite more domains than slots")
	}
	if rep.Recycled == 0 {
		return errors.New("vkey drill: churn recycled no hardware slots")
	}
	planted, err := RunVKeyDrill(VKeyOptions{PlantStaleSlot: true})
	if err != nil {
		return fmt.Errorf("vkey drill (planted): %w", err)
	}
	if len(planted.Divergences) == 0 {
		return errors.New("vkey drill: planted stale-slot-after-eviction not detected by the oracle")
	}
	return nil
}
