package conformance

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mpk"
	"repro/internal/vm"
)

func TestModelReserveValidation(t *testing.T) {
	cases := []struct {
		name string
		base vm.Addr
		size uint64
		key  mpk.Key
		want bool
	}{
		{"valid", 0x1000, vm.PageSize, 1, true},
		{"misaligned base", 0x1001, vm.PageSize, 1, false},
		{"misaligned size", 0x1000, vm.PageSize + 1, 1, false},
		{"empty", 0x1000, 0, 1, false},
		{"invalid key", 0x1000, vm.PageSize, 16, false},
		{"base out of range", vm.MaxAddr, vm.PageSize, 1, false},
		{"end out of range", vm.MaxAddr - vm.PageSize, 2 * vm.PageSize, 1, false},
		{"size wraps past 2^64", vm.PageSize, ^uint64(0) - vm.PageMask, 1, false},
		{"at top of space", vm.MaxAddr - vm.PageSize, vm.PageSize, 1, true},
	}
	for _, c := range cases {
		m := NewModel(1, 1)
		if got := m.Reserve(c.base, c.size, c.key); got != c.want {
			t.Errorf("%s: Reserve(%v, %#x, %d) = %v, want %v", c.name, c.base, c.size, c.key, got, c.want)
		}
	}
}

func TestModelReserveOverlap(t *testing.T) {
	m := NewModel(1, 1)
	if !m.Reserve(0x2000, 2*vm.PageSize, 1) {
		t.Fatal("first reserve rejected")
	}
	if m.Reserve(0x3000, vm.PageSize, 2) {
		t.Error("overlapping reserve accepted")
	}
	if !m.Reserve(0x4000, vm.PageSize, 2) {
		t.Error("adjacent reserve rejected")
	}
}

func TestModelSetPKeySplits(t *testing.T) {
	m := NewModel(1, 1)
	if !m.Reserve(0x10000, 4*vm.PageSize, 1) {
		t.Fatal("reserve rejected")
	}
	// Retag the middle two pages; the edges keep key 1.
	if !m.SetPKey(0x11000, 2*vm.PageSize, 5) {
		t.Fatal("retag rejected")
	}
	wantKeys := map[vm.Addr]mpk.Key{0x10000: 1, 0x11000: 5, 0x12000: 5, 0x13000: 1}
	for a, want := range wantKeys {
		got, ok := m.KeyAt(a)
		if !ok || got != want {
			t.Errorf("KeyAt(%v) = %d,%v, want %d,true", a, got, ok, want)
		}
	}
	// A retag spanning a gap must be rejected.
	if m.SetPKey(0x12000, 4*vm.PageSize, 2) {
		t.Error("retag across unreserved gap accepted")
	}
	// Zero-length retag succeeds as a no-op, like pkey_mprotect(len=0).
	if !m.SetPKey(0x10000, 0, 2) {
		t.Error("zero-length retag rejected")
	}
}

func TestModelAccessOutcomes(t *testing.T) {
	m := NewModel(1, 1)
	if !m.Reserve(0x10000, 2*vm.PageSize, 3) {
		t.Fatal("reserve rejected")
	}
	// Full rights: access ok, including one crossing the page boundary.
	if o := m.Access(0, 0x10ffc, 8, true); o.Kind != OK {
		t.Errorf("permitted access: %v", o)
	}
	// Unreserved: map fault at the exact address.
	if o := m.Access(0, 0x9000, 4, false); o.Kind != FaultMap || o.Addr != 0x9000 {
		t.Errorf("unreserved access: %v", o)
	}
	// Crossing out of the reservation: map fault at the first byte of the
	// unreserved page chunk.
	if o := m.Access(0, 0x11ffc, 8, false); o.Kind != FaultMap || o.Addr != 0x12000 {
		t.Errorf("overrun access: %v", o)
	}
	// Write-disable: reads pass, writes fault with WD decoded.
	m.SetPKRU(0, mpk.PermitAll.With(3, mpk.ReadOnly))
	if o := m.Access(0, 0x10000, 8, false); o.Kind != OK {
		t.Errorf("read under WD: %v", o)
	}
	o := m.Access(0, 0x10000, 8, true)
	if o.Kind != FaultPKU || o.PKey != 3 || !o.Write || o.AD || !o.WD {
		t.Errorf("write under WD: %v", o)
	}
	// Access-disable: both directions fault with AD decoded.
	m.SetPKRU(0, mpk.PermitAll.With(3, mpk.DenyAll))
	o = m.Access(0, 0x10000, 1, false)
	if o.Kind != FaultPKU || !o.AD || !o.WD {
		t.Errorf("read under AD: %v", o)
	}
	// Zero-width access never faults.
	if o := m.Access(0, 0xdead_0000, 0, true); o.Kind != OK {
		t.Errorf("zero-width access: %v", o)
	}
}

func TestModelGateStack(t *testing.T) {
	m := NewModel(2, 1)
	custom := mpk.PermitAll.With(7, mpk.ReadOnly)
	m.SetPKRU(0, custom)
	m.GateEnter(0)
	if got := m.PKRU(0); got != m.UntrustedPKRU() {
		t.Errorf("in-gate PKRU = %v, want %v", got, m.UntrustedPKRU())
	}
	m.GateEnter(0)
	m.GateExit(0)
	m.GateExit(0)
	if got := m.PKRU(0); got != custom {
		t.Errorf("post-gate PKRU = %v, want %v", got, custom)
	}
	// Thread 1 is untouched by thread 0's gates.
	if got := m.PKRU(1); got != mpk.PermitAll {
		t.Errorf("thread 1 PKRU = %v, want PermitAll", got)
	}
}

// TestDirectedTraceCleanWithoutInjection: the fault-injection probe trace
// must replay divergence-free when nothing is injected — the harness's own
// gate/alloc/retag choreography agrees with the model.
func TestDirectedTraceCleanWithoutInjection(t *testing.T) {
	for _, f := range Faults() {
		res := Run(DirectedTrace(f), Options{})
		for _, d := range res.Divergences {
			t.Errorf("%v probe trace without injection: %v", f, d)
		}
	}
}

// TestSeededTracesConverge: generated traces replay identically on the
// real stack and the model. The range includes the fuzz-corpus seeds and
// seed 17, which once drove the generator itself into an Int63n panic on
// a wrap-sized recorded span.
func TestSeededTracesConverge(t *testing.T) {
	for seed := int64(1); seed <= 32; seed++ {
		res := Run(Generate(seed, 384), Options{})
		if len(res.Divergences) > 0 {
			sh := Shrink(res.Trace, Options{})
			t.Errorf("seed %d: %d divergences; first: %v\nshrunk repro:\n%s",
				seed, len(res.Divergences), res.Divergences[0], FormatGoTest("Seeded", sh))
		}
		if res.Ops == 0 {
			t.Errorf("seed %d: no ops executed", seed)
		}
	}
}

// TestSeededTracesCoverFaultKinds: across the standard seeds the traces
// must actually reach both fault classes and the ok path, or the
// differential check would be vacuous.
func TestSeededTracesCoverFaultKinds(t *testing.T) {
	total := map[OutcomeKind]int{}
	for seed := int64(1); seed <= 16; seed++ {
		res := Run(Generate(seed, 384), Options{})
		for k, n := range res.Counts {
			total[k] += n
		}
	}
	for _, k := range []OutcomeKind{OK, Rejected, FaultMap, FaultPKU} {
		if total[k] == 0 {
			t.Errorf("no %v outcomes across seed corpus; generator lost coverage", k)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := Generate(7, 100)
	got := Decode(tr.Encode())
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("decode(encode(trace)) differs from trace")
	}
	// Arbitrary bytes decode without panicking, dropping the tail.
	if ops := Decode(make([]byte, opRecordLen+3)).Ops; len(ops) != 1 {
		t.Errorf("partial record: got %d ops, want 1", len(ops))
	}
}

func TestFormatGoTestIsReplayable(t *testing.T) {
	src := FormatGoTest("X", DirectedTrace(InjectNone))
	for _, want := range []string{
		"func TestConformanceRegressionX(t *testing.T)",
		"conformance.Run(tr, conformance.Options{})",
		"conformance.OpReserve",
		"res.Divergences",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered test missing %q:\n%s", want, src)
		}
	}
}
