package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("pkrusafe_vm_loads_total", "Loads executed.").Add(12)
	cv := r.CounterVec("pkrusafe_gate_crossings_total", "Gate traversals.", "direction")
	cv.With("enter_untrusted").Add(3)
	cv.With("enter_trusted").Add(3)
	hv := r.HistogramVec("pkrusafe_gate_latency_ns", "Gate latency.", "ns", "lib")
	h := hv.With("libsimple")
	h.Observe(100)
	h.Observe(200)
	h.Observe(400)
	r.Gauge("pkrusafe_heap_bytes_live", "Live bytes.").Set(4096)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pkrusafe_vm_loads_total Loads executed.",
		"# TYPE pkrusafe_vm_loads_total counter",
		"pkrusafe_vm_loads_total 12",
		`pkrusafe_gate_crossings_total{direction="enter_untrusted"} 3`,
		"# TYPE pkrusafe_gate_latency_ns histogram",
		`pkrusafe_gate_latency_ns_bucket{lib="libsimple",le="+Inf"} 3`,
		`pkrusafe_gate_latency_ns_sum{lib="libsimple"} 700`,
		`pkrusafe_gate_latency_ns_count{lib="libsimple"} 3`,
		"# TYPE pkrusafe_heap_bytes_live gauge",
		"pkrusafe_heap_bytes_live 4096",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative and non-decreasing.
	prev := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "pkrusafe_gate_latency_ns_bucket") {
			continue
		}
		var v int
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

// fmtSscanLast parses the final space-separated integer field of a line.
func fmtSscanLast(line string, v *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n := 0
	for _, c := range line[i+1:] {
		n = n*10 + int(c-'0')
	}
	*v = n
	return 1, nil
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "site").With(`a"b\c`).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{site="a\"b\\c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if got.Schema != SnapshotSchema {
		t.Fatalf("schema = %d, want %d", got.Schema, SnapshotSchema)
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range got.Metrics {
		byName[m.Name] = m
	}
	if m := byName["pkrusafe_vm_loads_total"]; m.Kind != "counter" || m.Series[0].Value != 12 {
		t.Fatalf("loads metric = %+v", m)
	}
	if m := byName["pkrusafe_gate_latency_ns"]; m.Kind != "histogram" || m.Series[0].Count != 3 || m.Series[0].P50 == 0 {
		t.Fatalf("latency metric = %+v", m)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(buildRegistry().Snapshot())
	for _, want := range []string{
		"METRIC",
		"pkrusafe_vm_loads_total",
		"direction=enter_untrusted",
		"lib=libsimple",
		"n=3",
		"p95=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 1 counter + 2 crossings + 1 histogram + 1 gauge
	if len(lines) != 6 {
		t.Fatalf("table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestSortSeriesSnapshots(t *testing.T) {
	ss := []SeriesSnapshot{
		{LabelValues: []string{"b"}},
		{LabelValues: []string{"a"}},
	}
	sortSeriesSnapshots(ss)
	if ss[0].LabelValues[0] != "a" {
		t.Fatalf("not sorted: %+v", ss)
	}
}
