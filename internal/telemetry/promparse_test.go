package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a minimal in-repo parser for the text exposition
// format, just enough to round-trip what WritePrometheus emits: comment
// lines are skipped and label values are unescaped (\\, \n, \").
func parsePrometheus(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var s promSample
		s.labels = map[string]string{}
		rest := line
		if brace := strings.IndexByte(rest, '{'); brace >= 0 {
			s.name = rest[:brace]
			body, tail, err := splitLabelBlock(rest[brace:])
			if err != nil {
				t.Fatalf("%v in line %q", err, line)
			}
			parseLabels(t, body, s.labels)
			rest = strings.TrimSpace(tail)
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				t.Fatalf("no value in line %q", line)
			}
			s.name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
		}
		v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		s.value = v
		samples = append(samples, s)
	}
	return samples
}

// splitLabelBlock consumes a {...} block honoring escapes inside quoted
// values, returning the inner body and the remainder after '}'.
func splitLabelBlock(s string) (body, tail string, err error) {
	if s[0] != '{' {
		return "", "", fmt.Errorf("label block must start with {")
	}
	inQuote, escaped := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return s[1:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block")
}

// parseLabels splits `k="v",k2="v2"` into the map, unescaping values.
func parseLabels(t *testing.T, body string, into map[string]string) {
	t.Helper()
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			t.Fatalf("malformed label in %q", body)
		}
		name := body[:eq]
		var val strings.Builder
		i := eq + 2
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					t.Fatalf("unknown escape \\%c in %q", body[i], body)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(body) || body[i] != '"' {
			t.Fatalf("unterminated label value in %q", body)
		}
		into[name] = val.String()
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
}

// TestPrometheusLabelEscapingRoundTrip writes counters whose label values
// contain every character the exposition format escapes — quotes,
// backslashes and newlines — and asserts the in-repo parser recovers the
// original values exactly.
func TestPrometheusLabelEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`has "quotes" inside`,
		`back\slash and trailing \`,
		"multi\nline\nvalue",
		"mix\"of\\all\nthree",
		``,
	}
	r := NewRegistry()
	vec := r.CounterVec("escape_test_total", "Counter with hostile label values.", "site")
	for i, v := range hostile {
		vec.With(v).Add(uint64(i + 1))
	}

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	// The raw exposition must never contain an unescaped newline inside a
	// label value: every sample stays on one line.
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "escape_test_total") {
			t.Errorf("sample broken across lines: %q", line)
		}
	}

	samples := parsePrometheus(t, out.String())
	if len(samples) != len(hostile) {
		t.Fatalf("parsed %d samples, want %d:\n%s", len(samples), len(hostile), out.String())
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.name != "escape_test_total" {
			t.Errorf("unexpected family %q", s.name)
		}
		got[s.labels["site"]] = s.value
	}
	for i, v := range hostile {
		if got[v] != float64(i+1) {
			t.Errorf("label %q: value %v, want %d (round-trip lost the value)", v, got[v], i+1)
		}
	}
}

// TestPrometheusEscapingStable asserts escaping is deterministic and does
// not double-escape when exported twice.
func TestPrometheusEscapingStable(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("stable_total", "", "k").With("a\\\"b\nc").Inc()
	var first, second strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("exposition not stable:\n%q\n%q", first.String(), second.String())
	}
	want := `stable_total{k="a\\\"b\nc"} 1`
	if !strings.Contains(first.String(), want) {
		t.Errorf("escaped sample missing; got:\n%s\nwant line: %s", first.String(), want)
	}
}
