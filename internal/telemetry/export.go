package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SnapshotSchema versions the JSON snapshot layout. Bump it when the
// shape of Snapshot/MetricSnapshot/SeriesSnapshot changes incompatibly.
const SnapshotSchema = 1

// Snapshot is a point-in-time copy of every registered metric, the
// JSON-exportable form of a run's telemetry.
type Snapshot struct {
	Schema  int              `json:"schema"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one family.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help,omitempty"`
	Unit   string           `json:"unit,omitempty"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled instance. Value is set for counters and
// gauges; Count/Sum/P50/P95/P99 (and any exemplars) for histograms.
type SeriesSnapshot struct {
	LabelValues []string   `json:"label_values,omitempty"`
	Value       float64    `json:"value,omitempty"`
	Count       uint64     `json:"count,omitempty"`
	Sum         uint64     `json:"sum,omitempty"`
	P50         float64    `json:"p50,omitempty"`
	P95         float64    `json:"p95,omitempty"`
	P99         float64    `json:"p99,omitempty"`
	Exemplars   []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot captures every family. A nil registry yields an empty (but
// schema-stamped) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Schema: SnapshotSchema}
	if r == nil {
		return snap
	}
	for _, f := range r.sortedFamilies() {
		m := MetricSnapshot{
			Name:   f.name,
			Kind:   f.kind.String(),
			Help:   f.help,
			Unit:   f.unit,
			Labels: f.labels,
		}
		for _, s := range f.sortedSeries() {
			ss := SeriesSnapshot{LabelValues: s.values}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = s.gauge.Value()
			case KindHistogram:
				buckets, count, sum := s.hist.snapshot()
				ss.Count, ss.Sum = count, sum
				ss.P50 = quantileFromBuckets(buckets[:], count, 0.50)
				ss.P95 = quantileFromBuckets(buckets[:], count, 0.95)
				ss.P99 = quantileFromBuckets(buckets[:], count, 0.99)
				ss.Exemplars = s.hist.Exemplars()
			}
			m.Series = append(m.Series, ss)
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// escapeLabel escapes a label value per the Prometheus exposition rules.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelPairs renders {k="v",...} for the series, with an extra le pair
// appended when le != "".
func labelPairs(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as cumulative _bucket
// series with power-of-two le bounds (only up to the highest occupied
// bucket), plus _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.String()); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case KindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelPairs(f.labels, s.values, ""), s.counter.Value()); err != nil {
					return err
				}
			case KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %v\n", f.name, labelPairs(f.labels, s.values, ""), s.gauge.Value()); err != nil {
					return err
				}
			case KindHistogram:
				if err := writePromHistogram(w, f, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, f *family, s *series) error {
	buckets, count, sum := s.hist.snapshot()
	top := -1
	for i, c := range buckets {
		if c > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += buckets[i]
		le := fmt.Sprintf("%d", bucketUpper(i))
		// OpenMetrics-style exemplar suffix. The value precedes the "#", so
		// plain 0.0.4 parsers (including this repo's promparse test parser,
		// which takes the first field after the metric name) still read the
		// bucket count unchanged.
		var ex string
		if e := s.hist.exemplars[i].Load(); e != nil {
			ex = fmt.Sprintf(` # {trace_id="%s"} %d`, escapeLabel(e.TraceID), e.Value)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, labelPairs(f.labels, s.values, le), cum, ex); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, s.values, "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, labelPairs(f.labels, s.values, ""), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPairs(f.labels, s.values, ""), count)
	return err
}

// FormatTable renders a snapshot as an aligned, human-readable table —
// what `pkrusafe stats` prints. Counter and gauge rows show the value;
// histogram rows show count, sum and the three exported quantiles (with
// durations pretty-printed when the unit is "ns").
func FormatTable(snap *Snapshot) string {
	rows := [][3]string{{"METRIC", "LABELS", "VALUE"}}
	for _, m := range snap.Metrics {
		for _, s := range m.Series {
			var labels []string
			for i, n := range m.Labels {
				if i < len(s.LabelValues) {
					labels = append(labels, n+"="+s.LabelValues[i])
				}
			}
			var val string
			switch m.Kind {
			case "histogram":
				val = fmt.Sprintf("n=%d sum=%s p50=%s p95=%s p99=%s",
					s.Count, formatUnit(float64(s.Sum), m.Unit),
					formatUnit(s.P50, m.Unit), formatUnit(s.P95, m.Unit), formatUnit(s.P99, m.Unit))
			default:
				val = trimFloat(s.Value)
			}
			rows = append(rows, [3]string{m.Name, strings.Join(labels, ","), val})
		}
	}
	w0, w1 := 0, 0
	for _, r := range rows {
		if len(r[0]) > w0 {
			w0 = len(r[0])
		}
		if len(r[1]) > w1 {
			w1 = len(r[1])
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", w0, r[0], w1, r[1], r[2])
	}
	return b.String()
}

// formatUnit pretty-prints v in the family's unit ("ns" becomes a
// duration; anything else keeps the raw number).
func formatUnit(v float64, unit string) string {
	if unit == "ns" {
		return time.Duration(v).Round(time.Nanosecond).String()
	}
	return trimFloat(v)
}

// trimFloat drops the trailing ".0*" noise off integral values.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// sortSeriesSnapshots orders series for deterministic output (used by
// tests poking at snapshots directly).
func sortSeriesSnapshots(ss []SeriesSnapshot) {
	sort.Slice(ss, func(i, j int) bool {
		return strings.Join(ss[i].LabelValues, ",") < strings.Join(ss[j].LabelValues, ",")
	})
}
