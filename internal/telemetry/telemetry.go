// Package telemetry is the PKRU-Safe runtime's observability layer: a
// dependency-free metrics registry of atomic counters, gauges and
// log-scaled histograms, organized into labeled families, plus a span API
// for timing nested runtime regions (gate enter→exit, profiler
// record→resume, heap alloc/free, interpreter dispatch).
//
// The paper's evaluation (§6) hinges on per-operation accounting at the
// T/U boundary — gate traversals, PKU faults, alloc→ualloc rewrites and
// their cost. This package is where those numbers accumulate; the
// exporters (Prometheus text exposition and a JSON snapshot, see
// export.go) are how a run's behaviour leaves the process.
//
// Every handle type is nil-safe: methods on a nil *Registry return nil
// metric handles, and methods on nil handles are no-ops. Code therefore
// instruments unconditionally and pays nothing — not even an allocation —
// when telemetry is disabled.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value (possibly sampled via a func).
	KindGauge
	// KindHistogram is a log2-bucketed value distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counter is a monotone atomic counter. The nil counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. A gauge may instead be backed
// by a sampling function (see GaugeVec.WithFunc / Registry.GaugeFunc), in
// which case Set and Add are ignored. The nil gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil && g.fn == nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil || g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value, sampling the backing function if one
// is attached.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one labeled instance within a family.
type series struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	unit   string
	kind   Kind
	labels []string

	mu     sync.RWMutex
	series map[string]*series
}

// seriesKey joins label values into a map key. Label values never contain
// NUL in this codebase; the separator keeps ("a","bc") distinct from
// ("ab","c").
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0)
		}
		b = append(b, v...)
	}
	return string(b)
}

// with returns (creating on first use) the series for the given label
// values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q expects %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.counter = new(Counter)
	case KindGauge:
		s.gauge = new(Gauge)
	case KindHistogram:
		s.hist = new(Histogram)
	}
	f.series[key] = s
	return s
}

// sortedSeries returns the family's series ordered by label values.
func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

// CounterVec is a labeled counter family. The nil vec yields nil counters.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.with(values).counter
}

// GaugeVec is a labeled gauge family. The nil vec yields nil gauges.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.with(values).gauge
}

// WithFunc binds the series for the given label values to a sampling
// function evaluated at export time — the cheap way to publish values
// another subsystem already maintains (allocator stats, resident pages).
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	v.fam.with(values).gauge.fn = fn
}

// HistogramVec is a labeled histogram family. The nil vec yields nil
// histograms.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.with(values).hist
}

// Registry holds metric families. The zero value is unusable; construct
// with NewRegistry. A nil *Registry is the disabled state: every
// registration method returns a nil handle.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order, for stable export
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating on first registration) the named family.
// Re-registering an existing name with a different kind or label schema is
// a programming error and panics.
func (r *Registry) family(name, help, unit string, kind Kind, labels []string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name:   name,
				help:   help,
				unit:   unit,
				kind:   kind,
				labels: append([]string(nil), labels...),
				series: make(map[string]*series),
			}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v with %d label(s) (was %v with %d)",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, "", KindCounter, nil).with(nil).counter
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.family(name, help, "", KindCounter, labels)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, "", KindGauge, nil).with(nil).gauge
}

// GaugeFunc registers an unlabeled gauge backed by a sampling function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.family(name, help, "", KindGauge, nil).with(nil).gauge.fn = fn
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.family(name, help, "", KindGauge, labels)}
}

// Histogram registers (or returns) an unlabeled histogram. Unit names the
// observed quantity ("ns", "bytes") and is carried into exports.
func (r *Registry) Histogram(name, help, unit string) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, unit, KindHistogram, nil).with(nil).hist
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help, unit string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.family(name, help, unit, KindHistogram, labels)}
}

// sortedFamilies returns families in registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// CounterValue sums a counter family's series; ok reports whether the
// family exists and is a counter.
func (r *Registry) CounterValue(name string) (total float64, ok bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != KindCounter {
		return 0, false
	}
	for _, s := range f.sortedSeries() {
		total += float64(s.counter.Value())
	}
	return total, true
}

// HistogramQuantiles merges a histogram family's series and returns the
// requested quantiles over the merged distribution plus the total
// observation count; ok reports whether the family exists and is a
// histogram.
func (r *Registry) HistogramQuantiles(name string, qs ...float64) (vals []float64, count uint64, ok bool) {
	if r == nil {
		return nil, 0, false
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != KindHistogram {
		return nil, 0, false
	}
	var merged [numBuckets]uint64
	for _, s := range f.sortedSeries() {
		b, c, _ := s.hist.snapshot()
		count += c
		for i := range b {
			merged[i] += b[i]
		}
	}
	vals = make([]float64, len(qs))
	for i, q := range qs {
		vals[i] = quantileFromBuckets(merged[:], count, q)
	}
	return vals, count, true
}
