package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets is one bucket per possible bit length of a uint64 (0..64).
const numBuckets = 65

// Histogram is a log2-bucketed distribution: bucket i holds observations
// whose bit length is i, i.e. values in [2^(i-1), 2^i). The scheme keeps
// recording to two atomic adds with no locking, bounds relative quantile
// error by 2x at any magnitude — the right trade for latencies that span
// nanoseconds to milliseconds — and needs no a-priori bucket layout.
//
// The nil histogram is a no-op.
type Histogram struct {
	count     atomic.Uint64
	sum       atomic.Uint64
	buckets   [numBuckets]atomic.Uint64
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Exemplar ties a concrete observation to an identifier — in this runtime
// a gatetrace trace ID — so a tail bucket in /metrics can be chased back
// to the retained request trace that produced it. Stored per bucket,
// last-writer-wins: the freshest example of "what landed here" is the one
// worth chasing.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	Value   uint64 `json:"value"`
	Bucket  int    `json:"-"` // index; set on snapshot reads
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// bucketLower returns the smallest value bucket i holds.
func bucketLower(i int) uint64 {
	if i <= 1 {
		return uint64(i) // bucket 0 holds {0}, bucket 1 holds {1}
	}
	return 1 << (i - 1)
}

// bucketUpper returns the largest value bucket i holds.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveEx records one value and, when traceID is non-empty, publishes it
// as the bucket's exemplar. The exemplar write is a single atomic pointer
// store, so ObserveEx stays lock-free and safe under concurrent callers;
// racing writers simply overwrite each other, which is the semantics we
// want (keep a recent example, not all of them).
func (h *Histogram) ObserveEx(v uint64, traceID string) {
	if h == nil {
		return
	}
	i := bucketIndex(v)
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[i].Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Exemplars returns the current exemplars, lowest bucket first, with
// Bucket set to the owning bucket index. Loosely consistent under
// concurrent ObserveEx, like snapshot.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			ex := *e
			ex.Bucket = i
			out = append(out, ex)
		}
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot copies the bucket counts, count and sum. Under concurrent
// writes the copy is only loosely consistent, which is fine for export.
func (h *Histogram) snapshot() (buckets [numBuckets]uint64, count, sum uint64) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), h.sum.Load()
}

// Quantile estimates the q-th quantile (q in [0, 1]) by locating the
// bucket containing the target rank and interpolating linearly inside it.
// With log2 buckets the estimate is within a factor of two of the true
// value; it returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	buckets, count, _ := h.snapshot()
	return quantileFromBuckets(buckets[:], count, q)
}

// quantileFromBuckets is the shared rank-walk used by Quantile and the
// registry's merged-family quantiles.
func quantileFromBuckets(buckets []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := float64(bucketLower(i)), float64(bucketUpper(i))
			frac := float64(rank-cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(bucketUpper(len(buckets) - 1))
}
