package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestObserveExStoresExemplar checks the basic contract: an ObserveEx with
// a trace ID publishes a per-bucket exemplar, a plain Observe (or an empty
// trace ID) leaves existing exemplars alone, and exemplars land in the
// bucket of their own value.
func TestObserveExStoresExemplar(t *testing.T) {
	h := new(Histogram)
	h.ObserveEx(100, "t1") // bucket 7 (64..127)
	h.ObserveEx(5000, "t2")
	h.Observe(100)       // no exemplar change
	h.ObserveEx(100, "") // empty ID: no exemplar change
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2", ex)
	}
	if ex[0].TraceID != "t1" || ex[0].Value != 100 || ex[0].Bucket != bucketIndex(100) {
		t.Errorf("first exemplar = %+v", ex[0])
	}
	if ex[1].TraceID != "t2" || ex[1].Value != 5000 || ex[1].Bucket != bucketIndex(5000) {
		t.Errorf("second exemplar = %+v", ex[1])
	}
	// Last writer wins within a bucket.
	h.ObserveEx(101, "t3")
	ex = h.Exemplars()
	if ex[0].TraceID != "t3" || ex[0].Value != 101 {
		t.Errorf("exemplar not overwritten: %+v", ex[0])
	}
	// Nil histogram: all no-ops.
	var nilH *Histogram
	nilH.ObserveEx(1, "x")
	if nilH.Exemplars() != nil {
		t.Error("nil histogram returned exemplars")
	}
}

// TestHistogramVecExemplarConcurrent hammers one HistogramVec series from
// many goroutines mixing Observe and ObserveEx (run under -race in CI).
// Afterwards the counts must be exact and every surviving exemplar must be
// internally consistent — a trace ID paired with a value that belongs to
// the exemplar's bucket — i.e. racing writers may overwrite each other but
// can never produce a torn pair.
func TestHistogramVecExemplarConcurrent(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("gate_latency_test_ns", "", "ns", "domain")
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := vec.With("tenant-a")
			for i := 0; i < each; i++ {
				v := uint64(1 << (g % 10))
				if i%2 == 0 {
					h.ObserveEx(v, fmt.Sprintf("t%d-%d", g, i))
				} else {
					h.Observe(v)
				}
			}
		}(g)
	}
	wg.Wait()

	h := vec.With("tenant-a")
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("count = %d, want %d", got, goroutines*each)
	}
	for _, e := range h.Exemplars() {
		if e.TraceID == "" {
			t.Errorf("exemplar in bucket %d has empty trace ID", e.Bucket)
		}
		if bucketIndex(e.Value) != e.Bucket {
			t.Errorf("exemplar %+v: value belongs to bucket %d", e, bucketIndex(e.Value))
		}
	}
}

// TestHistogramExemplarExposition checks the rendered formats: the
// Prometheus _bucket line carries an OpenMetrics-style exemplar suffix
// after the value, the in-repo parser still reads the bucket count
// (the value precedes the '#'), and the JSON snapshot carries the same
// exemplars.
func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("gate_latency_ns", "Gate latency.", "ns", "domain")
	vec.With("libu").ObserveEx(100, "trace-42")
	vec.With("libu").Observe(3)

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	wantLine := `gate_latency_ns_bucket{domain="libu",le="127"} 2 # {trace_id="trace-42"} 100`
	if !strings.Contains(out.String(), wantLine) {
		t.Errorf("exposition missing exemplar line %q; got:\n%s", wantLine, out.String())
	}

	// The suffix must not confuse the parser: bucket values still parse.
	var cum float64
	for _, s := range parsePrometheus(t, out.String()) {
		if s.name == "gate_latency_ns_bucket" && s.labels["le"] == "127" {
			cum = s.value
		}
	}
	if cum != 2 {
		t.Errorf("cumulative bucket through 127 parsed as %v, want 2", cum)
	}

	snap := r.Snapshot()
	var found bool
	for _, m := range snap.Metrics {
		if m.Name != "gate_latency_ns" {
			continue
		}
		for _, s := range m.Series {
			for _, e := range s.Exemplars {
				if e.TraceID == "trace-42" && e.Value == 100 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("snapshot missing exemplar trace-42")
	}
}

// TestHistogramVecHostileTenantLabels round-trips histogram label values
// containing every escaped character through the exposition format —
// tenant names arrive from the outside world, so a tenant called
// `evil"} 9` must not be able to forge samples or break parsing — and
// checks exemplar trace IDs are escaped by the same rules.
func TestHistogramVecHostileTenantLabels(t *testing.T) {
	hostile := []string{
		`tenant"quoted`,
		`tenant\slashed`,
		"tenant\nnewline",
		`evil"} 9`,
		`le="999"} 1 # forged`,
	}
	r := NewRegistry()
	vec := r.HistogramVec("req_latency_ns", "", "ns", "tenant")
	for i, tenant := range hostile {
		vec.With(tenant).ObserveEx(uint64(10*(i+1)), `trace"with\hostile`+"\n"+`chars`)
	}

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "req_latency_ns") {
			t.Errorf("hostile label broke a sample across lines: %q", line)
		}
	}

	seen := map[string]bool{}
	for _, s := range parsePrometheus(t, out.String()) {
		if s.name == "req_latency_ns_count" {
			seen[s.labels["tenant"]] = s.value == 1
		}
	}
	for _, tenant := range hostile {
		if !seen[tenant] {
			t.Errorf("tenant %q did not round-trip (parsed tenants: %v)", tenant, seen)
		}
	}
}
