package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Re-registration returns the same underlying counter.
	if again := r.Counter("test_total", "help"); again.Value() != 42 {
		t.Fatalf("re-registered counter = %d, want 42", again.Value())
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "help", "kind")
	v.With("read").Add(3)
	v.With("write").Add(4)
	v.With("read").Inc()
	if got := v.With("read").Value(); got != 4 {
		t.Fatalf("read = %d, want 4", got)
	}
	total, ok := r.CounterValue("ops_total")
	if !ok || total != 8 {
		t.Fatalf("CounterValue = %v,%v, want 8,true", total, ok)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "help")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	r.GaugeFunc("sampled", "help", func() float64 { return 7 })
	snap := r.Snapshot()
	var found bool
	for _, m := range snap.Metrics {
		if m.Name == "sampled" {
			found = true
			if m.Series[0].Value != 7 {
				t.Fatalf("sampled gauge = %v, want 7", m.Series[0].Value)
			}
		}
	}
	if !found {
		t.Fatal("sampled gauge missing from snapshot")
	}
}

func TestLabelCountMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("labeled_total", "help", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label count")
		}
	}()
	v.With("only-one")
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "help")
}

func TestSeriesKeyDistinct(t *testing.T) {
	if seriesKey([]string{"a", "bc"}) == seriesKey([]string{"ab", "c"}) {
		t.Fatal(`seriesKey("a","bc") must differ from seriesKey("ab","c")`)
	}
}

// TestNilRegistryNoOps: the disabled path must not panic anywhere.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.CounterVec("b", "", "l").With("x").Add(5)
	r.Gauge("c", "").Set(1)
	r.GaugeFunc("d", "", func() float64 { return 1 })
	r.GaugeVec("e", "", "l").With("x").Add(1)
	r.GaugeVec("e2", "", "l").WithFunc(func() float64 { return 1 }, "x")
	r.Histogram("f", "", "ns").Observe(9)
	r.HistogramVec("g", "", "ns", "l").With("x").Observe(9)
	if _, ok := r.CounterValue("a"); ok {
		t.Fatal("nil registry CounterValue ok=true")
	}
	if _, _, ok := r.HistogramQuantiles("f", 0.5); ok {
		t.Fatal("nil registry HistogramQuantiles ok=true")
	}
	snap := r.Snapshot()
	if snap.Schema != SnapshotSchema || len(snap.Metrics) != 0 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry WritePrometheus wrote %q, err %v", sb.String(), err)
	}
	sp := StartSpan(nil, nil, "inert")
	if sp.Active() || sp.End() != 0 {
		t.Fatal("span with no sinks must be inert")
	}
}

// TestConcurrentEmit hammers one registry from many goroutines; run with
// -race to verify the lock-free hot paths and locked registration paths
// are data-race free.
func TestConcurrentEmit(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	labels := []string{"alpha", "beta", "gamma", "delta"}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			v := r.CounterVec("conc_labeled_total", "", "l")
			h := r.HistogramVec("conc_ns", "", "ns", "l")
			gauge := r.Gauge("conc_gauge", "")
			for i := 0; i < iters; i++ {
				c.Inc()
				lbl := labels[(g+i)%len(labels)]
				v.With(lbl).Inc()
				h.With(lbl).Observe(uint64(i))
				gauge.Add(1)
				if i%64 == 0 {
					// Concurrent export must coexist with writes.
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != goroutines*iters {
		t.Fatalf("conc_total = %d, want %d", got, goroutines*iters)
	}
	total, ok := r.CounterValue("conc_labeled_total")
	if !ok || total != goroutines*iters {
		t.Fatalf("conc_labeled_total = %v, want %d", total, goroutines*iters)
	}
	_, count, ok := r.HistogramQuantiles("conc_ns", 0.5)
	if !ok || count != goroutines*iters {
		t.Fatalf("conc_ns count = %d, want %d", count, goroutines*iters)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != goroutines*iters {
		t.Fatalf("conc_gauge = %v, want %d", got, goroutines*iters)
	}
}

// referenceQuantile is the exact quantile on the raw sample (nearest-rank
// with the same rank convention as the histogram's walk).
func referenceQuantile(sorted []uint64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return float64(sorted[rank-1])
}

// TestHistogramQuantileVsReference checks the log2-bucketed estimate
// stays within the documented 2x relative error of an exact reference
// computation over the same samples.
func TestHistogramQuantileVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	distributions := map[string]func() uint64{
		"uniform": func() uint64 { return uint64(rng.Intn(1_000_000)) },
		"exp":     func() uint64 { return uint64(rng.ExpFloat64() * 50_000) },
		"bimodal": func() uint64 {
			if rng.Intn(2) == 0 {
				return uint64(100 + rng.Intn(50))
			}
			return uint64(1_000_000 + rng.Intn(500_000))
		},
	}
	for name, gen := range distributions {
		h := new(Histogram)
		samples := make([]uint64, 0, 10_000)
		for i := 0; i < 10_000; i++ {
			v := gen()
			h.Observe(v)
			samples = append(samples, v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			want := referenceQuantile(samples, q)
			got := h.Quantile(q)
			if want == 0 {
				if got > 1 {
					t.Errorf("%s q%.2f: got %v, want ~0", name, q, got)
				}
				continue
			}
			if ratio := got / want; ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s q%.2f: got %v, reference %v (ratio %.3f outside [0.5, 2])", name, q, got, want, ratio)
			}
		}
		if h.Count() != 10_000 {
			t.Errorf("%s count = %d", name, h.Count())
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := new(Histogram)
	// 0 and 1 land in dedicated single-value buckets, so their quantiles
	// are exact.
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("q25 = %v, want 0", got)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("q99 = %v, want 1", got)
	}
	if h.Sum() != 10 {
		t.Fatalf("sum = %d, want 10", h.Sum())
	}
}

func TestBucketBounds(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketLower(i), bucketUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if bucketIndex(lo) != i {
			t.Fatalf("bucketIndex(lower(%d)) = %d", i, bucketIndex(lo))
		}
		if bucketIndex(hi) != i {
			t.Fatalf("bucketIndex(upper(%d)) = %d", i, bucketIndex(hi))
		}
	}
}

func TestSpanFeedsHistogramAndRing(t *testing.T) {
	h := new(Histogram)
	ring := trace.NewRing(8)
	sp := StartSpan(h, ring, "gate")
	if !sp.Active() {
		t.Fatal("span should be active")
	}
	d := sp.End()
	if d < 0 {
		t.Fatalf("duration %v < 0", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	evs := ring.Snapshot()
	if len(evs) != 1 || evs[0].Kind != trace.Span || evs[0].Note != "gate" {
		t.Fatalf("ring events = %+v", evs)
	}
	if !strings.Contains(evs[0].String(), "span") {
		t.Fatalf("event string = %q", evs[0].String())
	}
}

func TestHistogramQuantilesMergesSeries(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat_ns", "", "ns", "lib")
	v.With("libA").Observe(10)
	v.With("libB").Observe(1000)
	vals, count, ok := r.HistogramQuantiles("lat_ns", 0, 1)
	if !ok || count != 2 {
		t.Fatalf("count = %d ok = %v", count, ok)
	}
	if vals[0] > 20 || vals[1] < 500 {
		t.Fatalf("merged quantiles = %v", vals)
	}
}
