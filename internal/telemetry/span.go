package telemetry

import (
	"time"

	"repro/internal/trace"
)

// Span measures one timed region and, on End, feeds its duration into a
// histogram and (optionally) the crash-dump event ring. Spans are plain
// values: starting one costs a clock read and no allocation, and a span
// started with neither a histogram nor a ring is inert — End is free.
//
// Nesting is by construction: a region that contains another simply
// starts an inner span (gate-enter→gate-exit around an untrusted call
// that itself spans profiler record→resume, say). Each level observes
// into its own histogram, so the registry ends up with a latency
// distribution per region kind rather than a single conflated timer.
type Span struct {
	hist  *Histogram
	ring  *trace.Ring
	name  string
	start time.Time
}

// StartSpan begins a span recording into h (nil: skip the histogram) and
// emitting a trace.Span event into ring on End (nil: no event). If both
// are nil the span is inert and never reads the clock.
func StartSpan(h *Histogram, ring *trace.Ring, name string) Span {
	if h == nil && ring == nil {
		return Span{}
	}
	return Span{hist: h, ring: ring, name: name, start: time.Now()}
}

// Active reports whether the span is recording.
func (s Span) Active() bool { return !s.start.IsZero() }

// End closes the span, observing the elapsed nanoseconds into the
// histogram and emitting a trace event if a ring is attached. It returns
// the measured duration (zero for an inert span). Ending the same span
// value twice records the region twice; don't.
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	if d < 0 {
		d = 0
	}
	s.hist.Observe(uint64(d))
	if s.ring != nil {
		s.ring.Emit(trace.Event{Kind: trace.Span, A: uint64(d), Note: s.name})
	}
	return d
}
