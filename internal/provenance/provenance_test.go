package provenance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpk"
	"repro/internal/profile"
	"repro/internal/sig"
	"repro/internal/vm"
)

func stores() map[string]Store {
	return map[string]Store{
		"interval": NewIntervalStore(),
		"linear":   NewLinearStore(),
	}
}

func TestStoreBasics(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			id := profile.AllocID{Func: "f", Block: 1, Site: 2}
			s.Track(Entry{Base: 0x1000, Size: 64, ID: id})
			if s.Len() != 1 {
				t.Fatalf("Len = %d", s.Len())
			}
			// Base, interior, and last-byte lookups hit; end misses.
			for _, a := range []vm.Addr{0x1000, 0x1020, 0x103f} {
				e, ok := s.Lookup(a)
				if !ok || e.ID != id {
					t.Errorf("Lookup(%v) = %+v, %v", a, e, ok)
				}
			}
			for _, a := range []vm.Addr{0xfff, 0x1040, 0x2000} {
				if _, ok := s.Lookup(a); ok {
					t.Errorf("Lookup(%v) should miss", a)
				}
			}
			e, ok := s.Untrack(0x1000)
			if !ok || e.Size != 64 {
				t.Errorf("Untrack = %+v, %v", e, ok)
			}
			if _, ok := s.Untrack(0x1000); ok {
				t.Error("second Untrack succeeded")
			}
			if _, ok := s.Lookup(0x1000); ok {
				t.Error("Lookup after Untrack succeeded")
			}
		})
	}
}

func TestStoreRetrackSameBase(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			s.Track(Entry{Base: 0x1000, Size: 16, ID: profile.AllocID{Func: "a"}})
			s.Track(Entry{Base: 0x1000, Size: 128, ID: profile.AllocID{Func: "b"}})
			if s.Len() != 1 {
				t.Fatalf("Len = %d after retrack", s.Len())
			}
			e, ok := s.Lookup(0x1000 + 100)
			if !ok || e.ID.Func != "b" {
				t.Errorf("retrack lost: %+v, %v", e, ok)
			}
		})
	}
}

// Property: both store implementations agree on every lookup under random
// track/untrack traffic.
func TestStoreEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		iv, ln := NewIntervalStore(), NewLinearStore()
		var bases []vm.Addr
		for i := 0; i < 200; i++ {
			switch {
			case len(bases) > 0 && rng.Intn(4) == 0:
				j := rng.Intn(len(bases))
				e1, ok1 := iv.Untrack(bases[j])
				e2, ok2 := ln.Untrack(bases[j])
				if ok1 != ok2 || e1 != e2 {
					return false
				}
				bases = append(bases[:j], bases[j+1:]...)
			default:
				// Non-overlapping: slot grid of 256-byte cells.
				base := vm.Addr(0x10000 + rng.Intn(500)*256)
				size := uint64(rng.Intn(255) + 1)
				e := Entry{Base: base, Size: size, ID: profile.AllocID{Func: "f", Site: uint32(i)}}
				if _, dup := iv.Lookup(base); dup {
					continue
				}
				iv.Track(e)
				ln.Track(e)
				bases = append(bases, base)
			}
			probe := vm.Addr(0x10000 + rng.Intn(500*256))
			e1, ok1 := iv.Lookup(probe)
			e2, ok2 := ln.Lookup(probe)
			if ok1 != ok2 || (ok1 && e1 != e2) {
				return false
			}
		}
		return iv.Len() == ln.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// profilingWorld builds a space with an MT-like region and a tracer
// installed on a fresh signal table.
func profilingWorld(t *testing.T) (*vm.Space, *vm.Thread, *Tracer) {
	t.Helper()
	s := vm.NewSpace()
	if _, err := s.Reserve("mt", 0x10_0000, 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	tr := NewTracer(nil, profile.New(), 1)
	tr.Install(tbl)
	return s, vm.NewThread(s, tbl), tr
}

func TestTracerRecordsFaultingSite(t *testing.T) {
	_, th, tr := profilingWorld(t)
	id := profile.AllocID{Func: "trusted_alloc", Block: 2, Site: 1}
	base := vm.Addr(0x10_0000)
	if err := th.Store64(base, 42); err != nil { // permissive warm-up write
		t.Fatal(err)
	}
	tr.LogAlloc(uint64(base), 64, id)

	// Enter "untrusted" rights and read the object: must fault, be
	// recorded, single-step, and return the right value.
	locked := mpk.PermitAll.With(1, mpk.DenyAll)
	th.SetRights(locked)
	v, err := th.Load64(base + 8)
	if err != nil {
		t.Fatalf("profiled access failed: %v", err)
	}
	if v != 0 {
		t.Errorf("value = %d", v)
	}
	if th.Rights() != locked {
		t.Errorf("rights not restored after single-step: %v", th.Rights())
	}
	if !tr.Profile().Contains(id) {
		t.Fatal("profile missing faulted site")
	}
	r, _ := tr.Profile().Get(id)
	if r.Faults != 1 || r.Bytes != 64 {
		t.Errorf("record = %+v", r)
	}
	st := tr.Stats()
	if st.RecordedFaults != 1 || st.UnknownFaults != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTracerInteriorPointerFault(t *testing.T) {
	_, th, tr := profilingWorld(t)
	id := profile.AllocID{Func: "vec"}
	tr.LogAlloc(0x10_0000, 4096, id)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	if _, err := th.Load8(0x10_0000 + 2000); err != nil {
		t.Fatal(err)
	}
	if !tr.Profile().Contains(id) {
		t.Error("interior fault not attributed to object")
	}
}

func TestTracerUnknownFaultStillResumes(t *testing.T) {
	_, th, tr := profilingWorld(t)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	// No tracked object here; profiling must still grant and continue.
	if _, err := th.Load8(0x10_0000 + 512); err != nil {
		t.Fatalf("untracked fault should still resume: %v", err)
	}
	if tr.Profile().Len() != 0 {
		t.Error("untracked fault recorded a site")
	}
	if tr.Stats().UnknownFaults != 1 {
		t.Errorf("stats = %+v", tr.Stats())
	}
}

func TestTracerChainsForeignFaults(t *testing.T) {
	s := vm.NewSpace()
	if _, err := s.Reserve("mt", 0x10_0000, 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	appCalls := 0
	tbl.Register(sig.SIGSEGV, sig.HandlerFunc(func(info *sig.Info, _ sig.Context) sig.Action {
		appCalls++
		return sig.Unhandled
	}))
	tr := NewTracer(nil, profile.New(), 1)
	tr.Install(tbl) // installed after the app handler, chains to it
	th := vm.NewThread(s, tbl)
	if _, err := th.Load8(0xdead_0000); err == nil { // unmapped: MAPERR
		t.Fatal("unmapped access should still be fatal")
	}
	if appCalls == 0 {
		t.Error("pre-existing handler was not chained")
	}
	if tr.Stats().ChainedFaults == 0 {
		t.Error("chain not counted")
	}
}

func TestTracerWrongKeyChains(t *testing.T) {
	s := vm.NewSpace()
	if _, err := s.Reserve("other", 0x10_0000, 1<<20, 5); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	tr := NewTracer(nil, profile.New(), 1) // traces key 1, not key 5
	tr.Install(tbl)
	th := vm.NewThread(s, tbl)
	th.SetRights(mpk.PermitAll.With(5, mpk.DenyAll))
	if _, err := th.Load8(0x10_0000); err == nil {
		t.Error("fault on untraced key must stay fatal")
	}
	if tr.Profile().Len() != 0 {
		t.Error("untraced key recorded")
	}
}

func TestTracerReallocCarriesID(t *testing.T) {
	_, th, tr := profilingWorld(t)
	id := profile.AllocID{Func: "buf"}
	tr.LogAlloc(0x10_0000, 32, id)
	tr.LogRealloc(0x10_0000, 0x10_1000, 128)
	if tr.Live() != 1 {
		t.Fatalf("live = %d", tr.Live())
	}
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	if _, err := th.Load8(0x10_1000 + 100); err != nil {
		t.Fatal(err)
	}
	if !tr.Profile().Contains(id) {
		t.Error("realloc'd object lost its AllocId")
	}
	// Realloc of an untracked base is a no-op, not a crash.
	tr.LogRealloc(0xaaaa, 0xbbbb, 8)
	if tr.Live() != 1 {
		t.Errorf("live after foreign realloc = %d", tr.Live())
	}
}

func TestTracerDeallocStopsTracking(t *testing.T) {
	_, th, tr := profilingWorld(t)
	id := profile.AllocID{Func: "temp"}
	tr.LogAlloc(0x10_0000, 64, id)
	tr.LogDealloc(0x10_0000)
	if tr.Live() != 0 {
		t.Fatalf("live = %d", tr.Live())
	}
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	if _, err := th.Load8(0x10_0000); err != nil {
		t.Fatal(err) // still resumes (unknown fault)
	}
	if tr.Profile().Contains(id) {
		t.Error("freed object still attributed")
	}
	st := tr.Stats()
	if st.TrackedFrees != 1 || st.UnknownFaults != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTracerManyAccessesRecordOneSite(t *testing.T) {
	_, th, tr := profilingWorld(t)
	id := profile.AllocID{Func: "hot"}
	tr.LogAlloc(0x10_0000, 4096, id)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	for i := 0; i < 50; i++ {
		if _, err := th.Load8(0x10_0000 + vm.Addr(i*64)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Profile().Len() != 1 {
		t.Errorf("profile has %d sites, want 1", tr.Profile().Len())
	}
	r, _ := tr.Profile().Get(id)
	if r.Faults != 50 {
		t.Errorf("faults = %d, want 50", r.Faults)
	}
}
