// Package provenance implements PKRU-Safe's runtime provenance tracking
// (§4.3): a metadata store mapping live heap objects to their allocation
// sites, and the profiling fault handler that records which sites are
// accessed from the untrusted compartment and single-steps past each
// faulting access.
package provenance

import (
	"sort"

	"repro/internal/profile"
	"repro/internal/vm"
)

// Entry is the runtime metadata recorded for one live allocation: the
// paper's (address, size, AllocId) tuple.
type Entry struct {
	Base vm.Addr
	Size uint64
	ID   profile.AllocID
}

// End returns the first address past the object.
func (e Entry) End() vm.Addr { return e.Base + vm.Addr(e.Size) }

// Store tracks live allocations and answers interior-pointer lookups: the
// faulting address delivered to the handler is rarely the object base, so
// Lookup must resolve any address within [Base, Base+Size).
type Store interface {
	// Track records a new live object. Tracking an overlapping object is a
	// caller bug; the new entry wins for lookups in the overlap.
	Track(e Entry)
	// Untrack removes the object based at base, returning its entry.
	Untrack(base vm.Addr) (Entry, bool)
	// Lookup resolves any address inside a live object.
	Lookup(addr vm.Addr) (Entry, bool)
	// Len returns the number of live tracked objects.
	Len() int
}

// IntervalStore is the production store: a base-sorted slice with binary
// search, giving O(log n) lookups over tens of thousands of live objects.
type IntervalStore struct {
	entries []Entry // sorted by Base
}

// NewIntervalStore returns an empty interval store.
func NewIntervalStore() *IntervalStore { return &IntervalStore{} }

// Track implements Store.
func (s *IntervalStore) Track(e Entry) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Base >= e.Base })
	if i < len(s.entries) && s.entries[i].Base == e.Base {
		s.entries[i] = e // re-track at same base (realloc-in-place)
		return
	}
	s.entries = append(s.entries, Entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// Untrack implements Store.
func (s *IntervalStore) Untrack(base vm.Addr) (Entry, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Base >= base })
	if i >= len(s.entries) || s.entries[i].Base != base {
		return Entry{}, false
	}
	e := s.entries[i]
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	return e, true
}

// Lookup implements Store.
func (s *IntervalStore) Lookup(addr vm.Addr) (Entry, bool) {
	// First entry with Base > addr; the candidate is its predecessor.
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Base > addr })
	if i == 0 {
		return Entry{}, false
	}
	e := s.entries[i-1]
	if addr < e.End() {
		return e, true
	}
	return Entry{}, false
}

// Len implements Store.
func (s *IntervalStore) Len() int { return len(s.entries) }

// LinearStore is the naive baseline kept for the metadata-store ablation
// benchmark: a flat slice scanned linearly on every lookup.
type LinearStore struct {
	entries []Entry
}

// NewLinearStore returns an empty linear store.
func NewLinearStore() *LinearStore { return &LinearStore{} }

// Track implements Store.
func (s *LinearStore) Track(e Entry) {
	for i := range s.entries {
		if s.entries[i].Base == e.Base {
			s.entries[i] = e
			return
		}
	}
	s.entries = append(s.entries, e)
}

// Untrack implements Store.
func (s *LinearStore) Untrack(base vm.Addr) (Entry, bool) {
	for i := range s.entries {
		if s.entries[i].Base == base {
			e := s.entries[i]
			s.entries[i] = s.entries[len(s.entries)-1]
			s.entries = s.entries[:len(s.entries)-1]
			return e, true
		}
	}
	return Entry{}, false
}

// Lookup implements Store.
func (s *LinearStore) Lookup(addr vm.Addr) (Entry, bool) {
	for _, e := range s.entries {
		if addr >= e.Base && addr < e.End() {
			return e, true
		}
	}
	return Entry{}, false
}

// Len implements Store.
func (s *LinearStore) Len() int { return len(s.entries) }
