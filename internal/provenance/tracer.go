package provenance

import (
	"sync"

	"repro/internal/mpk"
	"repro/internal/profile"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TracerStats counts profiler activity.
type TracerStats struct {
	TrackedAllocs   uint64 // log_alloc callbacks
	TrackedReallocs uint64 // log_realloc callbacks
	TrackedFrees    uint64 // log_dealloc callbacks
	RecordedFaults  uint64 // PKU faults attributed to a tracked object
	UnknownFaults   uint64 // PKU faults on MT with no tracked object
	ChainedFaults   uint64 // faults handed to the pre-existing handler
}

// Tracer is the dynamic-analysis runtime of §4.3: it receives the
// compiler-inserted allocation callbacks, keeps the live-object metadata
// store, and services SIGSEGV/SIGTRAP during profiling runs.
//
// The fault loop reproduces §4.3.2 exactly: on a protection-key violation
// against the trusted key it looks up the faulting object, records its
// AllocId in the profile, grants temporary full access, arms the trap
// flag, and lets the access retry; the subsequent SIGTRAP restores the
// pre-fault rights so every later untrusted access faults (and is
// recorded) too. Faults that are not MPK violations fall through to any
// previously registered handler.
type Tracer struct {
	mu         sync.Mutex
	store      Store
	prof       *profile.Profile
	trustedKey mpk.Key

	// saved pre-fault state per thread context, restored on SIGTRAP.
	saved map[sig.Context]savedState

	prevSegv sig.Handler
	prevTrap sig.Handler
	ring     *trace.Ring

	stats TracerStats

	// telemetry handles (all nil-safe; nil when no registry is attached).
	siteFaults *telemetry.CounterVec // recorded faults by allocation site
	resumeLat  *telemetry.Histogram  // fault record → single-step resume latency
}

// savedState is what onSegv stashes for the matching onTrap: the pre-fault
// rights plus the record→resume span being timed.
type savedState struct {
	pkru uint32
	span telemetry.Span
}

// NewTracer creates a tracer recording into prof. The store may be nil, in
// which case an IntervalStore is used.
func NewTracer(store Store, prof *profile.Profile, trustedKey mpk.Key) *Tracer {
	if store == nil {
		store = NewIntervalStore()
	}
	return &Tracer{
		store:      store,
		prof:       prof,
		trustedKey: trustedKey,
		saved:      make(map[sig.Context]savedState),
	}
}

// SetTelemetry attaches the tracer to a metrics registry: recorded faults
// are counted per allocation site, and each record→resume round trip is
// observed into a latency histogram. A nil registry detaches.
func (t *Tracer) SetTelemetry(reg *telemetry.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if reg == nil {
		t.siteFaults, t.resumeLat = nil, nil
		return
	}
	t.siteFaults = reg.CounterVec("pkrusafe_profiler_site_faults_total",
		"PKU faults attributed to a tracked object, by allocation site.", "site")
	t.resumeLat = reg.Histogram("pkrusafe_profiler_resume_latency_ns",
		"Latency from fault recording to the single-step resume restoring rights.", "ns")
}

// Install registers the tracer's handlers on the table, retaining any
// previously registered handlers as fallbacks (§4.3.1: "if any conflicting
// fault handlers were registered before ours, we keep a reference"). Call
// it as late as possible, after the application installs its own handlers.
func (t *Tracer) Install(table *sig.Table) {
	t.prevSegv = table.Register(sig.SIGSEGV, sig.HandlerFunc(t.onSegv))
	t.prevTrap = table.Register(sig.SIGTRAP, sig.HandlerFunc(t.onTrap))
}

// Profile returns the profile the tracer records into.
func (t *Tracer) Profile() *profile.Profile { return t.prof }

// SetTrace attaches an event ring recording fault handling (nil detaches).
func (t *Tracer) SetTrace(r *trace.Ring) { t.ring = r }

// Stats returns a snapshot of profiler counters.
func (t *Tracer) Stats() TracerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Live returns the number of currently tracked objects.
func (t *Tracer) Live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.store.Len()
}

// LogAlloc is the callback inserted after every instrumented allocation:
// it records (address, size, AllocId) in the runtime metadata.
func (t *Tracer) LogAlloc(base uint64, size uint64, id profile.AllocID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.store.Track(Entry{Base: addr(base), Size: size, ID: id})
	t.stats.TrackedAllocs++
}

// LogRealloc transfers metadata from the old to the new address, keeping
// the original AllocId: because pkalloc's realloc never changes pools,
// associating the new object with the old site remains sound (§4.3.1).
func (t *Tracer) LogRealloc(oldBase, newBase, newSize uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.TrackedReallocs++
	e, ok := t.store.Untrack(addr(oldBase))
	if !ok {
		return // object was never tracked; nothing to carry over
	}
	e.Base, e.Size = addr(newBase), newSize
	t.store.Track(e)
}

// LogDealloc drops metadata for a freed object.
func (t *Tracer) LogDealloc(base uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.store.Untrack(addr(base)); ok {
		t.stats.TrackedFrees++
	}
}

func (t *Tracer) onSegv(info *sig.Info, ctx sig.Context) sig.Action {
	if info.Code != sig.CodePKUErr || mpk.Key(info.PKey) != t.trustedKey {
		// Not an MPK violation against MT: chain to the application's own
		// handler, or decline if there is none.
		t.mu.Lock()
		t.stats.ChainedFaults++
		prev := t.prevSegv
		t.mu.Unlock()
		if prev != nil {
			return prev.Handle(info, ctx)
		}
		return sig.Unhandled
	}
	t.mu.Lock()
	if e, ok := t.store.Lookup(addr(info.Addr)); ok {
		t.prof.Add(e.ID, e.Size)
		t.stats.RecordedFaults++
		if t.siteFaults != nil {
			t.siteFaults.With(e.ID.String()).Inc()
		}
		if t.ring != nil {
			t.ring.Emit(trace.Event{Kind: trace.Record, A: uint64(e.Base), Note: e.ID.String()})
		}
	} else {
		t.stats.UnknownFaults++
	}
	if t.ring != nil {
		t.ring.Emit(trace.Event{Kind: trace.Fault, A: info.Addr, B: uint64(info.PKey)})
	}
	t.saved[ctx] = savedState{
		pkru: ctx.PKRU(),
		span: telemetry.StartSpan(t.resumeLat, nil, "profiler:resume"),
	}
	t.mu.Unlock()
	// Temporarily switch back to T and single-step the faulting access.
	ctx.SetPKRU(uint32(mpk.PermitAll))
	ctx.SetTrapFlag(true)
	return sig.Handled
}

func (t *Tracer) onTrap(info *sig.Info, ctx sig.Context) sig.Action {
	t.mu.Lock()
	prev, ok := t.saved[ctx]
	if ok {
		delete(t.saved, ctx)
	}
	prevTrap := t.prevTrap
	t.mu.Unlock()
	if !ok {
		// Not our single-step; chain.
		if prevTrap != nil {
			return prevTrap.Handle(info, ctx)
		}
		return sig.Unhandled
	}
	ctx.SetPKRU(prev.pkru)
	ctx.SetTrapFlag(false)
	prev.span.End()
	if t.ring != nil {
		t.ring.Emit(trace.Event{Kind: trace.Resume, A: info.Addr})
	}
	return sig.Handled
}

func addr(a uint64) vm.Addr { return vm.Addr(a) }
