package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/vm"
)

// Example walks the full PKRU-Safe pipeline on a two-line program: an
// untrusted library that doubles a value held in a trusted buffer.
func Example() {
	// 1. Annotate: one untrusted library (the 4 lines of developer effort).
	reg := ffi.NewRegistry()
	reg.MustLibrary("clib", ffi.Untrusted).Define("double",
		func(th *ffi.Thread, args []uint64) ([]uint64, error) {
			p := vm.Addr(args[0])
			v, err := th.Load64(p)
			if err != nil {
				return nil, err
			}
			return nil, th.Store64(p, v*2)
		})

	run := func(p *core.Program) (uint64, error) {
		buf, err := p.AllocAt(p.Site("main", 0, 0), 8)
		if err != nil {
			return 0, err
		}
		if err := p.Main().VM.Store64(buf, 21); err != nil {
			return 0, err
		}
		if _, err := p.Main().Call("clib", "double", uint64(buf)); err != nil {
			return 0, err
		}
		return p.Main().VM.Load64(buf)
	}

	// 2-3. Profile build + profiling run.
	prof, _ := core.NewProgram(reg, core.Profiling, nil)
	if _, err := run(prof); err != nil {
		fmt.Println("profiling failed:", err)
		return
	}
	recorded, _ := prof.RecordedProfile()
	fmt.Println("shared sites:", recorded.Len())

	// 4. Enforcement build consuming the profile.
	enforced, _ := core.NewProgram(reg, core.MPK, recorded)
	v, err := run(enforced)
	if err != nil {
		fmt.Println("enforced run failed:", err)
		return
	}
	fmt.Println("value:", v)
	fmt.Println("transitions:", enforced.Transitions())
	// Output:
	// shared sites: 1
	// value: 42
	// transitions: 1
}
