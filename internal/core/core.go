// Package core is the public face of the PKRU-Safe reproduction: it wires
// the simulated MPK hardware, the compartment-aware allocator, the FFI call
// gates and the provenance profiler into the four build configurations the
// paper evaluates, and exposes the allocation-site API through which an
// application's trusted code allocates.
//
// The intended workflow is the paper's four-stage pipeline (§3.1):
//
//  1. annotate: declare each unsafe library Untrusted in an ffi.Registry;
//  2. profile build: NewProgram(reg, Profiling, nil) — gates on, all heap
//     data in MT, the provenance tracer recording every cross-compartment
//     access by interposing on faults;
//  3. profiling runs: exercise the program, then RecordedProfile();
//  4. enforcement build: NewProgram(reg, MPK, prof) — allocation sites in
//     the profile are rewritten to draw from MU, everything else stays in
//     the now-inaccessible-from-U trusted pool.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ffi"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/sig"
	"repro/internal/trace"
	"repro/internal/vm"
)

// BuildConfig selects which parts of PKRU-Safe's instrumentation a build
// enables, matching the configurations of §5.3 plus the profiling build.
type BuildConfig uint8

const (
	// Base: unmodified program — no heap split, no gates. The baseline.
	Base BuildConfig = iota
	// Alloc: pkalloc with the profile applied (shared sites served from
	// MU's slower allocator) but no call gates. Isolates allocator cost.
	Alloc
	// MPK: the full system — profile applied and call gates enforcing the
	// compartment boundary.
	MPK
	// Profiling: the instrumented profile build — gates on so untrusted
	// accesses to MT fault, every trusted allocation tracked, faults
	// recorded into a fresh profile and single-stepped past.
	Profiling
)

func (c BuildConfig) String() string {
	switch c {
	case Base:
		return "base"
	case Alloc:
		return "alloc"
	case MPK:
		return "mpk"
	case Profiling:
		return "profiling"
	default:
		return fmt.Sprintf("BuildConfig(%d)", uint8(c))
	}
}

func (c BuildConfig) appliesProfile() bool { return c == Alloc || c == MPK }
func (c BuildConfig) gatesOn() bool        { return c == MPK || c == Profiling }

// Site is one registered allocation call site in trusted code. The
// enforcement build decides once, at registration, which pool the site
// draws from — the analogue of rewriting the allocator call in the IR.
type Site struct {
	ID   profile.AllocID
	Pool pkalloc.Compartment

	mu     sync.Mutex
	allocs uint64
	bytes  uint64
}

// Allocs returns how many allocations the site has served.
func (s *Site) Allocs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocs
}

// Bytes returns how many bytes the site has served.
func (s *Site) Bytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Program is one built instance of an application under a configuration.
type Program struct {
	cfg     BuildConfig
	space   *vm.Space
	alloc   *pkalloc.Allocator
	sigs    *sig.Table
	runtime *ffi.Runtime
	tracer  *provenance.Tracer
	applied *profile.Profile // profile consumed by Alloc/MPK builds

	mu    sync.Mutex
	sites map[profile.AllocID]*Site

	main *ffi.Thread
}

// Options tunes NewProgram beyond the defaults.
type Options struct {
	// AllocConfig overrides pkalloc pool placement (zero fields default).
	AllocConfig pkalloc.Config
	// Store overrides the provenance metadata store (Profiling builds).
	Store provenance.Store
	// GateCost overrides the simulated per-WRPKRU cost (spin iterations).
	// Nil keeps ffi.DefaultGateCost; a pointer to 0 makes gates free (for
	// ablations).
	GateCost *int
	// Trace, when non-nil, records gate traversals and (in Profiling
	// builds) fault handling into the ring for post-mortem dumps.
	Trace *trace.Ring
}

// NewProgram builds a program from annotated libraries under the given
// configuration. Alloc and MPK builds require the profile produced by a
// prior Profiling run; Base and Profiling builds must pass nil.
func NewProgram(reg *ffi.Registry, cfg BuildConfig, prof *profile.Profile, opts ...Options) (*Program, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if cfg.appliesProfile() && prof == nil {
		return nil, fmt.Errorf("core: %v build requires a profile; run a Profiling build first", cfg)
	}
	if !cfg.appliesProfile() && prof != nil {
		return nil, fmt.Errorf("core: %v build does not consume a profile", cfg)
	}
	space := vm.NewSpace()
	acfg := opt.AllocConfig
	acfg.Space = space
	alloc, err := pkalloc.New(acfg)
	if err != nil {
		return nil, err
	}
	sigs := new(sig.Table)
	mode := ffi.GatesOff
	if cfg.gatesOn() {
		mode = ffi.GatesOn
	}
	p := &Program{
		cfg:     cfg,
		space:   space,
		alloc:   alloc,
		sigs:    sigs,
		runtime: ffi.NewRuntime(reg, alloc, sigs, mode),
		applied: prof,
		sites:   make(map[profile.AllocID]*Site),
	}
	if opt.GateCost != nil {
		p.runtime.SetGateCost(*opt.GateCost)
	}
	if opt.Trace != nil {
		p.runtime.SetTrace(opt.Trace)
	}
	if cfg == Profiling {
		p.tracer = provenance.NewTracer(opt.Store, profile.New(), alloc.TrustedKey())
		if opt.Trace != nil {
			p.tracer.SetTrace(opt.Trace)
		}
		// Installed immediately; applications that register their own
		// SIGSEGV handlers first are chained to automatically.
		p.tracer.Install(sigs)
	}
	p.main = p.runtime.NewThread()
	return p, nil
}

// Config returns the build configuration.
func (p *Program) Config() BuildConfig { return p.cfg }

// Space returns the program's address space.
func (p *Program) Space() *vm.Space { return p.space }

// Allocator returns the program's pkalloc instance.
func (p *Program) Allocator() *pkalloc.Allocator { return p.alloc }

// Signals returns the program's signal table.
func (p *Program) Signals() *sig.Table { return p.sigs }

// Runtime returns the FFI runtime.
func (p *Program) Runtime() *ffi.Runtime { return p.runtime }

// Main returns the program's initial thread.
func (p *Program) Main() *ffi.Thread { return p.main }

// NewThread mints an additional execution context.
func (p *Program) NewThread() *ffi.Thread { return p.runtime.NewThread() }

// Tracer returns the provenance tracer (Profiling builds only, else nil).
func (p *Program) Tracer() *provenance.Tracer { return p.tracer }

// RecordedProfile returns the profile collected by a Profiling build.
func (p *Program) RecordedProfile() (*profile.Profile, error) {
	if p.tracer == nil {
		return nil, errors.New("core: RecordedProfile on a non-profiling build")
	}
	return p.tracer.Profile(), nil
}

// Site registers (or returns) the allocation site identified by the
// (function, block, site) tuple. On Alloc/MPK builds the pool decision is
// made here, once: sites present in the applied profile draw from MU.
func (p *Program) Site(fn string, block, site uint32) *Site {
	id := profile.AllocID{Func: fn, Block: block, Site: site}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.sites[id]; ok {
		return s
	}
	pool := pkalloc.Trusted
	if p.cfg.appliesProfile() && p.applied.Contains(id) {
		pool = pkalloc.Untrusted
	}
	s := &Site{ID: id, Pool: pool}
	p.sites[id] = s
	return s
}

// AllocAt serves an allocation from a registered site, routing to the pool
// the build decided and feeding the provenance tracer in Profiling builds.
func (p *Program) AllocAt(s *Site, size uint64) (vm.Addr, error) {
	addr, err := p.alloc.AllocIn(s.Pool, size)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.allocs++
	s.bytes += size
	s.mu.Unlock()
	if p.tracer != nil && s.Pool == pkalloc.Trusted {
		p.tracer.LogAlloc(uint64(addr), size, s.ID)
	}
	return addr, nil
}

// Realloc resizes an allocation (pool-preserving) and keeps provenance
// metadata attached to the object's original allocation site.
func (p *Program) Realloc(addr vm.Addr, newSize uint64) (vm.Addr, error) {
	newAddr, err := p.alloc.Realloc(addr, newSize)
	if err != nil {
		return 0, err
	}
	if p.tracer != nil {
		p.tracer.LogRealloc(uint64(addr), uint64(newAddr), newSize)
	}
	return newAddr, nil
}

// Free releases an allocation and drops its provenance metadata.
func (p *Program) Free(addr vm.Addr) error {
	if p.tracer != nil {
		p.tracer.LogDealloc(uint64(addr))
	}
	return p.alloc.Free(addr)
}

// SiteReport summarizes allocation-site placement, the source of the
// paper's "274 of Servo's 12088 allocation sites" statistic and its %MU
// column. UntrustedShare covers *instrumented sites only* — the trusted
// program's own heap traffic, the paper's Rust-side view — not the
// untrusted library's private mallocs, which always live in MU.
type SiteReport struct {
	TotalSites     int
	UntrustedSites int
	TotalAllocs    uint64
	UntrustedShare float64 // fraction of site-allocated bytes served from MU
}

// Report computes the site placement summary for this build.
func (p *Program) Report() SiteReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	var r SiteReport
	var tBytes, uBytes uint64
	r.TotalSites = len(p.sites)
	for _, s := range p.sites {
		if s.Pool == pkalloc.Untrusted {
			r.UntrustedSites++
			uBytes += s.Bytes()
		} else {
			tBytes += s.Bytes()
		}
		r.TotalAllocs += s.Allocs()
	}
	if tBytes+uBytes > 0 {
		r.UntrustedShare = float64(uBytes) / float64(tBytes+uBytes)
	}
	return r
}

// Sites returns the registered sites sorted by id (for reports and tests).
func (p *Program) Sites() []*Site {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Site, 0, len(p.sites))
	for _, s := range p.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.String() < out[j].ID.String() })
	return out
}

// Transitions returns the number of compartment transitions performed.
func (p *Program) Transitions() uint64 { return p.runtime.Transitions() }
