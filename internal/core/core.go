// Package core is the public face of the PKRU-Safe reproduction: it wires
// the simulated MPK hardware, the compartment-aware allocator, the FFI call
// gates and the provenance profiler into the four build configurations the
// paper evaluates, and exposes the allocation-site API through which an
// application's trusted code allocates.
//
// The intended workflow is the paper's four-stage pipeline (§3.1):
//
//  1. annotate: declare each unsafe library Untrusted in an ffi.Registry;
//  2. profile build: NewProgram(reg, Profiling, nil) — gates on, all heap
//     data in MT, the provenance tracer recording every cross-compartment
//     access by interposing on faults;
//  3. profiling runs: exercise the program, then RecordedProfile();
//  4. enforcement build: NewProgram(reg, MPK, prof) — allocation sites in
//     the profile are rewritten to draw from MU, everything else stays in
//     the now-inaccessible-from-U trusted pool.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/provenance"
	"repro/internal/sig"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// BuildConfig selects which parts of PKRU-Safe's instrumentation a build
// enables, matching the configurations of §5.3 plus the profiling build.
type BuildConfig uint8

const (
	// Base: unmodified program — no heap split, no gates. The baseline.
	Base BuildConfig = iota
	// Alloc: pkalloc with the profile applied (shared sites served from
	// MU's slower allocator) but no call gates. Isolates allocator cost.
	Alloc
	// MPK: the full system — profile applied and call gates enforcing the
	// compartment boundary.
	MPK
	// Profiling: the instrumented profile build — gates on so untrusted
	// accesses to MT fault, every trusted allocation tracked, faults
	// recorded into a fresh profile and single-stepped past.
	Profiling
)

func (c BuildConfig) String() string {
	switch c {
	case Base:
		return "base"
	case Alloc:
		return "alloc"
	case MPK:
		return "mpk"
	case Profiling:
		return "profiling"
	default:
		return fmt.Sprintf("BuildConfig(%d)", uint8(c))
	}
}

func (c BuildConfig) appliesProfile() bool { return c == Alloc || c == MPK }
func (c BuildConfig) gatesOn() bool        { return c == MPK || c == Profiling }

// Site is one registered allocation call site in trusted code. The
// enforcement build decides once, at registration, which pool the site
// draws from — the analogue of rewriting the allocator call in the IR.
type Site struct {
	ID   profile.AllocID
	Pool pkalloc.Compartment

	mu     sync.Mutex
	allocs uint64
	bytes  uint64

	// Registry counters, resolved once at registration so the per-alloc
	// path never does a label lookup. Nil (a no-op) without telemetry.
	mAllocs *telemetry.Counter
	mBytes  *telemetry.Counter
}

// Allocs returns how many allocations the site has served.
func (s *Site) Allocs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocs
}

// Bytes returns how many bytes the site has served.
func (s *Site) Bytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Program is one built instance of an application under a configuration.
type Program struct {
	cfg     BuildConfig
	space   *vm.Space
	alloc   *pkalloc.Allocator
	sigs    *sig.Table
	runtime *ffi.Runtime
	tracer  *provenance.Tracer
	rec     *obs.Recorder         // fault forensics, nil unless Options.Forensics
	sup     *supervise.Supervisor // nil unless Options.Supervision enables recovery
	sampler *profstore.Sampler    // crossing sampler, nil unless Options.Crossings
	gtrace  *gatetrace.Tracer     // request-scoped tracing, nil unless Options.Tracing
	applied *profile.Profile      // profile consumed by Alloc/MPK builds

	mu    sync.Mutex
	sites map[profile.AllocID]*Site

	main *ffi.Thread

	tel *programTelemetry
}

// programTelemetry holds the registry plus the handles the program's own
// paths report into. Nil when no registry is attached.
type programTelemetry struct {
	reg        *telemetry.Registry
	siteAllocs *telemetry.CounterVec // allocations by site and pool
	siteBytes  *telemetry.CounterVec // bytes by site and pool
	allocLat   map[pkalloc.Compartment]*telemetry.Histogram
	freeLat    map[pkalloc.Compartment]*telemetry.Histogram
}

// poolName is the label value for a compartment, matching the paper's
// heap names.
func poolName(c pkalloc.Compartment) string {
	if c == pkalloc.Untrusted {
		return "MU"
	}
	return "MT"
}

// Options tunes NewProgram beyond the defaults.
type Options struct {
	// AllocConfig overrides pkalloc pool placement (zero fields default).
	AllocConfig pkalloc.Config
	// Store overrides the provenance metadata store (Profiling builds).
	Store provenance.Store
	// GateCost overrides the simulated per-WRPKRU cost (spin iterations).
	// Nil keeps ffi.DefaultGateCost; a pointer to 0 makes gates free (for
	// ablations).
	GateCost *int
	// Trace, when non-nil, records gate traversals and (in Profiling
	// builds) fault handling into the ring for post-mortem dumps.
	Trace *trace.Ring
	// Telemetry, when non-nil, attaches every layer of the program — VM
	// access/fault counters, gate crossings and latencies, allocation
	// sites, heap gauges, the profiler — to the metrics registry.
	Telemetry *telemetry.Registry
	// Forensics attaches an obs.Recorder that shadows allocation sites
	// and observes fault delivery so a fatal MPK violation can be turned
	// into a structured crash report (Program.Forensics().Capture).
	Forensics bool
	// Supervision configures the compartment fault supervisor. The zero
	// value (policy Abort) keeps the paper's fail-stop semantics: no
	// recovery points, failures kill the run. Any other policy makes
	// supervised cross-compartment calls recoverable; the Heal policy
	// implies Forensics, since healing resolves fault addresses through
	// the forensics shadow store.
	Supervision supervise.Config
	// Crossings attaches a boundary-crossing sampler: every forward gate
	// traversal's arguments are resolved through the forensics shadow
	// store and attributed to their allocation sites (implies Forensics).
	// The observations feed the continuous-profiling plane — telemetry
	// (pkrusafe_profile_*), trace Crossing events and, via FeedStore, the
	// generational profile store's re-tighten bookkeeping.
	Crossings bool
	// CrossingInterval samples every Nth forward crossing; <= 1 keeps all.
	CrossingInterval int
	// Tracing, when non-nil, attaches the request-scoped gate tracer:
	// callers open a gatetrace.Context per request (Tracing.Start) and
	// attach it to the serving thread (ffi.Thread.SetTraceContext); gate
	// traversals, supervisor recovery actions and vkey evictions then land
	// on that request's trace. The tracer's histograms register on
	// whatever registry the tracer was built with — pass the same registry
	// as Options.Telemetry to keep one export plane.
	Tracing *gatetrace.Tracer
}

// NewProgram builds a program from annotated libraries under the given
// configuration. Alloc and MPK builds require the profile produced by a
// prior Profiling run; Base and Profiling builds must pass nil.
func NewProgram(reg *ffi.Registry, cfg BuildConfig, prof *profile.Profile, opts ...Options) (*Program, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if cfg.appliesProfile() && prof == nil {
		return nil, fmt.Errorf("core: %v build requires a profile; run a Profiling build first", cfg)
	}
	if !cfg.appliesProfile() && prof != nil {
		return nil, fmt.Errorf("core: %v build does not consume a profile", cfg)
	}
	space := vm.NewSpace()
	acfg := opt.AllocConfig
	acfg.Space = space
	alloc, err := pkalloc.New(acfg)
	if err != nil {
		return nil, err
	}
	sigs := new(sig.Table)
	mode := ffi.GatesOff
	if cfg.gatesOn() {
		mode = ffi.GatesOn
	}
	p := &Program{
		cfg:     cfg,
		space:   space,
		alloc:   alloc,
		sigs:    sigs,
		runtime: ffi.NewRuntime(reg, alloc, sigs, mode),
		applied: prof,
		sites:   make(map[profile.AllocID]*Site),
	}
	if opt.GateCost != nil {
		p.runtime.SetGateCost(*opt.GateCost)
	}
	if opt.Trace != nil {
		p.runtime.SetTrace(opt.Trace)
	}
	if opt.Telemetry != nil {
		p.attachTelemetry(opt.Telemetry)
	}
	if opt.Supervision.Policy == supervise.Heal || opt.Crossings {
		// Healing and crossing attribution both resolve addresses to
		// allocation sites through the forensics shadow store, so the
		// recorder must be present.
		opt.Forensics = true
	}
	if opt.Forensics {
		// The recorder keeps its own metadata store: Options.Store is the
		// profiler's, and sharing one instance across the tracer's and the
		// recorder's locks would race.
		p.rec = obs.NewRecorder(obs.Config{
			Space:       space,
			TrustedKey:  alloc.TrustedKey(),
			BuildConfig: cfg.String(),
			Ring:        opt.Trace,
		})
		// Installed before the tracer so repairing handlers dispatch
		// first; the recorder only observes faults nothing else claims.
		p.rec.Install(sigs)
	}
	if cfg == Profiling {
		p.tracer = provenance.NewTracer(opt.Store, profile.New(), alloc.TrustedKey())
		if opt.Trace != nil {
			p.tracer.SetTrace(opt.Trace)
		}
		if opt.Telemetry != nil {
			p.tracer.SetTelemetry(opt.Telemetry)
		}
		// Installed immediately; applications that register their own
		// SIGSEGV handlers first are chained to automatically.
		p.tracer.Install(sigs)
	}
	if opt.Crossings {
		p.sampler = profstore.NewSampler(profstore.SamplerConfig{
			Resolve: func(addr uint64) (profile.AllocID, uint64, bool) {
				e, ok := p.rec.Lookup(addr)
				return e.ID, e.Size, ok
			},
			Interval:  opt.CrossingInterval,
			Telemetry: opt.Telemetry,
			Ring:      opt.Trace,
		})
		p.runtime.SetCrossingSink(p.sampler)
	}
	if opt.Supervision.Policy != supervise.Abort {
		p.sup = supervise.New(opt.Supervision, supervise.Deps{
			Alloc:     alloc,
			Recorder:  p.rec,
			Ring:      opt.Trace,
			Telemetry: opt.Telemetry,
		})
	}
	p.gtrace = opt.Tracing
	p.main = p.runtime.NewThread()
	p.bindForensics(p.main)
	return p, nil
}

// bindForensics associates a thread's fault-delivery context with its
// compartment view so crash reports can name the active compartment.
func (p *Program) bindForensics(t *ffi.Thread) {
	if p.rec != nil {
		p.rec.BindThread(t.VM, threadState{t})
	}
}

// threadState adapts an ffi.Thread to the recorder's view of it.
type threadState struct{ t *ffi.Thread }

func (s threadState) CompartmentName() string { return s.t.CurrentTrust().String() }
func (s threadState) GateDepth() int          { return s.t.Depth() }

// attachTelemetry registers the program's metric families on reg and wires
// the runtime (threads minted afterwards inherit VM counter promotion).
func (p *Program) attachTelemetry(reg *telemetry.Registry) {
	p.runtime.SetTelemetry(reg)
	tel := &programTelemetry{
		reg: reg,
		siteAllocs: reg.CounterVec("pkrusafe_site_allocs_total",
			"Allocations served per registered allocation site.", "site", "pool"),
		siteBytes: reg.CounterVec("pkrusafe_site_bytes_total",
			"Bytes served per registered allocation site.", "site", "pool"),
		allocLat: make(map[pkalloc.Compartment]*telemetry.Histogram),
		freeLat:  make(map[pkalloc.Compartment]*telemetry.Histogram),
	}
	allocLat := reg.HistogramVec("pkrusafe_heap_alloc_latency_ns",
		"Site allocation latency inside the pkalloc pools.", "ns", "pool")
	freeLat := reg.HistogramVec("pkrusafe_heap_free_latency_ns",
		"Free latency inside the pkalloc pools.", "ns", "pool")
	gauges := reg.GaugeVec("pkrusafe_heap", "Allocator activity by pool (see field label).", "pool", "field")
	for _, c := range []pkalloc.Compartment{pkalloc.Trusted, pkalloc.Untrusted} {
		c := c
		name := poolName(c)
		tel.allocLat[c] = allocLat.With(name)
		tel.freeLat[c] = freeLat.With(name)
		stats := func() heap.Stats { return p.poolStats(c) }
		gauges.WithFunc(func() float64 { return float64(stats().BytesLive) }, name, "bytes_live")
		gauges.WithFunc(func() float64 { return float64(stats().BytesTotal) }, name, "bytes_total")
		gauges.WithFunc(func() float64 { return float64(stats().Allocs) }, name, "allocs")
		gauges.WithFunc(func() float64 { return float64(stats().Frees) }, name, "frees")
		gauges.WithFunc(func() float64 { return float64(stats().PagesMapped) }, name, "pages_mapped")
		gauges.WithFunc(func() float64 { return float64(stats().ReuseHits) }, name, "reuse_hits")
		gauges.WithFunc(func() float64 { return float64(stats().FreshAllocs) }, name, "fresh_allocs")
		gauges.WithFunc(func() float64 { return float64(stats().PageReuse) }, name, "page_reuse")
		gauges.WithFunc(func() float64 { return float64(stats().PageFresh) }, name, "page_fresh")
	}
	p.tel = tel
}

// poolStats samples one compartment's allocator stats.
func (p *Program) poolStats(c pkalloc.Compartment) heap.Stats {
	s := p.alloc.Stats()
	if c == pkalloc.Untrusted {
		return s.Untrusted
	}
	return s.Trusted
}

// Telemetry returns the attached metrics registry (nil if none).
func (p *Program) Telemetry() *telemetry.Registry {
	if p.tel == nil {
		return nil
	}
	return p.tel.reg
}

// Config returns the build configuration.
func (p *Program) Config() BuildConfig { return p.cfg }

// Space returns the program's address space.
func (p *Program) Space() *vm.Space { return p.space }

// Allocator returns the program's pkalloc instance.
func (p *Program) Allocator() *pkalloc.Allocator { return p.alloc }

// Signals returns the program's signal table.
func (p *Program) Signals() *sig.Table { return p.sigs }

// Runtime returns the FFI runtime.
func (p *Program) Runtime() *ffi.Runtime { return p.runtime }

// Main returns the program's initial thread.
func (p *Program) Main() *ffi.Thread { return p.main }

// NewThread mints an additional execution context.
func (p *Program) NewThread() *ffi.Thread {
	t := p.runtime.NewThread()
	p.bindForensics(t)
	return t
}

// Tracer returns the provenance tracer (Profiling builds only, else nil).
func (p *Program) Tracer() *provenance.Tracer { return p.tracer }

// Forensics returns the fault forensics recorder, or nil when the build
// was created without Options.Forensics. The nil recorder is safe to use.
func (p *Program) Forensics() *obs.Recorder { return p.rec }

// Supervisor returns the compartment fault supervisor, or nil when the
// build keeps the default Abort policy. The nil supervisor is safe to
// use: its Call/Shield degrade to plain calls.
func (p *Program) Supervisor() *supervise.Supervisor { return p.sup }

// Crossings returns the boundary-crossing sampler, or nil when the build
// was created without Options.Crossings. The nil sampler is safe to use.
func (p *Program) Crossings() *profstore.Sampler { return p.sampler }

// Tracing returns the request-scoped gate tracer, or nil when the build
// was created without Options.Tracing. The nil tracer is safe to use.
func (p *Program) Tracing() *gatetrace.Tracer { return p.gtrace }

// RecordedProfile returns the profile collected by a Profiling build.
func (p *Program) RecordedProfile() (*profile.Profile, error) {
	if p.tracer == nil {
		return nil, errors.New("core: RecordedProfile on a non-profiling build")
	}
	return p.tracer.Profile(), nil
}

// Site registers (or returns) the allocation site identified by the
// (function, block, site) tuple. On Alloc/MPK builds the pool decision is
// made here, once: sites present in the applied profile draw from MU.
func (p *Program) Site(fn string, block, site uint32) *Site {
	id := profile.AllocID{Func: fn, Block: block, Site: site}
	pool := pkalloc.Trusted
	if p.cfg.appliesProfile() && p.applied.Contains(id) {
		pool = pkalloc.Untrusted
	}
	return p.site(id, pool)
}

// UntrustedSite registers (or returns) an allocation site whose pool is MU
// regardless of the profile — an explicit ualloc/usalloc in the source, as
// opposed to a profile-rewritten alloc (which Site classifies itself).
func (p *Program) UntrustedSite(fn string, block, site uint32) *Site {
	return p.site(profile.AllocID{Func: fn, Block: block, Site: site}, pkalloc.Untrusted)
}

func (p *Program) site(id profile.AllocID, pool pkalloc.Compartment) *Site {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.sites[id]; ok {
		return s
	}
	s := &Site{ID: id, Pool: pool}
	if tel := p.tel; tel != nil {
		s.mAllocs = tel.siteAllocs.With(id.String(), poolName(pool))
		s.mBytes = tel.siteBytes.With(id.String(), poolName(pool))
	}
	p.sites[id] = s
	return s
}

// AllocAt serves an allocation from a registered site, routing to the pool
// the build decided and feeding the provenance tracer in Profiling builds.
// A site the supervisor has healed draws from MU even though it was
// registered trusted — the allocator-call rewrite a profiler re-run would
// have produced, applied at runtime.
func (p *Program) AllocAt(s *Site, size uint64) (vm.Addr, error) {
	pool := s.Pool
	if pool == pkalloc.Trusted && p.sup.Healed(s.ID) {
		pool = pkalloc.Untrusted
	}
	var sp telemetry.Span
	if tel := p.tel; tel != nil {
		sp = telemetry.StartSpan(tel.allocLat[pool], nil, "heap:alloc")
	}
	addr, err := p.alloc.AllocIn(pool, size)
	sp.End()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.allocs++
	s.bytes += size
	s.mu.Unlock()
	s.mAllocs.Inc()
	s.mBytes.Add(size)
	if p.tracer != nil && pool == pkalloc.Trusted {
		p.tracer.LogAlloc(uint64(addr), size, s.ID)
	}
	p.rec.LogAlloc(uint64(addr), size, s.ID)
	return addr, nil
}

// Realloc resizes an allocation (pool-preserving) and keeps provenance
// metadata attached to the object's original allocation site.
func (p *Program) Realloc(addr vm.Addr, newSize uint64) (vm.Addr, error) {
	newAddr, err := p.alloc.Realloc(addr, newSize)
	if err != nil {
		return 0, err
	}
	if p.tracer != nil {
		p.tracer.LogRealloc(uint64(addr), uint64(newAddr), newSize)
	}
	p.rec.LogRealloc(uint64(addr), uint64(newAddr), newSize)
	return newAddr, nil
}

// Free releases an allocation and drops its provenance metadata.
func (p *Program) Free(addr vm.Addr) error {
	if p.tracer != nil {
		p.tracer.LogDealloc(uint64(addr))
	}
	p.rec.LogDealloc(uint64(addr))
	if tel := p.tel; tel != nil {
		pool, _ := p.alloc.CompartmentOf(addr)
		sp := telemetry.StartSpan(tel.freeLat[pool], nil, "heap:free")
		err := p.alloc.Free(addr)
		sp.End()
		return err
	}
	return p.alloc.Free(addr)
}

// SiteReport summarizes allocation-site placement, the source of the
// paper's "274 of Servo's 12088 allocation sites" statistic and its %MU
// column. UntrustedShare covers *instrumented sites only* — the trusted
// program's own heap traffic, the paper's Rust-side view — not the
// untrusted library's private mallocs, which always live in MU.
type SiteReport struct {
	TotalSites     int
	UntrustedSites int
	TotalAllocs    uint64
	UntrustedShare float64 // fraction of site-allocated bytes served from MU
}

// Report computes the site placement summary for this build.
func (p *Program) Report() SiteReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	var r SiteReport
	var tBytes, uBytes uint64
	r.TotalSites = len(p.sites)
	for _, s := range p.sites {
		if s.Pool == pkalloc.Untrusted {
			r.UntrustedSites++
			uBytes += s.Bytes()
		} else {
			tBytes += s.Bytes()
		}
		r.TotalAllocs += s.Allocs()
	}
	if tBytes+uBytes > 0 {
		r.UntrustedShare = float64(uBytes) / float64(tBytes+uBytes)
	}
	return r
}

// Sites returns the registered sites sorted by id (for reports and tests).
func (p *Program) Sites() []*Site {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Site, 0, len(p.sites))
	for _, s := range p.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.String() < out[j].ID.String() })
	return out
}

// Transitions returns the number of compartment transitions performed.
func (p *Program) Transitions() uint64 { return p.runtime.Transitions() }
