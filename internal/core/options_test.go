package core

import (
	"testing"

	"repro/internal/ffi"
	"repro/internal/pkalloc"
	"repro/internal/vm"
)

func TestGateCostOption(t *testing.T) {
	reg := ffi.NewRegistry()
	p, err := NewProgram(reg, Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Runtime().GateCost(); got != ffi.DefaultGateCost {
		t.Errorf("default gate cost = %d, want %d", got, ffi.DefaultGateCost)
	}
	zero := 0
	p2, err := NewProgram(reg, Base, nil, Options{GateCost: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Runtime().GateCost(); got != 0 {
		t.Errorf("gate cost override = %d, want 0", got)
	}
	p2.Runtime().SetGateCost(-5)
	if got := p2.Runtime().GateCost(); got != 0 {
		t.Errorf("negative gate cost not clamped: %d", got)
	}
}

func TestAllocConfigOption(t *testing.T) {
	reg := ffi.NewRegistry()
	p, err := NewProgram(reg, Base, nil, Options{
		AllocConfig: pkalloc.Config{
			TrustedBase: 0x3000_0000_0000,
			TrustedSize: 1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := p.Allocator().TrustedRegion()
	if r.Base != 0x3000_0000_0000 || r.Size != 1<<30 {
		t.Errorf("trusted region = %+v", r)
	}
	// Allocations land in the overridden region.
	s := p.Site("m", 0, 0)
	addr, err := p.AllocAt(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(vm.Addr(addr)) {
		t.Errorf("allocation %v outside overridden region", addr)
	}
}
