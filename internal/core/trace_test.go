package core

import (
	"testing"

	"repro/internal/ffi"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TestTraceCapturesCrashContext: the event ring attached to a program
// records the gate entry and (during profiling) the fault/record/resume
// sequence — the post-mortem a developer reads after a missed-profile
// crash.
func TestTraceCapturesCrashContext(t *testing.T) {
	reg := ffi.NewRegistry()
	reg.MustLibrary("clib", ffi.Untrusted).Define("touch", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		v, err := th.Load64(vm.Addr(args[0]))
		return []uint64{v}, err
	})
	ring := trace.NewRing(32)
	prog, err := NewProgram(reg, Profiling, nil, Options{Trace: ring})
	if err != nil {
		t.Fatal(err)
	}
	site := prog.Site("main", 0, 0)
	buf, err := prog.AllocAt(site, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Main().Call("clib", "touch", uint64(buf)); err != nil {
		t.Fatal(err)
	}
	var kinds []trace.Kind
	for _, e := range ring.Snapshot() {
		kinds = append(kinds, e.Kind)
	}
	want := []trace.Kind{trace.GateEnter, trace.Record, trace.Fault, trace.Resume, trace.GateExit}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// The record event names the allocation site.
	if note := ring.Snapshot()[1].Note; note != "main@0.0" {
		t.Errorf("record note = %q", note)
	}
}

// TestTraceOnEnforcedCrash: in an MPK build the ring retains the gate
// entry that preceded the fatal access.
func TestTraceOnEnforcedCrash(t *testing.T) {
	reg := ffi.NewRegistry()
	reg.MustLibrary("clib", ffi.Untrusted).Define("touch", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		v, err := th.Load64(vm.Addr(args[0]))
		return []uint64{v}, err
	})
	ring := trace.NewRing(32)
	prog, err := NewProgram(reg, MPK, profile.New(), Options{Trace: ring})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := prog.AllocAt(prog.Site("main", 0, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Main().Call("clib", "touch", uint64(buf)); err == nil {
		t.Fatal("expected crash")
	}
	snap := ring.Snapshot()
	if len(snap) < 1 || snap[0].Kind != trace.GateEnter {
		t.Errorf("crash trace = %v, want leading gate-enter", snap)
	}
}
