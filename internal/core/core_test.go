package core

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/ffi"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/vm"
)

// buildQuickstartRegistry assembles the E1 minimal example: a trusted app
// that allocates a buffer and passes it to an untrusted library which
// writes 1337 into it.
func buildQuickstartRegistry(t *testing.T) *ffi.Registry {
	t.Helper()
	reg := ffi.NewRegistry()
	lib := reg.MustLibrary("clib", ffi.Untrusted)
	lib.Define("write_1337", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		if err := th.Store64(vm.Addr(args[0]), 1337); err != nil {
			return nil, err
		}
		return nil, nil
	})
	lib.Define("read_val", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		v, err := th.Load64(vm.Addr(args[0]))
		return []uint64{v}, err
	})
	return reg
}

func TestNewProgramValidation(t *testing.T) {
	reg := ffi.NewRegistry()
	if _, err := NewProgram(reg, MPK, nil); err == nil {
		t.Error("MPK build without profile accepted")
	}
	if _, err := NewProgram(reg, Alloc, nil); err == nil {
		t.Error("Alloc build without profile accepted")
	}
	if _, err := NewProgram(reg, Base, profile.New()); err == nil {
		t.Error("Base build with profile accepted")
	}
	if _, err := NewProgram(reg, Profiling, profile.New()); err == nil {
		t.Error("Profiling build with profile accepted")
	}
	p, err := NewProgram(reg, Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RecordedProfile(); err == nil {
		t.Error("RecordedProfile on base build accepted")
	}
}

func TestConfigStrings(t *testing.T) {
	for c, want := range map[BuildConfig]string{
		Base: "base", Alloc: "alloc", MPK: "mpk", Profiling: "profiling",
		BuildConfig(9): "BuildConfig(9)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// TestE1Pipeline walks the full four-stage pipeline on the quickstart
// program, asserting each step's observable behaviour from the artifact
// appendix: step 1 faults, step 2 profiles, step 3 shares and prints 1337.
func TestE1Pipeline(t *testing.T) {
	reg := buildQuickstartRegistry(t)

	// Step 1: enforcement with an EMPTY profile — the untrusted write to a
	// trusted allocation must crash.
	step1, err := NewProgram(reg, MPK, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	site1 := step1.Site("main", 0, 0)
	buf1, err := step1.AllocAt(site1, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = step1.Main().Call("clib", "write_1337", uint64(buf1))
	var f *vm.Fault
	if !errors.As(err, &f) {
		t.Fatalf("step 1: expected MPK fault, got %v", err)
	}

	// Step 2: profiling build — same program, faults recorded, execution
	// completes, and the profile contains the allocation site.
	step2, err := NewProgram(reg, Profiling, nil)
	if err != nil {
		t.Fatal(err)
	}
	site2 := step2.Site("main", 0, 0)
	buf2, err := step2.AllocAt(site2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := step2.Main().Call("clib", "write_1337", uint64(buf2)); err != nil {
		t.Fatalf("step 2: profiling run must complete: %v", err)
	}
	v, err := step2.Main().VM.Load64(buf2)
	if err != nil || v != 1337 {
		t.Fatalf("step 2: value = %d, %v", v, err)
	}
	prof, err := step2.RecordedProfile()
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Contains(site2.ID) {
		t.Fatal("step 2: profile missing the shared allocation site")
	}

	// Step 3: enforcement with the recorded profile — the site now
	// allocates from MU, the untrusted write succeeds, value is 1337.
	step3, err := NewProgram(reg, MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	site3 := step3.Site("main", 0, 0)
	if site3.Pool != pkalloc.Untrusted {
		t.Fatalf("step 3: shared site placed in %v", site3.Pool)
	}
	buf3, err := step3.AllocAt(site3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := step3.Main().VM.Store64(buf3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := step3.Main().Call("clib", "write_1337", uint64(buf3)); err != nil {
		t.Fatalf("step 3: shared write failed: %v", err)
	}
	res, err := step3.Main().Call("clib", "read_val", uint64(buf3))
	if err != nil || res[0] != 1337 {
		t.Fatalf("step 3: read back %v, %v; want 1337", res, err)
	}

	// A second, never-shared site must remain trusted and protected.
	priv := step3.Site("main", 0, 1)
	if priv.Pool != pkalloc.Trusted {
		t.Fatalf("unshared site placed in %v", priv.Pool)
	}
	bufP, err := step3.AllocAt(priv, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := step3.Main().Call("clib", "write_1337", uint64(bufP)); err == nil {
		t.Fatal("write to unshared trusted allocation must fault")
	}
}

func TestSiteIdempotentAndReport(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	prof := profile.New()
	prof.Add(profile.AllocID{Func: "f", Block: 1, Site: 0}, 8)
	p, err := NewProgram(reg, Alloc, prof)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Site("f", 1, 0)
	b := p.Site("f", 1, 0)
	if a != b {
		t.Error("Site not idempotent")
	}
	c := p.Site("f", 1, 1)
	if a == c {
		t.Error("distinct sites conflated")
	}
	if a.Pool != pkalloc.Untrusted || c.Pool != pkalloc.Trusted {
		t.Errorf("pools: shared=%v unshared=%v", a.Pool, c.Pool)
	}
	if _, err := p.AllocAt(a, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AllocAt(c, 50); err != nil {
		t.Fatal(err)
	}
	r := p.Report()
	if r.TotalSites != 2 || r.UntrustedSites != 1 || r.TotalAllocs != 2 {
		t.Errorf("report = %+v", r)
	}
	if r.UntrustedShare <= 0 || r.UntrustedShare >= 1 {
		t.Errorf("untrusted share = %v", r.UntrustedShare)
	}
	if got := len(p.Sites()); got != 2 {
		t.Errorf("Sites() len = %d", got)
	}
	if a.Allocs() != 1 || a.Bytes() != 100 {
		t.Errorf("site counters: %d, %d", a.Allocs(), a.Bytes())
	}
}

// TestAllocOnlyBuildDoesNotGate: in the alloc configuration the heap is
// split but untrusted code retains full access (no gates) — the paper's
// allocator-overhead-isolation configuration.
func TestAllocOnlyBuildDoesNotGate(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	p, err := NewProgram(reg, Alloc, profile.New())
	if err != nil {
		t.Fatal(err)
	}
	site := p.Site("main", 0, 0) // not in (empty) profile: trusted pool
	buf, err := p.AllocAt(site, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Main().Call("clib", "write_1337", uint64(buf)); err != nil {
		t.Errorf("alloc build must not enforce: %v", err)
	}
	if p.Transitions() != 0 {
		t.Errorf("transitions in alloc build = %d", p.Transitions())
	}
}

func TestBaseBuildEverythingTrustedPool(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	p, err := NewProgram(reg, Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 5; i++ {
		s := p.Site("m", 0, i)
		if s.Pool != pkalloc.Trusted {
			t.Errorf("base build site %d in %v", i, s.Pool)
		}
	}
}

func TestReallocAndFreeWithTracer(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	p, err := NewProgram(reg, Profiling, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Site("m", 0, 0)
	a, err := p.AllocAt(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Realloc(a, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tracer().Live() != 1 {
		t.Errorf("live tracked = %d", p.Tracer().Live())
	}
	// The grown object, touched from U, must be attributed to the original site.
	if _, err := p.Main().Call("clib", "write_1337", uint64(b+2000)); err != nil {
		t.Fatal(err)
	}
	prof, _ := p.RecordedProfile()
	if !prof.Contains(s.ID) {
		t.Error("realloc'd object not attributed to original site")
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if p.Tracer().Live() != 0 {
		t.Errorf("live after free = %d", p.Tracer().Live())
	}
}

// TestProfileSerializationBetweenStages: the profile survives the JSON
// round trip that separates the profiling and enforcement builds on disk.
func TestProfileSerializationBetweenStages(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	p1, err := NewProgram(reg, Profiling, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := p1.Site("main", 2, 3)
	buf, _ := p1.AllocAt(s, 8)
	if _, err := p1.Main().Call("clib", "write_1337", uint64(buf)); err != nil {
		t.Fatal(err)
	}
	prof, _ := p1.RecordedProfile()
	data, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	restored := profile.New()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	p2, err := NewProgram(reg, MPK, restored)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Site("main", 2, 3).Pool != pkalloc.Untrusted {
		t.Error("site lost through serialization")
	}
}

func TestAccessorsNonNil(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	p, err := NewProgram(reg, Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Space() == nil || p.Allocator() == nil || p.Signals() == nil ||
		p.Runtime() == nil || p.Main() == nil || p.NewThread() == nil {
		t.Error("nil accessor")
	}
	if p.Tracer() != nil {
		t.Error("tracer present on base build")
	}
	if p.Config() != Base {
		t.Error("config accessor")
	}
}

// TestStoreChoiceDoesNotChangeProfile: the interval and linear metadata
// stores must produce identical profiles for the same workload — the
// store is a performance knob, not a semantic one.
func TestStoreChoiceDoesNotChangeProfile(t *testing.T) {
	reg := buildQuickstartRegistry(t)
	collect := func(store provenance.Store) *profile.Profile {
		p, err := NewProgram(reg, Profiling, nil, Options{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < 5; i++ {
			s := p.Site("main", 0, i)
			buf, err := p.AllocAt(s, 16)
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 { // only even sites cross the boundary
				if _, err := p.Main().Call("clib", "write_1337", uint64(buf)); err != nil {
					t.Fatal(err)
				}
			}
		}
		prof, _ := p.RecordedProfile()
		return prof
	}
	a := collect(provenance.NewIntervalStore())
	b := collect(provenance.NewLinearStore())
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("profile sizes: %d vs %d, want 3", a.Len(), b.Len())
	}
	if len(a.Diff(b)) != 0 || len(b.Diff(a)) != 0 {
		t.Errorf("stores disagree: %v vs %v", a.IDs(), b.IDs())
	}
}
