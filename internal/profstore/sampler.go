package profstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Resolver maps an address carried across the boundary to the live
// allocation containing it. The core wires this to the forensics shadow
// store (obs.Recorder.Lookup); the indirection keeps profstore free of an
// obs dependency.
type Resolver func(addr uint64) (id profile.AllocID, size uint64, ok bool)

// SamplerConfig parameterizes NewSampler.
type SamplerConfig struct {
	// Resolve attributes argument addresses to allocations. Nil disables
	// attribution (the sampler still counts crossings).
	Resolve Resolver
	// Interval samples every Nth forward crossing; values <= 1 sample all.
	Interval int
	// Telemetry, when non-nil, registers the pkrusafe_profile_* families.
	Telemetry *telemetry.Registry
	// Ring, when non-nil, receives a Crossing event per attribution.
	Ring *trace.Ring
}

// SiteObs aggregates what the sampler observed for one allocation site.
type SiteObs struct {
	Crossings uint64 // sampled forward crossings carrying this site's data
	Bytes     uint64 // bytes of the objects observed crossing
}

// Sampler attributes forward (T→U) gate crossings to allocation sites: it
// implements ffi.CrossingSink, resolving each argument word the call
// carried into U through the provenance resolver. This is the live
// analogue of the paper's profiling build — instead of interposing on
// faults, it watches what trusted data actually flows through the gates,
// at a configurable sampling interval so the hot path stays cheap.
type Sampler struct {
	resolve Resolver
	// interval is atomic so the adaptive controller (gatetrace.Controller)
	// can retune it while the gate path reads it lock-free.
	interval atomic.Uint64
	ring     *trace.Ring

	seen    atomic.Uint64 // forward crossings observed
	sampled atomic.Uint64 // crossings kept by the sampling interval

	mu    sync.Mutex
	sites map[profile.AllocID]*SiteObs

	// Registry handles; nil (no-op) without telemetry.
	mCrossings  *telemetry.CounterVec
	mBytes      *telemetry.CounterVec
	mLat        *telemetry.HistogramVec
	mSamples    *telemetry.Counter
	mUnresolved *telemetry.Counter
}

// NewSampler builds a crossing sampler. Attach it to a runtime with
// ffi.Runtime.SetCrossingSink (core.Options.Crossings does both).
func NewSampler(cfg SamplerConfig) *Sampler {
	s := &Sampler{
		resolve: cfg.Resolve,
		ring:    cfg.Ring,
		sites:   make(map[profile.AllocID]*SiteObs),
	}
	s.SetInterval(cfg.Interval)
	if reg := cfg.Telemetry; reg != nil {
		s.mCrossings = reg.CounterVec("pkrusafe_profile_crossings_total",
			"Sampled forward gate crossings attributed to an allocation site.", "site")
		s.mBytes = reg.CounterVec("pkrusafe_profile_crossing_bytes_total",
			"Bytes of trusted-heap objects observed crossing the boundary, by site.", "site")
		s.mLat = reg.HistogramVec("pkrusafe_profile_gate_latency_ns",
			"Gate enter-to-restore latency of sampled crossings, by attributed site.", "ns", "site")
		s.mSamples = reg.Counter("pkrusafe_profile_samples_total",
			"Forward gate crossings kept by the sampling interval.")
		s.mUnresolved = reg.Counter("pkrusafe_profile_unattributed_total",
			"Sampled crossings whose arguments resolved to no tracked allocation.")
	}
	return s
}

// ObserveCrossing implements ffi.CrossingSink: called once per forward
// gate traversal with the argument words the call carried into U.
func (s *Sampler) ObserveCrossing(lib string, args []uint64, latency time.Duration) {
	n := s.seen.Add(1)
	if iv := s.interval.Load(); iv > 1 && n%iv != 0 {
		return
	}
	s.sampled.Add(1)
	s.mSamples.Inc()
	if s.resolve == nil {
		s.mUnresolved.Inc()
		return
	}
	// Attribute each object once per crossing even when several argument
	// words land inside it (pointer + length pairs are the common shape).
	var seenIDs [4]profile.AllocID
	nseen, resolved := 0, false
	for _, a := range args {
		id, size, ok := s.resolve(a)
		if !ok {
			continue
		}
		dup := false
		for i := 0; i < nseen; i++ {
			if seenIDs[i] == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if nseen < len(seenIDs) {
			seenIDs[nseen] = id
			nseen++
		}
		resolved = true
		s.note(id, size, a, latency)
	}
	if !resolved {
		s.mUnresolved.Inc()
	}
}

// note records one attribution.
func (s *Sampler) note(id profile.AllocID, size, addr uint64, latency time.Duration) {
	name := id.String()
	s.mCrossings.With(name).Inc()
	s.mBytes.With(name).Add(size)
	s.mLat.With(name).Observe(uint64(latency))
	if s.ring != nil {
		s.ring.Emit(trace.Event{Kind: trace.Crossing, A: addr, B: uint64(latency), Note: name})
	}
	s.mu.Lock()
	o := s.sites[id]
	if o == nil {
		o = &SiteObs{}
		s.sites[id] = o
	}
	o.Crossings++
	o.Bytes += size
	s.mu.Unlock()
}

// Interval returns the current sampling interval (sample every Nth
// forward crossing; 1 samples all). Together with SetInterval this
// implements gatetrace.SamplerControl, the knob the adaptive controller
// turns.
func (s *Sampler) Interval() int {
	if s == nil {
		return 1
	}
	return int(s.interval.Load())
}

// SetInterval replaces the sampling interval, clamping to >= 1. Safe to
// call concurrently with ObserveCrossing: the gate path reads the value
// atomically once per crossing.
func (s *Sampler) SetInterval(n int) {
	if s == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	s.interval.Store(uint64(n))
}

// Seen returns how many forward crossings passed the sampler.
func (s *Sampler) Seen() uint64 {
	if s == nil {
		return 0
	}
	return s.seen.Load()
}

// Sampled returns how many crossings the sampling interval kept.
func (s *Sampler) Sampled() uint64 {
	if s == nil {
		return 0
	}
	return s.sampled.Load()
}

// Sites returns the attributed allocation sites in deterministic order.
func (s *Sampler) Sites() []profile.AllocID {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ids := make([]profile.AllocID, 0, len(s.sites))
	for id := range s.sites {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	return ids
}

// Observations returns a copy of the per-site aggregates.
func (s *Sampler) Observations() map[profile.AllocID]SiteObs {
	out := make(map[profile.AllocID]SiteObs)
	if s == nil {
		return out
	}
	s.mu.Lock()
	for id, o := range s.sites {
		out[id] = *o
	}
	s.mu.Unlock()
	return out
}

// Observed returns the aggregate for one site.
func (s *Sampler) Observed(id profile.AllocID) (SiteObs, bool) {
	if s == nil {
		return SiteObs{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.sites[id]
	if !ok {
		return SiteObs{}, false
	}
	return *o, true
}

// FeedStore marks every attributed site as seen in the store's active
// generation — the sampler's contribution to re-tighten bookkeeping.
func (s *Sampler) FeedStore(store *Store) {
	if s == nil || store == nil {
		return
	}
	store.MarkSeen(s.Sites()...)
}
