package profstore

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRolloutAssignDeterministicSplit(t *testing.T) {
	store := New()
	r := NewRollout(store, 0.5, nil)
	r.SetCandidate(store.Commit(deltaOf(site("a", 0, 0)), "heal").Seq)
	got := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		got = append(got, r.Assign())
	}
	want := []string{ArmControl, ArmShadow, ArmControl, ArmShadow}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", got, want)
		}
	}
}

func TestRolloutAssignIdleIsControl(t *testing.T) {
	r := NewRollout(New(), 1.0, nil)
	if arm := r.Assign(); arm != ArmControl {
		t.Fatalf("idle rollout assigned %q", arm)
	}
}

func TestRolloutFractionClamp(t *testing.T) {
	if f := NewRollout(New(), -2, nil).Fraction(); f != 0 {
		t.Fatalf("fraction = %v, want clamp to 0", f)
	}
	if f := NewRollout(New(), 7, nil).Fraction(); f != 1 {
		t.Fatalf("fraction = %v, want clamp to 1", f)
	}
}

func TestRolloutPromotes(t *testing.T) {
	store := New()
	reg := telemetry.NewRegistry()
	store.SetTelemetry(reg)
	r := NewRollout(store, 0.5, reg)
	cand := store.Commit(deltaOf(site("a", 0, 0)), "heal")
	r.SetCandidate(cand.Seq)

	// Control faults once (the pre-heal profile crashing), shadow is clean.
	r.Record(r.Assign(), true)
	r.Record(r.Assign(), false)
	r.Record(r.Assign(), false)
	r.Record(r.Assign(), false)

	dec, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Promote || dec.Candidate != cand.Seq {
		t.Fatalf("decision = %+v, want promote of %d", dec, cand.Seq)
	}
	if dec.Control.Requests != 2 || dec.Control.Faults != 1 || dec.Shadow.Requests != 2 || dec.Shadow.Faults != 0 {
		t.Fatalf("arm stats = control %+v shadow %+v", dec.Control, dec.Shadow)
	}
	if store.ActiveSeq() != cand.Seq {
		t.Fatalf("store active = %d after promotion, want %d", store.ActiveSeq(), cand.Seq)
	}
	st := r.Status()
	if st.Schema != RolloutSchema || st.State != StatePromoted || st.Active != cand.Seq {
		t.Fatalf("status = %+v", st)
	}
	snap := reg.Snapshot()
	var buf strings.Builder
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkrusafe_profile_shadow_requests_total") {
		t.Fatal("snapshot missing shadow request counters")
	}
}

func TestRolloutRollsBackOnRegression(t *testing.T) {
	store := New()
	r := NewRollout(store, 0.5, nil)
	cand := store.Commit(deltaOf(site("a", 0, 0)), "heal")
	r.SetCandidate(cand.Seq)

	r.Record(ArmControl, false)
	r.Record(ArmShadow, true) // candidate makes things worse

	dec, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Promote {
		t.Fatalf("regressing candidate promoted: %+v", dec)
	}
	if store.ActiveSeq() != 0 {
		t.Fatalf("store active = %d after rollback, want 0", store.ActiveSeq())
	}
	if st := r.Status(); st.State != StateRolledBack {
		t.Fatalf("state = %q, want %q", st.State, StateRolledBack)
	}
}

func TestRolloutNoShadowTrafficHolds(t *testing.T) {
	store := New()
	r := NewRollout(store, 0.5, nil)
	r.SetCandidate(store.Commit(deltaOf(site("a", 0, 0)), "heal").Seq)
	r.Record(ArmControl, false)
	dec, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Promote {
		t.Fatal("promoted with zero shadow requests")
	}
}

func TestRolloutDecideRequiresShadowing(t *testing.T) {
	r := NewRollout(New(), 0.5, nil)
	if _, err := r.Decide(); err == nil {
		t.Fatal("Decide succeeded in idle state")
	}
}

func TestRolloutArmFaultRate(t *testing.T) {
	if got := (ArmStats{}).FaultRate(); got != 0 {
		t.Fatalf("empty arm fault rate = %v", got)
	}
	if got := (ArmStats{Requests: 4, Faults: 1}).FaultRate(); got != 0.25 {
		t.Fatalf("fault rate = %v, want 0.25", got)
	}
}
