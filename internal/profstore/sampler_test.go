package profstore

import (
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// rangeResolver attributes addresses inside [base, base+size) to one site.
func rangeResolver(id profile.AllocID, base, size uint64) Resolver {
	return func(addr uint64) (profile.AllocID, uint64, bool) {
		if addr >= base && addr < base+size {
			return id, size, true
		}
		return profile.AllocID{}, 0, false
	}
}

func TestSamplerAttributesCrossings(t *testing.T) {
	id := site("lib::buf", 0, 0)
	ring := trace.NewRing(8)
	s := NewSampler(SamplerConfig{
		Resolve:   rangeResolver(id, 0x1000, 64),
		Telemetry: telemetry.NewRegistry(),
		Ring:      ring,
	})
	s.ObserveCrossing("ulib", []uint64{0x1000}, 5*time.Nanosecond)
	s.ObserveCrossing("ulib", []uint64{0x9999}, time.Nanosecond) // unattributed

	if s.Seen() != 2 || s.Sampled() != 2 {
		t.Fatalf("seen/sampled = %d/%d, want 2/2", s.Seen(), s.Sampled())
	}
	obs, ok := s.Observed(id)
	if !ok || obs.Crossings != 1 || obs.Bytes != 64 {
		t.Fatalf("observed = %+v,%v", obs, ok)
	}
	sites := s.Sites()
	if len(sites) != 1 || sites[0] != id {
		t.Fatalf("sites = %v", sites)
	}
	evs := ring.Snapshot()
	if len(evs) != 1 || evs[0].Kind != trace.Crossing || evs[0].A != 0x1000 || evs[0].Note != id.String() {
		t.Fatalf("trace events = %v", evs)
	}
}

func TestSamplerDedupesObjectsWithinOneCrossing(t *testing.T) {
	id := site("lib::buf", 0, 0)
	s := NewSampler(SamplerConfig{Resolve: rangeResolver(id, 0x1000, 64)})
	// Pointer + interior pointer into the same object: one attribution.
	s.ObserveCrossing("ulib", []uint64{0x1000, 0x1008}, 0)
	obs, _ := s.Observed(id)
	if obs.Crossings != 1 {
		t.Fatalf("crossings = %d, want 1 (dedup within a call)", obs.Crossings)
	}
}

func TestSamplerInterval(t *testing.T) {
	id := site("lib::buf", 0, 0)
	s := NewSampler(SamplerConfig{Resolve: rangeResolver(id, 0x1000, 64), Interval: 4})
	for i := 0; i < 8; i++ {
		s.ObserveCrossing("ulib", []uint64{0x1000}, 0)
	}
	if s.Seen() != 8 || s.Sampled() != 2 {
		t.Fatalf("seen/sampled = %d/%d, want 8/2 at interval 4", s.Seen(), s.Sampled())
	}
	obs, _ := s.Observed(id)
	if obs.Crossings != 2 {
		t.Fatalf("attributed crossings = %d, want 2", obs.Crossings)
	}
}

func TestSamplerNoResolver(t *testing.T) {
	s := NewSampler(SamplerConfig{})
	s.ObserveCrossing("ulib", []uint64{0x1000}, 0)
	if s.Sampled() != 1 || len(s.Sites()) != 0 {
		t.Fatalf("resolver-less sampler: sampled=%d sites=%v", s.Sampled(), s.Sites())
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	if s.Seen() != 0 || s.Sampled() != 0 || s.Sites() != nil {
		t.Fatal("nil sampler accessors not zero-valued")
	}
	if _, ok := s.Observed(site("a", 0, 0)); ok {
		t.Fatal("nil sampler observed a site")
	}
	s.FeedStore(New()) // must not panic
	if len(s.Observations()) != 0 {
		t.Fatal("nil sampler has observations")
	}
}

func TestSamplerFeedStore(t *testing.T) {
	id := site("lib::buf", 0, 0)
	store := New()
	g := store.Commit(deltaOf(id), "heal")
	if err := store.Promote(g.Seq); err != nil {
		t.Fatal(err)
	}
	// Two stale generations would make id a re-tighten candidate...
	for i := 0; i < 2; i++ {
		gg := store.Commit(nil, "merge")
		if err := store.Promote(gg.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.Retighten(2); len(got) != 1 {
		t.Fatalf("precondition: want 1 candidate, got %+v", got)
	}
	// ...unless the sampler saw it crossing under the active generation.
	s := NewSampler(SamplerConfig{Resolve: rangeResolver(id, 0x1000, 64)})
	s.ObserveCrossing("ulib", []uint64{0x1000}, 0)
	s.FeedStore(store)
	if got := store.Retighten(2); len(got) != 0 {
		t.Fatalf("fed store still proposes %+v", got)
	}
}
