// Package profstore is the continuous-profiling plane's persistent state:
// a generational store of sharing profiles, the crossing sampler that
// attributes live T→U boundary crossings to allocation sites, and the
// staged-rollout machinery that shadow-applies a candidate generation
// before promoting it.
//
// The paper's dynamic analysis (§4.3) is a one-shot offline phase: profile
// once, bake the alloc→ualloc rewrites into the enforcement build, ship.
// Long-running services need the loop closed at runtime instead — heal
// deltas (the sites the supervisor migrated MT→MU) and live crossing
// observations accumulate into *generations*, each a full profile snapshot
// with provenance, and a generation only becomes active after a staged
// comparison shows it does not regress fault rates. Sites that stop
// crossing for a window of generations surface as re-tighten candidates:
// the MU→MT demotions a fresh profiling run would have discovered.
package profstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// StoreSchema versions the store's JSON persistence and the /profile
// endpoint's view of it.
const StoreSchema = 1

// DefaultRetightenWindow is how many generations a site must go without an
// observed crossing before it is proposed for MU→MT demotion.
const DefaultRetightenWindow = 2

// Generation is one versioned profile snapshot. Seq 0 is the seed; every
// later generation extends its parent with one source's delta (a heal run,
// a merge, a profiling rerun).
type Generation struct {
	Seq    int
	Parent int // -1 for the seed generation
	Source string
	Sites  *profile.Profile
}

// Store holds the generation history, the active generation, and the
// last-seen bookkeeping behind re-tighten proposals. All methods are safe
// for concurrent use.
type Store struct {
	mu       sync.Mutex
	gens     []Generation
	active   int
	lastSeen map[profile.AllocID]int // generation a site last crossed in
	ring     *trace.Ring
}

// New returns a store holding only the empty seed generation, active.
func New() *Store {
	return &Store{
		gens:     []Generation{{Seq: 0, Parent: -1, Source: "seed", Sites: profile.New()}},
		lastSeen: make(map[profile.AllocID]int),
	}
}

// SetTrace attaches an event ring receiving ProfileSwap events on
// promotion (nil detaches).
func (s *Store) SetTrace(r *trace.Ring) {
	s.mu.Lock()
	s.ring = r
	s.mu.Unlock()
}

// SetTelemetry publishes the store's state as gauges: the active
// generation sequence and the number of generations held.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	reg.GaugeFunc("pkrusafe_profile_generation",
		"Sequence number of the active profile generation.",
		func() float64 { return float64(s.ActiveSeq()) })
	reg.GaugeFunc("pkrusafe_profile_generations",
		"Profile generations held by the store.",
		func() float64 { return float64(s.Len()) })
}

// Len returns the number of generations held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.gens)
}

// ActiveSeq returns the active generation's sequence number.
func (s *Store) ActiveSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Active returns the active generation. The returned profile is shared;
// callers must treat it as read-only.
func (s *Store) Active() Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gens[s.active]
}

// Latest returns the newest generation (which may not be active yet).
func (s *Store) Latest() Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gens[len(s.gens)-1]
}

// Generation returns the generation with the given sequence number.
func (s *Store) Generation(seq int) (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < 0 || seq >= len(s.gens) {
		return Generation{}, false
	}
	return s.gens[seq], true
}

// Commit derives a new candidate generation: the active generation's sites
// merged with delta, attributed to source. The candidate is NOT active;
// promotion is a separate, deliberate step (normally gated on a staged
// rollout). Delta sites count as seen now — they just demonstrably
// crossed — and sites entering the store for the first time are
// initialized as seen at the commit, so a freshly loaded profile is not
// instantly proposed for demotion.
func (s *Store) Commit(delta *profile.Profile, source string) Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := len(s.gens)
	sites := profile.New()
	sites.Merge(s.gens[s.active].Sites)
	if delta != nil {
		sites.Merge(delta)
		for _, id := range delta.IDs() {
			if s.lastSeen[id] < seq {
				s.lastSeen[id] = seq
			}
		}
	}
	for _, id := range sites.IDs() {
		if _, ok := s.lastSeen[id]; !ok {
			s.lastSeen[id] = seq
		}
	}
	gen := Generation{Seq: seq, Parent: s.active, Source: source, Sites: sites}
	s.gens = append(s.gens, gen)
	return gen
}

// MarkSeen records that the given sites were observed crossing under the
// active generation — the sampler's feed into re-tighten bookkeeping.
func (s *Store) MarkSeen(ids ...profile.AllocID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if s.lastSeen[id] < s.active {
			s.lastSeen[id] = s.active
		}
	}
}

// LastSeen returns the generation id last crossed in (ok=false if never).
func (s *Store) LastSeen(id profile.AllocID) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen, ok := s.lastSeen[id]
	return gen, ok
}

// Promote makes generation seq active and emits a ProfileSwap trace
// event. Promoting the already-active generation is a no-op.
func (s *Store) Promote(seq int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < 0 || seq >= len(s.gens) {
		return fmt.Errorf("profstore: promote of unknown generation %d (store holds %d)", seq, len(s.gens))
	}
	if seq == s.active {
		return nil
	}
	prev := s.active
	s.active = seq
	if s.ring != nil {
		s.ring.Emit(trace.Event{Kind: trace.ProfileSwap,
			A: uint64(seq), B: uint64(prev), Note: s.gens[seq].Source})
	}
	return nil
}

// Candidate is one re-tighten proposal: a site in the examined generation
// that has not been observed crossing for at least the window.
type Candidate struct {
	ID       profile.AllocID
	LastSeen int // generation last observed crossing in
}

// Retighten proposes MU→MT demotions against the active generation: sites
// it shares that have not crossed for at least window generations. A
// window <= 0 means DefaultRetightenWindow. Proposals are sorted by site.
func (s *Store) Retighten(window int) []Candidate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retightenLocked(s.gens[s.active], window)
}

func (s *Store) retightenLocked(gen Generation, window int) []Candidate {
	if window <= 0 {
		window = DefaultRetightenWindow
	}
	out := []Candidate{}
	for _, id := range gen.Sites.IDs() {
		last := s.lastSeen[id]
		if gen.Seq-last >= window {
			out = append(out, Candidate{ID: id, LastSeen: last})
		}
	}
	return out
}

// Diff is the deterministic comparison of two generations, plus the
// re-tighten proposals computed against the `to` generation.
type Diff struct {
	Schema    int             `json:"schema"`
	From      int             `json:"from"`
	To        int             `json:"to"`
	Added     []string        `json:"added"`    // in to, not in from
	Removed   []string        `json:"removed"`  // in from, not in to
	Retained  []string        `json:"retained"` // in both
	Window    int             `json:"retighten_window"`
	Retighten []DiffCandidate `json:"retighten"`
}

// DiffCandidate is a re-tighten proposal in a Diff.
type DiffCandidate struct {
	Site     string `json:"site"`
	LastSeen int    `json:"last_seen"`
}

// Diff compares two generations by sequence number. Site lists are sorted,
// so the same store yields byte-identical diffs. A window <= 0 means
// DefaultRetightenWindow.
func (s *Store) Diff(from, to, window int) (Diff, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 || from >= len(s.gens) || to < 0 || to >= len(s.gens) {
		return Diff{}, fmt.Errorf("profstore: diff %d -> %d outside store of %d generation(s)", from, to, len(s.gens))
	}
	if window <= 0 {
		window = DefaultRetightenWindow
	}
	a, b := s.gens[from].Sites, s.gens[to].Sites
	d := Diff{Schema: StoreSchema, From: from, To: to, Window: window,
		Added: []string{}, Removed: []string{}, Retained: []string{}, Retighten: []DiffCandidate{}}
	for _, id := range b.IDs() {
		if a.Contains(id) {
			d.Retained = append(d.Retained, id.String())
		} else {
			d.Added = append(d.Added, id.String())
		}
	}
	for _, id := range a.IDs() {
		if !b.Contains(id) {
			d.Removed = append(d.Removed, id.String())
		}
	}
	for _, c := range s.retightenLocked(s.gens[to], window) {
		d.Retighten = append(d.Retighten, DiffCandidate{Site: c.ID.String(), LastSeen: c.LastSeen})
	}
	return d, nil
}

// jsonStore is the persisted shape. Profiles marshal as sorted site maps,
// so the whole file is byte-deterministic and diffs cleanly in version
// control — the same property the profile format itself guarantees.
type jsonStore struct {
	Schema      int              `json:"schema"`
	Active      int              `json:"active"`
	Generations []jsonGeneration `json:"generations"`
	LastSeen    map[string]int   `json:"last_seen"`
}

type jsonGeneration struct {
	Seq    int              `json:"seq"`
	Parent int              `json:"parent"`
	Source string           `json:"source"`
	Sites  *profile.Profile `json:"sites"`
}

// WriteJSON persists the store as schema-versioned, deterministic JSON.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	out := jsonStore{Schema: StoreSchema, Active: s.active, LastSeen: make(map[string]int, len(s.lastSeen))}
	for _, g := range s.gens {
		out.Generations = append(out.Generations, jsonGeneration{Seq: g.Seq, Parent: g.Parent, Source: g.Source, Sites: g.Sites})
	}
	for id, gen := range s.lastSeen {
		out.LastSeen[id.String()] = gen
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a store persisted by WriteJSON.
func Load(r io.Reader) (*Store, error) {
	var in jsonStore
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profstore: %w", err)
	}
	if in.Schema != StoreSchema {
		return nil, fmt.Errorf("profstore: unsupported store schema %d (want %d)", in.Schema, StoreSchema)
	}
	if len(in.Generations) == 0 {
		return nil, fmt.Errorf("profstore: store holds no generations")
	}
	s := &Store{lastSeen: make(map[profile.AllocID]int, len(in.LastSeen))}
	for i, g := range in.Generations {
		if g.Seq != i {
			return nil, fmt.Errorf("profstore: generation %d stored out of order (seq %d)", i, g.Seq)
		}
		if g.Sites == nil {
			g.Sites = profile.New()
		}
		s.gens = append(s.gens, Generation{Seq: g.Seq, Parent: g.Parent, Source: g.Source, Sites: g.Sites})
	}
	if in.Active < 0 || in.Active >= len(s.gens) {
		return nil, fmt.Errorf("profstore: active generation %d outside store of %d", in.Active, len(s.gens))
	}
	s.active = in.Active
	for name, gen := range in.LastSeen {
		id, err := profile.ParseAllocID(name)
		if err != nil {
			return nil, err
		}
		s.lastSeen[id] = gen
	}
	return s, nil
}

// SaveFile persists the store to path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a store from path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadFileOrNew reads a store from path, returning a fresh store when the
// file does not exist yet — the first run of a service bootstraps its own
// store.
func LoadFileOrNew(path string) (*Store, error) {
	s, err := LoadFile(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	return s, err
}

// ActiveView is the /profile endpoint's schema-versioned rendering of the
// active generation.
type ActiveView struct {
	Schema      int              `json:"schema"`
	Active      int              `json:"active"`
	Generations int              `json:"generations"`
	Parent      int              `json:"parent"`
	Source      string           `json:"source"`
	Sites       *profile.Profile `json:"sites"`
}

// View renders the active generation for serving.
func (s *Store) View() ActiveView {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gens[s.active]
	return ActiveView{Schema: StoreSchema, Active: g.Seq, Generations: len(s.gens),
		Parent: g.Parent, Source: g.Source, Sites: g.Sites}
}
