package profstore

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// RolloutSchema versions the /profile/shadow endpoint's JSON view.
const RolloutSchema = 1

// Rollout arm names, used as telemetry label values and Assign results.
const (
	ArmControl = "control"
	ArmShadow  = "shadow"
)

// Rollout states.
const (
	StateIdle       = "idle"
	StateShadowing  = "shadowing"
	StatePromoted   = "promoted"
	StateRolledBack = "rolled_back"
)

// ArmStats aggregates one rollout arm's request outcomes.
type ArmStats struct {
	Requests uint64 `json:"requests"`
	Faults   uint64 `json:"faults"`
}

// FaultRate returns Faults/Requests (zero when no requests ran).
func (a ArmStats) FaultRate() float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.Faults) / float64(a.Requests)
}

// Rollout stages a candidate profile generation: a configurable fraction
// of request workers run under the candidate (the shadow arm) while the
// rest stay on the active generation (the control arm); per-arm fault
// rates decide promotion. Assignment is deterministic — fraction
// accumulation, not randomness — so a rollout is reproducible.
type Rollout struct {
	mu        sync.Mutex
	store     *Store
	frac      float64
	candidate int
	state     string
	n         int // requests assigned so far, for the deterministic split
	arms      map[string]*ArmStats

	mReqs   *telemetry.CounterVec
	mFaults *telemetry.CounterVec
}

// NewRollout builds a rollout over store, shadowing frac (clamped to
// [0,1]) of assigned requests once a candidate is set.
func NewRollout(store *Store, frac float64, reg *telemetry.Registry) *Rollout {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r := &Rollout{
		store:     store,
		frac:      frac,
		candidate: -1,
		state:     StateIdle,
		arms:      map[string]*ArmStats{ArmControl: {}, ArmShadow: {}},
	}
	if reg != nil {
		r.mReqs = reg.CounterVec("pkrusafe_profile_shadow_requests_total",
			"Requests served during staged profile rollout, by arm.", "arm")
		r.mFaults = reg.CounterVec("pkrusafe_profile_shadow_faults_total",
			"Requests that needed fault recovery during staged rollout, by arm.", "arm")
	}
	return r
}

// Fraction returns the configured shadow fraction.
func (r *Rollout) Fraction() float64 { return r.frac }

// SetCandidate arms the rollout with a committed (non-active) generation
// and resets the per-arm accounting.
func (r *Rollout) SetCandidate(seq int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.candidate = seq
	r.state = StateShadowing
	r.n = 0
	r.arms = map[string]*ArmStats{ArmControl: {}, ArmShadow: {}}
}

// Assign deterministically places the next request on an arm: request i
// goes shadow iff the accumulated shadow quota crosses an integer at i.
// Outside the shadowing state every request is control.
func (r *Rollout) Assign() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateShadowing || r.frac <= 0 {
		return ArmControl
	}
	i := r.n
	r.n++
	if int(float64(i+1)*r.frac) > int(float64(i)*r.frac) {
		return ArmShadow
	}
	return ArmControl
}

// Record accounts one served request on an arm; fault marks a request
// that needed recovery (or was dropped).
func (r *Rollout) Record(arm string, fault bool) {
	r.mu.Lock()
	a := r.arms[arm]
	if a == nil {
		a = &ArmStats{}
		r.arms[arm] = a
	}
	a.Requests++
	if fault {
		a.Faults++
	}
	r.mu.Unlock()
	r.mReqs.With(arm).Inc()
	if fault {
		r.mFaults.With(arm).Inc()
	}
}

// Decision is the outcome of one staged rollout.
type Decision struct {
	Promote   bool     `json:"promote"`
	Candidate int      `json:"candidate"`
	Reason    string   `json:"reason"`
	Control   ArmStats `json:"control"`
	Shadow    ArmStats `json:"shadow"`
}

// Decide compares the arms and either promotes the candidate (shadow
// fault rate no worse than control, with at least one shadow request) or
// rolls it back. The store's active generation is updated on promotion.
func (r *Rollout) Decide() (Decision, error) {
	r.mu.Lock()
	if r.state != StateShadowing {
		state := r.state
		r.mu.Unlock()
		return Decision{}, fmt.Errorf("profstore: Decide in state %q (want %q)", state, StateShadowing)
	}
	d := Decision{Candidate: r.candidate, Control: *r.arms[ArmControl], Shadow: *r.arms[ArmShadow]}
	switch {
	case d.Shadow.Requests == 0:
		d.Reason = "no shadow traffic observed"
	case d.Shadow.FaultRate() <= d.Control.FaultRate():
		d.Promote = true
		d.Reason = fmt.Sprintf("shadow fault rate %.2f <= control %.2f over %d/%d request(s)",
			d.Shadow.FaultRate(), d.Control.FaultRate(), d.Shadow.Requests, d.Control.Requests)
	default:
		d.Reason = fmt.Sprintf("shadow fault rate %.2f regressed past control %.2f",
			d.Shadow.FaultRate(), d.Control.FaultRate())
	}
	if d.Promote {
		r.state = StatePromoted
	} else {
		r.state = StateRolledBack
	}
	store, candidate := r.store, r.candidate
	r.mu.Unlock()
	if d.Promote {
		if err := store.Promote(candidate); err != nil {
			return Decision{}, err
		}
	}
	return d, nil
}

// Status is the /profile/shadow endpoint's schema-versioned view.
type Status struct {
	Schema    int      `json:"schema"`
	State     string   `json:"state"`
	Candidate int      `json:"candidate"`
	Active    int      `json:"active"`
	Fraction  float64  `json:"fraction"`
	Control   ArmStats `json:"control"`
	Shadow    ArmStats `json:"shadow"`
}

// Status reports the rollout's current state.
func (r *Rollout) Status() Status {
	active := r.store.ActiveSeq()
	r.mu.Lock()
	defer r.mu.Unlock()
	return Status{
		Schema:    RolloutSchema,
		State:     r.state,
		Candidate: r.candidate,
		Active:    active,
		Fraction:  r.frac,
		Control:   *r.arms[ArmControl],
		Shadow:    *r.arms[ArmShadow],
	}
}
