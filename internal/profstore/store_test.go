package profstore

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func site(fn string, block, idx uint32) profile.AllocID {
	return profile.AllocID{Func: fn, Block: block, Site: idx}
}

func deltaOf(ids ...profile.AllocID) *profile.Profile {
	p := profile.New()
	for _, id := range ids {
		p.Add(id, 64)
	}
	return p
}

func TestStoreSeedGeneration(t *testing.T) {
	s := New()
	if s.Len() != 1 || s.ActiveSeq() != 0 {
		t.Fatalf("fresh store: len=%d active=%d, want 1/0", s.Len(), s.ActiveSeq())
	}
	g := s.Active()
	if g.Seq != 0 || g.Parent != -1 || g.Source != "seed" || g.Sites.Len() != 0 {
		t.Fatalf("seed generation = %+v", g)
	}
}

func TestStoreCommitDoesNotActivate(t *testing.T) {
	s := New()
	a := site("a", 0, 0)
	gen := s.Commit(deltaOf(a), "heal")
	if gen.Seq != 1 || gen.Parent != 0 || gen.Source != "heal" {
		t.Fatalf("committed generation = %+v", gen)
	}
	if !gen.Sites.Contains(a) {
		t.Fatalf("committed generation missing delta site %v", a)
	}
	if s.ActiveSeq() != 0 {
		t.Fatalf("Commit activated generation %d; promotion must be explicit", s.ActiveSeq())
	}
	if last, ok := s.LastSeen(a); !ok || last != 1 {
		t.Fatalf("delta site last seen = %d,%v, want 1,true", last, ok)
	}
}

func TestStoreCommitExtendsActive(t *testing.T) {
	s := New()
	a, b := site("a", 0, 0), site("b", 0, 0)
	g1 := s.Commit(deltaOf(a), "heal")
	if err := s.Promote(g1.Seq); err != nil {
		t.Fatal(err)
	}
	g2 := s.Commit(deltaOf(b), "heal")
	if !g2.Sites.Contains(a) || !g2.Sites.Contains(b) {
		t.Fatalf("generation 2 should hold active∪delta, has %v", g2.Sites.IDs())
	}
	if g2.Parent != 1 {
		t.Fatalf("generation 2 parent = %d, want 1", g2.Parent)
	}
}

func TestStorePromoteEmitsTraceAndGauges(t *testing.T) {
	s := New()
	ring := trace.NewRing(16)
	reg := telemetry.NewRegistry()
	s.SetTrace(ring)
	s.SetTelemetry(reg)

	gen := s.Commit(deltaOf(site("a", 0, 0)), "heal")
	if err := s.Promote(gen.Seq); err != nil {
		t.Fatal(err)
	}
	if s.ActiveSeq() != gen.Seq {
		t.Fatalf("active = %d after promote, want %d", s.ActiveSeq(), gen.Seq)
	}
	evs := ring.Snapshot()
	if len(evs) != 1 || evs[0].Kind != trace.ProfileSwap || evs[0].A != 1 || evs[0].B != 0 || evs[0].Note != "heal" {
		t.Fatalf("promote trace events = %v", evs)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkrusafe_profile_generation 1") {
		t.Fatalf("exposition missing generation gauge:\n%s", buf.String())
	}
	// Re-promoting the active generation is a no-op: no second swap event.
	if err := s.Promote(gen.Seq); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 1 {
		t.Fatalf("no-op promote emitted an event (ring len %d)", ring.Len())
	}
	if err := s.Promote(99); err == nil {
		t.Fatal("promote of unknown generation succeeded")
	}
}

func TestStoreRetighten(t *testing.T) {
	s := New()
	a, b := site("a", 0, 0), site("b", 0, 0)
	g1 := s.Commit(deltaOf(a, b), "heal")
	if err := s.Promote(g1.Seq); err != nil {
		t.Fatal(err)
	}
	// Two empty-delta generations pass; only b keeps crossing.
	for i := 0; i < 2; i++ {
		g := s.Commit(nil, "merge")
		if err := s.Promote(g.Seq); err != nil {
			t.Fatal(err)
		}
		s.MarkSeen(b)
	}
	cands := s.Retighten(2)
	if len(cands) != 1 || cands[0].ID != a || cands[0].LastSeen != 1 {
		t.Fatalf("retighten candidates = %+v, want [a last seen 1]", cands)
	}
	if got := s.Retighten(5); len(got) != 0 {
		t.Fatalf("window 5 proposed %+v", got)
	}
}

func TestStoreDiff(t *testing.T) {
	s := New()
	a, b := site("a", 0, 0), site("b", 1, 2)
	g1 := s.Commit(deltaOf(a), "heal")
	if err := s.Promote(g1.Seq); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diff(0, 5, 0); err == nil {
		t.Fatal("diff against unknown generation succeeded")
	}
	g2 := s.Commit(deltaOf(b), "heal")
	d, err := s.Diff(1, g2.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != StoreSchema || d.From != 1 || d.To != 2 || d.Window != 1 {
		t.Fatalf("diff header = %+v", d)
	}
	if len(d.Added) != 1 || d.Added[0] != b.String() {
		t.Fatalf("added = %v, want [%s]", d.Added, b)
	}
	if len(d.Retained) != 1 || d.Retained[0] != a.String() {
		t.Fatalf("retained = %v, want [%s]", d.Retained, a)
	}
	if len(d.Removed) != 0 {
		t.Fatalf("removed = %v, want empty", d.Removed)
	}
	// a last crossed at its commit (gen 1); against gen 2 with window 1
	// that is exactly stale enough.
	if len(d.Retighten) != 1 || d.Retighten[0].Site != a.String() || d.Retighten[0].LastSeen != 1 {
		t.Fatalf("retighten = %+v", d.Retighten)
	}
}

func TestStoreJSONRoundTripAndDeterminism(t *testing.T) {
	s := New()
	g1 := s.Commit(deltaOf(site("a", 0, 0), site("b", 3, 1)), "heal")
	if err := s.Promote(g1.Seq); err != nil {
		t.Fatal(err)
	}
	s.Commit(deltaOf(site("c", 0, 0)), "merge")

	var one, two bytes.Buffer
	if err := s.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("WriteJSON is not byte-deterministic")
	}

	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.ActiveSeq() != s.ActiveSeq() {
		t.Fatalf("reloaded store: len=%d active=%d, want %d/%d", got.Len(), got.ActiveSeq(), s.Len(), s.ActiveSeq())
	}
	var three bytes.Buffer
	if err := got.WriteJSON(&three); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), three.Bytes()) {
		t.Fatal("save/load/save changed the persisted bytes")
	}
}

func TestStoreLoadRejectsBadInput(t *testing.T) {
	for name, in := range map[string]string{
		"bad schema":     `{"schema":99,"active":0,"generations":[{"seq":0,"parent":-1,"source":"seed","sites":{}}]}`,
		"no generations": `{"schema":1,"active":0,"generations":[]}`,
		"out of order":   `{"schema":1,"active":0,"generations":[{"seq":1,"parent":-1,"source":"seed","sites":{}}]}`,
		"bad active":     `{"schema":1,"active":7,"generations":[{"seq":0,"parent":-1,"source":"seed","sites":{}}]}`,
		"bad last seen":  `{"schema":1,"active":0,"generations":[{"seq":0,"parent":-1,"source":"seed","sites":{}}],"last_seen":{"nosite":0}}`,
	} {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load succeeded", name)
		}
	}
}

func TestLoadFileOrNew(t *testing.T) {
	s, err := LoadFileOrNew(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.ActiveSeq() != 0 {
		t.Fatalf("bootstrap store: len=%d active=%d", s.Len(), s.ActiveSeq())
	}
}

func TestStoreView(t *testing.T) {
	s := New()
	g := s.Commit(deltaOf(site("a", 0, 0)), "heal")
	if err := s.Promote(g.Seq); err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v.Schema != StoreSchema || v.Active != 1 || v.Generations != 2 || v.Parent != 0 || v.Source != "heal" {
		t.Fatalf("view = %+v", v)
	}
	if v.Sites.Len() != 1 {
		t.Fatalf("view sites = %d, want 1", v.Sites.Len())
	}
}
