package profile

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestAllocIDString(t *testing.T) {
	id := AllocID{Func: "dom::create_node", Block: 3, Site: 7}
	if got := id.String(); got != "dom::create_node@3.7" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseAllocID(t *testing.T) {
	cases := []struct {
		in   string
		want AllocID
		ok   bool
	}{
		{"f@0.0", AllocID{Func: "f"}, true},
		{"a::b@12.34", AllocID{Func: "a::b", Block: 12, Site: 34}, true},
		{"with@at@1.2", AllocID{Func: "with@at", Block: 1, Site: 2}, true}, // last @ wins
		{"", AllocID{}, false},
		{"nofunc", AllocID{}, false},
		{"@1.2", AllocID{}, false},
		{"f@12", AllocID{}, false},
		{"f@x.2", AllocID{}, false},
		{"f@1.y", AllocID{}, false},
	}
	for _, c := range cases {
		got, err := ParseAllocID(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAllocID(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAllocID(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(fn string, block, site uint32) bool {
		if fn == "" {
			fn = "f"
		}
		// Newlines and '@' in generated names are fine; last-@ parsing and
		// exact string round-trip must still hold as long as the name has
		// no digits-after-@ ambiguity, which String's format prevents.
		id := AllocID{Func: fn, Block: block, Site: site}
		got, err := ParseAllocID(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAndContains(t *testing.T) {
	p := New()
	id := AllocID{Func: "f", Block: 1, Site: 2}
	if p.Contains(id) {
		t.Error("empty profile contains id")
	}
	p.Add(id, 64)
	p.Add(id, 64)
	if !p.Contains(id) {
		t.Error("profile missing added id")
	}
	r, ok := p.Get(id)
	if !ok || r.Faults != 2 || r.Bytes != 128 {
		t.Errorf("record = %+v, %v", r, ok)
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d", p.Len())
	}
	if _, ok := p.Get(AllocID{Func: "other"}); ok {
		t.Error("Get of absent id succeeded")
	}
}

func TestIDsSorted(t *testing.T) {
	p := New()
	p.Add(AllocID{Func: "z"}, 1)
	p.Add(AllocID{Func: "a"}, 1)
	p.Add(AllocID{Func: "m", Block: 2}, 1)
	ids := p.IDs()
	if len(ids) != 3 || ids[0].Func != "a" || ids[2].Func != "z" {
		t.Errorf("IDs() = %v", ids)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	shared := AllocID{Func: "s"}
	a.Add(shared, 10)
	b.Add(shared, 20)
	b.Add(AllocID{Func: "only-b"}, 5)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d", a.Len())
	}
	r, _ := a.Get(shared)
	if r.Faults != 2 || r.Bytes != 30 {
		t.Errorf("merged record = %+v", r)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := New()
	p.Add(AllocID{Func: "dom::node", Block: 1, Site: 4}, 96)
	p.Add(AllocID{Func: "js::bind", Block: 0, Site: 0}, 8)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q := New()
	if err := json.Unmarshal(data, q); err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("round trip len %d != %d", q.Len(), p.Len())
	}
	for _, id := range p.IDs() {
		pr, _ := p.Get(id)
		qr, ok := q.Get(id)
		if !ok || pr != qr {
			t.Errorf("record for %v: %+v vs %+v (ok=%v)", id, pr, qr, ok)
		}
	}
}

func TestUnmarshalRejectsBadIDs(t *testing.T) {
	q := New()
	if err := json.Unmarshal([]byte(`{"notanid":{"faults":1,"bytes":2}}`), q); err == nil {
		t.Error("malformed id accepted")
	}
	if err := json.Unmarshal([]byte(`[1,2]`), q); err == nil {
		t.Error("wrong JSON shape accepted")
	}
}

func TestDiff(t *testing.T) {
	a, b := New(), New()
	both := AllocID{Func: "both"}
	onlyA := AllocID{Func: "only-a"}
	a.Add(both, 1)
	a.Add(onlyA, 1)
	b.Add(both, 1)
	b.Add(AllocID{Func: "only-b"}, 1)
	d := a.Diff(b)
	if len(d) != 1 || d[0] != onlyA {
		t.Errorf("Diff = %v", d)
	}
	if got := b.Diff(a); len(got) != 1 || got[0].Func != "only-b" {
		t.Errorf("reverse Diff = %v", got)
	}
	if got := a.Diff(a); len(got) != 0 {
		t.Errorf("self Diff = %v", got)
	}
}
