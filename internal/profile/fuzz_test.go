package profile

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"
)

// FuzzParseAllocID checks the parse/format round trip on arbitrary input:
// anything ParseAllocID accepts must re-parse from its canonical String
// form to the same tuple, and canonical forms must be fixed points. Func
// names legitimately contain '@' (closures) and '.' (paths), which is why
// the parser anchors on the LAST '@' — the seeds pin that down.
func FuzzParseAllocID(f *testing.F) {
	for _, seed := range []string{
		"main@0.0",
		"servo::dom::text@0.0",
		"a@b@1.2",                 // '@' inside the function name
		"f.g@3.4",                 // '.' inside the function name
		"x@@1.2",                  // function name ending in '@'
		"@1.2",                    // empty function name: must be rejected
		"x@01.02",                 // non-canonical digits parse, canonicalize to 1.2
		"x@4294967295.4294967295", // uint32 limits
		"x@5000000000.1",          // block overflows uint32: must be rejected
		"x@1",                     // no site component
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseAllocID(s)
		if err != nil {
			return // rejected inputs are out of scope
		}
		if id.Func == "" {
			t.Fatalf("ParseAllocID(%q) accepted an empty function name", s)
		}
		canon := id.String()
		id2, err := ParseAllocID(canon)
		if err != nil {
			t.Fatalf("ParseAllocID(%q) = %v; canonical form %q does not re-parse: %v", s, id, canon, err)
		}
		if id2 != id {
			t.Fatalf("round trip changed the id: %q -> %v -> %q -> %v", s, id, canon, id2)
		}
		if got := id2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, got)
		}
	})
}

// TestProfileJSONQuick property-checks the profile's JSON codec: for
// arbitrary site sets, marshal → unmarshal → marshal is byte-identical
// (the sorted-key encoding is deterministic) and the decoded profile holds
// the same records.
func TestProfileJSONQuick(t *testing.T) {
	type qsite struct {
		Fn          string
		Block, Site uint32
		Size        uint16
	}
	prop := func(sites []qsite) bool {
		p := New()
		for _, q := range sites {
			fn := q.Fn
			if fn == "" {
				fn = "f" // empty function names cannot round-trip by design
			}
			p.Add(AllocID{Func: fn, Block: q.Block, Site: q.Site}, uint64(q.Size))
		}
		one, err := json.Marshal(p)
		if err != nil {
			return false
		}
		two, err := json.Marshal(p)
		if err != nil || !bytes.Equal(one, two) {
			return false // marshal must be deterministic on its own
		}
		back := New()
		if err := json.Unmarshal(one, back); err != nil {
			return false
		}
		if back.Len() != p.Len() {
			return false
		}
		for _, id := range p.IDs() {
			want, _ := p.Get(id)
			got, ok := back.Get(id)
			if !ok || got != want {
				return false
			}
		}
		three, err := json.Marshal(back)
		return err == nil && bytes.Equal(one, three)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
