// Package profile holds the artifact PKRU-Safe's dynamic analysis produces:
// the set of allocation sites whose objects were observed crossing the
// compartment boundary during profiling runs. The enforcement build
// consumes a Profile to rewrite exactly those allocation sites to draw from
// the shared pool MU (§4.3.1).
package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// AllocID identifies one allocation call site: the paper's tuple of
// function ID, basic-block ID and call-site ID, which ties a recorded fault
// back to its origin location in the IR.
type AllocID struct {
	Func  string
	Block uint32
	Site  uint32
}

// String renders the id in the canonical "func@block.site" form.
func (id AllocID) String() string {
	return fmt.Sprintf("%s@%d.%d", id.Func, id.Block, id.Site)
}

// ParseAllocID parses the canonical form produced by String.
func ParseAllocID(s string) (AllocID, error) {
	at := strings.LastIndexByte(s, '@')
	if at <= 0 {
		return AllocID{}, fmt.Errorf("profile: malformed alloc id %q", s)
	}
	rest := s[at+1:]
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return AllocID{}, fmt.Errorf("profile: malformed alloc id %q", s)
	}
	block, err := strconv.ParseUint(rest[:dot], 10, 32)
	if err != nil {
		return AllocID{}, fmt.Errorf("profile: malformed block in %q: %v", s, err)
	}
	site, err := strconv.ParseUint(rest[dot+1:], 10, 32)
	if err != nil {
		return AllocID{}, fmt.Errorf("profile: malformed site in %q: %v", s, err)
	}
	return AllocID{Func: s[:at], Block: uint32(block), Site: uint32(site)}, nil
}

// Record aggregates what profiling observed for one shared allocation site.
type Record struct {
	Faults uint64 `json:"faults"` // cross-compartment accesses observed
	Bytes  uint64 `json:"bytes"`  // bytes of the objects that faulted
}

// Profile is the set of allocation sites that must allocate from MU.
type Profile struct {
	shared map[AllocID]*Record
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{shared: make(map[AllocID]*Record)}
}

// Add records a cross-compartment access to an object of the given size
// allocated at id. The first Add marks the site shared; later Adds only
// bump counters, matching the paper's "record each AllocId once" with
// fault counting layered on for diagnostics.
func (p *Profile) Add(id AllocID, size uint64) {
	r := p.shared[id]
	if r == nil {
		r = &Record{}
		p.shared[id] = r
	}
	r.Faults++
	r.Bytes += size
}

// Contains reports whether id was recorded as shared.
func (p *Profile) Contains(id AllocID) bool {
	_, ok := p.shared[id]
	return ok
}

// Get returns the record for id, if present.
func (p *Profile) Get(id AllocID) (Record, bool) {
	r, ok := p.shared[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Len returns the number of shared sites.
func (p *Profile) Len() int { return len(p.shared) }

// IDs returns the shared sites in deterministic (string) order.
func (p *Profile) IDs() []AllocID {
	ids := make([]AllocID, 0, len(p.shared))
	for id := range p.shared {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	return ids
}

// Merge folds other's records into p, the operation behind combining
// profiles from multiple profiling runs (test suites, browsing sessions).
func (p *Profile) Merge(other *Profile) {
	for id, r := range other.shared {
		dst := p.shared[id]
		if dst == nil {
			dst = &Record{}
			p.shared[id] = dst
		}
		dst.Faults += r.Faults
		dst.Bytes += r.Bytes
	}
}

// Diff reports the sites present in p but not in other (the profiles'
// set difference). Together with Merge it supports the paper's workflow
// of building the deployment profile from many separate profiling runs
// (test suites, browsing sessions) and auditing what each contributed.
func (p *Profile) Diff(other *Profile) []AllocID {
	var out []AllocID
	for _, id := range p.IDs() {
		if !other.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// MarshalJSON encodes the profile as {"id": record, ...} with canonical
// string ids, so profiles diff cleanly in version control.
func (p *Profile) MarshalJSON() ([]byte, error) {
	m := make(map[string]*Record, len(p.shared))
	for id, r := range p.shared {
		m[id.String()] = r
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes the MarshalJSON form.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var m map[string]*Record
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	p.shared = make(map[AllocID]*Record, len(m))
	for s, r := range m {
		id, err := ParseAllocID(s)
		if err != nil {
			return err
		}
		p.shared[id] = r
	}
	return nil
}
