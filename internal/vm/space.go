// Package vm simulates the virtual-memory substrate PKRU-Safe runs on: a
// paged 48-bit address space whose pages carry MPK protection keys, regions
// reserved up front with on-demand paging (the mmap idiom pkalloc uses to
// reserve the trusted heap), and per-thread CPU contexts whose PKRU register
// gates every load and store.
//
// Faults are delivered through a simulated signal table (package sig),
// allowing the PKRU-Safe profiling runtime to interpose on SIGSEGV, record
// the faulting allocation, single-step the access, and resume — exactly the
// loop described in §4.3.2 of the paper.
package vm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpk"
)

// Addr is a simulated virtual address.
type Addr uint64

const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of a virtual-memory page (4 KiB).
	PageSize = 1 << PageShift
	// PageMask masks the offset-within-page bits of an address.
	PageMask = PageSize - 1
	// AddrBits is the width of the simulated virtual address space.
	AddrBits = 48
	// MaxAddr is the first address beyond the simulated address space.
	MaxAddr Addr = 1 << AddrBits
)

// PageBase returns the base address of the page containing a.
func (a Addr) PageBase() Addr { return a &^ PageMask }

// PageIndex returns the virtual page number containing a.
func (a Addr) PageIndex() uint64 { return uint64(a) >> PageShift }

func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// page is one resident 4 KiB page.
type page struct {
	data []byte // allocated on first touch
	pkey mpk.Key
}

// Region is a contiguous reservation of address space, the analogue of an
// anonymous mmap. Pages inside a region become resident on first touch and
// inherit the region's protection key; this gives reservation of the whole
// trusted heap "virtually no cost if those pages are never used" (§4.4).
type Region struct {
	Name string
	Base Addr
	Size uint64
	PKey mpk.Key
}

// End returns the first address past the region.
func (r *Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Space is a simulated address space: a sparse page table plus the set of
// reserved regions. A Space may be shared by many threads; page-table
// operations are internally synchronized.
type Space struct {
	mu      sync.RWMutex
	pages   map[uint64]*page // virtual page number -> resident page
	regions []*Region        // sorted by Base, non-overlapping
}

// NewSpace returns an empty address space with no reservations.
func NewSpace() *Space {
	return &Space{pages: make(map[uint64]*page)}
}

// Reserve registers a region of address space with the given protection
// key. Base and size must be page-aligned, non-empty, in range, and the
// region must not overlap an existing reservation.
func (s *Space) Reserve(name string, base Addr, size uint64, key mpk.Key) (*Region, error) {
	if base&PageMask != 0 || size&PageMask != 0 {
		return nil, fmt.Errorf("vm: reserve %q: base %v / size %#x not page-aligned", name, base, size)
	}
	if size == 0 {
		return nil, fmt.Errorf("vm: reserve %q: empty region", name)
	}
	// The subtraction form avoids overflow: a size near 2^64 would wrap
	// base+size past zero and slip through an addition-based bound check,
	// registering a region whose End() precedes its Base.
	if base >= MaxAddr || size > uint64(MaxAddr) || uint64(base) > uint64(MaxAddr)-size {
		return nil, fmt.Errorf("vm: reserve %q: [%v, +%#x) outside %d-bit address space", name, base, size, AddrBits)
	}
	if !key.Valid() {
		return nil, fmt.Errorf("vm: reserve %q: invalid protection key %d", name, key)
	}
	r := &Region{Name: name, Base: base, Size: size, PKey: key}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range s.regions {
		if base < o.End() && o.Base < r.End() {
			return nil, fmt.Errorf("vm: reserve %q: overlaps region %q [%v, %v)", name, o.Name, o.Base, o.End())
		}
	}
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > base })
	s.regions = append(s.regions, nil)
	copy(s.regions[i+1:], s.regions[i:])
	s.regions[i] = r
	return r, nil
}

// RegionAt returns the region containing a, or nil if a is unreserved.
func (s *Space) RegionAt(a Addr) *Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.regionAtLocked(a)
}

func (s *Space) regionAtLocked(a Addr) *Region {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > a })
	if i < len(s.regions) && s.regions[i].Contains(a) {
		return s.regions[i]
	}
	return nil
}

// Regions returns a snapshot of the reserved regions in address order.
func (s *Space) Regions() []*Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// pageAt returns the resident page covering a, materializing it if a falls
// inside a reserved region. It returns nil if a is unmapped.
func (s *Space) pageAt(a Addr) *page {
	vpn := a.PageIndex()
	s.mu.RLock()
	p := s.pages[vpn]
	s.mu.RUnlock()
	if p != nil {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p = s.pages[vpn]; p != nil { // lost a race; someone else faulted it in
		return p
	}
	r := s.regionAtLocked(a)
	if r == nil {
		return nil
	}
	p = &page{data: make([]byte, PageSize), pkey: r.PKey}
	s.pages[vpn] = p
	return p
}

// SetPKey retags [base, base+size) with a new protection key, the analogue
// of pkey_mprotect. The range must be page-aligned and fully reserved. Both
// resident pages and the backing regions are retagged, so pages touched
// later inherit the new key; a region partially covered by the range is
// split so the retag applies exactly to [base, base+size).
func (s *Space) SetPKey(base Addr, size uint64, key mpk.Key) error {
	if base&PageMask != 0 || size&PageMask != 0 {
		return fmt.Errorf("vm: pkey_mprotect: range [%v, %#x) not page-aligned", base, uint64(base)+size)
	}
	if !key.Valid() {
		return fmt.Errorf("vm: pkey_mprotect: invalid protection key %d", key)
	}
	// Same overflow-safe bound as Reserve: a wrapping base+size used to
	// make end precede base, so the reservation walk below saw an empty
	// range and the call succeeded as a silent no-op.
	if size != 0 && (size > uint64(MaxAddr) || uint64(base) > uint64(MaxAddr)-size) {
		return fmt.Errorf("vm: pkey_mprotect: [%v, +%#x) outside %d-bit address space", base, size, AddrBits)
	}
	end := base + Addr(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Verify the whole range is reserved before mutating anything.
	for a := base; a < end; {
		r := s.regionAtLocked(a)
		if r == nil {
			return fmt.Errorf("vm: pkey_mprotect: %v not reserved", a)
		}
		a = r.End()
	}
	var added []*Region
	for _, r := range s.regions {
		if end <= r.Base || r.End() <= base {
			continue
		}
		lo, hi := r.Base, r.End()
		if base > lo {
			added = append(added, &Region{Name: r.Name, Base: lo, Size: uint64(base - lo), PKey: r.PKey})
			lo = base
		}
		if end < hi {
			added = append(added, &Region{Name: r.Name, Base: end, Size: uint64(hi - end), PKey: r.PKey})
			hi = end
		}
		r.Base, r.Size, r.PKey = lo, uint64(hi-lo), key
	}
	s.regions = append(s.regions, added...)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	for vpn, p := range s.pages {
		a := Addr(vpn) << PageShift
		if a >= base && a < end {
			p.pkey = key
		}
	}
	return nil
}

// SetPageKey retags the resident pages of [base, base+size) with a new
// protection key without touching the region table — the in-place healing
// primitive the fault supervisor uses to migrate a misclassified object
// MT→MU. Unlike SetPKey it never splits a reservation, so allocator
// region-ownership checks (pkalloc's regionT/regionU Contains tests) keep
// seeing the original reservations; only the page-level key, which is what
// the MMU checks, changes. Pages in the range that are not yet resident
// are materialized first so the retag sticks. The range must be
// page-aligned and fully reserved.
func (s *Space) SetPageKey(base Addr, size uint64, key mpk.Key) error {
	if base&PageMask != 0 || size&PageMask != 0 {
		return fmt.Errorf("vm: set page key: range [%v, %#x) not page-aligned", base, uint64(base)+size)
	}
	if !key.Valid() {
		return fmt.Errorf("vm: set page key: invalid protection key %d", key)
	}
	if size != 0 && (size > uint64(MaxAddr) || uint64(base) > uint64(MaxAddr)-size) {
		return fmt.Errorf("vm: set page key: [%v, +%#x) outside %d-bit address space", base, size, AddrBits)
	}
	end := base + Addr(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	for a := base; a < end; {
		r := s.regionAtLocked(a)
		if r == nil {
			return fmt.Errorf("vm: set page key: %v not reserved", a)
		}
		a = r.End()
	}
	for a := base; a < end; a += PageSize {
		vpn := a.PageIndex()
		p := s.pages[vpn]
		if p == nil {
			p = &page{data: make([]byte, PageSize)}
			s.pages[vpn] = p
		}
		p.pkey = key
	}
	return nil
}

// ZeroResident clears the contents of every resident page in [base,
// base+size), leaving keys and residency untouched. Quarantine uses it to
// scrub a compromised untrusted pool before handing the address range to a
// fresh allocator. The range must be page-aligned.
func (s *Space) ZeroResident(base Addr, size uint64) error {
	if base&PageMask != 0 || size&PageMask != 0 {
		return fmt.Errorf("vm: zero resident: range [%v, %#x) not page-aligned", base, uint64(base)+size)
	}
	if size != 0 && (size > uint64(MaxAddr) || uint64(base) > uint64(MaxAddr)-size) {
		return fmt.Errorf("vm: zero resident: [%v, +%#x) outside %d-bit address space", base, size, AddrBits)
	}
	end := base + Addr(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	for vpn, p := range s.pages {
		a := Addr(vpn) << PageShift
		if a >= base && a < end {
			for i := range p.data {
				p.data[i] = 0
			}
		}
	}
	return nil
}

// PKeyAt returns the protection key governing address a and whether a is
// reserved at all.
func (s *Space) PKeyAt(a Addr) (mpk.Key, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p := s.pages[a.PageIndex()]; p != nil {
		return p.pkey, true
	}
	if r := s.regionAtLocked(a); r != nil {
		return r.PKey, true
	}
	return 0, false
}

// PageInfo describes one page for diagnostics: whether it falls inside a
// reservation, whether it has been materialized, and the protection key
// and region governing it. Crash forensics renders a window of these
// around a faulting address.
type PageInfo struct {
	Base     Addr
	Reserved bool
	Resident bool
	PKey     mpk.Key // meaningful only when Reserved
	Region   string  // owning reservation's name, "" if unreserved
}

// PageMapAround reports the pages within radius pages on each side of a
// (inclusive), clamped to the address space, oldest address first. The
// whole window is read under one lock so the view is consistent.
func (s *Space) PageMapAround(a Addr, radius int) []PageInfo {
	if radius < 0 {
		radius = 0
	}
	first := a.PageBase()
	for i := 0; i < radius && first >= PageSize; i++ {
		first -= PageSize
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PageInfo, 0, 2*radius+1)
	for p := first; p < MaxAddr && len(out) < cap(out); p += PageSize {
		info := PageInfo{Base: p}
		if pg := s.pages[p.PageIndex()]; pg != nil {
			info.Reserved, info.Resident, info.PKey = true, true, pg.pkey
		} else if r := s.regionAtLocked(p); r != nil {
			info.Reserved, info.PKey = true, r.PKey
		}
		if r := s.regionAtLocked(p); r != nil {
			info.Region = r.Name
		}
		out = append(out, info)
	}
	return out
}

// ResidentPages returns the number of pages that have been touched and are
// therefore backed by committed memory.
func (s *Space) ResidentPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// ResidentBytes returns ResidentPages expressed in bytes.
func (s *Space) ResidentBytes() uint64 { return uint64(s.ResidentPages()) * PageSize }

// Peek copies len(buf) bytes from the address space into buf without any
// protection-key check. It stands in for accesses made by the trusted
// runtime itself (the profiler's metadata lookups, test assertions); it
// still requires the range to be reserved.
func (s *Space) Peek(a Addr, buf []byte) error {
	return s.rawAccess(a, buf, false)
}

// Poke copies buf into the address space without any protection-key check.
func (s *Space) Poke(a Addr, buf []byte) error {
	return s.rawAccess(a, buf, true)
}

func (s *Space) rawAccess(a Addr, buf []byte, write bool) error {
	for off := 0; off < len(buf); {
		p := s.pageAt(a + Addr(off))
		if p == nil {
			return fmt.Errorf("vm: raw %s at unmapped address %v", accessName(write), a+Addr(off))
		}
		po := int(uint64(a+Addr(off)) & PageMask)
		n := copyChunk(p, po, buf[off:], write)
		off += n
	}
	return nil
}

func accessName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// copyChunk moves bytes between buf and one page starting at page offset po,
// returning the number of bytes moved.
func copyChunk(p *page, po int, buf []byte, write bool) int {
	n := PageSize - po
	if n > len(buf) {
		n = len(buf)
	}
	if write {
		copy(p.data[po:po+n], buf[:n])
	} else {
		copy(buf[:n], p.data[po:po+n])
	}
	return n
}
