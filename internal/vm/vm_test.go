package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mpk"
	"repro/internal/sig"
)

const (
	testBase Addr   = 0x1000_0000
	testSize uint64 = 64 * PageSize
)

func newTestThread(t *testing.T, key mpk.Key) (*Space, *Thread) {
	t.Helper()
	s := NewSpace()
	if _, err := s.Reserve("test", testBase, testSize, key); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	return s, NewThread(s, nil)
}

func TestReserveValidation(t *testing.T) {
	s := NewSpace()
	if _, err := s.Reserve("bad-align", testBase+1, PageSize, 0); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := s.Reserve("bad-size", testBase, PageSize+5, 0); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := s.Reserve("empty", testBase, 0, 0); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := s.Reserve("bad-key", testBase, PageSize, 16); err == nil {
		t.Error("invalid pkey accepted")
	}
	if _, err := s.Reserve("too-high", MaxAddr-PageSize, 2*PageSize, 0); err == nil {
		t.Error("region beyond 48-bit space accepted")
	}
	// Sizes near 2^64 wrap base+size past zero; an addition-based bound
	// check accepts them and produces a region whose End() precedes its
	// Base (found by the conformance fuzzer, FuzzSpaceOracle).
	if _, err := s.Reserve("wrap", testBase, ^uint64(0)-PageSize+1, 0); err == nil {
		t.Error("wrapping size accepted")
	}
	if _, err := s.Reserve("wrap-max", testBase, 0xffffff3030303000, 1); err == nil {
		t.Error("wrapping size accepted")
	}
	if _, err := s.Reserve("ok", testBase, 4*PageSize, 1); err != nil {
		t.Fatalf("valid reserve failed: %v", err)
	}
	if _, err := s.Reserve("overlap", testBase+PageSize, PageSize, 0); err == nil {
		t.Error("overlapping reserve accepted")
	}
}

func TestSetPKeyWrapRejected(t *testing.T) {
	s := NewSpace()
	if _, err := s.Reserve("r", testBase, 4*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	// A wrapping range used to make the reservation walk see an empty
	// span, so the call succeeded as a silent no-op instead of failing.
	if err := s.SetPKey(testBase, ^uint64(0)-PageSize+1, 2); err == nil {
		t.Error("wrapping SetPKey range accepted")
	}
	if k, _ := s.PKeyAt(testBase); k != 1 {
		t.Errorf("key after rejected SetPKey = %d, want 1", k)
	}
	// len=0 stays a successful no-op, as with pkey_mprotect.
	if err := s.SetPKey(testBase, 0, 2); err != nil {
		t.Errorf("zero-size SetPKey: %v", err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	_, th := newTestThread(t, 0)
	addr := testBase + 128
	if err := th.Store64(addr, 0xdeadbeefcafef00d); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	v, err := th.Load64(addr)
	if err != nil {
		t.Fatalf("Load64: %v", err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Errorf("Load64 = %#x", v)
	}
	if err := th.Store32(addr+8, 0x1337); err != nil {
		t.Fatalf("Store32: %v", err)
	}
	v32, err := th.Load32(addr + 8)
	if err != nil || v32 != 0x1337 {
		t.Errorf("Load32 = %#x, %v", v32, err)
	}
	if err := th.Store8(addr+12, 0xab); err != nil {
		t.Fatalf("Store8: %v", err)
	}
	b, err := th.Load8(addr + 12)
	if err != nil || b != 0xab {
		t.Errorf("Load8 = %#x, %v", b, err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	_, th := newTestThread(t, 0)
	addr := testBase + PageSize - 3 // straddles a page boundary
	want := []byte{1, 2, 3, 4, 5, 6, 7}
	if err := th.Write(addr, want); err != nil {
		t.Fatalf("Write across pages: %v", err)
	}
	got := make([]byte, len(want))
	if err := th.Read(addr, got); err != nil {
		t.Fatalf("Read across pages: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	_, th := newTestThread(t, 0)
	_, err := th.Load64(0x7000_0000)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected *Fault, got %v", err)
	}
	if f.Info.Sig != sig.SIGSEGV || f.Info.Code != sig.CodeMapErr {
		t.Errorf("fault = %v, want SIGSEGV/SEGV_MAPERR", f.Info)
	}
}

func TestPKUViolationFaults(t *testing.T) {
	_, th := newTestThread(t, 1)
	addr := testBase + 64
	if err := th.Store64(addr, 7); err != nil {
		t.Fatalf("store with permissive PKRU: %v", err)
	}
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	_, err := th.Load64(addr)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected *Fault, got %v", err)
	}
	if f.Info.Code != sig.CodePKUErr || f.Info.PKey != 1 {
		t.Errorf("fault = %v, want SEGV_PKUERR pkey=1", f.Info)
	}
	if f.Info.Access != sig.AccessRead {
		t.Errorf("fault access = %v, want read", f.Info.Access)
	}
}

func TestWriteDisableAllowsReads(t *testing.T) {
	_, th := newTestThread(t, 2)
	addr := testBase
	if err := th.Store64(addr, 99); err != nil {
		t.Fatal(err)
	}
	th.SetRights(mpk.PermitAll.With(2, mpk.ReadOnly))
	if v, err := th.Load64(addr); err != nil || v != 99 {
		t.Errorf("read under WD: %v, %v", v, err)
	}
	err := th.Store64(addr, 100)
	var f *Fault
	if !errors.As(err, &f) || f.Info.Access != sig.AccessWrite {
		t.Errorf("write under WD should fault with write access, got %v", err)
	}
}

// TestFaultHandlerRepairAndSingleStep exercises the profiler's loop: grant
// access on SEGV_PKUERR, arm the trap flag, and restore rights on SIGTRAP.
func TestFaultHandlerRepairAndSingleStep(t *testing.T) {
	s := NewSpace()
	if _, err := s.Reserve("trusted", testBase, testSize, 1); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	th := NewThread(s, tbl)

	locked := mpk.PermitAll.With(1, mpk.DenyAll)
	var pkuFaults, trapRestores int
	tbl.Register(sig.SIGSEGV, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		if info.Code != sig.CodePKUErr {
			return sig.Unhandled
		}
		pkuFaults++
		ctx.SetPKRU(uint32(mpk.PermitAll))
		ctx.SetTrapFlag(true)
		return sig.Handled
	}))
	tbl.Register(sig.SIGTRAP, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		trapRestores++
		ctx.SetPKRU(uint32(locked))
		ctx.SetTrapFlag(false)
		return sig.Handled
	}))

	if err := th.Store64(testBase, 41); err != nil { // permissive: no fault
		t.Fatal(err)
	}
	th.SetRights(locked)
	v, err := th.Load64(testBase)
	if err != nil {
		t.Fatalf("repaired access failed: %v", err)
	}
	if v != 41 {
		t.Errorf("value = %d, want 41", v)
	}
	if pkuFaults != 1 || trapRestores != 1 {
		t.Errorf("faults=%d traps=%d, want 1 and 1", pkuFaults, trapRestores)
	}
	if th.Rights() != locked {
		t.Errorf("rights after single-step = %v, want restored %v", th.Rights(), locked)
	}
	// Rights were restored, so the next access faults again and goes through
	// another repair/single-step round trip rather than sailing through.
	if _, err := th.Load64(testBase); err != nil {
		t.Fatalf("second repaired access failed: %v", err)
	}
	if pkuFaults != 2 || trapRestores != 2 {
		t.Errorf("after second access: faults=%d traps=%d, want 2 and 2", pkuFaults, trapRestores)
	}
}

// TestLyingHandlerTerminates: a handler that returns Handled without fixing
// the rights must not loop forever.
func TestLyingHandlerTerminates(t *testing.T) {
	s := NewSpace()
	if _, err := s.Reserve("trusted", testBase, testSize, 1); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	tbl.Register(sig.SIGSEGV, sig.HandlerFunc(func(*sig.Info, sig.Context) sig.Action {
		return sig.Handled // lie: nothing repaired
	}))
	th := NewThread(s, tbl)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	if _, err := th.Load64(testBase); err == nil {
		t.Error("access should eventually fail despite lying handler")
	}
}

func TestSetPKeyRetagsResidentAndFuturePages(t *testing.T) {
	s, th := newTestThread(t, 0)
	touched := testBase             // make page resident before retag
	future := testBase + 8*PageSize // untouched until after retag
	if err := th.Store8(touched, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPKey(testBase, testSize, 3); err != nil {
		t.Fatalf("SetPKey: %v", err)
	}
	th.SetRights(mpk.PermitAll.With(3, mpk.DenyAll))
	if _, err := th.Load8(touched); err == nil {
		t.Error("resident page not retagged")
	}
	if err := th.Store8(future, 1); err == nil {
		t.Error("future page did not inherit new key")
	}
}

func TestSetPKeySplitsRegions(t *testing.T) {
	s, _ := newTestThread(t, 0)
	mid := testBase + 16*PageSize
	if err := s.SetPKey(mid, 4*PageSize, 5); err != nil {
		t.Fatalf("SetPKey: %v", err)
	}
	if k, ok := s.PKeyAt(mid); !ok || k != 5 {
		t.Errorf("PKeyAt(mid) = %v, %v; want 5", k, ok)
	}
	if k, ok := s.PKeyAt(testBase); !ok || k != 0 {
		t.Errorf("PKeyAt(base) = %v, %v; want original 0", k, ok)
	}
	if k, ok := s.PKeyAt(mid + 4*PageSize); !ok || k != 0 {
		t.Errorf("PKeyAt(after) = %v, %v; want original 0", k, ok)
	}
	if err := s.SetPKey(0x9000_0000, PageSize, 1); err == nil {
		t.Error("SetPKey on unreserved range accepted")
	}
}

func TestOnDemandPaging(t *testing.T) {
	s, th := newTestThread(t, 0)
	if got := s.ResidentPages(); got != 0 {
		t.Fatalf("resident pages before touch = %d, want 0 (reservation is lazy)", got)
	}
	if err := th.Store8(testBase+5*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentPages(); got != 1 {
		t.Errorf("resident pages after one touch = %d, want 1", got)
	}
	if got := s.ResidentBytes(); got != PageSize {
		t.Errorf("resident bytes = %d, want %d", got, PageSize)
	}
}

func TestPeekPokeBypassPKRU(t *testing.T) {
	s, th := newTestThread(t, 1)
	th.SetRights(mpk.DenyAllExcept()) // thread can access nothing
	if err := s.Poke(testBase, []byte{9, 8, 7}); err != nil {
		t.Fatalf("Poke: %v", err)
	}
	buf := make([]byte, 3)
	if err := s.Peek(testBase, buf); err != nil {
		t.Fatalf("Peek: %v", err)
	}
	if buf[0] != 9 || buf[2] != 7 {
		t.Errorf("Peek = %v", buf)
	}
	if err := s.Peek(0xdead0000, buf); err == nil {
		t.Error("Peek of unreserved memory should error")
	}
}

func TestStatsCounters(t *testing.T) {
	_, th := newTestThread(t, 1)
	_ = th.Store64(testBase, 1)
	_, _ = th.Load64(testBase)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	_, _ = th.Load64(testBase) // faults fatally
	st := th.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", st.Loads, st.Stores)
	}
	if st.PKUFaults == 0 {
		t.Error("PKU faults not counted")
	}
	if st.WRPKRU != 1 {
		t.Errorf("WRPKRU count = %d, want 1", st.WRPKRU)
	}
}

func TestRegionAccessors(t *testing.T) {
	s, _ := newTestThread(t, 2)
	r := s.RegionAt(testBase + 100)
	if r == nil || r.Name != "test" || r.PKey != 2 {
		t.Fatalf("RegionAt = %+v", r)
	}
	if s.RegionAt(testBase+Addr(testSize)) != nil {
		t.Error("RegionAt past end should be nil")
	}
	if got := len(s.Regions()); got != 1 {
		t.Errorf("Regions() len = %d", got)
	}
}

// Property: any aligned write inside a region reads back identically
// through both the checked and unchecked paths.
func TestReadbackProperty(t *testing.T) {
	s, th := newTestThread(t, 0)
	f := func(off uint32, val uint64) bool {
		addr := testBase + Addr(uint64(off)%(testSize-8))
		if err := th.Store64(addr, val); err != nil {
			return false
		}
		got, err := th.Load64(addr)
		if err != nil || got != val {
			return false
		}
		var raw [8]byte
		if err := s.Peek(addr, raw[:]); err != nil {
			return false
		}
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(raw[i])
		}
		return v == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: protection is exact at page granularity — retagging page P
// never affects accessibility of P-1 or P+1.
func TestPageGranularityProperty(t *testing.T) {
	f := func(pageIdx uint8) bool {
		s := NewSpace()
		if _, err := s.Reserve("r", testBase, testSize, 0); err != nil {
			return false
		}
		th := NewThread(s, nil)
		n := Addr(uint64(pageIdx)%62 + 1) // pages 1..62 of 64
		target := testBase + n*PageSize
		if err := s.SetPKey(target, PageSize, 7); err != nil {
			return false
		}
		th.SetRights(mpk.PermitAll.With(7, mpk.DenyAll))
		if err := th.Store8(target, 1); err == nil {
			return false // target must fault
		}
		if err := th.Store8(target-1, 1); err != nil {
			return false // preceding byte must not
		}
		if err := th.Store8(target+PageSize, 1); err != nil {
			return false // following page must not
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Info: sig.Info{Sig: sig.SIGSEGV, Code: sig.CodePKUErr, Addr: 0x1000, PKey: 1}}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.PageBase() != 0x12000 {
		t.Errorf("PageBase = %v", a.PageBase())
	}
	if a.PageIndex() != 0x12 {
		t.Errorf("PageIndex = %#x", a.PageIndex())
	}
}

// TestRetryExhaustionSurfacesTerminalFault pins the MaxFaultRetries
// contract: a handler that keeps claiming repairs gets exactly
// MaxFaultRetries re-executions, after which the access surfaces a
// terminal *Fault carrying the final siginfo — no livelock, no silent
// success — and the retries are visible in Stats.FaultRetries.
func TestRetryExhaustionSurfacesTerminalFault(t *testing.T) {
	s := NewSpace()
	if _, err := s.Reserve("trusted", testBase, testSize, 1); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	dispatched := 0
	tbl.Register(sig.SIGSEGV, sig.HandlerFunc(func(*sig.Info, sig.Context) sig.Action {
		dispatched++
		return sig.Handled // lie: nothing repaired
	}))
	th := NewThread(s, tbl)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))

	_, err := th.Load64(testBase)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error = %v, want *Fault", err)
	}
	if f.Info.Code != sig.CodePKUErr || f.Info.Addr != uint64(testBase) {
		t.Errorf("terminal fault info = %+v, want PKUERR at %v", f.Info, testBase)
	}
	if dispatched != MaxFaultRetries {
		t.Errorf("handler dispatched %d times, want exactly MaxFaultRetries (%d)", dispatched, MaxFaultRetries)
	}
	st := th.Stats()
	if st.FaultRetries != MaxFaultRetries {
		t.Errorf("Stats.FaultRetries = %d, want %d", st.FaultRetries, MaxFaultRetries)
	}
	// Every retry re-delivered the same PKU fault.
	if st.PKUFaults != MaxFaultRetries+1 {
		t.Errorf("Stats.PKUFaults = %d, want %d", st.PKUFaults, MaxFaultRetries+1)
	}
}

// TestGenuineRepairCostsOneRetry: the tracer-style grant handler needs one
// retry per fault, nowhere near the exhaustion bound.
func TestGenuineRepairCostsOneRetry(t *testing.T) {
	s := NewSpace()
	if _, err := s.Reserve("trusted", testBase, testSize, 1); err != nil {
		t.Fatal(err)
	}
	tbl := new(sig.Table)
	tbl.Register(sig.SIGSEGV, sig.HandlerFunc(func(info *sig.Info, ctx sig.Context) sig.Action {
		ctx.SetPKRU(uint32(mpk.PermitAll))
		return sig.Handled
	}))
	th := NewThread(s, tbl)
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll))
	if _, err := th.Load64(testBase); err != nil {
		t.Fatalf("repaired access failed: %v", err)
	}
	if st := th.Stats(); st.FaultRetries != 1 {
		t.Errorf("Stats.FaultRetries = %d, want 1", st.FaultRetries)
	}
}

func TestSetPageKeyRetagsWithoutSplittingRegions(t *testing.T) {
	s, th := newTestThread(t, 1)
	r := s.Regions()[0]
	obj := testBase + 4*PageSize
	if err := th.Store64(obj, 7); err != nil { // resident before retag
		t.Fatal(err)
	}
	if err := s.SetPageKey(obj, 2*PageSize, 0); err != nil {
		t.Fatalf("SetPageKey: %v", err)
	}
	// The reservation is untouched: same single region, same bounds/key.
	regs := s.Regions()
	if len(regs) != 1 || regs[0] != r || regs[0].PKey != 1 || regs[0].Size != testSize {
		t.Errorf("regions after SetPageKey = %+v, want original single region", regs)
	}
	// The page-level key (what the MMU checks) changed for exactly the range.
	if k, _ := s.PKeyAt(obj); k != 0 {
		t.Errorf("PKeyAt(retagged) = %d, want 0", k)
	}
	if k, _ := s.PKeyAt(obj + PageSize); k != 0 {
		t.Errorf("PKeyAt(retagged, second page) = %d, want 0", k)
	}
	if k, _ := s.PKeyAt(obj - PageSize); k != 1 {
		t.Errorf("PKeyAt(neighbour below) = %d, want untouched 1", k)
	}
	if k, _ := s.PKeyAt(obj + 2*PageSize); k != 1 {
		t.Errorf("PKeyAt(neighbour above) = %d, want untouched 1", k)
	}
	// Contents survive (healing must not lose the object).
	th.SetRights(mpk.PermitAll.With(1, mpk.DenyAll)) // untrusted view
	if v, err := th.Load64(obj); err != nil || v != 7 {
		t.Errorf("load after retag = %d, %v; want 7, nil", v, err)
	}
	if _, err := th.Load64(obj - PageSize); err == nil {
		t.Error("neighbour page readable with key 1 denied")
	}
	// Validation mirrors SetPKey.
	if err := s.SetPageKey(obj+1, PageSize, 0); err == nil {
		t.Error("unaligned SetPageKey accepted")
	}
	if err := s.SetPageKey(0x9000_0000, PageSize, 0); err == nil {
		t.Error("SetPageKey on unreserved range accepted")
	}
	if err := s.SetPageKey(obj, ^uint64(0)-PageSize+1, 0); err == nil {
		t.Error("wrapping SetPageKey range accepted")
	}
	if err := s.SetPageKey(obj, PageSize, 16); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestZeroResidentScrubsRange(t *testing.T) {
	s, th := newTestThread(t, 0)
	inside := testBase + 2*PageSize
	outside := testBase + 10*PageSize
	if err := th.Store64(inside, 0xdead); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(outside, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if err := s.ZeroResident(testBase, 8*PageSize); err != nil {
		t.Fatalf("ZeroResident: %v", err)
	}
	if v, _ := th.Load64(inside); v != 0 {
		t.Errorf("scrubbed word = %#x, want 0", v)
	}
	if v, _ := th.Load64(outside); v != 0xbeef {
		t.Errorf("word outside range = %#x, want untouched", v)
	}
	if err := s.ZeroResident(testBase+1, PageSize); err == nil {
		t.Error("unaligned ZeroResident accepted")
	}
}
