package vm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/mpk"
	"repro/internal/sig"
)

// Fault is the error produced when a data access cannot be completed and no
// signal handler repairs the condition — the simulated equivalent of the
// process dying on an unhandled SIGSEGV.
type Fault struct {
	Info sig.Info // the siginfo that was (or would have been) delivered
	PKRU mpk.PKRU // thread rights at the time of the fault
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: unhandled %s (pkru=%#08x)", f.Info.String(), uint32(f.PKRU))
}

// Stats counts the memory events a thread has performed. All fields are
// monotone counters.
type Stats struct {
	Loads     uint64 // completed load accesses
	Stores    uint64 // completed store accesses
	PKUFaults uint64 // SIGSEGV deliveries with SEGV_PKUERR
	MapFaults uint64 // SIGSEGV deliveries with SEGV_MAPERR
	Traps     uint64 // SIGTRAP deliveries (single-step completions)
	WRPKRU    uint64 // writes to the PKRU register

	// FaultRetries counts accesses re-executed after a handler reported
	// sig.Handled. A retry is not a new fault: one access repaired and
	// re-run on the first attempt contributes one PKU/map fault and one
	// retry. Values approaching MaxFaultRetries per access indicate a
	// handler that claims repairs without changing the rights.
	FaultRetries uint64

	// RoguePKRU counts PKRU writes the WRPKRU guard suppressed: attempts
	// to widen rights from outside a privileged gate bracket (see
	// SetPKRUGuard).
	RoguePKRU uint64
	// SigClamped counts signal returns whose restored PKRU the sanitizer
	// clamped back to the dispatch-time rights (see SetSigPolicy).
	SigClamped uint64
	// Migrations counts CPU-context restores (see RestoreContext).
	Migrations uint64
}

// Thread is a simulated CPU context: the PKRU register, the trap flag used
// for single-stepping, and the signal table faults are delivered through.
// A Thread is owned by one goroutine at a time; its counters may be read
// concurrently.
type Thread struct {
	space *Space
	sigs  *sig.Table

	pkru atomic.Uint32
	trap atomic.Bool

	loads        atomic.Uint64
	stores       atomic.Uint64
	pkuFaults    atomic.Uint64
	mapFaults    atomic.Uint64
	traps        atomic.Uint64
	wrpkru       atomic.Uint64
	faultRetries atomic.Uint64
	roguePKRU    atomic.Uint64
	sigClamped   atomic.Uint64
	migrations   atomic.Uint64

	// Hardening state (see harden.go). guard and privileged implement the
	// WRPKRU guard; sigPolicy selects the signal-frame sanitizer; the
	// grant fields carry the profiling covenant between a SEGV grant and
	// its single-step retirement; revalidate audits migration restores.
	guard         atomic.Bool
	privileged    atomic.Int32
	endPrivileged func()
	sigPolicy     atomic.Int32
	grantArmed    bool
	grantBase     uint32
	revalidate    func(saved mpk.PKRU) (mpk.PKRU, error)

	// metrics, when non-nil, mirrors the counters above into the
	// process-wide telemetry registry (see metrics.go).
	metrics *Metrics
}

// NewThread creates a thread on the given address space. The signal table
// may be shared between threads (process-wide dispositions) and may be nil,
// in which case every fault is fatal. The initial PKRU permits everything.
func NewThread(space *Space, sigs *sig.Table) *Thread {
	if sigs == nil {
		sigs = new(sig.Table)
	}
	t := &Thread{space: space, sigs: sigs}
	t.endPrivileged = func() { t.privileged.Add(-1) }
	return t
}

// Space returns the address space the thread executes against.
func (t *Thread) Space() *Space { return t.space }

// Signals returns the thread's signal table.
func (t *Thread) Signals() *sig.Table { return t.sigs }

// PKRU returns the current rights register as a raw 32-bit value,
// implementing sig.Context (and RDPKRU).
func (t *Thread) PKRU() uint32 { return t.pkru.Load() }

// SetPKRU writes the rights register (WRPKRU), implementing sig.Context.
// With the WRPKRU guard armed (SetPKRUGuard), a write that widens rights
// from outside a privileged gate bracket is suppressed and counted — the
// rogue-WRPKRU defense Garmr requires of every PKU sandbox.
func (t *Thread) SetPKRU(v uint32) {
	if t.guard.Load() && t.privileged.Load() == 0 && mpk.PKRU(v).Escalates(t.Rights()) {
		t.roguePKRU.Add(1)
		if m := t.metrics; m != nil {
			m.RoguePKRU.Inc()
		}
		return
	}
	t.pkru.Store(v)
	t.wrpkru.Add(1)
	if m := t.metrics; m != nil {
		m.WRPKRU.Inc()
	}
}

// Rights returns the rights register as an mpk.PKRU value.
func (t *Thread) Rights() mpk.PKRU { return mpk.PKRU(t.pkru.Load()) }

// SetRights writes the rights register from an mpk.PKRU value.
func (t *Thread) SetRights(p mpk.PKRU) { t.SetPKRU(uint32(p)) }

// TrapFlag reports whether the single-step trap flag is set, implementing
// sig.Context.
func (t *Thread) TrapFlag() bool { return t.trap.Load() }

// SetTrapFlag arms or disarms single-stepping, implementing sig.Context.
func (t *Thread) SetTrapFlag(v bool) { t.trap.Store(v) }

// Stats returns a snapshot of the thread's event counters.
func (t *Thread) Stats() Stats {
	return Stats{
		Loads:        t.loads.Load(),
		Stores:       t.stores.Load(),
		PKUFaults:    t.pkuFaults.Load(),
		MapFaults:    t.mapFaults.Load(),
		Traps:        t.traps.Load(),
		WRPKRU:       t.wrpkru.Load(),
		FaultRetries: t.faultRetries.Load(),
		RoguePKRU:    t.roguePKRU.Load(),
		SigClamped:   t.sigClamped.Load(),
		Migrations:   t.migrations.Load(),
	}
}

// MaxFaultRetries bounds how many times a single access may fault, be
// reported sig.Handled, and be re-executed before the access is abandoned
// with a terminal *Fault. It guards against livelock under a handler that
// claims to repair a fault without actually changing the rights or the
// mapping: after MaxFaultRetries fruitless repairs the final siginfo is
// surfaced as if no handler existed. A genuinely repairing handler (the
// profiling tracer's grant-step-restore loop) needs exactly one retry per
// fault, so the bound is far above anything a correct handler reaches.
// Retries are counted in Stats.FaultRetries and exported through
// telemetry as pkrusafe_vm_fault_retries_total.
const MaxFaultRetries = 8

// access performs one checked data access of len(buf) bytes at addr,
// faulting per page exactly as the MMU would.
func (t *Thread) access(addr Addr, buf []byte, kind sig.AccessKind) error {
	for off := 0; off < len(buf); {
		a := addr + Addr(off)
		p, err := t.checkPage(a, kind)
		if err != nil {
			return err
		}
		po := int(uint64(a) & PageMask)
		off += copyChunk(p, po, buf[off:], kind == sig.AccessWrite)
	}
	if kind == sig.AccessWrite {
		t.stores.Add(1)
		if m := t.metrics; m != nil {
			m.Stores.Inc()
		}
	} else {
		t.loads.Add(1)
		if m := t.metrics; m != nil {
			m.Loads.Inc()
		}
	}
	// Single-step: with the trap flag armed, raise SIGTRAP once the access
	// retires so the profiler can restore the pre-fault rights (§4.3.2).
	if t.trap.Load() {
		t.traps.Add(1)
		if m := t.metrics; m != nil {
			m.Traps.Inc()
		}
		info := &sig.Info{Sig: sig.SIGTRAP, Addr: uint64(addr), Access: kind}
		entry := t.Rights()
		if t.sigs.Dispatch(info, t) == sig.Unhandled {
			t.trap.Store(false)
			return &Fault{Info: *info, PKRU: t.Rights()}
		}
		t.sigreturn(entry, true)
	}
	return nil
}

// checkPage resolves the page for a, delivering SIGSEGV and retrying while
// a handler repairs the condition. The common no-fault case is decided
// here without constructing a sig.Info — that struct is passed to handlers
// by pointer and therefore heap-escapes, which would cost an allocation on
// every access.
func (t *Thread) checkPage(a Addr, kind sig.AccessKind) (*page, error) {
	if p := t.space.pageAt(a); p != nil && t.allowed(p.pkey, kind) {
		return p, nil
	}
	return t.checkPageSlow(a, kind)
}

func (t *Thread) checkPageSlow(a Addr, kind sig.AccessKind) (*page, error) {
	for try := 0; ; try++ {
		p := t.space.pageAt(a)
		var info sig.Info
		switch {
		case p == nil:
			info = sig.Info{Sig: sig.SIGSEGV, Code: sig.CodeMapErr, Addr: uint64(a), Access: kind}
			t.mapFaults.Add(1)
			if m := t.metrics; m != nil {
				m.MapFaults.Inc()
			}
		case !t.allowed(p.pkey, kind):
			info = sig.Info{Sig: sig.SIGSEGV, Code: sig.CodePKUErr, Addr: uint64(a), Access: kind, PKey: uint8(p.pkey)}
			t.pkuFaults.Add(1)
			if m := t.metrics; m != nil {
				m.PKUFaults.Inc()
			}
		default:
			return p, nil
		}
		if try >= MaxFaultRetries {
			return nil, &Fault{Info: info, PKRU: t.Rights()}
		}
		entry := t.Rights()
		switch t.sigs.Dispatch(&info, t) {
		case sig.Handled:
			t.sigreturn(entry, false)
			t.faultRetries.Add(1)
			if m := t.metrics; m != nil {
				m.FaultRetries.Inc()
			}
			continue // handler repaired the state; re-execute the access
		default:
			return nil, &Fault{Info: info, PKRU: t.Rights()}
		}
	}
}

func (t *Thread) allowed(key mpk.Key, kind sig.AccessKind) bool {
	r := mpk.PKRU(t.pkru.Load()).Rights(key)
	if kind == sig.AccessWrite {
		return r.CanWrite()
	}
	return r.CanRead()
}

// Read copies len(buf) bytes from addr into buf under PKRU checking.
func (t *Thread) Read(addr Addr, buf []byte) error {
	return t.access(addr, buf, sig.AccessRead)
}

// Write copies buf to addr under PKRU checking.
func (t *Thread) Write(addr Addr, buf []byte) error {
	return t.access(addr, buf, sig.AccessWrite)
}

// Load8 reads one byte at addr.
func (t *Thread) Load8(addr Addr) (byte, error) {
	var b [1]byte
	err := t.access(addr, b[:], sig.AccessRead)
	return b[0], err
}

// Store8 writes one byte at addr.
func (t *Thread) Store8(addr Addr, v byte) error {
	b := [1]byte{v}
	return t.access(addr, b[:], sig.AccessWrite)
}

// Load32 reads a little-endian uint32 at addr.
func (t *Thread) Load32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := t.access(addr, b[:], sig.AccessRead); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Store32 writes a little-endian uint32 at addr.
func (t *Thread) Store32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return t.access(addr, b[:], sig.AccessWrite)
}

// Load64 reads a little-endian uint64 at addr.
func (t *Thread) Load64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := t.access(addr, b[:], sig.AccessRead); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Store64 writes a little-endian uint64 at addr.
func (t *Thread) Store64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return t.access(addr, b[:], sig.AccessWrite)
}
