package vm

import (
	"sync"
	"testing"

	"repro/internal/mpk"
)

// TestSetPKeyRaceWithReaders hammers SetPKey concurrently with PKeyAt and
// PageMapAround over the same span. Run under -race this pins down the
// Space locking discipline; without -race it still checks that readers
// only ever observe one of the keys actually written, never torn or stale
// garbage.
func TestSetPKeyRaceWithReaders(t *testing.T) {
	const (
		base  Addr = 0x5000_0000_0000
		pages      = 64
		iters      = 200
	)
	s := NewSpace()
	if _, err := s.Reserve("race", base, pages*PageSize, 2); err != nil {
		t.Fatal(err)
	}

	keys := []mpk.Key{2, 5, 9}
	valid := map[mpk.Key]bool{}
	for _, k := range keys {
		valid[k] = true
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writers: flip the whole span and sub-spans between the palette keys.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				k := keys[(i+w)%len(keys)]
				off := Addr((i % 4) * 8 * PageSize)
				size := uint64((8 + i%8) * PageSize)
				if uint64(off)+size > pages*PageSize {
					size = pages*PageSize - uint64(off)
				}
				if err := s.SetPKey(base+off, size, k); err != nil {
					t.Errorf("SetPKey: %v", err)
					return
				}
			}
		}(w)
	}

	// Readers: point queries across the span.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := base + Addr(i%pages)*PageSize
				k, ok := s.PKeyAt(a)
				if !ok {
					t.Errorf("PKeyAt(%v): address vanished", a)
					return
				}
				if !valid[k] {
					t.Errorf("PKeyAt(%v) = %v, not a key any writer installed", a, k)
					return
				}
			}
		}()
	}

	// Reader: windowed page-map sweeps (the crash-forensics path).
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, pi := range s.PageMapAround(base+Addr(i%pages)*PageSize, 8) {
				if pi.Reserved && pi.Base >= base && pi.Base < base+pages*PageSize && !valid[pi.PKey] {
					t.Errorf("PageMapAround: page %v has key %v, not a key any writer installed", pi.Base, pi.PKey)
					return
				}
			}
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()
}
