package vm

import "repro/internal/telemetry"

// Metrics bundles the registry counters a thread promotes its per-access
// events into. Individual fields may be nil (their increments are no-ops)
// and a nil *Metrics disables promotion entirely — the load/store hot
// path then costs a single pointer test beyond the thread's own atomic
// counters.
type Metrics struct {
	Loads     *telemetry.Counter
	Stores    *telemetry.Counter
	PKUFaults *telemetry.Counter
	MapFaults *telemetry.Counter
	Traps     *telemetry.Counter
	WRPKRU    *telemetry.Counter

	// FaultRetries counts accesses re-executed after a sig.Handled repair
	// (see Stats.FaultRetries).
	FaultRetries *telemetry.Counter

	// RoguePKRU counts PKRU writes the WRPKRU guard suppressed because
	// they widened rights outside a privileged gate bracket.
	RoguePKRU *telemetry.Counter
	// SigClamped counts signal returns whose restored PKRU the sanitizer
	// clamped back to the dispatch-time rights.
	SigClamped *telemetry.Counter
	// Migrations counts CPU-context restores (scheduler migrations).
	Migrations *telemetry.Counter
}

// NewMetrics registers the thread counter families on reg and returns the
// bundle. A nil registry yields a nil bundle.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Loads:     reg.Counter("pkrusafe_vm_loads_total", "Completed load accesses."),
		Stores:    reg.Counter("pkrusafe_vm_stores_total", "Completed store accesses."),
		PKUFaults: reg.Counter("pkrusafe_vm_pku_faults_total", "SIGSEGV deliveries with SEGV_PKUERR."),
		MapFaults: reg.Counter("pkrusafe_vm_map_faults_total", "SIGSEGV deliveries with SEGV_MAPERR."),
		Traps:     reg.Counter("pkrusafe_vm_traps_total", "SIGTRAP deliveries (single-step completions)."),
		WRPKRU:    reg.Counter("pkrusafe_vm_wrpkru_total", "Writes to the PKRU register."),
		FaultRetries: reg.Counter("pkrusafe_vm_fault_retries_total",
			"Accesses re-executed after a signal handler repaired a fault."),
		RoguePKRU: reg.Counter("pkrusafe_vm_rogue_pkru_total",
			"PKRU writes suppressed by the WRPKRU guard (widening outside a gate)."),
		SigClamped: reg.Counter("pkrusafe_vm_sig_clamped_total",
			"Signal returns whose restored PKRU was clamped by the sanitizer."),
		Migrations: reg.Counter("pkrusafe_vm_migrations_total",
			"CPU-context restores (scheduler migrations)."),
	}
}

// SetMetrics attaches (or, with nil, detaches) registry promotion to the
// thread. Call before handing the thread to its running goroutine; the
// field is not synchronized against in-flight accesses.
func (t *Thread) SetMetrics(m *Metrics) { t.metrics = m }
