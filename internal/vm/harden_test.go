package vm

import (
	"errors"
	"testing"

	"repro/internal/mpk"
)

func TestPKRUGuardSuppressesRogueWidening(t *testing.T) {
	th := NewThread(NewSpace(), nil)
	th.SetRights(mpk.DenyAllExcept(0))
	th.SetPKRUGuard(true)
	if !th.PKRUGuard() {
		t.Fatal("guard not armed")
	}

	// A widening write outside any privileged bracket is a rogue WRPKRU:
	// suppressed, counted, rights unchanged.
	th.SetPKRU(uint32(mpk.PermitAll))
	if got := th.Rights(); got != mpk.DenyAllExcept(0) {
		t.Fatalf("rogue widening took effect: %v", got)
	}
	if st := th.Stats(); st.RoguePKRU != 1 {
		t.Errorf("RoguePKRU = %d, want 1", st.RoguePKRU)
	}

	// Narrowing is always allowed — dropping rights is never an escape.
	th.SetPKRU(uint32(mpk.DenyAllExcept()))
	if got := th.Rights(); got != mpk.DenyAllExcept() {
		t.Fatalf("narrowing write suppressed: %v", got)
	}

	// Inside a privileged bracket (a gate transition) widening is fine.
	end := th.BeginPrivilegedPKRU()
	th.SetPKRU(uint32(mpk.PermitAll))
	end()
	if got := th.Rights(); got != mpk.PermitAll {
		t.Fatalf("bracketed widening suppressed: %v", got)
	}

	// InstallAudited brackets itself via the PrivilegedRegister interface.
	th.SetRights(mpk.DenyAllExcept(0))
	if err := mpk.InstallAudited(th, mpk.PermitAll); err != nil {
		t.Fatalf("InstallAudited under guard: %v", err)
	}
	if st := th.Stats(); st.RoguePKRU != 1 {
		t.Errorf("RoguePKRU = %d after legitimate writes, want still 1", st.RoguePKRU)
	}

	// Disarmed: widening passes again.
	th.SetPKRUGuard(false)
	th.SetRights(mpk.DenyAllExcept(0))
	th.SetPKRU(uint32(mpk.PermitAll))
	if got := th.Rights(); got != mpk.PermitAll {
		t.Fatalf("widening suppressed with guard off: %v", got)
	}
}

func TestSaveRestoreContextRoundTrip(t *testing.T) {
	th := NewThread(NewSpace(), nil)
	th.SetRights(mpk.DenyAllExcept(0, 5))
	th.SetTrapFlag(true)
	saved := th.SaveContext()
	th.SetRights(mpk.PermitAll)
	th.SetTrapFlag(false)
	wrpkruBefore := th.Stats().WRPKRU
	if err := th.RestoreContext(saved); err != nil {
		t.Fatal(err)
	}
	if got := th.Rights(); got != mpk.DenyAllExcept(0, 5) {
		t.Errorf("rights = %v after restore", got)
	}
	if !th.TrapFlag() {
		t.Error("trap flag not restored")
	}
	if st := th.Stats(); st.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1", st.Migrations)
	}
	// Restores do not count as program WRPKRUs.
	if st := th.Stats(); st.WRPKRU != wrpkruBefore {
		t.Errorf("WRPKRU = %d, want %d (restore must not count)", st.WRPKRU, wrpkruBefore)
	}
}

func TestRestoreContextRevalidator(t *testing.T) {
	th := NewThread(NewSpace(), nil)
	rewritten := mpk.DenyAllExcept(0)
	th.SetMigrationRevalidator(func(saved mpk.PKRU) (mpk.PKRU, error) {
		return rewritten, nil
	})
	if err := th.RestoreContext(CPUContext{PKRU: uint32(mpk.PermitAll)}); err != nil {
		t.Fatal(err)
	}
	if got := th.Rights(); got != rewritten {
		t.Errorf("rights = %v, want revalidator's %v", got, rewritten)
	}

	// A revalidation error must leave the current context untouched.
	boom := errors.New("stale context")
	th.SetMigrationRevalidator(func(mpk.PKRU) (mpk.PKRU, error) { return 0, boom })
	th.SetRights(mpk.DenyAllExcept(0, 7))
	th.SetTrapFlag(true)
	err := th.RestoreContext(CPUContext{PKRU: uint32(mpk.PermitAll), Trap: false})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped revalidator error", err)
	}
	if got := th.Rights(); got != mpk.DenyAllExcept(0, 7) {
		t.Errorf("rights changed on failed restore: %v", got)
	}
	if !th.TrapFlag() {
		t.Error("trap flag changed on failed restore")
	}
	if st := th.Stats(); st.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1 (failed restore not counted)", st.Migrations)
	}
}

func TestSigPolicyString(t *testing.T) {
	for p, want := range map[SigPolicy]string{SigOpen: "open", SigProfiling: "profiling", SigStrict: "strict"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}
