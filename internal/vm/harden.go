package vm

import (
	"fmt"

	"repro/internal/mpk"
	"repro/internal/sig"
)

// This file holds the thread-level Garmr defenses: the WRPKRU guard
// (rejecting rights widening outside a gate), the signal-frame PKRU
// sanitizer (clamping what a handler "restores" to the rights the
// interrupted compartment actually held), and scheduler-migration context
// save/restore with PKRU revalidation. All three default off — the
// simulator's baseline semantics are unchanged until a defense is armed —
// so the attack drills can run each scenario both ways.

// SigPolicy selects how a thread treats the PKRU value left behind by a
// signal handler when the handler returns (the simulated sigreturn).
type SigPolicy int32

const (
	// SigOpen trusts handlers completely: whatever PKRU the handler wrote
	// stands. This is the historical (and kernel-default) behavior —
	// sigreturn restores attacker-controllable uc_mcontext bytes — and the
	// red-drill configuration for the sigframe-tampering attack.
	SigOpen SigPolicy = iota

	// SigProfiling clamps any escalation over the dispatch-time rights
	// unless the handler also armed the single-step trap flag — the
	// profiler's grant-step-restore covenant (§4.3.2): a widened PKRU is
	// tolerated for exactly one access, and at SIGTRAP retirement the
	// rights are audited (and clamped) against the pre-grant baseline.
	SigProfiling

	// SigStrict clamps every escalation, profiling grants included. Under
	// this policy a signal handler can only ever narrow rights.
	SigStrict
)

func (p SigPolicy) String() string {
	switch p {
	case SigOpen:
		return "open"
	case SigProfiling:
		return "profiling"
	case SigStrict:
		return "strict"
	}
	return fmt.Sprintf("SigPolicy(%d)", int32(p))
}

// SetSigPolicy selects the signal-frame PKRU sanitizer policy. The default
// is SigOpen (no sanitization).
func (t *Thread) SetSigPolicy(p SigPolicy) { t.sigPolicy.Store(int32(p)) }

// SigPolicyValue returns the active sanitizer policy.
func (t *Thread) SigPolicyValue() SigPolicy { return SigPolicy(t.sigPolicy.Load()) }

// sigreturn audits the PKRU a handler left behind, after a dispatch that
// returned sig.Handled. entry is the rights register at delivery time;
// fromTrap marks SIGTRAP (single-step retirement) deliveries. It runs on
// the faulting thread itself — the dispatched sig.Context stays the
// thread, so observers keying state on the context identity are unaware.
func (t *Thread) sigreturn(entry mpk.PKRU, fromTrap bool) {
	policy := SigPolicy(t.sigPolicy.Load())
	if policy == SigOpen {
		return
	}
	if fromTrap && t.grantArmed {
		// Retirement of an earlier profiling grant: the covenant's audit
		// baseline is the rights held before the grant, not the widened
		// window the trap handler was delivered under.
		t.grantArmed = false
		entry = mpk.PKRU(t.grantBase)
	}
	// The grant-step-restore covenant: under SigProfiling a SEGV handler
	// may widen rights only with the single-step trap armed; the widening
	// is then audited at trap retirement against the pre-grant baseline.
	allowEscalation := policy == SigProfiling && !fromTrap && t.trap.Load()
	value, clamped := sig.SanitizePKRU(uint32(entry), t.pkru.Load(), allowEscalation)
	if !clamped {
		if allowEscalation && mpk.PKRU(value).Escalates(entry) {
			t.grantArmed = true
			t.grantBase = uint32(entry)
		}
		return
	}
	// Clamp through the raw register, not SetPKRU: sanitization is not a
	// WRPKRU the program performed, and must not trip the guard.
	t.pkru.Store(value)
	t.sigClamped.Add(1)
	if m := t.metrics; m != nil {
		m.SigClamped.Inc()
	}
}

// SetPKRUGuard arms (or disarms) the WRPKRU guard: while armed, a SetPKRU
// that widens rights is honored only inside a privileged bracket (every
// mpk.InstallAudited gate transition opens one); any other widening write
// is suppressed and counted in Stats.RoguePKRU. Narrowing writes always
// pass — dropping one's own rights is never an escape.
func (t *Thread) SetPKRUGuard(on bool) { t.guard.Store(on) }

// PKRUGuard reports whether the WRPKRU guard is armed.
func (t *Thread) PKRUGuard() bool { return t.guard.Load() }

// BeginPrivilegedPKRU opens a privileged PKRU-write bracket and returns
// the closer (one shared closure per thread — the bracket must not
// allocate). Gate code on a Thread doesn't need it: mpk.InstallAudited
// writes through InstallGateRights instead. The bracket remains for code
// that performs raw SetPKRU sequences it wants recognized as gate writes.
func (t *Thread) BeginPrivilegedPKRU() func() {
	t.privileged.Add(1)
	return t.endPrivileged
}

// InstallGateRights writes the rights register as a gate transition,
// implementing mpk.GateRegister. A gate install is a legitimate writer by
// definition, so the rogue-WRPKRU guard does not apply — and the gate hot
// path pays no guard synchronization per transition.
func (t *Thread) InstallGateRights(p mpk.PKRU) {
	t.pkru.Store(uint32(p))
	t.wrpkru.Add(1)
	if m := t.metrics; m != nil {
		m.WRPKRU.Inc()
	}
}

// CPUContext is the slice of thread state a scheduler saves when
// descheduling: the PKRU register and the single-step trap flag — exactly
// the state the XSAVE area carries across a real migration.
type CPUContext struct {
	PKRU uint32
	Trap bool
}

// SaveContext snapshots the migratable CPU state.
func (t *Thread) SaveContext() CPUContext {
	return CPUContext{PKRU: t.pkru.Load(), Trap: t.trap.Load()}
}

// SetMigrationRevalidator installs the PKRU revalidation hook RestoreContext
// runs before reinstalling a saved context. The hook receives the saved
// PKRU and returns the value actually safe to install — on a virtual-key
// system the saved bits may name hardware slots that were rebound to other
// tenants while the thread was off-CPU (the Garmr stale-PKRU-after-
// migration hazard), so the hook re-derives rights from current bindings.
// A nil hook restores the saved value verbatim. Call before handing the
// thread to its running goroutine; the field is not synchronized.
func (t *Thread) SetMigrationRevalidator(f func(saved mpk.PKRU) (mpk.PKRU, error)) {
	t.revalidate = f
}

// RestoreContext reinstalls a previously saved CPU context, as a scheduler
// does when the thread lands on a new CPU. With a migration revalidator
// installed the saved PKRU is audited (and possibly rewritten) first; an
// error leaves the current context untouched.
func (t *Thread) RestoreContext(c CPUContext) error {
	p := mpk.PKRU(c.PKRU)
	if t.revalidate != nil {
		var err error
		if p, err = t.revalidate(p); err != nil {
			return fmt.Errorf("vm: migration revalidation: %w", err)
		}
	}
	t.pkru.Store(uint32(p))
	t.trap.Store(c.Trap)
	t.migrations.Add(1)
	if m := t.metrics; m != nil {
		m.Migrations.Inc()
	}
	return nil
}
