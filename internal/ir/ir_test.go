package ir

import (
	"testing"

	"repro/internal/profile"
)

func TestModuleAddAndLookup(t *testing.T) {
	m := NewModule("m")
	f := &Func{Name: "f"}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFunc(&Func{Name: "f"}); err == nil {
		t.Error("duplicate function accepted")
	}
	got, ok := m.Func("f")
	if !ok || got != f {
		t.Errorf("Func lookup = %v, %v", got, ok)
	}
	if _, ok := m.Func("g"); ok {
		t.Error("missing function found")
	}
}

func TestModuleLookupWithoutIndex(t *testing.T) {
	// A module built by literal (no NewModule) must still resolve lookups.
	m := &Module{Name: "lit", Funcs: []*Func{{Name: "a"}, {Name: "b"}}}
	if _, ok := m.Func("b"); !ok {
		t.Error("literal module lookup failed")
	}
}

func TestFuncBlocks(t *testing.T) {
	f := &Func{Name: "f"}
	e := f.AddBlock("entry")
	l := f.AddBlock("loop")
	if f.Entry() != e {
		t.Error("Entry() wrong")
	}
	if b, ok := f.Block("loop"); !ok || b != l {
		t.Error("Block lookup wrong")
	}
	if l.Index != 1 {
		t.Errorf("block index = %d", l.Index)
	}
	if (&Func{}).Entry() != nil {
		t.Error("empty func Entry() should be nil")
	}
	// Literal-built functions index lazily.
	g := &Func{Name: "g", Blocks: []*Block{{Name: "x"}}}
	if _, ok := g.Block("x"); !ok {
		t.Error("literal func block lookup failed")
	}
}

func TestTerminator(t *testing.T) {
	b := &Block{Name: "b"}
	if b.Terminator() != nil {
		t.Error("empty block has a terminator")
	}
	b.Instrs = []Instr{{Op: OpNop}, {Op: OpRet}}
	if b.Terminator().Op != OpRet {
		t.Error("terminator wrong")
	}
}

func TestNeedsEntryGate(t *testing.T) {
	cases := []struct {
		f    Func
		want bool
	}{
		{Func{Untrusted: false, Exported: true}, true},
		{Func{Untrusted: false, AddressTaken: true}, true},
		{Func{Untrusted: false}, false},
		{Func{Untrusted: true, Exported: true}, false},
		{Func{Untrusted: true, AddressTaken: true}, false},
	}
	for i, c := range cases {
		if got := c.f.NeedsEntryGate(); got != c.want {
			t.Errorf("case %d: NeedsEntryGate = %v, want %v", i, got, c.want)
		}
	}
}

func TestAllocSitesVisitsAllKinds(t *testing.T) {
	m := NewModule("m")
	f := &Func{Name: "f"}
	b := f.AddBlock("e")
	b.Instrs = []Instr{
		{Op: OpAlloc, Site: profile.AllocID{Func: "f"}},
		{Op: OpLoad},
		{Op: OpUAlloc},
		{Op: OpRealloc},
		{Op: OpRet},
	}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	var ops []Op
	m.AllocSites(func(_ *Func, _ *Block, ins *Instr) { ops = append(ops, ins.Op) })
	if len(ops) != 3 || ops[0] != OpAlloc || ops[1] != OpUAlloc || ops[2] != OpRealloc {
		t.Errorf("visited ops = %v", ops)
	}
}

func TestOperandHelpers(t *testing.T) {
	if !Imm(5).IsImm || Imm(5).Imm != 5 {
		t.Error("Imm broken")
	}
	if Reg("x").IsImm || Reg("x").Reg != "x" {
		t.Error("Reg broken")
	}
	if Imm(7).String() != "7" || Reg("v").String() != "v" {
		t.Error("Operand.String broken")
	}
}

func TestStringers(t *testing.T) {
	if OpAlloc.String() != "alloc" || OpICall.String() != "icall" {
		t.Error("op names")
	}
	if Op(200).String() == "" {
		t.Error("unknown op name empty")
	}
	if BinAdd.String() != "add" || BinGe.String() != "ge" {
		t.Error("bin names")
	}
	if BinKind(99).String() == "" {
		t.Error("unknown bin name empty")
	}
	if GateEnterUntrusted.String() != "gate(T->U)" ||
		GateEnterTrusted.String() != "gate(U->T)" ||
		GateNone.String() != "nogate" {
		t.Error("gate names")
	}
}

func TestBinKindByNameComplete(t *testing.T) {
	for name, kind := range BinKindByName {
		if kind.String() != name {
			t.Errorf("BinKindByName[%q] = %v, round trip broken", name, kind)
		}
	}
	if len(BinKindByName) != 16 {
		t.Errorf("binops = %d, want 16", len(BinKindByName))
	}
}
