// Package ir defines the intermediate representation PKRU-Safe's compiler
// passes operate on: a word-oriented, LLVM-flavoured IR whose interesting
// instructions — allocation calls, frees, loads/stores, direct and indirect
// calls — are exactly the ones the paper's instrumentation touches.
//
// Functions carry the library-level trust annotation (§3.2), allocation
// instructions carry the (function, block, site) AllocIds the profiler
// records (§4.3.1), and the compile package's passes rewrite Alloc ops to
// UAlloc for profiled sites, reproducing the enforcement build's
// "change the call to the allocator" step.
package ir

import (
	"fmt"

	"repro/internal/profile"
)

// Op enumerates the instruction set.
type Op uint8

const (
	OpInvalid  Op = iota
	OpConst       // dst = const imm
	OpBin         // dst = <binop> a, b
	OpAlloc       // dst = alloc size        (trusted pool; an allocation site)
	OpUAlloc      // dst = ualloc size       (untrusted pool; rewritten or explicit)
	OpRealloc     // dst = realloc ptr, size
	OpFree        // free ptr
	OpLoad        // dst = load ptr          (64-bit)
	OpStore       // store ptr, val
	OpLoadB       // dst = loadb ptr         (8-bit)
	OpStoreB      // storeb ptr, val
	OpCall        // [dst...] = call f(args)
	OpICall       // [dst...] = icall fp(args)
	OpFuncAddr    // dst = funcaddr f
	OpBr          // br cond, then, else
	OpJmp         // jmp target
	OpRet         // ret [vals...]
	OpPrint       // print val
	OpNop         // no operation
	OpSAlloc      // dst = salloc size   (stack slot in T, freed at return; §6 prototype)
	OpUSAlloc     // dst = usalloc size  (stack slot in MU; rewritten or explicit)
)

var opNames = map[Op]string{
	OpConst: "const", OpBin: "bin", OpAlloc: "alloc", OpUAlloc: "ualloc",
	OpRealloc: "realloc", OpFree: "free", OpLoad: "load", OpStore: "store",
	OpLoadB: "loadb", OpStoreB: "storeb", OpCall: "call", OpICall: "icall",
	OpFuncAddr: "funcaddr", OpBr: "br", OpJmp: "jmp", OpRet: "ret",
	OpPrint: "print", OpNop: "nop", OpSAlloc: "salloc", OpUSAlloc: "usalloc",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// BinKind enumerates binary operators.
type BinKind uint8

const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

var binNames = [...]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div", BinMod: "mod",
	BinAnd: "and", BinOr: "or", BinXor: "xor", BinShl: "shl", BinShr: "shr",
	BinEq: "eq", BinNe: "ne", BinLt: "lt", BinLe: "le", BinGt: "gt", BinGe: "ge",
}

func (b BinKind) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// BinKindByName maps mnemonics to BinKind.
var BinKindByName = func() map[string]BinKind {
	m := make(map[string]BinKind, len(binNames))
	for k, n := range binNames {
		m[n] = BinKind(k)
	}
	return m
}()

// Operand is either an immediate or a virtual-register reference.
type Operand struct {
	IsImm bool
	Imm   uint64
	Reg   string
}

// Imm constructs an immediate operand.
func Imm(v uint64) Operand { return Operand{IsImm: true, Imm: v} }

// Reg constructs a register operand.
func Reg(name string) Operand { return Operand{Reg: name} }

func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("%d", o.Imm)
	}
	return o.Reg
}

// Instr is one IR instruction. Fields are used according to Op.
type Instr struct {
	Op   Op
	Bin  BinKind   // OpBin
	Dst  []string  // destination registers (call/icall may have several)
	Args []Operand // value operands
	// Callee names the target of OpCall / OpFuncAddr.
	Callee string
	// Then/Else are branch targets (OpBr uses both; OpJmp uses Then).
	Then, Else string
	// Site is the allocation identifier assigned by compile.AssignAllocIDs
	// to OpAlloc/OpUAlloc/OpRealloc instructions.
	Site profile.AllocID
	// Gate is set by compile.InsertGates on boundary-crossing calls.
	Gate GateKind
	// Line is the 1-based source line for diagnostics (0 if synthetic).
	Line int
}

// GateKind marks the call-gate instrumentation on a call instruction.
type GateKind uint8

const (
	// GateNone: plain call, no compartment transition.
	GateNone GateKind = iota
	// GateEnterUntrusted: forward gate, T calling into U (§3.3).
	GateEnterUntrusted
	// GateEnterTrusted: reverse gate, U calling an exported T function.
	GateEnterTrusted
)

func (g GateKind) String() string {
	switch g {
	case GateEnterUntrusted:
		return "gate(T->U)"
	case GateEnterTrusted:
		return "gate(U->T)"
	default:
		return "nogate"
	}
}

// Block is a basic block: a label and a straight-line instruction list
// ending (by validation) in a terminator.
type Block struct {
	Name   string
	Index  int
	Instrs []Instr
}

// Terminator returns the block's final instruction, or nil if empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Func is one IR function.
type Func struct {
	Name   string
	Params []string
	Blocks []*Block

	// Untrusted carries the library-level annotation down to the function,
	// as the rustc plugin's AST expansion does for FFI crates (§4.1).
	Untrusted bool
	// Exported marks externally visible functions; trusted exported
	// functions receive entry (reverse) gates.
	Exported bool
	// AddressTaken is set by compile.MarkAddressTaken for functions whose
	// address escapes via funcaddr; they are legal icall targets (CFI) and,
	// if trusted, conservatively receive entry gates (§3.2).
	AddressTaken bool

	blockByName map[string]*Block
}

// Block returns the named block.
func (f *Func) Block(name string) (*Block, bool) {
	if f.blockByName == nil {
		f.reindex()
	}
	b, ok := f.blockByName[name]
	return b, ok
}

// Entry returns the function's first block, or nil.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// AddBlock appends a new empty block with the given label.
func (f *Func) AddBlock(name string) *Block {
	b := &Block{Name: name, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	if f.blockByName == nil {
		f.blockByName = make(map[string]*Block)
	}
	f.blockByName[name] = b
	return b
}

func (f *Func) reindex() {
	f.blockByName = make(map[string]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		b.Index = i
		f.blockByName[b.Name] = b
	}
}

// NeedsEntryGate reports whether the function must re-enter T through a
// reverse gate when invoked while executing in U: any trusted function
// that is exported or address-taken (§3.3: "we instrument all
// address-taken and externally visible APIs from T").
func (f *Func) NeedsEntryGate() bool {
	return !f.Untrusted && (f.Exported || f.AddressTaken)
}

// Module is a compilation unit: an ordered set of functions.
type Module struct {
	Name  string
	Funcs []*Func

	funcByName map[string]*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcByName: make(map[string]*Func)}
}

// AddFunc appends a function; redefinition is an error.
func (m *Module) AddFunc(f *Func) error {
	if m.funcByName == nil {
		m.reindex()
	}
	if _, dup := m.funcByName[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.Name] = f
	return nil
}

// Func returns the named function.
func (m *Module) Func(name string) (*Func, bool) {
	if m.funcByName == nil {
		m.reindex()
	}
	f, ok := m.funcByName[name]
	return f, ok
}

func (m *Module) reindex() {
	m.funcByName = make(map[string]*Func, len(m.Funcs))
	for _, f := range m.Funcs {
		m.funcByName[f.Name] = f
	}
}

// AllocSites calls fn for every allocation-site instruction in the module
// (OpAlloc, OpUAlloc, OpRealloc), in program order.
func (m *Module) AllocSites(fn func(f *Func, b *Block, ins *Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case OpAlloc, OpUAlloc, OpRealloc, OpSAlloc, OpUSAlloc:
					fn(f, b, &b.Instrs[i])
				}
			}
		}
	}
}
