package obs_test

import (
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/mpk"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/vm"
)

// quickstartRegistry is the E1 minimal example: an untrusted library
// writing into a buffer the trusted app hands it.
func quickstartRegistry(t *testing.T) *ffi.Registry {
	t.Helper()
	reg := ffi.NewRegistry()
	lib := reg.MustLibrary("clib", ffi.Untrusted)
	lib.Define("write_1337", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
		if err := th.Store64(vm.Addr(args[0]), 1337); err != nil {
			return nil, err
		}
		return nil, nil
	})
	return reg
}

// crashProgram builds an MPK program with forensics on, triggers the
// cross-compartment violation, and returns the program plus the error.
func crashProgram(t *testing.T) (*core.Program, vm.Addr, error) {
	t.Helper()
	ring := trace.NewRing(16)
	prog, err := core.NewProgram(quickstartRegistry(t), core.MPK, profile.New(),
		core.Options{Trace: ring, Forensics: true})
	if err != nil {
		t.Fatal(err)
	}
	site := prog.Site("main", 0, 0)
	buf, err := prog.AllocAt(site, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := prog.Main().Call("clib", "write_1337", uint64(buf))
	if runErr == nil {
		t.Fatal("unprofiled MPK run must fault")
	}
	return prog, buf, runErr
}

func TestCaptureReportFields(t *testing.T) {
	prog, buf, runErr := crashProgram(t)
	rec := prog.Forensics()
	if rec == nil {
		t.Fatal("Forensics() = nil with Options.Forensics set")
	}
	rep, ok := rec.Capture(runErr)
	if !ok {
		t.Fatalf("Capture(%v) failed", runErr)
	}

	if rep.Schema != obs.ReportSchema {
		t.Errorf("schema = %d, want %d", rep.Schema, obs.ReportSchema)
	}
	if rep.Config != "mpk" {
		t.Errorf("config = %q, want mpk", rep.Config)
	}
	if rep.Fault.Code != "SEGV_PKUERR" || rep.Fault.Access != "write" {
		t.Errorf("fault = %+v", rep.Fault)
	}
	trustedKey := uint8(prog.Allocator().TrustedKey())
	if rep.Fault.PKey != trustedKey {
		t.Errorf("fault pkey = %d, want trusted key %d", rep.Fault.PKey, trustedKey)
	}

	// Decoded PKRU: all sixteen keys present, the trusted key AD|WD (the
	// forward gate denies MT), key 0 still rw.
	if len(rep.PKRU.Keys) != mpk.NumKeys {
		t.Fatalf("decoded %d keys, want %d", len(rep.PKRU.Keys), mpk.NumKeys)
	}
	kt := rep.PKRU.Keys[trustedKey]
	if !kt.AD || !kt.WD || kt.Rights != "--" {
		t.Errorf("trusted key rights = %+v, want ad/wd set", kt)
	}
	if k0 := rep.PKRU.Keys[0]; k0.AD || k0.WD || k0.Rights != "rw" {
		t.Errorf("key 0 rights = %+v, want rw", k0)
	}

	// Compartment at fault time: untrusted, one live gate.
	if !rep.Compartment.Known || rep.Compartment.Name != "untrusted" || rep.Compartment.GateDepth != 1 {
		t.Errorf("compartment = %+v, want known untrusted depth 1", rep.Compartment)
	}

	// Provenance: the faulted object belongs to main@0.0.
	p := rep.Provenance
	if !p.Found || p.Site != "main@0.0" || p.Size != 8 {
		t.Errorf("provenance = %+v", p)
	}
	if want := "0x" + strings.TrimLeft(strings.ToLower(hex64(uint64(buf))), "0"); !strings.EqualFold(p.Base, want) {
		t.Errorf("provenance base = %q, want %q", p.Base, want)
	}

	// Page map: the faulting page is flagged and owned by the trusted key.
	var faulting *obs.PageInfo
	for i := range rep.Pages {
		if rep.Pages[i].Faulting {
			faulting = &rep.Pages[i]
		}
	}
	if faulting == nil {
		t.Fatal("no faulting page in page map")
	}
	if !faulting.Reserved || faulting.PKey != trustedKey || faulting.Region != "pkalloc/MT" {
		t.Errorf("faulting page = %+v", *faulting)
	}

	// Trace tail: at least the gate-enter crossing preceding the fault.
	if len(rep.Trace.Events) == 0 {
		t.Fatal("trace tail empty")
	}
	var sawGate bool
	for _, e := range rep.Trace.Events {
		if e.Kind == "gate-enter" {
			sawGate = true
		}
	}
	if !sawGate {
		t.Errorf("trace tail missing gate-enter: %+v", rep.Trace.Events)
	}
}

func hex64(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func TestReportRendering(t *testing.T) {
	prog, _, runErr := crashProgram(t)
	rep, ok := prog.Forensics().Capture(runErr)
	if !ok {
		t.Fatal("capture failed")
	}

	var text strings.Builder
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"PKRU-safe crash report",
		"SEGV_PKUERR",
		"<- faulting key",
		"site=main@0.0",
		"compartment: untrusted (gate depth 1)",
		"pkalloc/MT",
		"gate-enter",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back obs.Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Schema != obs.ReportSchema || back.Provenance.Site != rep.Provenance.Site {
		t.Errorf("round-tripped report = %+v", back)
	}
}

func TestCaptureNonFaultErrors(t *testing.T) {
	prog, _, _ := crashProgram(t)
	if _, ok := prog.Forensics().Capture(errors.New("not a fault")); ok {
		t.Error("Capture accepted a non-fault error")
	}
	if _, ok := prog.Forensics().Capture(nil); ok {
		t.Error("Capture accepted nil")
	}
	var nilRec *obs.Recorder
	if _, ok := nilRec.Capture(errors.New("x")); ok {
		t.Error("nil recorder captured")
	}
	// The nil recorder's logging methods must be no-ops, not panics.
	nilRec.LogAlloc(1, 2, profile.AllocID{})
	nilRec.LogRealloc(1, 2, 3)
	nilRec.LogDealloc(1)
	nilRec.Install(nil)
	if nilRec.Live() != 0 {
		t.Error("nil recorder Live != 0")
	}
}

// TestRecorderTracksFrees asserts freed and reallocated objects keep the
// metadata store consistent.
func TestRecorderTracksFrees(t *testing.T) {
	prog, err := core.NewProgram(quickstartRegistry(t), core.MPK, profile.New(),
		core.Options{Forensics: true})
	if err != nil {
		t.Fatal(err)
	}
	site := prog.Site("main", 0, 0)
	a, err := prog.AllocAt(site, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Forensics().Live(); got != 1 {
		t.Fatalf("live = %d, want 1", got)
	}
	b, err := prog.Realloc(a, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Forensics().Live(); got != 1 {
		t.Fatalf("live after realloc = %d, want 1", got)
	}
	if err := prog.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := prog.Forensics().Live(); got != 0 {
		t.Fatalf("live after free = %d, want 0", got)
	}
}

// TestDisabledPathCosts asserts the acceptance criterion for runs without
// -listen: building and running a program without observability spawns no
// goroutines and the checked access hot path stays allocation-free.
func TestDisabledPathCosts(t *testing.T) {
	before := runtime.NumGoroutine()
	prog, err := core.NewProgram(quickstartRegistry(t), core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	site := prog.Site("main", 0, 0)
	buf, err := prog.AllocAt(site, 8)
	if err != nil {
		t.Fatal(err)
	}
	th := prog.Main()
	if err := th.VM.Store64(buf, 42); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := th.VM.Load64(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("hot-path allocations = %v, want 0", allocs)
	}
	if after := runtime.NumGoroutine(); after != before {
		t.Errorf("goroutines %d -> %d without a server", before, after)
	}
}

// TestServerOffNoGoroutines pins the opt-in contract of the HTTP plane:
// merely importing and configuring obs (recorder included) starts nothing.
func TestServerOffNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	_, _, runErr := crashProgram(t)
	var f *vm.Fault
	if !errors.As(runErr, &f) {
		t.Fatal("expected fault")
	}
	if after := runtime.NumGoroutine(); after != before {
		t.Errorf("goroutines %d -> %d with forensics but no -listen", before, after)
	}
}
