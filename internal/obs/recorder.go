package obs

import (
	"errors"
	"sync"

	"repro/internal/mpk"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/sig"
	"repro/internal/trace"
	"repro/internal/vm"
)

// pageRadius is how many pages on each side of the faulting address the
// report's pkey ownership map covers.
const pageRadius = 2

// ThreadState lets the recorder ask a running thread whose code is
// logically executing. It is implemented by package core's thread adapter
// so obs never imports the FFI layer.
type ThreadState interface {
	// CompartmentName returns "trusted" or "untrusted".
	CompartmentName() string
	// GateDepth returns the number of live gate traversals on the thread.
	GateDepth() int
}

// Config parameterizes NewRecorder.
type Config struct {
	// Space is the address space faults are resolved against (required).
	Space *vm.Space
	// TrustedKey is the protection key tagging the MT pool.
	TrustedKey mpk.Key
	// BuildConfig names the run's configuration for the report header.
	BuildConfig string
	// Ring, when non-nil, supplies the report's trace tail.
	Ring *trace.Ring
	// Store overrides the allocation metadata store (nil: IntervalStore).
	Store provenance.Store
}

// faultState is what the signal handler captures while the faulting
// thread's gate stack is still intact — by the time the *vm.Fault error
// propagates out of the run, the gates have already unwound.
type faultState struct {
	info        sig.Info
	compartment string
	gateDepth   int
	known       bool
}

// Recorder is the fault forensics engine: it shadows the allocator with
// (address, size, AllocId) metadata, observes every SIGSEGV delivery
// through a chaining handler, and renders the combination into a Report
// when a run dies. All methods are nil-safe so callers instrument
// unconditionally; a nil *Recorder costs nothing.
type Recorder struct {
	space      *vm.Space
	trustedKey mpk.Key
	config     string
	ring       *trace.Ring

	mu       sync.Mutex
	store    provenance.Store
	threads  map[sig.Context]ThreadState
	prevSegv sig.Handler
	last     faultState
	haveLast bool
}

// NewRecorder creates a recorder for one program instance.
func NewRecorder(cfg Config) *Recorder {
	store := cfg.Store
	if store == nil {
		store = provenance.NewIntervalStore()
	}
	return &Recorder{
		space:      cfg.Space,
		trustedKey: cfg.TrustedKey,
		config:     cfg.BuildConfig,
		ring:       cfg.Ring,
		store:      store,
		threads:    make(map[sig.Context]ThreadState),
	}
}

// Install registers the recorder's SIGSEGV observer on the table,
// chaining to any previously installed handler. The observer is passive:
// it snapshots fault context and always defers the verdict, so fault
// semantics are unchanged. Install it before any repairing handler (the
// profiling tracer): handlers registered later dispatch first, so faults
// the tracer repairs never reach the recorder — only faults nothing
// claims, the ones about to kill the run.
func (r *Recorder) Install(table *sig.Table) {
	if r == nil {
		return
	}
	r.prevSegv = table.Register(sig.SIGSEGV, sig.HandlerFunc(r.onSegv))
}

// BindThread associates a fault-delivery context (the vm thread) with its
// compartment view so reports can say whose code was running.
func (r *Recorder) BindThread(ctx sig.Context, st ThreadState) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.threads[ctx] = st
	r.mu.Unlock()
}

// onSegv snapshots the fault context and defers to the previous handler
// (or declines), leaving delivery semantics untouched.
func (r *Recorder) onSegv(info *sig.Info, ctx sig.Context) sig.Action {
	r.mu.Lock()
	r.last = faultState{info: *info}
	if st := r.threads[ctx]; st != nil {
		r.last.compartment = st.CompartmentName()
		r.last.gateDepth = st.GateDepth()
		r.last.known = true
	}
	r.haveLast = true
	prev := r.prevSegv
	r.mu.Unlock()
	if prev != nil {
		return prev.Handle(info, ctx)
	}
	return sig.Unhandled
}

// LogAlloc records allocation metadata, mirroring the profiler's
// log_alloc callback: the report needs (address, size, AllocId) for
// whatever object a fatal fault lands in.
func (r *Recorder) LogAlloc(base, size uint64, id profile.AllocID) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.store.Track(provenance.Entry{Base: vm.Addr(base), Size: size, ID: id})
	r.mu.Unlock()
}

// LogRealloc transfers metadata to the object's new address, keeping the
// original allocation site (pools never change across realloc).
func (r *Recorder) LogRealloc(oldBase, newBase, newSize uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if e, ok := r.store.Untrack(vm.Addr(oldBase)); ok {
		e.Base, e.Size = vm.Addr(newBase), newSize
		r.store.Track(e)
	}
	r.mu.Unlock()
}

// LogDealloc drops metadata for a freed object.
func (r *Recorder) LogDealloc(base uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.store.Untrack(vm.Addr(base))
	r.mu.Unlock()
}

// Lookup resolves an address to the live allocation containing it, if the
// shadow store tracks one. The fault supervisor uses it to turn a PKUERR
// address into the concrete allocation site to heal.
func (r *Recorder) Lookup(addr uint64) (provenance.Entry, bool) {
	if r == nil {
		return provenance.Entry{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Lookup(vm.Addr(addr))
}

// Live returns the number of currently tracked objects.
func (r *Recorder) Live() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Len()
}

// Capture builds a crash report from the error a run died with. It
// reports ok=false when err does not carry a *vm.Fault (the run did not
// die on a memory fault) or the recorder is nil.
func (r *Recorder) Capture(err error) (rep *Report, ok bool) {
	if r == nil || err == nil {
		return nil, false
	}
	var f *vm.Fault
	if !errors.As(err, &f) {
		return nil, false
	}

	rep = &Report{
		Schema: ReportSchema,
		Config: r.config,
		Error:  err.Error(),
		Fault: FaultInfo{
			Signal: f.Info.Sig.String(),
			Code:   codeName(f.Info),
			Addr:   hexAddr(f.Info.Addr),
			Access: f.Info.Access.String(),
			PKey:   f.Info.PKey,
		},
		PKRU: decodePKRU(f.PKRU),
	}

	r.mu.Lock()
	if r.haveLast && r.last.info == f.Info {
		rep.Compartment = CompartmentInfo{
			Known:     r.last.known,
			Name:      r.last.compartment,
			GateDepth: r.last.gateDepth,
		}
	}
	if e, found := r.store.Lookup(vm.Addr(f.Info.Addr)); found {
		rep.Provenance = ProvenanceInfo{
			Found:  true,
			Site:   e.ID.String(),
			Base:   hexAddr(uint64(e.Base)),
			Size:   e.Size,
			Offset: f.Info.Addr - uint64(e.Base),
		}
	}
	rep.Provenance.LiveObjects = r.store.Len()
	r.mu.Unlock()

	if r.space != nil {
		for _, p := range r.space.PageMapAround(vm.Addr(f.Info.Addr), pageRadius) {
			rep.Pages = append(rep.Pages, PageInfo{
				Base:     hexAddr(uint64(p.Base)),
				Faulting: p.Base == vm.Addr(f.Info.Addr).PageBase(),
				Reserved: p.Reserved,
				Resident: p.Resident,
				PKey:     uint8(p.PKey),
				Region:   p.Region,
			})
		}
		for _, reg := range r.space.Regions() {
			rep.Regions = append(rep.Regions, RegionInfo{
				Name: reg.Name,
				Base: hexAddr(uint64(reg.Base)),
				Size: reg.Size,
				PKey: uint8(reg.PKey),
			})
		}
	}

	if r.ring != nil {
		events, dropped := r.ring.SnapshotDropped()
		rep.Trace = traceInfo(events, dropped)
	}
	return rep, true
}

// codeName renders the siginfo code the way strsignal-adjacent tooling
// prints it.
func codeName(info sig.Info) string {
	if info.Sig != sig.SIGSEGV {
		return ""
	}
	switch info.Code {
	case sig.CodeMapErr:
		return "SEGV_MAPERR"
	case sig.CodeAccErr:
		return "SEGV_ACCERR"
	case sig.CodePKUErr:
		return "SEGV_PKUERR"
	}
	return "SEGV_UNKNOWN"
}

// decodePKRU expands a raw PKRU value into per-key AD/WD bits.
func decodePKRU(p mpk.PKRU) PKRUInfo {
	info := PKRUInfo{Value: hexAddr(uint64(uint32(p)))}
	for k := mpk.Key(0); k < mpk.NumKeys; k++ {
		rights := p.Rights(k)
		info.Keys = append(info.Keys, KeyRights{
			Key:    uint8(k),
			AD:     rights&mpk.AccessDisable != 0,
			WD:     rights&mpk.WriteDisable != 0,
			Rights: rights.String(),
		})
	}
	return info
}
