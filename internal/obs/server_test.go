package obs_test

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("obs_test_hits_total", "Test counter.").Add(7)
	ring := trace.NewRing(8)
	ring.Emit(trace.Event{Kind: trace.GateEnter, Note: "clib"})

	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{Registry: reg, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := srv.URL()

	code, body, _ := get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "obs_test_hits_total 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	code, body, hdr = get(t, base+"/snapshot.json")
	if code != 200 || !strings.Contains(body, `"obs_test_hits_total"`) {
		t.Errorf("/snapshot.json = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/snapshot.json content-type = %q", ct)
	}

	code, body, _ = get(t, base+"/trace")
	if code != 200 || !strings.Contains(body, "gate-enter") {
		t.Errorf("/trace = %d %q", code, body)
	}

	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerNilBackends(t *testing.T) {
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, _ := get(t, srv.URL()+"/metrics")
	if code != 200 || body != "" {
		t.Errorf("/metrics without registry = %d %q, want empty 200", code, body)
	}
	code, body, _ = get(t, srv.URL()+"/trace")
	if code != 200 || !strings.Contains(body, "no trace ring") {
		t.Errorf("/trace without ring = %d %q", code, body)
	}
}

func TestServerShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _ = get(t, srv.URL()+"/healthz"); false {
		t.Fatal("unreachable")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The accept loop and any handler goroutines wind down asynchronously
	// after Shutdown returns; give the scheduler a moment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines %d -> %d after Close", before, runtime.NumGoroutine())
}

func TestServerBadAddress(t *testing.T) {
	if _, err := obs.ListenAndServe("256.0.0.1:bad", obs.ServerConfig{}); err == nil {
		t.Error("ListenAndServe accepted a bad address")
	}
	var nilSrv *obs.Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}
