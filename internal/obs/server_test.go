package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gatetrace"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("obs_test_hits_total", "Test counter.").Add(7)
	ring := trace.NewRing(8)
	ring.Emit(trace.Event{Kind: trace.GateEnter, Note: "clib"})

	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{Registry: reg, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	base := srv.URL()

	code, body, _ := get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "obs_test_hits_total 7") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	code, body, hdr = get(t, base+"/snapshot.json")
	if code != 200 || !strings.Contains(body, `"obs_test_hits_total"`) {
		t.Errorf("/snapshot.json = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/snapshot.json content-type = %q", ct)
	}

	code, body, _ = get(t, base+"/trace")
	if code != 200 || !strings.Contains(body, "gate-enter") {
		t.Errorf("/trace = %d %q", code, body)
	}

	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerNilBackends(t *testing.T) {
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, _ := get(t, srv.URL()+"/metrics")
	if code != 200 || body != "" {
		t.Errorf("/metrics without registry = %d %q, want empty 200", code, body)
	}
	code, body, _ = get(t, srv.URL()+"/trace")
	if code != 200 || !strings.Contains(body, "no trace ring") {
		t.Errorf("/trace without ring = %d %q", code, body)
	}
}

// TestServerTenantsEndpoint covers /tenants.json: with a callback it
// serves the per-tenant containment view live (every GET re-invokes the
// callback), and without one it is a 404, matching the other optional
// backends' fail-soft convention.
func TestServerTenantsEndpoint(t *testing.T) {
	type view struct {
		Breakers []string          `json:"breakers"`
		Epochs   map[string]uint64 `json:"epochs"`
	}
	calls := 0
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{
		Tenants: func() any {
			calls++
			return view{
				Breakers: []string{"tenant003:open"},
				Epochs:   map[string]uint64{"tenant003": uint64(calls)},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, hdr := get(t, srv.URL()+"/tenants.json")
	if code != 200 {
		t.Fatalf("/tenants.json = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/tenants.json content-type = %q", ct)
	}
	var got view
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/tenants.json body: %v\n%s", err, body)
	}
	if len(got.Breakers) != 1 || got.Breakers[0] != "tenant003:open" || got.Epochs["tenant003"] != 1 {
		t.Errorf("/tenants.json = %+v", got)
	}

	// The view is live, not a snapshot taken at server start.
	_, body, _ = get(t, srv.URL()+"/tenants.json")
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Epochs["tenant003"] != 2 {
		t.Errorf("second GET epoch = %d, want 2 (callback re-invoked)", got.Epochs["tenant003"])
	}

	// No callback configured: 404.
	bare, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _, _ := get(t, bare.URL()+"/tenants.json"); code != 404 {
		t.Errorf("/tenants.json without callback = %d, want 404", code)
	}
}

func TestServerShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _ = get(t, srv.URL()+"/healthz"); false {
		t.Fatal("unreachable")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The accept loop and any handler goroutines wind down asynchronously
	// after Shutdown returns; give the scheduler a moment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines %d -> %d after Close", before, runtime.NumGoroutine())
}

func TestServerBadAddress(t *testing.T) {
	if _, err := obs.ListenAndServe("256.0.0.1:bad", obs.ServerConfig{}); err == nil {
		t.Error("ListenAndServe accepted a bad address")
	}
	var nilSrv *obs.Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}

func TestServerProfileEndpoints(t *testing.T) {
	store := profstore.New()
	a := profile.AllocID{Func: "a", Block: 0, Site: 0}
	delta := profile.New()
	delta.Add(a, 64)
	gen := store.Commit(delta, "heal")
	if err := store.Promote(gen.Seq); err != nil {
		t.Fatal(err)
	}
	rollout := profstore.NewRollout(store, 0.5, nil)

	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{Profiles: store, Rollout: rollout})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	code, body, hdr := get(t, base+"/profile")
	if code != 200 {
		t.Fatalf("/profile = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/profile content-type = %q", ct)
	}
	var view struct {
		Schema int    `json:"schema"`
		Active int    `json:"active"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/profile is not JSON: %v\n%s", err, body)
	}
	if view.Schema != profstore.StoreSchema || view.Active != 1 || view.Source != "heal" {
		t.Errorf("/profile view = %+v", view)
	}
	if !strings.Contains(body, `"a@0.0"`) {
		t.Errorf("/profile missing site: %s", body)
	}

	// The default diff compares the active generation against its parent,
	// and repeated requests are byte-identical.
	code, diff1, _ := get(t, base+"/profile/diff")
	if code != 200 {
		t.Fatalf("/profile/diff = %d %q", code, diff1)
	}
	_, diff2, _ := get(t, base+"/profile/diff")
	if diff1 != diff2 {
		t.Error("/profile/diff is not deterministic across requests")
	}
	var d struct {
		Schema int      `json:"schema"`
		From   int      `json:"from"`
		To     int      `json:"to"`
		Added  []string `json:"added"`
	}
	if err := json.Unmarshal([]byte(diff1), &d); err != nil {
		t.Fatalf("/profile/diff is not JSON: %v\n%s", err, diff1)
	}
	if d.Schema != profstore.StoreSchema || d.From != 0 || d.To != 1 || len(d.Added) != 1 || d.Added[0] != "a@0.0" {
		t.Errorf("/profile/diff = %+v", d)
	}

	if code, body, _ := get(t, base+"/profile/diff?from=nope"); code != 400 {
		t.Errorf("/profile/diff?from=nope = %d %q", code, body)
	}
	if code, body, _ := get(t, base+"/profile/diff?to=99"); code != 400 {
		t.Errorf("/profile/diff?to=99 = %d %q", code, body)
	}

	code, body, _ = get(t, base+"/profile/shadow")
	if code != 200 {
		t.Fatalf("/profile/shadow = %d %q", code, body)
	}
	var st struct {
		Schema int    `json:"schema"`
		State  string `json:"state"`
		Active int    `json:"active"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/profile/shadow is not JSON: %v\n%s", err, body)
	}
	if st.Schema != profstore.RolloutSchema || st.State != "idle" || st.Active != 1 {
		t.Errorf("/profile/shadow = %+v", st)
	}
}

// TestServerProfileEndpointsAbsent pins the contract divergence: unlike
// /metrics and /trace (which stay 200 with empty content), the profile
// endpoints 404 when no store or rollout is attached.
func TestServerProfileEndpointsAbsent(t *testing.T) {
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/profile", "/profile/diff", "/profile/shadow"} {
		if code, body, _ := get(t, srv.URL()+path); code != 404 {
			t.Errorf("%s without a store = %d %q, want 404", path, code, body)
		}
	}
}

func TestServerTraceJSONEndpoint(t *testing.T) {
	tr := gatetrace.New(gatetrace.Config{RetainAll: true})
	c := tr.Start("tenant-a")
	end := c.GateSpan("libu")
	c.MarkFault("pkey fault at 0x2000")
	end()
	c.Finish()

	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{Traces: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, hdr := get(t, srv.URL()+"/trace.json")
	if code != 200 {
		t.Fatalf("/trace.json = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/trace.json content-type = %q", ct)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace.json is not JSON: %v\n%s", err, body)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var sawGate, sawFault bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "gate:libu" && ev.Phase == "X" {
			sawGate = true
		}
		if ev.Name == "fault" && ev.Phase == "i" {
			sawFault = true
		}
	}
	if !sawGate || !sawFault {
		t.Errorf("trace events missing gate/fault rows: %s", body)
	}
}

func TestServerDomainsJSONEndpoint(t *testing.T) {
	type snap struct {
		Slots     int      `json:"slots"`
		Evictions uint64   `json:"evictions"`
		Names     []string `json:"names"`
	}
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{
		Domains: func() any { return snap{Slots: 13, Evictions: 4, Names: []string{"a", "b"}} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, hdr := get(t, srv.URL()+"/domains.json")
	if code != 200 {
		t.Fatalf("/domains.json = %d %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/domains.json content-type = %q", ct)
	}
	var got snap
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/domains.json is not JSON: %v\n%s", err, body)
	}
	if got.Slots != 13 || got.Evictions != 4 || len(got.Names) != 2 {
		t.Errorf("/domains.json = %+v", got)
	}
}

// Like the profile endpoints, /trace.json and /domains.json 404 when
// their backing config is absent.
func TestServerTraceAndDomainsAbsent(t *testing.T) {
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/trace.json", "/domains.json"} {
		if code, body, _ := get(t, srv.URL()+path); code != 404 {
			t.Errorf("%s without backing = %d %q, want 404", path, code, body)
		}
	}
}
