// Package obs is the observability plane of the PKRU-Safe reproduction:
// a fault forensics recorder that turns a fatal MPK violation into a
// structured "black box" crash report, and a live HTTP server exposing
// the runtime's metrics, trace ring and profiling endpoints while a
// workload runs (see server.go).
//
// The paper's whole debugging story for enforced builds (§6) is
// interpreting protection-key faults: a crash in an mpk build means the
// profiling corpus missed a flow. The crash report answers the questions
// that diagnosis needs — which access faulted, under which PKRU rights,
// against a page owned by which key and region, hitting an object from
// which allocation site, after which boundary crossings — without
// re-running anything.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// ReportSchema versions the crash-report JSON layout. Bump it when the
// shape of Report or its nested types changes incompatibly.
const ReportSchema = 1

// Report is one structured crash report, produced by Recorder.Capture
// from the fault that killed a run.
type Report struct {
	Schema      int             `json:"schema"`
	Config      string          `json:"config,omitempty"` // build configuration of the run
	Error       string          `json:"error"`            // the error that propagated out
	Fault       FaultInfo       `json:"fault"`
	PKRU        PKRUInfo        `json:"pkru"`
	Compartment CompartmentInfo `json:"compartment"`
	Pages       []PageInfo      `json:"pages"`   // pkey ownership around the faulting address
	Regions     []RegionInfo    `json:"regions"` // every reservation in the address space
	Provenance  ProvenanceInfo  `json:"provenance"`
	Trace       TraceInfo       `json:"trace"`
}

// FaultInfo is the siginfo-equivalent view of the fatal fault.
type FaultInfo struct {
	Signal string `json:"signal"` // "SIGSEGV"
	Code   string `json:"code"`   // "SEGV_PKUERR", "SEGV_MAPERR", "SEGV_ACCERR"
	Addr   string `json:"addr"`   // faulting address, hex
	Access string `json:"access"` // "read" or "write"
	PKey   uint8  `json:"pkey"`   // protection key of the faulting page (PKUERR only)
}

// KeyRights is one protection key's decoded AD/WD bits from the PKRU
// value at fault time.
type KeyRights struct {
	Key    uint8  `json:"key"`
	AD     bool   `json:"ad"`     // access-disable bit set
	WD     bool   `json:"wd"`     // write-disable bit set
	Rights string `json:"rights"` // "rw", "r-" or "--"
}

// PKRUInfo is the thread's rights register at fault time, decoded per key.
type PKRUInfo struct {
	Value string      `json:"value"` // raw register, hex
	Keys  []KeyRights `json:"keys"`  // all sixteen keys
}

// CompartmentInfo reports whose code was logically executing when the
// fault was delivered, captured by the recorder's signal handler while
// the thread's gate stack was still intact.
type CompartmentInfo struct {
	Known     bool   `json:"known"`
	Name      string `json:"name,omitempty"`       // "trusted" or "untrusted"
	GateDepth int    `json:"gate_depth,omitempty"` // live gate traversals on the thread
}

// PageInfo describes one page near the faulting address.
type PageInfo struct {
	Base     string `json:"base"` // page base address, hex
	Faulting bool   `json:"faulting,omitempty"`
	Reserved bool   `json:"reserved"`
	Resident bool   `json:"resident,omitempty"`
	PKey     uint8  `json:"pkey,omitempty"` // meaningful only when Reserved
	Region   string `json:"region,omitempty"`
}

// RegionInfo describes one address-space reservation.
type RegionInfo struct {
	Name string `json:"name"`
	Base string `json:"base"` // hex
	Size uint64 `json:"size"`
	PKey uint8  `json:"pkey"`
}

// ProvenanceInfo attributes the faulted object to its allocation site,
// resolved through the same interior-pointer metadata the profiler uses.
type ProvenanceInfo struct {
	Found       bool   `json:"found"`
	Site        string `json:"site,omitempty"`   // allocation site id ("func@block.site")
	Base        string `json:"base,omitempty"`   // object base, hex
	Size        uint64 `json:"size,omitempty"`   // object size in bytes
	Offset      uint64 `json:"offset,omitempty"` // faulting address - base
	LiveObjects int    `json:"live_objects"`     // tracked objects at fault time
}

// TraceEvent is one retained ring event.
type TraceEvent struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// TraceInfo is the tail of the runtime event ring at capture time.
type TraceInfo struct {
	Dropped uint64       `json:"dropped"` // events overwritten before capture
	Events  []TraceEvent `json:"events"`  // oldest first
}

func hexAddr(a uint64) string { return fmt.Sprintf("%#x", a) }

// traceInfo converts a ring snapshot into the report form.
func traceInfo(events []trace.Event, dropped uint64) TraceInfo {
	ti := TraceInfo{Dropped: dropped}
	for _, e := range events {
		ti.Events = append(ti.Events, TraceEvent{Seq: e.Seq, Kind: e.Kind.String(), Text: e.String()})
	}
	return ti
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable form of the report — what the CLI
// prints to stderr before exiting 1.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== PKRU-safe crash report (schema %d) ==\n", r.Schema)
	if r.Config != "" {
		fmt.Fprintf(&b, "config:      %s\n", r.Config)
	}
	fmt.Fprintf(&b, "error:       %s\n", r.Error)
	f := r.Fault
	fmt.Fprintf(&b, "fault:       %s %s %s at %s", f.Signal, f.Code, f.Access, f.Addr)
	if f.Code == "SEGV_PKUERR" {
		fmt.Fprintf(&b, " (page pkey %d)", f.PKey)
	}
	b.WriteByte('\n')
	if r.Compartment.Known {
		fmt.Fprintf(&b, "compartment: %s (gate depth %d)\n", r.Compartment.Name, r.Compartment.GateDepth)
	} else {
		b.WriteString("compartment: unknown (fault not observed by the recorder's handler)\n")
	}

	fmt.Fprintf(&b, "pkru:        %s\n", r.PKRU.Value)
	for _, k := range r.PKRU.Keys {
		mark := ""
		if f.Code == "SEGV_PKUERR" && k.Key == f.PKey {
			mark = "   <- faulting key"
		}
		fmt.Fprintf(&b, "  key %2d: %s (ad=%s wd=%s)%s\n", k.Key, k.Rights, bit(k.AD), bit(k.WD), mark)
	}

	p := r.Provenance
	if p.Found {
		fmt.Fprintf(&b, "faulted object: site=%s base=%s size=%d offset=+%d (%d live object(s) tracked)\n",
			p.Site, p.Base, p.Size, p.Offset, p.LiveObjects)
	} else {
		fmt.Fprintf(&b, "faulted object: no owning allocation site (%d live object(s) tracked)\n", p.LiveObjects)
	}

	if len(r.Pages) > 0 {
		b.WriteString("pages around fault:\n")
		for _, pg := range r.Pages {
			mark := " "
			if pg.Faulting {
				mark = ">"
			}
			switch {
			case !pg.Reserved:
				fmt.Fprintf(&b, "%s %s  unmapped\n", mark, pg.Base)
			case pg.Resident:
				fmt.Fprintf(&b, "%s %s  pkey%-2d resident  region=%s\n", mark, pg.Base, pg.PKey, pg.Region)
			default:
				fmt.Fprintf(&b, "%s %s  pkey%-2d reserved  region=%s\n", mark, pg.Base, pg.PKey, pg.Region)
			}
		}
	}

	if len(r.Regions) > 0 {
		b.WriteString("reservations:\n")
		for _, reg := range r.Regions {
			fmt.Fprintf(&b, "  %-24s %s +%#x pkey%d\n", reg.Name, reg.Base, reg.Size, reg.PKey)
		}
	}

	fmt.Fprintf(&b, "trace tail (%d event(s), %d dropped):\n", len(r.Trace.Events), r.Trace.Dropped)
	if len(r.Trace.Events) == 0 {
		b.WriteString("  (no events retained)\n")
	}
	for _, e := range r.Trace.Events {
		fmt.Fprintf(&b, "  %s\n", e.Text)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
