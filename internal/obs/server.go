package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ServerConfig selects what a Server exposes. Nil fields disable the
// corresponding endpoint's content but keep the route responding, so
// scrapers never see transient 404s during startup.
type ServerConfig struct {
	// Registry backs /metrics (Prometheus text) and /snapshot.json.
	Registry *telemetry.Registry
	// Ring backs /trace (recent runtime events, oldest first).
	Ring *trace.Ring
}

// shutdownTimeout bounds how long Close waits for in-flight requests.
const shutdownTimeout = 5 * time.Second

// Server is a live observability endpoint over a running workload. It is
// strictly opt-in: nothing in this package spawns goroutines or touches
// the network unless ListenAndServe is called, so runs without a -listen
// flag pay zero cost.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	err      chan error // Serve's exit status, for Close
	closing  sync.Once
	closeErr error
}

// ListenAndServe binds addr (e.g. "127.0.0.1:9120"; ":0" picks a free
// port) and serves the observability endpoints in a background goroutine:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot.json  schema-versioned JSON snapshot of every metric
//	/trace          recent trace-ring events, oldest first
//	/healthz        liveness probe
//	/debug/pprof/*  the standard Go profiling handlers
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A nil registry writes nothing: an empty exposition is valid.
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Registry.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Ring == nil {
			fmt.Fprintln(w, "(no trace ring attached; run with -trace N)")
			return
		}
		cfg.Ring.Dump(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux},
		err: make(chan error, 1),
	}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close gracefully shuts the server down, waiting (bounded) for in-flight
// requests to drain. It is idempotent and safe on a nil *Server so callers
// can shut down unconditionally on every exit path.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closing.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			s.closeErr = err
			return
		}
		// Surface Serve's exit status; ErrServerClosed is the clean outcome.
		if err := <-s.err; err != nil && err != http.ErrServerClosed {
			s.closeErr = err
		}
	})
	return s.closeErr
}
