package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/gatetrace"
	"repro/internal/profstore"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ServerConfig selects what a Server exposes. Nil Registry/Ring fields
// disable the corresponding endpoint's content but keep the route
// responding, so scrapers never see transient 404s during startup. The
// profile endpoints are different: a process without a profile store has
// no profiling plane at all, so /profile, /profile/diff and
// /profile/shadow return 404 when their backing field is nil — and cost
// nothing, preserving the zero-goroutines/zero-allocations-when-unset
// contract.
type ServerConfig struct {
	// Registry backs /metrics (Prometheus text) and /snapshot.json.
	Registry *telemetry.Registry
	// Ring backs /trace (recent runtime events, oldest first).
	Ring *trace.Ring
	// Profiles backs /profile (the active generation as schema-versioned
	// JSON) and /profile/diff?from=N&to=M[&window=W] (deterministic
	// generation diffs with re-tighten proposals).
	Profiles *profstore.Store
	// Rollout backs /profile/shadow (staged-rollout arm accounting).
	Rollout *profstore.Rollout
	// Traces backs /trace.json (retained request traces in Chrome
	// trace_event format, loadable in chrome://tracing or Perfetto).
	// Like the profile endpoints, it 404s when nil: a process without a
	// request tracer has no timeline to serve.
	Traces *gatetrace.Tracer
	// Domains backs /domains.json: a callback returning the current
	// domain/vkey occupancy snapshot (per-domain slot state, compartment
	// stack depths, eviction counts). A callback rather than a concrete
	// type keeps obs decoupled from the domains package; pass
	// Manager.Occupancy wrapped as func() any. 404 when nil.
	Domains func() any
	// Tenants backs /tenants.json: a callback returning the per-tenant
	// resilience snapshot (quarantine epochs, breaker states, shed
	// counts). Same decoupling pattern as Domains. 404 when nil.
	Tenants func() any
}

// shutdownTimeout bounds how long Close waits for in-flight requests.
const shutdownTimeout = 5 * time.Second

// Server is a live observability endpoint over a running workload. It is
// strictly opt-in: nothing in this package spawns goroutines or touches
// the network unless ListenAndServe is called, so runs without a -listen
// flag pay zero cost.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	err      chan error // Serve's exit status, for Close
	closing  sync.Once
	closeErr error
}

// ListenAndServe binds addr (e.g. "127.0.0.1:9120"; ":0" picks a free
// port) and serves the observability endpoints in a background goroutine:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot.json  schema-versioned JSON snapshot of every metric
//	/trace          recent trace-ring events, oldest first
//	/trace.json     retained request traces, Chrome trace_event format (404 without a tracer)
//	/domains.json   domain/vkey occupancy snapshot (404 without a domains callback)
//	/tenants.json   per-tenant epoch/breaker/shed state (404 without a tenants callback)
//	/profile        active profile generation (404 without a store)
//	/profile/diff   generation diff + re-tighten proposals (404 without a store)
//	/profile/shadow staged-rollout status (404 without a rollout)
//	/healthz        liveness probe
//	/debug/pprof/*  the standard Go profiling handlers
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A nil registry writes nothing: an empty exposition is valid.
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Registry.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Ring == nil {
			fmt.Fprintln(w, "(no trace ring attached; run with -trace N)")
			return
		}
		cfg.Ring.Dump(w)
	})
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Profiles == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, cfg.Profiles.View())
	})
	mux.HandleFunc("/profile/diff", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Profiles == nil {
			http.NotFound(w, r)
			return
		}
		// Defaults compare the active generation against its parent (the
		// seed generation diffs against itself, which is empty).
		active := cfg.Profiles.Active()
		from, to, window := active.Parent, active.Seq, 0
		if from < 0 {
			from = active.Seq
		}
		q := r.URL.Query()
		parse := func(name string, dst *int) bool {
			s := q.Get(name)
			if s == "" {
				return true
			}
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s %q", name, s), http.StatusBadRequest)
				return false
			}
			*dst = n
			return true
		}
		if !parse("from", &from) || !parse("to", &to) || !parse("window", &window) {
			return
		}
		d, err := cfg.Profiles.Diff(from, to, window)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, d)
	})
	mux.HandleFunc("/profile/shadow", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Rollout == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, cfg.Rollout.Status())
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Traces == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Traces.WriteChromeTrace(w)
	})
	mux.HandleFunc("/domains.json", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Domains == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, cfg.Domains())
	})
	mux.HandleFunc("/tenants.json", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tenants == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, cfg.Tenants())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux},
		err: make(chan error, 1),
	}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close gracefully shuts the server down, waiting (bounded) for in-flight
// requests to drain. It is idempotent and safe on a nil *Server so callers
// can shut down unconditionally on every exit path.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closing.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			s.closeErr = err
			return
		}
		// Surface Serve's exit status; ErrServerClosed is the clean outcome.
		if err := <-s.err; err != nil && err != http.ErrServerClosed {
			s.closeErr = err
		}
	})
	return s.closeErr
}
