package mpk

import (
	"testing"
	"testing/quick"
)

func TestZeroPKRUPermitsEverything(t *testing.T) {
	var p PKRU
	for k := Key(0); k < NumKeys; k++ {
		if !p.CanRead(k) || !p.CanWrite(k) {
			t.Errorf("zero PKRU must permit rw for %v", k)
		}
	}
}

func TestRightsSemantics(t *testing.T) {
	cases := []struct {
		r           Rights
		read, write bool
	}{
		{AllowAll, true, true},
		{ReadOnly, true, false},
		{DenyAll, false, false},
		{AccessDisable, false, false}, // AD alone forbids reads and writes
	}
	for _, c := range cases {
		if got := c.r.CanRead(); got != c.read {
			t.Errorf("%v.CanRead() = %v, want %v", c.r, got, c.read)
		}
		if got := c.r.CanWrite(); got != c.write {
			t.Errorf("%v.CanWrite() = %v, want %v", c.r, got, c.write)
		}
	}
}

func TestWithIsolatesKeys(t *testing.T) {
	p := PermitAll.With(3, DenyAll).With(7, ReadOnly)
	if p.Rights(3) != DenyAll {
		t.Errorf("key 3 rights = %v, want %v", p.Rights(3), DenyAll)
	}
	if p.Rights(7) != ReadOnly {
		t.Errorf("key 7 rights = %v, want %v", p.Rights(7), ReadOnly)
	}
	for k := Key(0); k < NumKeys; k++ {
		if k == 3 || k == 7 {
			continue
		}
		if p.Rights(k) != AllowAll {
			t.Errorf("key %v rights = %v, want untouched AllowAll", k, p.Rights(k))
		}
	}
}

func TestWithOverwritesPriorRights(t *testing.T) {
	p := PermitAll.With(5, DenyAll).With(5, AllowAll)
	if p != PermitAll {
		t.Errorf("resetting key 5 should restore PermitAll, got %v", p)
	}
}

func TestDenyAllExcept(t *testing.T) {
	p := DenyAllExcept(0, 9)
	for k := Key(0); k < NumKeys; k++ {
		wantRW := k == 0 || k == 9
		if got := p.CanRead(k) && p.CanWrite(k); got != wantRW {
			t.Errorf("key %v accessible = %v, want %v", k, got, wantRW)
		}
	}
}

func TestDenyAllExceptNoKeys(t *testing.T) {
	p := DenyAllExcept()
	for k := Key(0); k < NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) {
			t.Errorf("key %v should be fully inaccessible", k)
		}
	}
}

func TestKeyValid(t *testing.T) {
	if !Key(0).Valid() || !Key(15).Valid() {
		t.Error("keys 0 and 15 must be valid")
	}
	if Key(16).Valid() || Key(255).Valid() {
		t.Error("keys >= 16 must be invalid")
	}
}

// Property: With(k, r) sets exactly the rights asked for, and reading back
// any other key is unchanged.
func TestWithRoundTripProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8, rRaw uint8) bool {
		p := PKRU(raw)
		k := Key(kRaw % NumKeys)
		r := Rights(rRaw) & DenyAll
		q := p.With(k, r)
		if q.Rights(k) != r {
			return false
		}
		for other := Key(0); other < NumKeys; other++ {
			if other != k && q.Rights(other) != p.Rights(other) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CanWrite implies CanRead for every PKRU/key pair (the
// architecture has no write-only state).
func TestWriteImpliesReadProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8) bool {
		p := PKRU(raw)
		k := Key(kRaw % NumKeys)
		return !p.CanWrite(k) || p.CanRead(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := AllowAll.String(); got != "rw" {
		t.Errorf("AllowAll = %q", got)
	}
	if got := ReadOnly.String(); got != "r-" {
		t.Errorf("ReadOnly = %q", got)
	}
	if got := DenyAll.String(); got != "--" {
		t.Errorf("DenyAll = %q", got)
	}
	if got := Key(4).String(); got != "pkey4" {
		t.Errorf("Key(4) = %q", got)
	}
	// PKRU string should mention only restricted keys.
	s := PermitAll.With(2, DenyAll).String()
	if want := "PKRU(0x00000030: 2=--)"; s != want {
		t.Errorf("PKRU string = %q, want %q", s, want)
	}
}
