package mpk

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroPKRUPermitsEverything(t *testing.T) {
	var p PKRU
	for k := Key(0); k < NumKeys; k++ {
		if !p.CanRead(k) || !p.CanWrite(k) {
			t.Errorf("zero PKRU must permit rw for %v", k)
		}
	}
}

func TestRightsSemantics(t *testing.T) {
	cases := []struct {
		r           Rights
		read, write bool
	}{
		{AllowAll, true, true},
		{ReadOnly, true, false},
		{DenyAll, false, false},
		{AccessDisable, false, false}, // AD alone forbids reads and writes
	}
	for _, c := range cases {
		if got := c.r.CanRead(); got != c.read {
			t.Errorf("%v.CanRead() = %v, want %v", c.r, got, c.read)
		}
		if got := c.r.CanWrite(); got != c.write {
			t.Errorf("%v.CanWrite() = %v, want %v", c.r, got, c.write)
		}
	}
}

func TestWithIsolatesKeys(t *testing.T) {
	p := PermitAll.With(3, DenyAll).With(7, ReadOnly)
	if p.Rights(3) != DenyAll {
		t.Errorf("key 3 rights = %v, want %v", p.Rights(3), DenyAll)
	}
	if p.Rights(7) != ReadOnly {
		t.Errorf("key 7 rights = %v, want %v", p.Rights(7), ReadOnly)
	}
	for k := Key(0); k < NumKeys; k++ {
		if k == 3 || k == 7 {
			continue
		}
		if p.Rights(k) != AllowAll {
			t.Errorf("key %v rights = %v, want untouched AllowAll", k, p.Rights(k))
		}
	}
}

func TestWithOverwritesPriorRights(t *testing.T) {
	p := PermitAll.With(5, DenyAll).With(5, AllowAll)
	if p != PermitAll {
		t.Errorf("resetting key 5 should restore PermitAll, got %v", p)
	}
}

func TestDenyAllExcept(t *testing.T) {
	p := DenyAllExcept(0, 9)
	for k := Key(0); k < NumKeys; k++ {
		wantRW := k == 0 || k == 9
		if got := p.CanRead(k) && p.CanWrite(k); got != wantRW {
			t.Errorf("key %v accessible = %v, want %v", k, got, wantRW)
		}
	}
}

func TestDenyAllExceptNoKeys(t *testing.T) {
	p := DenyAllExcept()
	for k := Key(0); k < NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) {
			t.Errorf("key %v should be fully inaccessible", k)
		}
	}
}

func TestKeyValid(t *testing.T) {
	if !Key(0).Valid() || !Key(15).Valid() {
		t.Error("keys 0 and 15 must be valid")
	}
	if Key(16).Valid() || Key(255).Valid() {
		t.Error("keys >= 16 must be invalid")
	}
}

// Property: With(k, r) sets exactly the rights asked for, and reading back
// any other key is unchanged.
func TestWithRoundTripProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8, rRaw uint8) bool {
		p := PKRU(raw)
		k := Key(kRaw % NumKeys)
		r := Rights(rRaw) & DenyAll
		q := p.With(k, r)
		if q.Rights(k) != r {
			return false
		}
		for other := Key(0); other < NumKeys; other++ {
			if other != k && q.Rights(other) != p.Rights(other) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CanWrite implies CanRead for every PKRU/key pair (the
// architecture has no write-only state).
func TestWriteImpliesReadProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8) bool {
		p := PKRU(raw)
		k := Key(kRaw % NumKeys)
		return !p.CanWrite(k) || p.CanRead(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := AllowAll.String(); got != "rw" {
		t.Errorf("AllowAll = %q", got)
	}
	if got := ReadOnly.String(); got != "r-" {
		t.Errorf("ReadOnly = %q", got)
	}
	if got := DenyAll.String(); got != "--" {
		t.Errorf("DenyAll = %q", got)
	}
	if got := Key(4).String(); got != "pkey4" {
		t.Errorf("Key(4) = %q", got)
	}
	// PKRU string should mention only restricted keys.
	s := PermitAll.With(2, DenyAll).String()
	if want := "PKRU(0x00000030: 2=--)"; s != want {
		t.Errorf("PKRU string = %q, want %q", s, want)
	}
}

// Table-driven boundary cases for With: the first key, the last key, and
// invalid keys, whose shift amounts fall off the 32-bit register entirely
// (a shift >= 32 on a uint32 is defined as zero in Go, so an invalid key
// must leave the register untouched rather than aliasing a valid one).
func TestWithKeyBoundaries(t *testing.T) {
	cases := []struct {
		name string
		p    PKRU
		k    Key
		r    Rights
		want PKRU
	}{
		{"key 0 deny", PermitAll, 0, DenyAll, PKRU(0x00000003)},
		{"key 0 read-only", PermitAll, 0, ReadOnly, PKRU(0x00000002)},
		{"last key deny", PermitAll, NumKeys - 1, DenyAll, PKRU(0xc0000000)},
		{"last key read-only", PermitAll, NumKeys - 1, ReadOnly, PKRU(0x80000000)},
		{"key 0 reset", PKRU(0x00000003), 0, AllowAll, PermitAll},
		{"last key reset", PKRU(0xc0000000), NumKeys - 1, AllowAll, PermitAll},
		{"invalid key 16 is a no-op", PKRU(0x12345678), 16, DenyAll, PKRU(0x12345678)},
		{"invalid key 255 is a no-op", PKRU(0x12345678), 255, DenyAll, PKRU(0x12345678)},
	}
	for _, c := range cases {
		if got := c.p.With(c.k, c.r); got != c.want {
			t.Errorf("%s: %v.With(%v, %v) = %#08x, want %#08x",
				c.name, c.p, c.k, c.r, uint32(got), uint32(c.want))
		}
	}
}

// Rights reads past the last key must report AllowAll (the bits simply do
// not exist), never leak a neighbouring key's rights.
func TestRightsInvalidKey(t *testing.T) {
	p := PKRU(0xffffffff) // every valid key fully denied
	for _, k := range []Key{16, 17, 100, 255} {
		if got := p.Rights(k); got != AllowAll {
			t.Errorf("Rights(%v) = %v, want AllowAll for out-of-range key", k, got)
		}
		if !p.CanRead(k) || !p.CanWrite(k) {
			t.Errorf("out-of-range %v must not be deniable", k)
		}
	}
}

// DenyAllExcept at the key boundaries: allowing key 0, the last key, or an
// invalid key (which must change nothing — all valid keys stay denied).
func TestDenyAllExceptBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		keys    []Key
		allowed map[Key]bool
	}{
		{"only key 0", []Key{0}, map[Key]bool{0: true}},
		{"only last key", []Key{NumKeys - 1}, map[Key]bool{NumKeys - 1: true}},
		{"first and last", []Key{0, NumKeys - 1}, map[Key]bool{0: true, NumKeys - 1: true}},
		{"invalid key allows nothing", []Key{16}, map[Key]bool{}},
		{"valid plus invalid", []Key{3, 200}, map[Key]bool{3: true}},
	}
	for _, c := range cases {
		p := DenyAllExcept(c.keys...)
		for k := Key(0); k < NumKeys; k++ {
			want := c.allowed[k]
			if got := p.CanRead(k) && p.CanWrite(k); got != want {
				t.Errorf("%s: key %v accessible = %v, want %v", c.name, k, got, want)
			}
		}
	}
}

// parseRights inverts Rights.String for the round-trip tests below.
func parseRights(t *testing.T, s string) Rights {
	t.Helper()
	switch s {
	case "rw":
		return AllowAll
	case "r-":
		return ReadOnly
	case "--":
		return DenyAll
	}
	t.Fatalf("unparseable rights %q", s)
	return 0
}

func TestRightsStringRoundTrip(t *testing.T) {
	for _, r := range []Rights{AllowAll, ReadOnly, DenyAll, AccessDisable} {
		got := parseRights(t, r.String())
		// AD alone has no distinct rendering; it denies everything and
		// round-trips to DenyAll, which is behaviourally identical.
		want := r & DenyAll
		if want == AccessDisable {
			want = DenyAll
		}
		if got != want {
			t.Errorf("%v round-trips to %v, want %v", r, got, want)
		}
	}
}

// PKRU.String lists every non-AllowAll key, so rebuilding a register from
// the printed entries must reproduce the exact value — for any value.
func TestPKRUStringRoundTrip(t *testing.T) {
	parse := func(s string) PKRU {
		t.Helper()
		inner := strings.TrimSuffix(strings.TrimPrefix(s, "PKRU("), ")")
		fields := strings.Fields(strings.ReplaceAll(inner, ":", ""))
		p := PermitAll
		for _, f := range fields[1:] { // fields[0] is the hex value
			var k int
			var rs string
			if _, err := fmt.Sscanf(f, "%d=%s", &k, &rs); err != nil {
				t.Fatalf("unparseable entry %q in %q: %v", f, s, err)
			}
			p = p.With(Key(k), parseRights(t, rs))
		}
		return p
	}
	// The string collapses AccessDisable-alone to "--" (it denies exactly
	// what DenyAll denies), so the round-trip target is the behavioural
	// canonical form, not the raw bits.
	canonical := func(p PKRU) PKRU {
		q := PermitAll
		for k := Key(0); k < NumKeys; k++ {
			r := p.Rights(k)
			if r&AccessDisable != 0 {
				r = DenyAll
			}
			q = q.With(k, r)
		}
		return q
	}
	values := []PKRU{
		PermitAll,
		PermitAll.With(0, DenyAll),
		PermitAll.With(NumKeys-1, ReadOnly),
		DenyAllExcept(0),
		DenyAllExcept(),
		PKRU(0xdeadbeef),
		PKRU(0xffffffff),
	}
	for _, p := range values {
		if got, want := parse(p.String()), canonical(p); got != want {
			t.Errorf("%v round-trips to %#08x, want %#08x", p.String(), uint32(got), uint32(want))
		}
	}
	f := func(raw uint32) bool { return parse(PKRU(raw).String()) == canonical(PKRU(raw)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// obedientRegister is a plain PKRU cell; tamperRegister drops every write.
type obedientRegister struct{ p PKRU }

func (r *obedientRegister) Rights() PKRU     { return r.p }
func (r *obedientRegister) SetRights(p PKRU) { r.p = p }

type tamperRegister struct{ p PKRU }

func (r *tamperRegister) Rights() PKRU   { return r.p }
func (r *tamperRegister) SetRights(PKRU) {}

func TestInstallAudited(t *testing.T) {
	target := DenyAllExcept(0, 3)
	ok := &obedientRegister{}
	if err := InstallAudited(ok, target); err != nil {
		t.Fatalf("InstallAudited on obedient register: %v", err)
	}
	if ok.p != target {
		t.Fatalf("installed %v, want %v", ok.p, target)
	}
	bad := &tamperRegister{p: PermitAll}
	err := InstallAudited(bad, target)
	if !errors.Is(err, ErrRightsAudit) {
		t.Fatalf("InstallAudited on tampering register = %v, want ErrRightsAudit", err)
	}
}
