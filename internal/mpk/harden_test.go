package mpk

import "testing"

func TestEscalates(t *testing.T) {
	base := DenyAllExcept(0, 3)
	cases := []struct {
		p    PKRU
		want bool
	}{
		{base, false},                  // identical rights
		{DenyAllExcept(), false},       // strictly narrower
		{base.With(3, DenyAll), false}, // narrows one key
		{PermitAll, true},              // widens everything
		{base.With(5, 0), true},        // grants a key base denies
		{base.With(3, WriteDisable), false} /* still within base's grant */}
	for _, c := range cases {
		if got := c.p.Escalates(base); got != c.want {
			t.Errorf("(%v).Escalates(%v) = %v, want %v", c.p, base, got, c.want)
		}
	}
	// PermitAll as base: nothing can escalate it.
	if DenyAllExcept(1).Escalates(PermitAll) {
		t.Error("narrower value escalates PermitAll")
	}
}

func TestClampTo(t *testing.T) {
	base := DenyAllExcept(0, 3)
	if got := PermitAll.ClampTo(base); got != base {
		t.Errorf("PermitAll.ClampTo(%v) = %v, want %v", base, got, base)
	}
	// Clamping never escalates, and never widens what the value already denied.
	for _, p := range []PKRU{PermitAll, DenyAllExcept(5), base.With(7, 0), DenyAllExcept()} {
		c := p.ClampTo(base)
		if c.Escalates(base) {
			t.Errorf("(%v).ClampTo(%v) = %v still escalates", p, base, c)
		}
		if c.Escalates(p) {
			t.Errorf("(%v).ClampTo(%v) = %v escalates the original value", p, base, c)
		}
	}
	// A value already within base is unchanged.
	within := base.With(3, WriteDisable)
	if got := within.ClampTo(base); got != within {
		t.Errorf("(%v).ClampTo(%v) = %v, want unchanged", within, base, got)
	}
}

// privReg records privileged-bracket activity around SetRights, verifying
// InstallAudited wraps the gate's write in a bracket so a thread-level
// WRPKRU guard can distinguish gate writes from rogue ones.
type privReg struct {
	rights       PKRU
	depth        int
	depthAtWrite int
}

func (r *privReg) Rights() PKRU { return r.rights }
func (r *privReg) SetRights(p PKRU) {
	r.rights = p
	r.depthAtWrite = r.depth
}
func (r *privReg) BeginPrivilegedPKRU() func() {
	r.depth++
	return func() { r.depth-- }
}

func TestInstallAuditedOpensPrivilegedBracket(t *testing.T) {
	r := &privReg{rights: PermitAll}
	if err := InstallAudited(r, DenyAllExcept(0)); err != nil {
		t.Fatal(err)
	}
	if r.depthAtWrite != 1 {
		t.Errorf("SetRights ran at bracket depth %d, want 1", r.depthAtWrite)
	}
	if r.depth != 0 {
		t.Errorf("bracket not closed: depth %d after InstallAudited", r.depth)
	}
	if r.rights != DenyAllExcept(0) {
		t.Errorf("rights = %v after install", r.rights)
	}
}
