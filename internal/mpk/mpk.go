// Package mpk models Intel Memory Protection Keys (MPK/PKU): sixteen
// protection keys that tag pages, and a per-thread PKRU rights register
// holding two bits (access-disable, write-disable) per key.
//
// The model follows the architectural semantics described in the Intel SDM
// and used by PKRU-Safe: a PKRU value of zero grants full access to every
// key, key 0 is the default key for untagged memory, and rights are checked
// on every data access against the key of the page being touched.
package mpk

import (
	"errors"
	"fmt"
	"strings"
)

// NumKeys is the number of protection keys the hardware provides.
const NumKeys = 16

// Key identifies one of the sixteen protection keys (0..15).
type Key uint8

// Valid reports whether k is an architecturally valid key.
func (k Key) Valid() bool { return k < NumKeys }

func (k Key) String() string { return fmt.Sprintf("pkey%d", uint8(k)) }

// Rights is the two-bit per-key access control field from the PKRU register.
type Rights uint8

const (
	// AccessDisable (AD) forbids every data access to pages with the key.
	AccessDisable Rights = 1 << 0
	// WriteDisable (WD) forbids writes to pages with the key.
	WriteDisable Rights = 1 << 1

	// AllowAll grants read and write access.
	AllowAll Rights = 0
	// ReadOnly grants reads but forbids writes.
	ReadOnly Rights = WriteDisable
	// DenyAll forbids every access.
	DenyAll Rights = AccessDisable | WriteDisable
)

// CanRead reports whether the rights permit a data read.
func (r Rights) CanRead() bool { return r&AccessDisable == 0 }

// CanWrite reports whether the rights permit a data write.
func (r Rights) CanWrite() bool { return r&(AccessDisable|WriteDisable) == 0 }

func (r Rights) String() string {
	switch r & DenyAll {
	case AllowAll:
		return "rw"
	case ReadOnly:
		return "r-"
	default:
		return "--"
	}
}

// PKRU is the 32-bit Protection Key Rights for User pages register: two bits
// per key, key k occupying bits [2k, 2k+1]. The zero value permits every
// access, exactly as on hardware after XRSTOR of an all-zero state.
type PKRU uint32

// PermitAll is the PKRU value granting read/write access under every key.
const PermitAll PKRU = 0

// Rights returns the rights PKRU grants for key k.
func (p PKRU) Rights(k Key) Rights {
	return Rights(p>>(2*uint32(k))) & DenyAll
}

// With returns a copy of p with the rights for key k replaced.
func (p PKRU) With(k Key, r Rights) PKRU {
	shift := 2 * uint32(k)
	return p&^(PKRU(DenyAll)<<shift) | PKRU(r&DenyAll)<<shift
}

// CanRead reports whether p permits reading a page tagged with key k.
func (p PKRU) CanRead(k Key) bool { return p.Rights(k).CanRead() }

// CanWrite reports whether p permits writing a page tagged with key k.
func (p PKRU) CanWrite(k Key) bool { return p.Rights(k).CanWrite() }

// DenyAllExcept returns a PKRU value that forbids every access except under
// the listed keys, which retain full access. This is the value a PKRU-Safe
// call gate loads when entering the untrusted compartment: everything but
// the shared keys becomes inaccessible.
func DenyAllExcept(keys ...Key) PKRU {
	var p PKRU
	for k := Key(0); k < NumKeys; k++ {
		p = p.With(k, DenyAll)
	}
	for _, k := range keys {
		p = p.With(k, AllowAll)
	}
	return p
}

// Escalates reports whether p grants any access that base denies: a set
// bit in base (a disable) that p clears is an escalation. This is the
// primitive every Garmr-class defense reduces to — a gate exit, a signal
// return or a migration restore proposing rights wider than its baseline
// is trying to smuggle access the compartment never granted.
func (p PKRU) Escalates(base PKRU) bool {
	return uint32(base)&^uint32(p) != 0
}

// ClampTo returns p with every escalation over base removed: any disable
// bit set in base stays set in the result. Rights p voluntarily drops
// beyond base are preserved — clamping only ever narrows.
func (p PKRU) ClampTo(base PKRU) PKRU {
	return p | base
}

// RightsRegister is the slice of a CPU context the audited installer
// needs: the PKRU register, readable and writable. vm.Thread implements it;
// tests substitute tampering fakes to prove the audit catches a WRPKRU
// that did not take effect.
type RightsRegister interface {
	Rights() PKRU
	SetRights(PKRU)
}

// PrivilegedRegister is a rights register with an explicit gate-writer
// bracket. Registers enforcing a WRPKRU guard (rejecting rights widening
// from outside a gate) implement it; InstallAudited brackets its write so
// every legitimate gate transition counts as privileged while rogue
// SetRights calls from compartment code do not.
type PrivilegedRegister interface {
	RightsRegister
	// BeginPrivilegedPKRU marks the caller as a legitimate gate writer and
	// returns the function ending the bracket.
	BeginPrivilegedPKRU() func()
}

// GateRegister is a rights register with a dedicated privileged write: a
// gate transition through InstallAudited is by definition a legitimate
// writer, so registers implementing this skip their WRPKRU-guard check on
// that path instead of bracketing it. This keeps the unguarded gate hot
// path free of per-transition synchronization; vm.Thread implements it.
type GateRegister interface {
	RightsRegister
	// InstallGateRights writes the register as a gate transition: never
	// subject to the rogue-WRPKRU guard, still subject to the readback
	// audit InstallAudited performs around it.
	InstallGateRights(PKRU)
}

// ErrRightsAudit is returned when a write-then-readback PKRU installation
// finds a different value than the one it wrote — the hardened gate
// sequence PKRU-Safe compiles into its assembly stubs, and the check Garmr
// shows every compartment transition needs (an unchecked WRPKRU-equivalent
// path is a sandbox escape).
var ErrRightsAudit = errors.New("mpk: PKRU readback does not match installed value")

// InstallAudited performs one audited WRPKRU: write the target rights,
// read the register back, and fail if the value that stuck differs from
// the value written. Every compartment gate half — ffi call-gate enter and
// exit, supervisor unwind, domain entry and exit — routes its rights
// switch through this single primitive so no gate can silently skip the
// verification.
func InstallAudited(r RightsRegister, target PKRU) error {
	if gr, ok := r.(GateRegister); ok {
		gr.InstallGateRights(target)
	} else if pr, ok := r.(PrivilegedRegister); ok {
		end := pr.BeginPrivilegedPKRU()
		r.SetRights(target)
		end()
	} else {
		r.SetRights(target)
	}
	if got := r.Rights(); got != target {
		return fmt.Errorf("%w: wrote %v, read back %v", ErrRightsAudit, target, got)
	}
	return nil
}

func (p PKRU) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PKRU(%#08x:", uint32(p))
	for k := Key(0); k < NumKeys; k++ {
		if r := p.Rights(k); r != AllowAll {
			fmt.Fprintf(&b, " %d=%s", k, r)
		}
	}
	b.WriteString(")")
	return b.String()
}
