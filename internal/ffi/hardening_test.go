package ffi

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vm"
)

func TestAbortKillsAllCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("f", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	th := rt.NewThread()
	if _, err := th.Call("lib", "f"); err != nil {
		t.Fatal(err)
	}
	rt.Abort()
	if !rt.Aborted() {
		t.Fatal("Aborted() false after Abort")
	}
	if _, err := th.Call("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("call after abort = %v, want ErrAborted", err)
	}
	if _, err := th.CallNoGate("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("CallNoGate after abort = %v, want ErrAborted", err)
	}
}

// TestPerThreadPKRUIsolation: PKRU is per-thread state. One thread parked
// inside the untrusted compartment must not affect another thread's full
// trusted rights — the property that makes PKRU-Safe sound for the
// multi-threaded Servo (§8 "multi-threaded mixed-language environments").
func TestPerThreadPKRUIsolation(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, err := rt.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	reg.MustLibrary("lib", Untrusted).Define("park", func(th *Thread, _ []uint64) ([]uint64, error) {
		close(entered)
		<-release
		// Still in U: MT must stay inaccessible.
		if _, err := th.Load64(secret); err == nil {
			t.Error("parked untrusted thread read MT")
		}
		return nil, nil
	})

	thA := rt.NewThread()
	done := make(chan error, 1)
	go func() {
		_, err := thA.Call("lib", "park")
		done <- err
	}()
	<-entered
	// Thread B, in T, accesses MT freely while A sits in U.
	thB := rt.NewThread()
	if err := thB.VM.Store64(secret, 99); err != nil {
		t.Errorf("trusted thread blocked by another thread's gate: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if thA.VM.Rights() != mpk.PermitAll {
		t.Error("thread A rights not restored")
	}
}

func TestConcurrentGatedCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("alloc_and_touch", func(th *Thread, _ []uint64) ([]uint64, error) {
		a, err := th.Malloc(64)
		if err != nil {
			return nil, err
		}
		if err := th.Store64(a, 1); err != nil {
			return nil, err
		}
		return nil, th.Free(a)
	})
	const goroutines, calls = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < calls; i++ {
				if _, err := th.Call("lib", "alloc_and_touch"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := rt.Transitions(); got != goroutines*calls {
		t.Errorf("transitions = %d, want %d", got, goroutines*calls)
	}
}

// TestOOMPropagates: exhausting a tiny trusted pool surfaces as an error,
// not a panic, through the FFI allocation path.
func TestOOMPropagates(t *testing.T) {
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{
		Space:       space,
		TrustedSize: 4 * vm.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(NewRegistry(), alloc, nil, GatesOn)
	th := rt.NewThread()
	if _, err := th.Malloc(64 * vm.PageSize); err == nil {
		t.Error("oversized trusted allocation succeeded")
	}
	// The allocator remains usable after the failure.
	if _, err := th.Malloc(64); err != nil {
		t.Errorf("small allocation after OOM failed: %v", err)
	}
}

// TestPanicMidCallRestoresGateInvariants: an untrusted Func that panics
// must not leave the thread stuck in the untrusted compartment. The gates
// unwind themselves as the panic propagates, so Depth(), CurrentTrust()
// and the PKRU register are all back to their pre-call values by the time
// the panic reaches (and is recovered by) the trusted frame.
func TestPanicMidCallRestoresGateInvariants(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("boom", func(*Thread, []uint64) ([]uint64, error) {
		panic("untrusted library crashed")
	})
	// Nested variant: trusted callback panics two gates deep.
	reg.MustLibrary("trusted", Trusted).Define("cb_boom", func(*Thread, []uint64) ([]uint64, error) {
		panic("trusted callback crashed")
	})
	reg.MustLibrary("lib", Untrusted).Define("call_back", func(th *Thread, _ []uint64) ([]uint64, error) {
		return th.Call("trusted", "cb_boom")
	})

	th := rt.NewThread()
	for _, fn := range []string{"boom", "call_back"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic swallowed", fn)
				}
			}()
			_, _ = th.Call("lib", fn)
		}()
		if d := th.Depth(); d != 0 {
			t.Errorf("%s: Depth() after panic = %d, want 0", fn, d)
		}
		if tr := th.CurrentTrust(); tr != Trusted {
			t.Errorf("%s: CurrentTrust() after panic = %v, want Trusted", fn, tr)
		}
		if r := th.VM.Rights(); r != mpk.PermitAll {
			t.Errorf("%s: rights after panic = %v, want PermitAll", fn, r)
		}
	}
	// The thread is still usable: a subsequent gated call succeeds.
	reg.MustLibrary("lib", Untrusted).Define("ok", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	if _, err := th.Call("lib", "ok"); err != nil {
		t.Errorf("call after recovered panic: %v", err)
	}
}

// TestCheckpointUnwind: the supervisor's recovery-point primitives restore
// depth, trust and rights, and refuse to unwind "forward" to a deeper
// frame.
func TestCheckpointUnwind(t *testing.T) {
	rt, reg := world(t, GatesOn)
	var inner Checkpoint
	reg.MustLibrary("lib", Untrusted).Define("snap", func(th *Thread, _ []uint64) ([]uint64, error) {
		inner = th.Checkpoint()
		return nil, nil
	})
	th := rt.NewThread()
	cp := th.Checkpoint()
	if _, err := th.Call("lib", "snap"); err != nil {
		t.Fatal(err)
	}
	// Unwinding to the (now-popped) inner frame is a caller bug.
	if err := th.Unwind(inner); err == nil {
		t.Error("unwind to deeper checkpoint accepted")
	}
	// Unwinding to the trusted frame verifies and is idempotent at depth 0.
	if err := th.Unwind(cp); err != nil {
		t.Errorf("Unwind: %v", err)
	}
	if th.Depth() != 0 || th.CurrentTrust() != Trusted || th.VM.Rights() != cp.Rights() {
		t.Errorf("state after unwind: depth=%d trust=%v rights=%v", th.Depth(), th.CurrentTrust(), th.VM.Rights())
	}
}
