package ffi

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vkey"
	"repro/internal/vm"
)

func TestAbortKillsAllCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("f", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	th := rt.NewThread()
	if _, err := th.Call("lib", "f"); err != nil {
		t.Fatal(err)
	}
	rt.Abort()
	if !rt.Aborted() {
		t.Fatal("Aborted() false after Abort")
	}
	if _, err := th.Call("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("call after abort = %v, want ErrAborted", err)
	}
	if _, err := th.CallNoGate("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("CallNoGate after abort = %v, want ErrAborted", err)
	}
}

// TestPerThreadPKRUIsolation: PKRU is per-thread state. One thread parked
// inside the untrusted compartment must not affect another thread's full
// trusted rights — the property that makes PKRU-Safe sound for the
// multi-threaded Servo (§8 "multi-threaded mixed-language environments").
func TestPerThreadPKRUIsolation(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, err := rt.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	reg.MustLibrary("lib", Untrusted).Define("park", func(th *Thread, _ []uint64) ([]uint64, error) {
		close(entered)
		<-release
		// Still in U: MT must stay inaccessible.
		if _, err := th.Load64(secret); err == nil {
			t.Error("parked untrusted thread read MT")
		}
		return nil, nil
	})

	thA := rt.NewThread()
	done := make(chan error, 1)
	go func() {
		_, err := thA.Call("lib", "park")
		done <- err
	}()
	<-entered
	// Thread B, in T, accesses MT freely while A sits in U.
	thB := rt.NewThread()
	if err := thB.VM.Store64(secret, 99); err != nil {
		t.Errorf("trusted thread blocked by another thread's gate: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if thA.VM.Rights() != mpk.PermitAll {
		t.Error("thread A rights not restored")
	}
}

func TestConcurrentGatedCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("alloc_and_touch", func(th *Thread, _ []uint64) ([]uint64, error) {
		a, err := th.Malloc(64)
		if err != nil {
			return nil, err
		}
		if err := th.Store64(a, 1); err != nil {
			return nil, err
		}
		return nil, th.Free(a)
	})
	const goroutines, calls = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < calls; i++ {
				if _, err := th.Call("lib", "alloc_and_touch"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := rt.Transitions(); got != goroutines*calls {
		t.Errorf("transitions = %d, want %d", got, goroutines*calls)
	}
}

// TestOOMPropagates: exhausting a tiny trusted pool surfaces as an error,
// not a panic, through the FFI allocation path.
func TestOOMPropagates(t *testing.T) {
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{
		Space:       space,
		TrustedSize: 4 * vm.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(NewRegistry(), alloc, nil, GatesOn)
	th := rt.NewThread()
	if _, err := th.Malloc(64 * vm.PageSize); err == nil {
		t.Error("oversized trusted allocation succeeded")
	}
	// The allocator remains usable after the failure.
	if _, err := th.Malloc(64); err != nil {
		t.Errorf("small allocation after OOM failed: %v", err)
	}
}

// TestPanicMidCallRestoresGateInvariants: an untrusted Func that panics
// must not leave the thread stuck in the untrusted compartment. The gates
// unwind themselves as the panic propagates, so Depth(), CurrentTrust()
// and the PKRU register are all back to their pre-call values by the time
// the panic reaches (and is recovered by) the trusted frame.
func TestPanicMidCallRestoresGateInvariants(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("boom", func(*Thread, []uint64) ([]uint64, error) {
		panic("untrusted library crashed")
	})
	// Nested variant: trusted callback panics two gates deep.
	reg.MustLibrary("trusted", Trusted).Define("cb_boom", func(*Thread, []uint64) ([]uint64, error) {
		panic("trusted callback crashed")
	})
	reg.MustLibrary("lib", Untrusted).Define("call_back", func(th *Thread, _ []uint64) ([]uint64, error) {
		return th.Call("trusted", "cb_boom")
	})

	th := rt.NewThread()
	for _, fn := range []string{"boom", "call_back"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic swallowed", fn)
				}
			}()
			_, _ = th.Call("lib", fn)
		}()
		if d := th.Depth(); d != 0 {
			t.Errorf("%s: Depth() after panic = %d, want 0", fn, d)
		}
		if tr := th.CurrentTrust(); tr != Trusted {
			t.Errorf("%s: CurrentTrust() after panic = %v, want Trusted", fn, tr)
		}
		if r := th.VM.Rights(); r != mpk.PermitAll {
			t.Errorf("%s: rights after panic = %v, want PermitAll", fn, r)
		}
	}
	// The thread is still usable: a subsequent gated call succeeds.
	reg.MustLibrary("lib", Untrusted).Define("ok", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	if _, err := th.Call("lib", "ok"); err != nil {
		t.Errorf("call after recovered panic: %v", err)
	}
}

// TestCheckpointUnwind: the supervisor's recovery-point primitives restore
// depth, trust and rights, and refuse to unwind "forward" to a deeper
// frame.
func TestCheckpointUnwind(t *testing.T) {
	rt, reg := world(t, GatesOn)
	var inner Checkpoint
	reg.MustLibrary("lib", Untrusted).Define("snap", func(th *Thread, _ []uint64) ([]uint64, error) {
		inner = th.Checkpoint()
		return nil, nil
	})
	th := rt.NewThread()
	cp := th.Checkpoint()
	if _, err := th.Call("lib", "snap"); err != nil {
		t.Fatal(err)
	}
	// Unwinding to the (now-popped) inner frame is a caller bug.
	if err := th.Unwind(inner); err == nil {
		t.Error("unwind to deeper checkpoint accepted")
	}
	// Unwinding to the trusted frame verifies and is idempotent at depth 0.
	if err := th.Unwind(cp); err != nil {
		t.Errorf("Unwind: %v", err)
	}
	if th.Depth() != 0 || th.CurrentTrust() != Trusted || th.VM.Rights() != cp.Rights() {
		t.Errorf("state after unwind: depth=%d trust=%v rights=%v", th.Depth(), th.CurrentTrust(), th.VM.Rights())
	}
}

// domainWorld builds a runtime with two untrusted libraries, each bound
// to its own virtualized compartment: a private pkalloc domain pool and a
// vkey logical key whose activation supplies the gate's rights.
func domainWorld(t *testing.T) (*Runtime, *vkey.Table, map[string]vkey.ID) {
	t.Helper()
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	table, err := vkey.NewTable(space, vkey.Config{Reserved: []mpk.Key{alloc.TrustedKey()}})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	rt := NewRuntime(reg, alloc, nil, GatesOn)
	ids := make(map[string]vkey.ID)
	for _, name := range []string{"tenantA", "tenantB"} {
		region, err := alloc.AddDomainPool(name, table.InactiveKey())
		if err != nil {
			t.Fatal(err)
		}
		id := table.Alloc(name)
		if err := table.Attach(id, region.Base, region.Size); err != nil {
			t.Fatal(err)
		}
		ids[name] = id
		idc := id
		rt.BindLibraryDomain(name, DomainBinding{
			Pool: name,
			Rights: func() (mpk.PKRU, error) {
				hw, _, err := table.Activate(idc)
				if err != nil {
					return 0, err
				}
				return mpk.DenyAllExcept(0, hw), nil
			},
		})
	}
	return rt, table, ids
}

// TestDomainBoundGatesIsolateTenants: calls into a domain-bound library
// pass through the audited gate with the domain's activated rights, its
// allocations land in the domain's private pool, and neither the trusted
// heap nor the sibling tenant's pool is reachable from inside.
func TestDomainBoundGatesIsolateTenants(t *testing.T) {
	rt, _, _ := domainWorld(t)
	reg := rt.Registry
	secret, err := rt.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	var aBuf, bBuf vm.Addr
	reg.MustLibrary("tenantB", Untrusted).Define("init", func(th *Thread, _ []uint64) ([]uint64, error) {
		addr, err := th.Malloc(32)
		if err != nil {
			return nil, err
		}
		bBuf = addr
		return nil, th.Store64(addr, 0xb)
	})
	reg.MustLibrary("tenantA", Untrusted).Define("probe", func(th *Thread, _ []uint64) ([]uint64, error) {
		addr, err := th.Malloc(32)
		if err != nil {
			return nil, err
		}
		aBuf = addr
		if err := th.Store64(addr, 0xa); err != nil {
			return nil, err
		}
		if _, err := th.Load64(secret); err == nil {
			t.Error("tenantA read MT")
		}
		if _, err := th.Load64(bBuf); err == nil {
			t.Error("tenantA read tenantB's private pool")
		}
		return nil, nil
	})

	th := rt.NewThread()
	if _, err := th.Call("tenantB", "init"); err != nil {
		t.Fatal(err)
	}
	if rB, okB := rt.Alloc.DomainRegion("tenantB"); !okB || !rB.Contains(bBuf) {
		t.Errorf("tenantB allocation %v not in its domain pool", bBuf)
	}
	before := rt.Transitions()
	if _, err := th.Call("tenantA", "probe"); err != nil {
		t.Fatal(err)
	}
	if rt.Transitions() != before+1 {
		t.Errorf("domain-bound call did not gate: transitions %d -> %d", before, rt.Transitions())
	}
	if rA, okA := rt.Alloc.DomainRegion("tenantA"); !okA || !rA.Contains(aBuf) {
		t.Errorf("tenantA allocation %v not in its domain pool", aBuf)
	}
	if th.VM.Rights() != mpk.PermitAll {
		t.Errorf("rights after domain call = %v, want restored PermitAll", th.VM.Rights())
	}
	if rt.Aborted() {
		t.Error("runtime aborted during clean domain calls")
	}
}

// TestCrossDomainCallsGateEvenUntrustedToUntrusted: two untrusted
// libraries in different domains must still gate between each other — a
// U→U call with unchanged rights would merge the sandboxes.
func TestCrossDomainCallsGateEvenUntrustedToUntrusted(t *testing.T) {
	rt, _, _ := domainWorld(t)
	reg := rt.Registry
	var inB mpk.PKRU
	reg.MustLibrary("tenantB", Untrusted).Define("leaf", func(th *Thread, _ []uint64) ([]uint64, error) {
		inB = th.VM.Rights()
		return nil, nil
	})
	var inA, backInA mpk.PKRU
	reg.MustLibrary("tenantA", Untrusted).Define("nest", func(th *Thread, _ []uint64) ([]uint64, error) {
		inA = th.VM.Rights()
		if _, err := th.Call("tenantB", "leaf"); err != nil {
			return nil, err
		}
		backInA = th.VM.Rights()
		return nil, nil
	})
	th := rt.NewThread()
	before := rt.Transitions()
	if _, err := th.Call("tenantA", "nest"); err != nil {
		t.Fatal(err)
	}
	if got := rt.Transitions() - before; got != 2 {
		t.Errorf("nested cross-domain call made %d gated transitions, want 2", got)
	}
	if inA == inB {
		t.Error("tenantA and tenantB ran with identical rights — sandboxes merged")
	}
	if backInA != inA {
		t.Errorf("rights after inner call = %v, want %v restored", backInA, inA)
	}
}

// TestDomainRightsFailureFailsClosed: if activating the domain's key
// fails, the call must not proceed with the caller's rights.
func TestDomainRightsFailureFailsClosed(t *testing.T) {
	rt, table, ids := domainWorld(t)
	reg := rt.Registry
	ran := false
	reg.MustLibrary("tenantA", Untrusted).Define("f", func(*Thread, []uint64) ([]uint64, error) {
		ran = true
		return nil, nil
	})
	// Freeing the logical key makes the Rights callback error.
	if err := table.Free(ids["tenantA"]); err != nil {
		t.Fatal(err)
	}
	th := rt.NewThread()
	if _, err := th.Call("tenantA", "f"); !errors.Is(err, vkey.ErrUnknownKey) {
		t.Fatalf("call with dead domain key = %v, want ErrUnknownKey", err)
	}
	if ran {
		t.Error("callee ran despite rights-activation failure")
	}
}
