package ffi

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vm"
)

func TestAbortKillsAllCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("f", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	th := rt.NewThread()
	if _, err := th.Call("lib", "f"); err != nil {
		t.Fatal(err)
	}
	rt.Abort()
	if !rt.Aborted() {
		t.Fatal("Aborted() false after Abort")
	}
	if _, err := th.Call("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("call after abort = %v, want ErrAborted", err)
	}
	if _, err := th.CallNoGate("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("CallNoGate after abort = %v, want ErrAborted", err)
	}
}

// TestPerThreadPKRUIsolation: PKRU is per-thread state. One thread parked
// inside the untrusted compartment must not affect another thread's full
// trusted rights — the property that makes PKRU-Safe sound for the
// multi-threaded Servo (§8 "multi-threaded mixed-language environments").
func TestPerThreadPKRUIsolation(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, err := rt.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	reg.MustLibrary("lib", Untrusted).Define("park", func(th *Thread, _ []uint64) ([]uint64, error) {
		close(entered)
		<-release
		// Still in U: MT must stay inaccessible.
		if _, err := th.Load64(secret); err == nil {
			t.Error("parked untrusted thread read MT")
		}
		return nil, nil
	})

	thA := rt.NewThread()
	done := make(chan error, 1)
	go func() {
		_, err := thA.Call("lib", "park")
		done <- err
	}()
	<-entered
	// Thread B, in T, accesses MT freely while A sits in U.
	thB := rt.NewThread()
	if err := thB.VM.Store64(secret, 99); err != nil {
		t.Errorf("trusted thread blocked by another thread's gate: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if thA.VM.Rights() != mpk.PermitAll {
		t.Error("thread A rights not restored")
	}
}

func TestConcurrentGatedCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("alloc_and_touch", func(th *Thread, _ []uint64) ([]uint64, error) {
		a, err := th.Malloc(64)
		if err != nil {
			return nil, err
		}
		if err := th.Store64(a, 1); err != nil {
			return nil, err
		}
		return nil, th.Free(a)
	})
	const goroutines, calls = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < calls; i++ {
				if _, err := th.Call("lib", "alloc_and_touch"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := rt.Transitions(); got != goroutines*calls {
		t.Errorf("transitions = %d, want %d", got, goroutines*calls)
	}
}

// TestOOMPropagates: exhausting a tiny trusted pool surfaces as an error,
// not a panic, through the FFI allocation path.
func TestOOMPropagates(t *testing.T) {
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{
		Space:       space,
		TrustedSize: 4 * vm.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(NewRegistry(), alloc, nil, GatesOn)
	th := rt.NewThread()
	if _, err := th.Malloc(64 * vm.PageSize); err == nil {
		t.Error("oversized trusted allocation succeeded")
	}
	// The allocator remains usable after the failure.
	if _, err := th.Malloc(64); err != nil {
		t.Errorf("small allocation after OOM failed: %v", err)
	}
}
