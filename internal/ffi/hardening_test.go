package ffi

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vkey"
	"repro/internal/vm"
)

func TestAbortKillsAllCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("f", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	th := rt.NewThread()
	if _, err := th.Call("lib", "f"); err != nil {
		t.Fatal(err)
	}
	rt.Abort()
	if !rt.Aborted() {
		t.Fatal("Aborted() false after Abort")
	}
	if _, err := th.Call("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("call after abort = %v, want ErrAborted", err)
	}
	if _, err := th.CallNoGate("lib", "f"); !errors.Is(err, ErrAborted) {
		t.Errorf("CallNoGate after abort = %v, want ErrAborted", err)
	}
}

// TestPerThreadPKRUIsolation: PKRU is per-thread state. One thread parked
// inside the untrusted compartment must not affect another thread's full
// trusted rights — the property that makes PKRU-Safe sound for the
// multi-threaded Servo (§8 "multi-threaded mixed-language environments").
func TestPerThreadPKRUIsolation(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, err := rt.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	reg.MustLibrary("lib", Untrusted).Define("park", func(th *Thread, _ []uint64) ([]uint64, error) {
		close(entered)
		<-release
		// Still in U: MT must stay inaccessible.
		if _, err := th.Load64(secret); err == nil {
			t.Error("parked untrusted thread read MT")
		}
		return nil, nil
	})

	thA := rt.NewThread()
	done := make(chan error, 1)
	go func() {
		_, err := thA.Call("lib", "park")
		done <- err
	}()
	<-entered
	// Thread B, in T, accesses MT freely while A sits in U.
	thB := rt.NewThread()
	if err := thB.VM.Store64(secret, 99); err != nil {
		t.Errorf("trusted thread blocked by another thread's gate: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if thA.VM.Rights() != mpk.PermitAll {
		t.Error("thread A rights not restored")
	}
}

func TestConcurrentGatedCalls(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("alloc_and_touch", func(th *Thread, _ []uint64) ([]uint64, error) {
		a, err := th.Malloc(64)
		if err != nil {
			return nil, err
		}
		if err := th.Store64(a, 1); err != nil {
			return nil, err
		}
		return nil, th.Free(a)
	})
	const goroutines, calls = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < calls; i++ {
				if _, err := th.Call("lib", "alloc_and_touch"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := rt.Transitions(); got != goroutines*calls {
		t.Errorf("transitions = %d, want %d", got, goroutines*calls)
	}
}

// TestOOMPropagates: exhausting a tiny trusted pool surfaces as an error,
// not a panic, through the FFI allocation path.
func TestOOMPropagates(t *testing.T) {
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{
		Space:       space,
		TrustedSize: 4 * vm.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(NewRegistry(), alloc, nil, GatesOn)
	th := rt.NewThread()
	if _, err := th.Malloc(64 * vm.PageSize); err == nil {
		t.Error("oversized trusted allocation succeeded")
	}
	// The allocator remains usable after the failure.
	if _, err := th.Malloc(64); err != nil {
		t.Errorf("small allocation after OOM failed: %v", err)
	}
}

// TestPanicMidCallRestoresGateInvariants: an untrusted Func that panics
// must not leave the thread stuck in the untrusted compartment. The gates
// unwind themselves as the panic propagates, so Depth(), CurrentTrust()
// and the PKRU register are all back to their pre-call values by the time
// the panic reaches (and is recovered by) the trusted frame.
func TestPanicMidCallRestoresGateInvariants(t *testing.T) {
	rt, reg := world(t, GatesOn)
	reg.MustLibrary("lib", Untrusted).Define("boom", func(*Thread, []uint64) ([]uint64, error) {
		panic("untrusted library crashed")
	})
	// Nested variant: trusted callback panics two gates deep.
	reg.MustLibrary("trusted", Trusted).Define("cb_boom", func(*Thread, []uint64) ([]uint64, error) {
		panic("trusted callback crashed")
	})
	reg.MustLibrary("lib", Untrusted).Define("call_back", func(th *Thread, _ []uint64) ([]uint64, error) {
		return th.Call("trusted", "cb_boom")
	})

	th := rt.NewThread()
	for _, fn := range []string{"boom", "call_back"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic swallowed", fn)
				}
			}()
			_, _ = th.Call("lib", fn)
		}()
		if d := th.Depth(); d != 0 {
			t.Errorf("%s: Depth() after panic = %d, want 0", fn, d)
		}
		if tr := th.CurrentTrust(); tr != Trusted {
			t.Errorf("%s: CurrentTrust() after panic = %v, want Trusted", fn, tr)
		}
		if r := th.VM.Rights(); r != mpk.PermitAll {
			t.Errorf("%s: rights after panic = %v, want PermitAll", fn, r)
		}
	}
	// The thread is still usable: a subsequent gated call succeeds.
	reg.MustLibrary("lib", Untrusted).Define("ok", func(*Thread, []uint64) ([]uint64, error) {
		return nil, nil
	})
	if _, err := th.Call("lib", "ok"); err != nil {
		t.Errorf("call after recovered panic: %v", err)
	}
}

// TestCheckpointUnwind: the supervisor's recovery-point primitives restore
// depth, trust and rights, and refuse to unwind "forward" to a deeper
// frame.
func TestCheckpointUnwind(t *testing.T) {
	rt, reg := world(t, GatesOn)
	var inner Checkpoint
	reg.MustLibrary("lib", Untrusted).Define("snap", func(th *Thread, _ []uint64) ([]uint64, error) {
		inner = th.Checkpoint()
		return nil, nil
	})
	th := rt.NewThread()
	cp := th.Checkpoint()
	if _, err := th.Call("lib", "snap"); err != nil {
		t.Fatal(err)
	}
	// Unwinding to the (now-popped) inner frame is a caller bug.
	if err := th.Unwind(inner); err == nil {
		t.Error("unwind to deeper checkpoint accepted")
	}
	// Unwinding to the trusted frame verifies and is idempotent at depth 0.
	if err := th.Unwind(cp); err != nil {
		t.Errorf("Unwind: %v", err)
	}
	if th.Depth() != 0 || th.CurrentTrust() != Trusted || th.VM.Rights() != cp.Rights() {
		t.Errorf("state after unwind: depth=%d trust=%v rights=%v", th.Depth(), th.CurrentTrust(), th.VM.Rights())
	}
}

// domainWorld builds a runtime with two untrusted libraries, each bound
// to its own virtualized compartment: a private pkalloc domain pool and a
// vkey logical key whose activation supplies the gate's rights.
func domainWorld(t *testing.T) (*Runtime, *vkey.Table, map[string]vkey.ID) {
	t.Helper()
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	table, err := vkey.NewTable(space, vkey.Config{Reserved: []mpk.Key{alloc.TrustedKey()}})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	rt := NewRuntime(reg, alloc, nil, GatesOn)
	ids := make(map[string]vkey.ID)
	for _, name := range []string{"tenantA", "tenantB"} {
		region, err := alloc.AddDomainPool(name, table.InactiveKey())
		if err != nil {
			t.Fatal(err)
		}
		id := table.Alloc(name)
		if err := table.Attach(id, region.Base, region.Size); err != nil {
			t.Fatal(err)
		}
		ids[name] = id
		rt.BindLibraryDomain(name, DomainBinding{Pool: name, Table: table, Key: id})
	}
	return rt, table, ids
}

// TestDomainBoundGatesIsolateTenants: calls into a domain-bound library
// pass through the audited gate with the domain's activated rights, its
// allocations land in the domain's private pool, and neither the trusted
// heap nor the sibling tenant's pool is reachable from inside.
func TestDomainBoundGatesIsolateTenants(t *testing.T) {
	rt, _, _ := domainWorld(t)
	reg := rt.Registry
	secret, err := rt.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	var aBuf, bBuf vm.Addr
	reg.MustLibrary("tenantB", Untrusted).Define("init", func(th *Thread, _ []uint64) ([]uint64, error) {
		addr, err := th.Malloc(32)
		if err != nil {
			return nil, err
		}
		bBuf = addr
		return nil, th.Store64(addr, 0xb)
	})
	reg.MustLibrary("tenantA", Untrusted).Define("probe", func(th *Thread, _ []uint64) ([]uint64, error) {
		addr, err := th.Malloc(32)
		if err != nil {
			return nil, err
		}
		aBuf = addr
		if err := th.Store64(addr, 0xa); err != nil {
			return nil, err
		}
		if _, err := th.Load64(secret); err == nil {
			t.Error("tenantA read MT")
		}
		if _, err := th.Load64(bBuf); err == nil {
			t.Error("tenantA read tenantB's private pool")
		}
		return nil, nil
	})

	th := rt.NewThread()
	if _, err := th.Call("tenantB", "init"); err != nil {
		t.Fatal(err)
	}
	if rB, okB := rt.Alloc.DomainRegion("tenantB"); !okB || !rB.Contains(bBuf) {
		t.Errorf("tenantB allocation %v not in its domain pool", bBuf)
	}
	before := rt.Transitions()
	if _, err := th.Call("tenantA", "probe"); err != nil {
		t.Fatal(err)
	}
	if rt.Transitions() != before+1 {
		t.Errorf("domain-bound call did not gate: transitions %d -> %d", before, rt.Transitions())
	}
	if rA, okA := rt.Alloc.DomainRegion("tenantA"); !okA || !rA.Contains(aBuf) {
		t.Errorf("tenantA allocation %v not in its domain pool", aBuf)
	}
	if th.VM.Rights() != mpk.PermitAll {
		t.Errorf("rights after domain call = %v, want restored PermitAll", th.VM.Rights())
	}
	if rt.Aborted() {
		t.Error("runtime aborted during clean domain calls")
	}
}

// TestCrossDomainCallsGateEvenUntrustedToUntrusted: two untrusted
// libraries in different domains must still gate between each other — a
// U→U call with unchanged rights would merge the sandboxes.
func TestCrossDomainCallsGateEvenUntrustedToUntrusted(t *testing.T) {
	rt, _, _ := domainWorld(t)
	reg := rt.Registry
	var inB mpk.PKRU
	reg.MustLibrary("tenantB", Untrusted).Define("leaf", func(th *Thread, _ []uint64) ([]uint64, error) {
		inB = th.VM.Rights()
		return nil, nil
	})
	var inA, backInA mpk.PKRU
	reg.MustLibrary("tenantA", Untrusted).Define("nest", func(th *Thread, _ []uint64) ([]uint64, error) {
		inA = th.VM.Rights()
		if _, err := th.Call("tenantB", "leaf"); err != nil {
			return nil, err
		}
		backInA = th.VM.Rights()
		return nil, nil
	})
	th := rt.NewThread()
	before := rt.Transitions()
	if _, err := th.Call("tenantA", "nest"); err != nil {
		t.Fatal(err)
	}
	if got := rt.Transitions() - before; got != 2 {
		t.Errorf("nested cross-domain call made %d gated transitions, want 2", got)
	}
	if inA == inB {
		t.Error("tenantA and tenantB ran with identical rights — sandboxes merged")
	}
	if backInA != inA {
		t.Errorf("rights after inner call = %v, want %v restored", backInA, inA)
	}
}

// churnSlots floods the table with throwaway logical keys until every
// hardware slot has been rebound, evicting whatever was resident. Each
// key gets a page-backed range so retag-on-evict is exercised. It returns
// the buffer of the churn key that ended up bound to wantHW — the tenant
// that inherited the victim's slot, the memory a stale PKRU would reach.
func churnSlots(t *testing.T, rt *Runtime, table *vkey.Table, wantHW mpk.Key) vm.Addr {
	t.Helper()
	type churned struct {
		id  vkey.ID
		buf vm.Addr
	}
	var keys []churned
	for i := 0; i <= table.Slots(); i++ {
		id := table.Alloc(fmt.Sprintf("churn%d", i))
		buf := vm.Addr(0x6100_0000_0000 + uint64(i)<<20)
		if _, err := rt.Alloc.Space().Reserve(fmt.Sprintf("churn/%d", i), buf, uint64(vm.PageSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := table.Attach(id, buf, uint64(vm.PageSize)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := table.Activate(id); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, churned{id, buf})
	}
	for _, c := range keys {
		if hw, ok := table.HardwareKey(c.id); ok && hw == wantHW {
			return c.buf
		}
	}
	t.Fatalf("no churn key inherited slot %v", wantHW)
	return 0
}

// TestDomainGateBindsThreadForRevocation: a thread that entered a domain
// through an ffi call gate — not through domains.Enter — must still lose
// its PKRU rights when its domain's slot is evicted and rebound. This is
// the eviction-time revalidation half of the Garmr defense: without the
// gate binding the register to the vkey table, the thread would keep
// reaching the new tenant's memory through the rebound slot.
func TestDomainGateBindsThreadForRevocation(t *testing.T) {
	rt, table, ids := domainWorld(t)
	reg := rt.Registry
	var ownBuf vm.Addr
	reg.MustLibrary("tenantA", Untrusted).Define("evicted_inside", func(th *Thread, _ []uint64) ([]uint64, error) {
		addr, err := th.Malloc(32)
		if err != nil {
			return nil, err
		}
		ownBuf = addr
		hwA, ok := table.HardwareKey(ids["tenantA"])
		if !ok {
			t.Fatal("entered domain holds no slot")
		}
		inheritedBuf := churnSlots(t, rt, table, hwA)
		if r := th.VM.Rights().Rights(hwA); r != mpk.DenyAll {
			t.Errorf("gated thread still holds %v for rebound slot %v — gate did not bind for revocation", r, hwA)
		}
		if _, err := th.Load64(inheritedBuf); err == nil {
			t.Error("gated thread read the tenant that inherited its evicted slot")
		}
		// Its own pool is gone too until re-entry — the pages are parked.
		if _, err := th.Load64(ownBuf); err == nil {
			t.Error("gated thread read its own pool through a revoked slot")
		}
		return nil, nil
	})
	th := rt.NewThread()
	if _, err := th.Call("tenantA", "evicted_inside"); err != nil {
		t.Fatal(err)
	}
	if st := table.Stats(); st.Invalidations == 0 {
		t.Error("eviction revoked no bound-thread rights")
	}
	if th.VM.Rights() != mpk.PermitAll {
		t.Errorf("rights after return = %v, want PermitAll", th.VM.Rights())
	}
}

// TestDomainGateExitReactivatesAfterEviction is the stale-PKRU regression
// for the gate's exit half: tenantA calls a trusted library; while the
// trusted callback runs, slot churn evicts tenantA and hands its hardware
// slot to another logical key. The reverse gate's exit must re-derive
// tenantA's rights (re-activating its key onto a fresh slot) — replaying
// the PKRU saved at gate entry would resurrect rights to the slot's new
// tenant.
func TestDomainGateExitReactivatesAfterEviction(t *testing.T) {
	rt, table, ids := domainWorld(t)
	reg := rt.Registry
	var inheritedBuf vm.Addr
	reg.MustLibrary("svc", Trusted).Define("churn", func(th *Thread, _ []uint64) ([]uint64, error) {
		hwA, ok := table.HardwareKey(ids["tenantA"])
		if !ok {
			t.Fatal("tenantA holds no slot at callback time")
		}
		inheritedBuf = churnSlots(t, rt, table, hwA)
		return nil, nil
	})
	reg.MustLibrary("tenantA", Untrusted).Define("roundtrip", func(th *Thread, _ []uint64) ([]uint64, error) {
		own, err := th.Malloc(32)
		if err != nil {
			return nil, err
		}
		if err := th.Store64(own, 0xa); err != nil {
			return nil, err
		}
		if _, err := th.Call("svc", "churn"); err != nil {
			return nil, err
		}
		// Back in tenantA after the reverse gate's exit: the old slot now
		// belongs to someone else and must be unreachable …
		if _, err := th.Load64(inheritedBuf); err == nil {
			t.Error("after callback, tenantA read the tenant that inherited its old slot (stale PKRU replayed)")
		}
		// … while tenantA's own pool is reachable again on a fresh slot.
		if v, err := th.Load64(own); err != nil || v != 0xa {
			t.Errorf("after callback, tenantA lost its own pool: %v, %v", v, err)
		}
		return nil, nil
	})
	th := rt.NewThread()
	if _, err := th.Call("tenantA", "roundtrip"); err != nil {
		t.Fatal(err)
	}
	if st := table.Stats(); st.Evictions == 0 {
		t.Fatal("churn produced no evictions — the regression was not exercised")
	}
	if rt.Aborted() {
		t.Error("runtime aborted during clean eviction churn")
	}
}

// TestDomainRightsFailureFailsClosed: if activating the domain's key
// fails, the call must not proceed with the caller's rights.
func TestDomainRightsFailureFailsClosed(t *testing.T) {
	rt, table, ids := domainWorld(t)
	reg := rt.Registry
	ran := false
	reg.MustLibrary("tenantA", Untrusted).Define("f", func(*Thread, []uint64) ([]uint64, error) {
		ran = true
		return nil, nil
	})
	// Freeing the logical key makes the Rights callback error.
	if err := table.Free(ids["tenantA"]); err != nil {
		t.Fatal(err)
	}
	th := rt.NewThread()
	if _, err := th.Call("tenantA", "f"); !errors.Is(err, vkey.ErrUnknownKey) {
		t.Fatalf("call with dead domain key = %v, want ErrUnknownKey", err)
	}
	if ran {
		t.Error("callee ran despite rights-activation failure")
	}
}
