package ffi

import (
	"errors"
	"testing"

	"repro/internal/mpk"
)

// filterWorld assembles a runtime with a trusted "sys" library (one
// sensitive and one benign entry point) and an untrusted "evil" caller.
func filterWorld(t *testing.T) (*Runtime, *Registry, *Thread) {
	t.Helper()
	rt, reg := world(t, GatesOn)
	rt.SetGateCost(0)
	sys := reg.MustLibrary("sys", Trusted)
	sys.Define("getpid", func(*Thread, []uint64) ([]uint64, error) { return []uint64{42}, nil })
	sys.Define("chmod", func(*Thread, []uint64) ([]uint64, error) { return nil, nil })
	evil := reg.MustLibrary("evil", Untrusted)
	evil.Define("probe", func(th *Thread, args []uint64) ([]uint64, error) {
		return th.Call("sys", "chmod")
	})
	evil.Define("benign", func(th *Thread, args []uint64) ([]uint64, error) {
		return th.Call("sys", "getpid")
	})
	return rt, reg, rt.NewThread()
}

func TestCallFilterBlocksUnlistedReverseGateCalls(t *testing.T) {
	_, reg, th := filterWorld(t)
	reg.SetCallFilter(true)
	reg.Allow("evil", "sys", "getpid")

	if res, err := th.Call("evil", "benign"); err != nil || len(res) != 1 || res[0] != 42 {
		t.Fatalf("allow-listed call: res=%v err=%v", res, err)
	}
	if _, err := th.Call("evil", "probe"); !errors.Is(err, ErrCallFiltered) {
		t.Fatalf("unlisted call: err=%v, want ErrCallFiltered", err)
	}
	// A filtered call must leave no gate state behind: the thread is back
	// at depth 0 with full rights and the runtime is still alive.
	if th.Depth() != 0 {
		t.Errorf("Depth = %d after filtered call, want 0", th.Depth())
	}
	if th.rt.Aborted() {
		t.Error("runtime aborted by a filtered call")
	}
	if got := th.VM.Rights(); got != mpk.PermitAll {
		t.Errorf("rights = %v after filtered call, want PermitAll", got)
	}
}

func TestCallFilterScope(t *testing.T) {
	rt, reg, th := filterWorld(t)
	reg.SetCallFilter(true)
	// No allow-list entry at all: every untrusted→trusted call is refused.
	if _, err := th.Call("evil", "benign"); !errors.Is(err, ErrCallFiltered) {
		t.Fatalf("unlisted caller: err=%v, want ErrCallFiltered", err)
	}
	// Trusted code is never filtered.
	if res, err := th.Call("sys", "getpid"); err != nil || res[0] != 42 {
		t.Fatalf("trusted caller filtered: res=%v err=%v", res, err)
	}
	// Untrusted→untrusted stays unfiltered: the filter guards trusted
	// entry points only, like seccomp guards the syscall boundary only.
	evil2 := reg.MustLibrary("evil2", Untrusted)
	evil2.Define("noop", func(*Thread, []uint64) ([]uint64, error) { return nil, nil })
	evil := reg.libs["evil"]
	evil.Define("peer", func(th *Thread, _ []uint64) ([]uint64, error) {
		return th.Call("evil2", "noop")
	})
	if _, err := th.Call("evil", "peer"); err != nil {
		t.Fatalf("untrusted→untrusted filtered: %v", err)
	}
	// Disarming restores open calling.
	reg.SetCallFilter(false)
	if reg.CallFilter() {
		t.Error("CallFilter still armed")
	}
	if _, err := th.Call("evil", "probe"); err != nil {
		t.Fatalf("call refused with filter off: %v", err)
	}
	_ = rt
}

func TestExitAuditAbortsEscalatedGateExit(t *testing.T) {
	rt, reg, th := filterWorld(t)
	rt.SetExitAudit(true)
	evil := reg.libs["evil"]
	evil.Define("widen", func(th *Thread, _ []uint64) ([]uint64, error) {
		th.VM.SetPKRU(uint32(mpk.PermitAll))
		return []uint64{7}, nil
	})
	_, err := th.Call("evil", "widen")
	if !errors.Is(err, ErrGateTampered) {
		t.Fatalf("err = %v, want ErrGateTampered", err)
	}
	if !rt.Aborted() {
		t.Error("runtime not aborted after exit-audit failure")
	}
	// The audit error must not mask a real callee error.
	rt2, reg2, th2 := filterWorld(t)
	rt2.SetExitAudit(true)
	reg2.libs["evil"].Define("widenfail", func(th *Thread, _ []uint64) ([]uint64, error) {
		th.VM.SetPKRU(uint32(mpk.PermitAll))
		return nil, errors.New("callee exploded")
	})
	if _, err := th2.Call("evil", "widenfail"); err == nil || errors.Is(err, ErrGateTampered) {
		t.Errorf("audit masked the callee error: %v", err)
	} else if !rt2.Aborted() {
		t.Error("runtime not aborted when audit trips alongside a callee error")
	}
}

func TestExitAuditPermitsNarrowingCallee(t *testing.T) {
	rt, reg, th := filterWorld(t)
	rt.SetExitAudit(true)
	evil := reg.libs["evil"]
	evil.Define("narrow", func(th *Thread, _ []uint64) ([]uint64, error) {
		// Dropping one's own rights is not an escalation; the gate restores
		// the caller's rights as usual.
		th.VM.SetRights(mpk.DenyAllExcept())
		return []uint64{1}, nil
	})
	if res, err := th.Call("evil", "narrow"); err != nil || res[0] != 1 {
		t.Fatalf("narrowing callee refused: res=%v err=%v", res, err)
	}
	if rt.Aborted() {
		t.Error("runtime aborted by a narrowing callee")
	}
	if got := th.VM.Rights(); got != mpk.PermitAll {
		t.Errorf("caller rights not restored: %v", got)
	}
	// Default-off: a widening callee is silently restored when the audit
	// is disarmed, the historical behavior.
	rt2, reg2, th2 := filterWorld(t)
	reg2.libs["evil"].Define("widen", func(th *Thread, _ []uint64) ([]uint64, error) {
		th.VM.SetPKRU(uint32(mpk.PermitAll))
		return []uint64{7}, nil
	})
	if _, err := th2.Call("evil", "widen"); err != nil {
		t.Fatalf("audit-off widening callee refused: %v", err)
	}
	if rt2.Aborted() {
		t.Error("audit-off runtime aborted")
	}
}
