package ffi

import (
	"errors"
	"testing"

	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vm"
)

// world builds a registry with one trusted and one untrusted library and a
// runtime in the given mode.
func world(t *testing.T, mode GateMode) (*Runtime, *Registry) {
	t.Helper()
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	return NewRuntime(reg, alloc, nil, mode), reg
}

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	lib, err := reg.Library("mozjs", Untrusted)
	if err != nil {
		t.Fatal(err)
	}
	lib.Define("eval", func(*Thread, []uint64) ([]uint64, error) { return nil, nil })
	if _, err := reg.Library("mozjs", Trusted); err == nil {
		t.Error("trust re-declaration accepted")
	}
	if l2, err := reg.Library("mozjs", Untrusted); err != nil || l2 != lib {
		t.Error("idempotent re-declaration failed")
	}
	if _, _, err := reg.Lookup("mozjs", "eval"); err != nil {
		t.Errorf("Lookup: %v", err)
	}
	if _, _, err := reg.Lookup("mozjs", "nope"); !errors.Is(err, ErrNoSuchFunc) {
		t.Errorf("missing func = %v", err)
	}
	if _, _, err := reg.Lookup("nolib", "f"); !errors.Is(err, ErrNoSuchFunc) {
		t.Errorf("missing lib = %v", err)
	}
	if got := lib.FuncNames(); len(got) != 1 || got[0] != "eval" {
		t.Errorf("FuncNames = %v", got)
	}
	if got := reg.LibNames(); len(got) != 1 || got[0] != "mozjs" {
		t.Errorf("LibNames = %v", got)
	}
	if Trusted.String() != "trusted" || Untrusted.String() != "untrusted" {
		t.Error("trust names")
	}
}

func TestMustLibraryPanics(t *testing.T) {
	reg := NewRegistry()
	reg.MustLibrary("l", Trusted)
	defer func() {
		if recover() == nil {
			t.Error("MustLibrary should panic on trust conflict")
		}
	}()
	reg.MustLibrary("l", Untrusted)
}

// TestGateDropsAndRestoresRights is the core §3.3 behaviour: inside an
// untrusted call MT is inaccessible; after return rights are restored.
func TestGateDropsAndRestoresRights(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, err := rt.Alloc.Alloc(64) // MT allocation
	if err != nil {
		t.Fatal(err)
	}
	var sawFault bool
	reg.MustLibrary("evil", Untrusted).Define("poke", func(th *Thread, args []uint64) ([]uint64, error) {
		if !th.InUntrusted() {
			t.Error("untrusted callee not in untrusted rights")
		}
		if _, err := th.Load64(vm.Addr(args[0])); err != nil {
			var f *vm.Fault
			sawFault = errors.As(err, &f)
		}
		return nil, nil
	})
	th := rt.NewThread()
	if err := th.VM.Store64(secret, 42); err != nil { // trusted write works
		t.Fatal(err)
	}
	if _, err := th.Call("evil", "poke", uint64(secret)); err != nil {
		t.Fatal(err)
	}
	if !sawFault {
		t.Error("untrusted access to MT did not fault")
	}
	if th.VM.Rights() != mpk.PermitAll {
		t.Errorf("rights after return = %v", th.VM.Rights())
	}
	if th.Depth() != 0 {
		t.Errorf("compartment stack depth = %d", th.Depth())
	}
	if rt.Transitions() != 1 {
		t.Errorf("transitions = %d", rt.Transitions())
	}
}

func TestUntrustedCanReadMU(t *testing.T) {
	rt, reg := world(t, GatesOn)
	shared, err := rt.Alloc.UntrustedAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	reg.MustLibrary("lib", Untrusted).Define("read", func(th *Thread, args []uint64) ([]uint64, error) {
		v, err := th.Load64(vm.Addr(args[0]))
		return []uint64{v}, err
	})
	th := rt.NewThread()
	if err := th.VM.Store64(shared, 1337); err != nil {
		t.Fatal(err)
	}
	res, err := th.Call("lib", "read", uint64(shared))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 1337 {
		t.Errorf("shared read = %d", res[0])
	}
}

// TestReverseGateCallback: untrusted code calls back into a trusted
// exported function, which runs with full rights; on return the untrusted
// rights are reinstated (nested compartment stack).
func TestReverseGateCallback(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, _ := rt.Alloc.Alloc(8)
	trusted := reg.MustLibrary("servo", Trusted)
	trusted.Define("get_secret", func(th *Thread, _ []uint64) ([]uint64, error) {
		if th.InUntrusted() {
			t.Error("reverse gate did not restore trusted rights")
		}
		v, err := th.Load64(secret)
		return []uint64{v}, err
	})
	var backInU bool
	reg.MustLibrary("js", Untrusted).Define("run", func(th *Thread, _ []uint64) ([]uint64, error) {
		res, err := th.Call("servo", "get_secret")
		if err != nil {
			return nil, err
		}
		backInU = th.InUntrusted()
		return res, nil
	})
	th := rt.NewThread()
	if err := th.VM.Store64(secret, 7); err != nil {
		t.Fatal(err)
	}
	res, err := th.Call("js", "run")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 7 {
		t.Errorf("callback result = %d", res[0])
	}
	if !backInU {
		t.Error("rights not restored to untrusted after callback returned")
	}
	if rt.Transitions() != 2 {
		t.Errorf("transitions = %d, want 2 (forward + reverse)", rt.Transitions())
	}
}

func TestDeeplyNestedTransitionsUnwind(t *testing.T) {
	rt, reg := world(t, GatesOn)
	tl := reg.MustLibrary("t", Trusted)
	ul := reg.MustLibrary("u", Untrusted)
	// t.ping(n) -> u.pong(n-1) -> t.ping(n-2) -> ...
	tl.Define("ping", func(th *Thread, args []uint64) ([]uint64, error) {
		if args[0] == 0 {
			return []uint64{uint64(th.Depth())}, nil
		}
		return th.Call("u", "pong", args[0]-1)
	})
	ul.Define("pong", func(th *Thread, args []uint64) ([]uint64, error) {
		if args[0] == 0 {
			return []uint64{uint64(th.Depth())}, nil
		}
		return th.Call("t", "ping", args[0]-1)
	})
	th := rt.NewThread()
	res, err := th.Call("t", "ping", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 10 {
		t.Errorf("max depth = %d, want 10", res[0])
	}
	if th.Depth() != 0 {
		t.Errorf("stack depth after unwind = %d", th.Depth())
	}
	if th.VM.Rights() != mpk.PermitAll {
		t.Errorf("rights after unwind = %v", th.VM.Rights())
	}
}

func TestGatesOffMode(t *testing.T) {
	rt, reg := world(t, GatesOff)
	secret, _ := rt.Alloc.Alloc(8)
	reg.MustLibrary("evil", Untrusted).Define("poke", func(th *Thread, args []uint64) ([]uint64, error) {
		v, err := th.Load64(vm.Addr(args[0]))
		return []uint64{v}, err
	})
	th := rt.NewThread()
	if err := th.VM.Store64(secret, 42); err != nil {
		t.Fatal(err)
	}
	res, err := th.Call("evil", "poke", uint64(secret))
	if err != nil {
		t.Fatalf("base build untrusted access should succeed: %v", err)
	}
	if res[0] != 42 {
		t.Errorf("value = %d", res[0])
	}
	if rt.Transitions() != 0 {
		t.Errorf("transitions counted in GatesOff mode: %d", rt.Transitions())
	}
}

// TestCallNoGateCrashesOnMT models untrusted code jumping straight into an
// uninstrumented trusted function: it inherits untrusted rights and dies
// touching MT.
func TestCallNoGateCrashesOnMT(t *testing.T) {
	rt, reg := world(t, GatesOn)
	secret, _ := rt.Alloc.Alloc(8)
	reg.MustLibrary("servo", Trusted).Define("touch", func(th *Thread, _ []uint64) ([]uint64, error) {
		v, err := th.Load64(secret)
		return []uint64{v}, err
	})
	reg.MustLibrary("js", Untrusted).Define("jump", func(th *Thread, _ []uint64) ([]uint64, error) {
		return th.CallNoGate("servo", "touch")
	})
	th := rt.NewThread()
	_, err := th.Call("js", "jump")
	var f *vm.Fault
	if !errors.As(err, &f) {
		t.Errorf("direct jump into T should crash on MT access, got %v", err)
	}
}

func TestMallocRoutesByCompartment(t *testing.T) {
	rt, reg := world(t, GatesOn)
	var uAddr vm.Addr
	reg.MustLibrary("lib", Untrusted).Define("alloc", func(th *Thread, _ []uint64) ([]uint64, error) {
		a, err := th.Malloc(128)
		uAddr = a
		return []uint64{uint64(a)}, err
	})
	th := rt.NewThread()
	tAddr, err := th.Malloc(128) // trusted context
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := rt.Alloc.CompartmentOf(tAddr); c != pkalloc.Trusted {
		t.Errorf("trusted malloc went to %v", c)
	}
	if _, err := th.Call("lib", "alloc"); err != nil {
		t.Fatal(err)
	}
	if c, _ := rt.Alloc.CompartmentOf(uAddr); c != pkalloc.Untrusted {
		t.Errorf("untrusted malloc went to %v", c)
	}
	if err := th.Free(tAddr); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(uAddr); err != nil {
		t.Fatal(err)
	}
}

func TestByteHelpers(t *testing.T) {
	rt, _ := world(t, GatesOn)
	th := rt.NewThread()
	a, _ := th.Malloc(32)
	if err := th.WriteBytes(a, []byte("pkru-safe")); err != nil {
		t.Fatal(err)
	}
	got, err := th.ReadBytes(a, 9)
	if err != nil || string(got) != "pkru-safe" {
		t.Errorf("ReadBytes = %q, %v", got, err)
	}
	if err := th.Store8(a, 'P'); err != nil {
		t.Fatal(err)
	}
	b, err := th.Load8(a)
	if err != nil || b != 'P' {
		t.Errorf("Load8 = %c, %v", b, err)
	}
}

func TestCallUnknownFunc(t *testing.T) {
	rt, _ := world(t, GatesOn)
	th := rt.NewThread()
	if _, err := th.Call("ghost", "fn"); !errors.Is(err, ErrNoSuchFunc) {
		t.Errorf("unknown call = %v", err)
	}
	if _, err := th.CallNoGate("ghost", "fn"); !errors.Is(err, ErrNoSuchFunc) {
		t.Errorf("unknown CallNoGate = %v", err)
	}
}
