// Package ffi models the foreign-function boundary PKRU-Safe instruments:
// libraries of "native" functions (the cgo/C-library analogue) that may
// touch program memory only through a checked thread handle, annotated at
// the library level as trusted or untrusted (§3.2).
//
// Calls into an untrusted library pass through a call gate that drops
// access to the trusted heap MT, and calls back into trusted code pass
// through a reverse gate that restores it; a per-thread compartment stack
// guarantees the pre-call rights are reinstated on every return path
// (§3.3). Gates verify the PKRU value they installed and abort the program
// on mismatch, mirroring the paper's hardened assembly stubs (§4.1).
package ffi

import (
	"errors"
	"fmt"
	"sort"
)

// Trust is the library-level annotation.
type Trust uint8

const (
	// Trusted libraries run with the caller's full rights.
	Trusted Trust = iota
	// Untrusted libraries run behind call gates with MT inaccessible.
	Untrusted
)

func (tr Trust) String() string {
	if tr == Untrusted {
		return "untrusted"
	}
	return "trusted"
}

// Func is a native function: it may only touch simulated memory through
// the Thread it is handed, which is what subjects it to PKRU checking.
// Arguments and results are machine words, as across a real FFI.
type Func func(t *Thread, args []uint64) ([]uint64, error)

// Library is a named set of native functions with one trust annotation —
// the unit at which PKRU-Safe's developer annotations operate.
type Library struct {
	Name  string
	Trust Trust
	funcs map[string]Func
}

// Define registers a function in the library, replacing any previous
// definition of the same name.
func (l *Library) Define(name string, fn Func) *Library {
	l.funcs[name] = fn
	return l
}

// Lookup returns the named function.
func (l *Library) Lookup(name string) (Func, bool) {
	fn, ok := l.funcs[name]
	return fn, ok
}

// FuncNames returns the library's function names in sorted order.
func (l *Library) FuncNames() []string {
	names := make([]string, 0, len(l.funcs))
	for n := range l.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ErrNoSuchFunc is returned for calls to unregistered functions.
var ErrNoSuchFunc = errors.New("ffi: no such function")

// ErrCallFiltered is returned when the registry's call filter rejects a
// reverse-gate call: untrusted code invoked a trusted entry point that is
// not on its allow-list.
var ErrCallFiltered = errors.New("ffi: call filtered")

// Registry holds every library linked into the program.
//
// With the call filter armed (SetCallFilter) the registry additionally
// acts as the syscall-filter analogue Garmr prescribes for PKU sandboxes:
// on real hardware a sandboxed library can always *reach* the kernel (or
// any trusted entry point), so the last line of defense is an allow-list
// over what it may legitimately request — seccomp for syscalls, and here
// an allow-list over untrusted→trusted reverse-gate calls. Calls among
// untrusted libraries and all calls from trusted code are never filtered.
type Registry struct {
	libs map[string]*Library

	filterOn bool
	// allowed maps caller library → "lib.fn" of permitted trusted entry
	// points. A caller with no entry may call nothing trusted.
	allowed map[string]map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{libs: make(map[string]*Library)}
}

// SetCallFilter arms (or disarms) the reverse-gate call filter. Like
// library registration, filter configuration belongs to program assembly
// and is not synchronized against in-flight calls.
func (r *Registry) SetCallFilter(on bool) { r.filterOn = on }

// CallFilter reports whether the reverse-gate call filter is armed.
func (r *Registry) CallFilter() bool { return r.filterOn }

// Allow adds lib.fn to callerLib's reverse-gate allow-list.
func (r *Registry) Allow(callerLib, lib, fn string) {
	if r.allowed == nil {
		r.allowed = make(map[string]map[string]bool)
	}
	set := r.allowed[callerLib]
	if set == nil {
		set = make(map[string]bool)
		r.allowed[callerLib] = set
	}
	set[lib+"."+fn] = true
}

// checkFilter enforces the allow-list for a call from untrusted code into
// a trusted library. It is a no-op while the filter is off.
func (r *Registry) checkFilter(callerLib string, callee *Library, fn string) error {
	if !r.filterOn || callee.Trust != Trusted {
		return nil
	}
	if r.allowed[callerLib][callee.Name+"."+fn] {
		return nil
	}
	return fmt.Errorf("%w: %s -> %s.%s not on the allow-list", ErrCallFiltered, callerLib, callee.Name, fn)
}

// Library declares (or returns the existing) library with the given trust.
// Re-declaring with a different trust level is a configuration error.
func (r *Registry) Library(name string, trust Trust) (*Library, error) {
	if l, ok := r.libs[name]; ok {
		if l.Trust != trust {
			return nil, fmt.Errorf("ffi: library %q re-declared as %v (was %v)", name, trust, l.Trust)
		}
		return l, nil
	}
	l := &Library{Name: name, Trust: trust, funcs: make(map[string]Func)}
	r.libs[name] = l
	return l, nil
}

// MustLibrary is Library for static program assembly; it panics on the
// configuration error Library reports.
func (r *Registry) MustLibrary(name string, trust Trust) *Library {
	l, err := r.Library(name, trust)
	if err != nil {
		panic(err)
	}
	return l
}

// Lookup resolves lib.fn.
func (r *Registry) Lookup(lib, fn string) (*Library, Func, error) {
	l, ok := r.libs[lib]
	if !ok {
		return nil, nil, fmt.Errorf("%w: library %q", ErrNoSuchFunc, lib)
	}
	f, ok := l.funcs[fn]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s.%s", ErrNoSuchFunc, lib, fn)
	}
	return l, f, nil
}

// LibNames returns registered library names in sorted order.
func (r *Registry) LibNames() []string {
	names := make([]string, 0, len(r.libs))
	for n := range r.libs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
